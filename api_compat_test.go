package polytm

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestAPICompat is the public-API golden check: the `go doc` rendering
// of package polytm must match the committed snapshot, so any API drift
// — a renamed function, a changed signature, a dropped re-export —
// shows up as an explicit diff in review instead of a silent change.
//
// To regenerate after an INTENTIONAL API change:
//
//	go doc . > testdata/api_golden.txt
func TestAPICompat(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	out, err := exec.Command(goBin, "doc", ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go doc .: %v\n%s", err, out)
	}
	want, err := os.ReadFile("testdata/api_golden.txt")
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with `go doc . > testdata/api_golden.txt`)", err)
	}
	got := normalizeDoc(string(out))
	if got != normalizeDoc(string(want)) {
		t.Errorf("public API drifted from testdata/api_golden.txt.\n"+
			"If the change is intentional, regenerate: go doc . > testdata/api_golden.txt\n\n--- got ---\n%s", got)
	}
}

// normalizeDoc strips trailing whitespace per line and trailing blank
// lines so formatting-only differences between go versions don't trip
// the check.
func normalizeDoc(s string) string {
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = strings.TrimRight(lines[i], " \t")
	}
	return strings.TrimRight(strings.Join(lines, "\n"), "\n")
}
