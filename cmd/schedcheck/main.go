// Command schedcheck replays the paper's Figure 1 against the three
// synchronizations and prints the verdicts, reproducing the figure's
// caption: "Schedule that is accepted by lock-based and polymorphic
// transactions but not by monomorphic transactions."
//
// Usage:
//
//	schedcheck            # Figure 1 verdicts (experiment F1)
//	schedcheck -grid      # additionally print the schedules in the
//	                      # paper's column layout
//	schedcheck -engine    # additionally replay Figure 1 on the real STM
//	                      # engine and report the same verdicts
//	schedcheck -file s.txt  # check a custom transactional schedule
//	                        # written in the paper's notation, e.g.
//	                        # p1:start(weak); p1:r(x); p1:commit
package main

import (
	"flag"
	"fmt"
	"os"

	"polytm/internal/accept"
	"polytm/internal/schedule"
	"polytm/internal/stm"
)

func main() {
	grid := flag.Bool("grid", false, "print the schedules in the paper's figure layout")
	engine := flag.Bool("engine", false, "replay Figure 1 on the real STM engine too")
	file := flag.String("file", "", "check a custom transactional schedule from this file instead of Figure 1")
	flag.Parse()

	if *file != "" {
		if err := checkCustom(*file, *grid); err != nil {
			fmt.Fprintln(os.Stderr, "schedcheck:", err)
			os.Exit(1)
		}
		return
	}

	tm := schedule.Figure1TM()
	lk := schedule.Figure1Lock()

	if *grid {
		fmt.Println("Figure 1, lock-based schedule:")
		fmt.Println(lk.Grid())
		fmt.Println("Figure 1, transactional schedule:")
		fmt.Println(tm.Grid())
	}

	inst := accept.NewInstance(tm)
	verdict := func(name string, ok bool, detail string) {
		mark := "REJECTED"
		if ok {
			mark = "accepted"
		}
		fmt.Printf("  %-22s %s%s\n", name, mark, detail)
	}

	fmt.Println("Experiment F1 — Figure 1 acceptance:")
	lr := schedule.ExecLockBased(lk, schedule.Figure1LockSems())
	verdict("lock-based", lr.Accepted, "")
	pr := schedule.ExecPolymorphic(tm)
	verdict("polymorphic", pr.Accepted, "")
	mr := schedule.ExecMonomorphic(tm)
	detail := ""
	if !mr.Accepted {
		detail = fmt.Sprintf("  (%s at event %d)", mr.Reason, mr.AbortAt)
	}
	verdict("monomorphic", mr.Accepted, detail)

	paperOK := lr.Accepted && pr.Accepted && !mr.Accepted
	fmt.Printf("paper claim reproduced: %v\n", paperOK)

	if pr.Accepted {
		fmt.Printf("\npolymorphic history: %s\n", pr.History)
	}

	if *engine {
		fmt.Println("\nEngine-level replay (internal/stm):")
		ok := replayOnEngine()
		fmt.Printf("  weak commits, def aborts: %v\n", ok)
		if !ok {
			os.Exit(1)
		}
	}

	_ = inst
	if !paperOK {
		os.Exit(1)
	}
}

// checkCustom parses a user schedule and reports the verdict of every
// synchronization (for lock-based, via the instance mapping of
// internal/accept: derived critical-step semantics over the same
// interleaving).
func checkCustom(path string, grid bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := schedule.Parse(string(raw))
	if err != nil {
		return err
	}
	if !s.IsTransactional() {
		// A lock-based schedule: execute it literally with atomic
		// per-operation semantics.
		if grid {
			fmt.Println(s.Grid())
		}
		r := schedule.ExecLockBased(s, nil)
		fmt.Printf("lock-based execution: accepted=%v", r.Accepted)
		if !r.Accepted {
			fmt.Printf("  (%s)", r.Reason)
		}
		fmt.Println()
		return nil
	}
	if err := s.WellFormedTransactional(); err != nil {
		return err
	}
	if grid {
		fmt.Println(s.Grid())
	}
	inst := accept.NewInstance(s)
	for _, sync := range []accept.Synchronization{accept.LockBased, accept.Polymorphic, accept.Monomorphic} {
		ok := accept.Accepts(sync, inst)
		mark := "REJECTED"
		if ok {
			mark = "accepted"
		}
		detail := ""
		if sync == accept.Monomorphic {
			if r := schedule.ExecMonomorphic(s); !r.Accepted {
				detail = fmt.Sprintf("  (%s at event %d)", r.Reason, r.AbortAt)
			}
		}
		fmt.Printf("  %-22s %s%s\n", sync, mark, detail)
	}
	return nil
}

// replayOnEngine drives the exact Figure 1 interleaving through the real
// STM engine twice: once with p1 weak (must commit) and once with p1 def
// (must abort).
func replayOnEngine() bool {
	run := func(sem stm.Semantics) error {
		e := stm.NewDefaultEngine()
		x, y, z := e.NewVar(0), e.NewVar(0), e.NewVar(0)
		p1 := e.Begin(sem)
		if _, err := p1.Read(x); err != nil {
			return err
		}
		p3 := e.Begin(stm.SemanticsDef)
		if err := p3.Write(z, 30); err != nil {
			return err
		}
		if _, err := p1.Read(y); err != nil {
			return err
		}
		if err := p3.Commit(); err != nil {
			return err
		}
		p2 := e.Begin(stm.SemanticsDef)
		if err := p2.Write(x, 20); err != nil {
			return err
		}
		if err := p2.Commit(); err != nil {
			return err
		}
		if _, err := p1.Read(z); err != nil {
			return err
		}
		return p1.Commit()
	}
	weakErr := run(stm.SemanticsWeak)
	defErr := run(stm.SemanticsDef)
	return weakErr == nil && stm.IsRetryable(defErr)
}
