// Command theorems machine-checks Theorems 1 and 2 of the paper over a
// bounded schedule space and runs the acceptance-rate experiment (A1).
//
// Usage:
//
//	theorems                       # check both theorems (experiments T1, T2)
//	theorems -theorem 1            # only Theorem 1
//	theorems -max-accesses 3       # widen the exhaustive space
//	theorems -acceptance -n 20000  # acceptance-rate sampling (A1)
//	theorems -sample 5000 -ops 3   # sampled 3-process hierarchy check
package main

import (
	"flag"
	"fmt"
	"os"

	"polytm/internal/accept"
	"polytm/internal/schedule"
)

func main() {
	which := flag.Int("theorem", 0, "theorem to check (1 or 2; 0 = both)")
	maxAcc := flag.Int("max-accesses", 2, "max accesses per operation in the exhaustive space")
	acceptance := flag.Bool("acceptance", false, "run the acceptance-rate experiment (A1)")
	n := flag.Int("n", 10000, "samples for -acceptance")
	sample := flag.Int("sample", 0, "additionally check the hierarchy on this many random 3-op schedules")
	ops := flag.Int("ops", 3, "operations per random schedule for -sample")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	cfg := accept.DefaultEnumConfig()
	cfg.MaxAccesses = *maxAcc

	fail := false
	if *acceptance {
		r := accept.AcceptanceRates(*seed, *n, *ops)
		fmt.Println("Experiment A1 — acceptance rates over random schedules:")
		fmt.Printf("  %s\n", r)
		if r.Lock < r.Poly || r.Poly < r.Mono {
			fmt.Println("  HIERARCHY VIOLATED")
			fail = true
		}
	} else {
		if *which == 0 || *which == 1 {
			rep := accept.CheckTheorem1(cfg)
			fmt.Println(rep)
			if !rep.Holds() {
				fail = true
			}
		}
		if *which == 0 || *which == 2 {
			rep := accept.CheckTheorem2(cfg)
			fmt.Println(rep)
			if !rep.Holds() {
				fail = true
			}
		}
		if *sample > 0 {
			checked, violation := accept.SampledMonotonicity(*seed, *sample, *ops)
			if violation != nil {
				fmt.Printf("sampled hierarchy VIOLATED after %d checks on:\n%s\n",
					checked, violation.TM.Grid())
				fail = true
			} else {
				fmt.Printf("sampled hierarchy holds on %d random %d-operation schedules\n", checked, *ops)
			}
		}
	}

	// Footnote: print the witness for human inspection.
	if !*acceptance {
		fmt.Println("\nwitness (Figure 1, transactional form):")
		fmt.Println(schedule.Figure1TM().Grid())
	}
	if fail {
		os.Exit(1)
	}
}
