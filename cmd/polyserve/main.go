// Command polyserve runs the network-facing transactional key-value
// server: a TCP server whose request classes map onto the four
// transaction semantics of the polymorphic TM (GET→snapshot,
// SCAN→elastic, SET/CAS/DEL/TXN→def, FLUSH/REBUILD→irrevocable), each
// overridable per request by the semantics byte in the frame header —
// the paper's start(p) exposed on the wire.
//
// Usage:
//
//	polyserve -addr :7535 -shards 0 -nesting strongest -max-conns 1024
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, lets in-flight requests complete, and force-closes
// stragglers after -drain.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"polytm/internal/core"
	"polytm/internal/server"
)

func main() {
	addr := flag.String("addr", ":7535", "listen address")
	shards := flag.Int("shards", 0, "engine shard count (0 = GOMAXPROCS default)")
	nesting := flag.String("nesting", "strongest", "nesting-composition policy: strongest, param, parent")
	maxConns := flag.Int("max-conns", 1024, "max concurrently served connections")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	quiet := flag.Bool("quiet", false, "suppress connection diagnostics")
	flag.Parse()

	var policy core.NestingPolicy
	switch *nesting {
	case "strongest":
		policy = core.NestStrongest
	case "param":
		policy = core.NestParam
	case "parent":
		policy = core.NestParent
	default:
		fmt.Fprintf(os.Stderr, "polyserve: unknown -nesting %q (valid: strongest, param, parent)\n", *nesting)
		os.Exit(2)
	}

	cfg := server.Config{
		Shards:   *shards,
		Nesting:  policy,
		MaxConns: *maxConns,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polyserve: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	log.Printf("polyserve: listening on %s (shards=%d, nesting=%s, max-conns=%d)",
		ln.Addr(), srv.TM().Engine().Shards(), policy, *maxConns)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("polyserve: %v — draining (timeout %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("polyserve: %v", err)
			os.Exit(1)
		}
		<-done
		stats := srv.TM().Stats()
		log.Printf("polyserve: bye — %s", stats.String())
		log.Printf("polyserve: per-semantics — %s", stats.PerSemString())
	case err := <-done:
		if err != nil && err != server.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "polyserve: serve: %v\n", err)
			os.Exit(1)
		}
	}
}
