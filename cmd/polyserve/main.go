// Command polyserve runs the network-facing transactional key-value
// server: a TCP server whose request classes map onto the four
// transaction semantics of the polymorphic TM (GET→snapshot,
// SCAN→elastic, SET/CAS/DEL/TXN→def, FLUSH/REBUILD→irrevocable), each
// overridable per request by the semantics byte in the frame header —
// the paper's start(p) exposed on the wire.
//
// Usage:
//
//	polyserve -addr :7535 -shards 0 -nesting strongest -max-conns 1024
//	polyserve -addr :7535 -wal-dir /var/lib/polyserve -fsync batch -checkpoint-every 1m
//	polyserve -addr :7535 -wal-dir /var/lib/polyserve -repl-sync
//	polyserve -addr :7536 -follow primary:7535
//
// The keyspace is hash-partitioned across -store-shards shards (0
// derives one per core, capped at 16), each with its own engine, map,
// and — when durable — write-ahead log. Single-key requests route to
// one shard; MGET/SCAN fan out and merge; a TXN spanning shards (and
// FLUSH/REBUILD) commits through a 2PC protocol riding the per-shard
// irrevocable tokens. A durable directory pins its shard count
// (MANIFEST); reopening it adopts the pinned count over the flag.
//
// With -wal-dir the server is durable: it recovers each shard's
// newest valid checkpoint plus its write-ahead-log tail on startup
// (truncating a torn trailing record, resolving in-doubt cross-shard
// prepares against the coordinator shard's decision set), logs every
// mutation through a group-commit batcher before acknowledging it
// (-fsync picks the policy: always / batch / off), and checkpoints
// the keyspace in the background every -checkpoint-every, truncating
// the logs. Checkpoints are incremental: after a full base, each pass
// writes only the keys dirtied since the last one (a delta chained to
// the base), compacting back to a full base once the chain reaches
// -ckpt-max-chain deltas or -ckpt-compact-ratio of the base's bytes —
// so steady-state checkpoint I/O tracks churn, not keyspace size.
//
// With -repl a durable server streams its per-shard WAL to followers
// over SUBSCRIBE-WAL connections (-repl-sync additionally gates each
// durable write ack on a follower ack). With -follow the server runs
// as a follower instead: it adopts the primary's shard count, catches
// up from a snapshot, applies the shipped log in commit order, serves
// GET/MGET/SCAN locally, and rejects writes with a typed redirect
// carrying the primary's address. SIGUSR1 promotes a follower to
// primary: pending cross-shard prepares resolve against the shipped
// decision sets and the store starts taking writes.
//
// The server shuts down gracefully on SIGINT/SIGTERM: it stops
// accepting, lets in-flight requests complete, and after -drain cancels
// the in-flight transactions through the context plumbing (they abort
// cleanly, nothing half-commits) before force-closing stragglers. A
// second signal during the drain skips straight to that cancellation.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"polytm/internal/core"
	"polytm/internal/server"
	"polytm/internal/server/client"
	"polytm/internal/wal"
)

func main() {
	addr := flag.String("addr", ":7535", "listen address")
	shards := flag.Int("shards", 0, "engine shard count (0 = GOMAXPROCS default)")
	storeShards := flag.Int("store-shards", 0, "keyspace shard count (0 = derive from GOMAXPROCS, derived default capped at 16; explicit values are honored as given; a durable directory's pinned count wins)")
	nesting := flag.String("nesting", "strongest", "nesting-composition policy: strongest, param, parent")
	maxConns := flag.Int("max-conns", 1024, "max concurrently served connections")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain timeout")
	quiet := flag.Bool("quiet", false, "suppress connection diagnostics")
	walDir := flag.String("wal-dir", "", "write-ahead-log directory (empty = no durability)")
	fsync := flag.String("fsync", "batch", "wal fsync policy: always, batch, off")
	ckptEvery := flag.Duration("checkpoint-every", time.Minute, "background checkpoint cadence (<0 disables)")
	ckptMaxChain := flag.Int("ckpt-max-chain", 8, "max delta checkpoints per base before compacting to a full one (<=0 = full checkpoints only)")
	ckptRatio := flag.Float64("ckpt-compact-ratio", 0.5, "compact the chain once accumulated delta bytes exceed this fraction of the base")
	replicate := flag.Bool("repl", false, "serve replication feeds to followers (requires -wal-dir)")
	replSync := flag.Bool("repl-sync", false, "gate durable-write acks on a follower ack (implies -repl)")
	follow := flag.String("follow", "", "run as a follower of this primary address (serves reads, rejects writes; SIGUSR1 promotes)")
	ttlReapEvery := flag.Duration("ttl-reap-every", 0, "background TTL reaper cadence (0 = 250ms default, <0 disables; lazy expiry still hides expired keys)")
	watchBuffer := flag.Int("watch-buffer", 0, "per-session watch event buffer; overflow cuts the session with EVENT-LOST (0 = 1024 default)")
	splitShard := flag.Int("split-shard", -1, "admin: SPLIT the shard with this stable id on the server at -addr, print the new routing epoch, and exit")
	mergeShards := flag.String("merge-shards", "", "admin: MERGE buddy shards \"a,b\" (stable ids; a survives) on the server at -addr, print the new routing epoch, and exit")
	flag.Parse()

	// Admin-client modes: the binary doubles as the resharding CLI so an
	// operator needs no second tool to drive a live SPLIT/MERGE.
	if *splitShard >= 0 || *mergeShards != "" {
		os.Exit(runReshardAdmin(*addr, *splitShard, *mergeShards))
	}

	var policy core.NestingPolicy
	switch *nesting {
	case "strongest":
		policy = core.NestStrongest
	case "param":
		policy = core.NestParam
	case "parent":
		policy = core.NestParent
	default:
		fmt.Fprintf(os.Stderr, "polyserve: unknown -nesting %q (valid: strongest, param, parent)\n", *nesting)
		os.Exit(2)
	}

	// Resolve the keyspace shard count: the flag, else one shard per
	// core (capped — shards beyond the parallelism on the box only cost
	// fan-out). A durable directory pins the count its logs were
	// written with (keys hash to shards), so an existing directory's
	// pinned count overrides the flag rather than refusing to start.
	nStore := *storeShards
	if nStore <= 0 {
		nStore = runtime.GOMAXPROCS(0)
		if nStore > 16 {
			nStore = 16
		}
	} else if nStore > 16 {
		// Explicit counts are honored as given — the 16 cap only tames
		// the derived default on very wide boxes. Past it, fan-out ops
		// (MGET/SCAN/FLUSH/2PC) touch every shard, so warn.
		log.Printf("polyserve: -store-shards %d exceeds the derived-default cap of 16 — honoring it; expect wider fan-outs (and a MANIFEST pinned to %d)",
			nStore, nStore)
	}
	// A follower's shard count must match its primary's — keys hash to
	// shards, and the feed is per-shard. Probe the primary's STATS for
	// its count and adopt it (retrying briefly: the pair may be starting
	// together).
	if *follow != "" {
		pinned, err := probePrimaryShards(*follow, 30*time.Second)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: probing primary %s: %v\n", *follow, err)
			os.Exit(1)
		}
		if pinned != nStore {
			log.Printf("polyserve: primary %s has %d store shards — adopting it (flags asked for %d)",
				*follow, pinned, nStore)
			nStore = pinned
		}
	}
	if *walDir != "" {
		pinned, err := server.WALShardCount(*walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: %v\n", err)
			os.Exit(1)
		}
		if pinned != 0 && pinned != nStore {
			log.Printf("polyserve: %s is pinned to %d store shards — adopting it (flags asked for %d)",
				*walDir, pinned, nStore)
			nStore = pinned
		}
	}

	cfg := server.Config{
		Shards:       *shards,
		StoreShards:  nStore,
		Nesting:      policy,
		MaxConns:     *maxConns,
		TTLReapEvery: *ttlReapEvery,
		WatchBuffer:  *watchBuffer,
	}
	if !*quiet {
		cfg.Logf = log.Printf
	}
	srv := server.New(cfg)

	if *walDir != "" {
		mode, err := wal.ParseMode(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: %v\n", err)
			os.Exit(2)
		}
		maxChain := *ckptMaxChain
		if maxChain <= 0 {
			maxChain = -1 // full checkpoints only
		}
		res, err := srv.Store().EnableDurability(server.Durability{
			Dir:             *walDir,
			Fsync:           mode,
			CheckpointEvery: *ckptEvery,
			MaxChain:        maxChain,
			CompactRatio:    *ckptRatio,
			Logf:            log.Printf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: durability: %v\n", err)
			os.Exit(1)
		}
		log.Printf("polyserve: durable on %s (fsync=%s, checkpoint-every=%v, ckpt-max-chain=%d, ckpt-compact-ratio=%g) — recovered: %s",
			*walDir, mode, *ckptEvery, maxChain, *ckptRatio, res)
	}

	switch {
	case *follow != "":
		if err := srv.EnableReplication(server.ReplConfig{Follow: *follow}); err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: replication: %v\n", err)
			os.Exit(1)
		}
		log.Printf("polyserve: follower of %s (reads served locally; writes redirect; SIGUSR1 promotes)", *follow)
	case *replicate || *replSync:
		if err := srv.EnableReplication(server.ReplConfig{SyncAck: *replSync}); err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: replication: %v\n", err)
			os.Exit(1)
		}
		log.Printf("polyserve: replication primary (sync-ack=%v)", *replSync)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polyserve: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	log.Printf("polyserve: listening on %s (store-shards=%d, engine-shards=%d, nesting=%s, max-conns=%d)",
		ln.Addr(), srv.Store().NumShards(), srv.TM().Engine().Shards(), policy, *maxConns)

	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	// SIGUSR1 promotes a follower: the link stops, pending cross-shard
	// prepares resolve against the shipped decision sets, and the store
	// starts taking writes (durable stores also start serving feeds, so
	// the rest of the fleet can re-follow the new primary).
	if *follow != "" {
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				res, err := srv.Promote()
				if err != nil {
					log.Printf("polyserve: promote: %v", err)
					continue
				}
				log.Printf("polyserve: promoted to primary (epoch>=%d, prepares committed=%d rolled-back=%d)",
					res.MaxEpoch, res.Committed, res.RolledBack)
			}
		}()
	}

	// First SIGINT/SIGTERM starts the graceful drain; the drain context
	// expires either after -drain or on a second signal, at which point
	// Shutdown cancels the in-flight transactions through the context
	// plumbing and force-closes what remains. A third signal falls back
	// to the runtime's default handling (immediate exit).
	runCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-runCtx.Done():
		stop() // re-arm signals: the next one cuts the drain short
		log.Printf("polyserve: signal — draining (timeout %v; signal again to cancel in-flight transactions)", *drain)
		sdCtx, cancelSd := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
		defer cancelSd()
		sdCtx, cancelTimeout := context.WithTimeout(sdCtx, *drain)
		defer cancelTimeout()
		forced := false
		if err := srv.Shutdown(sdCtx); err != nil {
			log.Printf("polyserve: %v", err)
			forced = true
		}
		<-done
		// The drain is over: flush and close the write-ahead log so the
		// final records are durable before the process exits.
		if err := srv.Store().CloseDurability(); err != nil {
			log.Printf("polyserve: wal close: %v", err)
			forced = true
		}
		stats := srv.Stats()
		log.Printf("polyserve: bye — %s", stats.String())
		log.Printf("polyserve: per-semantics — %s", stats.PerSemString())
		if forced {
			os.Exit(1) // an unclean (forced) drain is not a clean exit
		}
	case err := <-done:
		if cerr := srv.Store().CloseDurability(); cerr != nil {
			log.Printf("polyserve: wal close: %v", cerr)
		}
		if err != nil && err != server.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "polyserve: serve: %v\n", err)
			os.Exit(1)
		}
	}
}

// runReshardAdmin is the -split-shard / -merge-shards admin-client
// mode: one SPLIT or MERGE against the server at addr (the client
// handles the observe-epoch / retry-on-stale loop), new epoch printed
// on stdout. Returns the process exit code.
func runReshardAdmin(addr string, split int, merge string) int {
	if split >= 0 && merge != "" {
		fmt.Fprintln(os.Stderr, "polyserve: -split-shard and -merge-shards are mutually exclusive")
		return 2
	}
	cl, err := client.Dial(addr, client.WithPoolSize(1), client.WithDialTimeout(5*time.Second))
	if err != nil {
		fmt.Fprintf(os.Stderr, "polyserve: dialing %s: %v\n", addr, err)
		return 1
	}
	defer cl.Close()
	if split >= 0 {
		epoch, err := cl.Split(uint64(split))
		if err != nil {
			fmt.Fprintf(os.Stderr, "polyserve: SPLIT %d: %v\n", split, err)
			return 1
		}
		fmt.Printf("SPLIT shard %d ok: routing epoch %d\n", split, epoch)
		return 0
	}
	aStr, bStr, ok := strings.Cut(merge, ",")
	if !ok {
		fmt.Fprintf(os.Stderr, "polyserve: -merge-shards wants \"a,b\" (stable shard ids), got %q\n", merge)
		return 2
	}
	a, errA := strconv.ParseUint(strings.TrimSpace(aStr), 10, 64)
	b, errB := strconv.ParseUint(strings.TrimSpace(bStr), 10, 64)
	if errA != nil || errB != nil {
		fmt.Fprintf(os.Stderr, "polyserve: -merge-shards wants \"a,b\" (stable shard ids), got %q\n", merge)
		return 2
	}
	epoch, err := cl.Merge(a, b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polyserve: MERGE %d,%d: %v\n", a, b, err)
		return 1
	}
	fmt.Printf("MERGE shards %d,%d ok: routing epoch %d\n", a, b, epoch)
	return 0
}

// probePrimaryShards asks the primary's STATS for its store-shard
// count, retrying (the pair may be racing each other up) until the
// budget runs out.
func probePrimaryShards(addr string, budget time.Duration) (int, error) {
	deadline := time.Now().Add(budget)
	var lastErr error
	for {
		n, err := func() (int, error) {
			cl, err := client.Dial(addr, client.WithPoolSize(1), client.WithDialTimeout(2*time.Second))
			if err != nil {
				return 0, err
			}
			defer cl.Close()
			stats, err := cl.Stats()
			if err != nil {
				return 0, err
			}
			n, ok := stats["store_shards"]
			if !ok || n == 0 {
				return 0, fmt.Errorf("primary reported no store_shards")
			}
			return int(n), nil
		}()
		if err == nil {
			return n, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return 0, lastErr
		}
		time.Sleep(500 * time.Millisecond)
	}
}
