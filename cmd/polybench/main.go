// Command polybench runs the throughput experiments of EXPERIMENTS.md
// from the shell: the integer-set micro-benchmarks (B1 list, B3 skip
// list), the resize experiment (B2), the snapshot-scan experiment (B4),
// and the contention-manager ablation (B5).
//
// Usage:
//
//	polybench -bench list  -updates 10 -range 512 -workers 1,2,4,8 -dur 300ms
//	polybench -bench hash  -updates 25 -range 4096 -resize-every 10ms
//	polybench -bench skip  -updates 10 -range 4096
//	polybench -bench scan  -workers 4
//	polybench -bench cm    -workers 8
//	polybench -bench scale -workers 1,2,4,8 -shards 0
//	polybench -bench all
//
// -bench scale is the engine-scalability experiment behind the sharded
// synchronization state: a mixed-semantics transaction stream (def
// updates, weak elastic walks, snapshot scans, occasional irrevocable
// writes) across worker counts; -shards overrides the engine's stripe
// count (0 = GOMAXPROCS-derived default, 1 = the old centralized
// layout, for A/B comparison).
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"polytm/internal/baseline"
	"polytm/internal/core"
	"polytm/internal/harness"
	"polytm/internal/lockfree"
	"polytm/internal/stm"
	"polytm/internal/structures"
	"polytm/internal/workload"
)

func main() {
	bench := flag.String("bench", "all", "which experiment: list, hash, skip, scan, cm, all")
	updates := flag.Int("updates", 10, "update percentage")
	keyRange := flag.Uint64("range", 512, "key range (steady-state size is half)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	dur := flag.Duration("dur", 200*time.Millisecond, "duration per configuration")
	resizeEvery := flag.Duration("resize-every", 10*time.Millisecond, "resize cadence for -bench hash")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 0, "engine shard count for -bench scale (0 = GOMAXPROCS default)")
	flag.Parse()

	var workers []int
	for _, f := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w <= 0 {
			fmt.Printf("bad worker count %q\n", f)
			return
		}
		workers = append(workers, w)
	}
	mix := workload.Mix{UpdatePct: *updates, KeyRange: *keyRange}
	base := harness.Config{Duration: *dur, Mix: mix, Seed: *seed}

	switch *bench {
	case "list":
		benchList(base, workers)
	case "hash":
		benchHash(base, workers, *resizeEvery)
	case "skip":
		benchSkip(base, workers)
	case "scan":
		benchScan(base, workers)
	case "cm":
		benchCM(base, workers)
	case "scale":
		benchScale(base, workers, *shards)
	case "all":
		benchList(base, workers)
		benchHash(base, workers, *resizeEvery)
		benchSkip(base, workers)
		benchScan(base, workers)
		benchCM(base, workers)
		benchScale(base, workers, *shards)
	default:
		fmt.Printf("unknown bench %q\n", *bench)
	}
}

func benchList(base harness.Config, workers []int) {
	title := fmt.Sprintf("B1: sorted-list integer set, %d%% updates, range %d",
		base.Mix.UpdatePct, base.Mix.KeyRange)
	var rows []harness.Result
	mk := map[string]func() workload.IntSet{
		"coarse-lock":         func() workload.IntSet { return baseline.NewCoarseList() },
		"lazy-lock (tuned)":   func() workload.IntSet { return baseline.NewLazyList() },
		"lock-free (Michael)": func() workload.IntSet { return lockfree.NewList() },
		"stm-mono (def)":      func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Def) },
		"stm-poly (weak)":     func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Weak) },
	}
	for _, name := range []string{"coarse-lock", "lazy-lock (tuned)", "lock-free (Michael)", "stm-mono (def)", "stm-poly (weak)"} {
		cfg := base
		cfg.Name = name
		rows = append(rows, harness.Sweep(mk[name], cfg, workers)...)
	}
	fmt.Print(harness.Table(title, rows))
}

func benchHash(base harness.Config, workers []int, every time.Duration) {
	title := fmt.Sprintf("B2: hash set with background resize every %v, %d%% updates, range %d",
		every, base.Mix.UpdatePct, base.Mix.KeyRange)
	var rows []harness.Result
	for _, w := range workers {
		cfg := base
		cfg.Workers = w
		cfg.ResizeEvery = every

		cfg.Name = "stm-mono (def ops)"
		tmM := core.NewDefault()
		hm := structures.NewTHash(tmM, core.Def, 16)
		growM := true
		cfg.Resizer = func() { hm.Resize(growM); growM = !growM }
		rows = append(rows, harness.Run(hm, cfg))

		cfg.Name = "stm-poly (weak ops)"
		tmP := core.NewDefault()
		hp := structures.NewTHash(tmP, core.Weak, 16)
		growP := true
		cfg.Resizer = func() { hp.Resize(growP); growP = !growP }
		rows = append(rows, harness.Run(hp, cfg))

		cfg.Name = "coarse-lock"
		hc := baseline.NewCoarseHash(16)
		growC := true
		cfg.Resizer = func() { hc.Resize(growC); growC = !growC }
		rows = append(rows, harness.Run(hc, cfg))

		cfg.Name = "striped-lock"
		hs := baseline.NewStripedHash(16, 16)
		growS := true
		cfg.Resizer = func() { hs.Resize(growS); growS = !growS }
		rows = append(rows, harness.Run(hs, cfg))

		cfg.Name = "split-ordered (lock-free)"
		cfg.Resizer = nil // grows automatically; that is its point
		rows = append(rows, harness.Run(lockfree.NewSplitOrdered(), cfg))
	}
	fmt.Print(harness.Table(title, rows))
}

func benchSkip(base harness.Config, workers []int) {
	title := fmt.Sprintf("B3: skip-list integer set, %d%% updates, range %d",
		base.Mix.UpdatePct, base.Mix.KeyRange)
	var rows []harness.Result
	for _, spec := range []struct {
		name string
		mk   func() workload.IntSet
	}{
		{"coarse-lock", func() workload.IntSet { return baseline.NewCoarseSkipList() }},
		{"stm-mono (def)", func() workload.IntSet { return structures.NewTSkipList(core.NewDefault(), core.Def) }},
		{"stm-poly (weak search)", func() workload.IntSet { return structures.NewTSkipList(core.NewDefault(), core.Weak) }},
	} {
		cfg := base
		cfg.Name = spec.name
		rows = append(rows, harness.Sweep(spec.mk, cfg, workers)...)
	}
	fmt.Print(harness.Table(title, rows))
}

// benchScan measures full-structure scans concurrent with writers under
// def vs snapshot semantics (B4).
func benchScan(base harness.Config, workers []int) {
	fmt.Printf("== B4: full-list scans under concurrent writers ==\n")
	for _, w := range workers {
		for _, sem := range []core.Semantics{core.Def, core.Snapshot} {
			tm := core.NewDefault()
			l := structures.NewTList(tm, core.Weak)
			for k := uint64(0); k < base.Mix.KeyRange; k += 2 {
				l.Insert(k)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			// Writers churn the list.
			for i := 0; i < w; i++ {
				go func(seed int64) {
					g := workload.NewGenerator(seed, workload.Mix{UpdatePct: 100, KeyRange: base.Mix.KeyRange})
					for {
						select {
						case <-stop:
							return
						default:
						}
						workload.Apply(l, g.Next())
					}
				}(base.Seed + int64(i))
			}
			// One scanner under the chosen semantics.
			var scans uint64
			var aborts uint64
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = scanList(tm, l, sem)
					scans++
				}
			}()
			start := time.Now()
			time.Sleep(base.Duration)
			close(stop)
			<-done
			el := time.Since(start)
			fmt.Printf("  scan(%-8v) writers=%-3d %10.1f scans/s (engine aborts total: %d)\n",
				sem, w, float64(scans)/el.Seconds(), aborts+tm.Stats().Aborts)
		}
	}
}

func scanList(tm *core.TM, l *structures.TList, sem core.Semantics) uint64 {
	if sem == core.Snapshot {
		return l.Sum()
	}
	var sum uint64
	for _, k := range l.Snapshot() {
		sum += k
	}
	return sum
}

// benchScale is the engine-scalability experiment (B7): a mixed-
// semantics transaction stream — the paper's polymorphism exercised as
// a load profile — directly against one engine, across worker counts.
// It is the experiment the sharded engine state (striped stats, sharded
// live/snapshot registries, batched id allocation) exists for.
func benchScale(base harness.Config, workers []int, shards int) {
	printedHeader := false
	for _, w := range workers {
		e := stm.NewEngine(stm.Config{Shards: shards})
		if !printedHeader {
			fmt.Printf("== B7: mixed-semantics engine scalability (shards=%d) ==\n", e.Shards())
			printedHeader = true
		}
		vars := workload.MixedVars(e, 64)
		stop := make(chan struct{})
		doneCh := make(chan uint64, w)
		for i := 0; i < w; i++ {
			go func(seed uint64) {
				var n uint64
				r := workload.MixedSeed(seed + uint64(base.Seed)*7919)
				op := 0
				for {
					select {
					case <-stop:
						doneCh <- n
						return
					default:
					}
					workload.MixedStep(e, vars, &r, op)
					op++
					n++
				}
			}(uint64(i + 1))
		}
		start := time.Now()
		time.Sleep(base.Duration)
		close(stop)
		var total uint64
		for i := 0; i < w; i++ {
			total += <-doneCh
		}
		el := time.Since(start)
		s := e.Stats()
		fmt.Printf("  workers=%-3d %12.0f txns/s  abort-rate=%.3f\n",
			w, float64(total)/el.Seconds(), s.AbortRate())
	}
}

// benchCM is the contention-manager ablation (B5): a high-contention
// counter array under each manager.
func benchCM(base harness.Config, workers []int) {
	fmt.Printf("== B5: contention-manager ablation (8-counter hotspot) ==\n")
	cms := []struct {
		name string
		f    stm.CMFactory
	}{
		{"suicide", stm.NewSuicide()},
		{"polite", stm.NewPolite(8)},
		{"backoff", stm.NewBackoff(0, 0)},
		{"karma", stm.NewKarma()},
		{"timestamp", stm.NewTimestamp()},
		{"aggressive", stm.NewAggressive()},
	}
	for _, w := range workers {
		for _, cm := range cms {
			tm := core.NewDefault()
			vars := make([]*core.TVar[int], 8)
			for i := range vars {
				vars[i] = core.NewTVar(tm, 0)
			}
			stop := make(chan struct{})
			doneCh := make(chan uint64, w)
			for i := 0; i < w; i++ {
				go func(seed uint64) {
					var n uint64
					r := seed
					for {
						select {
						case <-stop:
							doneCh <- n
							return
						default:
						}
						r = r*1664525 + 1013904223
						i := int(r>>8) % len(vars)
						j := int(r>>16) % len(vars)
						_ = tm.Atomic(func(tx *core.Tx) error {
							a, err := core.Get(tx, vars[i])
							if err != nil {
								return err
							}
							if err := core.Set(tx, vars[i], a+1); err != nil {
								return err
							}
							return core.Modify(tx, vars[j], func(v int) int { return v - 1 })
						}, core.WithContentionManager(cm.f))
						n++
					}
				}(uint64(i + 1))
			}
			start := time.Now()
			time.Sleep(base.Duration)
			close(stop)
			var total uint64
			for i := 0; i < w; i++ {
				total += <-doneCh
			}
			el := time.Since(start)
			s := tm.Stats()
			fmt.Printf("  cm=%-10s workers=%-3d %12.0f txns/s  abort-rate=%.3f\n",
				cm.name, w, float64(total)/el.Seconds(), s.AbortRate())
		}
	}
}
