// Command polybench runs the throughput experiments of EXPERIMENTS.md
// from the shell: the integer-set micro-benchmarks (B1 list, B3 skip
// list), the resize experiment (B2), the snapshot-scan experiment (B4),
// the contention-manager ablation (B5), the engine-scalability
// experiment (B7), and the polyserve loopback server experiment (B8).
//
// Usage:
//
//	polybench -bench list  -updates 10 -range 512 -workers 1,2,4,8 -dur 300ms
//	polybench -bench hash  -updates 25 -range 4096 -resize-every 10ms
//	polybench -bench skip  -updates 10 -range 4096
//	polybench -bench scan  -workers 4
//	polybench -bench cm    -workers 8
//	polybench -bench scale -workers 1,2,4,8 -shards 0
//	polybench -bench server -workers 1,4,8 -get-pct 80 -scan-pct 10
//	polybench -bench server -replica -workers 4 -get-pct 90 -scan-pct 5
//	polybench -bench recover -recover-keys 200000
//	polybench -bench session -workers 1,4,8
//	polybench -bench all
//	polybench -bench scale -json        # machine-readable results
//
// -bench scale is the engine-scalability experiment behind the sharded
// synchronization state: a mixed-semantics transaction stream (def
// updates, weak elastic walks, snapshot scans, occasional irrevocable
// writes) across worker counts; -shards overrides the engine's stripe
// count (0 = GOMAXPROCS-derived default, 1 = the old centralized
// layout, for A/B comparison).
//
// -bench server starts an in-process polyserve on a loopback listener
// and drives it through the wire client with a configurable
// GET/SCAN/SET mix (-get-pct, -scan-pct; the remainder is SETs, each
// worker one pipelined connection), reporting txns/s and the
// per-semantics abort breakdown from the engine's sharded stats — the
// paper's polymorphism measured as live network traffic.
//
// -bench recover is the checkpoint + restart-cost experiment behind
// incremental checkpoints: a -recover-keys store is filled, base-
// checkpointed, churned at 1% and 10%, checkpointed again under the
// full-only policy (-ckpt-max-chain <= 0 equivalent) and the
// incremental default, then closed and re-opened with the recovery
// wall time measured. JSON rows carry churn_pct, ckpt_bytes (the
// churn checkpoint's cost), base_bytes, and restart_sec — the claim
// under test is that the incremental ckpt_bytes track churn while the
// full ones track keyspace size.
//
// -bench server -replica runs the replication read-split experiment
// instead: a durable batch-fsync primary measured alone, with a
// streaming follower attached, and with the replica-aware client
// splitting GET/SCAN across the follower while SETs stay pinned to the
// primary. JSON rows carry the topology and the replication lag in
// bytes sampled at the end of the measured window.
//
// -json switches the output to a JSON array of result records (name,
// workers, ops, txns/s, aborts, per-semantics classes) for recording
// BENCH_*.json trajectories; an unknown -bench exits nonzero.
//
// The scale and server experiments additionally record allocator cost
// (allocs/op and B/op, from runtime.MemStats deltas across the measured
// section, all goroutines included — for the server experiment that
// means client and server side together). -allocs prints those columns
// in table mode; JSON records always carry them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"polytm/internal/baseline"
	"polytm/internal/core"
	"polytm/internal/harness"
	"polytm/internal/lockfree"
	"polytm/internal/repl"
	"polytm/internal/server"
	"polytm/internal/server/client"
	"polytm/internal/stm"
	"polytm/internal/structures"
	"polytm/internal/wal"
	"polytm/internal/wire"
	"polytm/internal/workload"
)

// shutdownContext bounds a loopback server teardown.
func shutdownContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 5*time.Second)
}

// sleepCtx sleeps the measurement window, waking early when ctx is
// cancelled (Ctrl-C mid-benchmark).
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// semRecord is the per-semantics-class slice of a JSON record.
type semRecord struct {
	Starts    uint64  `json:"starts"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`
}

// record is one machine-readable benchmark result row.
type record struct {
	Bench        string               `json:"bench"`
	Name         string               `json:"name"`
	Workers      int                  `json:"workers"`
	DurationSec  float64              `json:"duration_sec"`
	Ops          uint64               `json:"ops"`
	TxnsPerSec   float64              `json:"txns_per_sec"`
	AllocsPerOp  *float64             `json:"allocs_per_op,omitempty"`
	BytesPerOp   *float64             `json:"b_per_op,omitempty"`
	Aborts       *uint64              `json:"aborts,omitempty"`
	AbortRate    *float64             `json:"abort_rate,omitempty"`
	StoreShards  int                  `json:"store_shards,omitempty"`
	Session      map[string]uint64    `json:"session,omitempty"`
	Dist         string               `json:"dist,omitempty"`
	Topology     string               `json:"topology,omitempty"`
	LagBytes     *uint64              `json:"lag_bytes,omitempty"`
	ChurnPct     int                  `json:"churn_pct,omitempty"`
	RestartSec   *float64             `json:"restart_sec,omitempty"`
	CkptBytes    *uint64              `json:"ckpt_bytes,omitempty"`
	BaseBytes    *uint64              `json:"base_bytes,omitempty"`
	PerSemantics map[string]semRecord `json:"per_semantics,omitempty"`
}

// memCounters snapshots the allocator's monotonic counters around a
// measured section; the delta divided by the op count gives allocs/op
// and B/op the way `go test -benchmem` reports them, except that every
// goroutine in the process is included.
type memCounters struct{ mallocs, bytes uint64 }

func readMem() memCounters {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return memCounters{mallocs: ms.Mallocs, bytes: ms.TotalAlloc}
}

// memDelta is the per-op allocator cost of one measured section.
type memDelta struct{ allocsPerOp, bytesPerOp float64 }

// perOp folds a counter pair and an op count into a memDelta.
func (m memCounters) perOp(end memCounters, ops uint64) *memDelta {
	if ops == 0 {
		return nil
	}
	return &memDelta{
		allocsPerOp: float64(end.mallocs-m.mallocs) / float64(ops),
		bytesPerOp:  float64(end.bytes-m.bytes) / float64(ops),
	}
}

// report collects result rows and owns the output mode: human tables on
// stdout, or one JSON array at exit.
type report struct {
	json   bool
	allocs bool
	rows   []record
}

// printf writes table output unless JSON mode is on.
func (r *report) printf(format string, args ...any) {
	if !r.json {
		fmt.Printf(format, args...)
	}
}

// add records one row.
func (r *report) add(rec record) { r.rows = append(r.rows, rec) }

// tagLast annotates the most recently added row with the server
// experiment's store-shard count and key distribution.
func (r *report) tagLast(storeShards int, dist string) {
	if len(r.rows) == 0 {
		return
	}
	r.rows[len(r.rows)-1].StoreShards = storeShards
	r.rows[len(r.rows)-1].Dist = dist
}

// tagReplica annotates the most recently added row with the replica
// experiment's topology and (when a follower was attached) the
// replication lag sampled at the end of the measured window.
func (r *report) tagReplica(topology string, lag *uint64) {
	if len(r.rows) == 0 {
		return
	}
	r.rows[len(r.rows)-1].Topology = topology
	r.rows[len(r.rows)-1].LagBytes = lag
}

// memSuffix renders the optional allocs/op table column.
func (r *report) memSuffix(mem *memDelta) string {
	if !r.allocs || mem == nil {
		return ""
	}
	return fmt.Sprintf("  %7.2f allocs/op %8.0f B/op", mem.allocsPerOp, mem.bytesPerOp)
}

// addResult records a harness row (no engine stats available).
func (r *report) addResult(bench string, res harness.Result) {
	r.add(record{
		Bench:       bench,
		Name:        res.Name,
		Workers:     res.Workers,
		DurationSec: res.Duration.Seconds(),
		Ops:         res.Ops,
		TxnsPerSec:  res.Throughput(),
	})
}

// addWithStats records a row with engine counters (and, when measured,
// allocator cost) attached.
func (r *report) addWithStats(bench, name string, workers int, dur time.Duration, ops uint64, s stm.StatsSnapshot, mem *memDelta) {
	aborts := s.Aborts
	rate := s.AbortRate()
	rec := record{
		Bench:       bench,
		Name:        name,
		Workers:     workers,
		DurationSec: dur.Seconds(),
		Ops:         ops,
		TxnsPerSec:  float64(ops) / dur.Seconds(),
		Aborts:      &aborts,
		AbortRate:   &rate,
	}
	if mem != nil {
		rec.AllocsPerOp = &mem.allocsPerOp
		rec.BytesPerOp = &mem.bytesPerOp
	}
	per := map[string]semRecord{}
	for _, p := range []stm.Semantics{stm.SemanticsDef, stm.SemanticsWeak, stm.SemanticsSnapshot, stm.SemanticsIrrevocable} {
		c := s.Sem(p)
		if c.Starts == 0 {
			continue
		}
		per[p.String()] = semRecord{Starts: c.Starts, Commits: c.Commits, Aborts: c.Aborts, AbortRate: c.AbortRate()}
	}
	if len(per) > 0 {
		rec.PerSemantics = per
	}
	r.add(rec)
}

// flush emits the JSON array in JSON mode.
func (r *report) flush() {
	if !r.json {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.rows); err != nil {
		fmt.Fprintf(os.Stderr, "polybench: json: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	bench := flag.String("bench", "all", "which experiment: list, hash, skip, scan, cm, scale, server, recover, session, reshard, all")
	updates := flag.Int("updates", 10, "update percentage")
	keyRange := flag.Uint64("range", 512, "key range (steady-state size is half)")
	workersFlag := flag.String("workers", "1,2,4,8", "comma-separated worker counts")
	dur := flag.Duration("dur", 200*time.Millisecond, "duration per configuration")
	resizeEvery := flag.Duration("resize-every", 10*time.Millisecond, "resize cadence for -bench hash")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 0, "engine shard count for -bench scale/server (0 = GOMAXPROCS default)")
	storeShards := flag.Int("store-shards", 1, "keyspace shard count for -bench server (0 = GOMAXPROCS, capped at 16)")
	dist := flag.String("dist", "uniform", "key distribution for -bench server: uniform, zipfian (YCSB theta=0.99)")
	getPct := flag.Int("get-pct", 80, "GET percentage for -bench server")
	scanPct := flag.Int("scan-pct", 10, "SCAN percentage for -bench server (remainder is SETs)")
	scanLimit := flag.Uint64("scan-limit", 16, "SCAN window for -bench server")
	durable := flag.Bool("durable", false, "for -bench server: also run durable variants (one per fsync mode, fresh temp wal dir each)")
	replica := flag.Bool("replica", false, "for -bench server: run the replication read-split experiment instead (durable primary, streaming follower, replica-aware client)")
	recoverKeys := flag.Int("recover-keys", 200000, "key count for -bench recover")
	fsyncFlag := flag.String("fsync", "", "restrict -durable to one fsync mode (always, batch, off); empty = all three")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON results instead of tables")
	allocs := flag.Bool("allocs", false, "print allocs/op and B/op columns for -bench scale/server table output")
	flag.Parse()

	var workers []int
	for _, f := range strings.Split(*workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w <= 0 {
			fmt.Fprintf(os.Stderr, "polybench: bad worker count %q\n", f)
			os.Exit(2)
		}
		workers = append(workers, w)
	}
	if *getPct < 0 || *scanPct < 0 || *getPct+*scanPct > 100 {
		fmt.Fprintf(os.Stderr, "polybench: bad mix: -get-pct %d -scan-pct %d (must be >= 0 and sum <= 100)\n",
			*getPct, *scanPct)
		os.Exit(2)
	}
	// Validate -dist up front for every bench: a typo'd distribution must
	// exit 2 immediately, not silently run a different bench's default
	// (only some benches consume it).
	switch *dist {
	case "uniform", "zipfian":
	default:
		fmt.Fprintf(os.Stderr, "polybench: unknown -dist %q (valid: uniform, zipfian)\n", *dist)
		os.Exit(2)
	}
	mix := workload.Mix{UpdatePct: *updates, KeyRange: *keyRange}
	base := harness.Config{Duration: *dur, Mix: mix, Seed: *seed}
	rep := &report{json: *jsonOut, allocs: *allocs}

	// Ctrl-C (or SIGTERM) cancels the whole run through the same context
	// plumbing the engine exposes: measurement sleeps wake, worker loops
	// drain, the loopback server's Shutdown cancels its in-flight
	// transactions, and whatever rows completed are still reported. A
	// second signal falls back to the runtime's immediate exit.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// One source of truth for the bench catalogue: "all" runs the slice
	// in order, a named bench is looked up in it, and the usage string
	// is derived from it.
	benches := []struct {
		name string
		run  func()
	}{
		{"list", func() { benchList(ctx, rep, base, workers) }},
		{"hash", func() { benchHash(ctx, rep, base, workers, *resizeEvery) }},
		{"skip", func() { benchSkip(ctx, rep, base, workers) }},
		{"scan", func() { benchScan(ctx, rep, base, workers) }},
		{"cm", func() { benchCM(ctx, rep, base, workers) }},
		{"scale", func() { benchScale(ctx, rep, base, workers, *shards) }},
		{"server", func() {
			if *replica {
				benchReplica(ctx, rep, base, workers, *shards, *storeShards, *getPct, *scanPct, *scanLimit, *fsyncFlag)
				return
			}
			benchServer(ctx, rep, base, workers, *shards, *storeShards, *getPct, *scanPct, *scanLimit, *durable, *dist, *fsyncFlag)
		}},
		{"recover", func() { benchRecover(ctx, rep, *recoverKeys) }},
		{"session", func() { benchSession(ctx, rep, base, workers, *shards, *storeShards) }},
		{"reshard", func() {
			benchReshard(ctx, rep, base, workers, *shards, *storeShards, *getPct, *scanPct, *scanLimit)
		}},
	}
	ran := false
	var names []string
	for _, b := range benches {
		names = append(names, b.name)
		if *bench == "all" && ctx.Err() == nil {
			b.run()
			ran = true
		} else if *bench == b.name {
			b.run()
			ran = true
		}
	}
	if !ran && !(*bench == "all" && ctx.Err() != nil) {
		fmt.Fprintf(os.Stderr, "polybench: unknown bench %q (valid: %s, all)\n", *bench, strings.Join(names, ", "))
		os.Exit(2)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "polybench: interrupted — reporting completed rows")
	}
	rep.flush()
}

func benchList(ctx context.Context, rep *report, base harness.Config, workers []int) {
	title := fmt.Sprintf("B1: sorted-list integer set, %d%% updates, range %d",
		base.Mix.UpdatePct, base.Mix.KeyRange)
	var rows []harness.Result
	mk := map[string]func() workload.IntSet{
		"coarse-lock":         func() workload.IntSet { return baseline.NewCoarseList() },
		"lazy-lock (tuned)":   func() workload.IntSet { return baseline.NewLazyList() },
		"lock-free (Michael)": func() workload.IntSet { return lockfree.NewList() },
		"stm-mono (def)":      func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Def) },
		"stm-poly (weak)":     func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Weak) },
	}
	for _, name := range []string{"coarse-lock", "lazy-lock (tuned)", "lock-free (Michael)", "stm-mono (def)", "stm-poly (weak)"} {
		if ctx.Err() != nil {
			break
		}
		cfg := base
		cfg.Name = name
		rows = append(rows, harness.Sweep(mk[name], cfg, workers)...)
	}
	for _, r := range rows {
		rep.addResult("list", r)
	}
	rep.printf("%s", harness.Table(title, rows))
}

func benchHash(ctx context.Context, rep *report, base harness.Config, workers []int, every time.Duration) {
	title := fmt.Sprintf("B2: hash set with background resize every %v, %d%% updates, range %d",
		every, base.Mix.UpdatePct, base.Mix.KeyRange)
	var rows []harness.Result
	for _, w := range workers {
		if ctx.Err() != nil {
			break
		}
		cfg := base
		cfg.Workers = w
		cfg.ResizeEvery = every

		cfg.Name = "stm-mono (def ops)"
		tmM := core.NewDefault()
		hm := structures.NewTHash(tmM, core.Def, 16)
		growM := true
		cfg.Resizer = func() { hm.Resize(growM); growM = !growM }
		rows = append(rows, harness.Run(hm, cfg))

		cfg.Name = "stm-poly (weak ops)"
		tmP := core.NewDefault()
		hp := structures.NewTHash(tmP, core.Weak, 16)
		growP := true
		cfg.Resizer = func() { hp.Resize(growP); growP = !growP }
		rows = append(rows, harness.Run(hp, cfg))

		cfg.Name = "coarse-lock"
		hc := baseline.NewCoarseHash(16)
		growC := true
		cfg.Resizer = func() { hc.Resize(growC); growC = !growC }
		rows = append(rows, harness.Run(hc, cfg))

		cfg.Name = "striped-lock"
		hs := baseline.NewStripedHash(16, 16)
		growS := true
		cfg.Resizer = func() { hs.Resize(growS); growS = !growS }
		rows = append(rows, harness.Run(hs, cfg))

		cfg.Name = "split-ordered (lock-free)"
		cfg.Resizer = nil // grows automatically; that is its point
		rows = append(rows, harness.Run(lockfree.NewSplitOrdered(), cfg))
	}
	for _, r := range rows {
		rep.addResult("hash", r)
	}
	rep.printf("%s", harness.Table(title, rows))
}

func benchSkip(ctx context.Context, rep *report, base harness.Config, workers []int) {
	title := fmt.Sprintf("B3: skip-list integer set, %d%% updates, range %d",
		base.Mix.UpdatePct, base.Mix.KeyRange)
	var rows []harness.Result
	for _, spec := range []struct {
		name string
		mk   func() workload.IntSet
	}{
		{"coarse-lock", func() workload.IntSet { return baseline.NewCoarseSkipList() }},
		{"stm-mono (def)", func() workload.IntSet { return structures.NewTSkipList(core.NewDefault(), core.Def) }},
		{"stm-poly (weak search)", func() workload.IntSet { return structures.NewTSkipList(core.NewDefault(), core.Weak) }},
	} {
		if ctx.Err() != nil {
			break
		}
		cfg := base
		cfg.Name = spec.name
		rows = append(rows, harness.Sweep(spec.mk, cfg, workers)...)
	}
	for _, r := range rows {
		rep.addResult("skip", r)
	}
	rep.printf("%s", harness.Table(title, rows))
}

// benchScan measures full-structure scans concurrent with writers under
// def vs snapshot semantics (B4).
func benchScan(ctx context.Context, rep *report, base harness.Config, workers []int) {
	rep.printf("== B4: full-list scans under concurrent writers ==\n")
	for _, w := range workers {
		for _, sem := range []core.Semantics{core.Def, core.Snapshot} {
			if ctx.Err() != nil {
				return
			}
			tm := core.NewDefault()
			l := structures.NewTList(tm, core.Weak)
			for k := uint64(0); k < base.Mix.KeyRange; k += 2 {
				l.Insert(k)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			// Writers churn the list.
			for i := 0; i < w; i++ {
				go func(seed int64) {
					g := workload.NewGenerator(seed, workload.Mix{UpdatePct: 100, KeyRange: base.Mix.KeyRange})
					for {
						select {
						case <-stop:
							return
						default:
						}
						workload.Apply(l, g.Next())
					}
				}(base.Seed + int64(i))
			}
			// One scanner under the chosen semantics.
			var scans uint64
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
					}
					_ = scanList(tm, l, sem)
					scans++
				}
			}()
			start := time.Now()
			sleepCtx(ctx, base.Duration)
			close(stop)
			<-done
			el := time.Since(start)
			s := tm.Stats()
			rep.printf("  scan(%-8v) writers=%-3d %10.1f scans/s (engine aborts total: %d)\n",
				sem, w, float64(scans)/el.Seconds(), s.Aborts)
			rep.addWithStats("scan", fmt.Sprintf("scan-%v", sem), w, el, scans, s, nil)
		}
	}
}

func scanList(tm *core.TM, l *structures.TList, sem core.Semantics) uint64 {
	if sem == core.Snapshot {
		return l.Sum()
	}
	var sum uint64
	for _, k := range l.Snapshot() {
		sum += k
	}
	return sum
}

// benchScale is the engine-scalability experiment (B7): a mixed-
// semantics transaction stream — the paper's polymorphism exercised as
// a load profile — directly against one engine, across worker counts.
// It is the experiment the sharded engine state (striped stats, sharded
// live/snapshot registries, batched id allocation) exists for.
func benchScale(ctx context.Context, rep *report, base harness.Config, workers []int, shards int) {
	printedHeader := false
	for _, w := range workers {
		if ctx.Err() != nil {
			return
		}
		e := stm.NewEngine(stm.Config{Shards: shards})
		if !printedHeader {
			rep.printf("== B7: mixed-semantics engine scalability (shards=%d) ==\n", e.Shards())
			printedHeader = true
		}
		vars := workload.MixedVars(e, 64)
		stop := make(chan struct{})
		doneCh := make(chan uint64, w)
		ready := make(chan struct{})
		for i := 0; i < w; i++ {
			go func(seed uint64) {
				var n uint64
				mw := workload.NewMixedWorker(e, vars, workload.MixedSeed(seed+uint64(base.Seed)*7919))
				<-ready
				for {
					select {
					case <-stop:
						doneCh <- n
						return
					default:
					}
					mw.Step()
					n++
				}
			}(uint64(i + 1))
		}
		m0 := readMem()
		start := time.Now()
		close(ready)
		sleepCtx(ctx, base.Duration)
		close(stop)
		var total uint64
		for i := 0; i < w; i++ {
			total += <-doneCh
		}
		el := time.Since(start)
		m1 := readMem()
		mem := m0.perOp(m1, total)
		s := e.Stats()
		rep.printf("  workers=%-3d %12.0f txns/s  abort-rate=%.3f%s\n",
			w, float64(total)/el.Seconds(), s.AbortRate(), rep.memSuffix(mem))
		rep.addWithStats("scale", fmt.Sprintf("scale-shards%d", e.Shards()), w, el, total, s, mem)
	}
}

// benchCM is the contention-manager ablation (B5): a high-contention
// counter array under each manager.
func benchCM(ctx context.Context, rep *report, base harness.Config, workers []int) {
	rep.printf("== B5: contention-manager ablation (8-counter hotspot) ==\n")
	cms := []struct {
		name string
		f    stm.CMFactory
	}{
		{"suicide", stm.NewSuicide()},
		{"polite", stm.NewPolite(8)},
		{"backoff", stm.NewBackoff(0, 0)},
		{"karma", stm.NewKarma()},
		{"timestamp", stm.NewTimestamp()},
		{"aggressive", stm.NewAggressive()},
	}
	for _, w := range workers {
		for _, cm := range cms {
			if ctx.Err() != nil {
				return
			}
			tm := core.NewDefault()
			vars := make([]*core.TVar[int], 8)
			for i := range vars {
				vars[i] = core.NewTVar(tm, 0)
			}
			stop := make(chan struct{})
			doneCh := make(chan uint64, w)
			for i := 0; i < w; i++ {
				go func(seed uint64) {
					var n uint64
					r := seed
					for {
						select {
						case <-stop:
							doneCh <- n
							return
						default:
						}
						r = r*1664525 + 1013904223
						i := int(r>>8) % len(vars)
						j := int(r>>16) % len(vars)
						_ = tm.Atomic(func(tx *core.Tx) error {
							a, err := core.Get(tx, vars[i])
							if err != nil {
								return err
							}
							if err := core.Set(tx, vars[i], a+1); err != nil {
								return err
							}
							return core.Modify(tx, vars[j], func(v int) int { return v - 1 })
						}, core.WithContentionManager(cm.f))
						n++
					}
				}(uint64(i + 1))
			}
			start := time.Now()
			sleepCtx(ctx, base.Duration)
			close(stop)
			var total uint64
			for i := 0; i < w; i++ {
				total += <-doneCh
			}
			el := time.Since(start)
			s := tm.Stats()
			rep.printf("  cm=%-10s workers=%-3d %12.0f txns/s  abort-rate=%.3f\n",
				cm.name, w, float64(total)/el.Seconds(), s.AbortRate())
			rep.addWithStats("cm", "cm-"+cm.name, w, el, total, s, nil)
		}
	}
}

// benchServer is the polyserve loopback experiment (B8): an in-process
// server driven through real wire connections with a GET/SCAN/SET mix,
// one pipelined connection per worker. Throughput is wire round trips
// per second; the per-semantics abort breakdown from the engine's
// sharded stats shows the polymorphic mapping at work (snapshot GETs
// never abort regardless of write pressure).
//
// With durable, the experiment re-runs once per fsync mode against a
// durable server on a fresh temp WAL directory (B9): the cost of the
// write-ahead log — group commit, irrevocable escalation of the SET
// share, background checkpoints — measured against the non-durable
// baseline of the same box.
//
// -store-shards partitions the keyspace (B10): each worker's keys hash
// across independent engine+map+WAL shards, so durable writes stop
// contending on one irrevocable token and one fsync queue. -dist picks
// the key popularity: uniform, or zipfian (YCSB theta=0.99) where a few
// hot keys absorb most of the traffic — the skew that makes single-token
// serialization hurt and routing pay off.
func benchServer(ctx context.Context, rep *report, base harness.Config, workers []int, shards, storeShards, getPct, scanPct int, scanLimit uint64, durable bool, dist, fsync string) {
	modes := []wal.Mode{wal.ModeAlways, wal.ModeBatch, wal.ModeOff}
	if fsync != "" {
		m, err := wal.ParseMode(fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: %v\n", err)
			os.Exit(2)
		}
		modes = []wal.Mode{m}
	}
	variants := []struct {
		label string
		dur   *server.Durability // nil = non-durable baseline
	}{{label: "baseline"}}
	if durable {
		for _, mode := range modes {
			variants = append(variants, struct {
				label string
				dur   *server.Durability
			}{
				label: "durable-" + mode.String(),
				dur:   &server.Durability{Fsync: mode, CheckpointEvery: 200 * time.Millisecond},
			})
		}
	}
	if storeShards <= 0 {
		storeShards = runtime.GOMAXPROCS(0)
		if storeShards > 16 {
			storeShards = 16
		}
	}
	for _, v := range variants {
		benchServerVariant(ctx, rep, base, workers, shards, storeShards, getPct, scanPct, scanLimit, v.label, dist, v.dur)
	}
}

// zipfGen draws keys from a zipfian popularity distribution over
// [0, n) with the YCSB constant theta=0.99, using the standard
// Gray et al. rejection-free inversion: the generator is immutable
// after construction, so one instance is shared read-only across all
// workers, each feeding it its own uniform stream.
type zipfGen struct {
	n                 uint64
	theta             float64
	alpha, zetan, eta float64
	halfPowTheta      float64
}

func newZipfGen(n uint64) *zipfGen {
	const theta = 0.99
	zeta := func(n uint64) float64 {
		var z float64
		for i := uint64(1); i <= n; i++ {
			z += 1 / math.Pow(float64(i), theta)
		}
		return z
	}
	zetan := zeta(n)
	zeta2 := zeta(2)
	return &zipfGen{
		n:            n,
		theta:        theta,
		alpha:        1 / (1 - theta),
		zetan:        zetan,
		eta:          (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		halfPowTheta: 1 + math.Pow(0.5, theta),
	}
}

// next maps a uniform u in [0,1) to a zipfian-distributed key rank.
func (z *zipfGen) next(u float64) uint64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < z.halfPowTheta {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n {
		k = z.n - 1
	}
	return k
}

func benchServerVariant(ctx context.Context, rep *report, base harness.Config, workers []int, shards, storeShards, getPct, scanPct int, scanLimit uint64, label, dist string, dur *server.Durability) {
	rep.printf("== B8: polyserve loopback [%s], %d%% GET / %d%% SCAN / %d%% SET, range %d, store-shards %d, dist %s ==\n",
		label, getPct, scanPct, 100-getPct-scanPct, base.Mix.KeyRange, storeShards, dist)
	key := func(k uint64) []byte {
		return []byte(fmt.Sprintf("k%08d", k%base.Mix.KeyRange))
	}
	var zipf *zipfGen
	if dist == "zipfian" {
		zipf = newZipfGen(base.Mix.KeyRange)
	}
	for _, w := range workers {
		if ctx.Err() != nil {
			return
		}
		srv := server.New(server.Config{Shards: shards, StoreShards: storeShards})
		if dur != nil {
			d := *dur
			tmp, err := os.MkdirTemp("", "polybench-wal-*")
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: wal dir: %v\n", err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			d.Dir = tmp
			if _, err := srv.Store().EnableDurability(d); err != nil {
				fmt.Fprintf(os.Stderr, "polybench: durability: %v\n", err)
				os.Exit(1)
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: server listen: %v\n", err)
			os.Exit(1)
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()

		// Prefill half the key range.
		pre, err := client.Dial(ln.Addr().String())
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: dial: %v\n", err)
			os.Exit(1)
		}
		for k := uint64(0); k < base.Mix.KeyRange; k += 2 {
			if err := pre.Set(key(k), []byte("0")); err != nil {
				fmt.Fprintf(os.Stderr, "polybench: prefill: %v\n", err)
				os.Exit(1)
			}
		}
		srv.Store().ResetStats()

		var ops atomic.Uint64
		stop := make(chan struct{})
		ready := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < w; i++ {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				cl, err := client.Dial(ln.Addr().String(), client.WithPoolSize(1))
				if err != nil {
					fmt.Fprintf(os.Stderr, "polybench: worker dial: %v\n", err)
					return
				}
				defer cl.Close()
				r := seed*0x9E3779B97F4A7C15 + 1
				var n uint64
				<-ready
				for {
					select {
					case <-stop:
						ops.Add(n)
						return
					default:
					}
					r = r*6364136223846793005 + 1442695040888963407
					var k uint64
					if zipf != nil {
						k = zipf.next(float64(r>>11) / (1 << 53))
					} else {
						k = (r >> 33) % base.Mix.KeyRange
					}
					var opErr error
					switch roll := int((r >> 16) % 100); {
					case roll < getPct:
						_, _, opErr = cl.Get(key(k))
					case roll < getPct+scanPct:
						_, opErr = cl.Scan(key(k), nil, scanLimit)
					default:
						opErr = cl.Set(key(k), []byte(strconv.FormatUint(r&0xFFFF, 10)))
					}
					if opErr != nil {
						fmt.Fprintf(os.Stderr, "polybench: worker op: %v\n", opErr)
						return
					}
					n++
				}
			}(uint64(base.Seed)*7919 + uint64(i+1))
		}
		m0 := readMem()
		start := time.Now()
		close(ready)
		sleepCtx(ctx, base.Duration)
		close(stop)
		wg.Wait()
		el := time.Since(start)
		m1 := readMem()
		pre.Close()

		s := srv.Stats()
		total := ops.Load()
		mem := m0.perOp(m1, total)
		rep.printf("  workers=%-3d %12.0f txns/s  abort-rate=%.3f%s\n",
			w, float64(total)/el.Seconds(), s.AbortRate(), rep.memSuffix(mem))
		rep.printf("      per-semantics: %s\n", s.PerSemString())
		name := fmt.Sprintf("server-shards%d-store%d-%s", srv.TM().Engine().Shards(), storeShards, dist)
		if dur != nil {
			name = fmt.Sprintf("server-%s-shards%d-store%d-%s", label, srv.TM().Engine().Shards(), storeShards, dist)
		}
		rep.addWithStats("server", name, w, el, total, s, mem)
		rep.tagLast(storeShards, dist)

		sdCtx, cancel := shutdownContext()
		if err := srv.Shutdown(sdCtx); err != nil {
			fmt.Fprintf(os.Stderr, "polybench: shutdown: %v\n", err)
		}
		cancel()
		<-serveDone
		if err := srv.Store().CloseDurability(); err != nil {
			fmt.Fprintf(os.Stderr, "polybench: wal close: %v\n", err)
		}
	}
}

// kvConn is the slice of the client surface the replica experiment
// drives — both *client.Client and *client.ReplicaSet satisfy it, so
// the same worker loop measures a plain primary connection and the
// replica-aware read-splitting client.
type kvConn interface {
	Get(key []byte) (val []byte, ok bool, err error)
	Scan(from, to []byte, limit uint64) ([]wire.KV, error)
	Set(key, val []byte) error
	Close() error
}

// benchReplica is the replication read-split experiment (B11): a
// durable primary measured three ways — alone (the no-follower
// baseline), with a streaming follower attached (the cost of shipping
// the WAL), and with the replica-aware client splitting GET/SCAN
// across the follower while SETs stay pinned to the primary (the
// payoff). Throughput is wire round trips per second against the pair;
// rows carry the topology and the replication lag in bytes sampled at
// the end of the measured window. Engine stats are the primary's —
// in the read-split rows the follower absorbs the read transactions,
// which is the point.
func benchReplica(ctx context.Context, rep *report, base harness.Config, workers []int, shards, storeShards, getPct, scanPct int, scanLimit uint64, fsync string) {
	if storeShards <= 0 {
		storeShards = runtime.GOMAXPROCS(0)
		if storeShards > 16 {
			storeShards = 16
		}
	}
	mode := wal.ModeBatch
	if fsync != "" {
		m, err := wal.ParseMode(fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: %v\n", err)
			os.Exit(2)
		}
		mode = m
	}
	rep.printf("== B11: replication read-split [fsync=%s], %d%% GET / %d%% SCAN / %d%% SET, range %d, store-shards %d ==\n",
		mode, getPct, scanPct, 100-getPct-scanPct, base.Mix.KeyRange, storeShards)
	variants := []struct {
		name     string
		topology string
		follower bool // attach a streaming follower
		split    bool // route reads through it
	}{
		{"repl-baseline", "primary-only", false, false},
		{"repl-attached", "primary+follower", true, false},
		{"repl-readsplit", "read-split", true, true},
	}
	for _, w := range workers {
		for _, v := range variants {
			if ctx.Err() != nil {
				return
			}
			benchReplicaVariant(ctx, rep, base, w, shards, storeShards, getPct, scanPct, scanLimit, mode, v.name, v.topology, v.follower, v.split)
		}
	}
}

func benchReplicaVariant(ctx context.Context, rep *report, base harness.Config, w, shards, storeShards, getPct, scanPct int, scanLimit uint64, mode wal.Mode, name, topology string, follower, split bool) {
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "polybench: "+format+"\n", args...)
		os.Exit(1)
	}
	key := func(k uint64) []byte {
		return []byte(fmt.Sprintf("k%08d", k%base.Mix.KeyRange))
	}

	// The primary: durable (feeds ship the WAL, so there must be one),
	// batch-fsync'd, replication enabled whenever a follower will attach.
	psrv := server.New(server.Config{Shards: shards, StoreShards: storeShards})
	tmp, err := os.MkdirTemp("", "polybench-repl-*")
	if err != nil {
		fatal("wal dir: %v", err)
	}
	defer os.RemoveAll(tmp)
	if _, err := psrv.Store().EnableDurability(server.Durability{Dir: tmp, Fsync: mode, CheckpointEvery: -1}); err != nil {
		fatal("durability: %v", err)
	}
	if follower {
		if err := psrv.EnableReplication(server.ReplConfig{}); err != nil {
			fatal("replication: %v", err)
		}
	}
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("primary listen: %v", err)
	}
	pServeDone := make(chan error, 1)
	go func() { pServeDone <- psrv.Serve(pln) }()
	paddr := pln.Addr().String()

	// Prefill half the key range before the follower attaches, so
	// catch-up really replays a snapshot, not an empty shard.
	pre, err := client.Dial(paddr)
	if err != nil {
		fatal("dial: %v", err)
	}
	prefill := 0
	for k := uint64(0); k < base.Mix.KeyRange; k += 2 {
		if err := pre.Set(key(k), []byte("0")); err != nil {
			fatal("prefill: %v", err)
		}
		prefill++
	}

	var fsrv *server.Server
	var faddr string
	if follower {
		fsrv = server.New(server.Config{Shards: shards, StoreShards: storeShards})
		if err := fsrv.EnableReplication(server.ReplConfig{
			Follow:  paddr,
			Backoff: repl.Backoff{Min: 5 * time.Millisecond},
		}); err != nil {
			fatal("follower: %v", err)
		}
		fln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("follower listen: %v", err)
		}
		fServeDone := make(chan error, 1)
		go func() { fServeDone <- fsrv.Serve(fln) }()
		faddr = fln.Addr().String()
		defer func() {
			sdCtx, cancel := shutdownContext()
			if err := fsrv.Shutdown(sdCtx); err != nil {
				fmt.Fprintf(os.Stderr, "polybench: follower shutdown: %v\n", err)
			}
			cancel()
			<-fServeDone
		}()

		// Wait for catch-up: the follower serves the full prefill.
		fcl, err := client.Dial(faddr, client.WithPoolSize(1))
		if err != nil {
			fatal("follower dial: %v", err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			kvs, err := fcl.Scan(nil, nil, 0)
			if err == nil && len(kvs) >= prefill {
				break
			}
			if time.Now().After(deadline) {
				fatal("follower never caught up (%v)", err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		fcl.Close()
	}
	psrv.Store().ResetStats()

	dial := func() (kvConn, error) {
		if split {
			return client.DialReplicaSet(paddr, []string{faddr}, client.ReplicaSetConfig{PoolSize: 1})
		}
		return client.Dial(paddr, client.WithPoolSize(1))
	}

	var ops atomic.Uint64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cl, err := dial()
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: worker dial: %v\n", err)
				return
			}
			defer cl.Close()
			r := seed*0x9E3779B97F4A7C15 + 1
			var n uint64
			<-ready
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				k := (r >> 33) % base.Mix.KeyRange
				var opErr error
				switch roll := int((r >> 16) % 100); {
				case roll < getPct:
					_, _, opErr = cl.Get(key(k))
				case roll < getPct+scanPct:
					_, opErr = cl.Scan(key(k), nil, scanLimit)
				default:
					opErr = cl.Set(key(k), []byte(strconv.FormatUint(r&0xFFFF, 10)))
				}
				if opErr != nil {
					fmt.Fprintf(os.Stderr, "polybench: worker op: %v\n", opErr)
					return
				}
				n++
			}
		}(uint64(base.Seed)*7919 + uint64(i+1))
	}
	m0 := readMem()
	start := time.Now()
	close(ready)
	sleepCtx(ctx, base.Duration)
	// Sample the lag while the load is still applying — after the
	// window closes the follower drains it to zero in microseconds.
	var lag *uint64
	if h := psrv.Hub(); h != nil {
		l := h.LagBytes()
		lag = &l
	}
	close(stop)
	wg.Wait()
	el := time.Since(start)
	m1 := readMem()
	pre.Close()

	s := psrv.Stats()
	total := ops.Load()
	mem := m0.perOp(m1, total)
	lagStr := ""
	if lag != nil {
		lagStr = fmt.Sprintf("  lag=%dB", *lag)
	}
	rep.printf("  %-15s workers=%-3d %12.0f txns/s  abort-rate=%.3f%s%s\n",
		name, w, float64(total)/el.Seconds(), s.AbortRate(), lagStr, rep.memSuffix(mem))
	rep.addWithStats("replica", fmt.Sprintf("%s-store%d", name, storeShards), w, el, total, s, mem)
	rep.tagLast(storeShards, "uniform")
	rep.tagReplica(topology, lag)

	sdCtx, cancel := shutdownContext()
	if err := psrv.Shutdown(sdCtx); err != nil {
		fmt.Fprintf(os.Stderr, "polybench: shutdown: %v\n", err)
	}
	cancel()
	<-pServeDone
	if err := psrv.Store().CloseDurability(); err != nil {
		fmt.Fprintf(os.Stderr, "polybench: wal close: %v\n", err)
	}
}

// benchSession is the session-layer experiment (B13): the three loads
// the session subsystem exists for, each measured against a loopback
// server across worker counts.
//
//   - watch-fanout: 8 prefix watchers on dedicated session connections
//     while w writers SET under the prefix; throughput is EVENTS
//     DELIVERED per second (writes × fan-out when nothing is lost), and
//     rows carry the sets/events_pushed/events_lost gauges — the
//     overflow-cuts-not-blocks contract priced as a number.
//   - incr vs cas-loop: w workers all incrementing ONE hot counter, as
//     a server-side INCR (one round trip, def semantics) and as the
//     client-side GET+CAS retry loop it replaces; the gap is the
//     round-trip amplification plus the CAS abort tax under contention.
//   - ttl-churn: w workers SETEX short-lived keys against a fast
//     reaper; rows carry keys_expired and the deadlines still armed at
//     window close, showing reap keeping pace with arming.
func benchSession(ctx context.Context, rep *report, base harness.Config, workers []int, shards, storeShards int) {
	if storeShards <= 0 {
		storeShards = runtime.GOMAXPROCS(0)
		if storeShards > 16 {
			storeShards = 16
		}
	}
	rep.printf("== B13: session layer (watch fan-out, INCR contention, TTL churn), store-shards %d ==\n", storeShards)
	for _, w := range workers {
		if ctx.Err() != nil {
			return
		}
		benchSessionWatch(ctx, rep, base, w, shards, storeShards)
		benchSessionIncr(ctx, rep, base, w, shards, storeShards, true)
		benchSessionIncr(ctx, rep, base, w, shards, storeShards, false)
		benchSessionTTL(ctx, rep, base, w, shards, storeShards)
	}
}

// sessionLoopback brings up one loopback server for a session variant
// and hands back a teardown.
func sessionLoopback(cfg server.Config) (*server.Server, string, func()) {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "polybench: listen: %v\n", err)
		os.Exit(1)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), func() {
		sdCtx, cancel := shutdownContext()
		if err := srv.Shutdown(sdCtx); err != nil {
			fmt.Fprintf(os.Stderr, "polybench: shutdown: %v\n", err)
		}
		cancel()
		<-serveDone
	}
}

// sessionGauges plucks the session stat rows from a live server.
func sessionGauges(cl *client.Client, extra map[string]uint64) map[string]uint64 {
	st, err := cl.Stats()
	if err != nil {
		return extra
	}
	out := map[string]uint64{}
	for _, k := range []string{"watch_sessions", "events_pushed", "events_lost", "keys_expired", "ttl_armed", "incr_ops"} {
		if v, ok := st[k]; ok {
			out[k] = v
		}
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}

const sessionFanWatchers = 8

func benchSessionWatch(ctx context.Context, rep *report, base harness.Config, w, shards, storeShards int) {
	srv, addr, teardown := sessionLoopback(server.Config{Shards: shards, StoreShards: storeShards, TTLReapEvery: -1})
	defer teardown()
	_ = srv

	var delivered atomic.Uint64
	watchers := make([]*client.Watcher, sessionFanWatchers)
	var drain sync.WaitGroup
	for i := range watchers {
		wt, err := client.Watch(addr, []byte("s:"), true, client.WithoutReconnect(), client.WithWatchBuffer(4096))
		if err != nil {
			fmt.Fprintf(os.Stderr, "polybench: watch: %v\n", err)
			os.Exit(1)
		}
		watchers[i] = wt
		drain.Add(1)
		go func() {
			defer drain.Done()
			for range wt.Events() {
				delivered.Add(1)
			}
		}()
	}

	var sets atomic.Uint64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.WithPoolSize(1))
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: worker dial: %v\n", err)
				return
			}
			defer cl.Close()
			r := seed*0x9E3779B97F4A7C15 + 1
			var n uint64
			<-ready
			for {
				select {
				case <-stop:
					sets.Add(n)
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				k := (r >> 33) % base.Mix.KeyRange
				if err := cl.Set([]byte(fmt.Sprintf("s:%08d", k)), []byte("v")); err != nil {
					fmt.Fprintf(os.Stderr, "polybench: worker set: %v\n", err)
					return
				}
				n++
			}
		}(uint64(base.Seed)*7919 + uint64(i+1))
	}
	start := time.Now()
	close(ready)
	sleepCtx(ctx, base.Duration)
	close(stop)
	wg.Wait()
	el := time.Since(start)
	for _, wt := range watchers {
		wt.Close()
	}
	drain.Wait()

	cl, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polybench: dial: %v\n", err)
		os.Exit(1)
	}
	gauges := sessionGauges(cl, map[string]uint64{"sets": sets.Load(), "delivered": delivered.Load()})
	cl.Close()
	ev := delivered.Load()
	rep.printf("  watch-fanout%-2d writers=%-3d %12.0f events/s  (%0.f sets/s, lost=%d)\n",
		sessionFanWatchers, w, float64(ev)/el.Seconds(), float64(sets.Load())/el.Seconds(), gauges["events_lost"])
	rep.add(record{
		Bench:       "session",
		Name:        fmt.Sprintf("session-watch-fan%d", sessionFanWatchers),
		Workers:     w,
		DurationSec: el.Seconds(),
		Ops:         ev,
		TxnsPerSec:  float64(ev) / el.Seconds(),
		StoreShards: storeShards,
		Session:     gauges,
	})
}

func benchSessionIncr(ctx context.Context, rep *report, base harness.Config, w, shards, storeShards int, useIncr bool) {
	srv, addr, teardown := sessionLoopback(server.Config{Shards: shards, StoreShards: storeShards, TTLReapEvery: -1})
	defer teardown()

	var ops atomic.Uint64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	hot := []byte("hot-counter")
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := client.Dial(addr, client.WithPoolSize(1))
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: worker dial: %v\n", err)
				return
			}
			defer cl.Close()
			var n uint64
			<-ready
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				if useIncr {
					if _, err := cl.Incr(hot, 1); err != nil {
						fmt.Fprintf(os.Stderr, "polybench: incr: %v\n", err)
						return
					}
				} else {
					// The client-side emulation INCR replaces: read, parse,
					// CAS, retry on interleaved writers.
					for {
						cur, ok, err := cl.Get(hot)
						if err != nil {
							fmt.Fprintf(os.Stderr, "polybench: get: %v\n", err)
							return
						}
						v := int64(0)
						if ok {
							v, _ = strconv.ParseInt(string(cur), 10, 64)
						}
						next := []byte(strconv.FormatInt(v+1, 10))
						if !ok {
							// First write: CAS can't express create, SET races
							// are absorbed by the next round's read.
							if err := cl.Set(hot, next); err != nil {
								fmt.Fprintf(os.Stderr, "polybench: set: %v\n", err)
								return
							}
							break
						}
						swapped, _, _, err := cl.CAS(hot, cur, next)
						if err != nil {
							fmt.Fprintf(os.Stderr, "polybench: cas: %v\n", err)
							return
						}
						if swapped {
							break
						}
					}
				}
				n++
			}
		}()
	}
	start := time.Now()
	close(ready)
	sleepCtx(ctx, base.Duration)
	close(stop)
	wg.Wait()
	el := time.Since(start)

	name := "session-casloop"
	if useIncr {
		name = "session-incr"
	}
	s := srv.Stats()
	total := ops.Load()
	rep.printf("  %-15s workers=%-3d %12.0f incs/s  abort-rate=%.3f\n",
		name, w, float64(total)/el.Seconds(), s.AbortRate())
	rep.addWithStats("session", name, w, el, total, s, nil)
	rep.tagLast(storeShards, "hotspot")
}

func benchSessionTTL(ctx context.Context, rep *report, base harness.Config, w, shards, storeShards int) {
	srv, addr, teardown := sessionLoopback(server.Config{Shards: shards, StoreShards: storeShards, TTLReapEvery: 10 * time.Millisecond})
	defer teardown()
	_ = srv

	var ops atomic.Uint64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.WithPoolSize(1))
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: worker dial: %v\n", err)
				return
			}
			defer cl.Close()
			r := seed*0x9E3779B97F4A7C15 + 1
			var n uint64
			<-ready
			for {
				select {
				case <-stop:
					ops.Add(n)
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				k := (r >> 33) % base.Mix.KeyRange
				ttl := time.Duration(10+(r>>20)%40) * time.Millisecond
				if err := cl.SetEx([]byte(fmt.Sprintf("ttl:%08d", k)), []byte("v"), ttl); err != nil {
					fmt.Fprintf(os.Stderr, "polybench: setex: %v\n", err)
					return
				}
				n++
			}
		}(uint64(base.Seed)*7919 + uint64(i+1))
	}
	start := time.Now()
	close(ready)
	sleepCtx(ctx, base.Duration)
	close(stop)
	wg.Wait()
	el := time.Since(start)

	cl, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "polybench: dial: %v\n", err)
		os.Exit(1)
	}
	gauges := sessionGauges(cl, map[string]uint64{"setex": ops.Load()})
	cl.Close()
	total := ops.Load()
	rep.printf("  ttl-churn       workers=%-3d %12.0f setex/s  (expired=%d, armed=%d)\n",
		w, float64(total)/el.Seconds(), gauges["keys_expired"], gauges["ttl_armed"])
	rep.add(record{
		Bench:       "session",
		Name:        "session-ttl-churn",
		Workers:     w,
		DurationSec: el.Seconds(),
		Ops:         total,
		TxnsPerSec:  float64(total) / el.Seconds(),
		StoreShards: storeShards,
		Session:     gauges,
	})
}

// benchReshard is the online-resharding experiment (B14): a durable
// loopback server under a zipfian GET/SCAN/SET load — the skew that
// concentrates most of the traffic on one shard — measured in two
// windows of the SAME continuously-running worker pool: before and
// after a live SPLIT of the hottest shard (found by the shard<ID>.ops
// STATS rows). The load never pauses across the cutover; rows carry
// the failed-request count (the zero-failures claim under test), the
// split's wall time, and the routing epoch. The claim: splitting the
// hot shard raises post-split throughput by halving the keyspace
// behind its irrevocable token and fsync queue.
func benchReshard(ctx context.Context, rep *report, base harness.Config, workers []int, shards, storeShards, getPct, scanPct int, scanLimit uint64) {
	if storeShards <= 0 {
		storeShards = runtime.GOMAXPROCS(0)
		if storeShards > 16 {
			storeShards = 16
		}
	}
	rep.printf("== B14: online SPLIT of the hot shard under zipfian skew, %d%% GET / %d%% SCAN / %d%% SET, range %d, store-shards %d ==\n",
		getPct, scanPct, 100-getPct-scanPct, base.Mix.KeyRange, storeShards)
	for _, w := range workers {
		if ctx.Err() != nil {
			return
		}
		benchReshardVariant(ctx, rep, base, w, shards, storeShards, getPct, scanPct, scanLimit)
	}
}

func benchReshardVariant(ctx context.Context, rep *report, base harness.Config, w, shards, storeShards, getPct, scanPct int, scanLimit uint64) {
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "polybench: "+format+"\n", args...)
		os.Exit(1)
	}
	key := func(k uint64) []byte {
		return []byte(fmt.Sprintf("k%08d", k%base.Mix.KeyRange))
	}
	zipf := newZipfGen(base.Mix.KeyRange)

	srv := server.New(server.Config{Shards: shards, StoreShards: storeShards})
	tmp, err := os.MkdirTemp("", "polybench-reshard-*")
	if err != nil {
		fatal("wal dir: %v", err)
	}
	defer os.RemoveAll(tmp)
	if _, err := srv.Store().EnableDurability(server.Durability{Dir: tmp, Fsync: wal.ModeOff, CheckpointEvery: -1}); err != nil {
		fatal("durability: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal("listen: %v", err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	addr := ln.Addr().String()

	pre, err := client.Dial(addr)
	if err != nil {
		fatal("dial: %v", err)
	}
	for k := uint64(0); k < base.Mix.KeyRange; k += 2 {
		if err := pre.Set(key(k), []byte("0")); err != nil {
			fatal("prefill: %v", err)
		}
	}

	// One worker pool runs across BOTH windows — the split happens under
	// this live load. ops counts per completed round trip (not batched at
	// exit) so window boundaries can sample it; failed counts request
	// errors, the acceptance gauge for the online-cutover claim.
	var ops, failed atomic.Uint64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.WithPoolSize(1))
			if err != nil {
				fmt.Fprintf(os.Stderr, "polybench: worker dial: %v\n", err)
				failed.Add(1)
				return
			}
			defer cl.Close()
			r := seed*0x9E3779B97F4A7C15 + 1
			<-ready
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				k := zipf.next(float64(r>>11) / (1 << 53))
				var opErr error
				switch roll := int((r >> 16) % 100); {
				case roll < getPct:
					_, _, opErr = cl.Get(key(k))
				case roll < getPct+scanPct:
					_, opErr = cl.Scan(key(k), nil, scanLimit)
				default:
					opErr = cl.Set(key(k), []byte(strconv.FormatUint(r&0xFFFF, 10)))
				}
				if opErr != nil {
					fmt.Fprintf(os.Stderr, "polybench: worker op: %v\n", opErr)
					failed.Add(1)
					return
				}
				ops.Add(1)
			}
		}(uint64(base.Seed)*7919 + uint64(i+1))
	}
	close(ready)

	// Window 1: pre-split.
	ops.Store(0)
	preStart := time.Now()
	sleepCtx(ctx, base.Duration)
	preOps := ops.Load()
	preEl := time.Since(preStart)

	// Find the hottest shard by routed ops and SPLIT it — the load keeps
	// running the whole time.
	stats, err := pre.Stats()
	if err != nil {
		fatal("stats: %v", err)
	}
	hot, hotOps := uint64(0), uint64(0)
	for name, v := range stats {
		var id uint64
		if _, err := fmt.Sscanf(name, "shard%d.ops", &id); err == nil && v >= hotOps {
			hot, hotOps = id, v
		}
	}
	splitStart := time.Now()
	epoch, err := pre.Split(hot)
	if err != nil {
		fatal("SPLIT %d: %v", hot, err)
	}
	splitMS := uint64(time.Since(splitStart).Milliseconds())

	// Window 2: post-split, same pool, same skew.
	ops.Store(0)
	postStart := time.Now()
	sleepCtx(ctx, base.Duration)
	postOps := ops.Load()
	postEl := time.Since(postStart)

	close(stop)
	wg.Wait()
	pre.Close()

	nFailed := failed.Load()
	rep.printf("  workers=%-3d pre %12.0f txns/s | split shard %d in %dms (epoch %d) | post %12.0f txns/s  failed=%d\n",
		w, float64(preOps)/preEl.Seconds(), hot, splitMS, epoch, float64(postOps)/postEl.Seconds(), nFailed)
	gauges := map[string]uint64{
		"hot_shard": hot, "split_ms": splitMS, "routing_epoch": epoch, "failed_requests": nFailed,
	}
	for _, pr := range []struct {
		phase string
		ops   uint64
		el    time.Duration
	}{{"pre", preOps, preEl}, {"post", postOps, postEl}} {
		rep.add(record{
			Bench:       "reshard",
			Name:        fmt.Sprintf("reshard-%s-store%d", pr.phase, storeShards),
			Workers:     w,
			DurationSec: pr.el.Seconds(),
			Ops:         pr.ops,
			TxnsPerSec:  float64(pr.ops) / pr.el.Seconds(),
			StoreShards: storeShards,
			Dist:        "zipfian",
			Session:     gauges,
		})
	}

	sdCtx, cancel := shutdownContext()
	if err := srv.Shutdown(sdCtx); err != nil {
		fmt.Fprintf(os.Stderr, "polybench: shutdown: %v\n", err)
	}
	cancel()
	<-serveDone
	if err := srv.Store().CloseDurability(); err != nil {
		fmt.Fprintf(os.Stderr, "polybench: wal close: %v\n", err)
	}
}

// benchRecover is the checkpoint + restart-cost experiment (B12): the
// same fill-checkpoint-churn-checkpoint-restart cycle measured under
// the full-only checkpoint policy and the incremental default, at two
// churn ratios. The full policy rewrites the whole keyspace on every
// pass and replays it all on restart; the incremental one writes a
// delta sized by the churn and restarts through base + delta — the
// rows make both costs visible side by side.
func benchRecover(ctx context.Context, rep *report, keys int) {
	if keys < 1000 {
		fmt.Fprintf(os.Stderr, "polybench: -recover-keys %d too small (need >= 1000)\n", keys)
		os.Exit(2)
	}
	rep.printf("== B12: checkpoint + restart cost, %d keys ==\n", keys)
	for _, churn := range []int{1, 10} {
		for _, v := range []struct {
			label    string
			maxChain int
		}{{"full", -1}, {"incr", 8}} {
			if ctx.Err() != nil {
				return
			}
			benchRecoverVariant(ctx, rep, keys, churn, v.maxChain, v.label)
		}
	}
}

func benchRecoverVariant(ctx context.Context, rep *report, keys, churnPct, maxChain int, label string) {
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "polybench: "+format+"\n", args...)
		os.Exit(1)
	}
	tmp, err := os.MkdirTemp("", "polybench-recover-*")
	if err != nil {
		fatal("wal dir: %v", err)
	}
	defer os.RemoveAll(tmp)
	dur := server.Durability{Dir: tmp, Fsync: wal.ModeOff, CheckpointEvery: -1, MaxChain: maxChain}
	st := server.NewStore(core.NewDefault())
	if _, err := st.EnableDurability(dur); err != nil {
		fatal("durability: %v", err)
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }
	exec := func(req *wire.Request) {
		if resp := st.Execute(req); resp.Status == wire.StatusErr {
			fatal("%v: %s", req.Op, resp.Msg)
		}
	}

	// Fill in TXN batches (one WAL record each), then cut the base.
	const batch = 256
	for lo := 0; lo < keys; lo += batch {
		hi := lo + batch
		if hi > keys {
			hi = keys
		}
		reqs := make([]wire.Request, 0, batch)
		for i := lo; i < hi; i++ {
			reqs = append(reqs, wire.Request{Op: wire.OpSet, Key: key(i),
				Val: []byte(fmt.Sprintf("val-%08d-%08x", i, i*2654435761))})
		}
		exec(&wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: reqs})
	}
	if err := st.Checkpoint(ctx); err != nil {
		fatal("base checkpoint: %v", err)
	}
	chain := st.WAL().Chain()
	baseBytes := chain.BaseBytes

	// Churn, then cut the checkpoint whose cost is under measurement.
	for i := 0; i < keys; i += 100 / churnPct {
		exec(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: key(i),
			Val: []byte("churn-" + strconv.Itoa(i))})
	}
	ckptStart := time.Now()
	if err := st.Checkpoint(ctx); err != nil {
		fatal("churn checkpoint: %v", err)
	}
	ckptDur := time.Since(ckptStart)
	chain = st.WAL().Chain()
	ckptBytes := chain.BaseBytes
	if chain.Len() > 0 {
		ckptBytes = chain.DeltaBytes()
	}
	if err := st.CloseDurability(); err != nil {
		fatal("wal close: %v", err)
	}

	// Restart: recovery loads base (+ deltas) and replays the tail.
	st2 := server.NewStore(core.NewDefault())
	restartStart := time.Now()
	if _, err := st2.EnableDurability(dur); err != nil {
		fatal("recovery: %v", err)
	}
	restartSec := time.Since(restartStart).Seconds()
	if err := st2.CloseDurability(); err != nil {
		fatal("wal close: %v", err)
	}

	rep.printf("  %-4s churn=%2d%%  ckpt %9dB in %7.1fms (base %9dB)  restart %7.1fms\n",
		label, churnPct, ckptBytes, float64(ckptDur.Milliseconds()), baseBytes, restartSec*1000)
	rep.add(record{
		Bench:       "recover",
		Name:        fmt.Sprintf("recover-%s-churn%d", label, churnPct),
		Workers:     1,
		DurationSec: restartSec,
		Ops:         uint64(keys),
		TxnsPerSec:  float64(keys) / restartSec,
		ChurnPct:    churnPct,
		RestartSec:  &restartSec,
		CkptBytes:   &ckptBytes,
		BaseBytes:   &baseBytes,
	})
}
