module polytm

go 1.24
