// Package polytm is a Go implementation of transaction polymorphism
// (Gramoli & Guerraoui, "Brief Announcement: Transaction Polymorphism",
// SPAA 2011): a software transactional memory whose transactions carry a
// per-transaction semantic parameter — the paper's start(p) — so that
// transactions of different semantics run concurrently in one memory:
//
//	tm := polytm.New()
//	x := polytm.NewTVar(tm, 0)
//
//	// The paper's default semantics "def": omit the parameter.
//	tm.Atomic(func(tx *polytm.Tx) error {
//	    v, _ := polytm.Get(tx, x)
//	    return polytm.Set(tx, x, v+1)
//	})
//
//	// The paper's start(weak): an elastic search that cuts its read
//	// prefix instead of aborting (accepts Figure 1's schedule).
//	tm.Atomic(func(tx *polytm.Tx) error {
//	    _, err := polytm.Get(tx, x)
//	    return err
//	}, polytm.WithSemantics(polytm.Weak))
//
// The available semantics are Def (opaque, monomorphic), Weak (elastic),
// Snapshot (multi-version read-only; never aborts) and Irrevocable
// (guaranteed to commit on its first attempt). Nested transactions
// compose their semantics under the TM's NestingPolicy — parameter,
// parent, or strongest-of-the-two, the three answers to the paper's
// concluding question.
//
// The whole lifecycle is parametric, not just the semantics: AtomicCtx
// bounds a transaction by a context.Context (cancellation aborts
// between attempts, interrupts contention-manager backoff, and wakes a
// transaction parked in Retry's wait), WithMaxAttempts bounds its
// retries, WithLabel tags it, and WithObserver / Config.Observer hook
// its commit/abort/wait events. Every engine-generated failure is an
// *AbortError carrying the semantics, attempt count and rival
// involvement while still matching the legacy sentinels via errors.Is.
//
// Transactional collections built on this API live in
// internal/structures and are re-exported by the example programs; the
// executable rendition of the paper's formal model (schedules,
// histories, acceptance, the two theorems) lives in internal/schedule
// and internal/accept, driven by cmd/schedcheck and cmd/theorems.
//
// The polymorphism is also network-facing: cmd/polyserve is a TCP
// transactional key-value server (internal/wire, internal/server) whose
// request classes map onto the four semantics — point reads run as
// snapshot transactions, range scans elastically, writes under def, and
// admin operations irrevocably, each overridable per request by a
// semantics byte in the frame header.
package polytm

import (
	"polytm/internal/core"
	"polytm/internal/stm"
)

// TM is a polymorphic transactional memory.
type TM = core.TM

// Tx is the in-transaction handle.
type Tx = core.Tx

// TVar is a typed transactional variable.
type TVar[T any] = core.TVar[T]

// Semantics is the paper's parameter p of start(p).
type Semantics = core.Semantics

// NestingPolicy selects how nested transactions compose semantics.
type NestingPolicy = core.NestingPolicy

// Config configures a TM.
type Config = core.Config

// Option customises one transaction.
type Option = core.Option

// Observer receives transaction lifecycle events (commit, abort,
// retry-wait); register one TM-wide via Config.Observer or per
// transaction via WithObserver.
type Observer = core.Observer

// TxnEvent is the event payload delivered to an Observer.
type TxnEvent = core.TxnEvent

// AbortError is the structured abort outcome carried by every
// engine-generated error: its legacy sentinel identity plus the
// transaction's semantics, attempt count and rival involvement.
// errors.Is against the sentinels (ErrTooManyAttempts, ErrCancelled,
// stm.ErrConflict, …) keeps working; errors.As recovers the detail.
type AbortError = core.AbortError

// The transaction semantics.
const (
	Def         = core.Def
	Weak        = core.Weak
	Snapshot    = core.Snapshot
	Irrevocable = core.Irrevocable
)

// The nesting composition policies.
const (
	NestStrongest = core.NestStrongest
	NestParam     = core.NestParam
	NestParent    = core.NestParent
)

// Retry, returned from a transaction body, blocks the transaction until
// a variable it read changes, then re-executes it — the composable
// blocking combinator.
var Retry = core.Retry

// ErrTooManyAttempts matches errors returned when a transaction
// exhausted its attempt bound (engine MaxAttempts or WithMaxAttempts).
var ErrTooManyAttempts = stm.ErrTooManyAttempts

// ErrCancelled matches errors returned when a transaction was abandoned
// because its context was cancelled or its deadline expired; the same
// error also matches context.Canceled / context.DeadlineExceeded.
var ErrCancelled = stm.ErrCancelled

// New creates a TM with default configuration (Def default semantics,
// strongest-wins nesting).
func New() *TM { return core.NewDefault() }

// NewWithConfig creates a TM with cfg.
func NewWithConfig(cfg Config) *TM { return core.New(cfg) }

// NewTVar allocates a transactional variable holding init.
func NewTVar[T any](tm *TM, init T) *TVar[T] { return core.NewTVar(tm, init) }

// Get reads a TVar inside a transaction.
func Get[T any](tx *Tx, tv *TVar[T]) (T, error) { return core.Get(tx, tv) }

// GetAnchored reads a TVar with an anchored entry (exempt from elastic
// window sliding; see core.GetAnchored).
func GetAnchored[T any](tx *Tx, tv *TVar[T]) (T, error) { return core.GetAnchored(tx, tv) }

// Set writes a TVar inside a transaction.
func Set[T any](tx *Tx, tv *TVar[T], val T) error { return core.Set(tx, tv, val) }

// Modify applies f to a TVar's value inside a transaction.
func Modify[T any](tx *Tx, tv *TVar[T], f func(T) T) error { return core.Modify(tx, tv, f) }

// WithSemantics is the paper's start(p): set the semantic parameter.
func WithSemantics(s Semantics) Option { return core.WithSemantics(s) }

// WithContentionManager gives the transaction its own liveness policy;
// the factories live in internal/stm (NewSuicide, NewPolite, NewBackoff,
// NewKarma, NewTimestamp, NewAggressive).
func WithContentionManager(f stm.CMFactory) Option { return core.WithContentionManager(f) }

// WithMaxAttempts bounds the transaction to n attempts; exhausting the
// bound surfaces as an *AbortError matching ErrTooManyAttempts.
func WithMaxAttempts(n int) Option { return core.WithMaxAttempts(n) }

// WithLabel tags the transaction's Observer events.
func WithLabel(s string) Option { return core.WithLabel(s) }

// WithObserver gives this transaction its own lifecycle observer.
func WithObserver(o Observer) Option { return core.WithObserver(o) }
