package polytm_test

import (
	"sync"
	"testing"

	"polytm"
)

func TestPublicAPICounter(t *testing.T) {
	tm := polytm.New()
	x := polytm.NewTVar(tm, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				if err := tm.Atomic(func(tx *polytm.Tx) error {
					return polytm.Modify(tx, x, func(v int) int { return v + 1 })
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := x.LoadDirect(); got != 1000 {
		t.Fatalf("counter = %d, want 1000", got)
	}
}

func TestPublicAPISemantics(t *testing.T) {
	tm := polytm.New()
	for _, s := range []polytm.Semantics{polytm.Def, polytm.Weak, polytm.Snapshot, polytm.Irrevocable} {
		err := tm.Atomic(func(tx *polytm.Tx) error {
			if tx.Semantics() != s {
				t.Fatalf("semantics = %v, want %v", tx.Semantics(), s)
			}
			return nil
		}, polytm.WithSemantics(s))
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPIRetry(t *testing.T) {
	tm := polytm.New()
	flag := polytm.NewTVar(tm, false)
	woke := make(chan struct{})
	go func() {
		_ = tm.Atomic(func(tx *polytm.Tx) error {
			v, err := polytm.Get(tx, flag)
			if err != nil {
				return err
			}
			if !v {
				return polytm.Retry
			}
			return nil
		})
		close(woke)
	}()
	if err := tm.Atomic(func(tx *polytm.Tx) error {
		return polytm.Set(tx, flag, true)
	}); err != nil {
		t.Fatal(err)
	}
	<-woke
}

func TestPublicAPINestingPolicies(t *testing.T) {
	tm := polytm.NewWithConfig(polytm.Config{Nesting: polytm.NestParam})
	var inner polytm.Semantics
	_ = tm.Atomic(func(tx *polytm.Tx) error {
		return tx.Atomic(func(tx *polytm.Tx) error {
			inner = tx.Semantics()
			return nil
		}, polytm.WithSemantics(polytm.Weak))
	})
	if inner != polytm.Weak {
		t.Fatalf("NestParam inner semantics = %v, want weak", inner)
	}
}
