// Benchmark harness: one benchmark family per experiment in the
// EXPERIMENTS.md index. Run everything with
//
//	go test -bench=. -benchmem
//
// B1  BenchmarkIntSetList        sorted-list integer set across synchronizations
// B2  BenchmarkHashResize        hash table with a background resizer
// B3  BenchmarkIntSetSkip        skip-list integer set
// B4  BenchmarkSnapshotScan      full scans under writers, def vs snapshot
// B5  BenchmarkContentionManagers  CM ablation on a hotspot
// B6  BenchmarkNestingPolicies   nested-transaction composition overhead
// F1  BenchmarkFigure1Acceptance the three executors on Figure 1
// T1/T2 BenchmarkTheoremCheck    bounded exhaustive theorem checking
// A1  BenchmarkAcceptanceRate    random-schedule acceptance sampling
package polytm_test

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"polytm"
	"polytm/internal/accept"
	"polytm/internal/baseline"
	"polytm/internal/core"
	"polytm/internal/lockfree"
	"polytm/internal/schedule"
	"polytm/internal/stm"
	"polytm/internal/structures"
	"polytm/internal/workload"
)

// runIntSet drives the standard integer-set workload through b.N
// parallel operations.
func runIntSet(b *testing.B, s workload.IntSet, mix workload.Mix) {
	b.Helper()
	workload.Prefill(s, mix.KeyRange)
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		g := workload.NewGenerator(seed.Add(1)*7919, mix)
		for pb.Next() {
			workload.Apply(s, g.Next())
		}
	})
}

// B1: sorted-list integer set. The shape that reproduces the paper's
// claim: stm-poly(weak) >= stm-mono(def) everywhere, with the gap
// widening on search-dominated mixes (low update %), approaching the
// hand-tuned lazy/lock-free lists.
func BenchmarkIntSetList(b *testing.B) {
	impls := []struct {
		name string
		mk   func() workload.IntSet
	}{
		{"coarse-lock", func() workload.IntSet { return baseline.NewCoarseList() }},
		{"lazy-lock", func() workload.IntSet { return baseline.NewLazyList() }},
		{"lock-free", func() workload.IntSet { return lockfree.NewList() }},
		{"stm-mono", func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Def) }},
		{"stm-poly", func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Weak) }},
	}
	for _, impl := range impls {
		for _, upd := range []int{0, 10, 50} {
			b.Run(fmt.Sprintf("%s/upd=%d", impl.name, upd), func(b *testing.B) {
				runIntSet(b, impl.mk(), workload.Mix{UpdatePct: upd, KeyRange: 256})
			})
		}
	}
}

// B2: hash table under a background resizer. stm-mono's operations and
// the resize collide as monolithic peers; stm-poly's elastic operations
// slide past it. The lock baselines stop the world; split-ordered (no
// resizer needed) is the tuned upper bound.
func BenchmarkHashResize(b *testing.B) {
	mix := workload.Mix{UpdatePct: 25, KeyRange: 2048}
	type resizable interface {
		workload.IntSet
		Resize(bool) int
	}
	impls := []struct {
		name string
		mk   func() resizable
	}{
		{"stm-mono", func() resizable { return structures.NewTHash(core.NewDefault(), core.Def, 64) }},
		{"stm-poly", func() resizable { return structures.NewTHash(core.NewDefault(), core.Weak, 64) }},
		{"coarse-lock", func() resizable { return baseline.NewCoarseHash(64) }},
		{"striped-lock", func() resizable { return baseline.NewStripedHash(64, 16) }},
	}
	for _, impl := range impls {
		b.Run(impl.name, func(b *testing.B) {
			s := impl.mk()
			workload.Prefill(s, mix.KeyRange)
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				grow := true
				for {
					select {
					case <-stop:
						return
					default:
						s.Resize(grow)
						grow = !grow
						time.Sleep(2 * time.Millisecond)
					}
				}
			}()
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := workload.NewGenerator(seed.Add(1)*104729, mix)
				for pb.Next() {
					workload.Apply(s, g.Next())
				}
			})
			b.StopTimer()
			close(stop)
			<-done
		})
	}
	b.Run("split-ordered", func(b *testing.B) {
		runIntSet(b, lockfree.NewSplitOrdered(), mix)
	})
}

// B3: skip-list integer set.
func BenchmarkIntSetSkip(b *testing.B) {
	impls := []struct {
		name string
		mk   func() workload.IntSet
	}{
		{"coarse-lock", func() workload.IntSet { return baseline.NewCoarseSkipList() }},
		{"stm-mono", func() workload.IntSet { return structures.NewTSkipList(core.NewDefault(), core.Def) }},
		{"stm-poly", func() workload.IntSet { return structures.NewTSkipList(core.NewDefault(), core.Weak) }},
	}
	for _, impl := range impls {
		for _, upd := range []int{10} {
			b.Run(fmt.Sprintf("%s/upd=%d", impl.name, upd), func(b *testing.B) {
				runIntSet(b, impl.mk(), workload.Mix{UpdatePct: upd, KeyRange: 2048})
			})
		}
	}
}

// B4: full-structure scans concurrent with writers: def scans abort and
// retry under churn; snapshot scans never do.
func BenchmarkSnapshotScan(b *testing.B) {
	for _, semName := range []struct {
		name string
		sem  core.Semantics
	}{{"def", core.Def}, {"snapshot", core.Snapshot}} {
		b.Run(semName.name, func(b *testing.B) {
			tm := core.NewDefault()
			const n = 128
			vars := make([]*core.TVar[int], n)
			for i := range vars {
				vars[i] = core.NewTVar(tm, 1)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				r := uint32(1)
				for {
					select {
					case <-stop:
						return
					default:
					}
					r = r*1664525 + 1013904223
					i, j := int(r>>8)%n, int(r>>16)%n
					if i == j {
						continue
					}
					_ = tm.Atomic(func(tx *core.Tx) error {
						if err := core.Modify(tx, vars[i], func(v int) int { return v - 1 }); err != nil {
							return err
						}
						return core.Modify(tx, vars[j], func(v int) int { return v + 1 })
					})
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum := 0
				_ = tm.Atomic(func(tx *core.Tx) error {
					sum = 0
					for k := 0; k < n; k++ {
						v, err := core.Get(tx, vars[k])
						if err != nil {
							return err
						}
						sum += v
					}
					return nil
				}, core.WithSemantics(semName.sem))
				if sum != n {
					b.Fatalf("torn sum %d", sum)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}

// B5: contention-manager ablation on an 8-variable hotspot.
func BenchmarkContentionManagers(b *testing.B) {
	cms := []struct {
		name string
		f    stm.CMFactory
	}{
		{"suicide", stm.NewSuicide()},
		{"polite", stm.NewPolite(8)},
		{"backoff", stm.NewBackoff(0, 0)},
		{"karma", stm.NewKarma()},
		{"timestamp", stm.NewTimestamp()},
		{"aggressive", stm.NewAggressive()},
	}
	for _, cm := range cms {
		b.Run(cm.name, func(b *testing.B) {
			tm := core.NewDefault()
			vars := make([]*core.TVar[int], 8)
			for i := range vars {
				vars[i] = core.NewTVar(tm, 0)
			}
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := uint32(seed.Add(1))
				for pb.Next() {
					r = r*1664525 + 1013904223
					i, j := int(r>>8)%8, int(r>>16)%8
					_ = tm.Atomic(func(tx *core.Tx) error {
						if err := core.Modify(tx, vars[i], func(v int) int { return v + 1 }); err != nil {
							return err
						}
						return core.Modify(tx, vars[j], func(v int) int { return v - 1 })
					}, core.WithContentionManager(cm.f))
				}
			})
		})
	}
}

// B6: nesting-policy ablation — a def transaction wrapping a weak scope
// per iteration, under each composition policy.
func BenchmarkNestingPolicies(b *testing.B) {
	for _, pol := range []polytm.NestingPolicy{polytm.NestStrongest, polytm.NestParam, polytm.NestParent} {
		b.Run(pol.String(), func(b *testing.B) {
			tm := polytm.NewWithConfig(polytm.Config{Nesting: pol})
			const n = 32
			vars := make([]*polytm.TVar[int], n)
			for i := range vars {
				vars[i] = polytm.NewTVar(tm, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = tm.Atomic(func(tx *polytm.Tx) error {
					return tx.Atomic(func(tx *polytm.Tx) error {
						for k := 0; k < n; k++ {
							if _, err := polytm.Get(tx, vars[k]); err != nil {
								return err
							}
						}
						return nil
					}, polytm.WithSemantics(polytm.Weak))
				})
			}
		})
	}
}

// F1: the three executors on the paper's Figure 1.
func BenchmarkFigure1Acceptance(b *testing.B) {
	tm := schedule.Figure1TM()
	lk := schedule.Figure1Lock()
	sems := schedule.Figure1LockSems()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if schedule.ExecMonomorphic(tm).Accepted {
			b.Fatal("mono accepted Figure 1")
		}
		if !schedule.ExecPolymorphic(tm).Accepted {
			b.Fatal("poly rejected Figure 1")
		}
		if !schedule.ExecLockBased(lk, sems).Accepted {
			b.Fatal("locks rejected Figure 1")
		}
	}
}

// T1/T2: bounded exhaustive theorem checking (one-access operations per
// iteration keeps the space small enough to repeat).
func BenchmarkTheoremCheck(b *testing.B) {
	cfg := accept.EnumConfig{
		MaxAccesses: 1,
		Registers:   []schedule.Register{"x", "y"},
		Params:      []schedule.Sem{schedule.SemDef, schedule.SemWeak},
	}
	b.Run("theorem1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !accept.CheckTheorem1(cfg).Holds() {
				b.Fatal("theorem 1 failed")
			}
		}
	})
	b.Run("theorem2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !accept.CheckTheorem2(cfg).Holds() {
				b.Fatal("theorem 2 failed")
			}
		}
	})
}

// A1: random-schedule acceptance-rate sampling.
func BenchmarkAcceptanceRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := accept.AcceptanceRates(int64(i+1), 200, 3)
		if r.Lock < r.Poly || r.Poly < r.Mono {
			b.Fatalf("hierarchy violated: %v", r)
		}
	}
}

// Ablation: the elastic window size (ε-STM's read buffer; DESIGN.md §6).
// Larger windows validate more on every cut and at each write anchor;
// window 2 is the paper-faithful default.
func BenchmarkElasticWindowSize(b *testing.B) {
	for _, win := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("window=%d", win), func(b *testing.B) {
			tm := core.New(core.Config{Engine: stm.Config{ElasticWindow: win}})
			s := structures.NewTList(tm, core.Weak)
			runIntSet(b, s, workload.Mix{UpdatePct: 20, KeyRange: 256})
		})
	}
}

// Ablation: where elasticity pays — the poly/mono gap versus structure
// depth. Longer lists mean longer read prefixes for def to drag along.
func BenchmarkListLengthSweep(b *testing.B) {
	for _, keys := range []uint64{64, 256, 1024} {
		for _, sem := range []struct {
			name string
			s    core.Semantics
		}{{"mono", core.Def}, {"poly", core.Weak}} {
			b.Run(fmt.Sprintf("keys=%d/%s", keys, sem.name), func(b *testing.B) {
				s := structures.NewTList(core.NewDefault(), sem.s)
				runIntSet(b, s, workload.Mix{UpdatePct: 10, KeyRange: keys})
			})
		}
	}
}

// Scalability: a mixed-semantics workload (the paper's polymorphism in
// one memory — def updates, weak elastic walks, snapshot scans, the
// occasional irrevocable write) at increasing parallelism. This is the
// benchmark the sharded engine state exists for: before striping, five
// global contention points (stats counters, txn-id counter, the live
// map, the snapshot registry, the var-id counter) flatten the curve.
func BenchmarkScalabilityMixed(b *testing.B) {
	maxProcs := runtime.GOMAXPROCS(0)
	procSet := []int{1, 4, maxProcs}
	seen := map[int]bool{}
	for _, procs := range procSet {
		if procs < 1 || seen[procs] {
			continue
		}
		seen[procs] = true
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			e := stm.NewDefaultEngine()
			vars := workload.MixedVars(e, 64)
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := workload.NewMixedWorker(e, vars, workload.MixedSeed(uint64(seed.Add(1))))
				for pb.Next() {
					w.Step()
				}
			})
		})
	}
}

// Scalability: snapshot-registry churn. Every snapshot transaction
// registers at begin and unregisters at finish; with many concurrent
// snapshot readers the pre-sharding registry serialized all of them on
// one mutex and rescanned the whole active table on every finish —
// O(live snapshots) work under a global lock. The sharded registry
// splits both the lock and the rescan.
func BenchmarkSnapshotRegistryChurn(b *testing.B) {
	for _, par := range []int{4, 16} {
		b.Run(fmt.Sprintf("par=%d", par), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
			e := stm.NewDefaultEngine()
			const nvars = 16
			vars := make([]*stm.Var, nvars)
			for i := range vars {
				vars[i] = e.NewVar(i)
			}
			b.SetParallelism(par)
			var seed atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int(seed.Add(1)) % nvars
				for pb.Next() {
					_ = e.Run(stm.SemanticsSnapshot, func(tx *stm.Txn) error {
						_, err := tx.Read(vars[i])
						return err
					})
				}
			})
		})
	}
}

// Engine micro-benchmarks: the cost model behind the experiment shapes.
func BenchmarkEngineReadWrite(b *testing.B) {
	b.Run("read-only-8", func(b *testing.B) {
		e := stm.NewDefaultEngine()
		vars := make([]*stm.Var, 8)
		for i := range vars {
			vars[i] = e.NewVar(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Run(stm.SemanticsDef, func(tx *stm.Txn) error {
				for _, v := range vars {
					if _, err := tx.Read(v); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
	b.Run("write-4", func(b *testing.B) {
		e := stm.NewDefaultEngine()
		vars := make([]*stm.Var, 4)
		for i := range vars {
			vars[i] = e.NewVar(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Run(stm.SemanticsDef, func(tx *stm.Txn) error {
				for _, v := range vars {
					if err := tx.Write(v, i); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
	b.Run("elastic-walk-64", func(b *testing.B) {
		e := stm.NewDefaultEngine()
		vars := make([]*stm.Var, 64)
		for i := range vars {
			vars[i] = e.NewVar(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Run(stm.SemanticsWeak, func(tx *stm.Txn) error {
				for _, v := range vars {
					if _, err := tx.Read(v); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
	b.Run("def-walk-64", func(b *testing.B) {
		e := stm.NewDefaultEngine()
		vars := make([]*stm.Var, 64)
		for i := range vars {
			vars[i] = e.NewVar(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = e.Run(stm.SemanticsDef, func(tx *stm.Txn) error {
				for _, v := range vars {
					if _, err := tx.Read(v); err != nil {
						return err
					}
				}
				return nil
			})
		}
	})
}
