// Integer-set shootout: the sorted-list micro-benchmark of the STM
// literature across all three synchronization families of the paper —
// lock-based (coarse and lazy), lock-free (Michael), and transactional
// (monomorphic def vs polymorphic weak) — over a worker sweep. The
// absolute numbers are machine-dependent; the shape to look for is the
// polymorphic column beating the monomorphic one on search-dominated
// mixes and closing the gap to the tuned implementations.
package main

import (
	"fmt"
	"time"

	"polytm/internal/baseline"
	"polytm/internal/core"
	"polytm/internal/harness"
	"polytm/internal/lockfree"
	"polytm/internal/structures"
	"polytm/internal/workload"
)

func main() {
	workers := []int{1, 2, 4, 8}
	for _, updates := range []int{0, 10, 50} {
		cfg := harness.Config{
			Duration: 150 * time.Millisecond,
			Mix:      workload.Mix{UpdatePct: updates, KeyRange: 512},
			Seed:     1,
		}
		var rows []harness.Result
		for _, spec := range []struct {
			name string
			mk   func() workload.IntSet
		}{
			{"coarse-lock", func() workload.IntSet { return baseline.NewCoarseList() }},
			{"lazy-lock", func() workload.IntSet { return baseline.NewLazyList() }},
			{"lock-free", func() workload.IntSet { return lockfree.NewList() }},
			{"stm-mono(def)", func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Def) }},
			{"stm-poly(weak)", func() workload.IntSet { return structures.NewTList(core.NewDefault(), core.Weak) }},
		} {
			c := cfg
			c.Name = spec.name
			rows = append(rows, harness.Sweep(spec.mk, c, workers)...)
		}
		fmt.Print(harness.Table(fmt.Sprintf("sorted-list set, %d%% updates", updates), rows))
		fmt.Println()
	}
}
