// Figure 1, live: the exact schedule of the paper driven through the
// real STM engine. The weak (elastic) search of p1 commits while the
// identical interleaving under the default monomorphic semantics
// aborts — transaction polymorphism enabling strictly higher
// concurrency, on real hardware rather than on paper.
package main

import (
	"fmt"

	"polytm/internal/schedule"
	"polytm/internal/stm"
)

func main() {
	fmt.Println("The paper's Figure 1 (transactional form):")
	fmt.Println(schedule.Figure1TM().Grid())

	fmt.Println("Abstract executor verdicts:")
	fmt.Printf("  monomorphic: accepted=%v\n", schedule.ExecMonomorphic(schedule.Figure1TM()).Accepted)
	fmt.Printf("  polymorphic: accepted=%v\n", schedule.ExecPolymorphic(schedule.Figure1TM()).Accepted)
	fmt.Printf("  lock-based:  accepted=%v\n",
		schedule.ExecLockBased(schedule.Figure1Lock(), schedule.Figure1LockSems()).Accepted)

	fmt.Println("\nReal engine, p1 = start(weak):")
	replay(stm.SemanticsWeak)
	fmt.Println("\nReal engine, p1 = start(def) — the monomorphic run:")
	replay(stm.SemanticsDef)
}

// replay drives the Figure 1 interleaving step by step, narrating.
func replay(sem stm.Semantics) {
	e := stm.NewDefaultEngine()
	x, y, z := e.NewVar("x0"), e.NewVar("y0"), e.NewVar("z0")

	p1 := e.Begin(sem)
	vx, err := p1.Read(x)
	fmt.Printf("  p1 r(x) -> %v (err=%v)\n", vx, err)

	p3 := e.Begin(stm.SemanticsDef)
	_ = p3.Write(z, "z3")
	vy, err := p1.Read(y)
	fmt.Printf("  p1 r(y) -> %v (err=%v)\n", vy, err)
	_ = p3.Commit()
	fmt.Println("  p3 committed w(z,z3)")

	p2 := e.Begin(stm.SemanticsDef)
	_ = p2.Write(x, "x2")
	_ = p2.Commit()
	fmt.Println("  p2 committed w(x,x2)")

	vz, err := p1.Read(z)
	if err != nil {
		fmt.Printf("  p1 r(z) -> ABORT (%v)\n", err)
		fmt.Println("  => schedule rejected, as Theorem 2 requires of every monomorphic TM")
		return
	}
	fmt.Printf("  p1 r(z) -> %v\n", vz)
	if err := p1.Commit(); err != nil {
		fmt.Printf("  p1 commit -> ABORT (%v)\n", err)
		return
	}
	cuts := e.Stats().ElasticCuts
	fmt.Printf("  p1 committed having observed (x0, y0, z3); elastic cuts performed: %d\n", cuts)
	fmt.Println("  => schedule accepted: pairwise critical steps each atomic at their own point")
}
