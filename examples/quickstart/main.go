// Quickstart: the polymorphic transaction API in five minutes — typed
// transactional variables, the default (def) semantics, the paper's
// start(p) parameter, atomic composition (a bank transfer), and the
// context-first lifecycle surface (deadlines, attempt bounds, typed
// abort errors).
package main

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"polytm"
)

func main() {
	tm := polytm.New()

	// A transactional counter incremented from many goroutines: the
	// paper's "novice programmer" path — no parameter, def semantics,
	// no locks, no lost updates.
	counter := polytm.NewTVar(tm, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				_ = tm.Atomic(func(tx *polytm.Tx) error {
					return polytm.Modify(tx, counter, func(v int) int { return v + 1 })
				})
			}
		}()
	}
	wg.Wait()
	fmt.Printf("counter after 8x1000 increments: %d\n", counter.LoadDirect())

	// Atomic composition: a transfer touching two accounts is one
	// transaction; a concurrent sum always sees a constant total.
	alice := polytm.NewTVar(tm, 100)
	bob := polytm.NewTVar(tm, 100)
	transfer := func(amount int) error {
		return tm.Atomic(func(tx *polytm.Tx) error {
			a, err := polytm.Get(tx, alice)
			if err != nil {
				return err
			}
			if a < amount {
				return fmt.Errorf("insufficient funds")
			}
			if err := polytm.Set(tx, alice, a-amount); err != nil {
				return err
			}
			return polytm.Modify(tx, bob, func(v int) int { return v + amount })
		})
	}
	for i := 0; i < 5; i++ {
		if err := transfer(10); err != nil {
			fmt.Println("transfer failed:", err)
		}
	}
	total := 0
	_ = tm.Atomic(func(tx *polytm.Tx) error {
		a, err := polytm.Get(tx, alice)
		if err != nil {
			return err
		}
		b, err := polytm.Get(tx, bob)
		if err != nil {
			return err
		}
		total = a + b
		return nil
	})
	fmt.Printf("alice=%d bob=%d total=%d (invariant: 200)\n",
		alice.LoadDirect(), bob.LoadDirect(), total)

	// The paper's start(p): the same Atomic with a semantic parameter.
	// A weak (elastic) read-only walk never aborts on conflicts behind
	// its window; a snapshot transaction reads a frozen consistent cut.
	_ = tm.Atomic(func(tx *polytm.Tx) error {
		v, err := polytm.Get(tx, counter)
		if err != nil {
			return err
		}
		fmt.Printf("weak transaction observed counter=%d (semantics %v)\n", v, tx.Semantics())
		return nil
	}, polytm.WithSemantics(polytm.Weak))

	_ = tm.Atomic(func(tx *polytm.Tx) error {
		v, err := polytm.Get(tx, counter)
		if err != nil {
			return err
		}
		fmt.Printf("snapshot transaction observed counter=%d (never aborts)\n", v)
		return nil
	}, polytm.WithSemantics(polytm.Snapshot))

	// The context-first lifecycle: AtomicCtx bounds the whole run — a
	// deadline (or cancelled request context) releases a transaction
	// that would otherwise retry or wait forever, and the typed
	// *AbortError says exactly how the transaction ended.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := tm.AtomicCtx(ctx, func(tx *polytm.Tx) error {
		v, err := polytm.Get(tx, counter)
		if err != nil {
			return err
		}
		if v < 1_000_000 { // never true: park in Retry until cancelled
			return polytm.Retry
		}
		return nil
	}, polytm.WithLabel("quickstart-wait"))
	var ae *polytm.AbortError
	if errors.As(err, &ae) {
		fmt.Printf("deadline released the waiter: sem=%v attempts=%d (is ErrCancelled: %v)\n",
			ae.Semantics, ae.Attempts, errors.Is(err, polytm.ErrCancelled))
	}

	// WithMaxAttempts bounds retries instead of time; the error carries
	// the count and still matches the legacy sentinel.
	err = tm.Atomic(func(tx *polytm.Tx) error {
		return polytm.Retry // never satisfied
	}, polytm.WithMaxAttempts(2))
	fmt.Printf("attempt bound: errors.Is(err, ErrTooManyAttempts)=%v\n",
		errors.Is(err, polytm.ErrTooManyAttempts))
}
