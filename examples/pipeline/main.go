// Pipeline: transactional queues and deques composed into a multi-stage
// pipeline. Every hand-off is one atomic transaction (dequeue + enqueue
// in a single step, via structures.Transfer-style composition), so no
// item is ever in zero or two stages at once — an invariant a snapshot
// monitor verifies live while the pipeline runs.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"polytm/internal/core"
	"polytm/internal/structures"
)

func main() {
	tm := core.NewDefault()
	inbox := structures.NewTQueue[int](tm)
	work := structures.NewTQueue[int](tm)
	done := structures.NewTQueue[int](tm)

	const items = 2000
	inflight := core.NewTVar(tm, 0) // items currently inside the pipeline

	// Producer: admit items into the pipeline atomically with the
	// in-flight counter.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= items; i++ {
			_ = tm.Atomic(func(tx *core.Tx) error {
				if err := inbox.EnqueueTx(tx, i); err != nil {
					return err
				}
				return core.Modify(tx, inflight, func(v int) int { return v + 1 })
			})
		}
	}()

	// Stage workers: move items inbox -> work (doubling them), then
	// work -> done (negating). Each move is one transaction.
	var moved1, moved2 atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for moved1.Load() < items {
				ok := false
				_ = tm.Atomic(func(tx *core.Tx) error {
					v, has, err := inbox.DequeueTx(tx)
					if err != nil || !has {
						ok = false
						return err
					}
					ok = true
					return work.EnqueueTx(tx, v*2)
				})
				if ok {
					moved1.Add(1)
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for moved2.Load() < items {
				ok := false
				_ = tm.Atomic(func(tx *core.Tx) error {
					v, has, err := work.DequeueTx(tx)
					if err != nil || !has {
						ok = false
						return err
					}
					ok = true
					return done.EnqueueTx(tx, -v)
				})
				if ok {
					moved2.Add(1)
				}
			}
		}()
	}

	// Snapshot monitor: at any instant, items in the three queues must
	// equal the in-flight counter — a cross-structure invariant readable
	// without blocking anyone.
	monitorStop := make(chan struct{})
	var monitorWg sync.WaitGroup
	monitorWg.Add(1)
	violations := 0
	checks := 0
	go func() {
		defer monitorWg.Done()
		for {
			select {
			case <-monitorStop:
				return
			default:
			}
			var q1, q2, q3, inf int
			_ = tm.Atomic(func(tx *core.Tx) error {
				var err error
				if q1, err = queueLenTx(tx, inbox); err != nil {
					return err
				}
				if q2, err = queueLenTx(tx, work); err != nil {
					return err
				}
				if q3, err = queueLenTx(tx, done); err != nil {
					return err
				}
				inf, err = core.Get(tx, inflight)
				return err
			}, core.WithSemantics(core.Snapshot))
			checks++
			if q1+q2+q3 != inf {
				violations++
			}
		}
	}()

	wg.Wait()
	close(monitorStop)
	monitorWg.Wait()

	// Drain and verify.
	sum := 0
	n := 0
	for {
		v, ok := done.Dequeue()
		if !ok {
			break
		}
		sum += v
		n++
	}
	wantSum := 0
	for i := 1; i <= items; i++ {
		wantSum += -2 * i
	}
	fmt.Printf("pipeline: %d items through 2 stages; sum=%d (want %d)\n", n, sum, wantSum)
	fmt.Printf("monitor: %d snapshot checks, %d invariant violations\n", checks, violations)
}

func queueLenTx(tx *core.Tx, q *structures.TQueue[int]) (int, error) {
	return q.LenTx(tx)
}
