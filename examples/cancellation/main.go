// Cancellation: the context-first transaction lifecycle end to end —
// a blocked consumer woken by a deadline, backoff interrupted
// mid-sleep, per-transaction attempt bounds, typed abort errors
// inspected with errors.Is/errors.As, and an Observer watching every
// commit, abort and Retry-wait in the process.
package main

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"polytm"
	"polytm/internal/stm"
	"polytm/internal/structures"
)

// tally is a TM-wide Observer: every transaction reports its outcome
// here — the hook a metrics exporter would use.
type tally struct {
	commits, aborts, waits atomic.Int64
}

func (t *tally) OnCommit(ev polytm.TxnEvent) { t.commits.Add(1) }
func (t *tally) OnAbort(ev polytm.TxnEvent)  { t.aborts.Add(1) }
func (t *tally) OnWait(ev polytm.TxnEvent)   { t.waits.Add(1) }

func main() {
	obs := &tally{}
	tm := polytm.NewWithConfig(polytm.Config{Observer: obs})

	// 1. A consumer parked on an empty queue is woken by its deadline,
	// not by data: the Retry combinator's wait is a cancellation point,
	// so a dead request never holds a goroutine hostage.
	q := structures.NewTQueue[string](tm)
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	start := time.Now()
	_, err := q.DequeueBlockingCtx(ctx)
	cancel()
	fmt.Printf("1. parked consumer released after %v: ErrCancelled=%v DeadlineExceeded=%v\n",
		time.Since(start).Round(time.Millisecond),
		errors.Is(err, polytm.ErrCancelled), errors.Is(err, context.DeadlineExceeded))

	// ...while a consumer whose context stays alive is woken by data.
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Enqueue("payload")
	}()
	v, err := q.DequeueBlockingCtx(context.Background())
	fmt.Printf("1b. live consumer got %q (err=%v)\n", v, err)

	// 2. Cancellation interrupts a contention manager's backoff sleep:
	// this transaction aborts with a conflict every attempt and its
	// backoff manager sleeps between attempts, yet the deadline holds.
	x := polytm.NewTVar(tm, 0)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 25*time.Millisecond)
	start = time.Now()
	err = tm.AtomicCtx(ctx2, func(tx *polytm.Tx) error {
		if err := polytm.Set(tx, x, 1); err != nil {
			return err
		}
		return &stm.AbortError{Sentinel: stm.ErrConflict} // simulate endless contention
	}, polytm.WithContentionManager(stm.NewBackoff(5*time.Millisecond, 50*time.Millisecond)),
		polytm.WithLabel("hopeless-writer"))
	cancel2()
	var ae *polytm.AbortError
	errors.As(err, &ae)
	fmt.Printf("2. backoff interrupted after %v: attempts=%d sem=%v, x still %d\n",
		time.Since(start).Round(time.Millisecond), ae.Attempts, ae.Semantics, x.LoadDirect())

	// 3. WithMaxAttempts bounds retries instead of time, and the typed
	// error reports exactly how the transaction died.
	err = tm.Atomic(func(tx *polytm.Tx) error {
		return &stm.AbortError{Sentinel: stm.ErrConflict}
	}, polytm.WithMaxAttempts(3))
	errors.As(err, &ae)
	fmt.Printf("3. bounded transaction: ErrTooManyAttempts=%v attempts=%d\n",
		errors.Is(err, polytm.ErrTooManyAttempts), ae.Attempts)

	// 4. The observer saw everything: the parked waits, the retry
	// aborts, the commits of the queue traffic.
	fmt.Printf("4. observer: commits=%d aborts=%d waits=%d\n",
		obs.commits.Load(), obs.aborts.Load(), obs.waits.Load())
}
