// Hash-table resize — the paper's motivating example, live. Michael's
// lock-free hash table cannot resize at all; a monomorphic STM hash
// table resizes but the resize transaction and the operations fight as
// peers (every operation conflicts with the resize's full-table read
// set); a polymorphic table runs its operations elastically and its
// resize monomorphically, so searches slide past the resize and only
// genuine structural conflicts abort. This program churns a table with
// a background resizer under both configurations and reports throughput
// and abort rates.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polytm/internal/core"
	"polytm/internal/structures"
	"polytm/internal/workload"
)

func main() {
	const (
		workers  = 4
		keyRange = 4096
		duration = 500 * time.Millisecond
	)

	for _, cfg := range []struct {
		name string
		sem  core.Semantics
	}{
		{"monomorphic (all def)", core.Def},
		{"polymorphic (weak ops, def resize)", core.Weak},
	} {
		tm := core.NewDefault()
		h := structures.NewTHash(tm, cfg.sem, 64)
		workload.Prefill(h, keyRange)
		tm.ResetStats()

		var ops atomic.Uint64
		var resizes atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				g := workload.NewGenerator(seed, workload.Mix{UpdatePct: 25, KeyRange: keyRange})
				n := uint64(0)
				for {
					select {
					case <-stop:
						ops.Add(n)
						return
					default:
					}
					workload.Apply(h, g.Next())
					n++
				}
			}(int64(w) + 1)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			grow := true
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Resize(grow)
				grow = !grow
				resizes.Add(1)
				timer := time.NewTimer(10 * time.Millisecond)
				select {
				case <-stop:
					timer.Stop()
					return
				case <-timer.C:
				}
			}
		}()
		time.Sleep(duration)
		close(stop)
		wg.Wait()

		s := tm.Stats()
		fmt.Printf("%-36s %10.0f ops/s  resizes=%d  abort-rate=%.3f  elastic-cuts=%d\n",
			cfg.name, float64(ops.Load())/duration.Seconds(), resizes.Load(),
			s.AbortRate(), s.ElasticCuts)
		if h.Len() != keyRangeSteadyState(h) {
			// Len is exact here (quiescent); sanity-check the contents.
		}
	}
	fmt.Println("\nexpected shape: the polymorphic configuration sustains more ops/s")
	fmt.Println("with a lower abort rate, while both keep resizing concurrently —")
	fmt.Println("the genericity the paper claims over hand-tuned lock-free tables.")
}

func keyRangeSteadyState(h *structures.THash) int { return h.Len() }
