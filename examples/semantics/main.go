// Semantics tour: every transaction semantics the polymorphic memory
// offers, each doing the thing it exists for — plus nested-transaction
// composition under the three policies of the paper's concluding
// question.
package main

import (
	"fmt"
	"sync"
	"time"

	"polytm"
	"polytm/internal/core"
	"polytm/internal/structures"
)

func main() {
	snapshotDemo()
	irrevocableDemo()
	nestingDemo()
	compositionDemo()
}

// snapshotDemo: a long read-only scan under Snapshot semantics never
// aborts and never observes a torn state, no matter how hard writers
// churn.
func snapshotDemo() {
	tm := polytm.New()
	const n = 64
	vars := make([]*polytm.TVar[int], n)
	for i := range vars {
		vars[i] = polytm.NewTVar(tm, 1000)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			r := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*1664525 + 1013904223
				i, j := int(r>>8)%n, int(r>>16)%n
				if i == j {
					continue
				}
				_ = tm.Atomic(func(tx *polytm.Tx) error {
					if err := polytm.Modify(tx, vars[i], func(v int) int { return v - 7 }); err != nil {
						return err
					}
					return polytm.Modify(tx, vars[j], func(v int) int { return v + 7 })
				})
			}
		}(uint32(w + 1))
	}
	deadline := time.Now().Add(150 * time.Millisecond)
	scans := 0
	for time.Now().Before(deadline) {
		sum := 0
		_ = tm.Atomic(func(tx *polytm.Tx) error {
			sum = 0
			for i := 0; i < n; i++ {
				v, err := polytm.Get(tx, vars[i])
				if err != nil {
					return err
				}
				sum += v
			}
			return nil
		}, polytm.WithSemantics(polytm.Snapshot))
		if sum != n*1000 {
			fmt.Printf("snapshot: TORN SUM %d\n", sum)
			return
		}
		scans++
	}
	close(stop)
	wg.Wait()
	fmt.Printf("snapshot: %d full scans, every one saw the invariant sum %d\n", scans, n*1000)
}

// irrevocableDemo: a transaction with a side effect runs exactly once.
func irrevocableDemo() {
	tm := polytm.New()
	x := polytm.NewTVar(tm, 0)
	attempts := 0
	_ = tm.Atomic(func(tx *polytm.Tx) error {
		attempts++ // a side effect we must not repeat
		return polytm.Set(tx, x, 42)
	}, polytm.WithSemantics(polytm.Irrevocable))
	fmt.Printf("irrevocable: side effect executed %d time(s), x=%d\n", attempts, x.LoadDirect())
}

// nestingDemo: the same nested weak-in-def transaction under the three
// composition policies.
func nestingDemo() {
	for _, pol := range []polytm.NestingPolicy{polytm.NestStrongest, polytm.NestParam, polytm.NestParent} {
		tm := polytm.NewWithConfig(polytm.Config{Nesting: pol})
		var eff polytm.Semantics
		_ = tm.Atomic(func(tx *polytm.Tx) error {
			return tx.Atomic(func(tx *polytm.Tx) error {
				eff = tx.Semantics()
				return nil
			}, polytm.WithSemantics(polytm.Weak))
		})
		fmt.Printf("nesting: weak child inside def parent under %-9v -> runs as %v\n", pol, eff)
	}
}

// compositionDemo: moving a key between two transactional structures in
// one atomic step — the reuse story of the paper's introduction.
func compositionDemo() {
	tm := core.NewDefault()
	list := structures.NewTList(tm, core.Weak)
	hash := structures.NewTHash(tm, core.Weak, 16)
	list.Insert(7)
	_ = tm.Atomic(func(tx *core.Tx) error {
		if _, err := list.RemoveTx(tx, 7); err != nil {
			return err
		}
		_, err := hash.InsertTx(tx, 7)
		return err
	})
	fmt.Printf("composition: key moved atomically; list has 7: %v, hash has 7: %v\n",
		list.Contains(7), hash.Contains(7))
}
