package stm

import (
	"math"
	"sync"
	"sync/atomic"
)

// snapshotRegistry tracks the start timestamps of live snapshot-semantics
// transactions so that writers know how much version history they must
// preserve on each variable's chain. Writers consult only the cached
// atomic minimum, so the hot path never takes the mutex.
type snapshotRegistry struct {
	mu     sync.Mutex
	active map[uint64]uint64 // txn id -> start timestamp
	min    atomic.Uint64     // cached minimum of active, or math.MaxUint64
}

func (r *snapshotRegistry) init() {
	r.active = make(map[uint64]uint64)
	r.min.Store(math.MaxUint64)
}

// register records that transaction id reads at snapshot timestamp ts.
func (r *snapshotRegistry) register(id, ts uint64) {
	r.mu.Lock()
	r.active[id] = ts
	if ts < r.min.Load() {
		r.min.Store(ts)
	}
	r.mu.Unlock()
}

// unregister removes transaction id and recomputes the cached minimum.
func (r *snapshotRegistry) unregister(id uint64) {
	r.mu.Lock()
	delete(r.active, id)
	m := uint64(math.MaxUint64)
	for _, ts := range r.active {
		if ts < m {
			m = ts
		}
	}
	r.min.Store(m)
	r.mu.Unlock()
}

// minActive returns the smallest start timestamp of any live snapshot
// transaction, or math.MaxUint64 if none — writers keep the newest
// version with ver <= minActive and may trim everything older.
func (r *snapshotRegistry) minActive() uint64 { return r.min.Load() }

// activeCount returns the number of live snapshot transactions.
func (r *snapshotRegistry) activeCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}
