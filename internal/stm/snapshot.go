package stm

import (
	"math"
	"sync"
	"sync/atomic"
)

// snapshotRegistry tracks the start timestamps of live snapshot-semantics
// transactions so that writers know how much version history they must
// preserve on each variable's chain.
//
// The registry is sharded by a mixing hash of the transaction id
// (shardOf). Each shard guards its own id->timestamp map with its own
// mutex and maintains an atomic cache of its own minimum, so
// registration (every snapshot begin) and unregistration (every
// snapshot finish) in different shards never contend. Writers never take any mutex: minActive folds the per-shard
// atomic minima.
//
// The correctness argument of the old single-mutex registry carries over
// shard by shard. Each shard's cached minimum is maintained under that
// shard's lock and therefore never exceeds the smallest timestamp
// registered in the shard; minActive reads each cache atomically, so its
// result never exceeds the smallest timestamp of any registered
// snapshot. The register-then-sample ordering invariant (publish a
// conservative lower bound before sampling the read timestamp — see
// registerSampling and the commentary in Txn.begin) is what makes the
// remaining writer/registrar race benign, exactly as before: a writer
// that reads the minima before our bound was published committed at a
// timestamp at or below the bound, so its version is visible to the
// snapshot anyway.
type snapshotRegistry struct {
	shards []snapShard
	mask   uint64
}

type snapShard struct {
	mu     sync.Mutex
	active map[uint64]uint64 // txn id -> start timestamp
	min    atomic.Uint64     // cached minimum of active, or math.MaxUint64
	_      [cacheLine - 24]byte
}

// init sizes the shard array; shards must be a power of two.
func (r *snapshotRegistry) init(shards int) {
	r.shards = make([]snapShard, shards)
	for i := range r.shards {
		r.shards[i].active = make(map[uint64]uint64, 4)
		r.shards[i].min.Store(math.MaxUint64)
	}
	r.mask = uint64(shards - 1)
}

// registerSampling records transaction id as a live snapshot reader and
// returns the attempt's read timestamp. Two clock samples bracket the
// registration, all inside the shard critical section: the first
// becomes the published conservative lower bound, and the second —
// taken strictly AFTER the bound is stored — becomes rv. The bracketing
// is the register-then-sample invariant minActive's trimming contract
// needs, and the order is load-bearing: a writer whose minActive fold
// missed our bound must have read the shard minimum before the bound
// was stored, hence ticked its commit timestamp before rv was sampled
// (atomics are totally ordered), so wv <= rv and its new version is
// itself visible to the snapshot — the reader never needs anything that
// writer trimmed. Sampling rv BEFORE the store (e.g. reusing the bound
// as rv to save a clock load) is unsound: a writer could then tick
// wv > rv, miss the bound, and drop the very version the snapshot
// resolves to.
func (r *snapshotRegistry) registerSampling(id uint64, clock *Clock) uint64 {
	sh := &r.shards[shardOf(id, r.mask)]
	sh.mu.Lock()
	pre := clock.Now()
	sh.active[id] = pre
	if pre < sh.min.Load() {
		sh.min.Store(pre)
	}
	rv := clock.Now()
	sh.mu.Unlock()
	return rv
}

// unregister removes transaction id and recomputes its shard's cached
// minimum. Other shards are untouched.
func (r *snapshotRegistry) unregister(id uint64) {
	sh := &r.shards[shardOf(id, r.mask)]
	sh.mu.Lock()
	delete(sh.active, id)
	m := uint64(math.MaxUint64)
	for _, ts := range sh.active {
		if ts < m {
			m = ts
		}
	}
	sh.min.Store(m)
	sh.mu.Unlock()
}

// minActive returns the smallest start timestamp of any live snapshot
// transaction, or math.MaxUint64 if none — writers keep the newest
// version with ver <= minActive and may trim everything older. Lock-free:
// it folds the per-shard atomic minima.
func (r *snapshotRegistry) minActive() uint64 {
	m := uint64(math.MaxUint64)
	for i := range r.shards {
		if v := r.shards[i].min.Load(); v < m {
			m = v
		}
	}
	return m
}

// activeCount returns the number of live snapshot transactions.
func (r *snapshotRegistry) activeCount() int {
	n := 0
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		n += len(sh.active)
		sh.mu.Unlock()
	}
	return n
}
