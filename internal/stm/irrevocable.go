package stm

import "runtime"

// Irrevocable path (SemanticsIrrevocable).
//
// An irrevocable transaction is guaranteed to commit on its only
// attempt: it never validates, never aborts on conflict, and may
// therefore perform irreversible side effects (I/O). The guarantee is
// obtained pessimistically: a global token serializes irrevocable
// transactions against each other, and every variable the transaction
// touches — reads included — is locked at encounter time and held until
// commit (strict two-phase locking). Optimistic transactions that hit
// those locks resolve the conflict through their contention manager; the
// engine refuses to kill an irrevocable owner, so they back off or
// abort, preserving the liveness guarantee.
//
// Deadlock cannot occur: the token means at most one irrevocable
// transaction holds encounter locks, and optimistic committers either
// acquire all their commit locks or abort in bounded time (their lock
// acquisition never blocks indefinitely), after which the irrevocable
// spinner proceeds.

// readIrrevocable performs one irrevocable-mode read: lock the variable
// (if not already held) and read its head, which the lock now stabilizes.
func (tx *Txn) readIrrevocable(v *Var) (any, error) {
	if err := tx.encounterLock(v); err != nil {
		return nil, err
	}
	return v.head.Load().val, nil
}

// encounterLock acquires and records an encounter-time lock on v,
// spinning until any optimistic holder releases it.
func (tx *Txn) encounterLock(v *Var) error {
	for _, el := range tx.encLocks {
		if el.v == v {
			return nil
		}
	}
	// About to take a lock: become resolvable as a lock owner first.
	tx.registerLive()
	for {
		prev, ok := v.tryLock(tx.id)
		if ok {
			tx.encLocks = append(tx.encLocks, encLock{v: v, prevLW: prev})
			return nil
		}
		// The holder is an optimistic committer (irrevocable peers are
		// excluded by the token); it finishes or aborts in bounded time.
		runtime.Gosched()
	}
}

// commitIrrevocable publishes buffered writes at a fresh commit
// timestamp and releases every encounter lock. It cannot fail.
func (tx *Txn) commitIrrevocable() {
	wv := tx.eng.clock.Tick()
	needed := tx.eng.snaps.minActive()
	for i := range tx.wset {
		e := &tx.wset[i]
		e.v.head.Store(&Version{val: e.val, ver: wv, prev: retainHistory(e.v.head.Load(), wv, needed)})
	}
	for _, el := range tx.encLocks {
		if tx.findWrite(el.v) >= 0 {
			el.v.unlockTo(packVersion(wv))
		} else {
			el.v.unlockTo(el.prevLW)
		}
	}
	tx.encLocks = tx.encLocks[:0]
	tx.stat(statCommits)
	tx.statSem(semCommits)
	tx.finish(statusCommitted)
}
