package stm

import (
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestSemanticsStringAndStrength(t *testing.T) {
	cases := []struct {
		s    Semantics
		name string
	}{
		{SemanticsDef, "def"},
		{SemanticsWeak, "weak"},
		{SemanticsSnapshot, "snapshot"},
		{SemanticsIrrevocable, "irrevocable"},
	}
	for _, c := range cases {
		if c.s.String() != c.name {
			t.Errorf("String() = %q, want %q", c.s.String(), c.name)
		}
		if !c.s.Valid() {
			t.Errorf("%v should be valid", c.s)
		}
	}
	if Semantics(200).Valid() {
		t.Error("out-of-range semantics should be invalid")
	}
	// Strength total order: irrevocable > def > snapshot > weak.
	order := []Semantics{SemanticsWeak, SemanticsSnapshot, SemanticsDef, SemanticsIrrevocable}
	for i := 1; i < len(order); i++ {
		if order[i].Strength() <= order[i-1].Strength() {
			t.Fatalf("strength order broken at %v", order[i])
		}
		if Stronger(order[i], order[i-1]) != order[i] {
			t.Fatalf("Stronger(%v,%v) wrong", order[i], order[i-1])
		}
	}
	if Stronger(SemanticsDef, SemanticsDef) != SemanticsDef {
		t.Fatal("Stronger must be reflexive")
	}
}

func TestAbortErrorDetails(t *testing.T) {
	tx := &Txn{sem: SemanticsDef, attempt: 1}
	err := tx.abortConflict("test site", 42)
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatal("not an AbortError")
	}
	if ae.Reason != "test site" || ae.VarID != 42 {
		t.Fatalf("fields = %q/%d", ae.Reason, ae.VarID)
	}
	if !errors.Is(err, ErrConflict) {
		t.Fatal("must unwrap to ErrConflict")
	}
	if !IsRetryable(err) {
		t.Fatal("conflict aborts are retryable")
	}
	if !strings.Contains(err.Error(), "test site") {
		t.Fatalf("Error() = %q", err.Error())
	}
	if IsRetryable(errors.New("user error")) {
		t.Fatal("user errors are not retryable")
	}
}

func TestStatsString(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	_ = e.Run(SemanticsDef, func(tx *Txn) error { return tx.Write(x, 1) })
	s := e.Stats().String()
	for _, frag := range []string{"commits=1", "abort-rate="} {
		if !strings.Contains(s, frag) {
			t.Fatalf("stats string %q missing %q", s, frag)
		}
	}
}

func TestBeginWithCustomCM(t *testing.T) {
	e := NewDefaultEngine()
	tx := e.BeginWith(SemanticsDef, NewKarma())
	if tx.cm.Name() != "karma" {
		t.Fatalf("cm = %q, want karma", tx.cm.Name())
	}
	tx.Abort()
	tx2 := e.BeginWith(SemanticsDef, nil)
	if tx2.cm.Name() != "polite" {
		t.Fatalf("default cm = %q, want polite", tx2.cm.Name())
	}
	tx2.Abort()
}

func TestQuiesceAfterSnapshots(t *testing.T) {
	e := NewDefaultEngine()
	s1 := e.Begin(SemanticsSnapshot)
	s2 := e.Begin(SemanticsSnapshot)
	done := make(chan struct{})
	go func() {
		e.Quiesce()
		close(done)
	}()
	s1.Commit()
	s2.Abort()
	<-done // must return once both snapshots ended
}

func TestEffectiveSemanticsStack(t *testing.T) {
	e := NewDefaultEngine()
	tx := e.Begin(SemanticsDef)
	if tx.EffectiveSemantics() != SemanticsDef {
		t.Fatal("base semantics wrong")
	}
	tx.PushMode(SemanticsWeak)
	if tx.EffectiveSemantics() != SemanticsWeak {
		t.Fatal("pushed weak not effective")
	}
	tx.PushMode(SemanticsSnapshot)
	// Nested snapshot inside a non-snapshot transaction degrades to def.
	if tx.EffectiveSemantics() != SemanticsDef {
		t.Fatal("nested snapshot must degrade to def")
	}
	tx.PopMode()
	tx.PopMode()
	if tx.EffectiveSemantics() != SemanticsDef {
		t.Fatal("stack not restored")
	}
	tx.PopMode() // extra pop is a defensive no-op
	tx.Abort()

	irr := e.Begin(SemanticsIrrevocable)
	irr.PushMode(SemanticsWeak)
	if irr.EffectiveSemantics() != SemanticsIrrevocable {
		t.Fatal("irrevocable transactions can never weaken")
	}
	irr.PopMode()
	irr.Commit()
}

// TestAllSemanticsConcurrentIntegration mixes all four semantics on one
// memory under load with a transfer invariant and verifies totals,
// snapshot consistency and irrevocable single-execution all at once.
func TestAllSemanticsConcurrentIntegration(t *testing.T) {
	e := NewDefaultEngine()
	const n = 24
	const initial = 500
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = e.NewVar(initial)
	}
	stop := make(chan struct{})
	var writers sync.WaitGroup

	// Def transfer churn.
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed uint32) {
			defer writers.Done()
			r := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*1664525 + 1013904223
				i, j := int(r>>8)%n, int(r>>16)%n
				if i == j {
					continue
				}
				_ = e.Run(SemanticsDef, func(tx *Txn) error {
					a, err := tx.Read(vars[i])
					if err != nil {
						return err
					}
					if err := tx.Write(vars[i], a.(int)-3); err != nil {
						return err
					}
					b, err := tx.Read(vars[j])
					if err != nil {
						return err
					}
					return tx.Write(vars[j], b.(int)+3)
				})
			}
		}(uint32(w + 21))
	}

	// Irrevocable transfers: exactly once each; count executions.
	irrevocableRuns := 0
	for k := 0; k < 50; k++ {
		if err := e.Run(SemanticsIrrevocable, func(tx *Txn) error {
			irrevocableRuns++
			a, err := tx.Read(vars[k%n])
			if err != nil {
				return err
			}
			if err := tx.Write(vars[k%n], a.(int)-1); err != nil {
				return err
			}
			b, err := tx.Read(vars[(k+1)%n])
			if err != nil {
				return err
			}
			return tx.Write(vars[(k+1)%n], b.(int)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if irrevocableRuns != 50 {
		t.Fatalf("irrevocable bodies ran %d times, want 50", irrevocableRuns)
	}

	// Snapshot scans: invariant sum, never aborts.
	for rep := 0; rep < 300; rep++ {
		sum := 0
		tx := e.Begin(SemanticsSnapshot)
		for i := 0; i < n; i++ {
			v, err := tx.Read(vars[i])
			if err != nil {
				t.Fatal(err)
			}
			sum += v.(int)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if sum != n*initial {
			t.Fatalf("snapshot sum %d, want %d", sum, n*initial)
		}
	}

	// Weak walkers.
	for rep := 0; rep < 200; rep++ {
		if err := e.Run(SemanticsWeak, func(tx *Txn) error {
			for i := 0; i < n; i++ {
				if _, err := tx.Read(vars[i]); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	close(stop)
	writers.Wait()
	total := 0
	for i := range vars {
		total += vars[i].LoadDirect().(int)
	}
	if total != n*initial {
		t.Fatalf("final total %d, want %d", total, n*initial)
	}
}
