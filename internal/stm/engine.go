package stm

import (
	"sync"
	"sync/atomic"
)

// Config carries engine-wide policy knobs.
type Config struct {
	// DefaultCM builds the contention manager used by transactions that
	// do not carry their own. Nil means NewPolite(8).
	DefaultCM CMFactory

	// MaxAttempts bounds re-executions per Engine.Run call; 0 means
	// unbounded (irrevocable fallback still guarantees progress when a
	// transaction is escalated explicitly by the caller).
	MaxAttempts int

	// ElasticWindow is the number of trailing reads an elastic
	// transaction retains before its first write (ε-STM's read buffer;
	// default 2). Cuts validate only the most recent of them — the
	// paper's pairwise critical steps — but at the first write the whole
	// retained window (typically the pred/curr pair that located the
	// write) joins the commit-validated read set. Values < 2 are
	// treated as 2.
	ElasticWindow int
}

func (c Config) withDefaults() Config {
	if c.DefaultCM == nil {
		c.DefaultCM = NewPolite(8)
	}
	if c.ElasticWindow < 2 {
		c.ElasticWindow = 2
	}
	return c
}

// Engine is one transactional memory: a global version clock, an
// identity space for variables and transactions, a snapshot registry,
// and the irrevocability token. Engines are independent; variables must
// not flow between them.
type Engine struct {
	cfg       Config
	clock     Clock
	nextVarID atomic.Uint64
	nextTxnID atomic.Uint64
	snaps     snapshotRegistry

	// irrevocable serializes SemanticsIrrevocable transactions.
	irrevocable sync.Mutex

	// live maps transaction id -> *Txn for contention managers that
	// need to inspect or kill lock owners.
	live sync.Map

	stats Stats
}

// NewEngine creates an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	e.snaps.init()
	return e
}

// NewDefaultEngine creates an engine with default configuration.
func NewDefaultEngine() *Engine { return NewEngine(Config{}) }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() StatsSnapshot { return e.stats.Snapshot() }

// ResetStats zeroes the engine counters (between benchmark phases).
func (e *Engine) ResetStats() { e.stats = Stats{} }

// Clock exposes the engine's global version clock (read-mostly; tests
// and the schedule executors use it).
func (e *Engine) Clock() *Clock { return &e.clock }

// lookupTxn resolves a live transaction by id, or nil.
func (e *Engine) lookupTxn(id uint64) *Txn {
	v, ok := e.live.Load(id)
	if !ok {
		return nil
	}
	return v.(*Txn)
}

// Begin starts a transaction with semantics sem and the engine's default
// contention manager. The returned Txn must be finished with Commit or
// Abort. Most callers should use Run (or core.Atomic) instead, which
// handles the retry loop.
func (e *Engine) Begin(sem Semantics) *Txn {
	return e.BeginWith(sem, nil)
}

// BeginWith starts a transaction with semantics sem and a specific
// contention manager factory (nil means the engine default).
func (e *Engine) BeginWith(sem Semantics, cm CMFactory) *Txn {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	tx := &Txn{
		eng:   e,
		sem:   sem,
		cmFac: cm,
		birth: e.nextTxnID.Add(1),
	}
	tx.begin()
	return tx
}

// Run executes fn transactionally under semantics sem, retrying on
// conflicts until commit, a non-retryable error from fn, or the
// configured attempt bound. It returns fn's error (aborting the
// transaction) or nil after a successful commit.
func (e *Engine) Run(sem Semantics, fn func(*Txn) error) error {
	return e.RunWith(sem, nil, fn)
}

// RunWith is Run with an explicit contention manager factory.
func (e *Engine) RunWith(sem Semantics, cm CMFactory, fn func(*Txn) error) error {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	tx := &Txn{eng: e, sem: sem, cmFac: cm, birth: e.nextTxnID.Add(1)}
	for attempt := 1; ; attempt++ {
		tx.begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !IsRetryable(err) {
			return err
		}
		tx.cm.OnAbort(tx)
		if e.cfg.MaxAttempts > 0 && attempt >= e.cfg.MaxAttempts {
			return ErrTooManyAttempts
		}
	}
}

// Quiesce returns once no snapshot transactions are live. It is a test
// and shutdown helper, not part of the hot path.
func (e *Engine) Quiesce() {
	for e.snaps.activeCount() > 0 {
	}
}
