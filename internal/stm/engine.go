package stm

import (
	"context"
	"sync"
	"sync/atomic"
)

// Config carries engine-wide policy knobs.
type Config struct {
	// DefaultCM builds the contention manager used by transactions that
	// do not carry their own. Nil means NewPolite(8).
	DefaultCM CMFactory

	// MaxAttempts bounds re-executions per Engine.Run call; 0 means
	// unbounded (irrevocable fallback still guarantees progress when a
	// transaction is escalated explicitly by the caller).
	MaxAttempts int

	// ElasticWindow is the number of trailing reads an elastic
	// transaction retains before its first write (ε-STM's read buffer;
	// default 2). Cuts validate only the most recent of them — the
	// paper's pairwise critical steps — but at the first write the whole
	// retained window (typically the pred/curr pair that located the
	// write) joins the commit-validated read set. Values < 2 are
	// treated as 2.
	ElasticWindow int

	// Shards is the stripe count for the engine's internal
	// synchronization state (event counters, the live-transaction
	// registry, the snapshot registry, the variable-id wells). It is
	// rounded up to a power of two and capped at 256; <= 0 derives the
	// count from GOMAXPROCS at engine construction. One shard reproduces
	// the old centralized behaviour exactly.
	Shards int

	// Observer, when non-nil, receives transaction lifecycle events
	// (commit, abort, retry-wait) from the run loop for every
	// transaction of this engine. A per-run observer (RunOptions,
	// core.WithObserver) overrides it for that transaction. Nil costs
	// one pointer comparison per event site.
	Observer Observer
}

func (c Config) withDefaults() Config {
	if c.DefaultCM == nil {
		c.DefaultCM = NewPolite(8)
	}
	if c.ElasticWindow < 2 {
		c.ElasticWindow = 2
	}
	c.Shards = resolveShardCount(c.Shards)
	return c
}

// Engine is one transactional memory: a global version clock, an
// identity space for variables and transactions, a snapshot registry,
// and the irrevocability token. Engines are independent; variables must
// not flow between them.
//
// All per-attempt bookkeeping — counters, the live registry, the
// snapshot registry, id allocation — is sharded (see shard.go), so the
// only state every committing writer still serializes on is the version
// clock itself, which defines commit order and is irreducible.
type Engine struct {
	cfg   Config
	clock Clock

	// shardMask selects a stripe from a stripeHint; stripe counts are
	// powers of two.
	shardMask uint64

	// varIDs are striped id wells: well w issues ids w+1, w+1+S,
	// w+1+2S, … (S = shard count), so NewVar calls on different stripes
	// never contend while ids stay engine-unique and totally ordered —
	// all that commit-time lock ordering requires.
	varIDs []idWell

	// nextTxnID is the source of per-Txn attempt-id blocks: each Txn
	// draws txnIDBlock ids at a time (see Txn.nextAttemptID), so this
	// counter is touched once per block rather than once per attempt.
	nextTxnID atomic.Uint64

	snaps snapshotRegistry

	// irrevocable serializes SemanticsIrrevocable transactions.
	irrevocable sync.Mutex

	// live resolves attempt id -> *Txn for contention managers that
	// need to inspect or kill lock owners.
	live liveRegistry

	// txnPool recycles Txn shells across Run calls (per-P free lists
	// under the hood), so the common transaction allocates nothing: the
	// shell, its read/write sets, its probe table and its contention
	// manager are all reused. Txns handed out by Begin are NOT pooled —
	// they escape to the caller, which could still hold them when the
	// pool re-issues the value.
	txnPool sync.Pool

	stats Stats
}

// idWell is one padded stripe of an id space.
type idWell struct {
	ctr atomic.Uint64
	_   [cacheLine - 8]byte
}

// NewEngine creates an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	shards := e.cfg.Shards
	e.shardMask = uint64(shards - 1)
	e.varIDs = make([]idWell, shards)
	e.snaps.init(shards)
	e.live.init(shards)
	e.stats.init(shards)
	return e
}

// NewDefaultEngine creates an engine with default configuration.
func NewDefaultEngine() *Engine { return NewEngine(Config{}) }

// Shards returns the engine's resolved stripe count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Observer returns the engine-wide lifecycle observer (nil if none was
// configured). A caller installing a per-transaction WithObserver that
// still wants engine-wide delivery should forward events to this one —
// per-transaction observers replace, they do not chain.
func (e *Engine) Observer() Observer { return e.cfg.Observer }

// Stats returns a snapshot of the engine counters. The aggregation is
// exact per counter (see Stats).
func (e *Engine) Stats() StatsSnapshot { return e.stats.Snapshot() }

// ResetStats zeroes the engine counters (between benchmark phases).
func (e *Engine) ResetStats() { e.stats.reset() }

// Clock exposes the engine's global version clock (read-mostly; tests
// and the schedule executors use it).
func (e *Engine) Clock() *Clock { return &e.clock }

// newVarID draws a fresh variable id from one of the striped wells.
func (e *Engine) newVarID() uint64 {
	w := uint64(stripeHint()) & e.shardMask
	k := e.varIDs[w].ctr.Add(1)
	return (k-1)*uint64(len(e.varIDs)) + w + 1
}

// lookupTxn resolves a live transaction by id, or nil.
func (e *Engine) lookupTxn(id uint64) *Txn {
	return e.live.lookup(id)
}

// newTxn builds a fresh, unpooled transaction shell; its birth id is
// assigned on the first begin, from the transaction's first attempt-id
// block.
func (e *Engine) newTxn(sem Semantics, cm CMFactory) *Txn {
	tx := &Txn{eng: e, ctx: context.Background()}
	tx.sem = sem
	tx.cmFac = cm
	return tx
}

// acquireTxn arms a pooled transaction shell (building one on pool
// miss) for a Run lifecycle.
func (e *Engine) acquireTxn(sem Semantics, cm CMFactory) *Txn {
	if tx, ok := e.txnPool.Get().(*Txn); ok {
		tx.sem = sem
		tx.cmFac = cm
		return tx
	}
	return e.newTxn(sem, cm)
}

// releaseTxn scrubs a finished transaction and returns it to the pool.
// A transaction that is somehow still active (a panicking body unwound
// through the run loop) is dropped instead — pooling it would hand a
// live read/write set to an unrelated Run.
func (e *Engine) releaseTxn(tx *Txn) {
	if tx.status.Load() == statusActive {
		return
	}
	tx.recycle()
	e.txnPool.Put(tx)
}

// Begin starts a transaction with semantics sem and the engine's default
// contention manager. The returned Txn must be finished with Commit or
// Abort, after which it must not be touched again; Begin transactions
// are excluded from the engine's Txn pool (the caller could retain the
// handle), so each Begin allocates. Most callers should use Run (or
// core.Atomic) instead, which handles the retry loop and runs
// allocation-free on the pooled lifecycle.
func (e *Engine) Begin(sem Semantics) *Txn {
	return e.BeginWith(sem, nil)
}

// BeginWith starts a transaction with semantics sem and a specific
// contention manager factory (nil means the engine default).
func (e *Engine) BeginWith(sem Semantics, cm CMFactory) *Txn {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	tx := e.newTxn(sem, cm)
	tx.begin()
	return tx
}

// Run executes fn transactionally under semantics sem, retrying on
// conflicts until commit, a non-retryable error from fn, or the
// configured attempt bound. It returns fn's error (aborting the
// transaction) or nil after a successful commit.
//
// Run drives a pooled Txn: fn must not retain the *Txn, or anything
// aliasing its read/write sets, beyond its return — the shell is
// recycled for an arbitrary later Run when this call finishes.
func (e *Engine) Run(sem Semantics, fn func(*Txn) error) error {
	return e.run(context.Background(), sem, runParams{cm: e.cfg.DefaultCM, maxAttempts: e.cfg.MaxAttempts, obs: e.cfg.Observer}, fn)
}

// RunCtx is Run bounded by ctx: cancellation aborts the transaction
// between attempts and breaks its waits (see RunOpts for the exact
// cancellation points). The ctx == context.Background() path is
// identical to Run and allocates nothing extra.
func (e *Engine) RunCtx(ctx context.Context, sem Semantics, fn func(*Txn) error) error {
	return e.run(ctx, sem, runParams{cm: e.cfg.DefaultCM, maxAttempts: e.cfg.MaxAttempts, obs: e.cfg.Observer}, fn)
}

// RunWith is Run with an explicit contention manager factory.
func (e *Engine) RunWith(sem Semantics, cm CMFactory, fn func(*Txn) error) error {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	return e.run(context.Background(), sem, runParams{cm: cm, maxAttempts: e.cfg.MaxAttempts, obs: e.cfg.Observer}, fn)
}

// Quiesce returns once no snapshot transactions are live. It is a test
// and shutdown helper, not part of the hot path.
func (e *Engine) Quiesce() {
	for e.snaps.activeCount() > 0 {
	}
}
