package stm

import (
	"sync"
	"sync/atomic"
)

// Config carries engine-wide policy knobs.
type Config struct {
	// DefaultCM builds the contention manager used by transactions that
	// do not carry their own. Nil means NewPolite(8).
	DefaultCM CMFactory

	// MaxAttempts bounds re-executions per Engine.Run call; 0 means
	// unbounded (irrevocable fallback still guarantees progress when a
	// transaction is escalated explicitly by the caller).
	MaxAttempts int

	// ElasticWindow is the number of trailing reads an elastic
	// transaction retains before its first write (ε-STM's read buffer;
	// default 2). Cuts validate only the most recent of them — the
	// paper's pairwise critical steps — but at the first write the whole
	// retained window (typically the pred/curr pair that located the
	// write) joins the commit-validated read set. Values < 2 are
	// treated as 2.
	ElasticWindow int

	// Shards is the stripe count for the engine's internal
	// synchronization state (event counters, the live-transaction
	// registry, the snapshot registry, the variable-id wells). It is
	// rounded up to a power of two and capped at 256; <= 0 derives the
	// count from GOMAXPROCS at engine construction. One shard reproduces
	// the old centralized behaviour exactly.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.DefaultCM == nil {
		c.DefaultCM = NewPolite(8)
	}
	if c.ElasticWindow < 2 {
		c.ElasticWindow = 2
	}
	c.Shards = resolveShardCount(c.Shards)
	return c
}

// Engine is one transactional memory: a global version clock, an
// identity space for variables and transactions, a snapshot registry,
// and the irrevocability token. Engines are independent; variables must
// not flow between them.
//
// All per-attempt bookkeeping — counters, the live registry, the
// snapshot registry, id allocation — is sharded (see shard.go), so the
// only state every committing writer still serializes on is the version
// clock itself, which defines commit order and is irreducible.
type Engine struct {
	cfg   Config
	clock Clock

	// shardMask selects a stripe from a stripeHint; stripe counts are
	// powers of two.
	shardMask uint64

	// varIDs are striped id wells: well w issues ids w+1, w+1+S,
	// w+1+2S, … (S = shard count), so NewVar calls on different stripes
	// never contend while ids stay engine-unique and totally ordered —
	// all that commit-time lock ordering requires.
	varIDs []idWell

	// nextTxnID is the source of per-Txn attempt-id blocks: each Txn
	// draws txnIDBlock ids at a time (see Txn.nextAttemptID), so this
	// counter is touched once per block rather than once per attempt.
	nextTxnID atomic.Uint64

	snaps snapshotRegistry

	// irrevocable serializes SemanticsIrrevocable transactions.
	irrevocable sync.Mutex

	// live resolves attempt id -> *Txn for contention managers that
	// need to inspect or kill lock owners.
	live liveRegistry

	stats Stats
}

// idWell is one padded stripe of an id space.
type idWell struct {
	ctr atomic.Uint64
	_   [cacheLine - 8]byte
}

// NewEngine creates an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg.withDefaults()}
	shards := e.cfg.Shards
	e.shardMask = uint64(shards - 1)
	e.varIDs = make([]idWell, shards)
	e.snaps.init(shards)
	e.live.init(shards)
	e.stats.init(shards)
	return e
}

// NewDefaultEngine creates an engine with default configuration.
func NewDefaultEngine() *Engine { return NewEngine(Config{}) }

// Shards returns the engine's resolved stripe count.
func (e *Engine) Shards() int { return e.cfg.Shards }

// Stats returns a snapshot of the engine counters. The aggregation is
// exact per counter (see Stats).
func (e *Engine) Stats() StatsSnapshot { return e.stats.Snapshot() }

// ResetStats zeroes the engine counters (between benchmark phases).
func (e *Engine) ResetStats() { e.stats.reset() }

// Clock exposes the engine's global version clock (read-mostly; tests
// and the schedule executors use it).
func (e *Engine) Clock() *Clock { return &e.clock }

// newVarID draws a fresh variable id from one of the striped wells.
func (e *Engine) newVarID() uint64 {
	w := uint64(stripeHint()) & e.shardMask
	k := e.varIDs[w].ctr.Add(1)
	return (k-1)*uint64(len(e.varIDs)) + w + 1
}

// lookupTxn resolves a live transaction by id, or nil.
func (e *Engine) lookupTxn(id uint64) *Txn {
	return e.live.lookup(id)
}

// newTxn builds a transaction shell; its birth id is assigned on the
// first begin, from the transaction's first attempt-id block.
func (e *Engine) newTxn(sem Semantics, cm CMFactory) *Txn {
	return &Txn{eng: e, sem: sem, cmFac: cm}
}

// Begin starts a transaction with semantics sem and the engine's default
// contention manager. The returned Txn must be finished with Commit or
// Abort. Most callers should use Run (or core.Atomic) instead, which
// handles the retry loop.
func (e *Engine) Begin(sem Semantics) *Txn {
	return e.BeginWith(sem, nil)
}

// BeginWith starts a transaction with semantics sem and a specific
// contention manager factory (nil means the engine default).
func (e *Engine) BeginWith(sem Semantics, cm CMFactory) *Txn {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	tx := e.newTxn(sem, cm)
	tx.begin()
	return tx
}

// Run executes fn transactionally under semantics sem, retrying on
// conflicts until commit, a non-retryable error from fn, or the
// configured attempt bound. It returns fn's error (aborting the
// transaction) or nil after a successful commit.
func (e *Engine) Run(sem Semantics, fn func(*Txn) error) error {
	return e.RunWith(sem, nil, fn)
}

// RunWith is Run with an explicit contention manager factory.
func (e *Engine) RunWith(sem Semantics, cm CMFactory, fn func(*Txn) error) error {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	tx := e.newTxn(sem, cm)
	for attempt := 1; ; attempt++ {
		tx.begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else {
			tx.Abort()
		}
		if !IsRetryable(err) {
			return err
		}
		tx.cm.OnAbort(tx)
		if e.cfg.MaxAttempts > 0 && attempt >= e.cfg.MaxAttempts {
			return ErrTooManyAttempts
		}
	}
}

// Quiesce returns once no snapshot transactions are live. It is a test
// and shutdown helper, not part of the hot path.
func (e *Engine) Quiesce() {
	for e.snaps.activeCount() > 0 {
	}
}
