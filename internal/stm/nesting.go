package stm

// Nested-transaction support: flat (subsumption) nesting with a
// semantics-composition stack. The paper's concluding remarks ask
// "what should be the semantics of a nested transaction? the semantics
// indicated by its parameter as if it was not nested, the parent
// transaction semantics, or the strongest of the two?" — the core layer
// implements all three policies; this file provides the mechanism: a
// per-transaction stack of effective semantics that the read and write
// paths consult.
//
// Composition rules enforced here rather than by policy:
//
//   - An irrevocable transaction can never weaken: once accesses are
//     performed under encounter-time locking, optimistic accesses would
//     forfeit the no-abort guarantee, so every nested scope of an
//     irrevocable transaction is irrevocable.
//   - SemanticsSnapshot applies only as an outermost semantics (its read
//     timestamp registration happens at begin); a nested snapshot scope
//     inside an optimistic transaction is handled as SemanticsDef.
//   - A def scope inside a weak transaction forms one critical step of
//     the surrounding elastic operation: its reads are fully tracked
//     while the scope is active (no window sliding), and are all
//     mutually consistent at the transaction's read timestamp. After the
//     scope pops, elastic sliding may drop them — by then the scope's
//     single critical step has already been atomic at the read
//     timestamp, which is what the polymorphic model requires.
type semFrame struct {
	sem Semantics
	// savedFloor is the elastic floor to restore on pop; entries of the
	// read set below the floor belong to enclosing scopes and must never
	// be dropped by elastic window sliding.
	savedFloor int
}

type semStack struct {
	stack []semFrame
}

// PushMode enters a nested scope with effective semantics s. The
// caller (package core) is responsible for computing s from the nesting
// policy; PushMode only enforces the hard rules above.
func (tx *Txn) PushMode(s Semantics) {
	tx.modes.stack = append(tx.modes.stack, semFrame{sem: s, savedFloor: tx.elasticFloor})
	if s == SemanticsWeak {
		// A fresh elastic scope: its window starts empty and sliding may
		// not reach into the enclosing scope's tracked reads.
		tx.elasticFloor = len(tx.rset)
	}
}

// PopMode leaves the innermost nested scope. Popping an empty stack is
// a no-op (defensive).
func (tx *Txn) PopMode() {
	if n := len(tx.modes.stack); n > 0 {
		tx.elasticFloor = tx.modes.stack[n-1].savedFloor
		tx.modes.stack = tx.modes.stack[:n-1]
	}
}

// effective returns the semantics governing the next access.
func (tx *Txn) effective() Semantics {
	if tx.sem == SemanticsIrrevocable {
		return SemanticsIrrevocable
	}
	if n := len(tx.modes.stack); n > 0 {
		s := tx.modes.stack[n-1].sem
		if s == SemanticsSnapshot && tx.sem != SemanticsSnapshot {
			return SemanticsDef
		}
		return s
	}
	return tx.sem
}

// EffectiveSemantics exposes the current effective semantics (for tests
// and diagnostics).
func (tx *Txn) EffectiveSemantics() Semantics { return tx.effective() }
