package stm

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestOpacityNoTornCommit is the regression test for the locked-read
// hazard: a committer locks its write set BEFORE taking its commit
// timestamp and publishes variable by variable, so a reader whose read
// timestamp is newer than that commit could — without the lock check in
// readDef — observe one variable's new head and another's old head from
// the same commit, mid-transaction, without any validation failing
// before user code runs on the torn values (this crashed the deque with
// a nil dereference before the fix).
//
// Writers keep p == q invariant; def readers read both and must never
// observe p != q *inside the body* on values the engine handed them.
func TestOpacityNoTornCommit(t *testing.T) {
	e := NewDefaultEngine()
	p := e.NewVar(0)
	q := e.NewVar(0)

	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int) {
			defer writers.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				i += 2
				_ = e.Run(SemanticsDef, func(tx *Txn) error {
					if err := tx.Write(p, i); err != nil {
						return err
					}
					return tx.Write(q, i)
				})
			}
		}(w)
	}

	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for n := 0; n < 20000; n++ {
				err := e.Run(SemanticsDef, func(tx *Txn) error {
					pv, err := tx.Read(p)
					if err != nil {
						return err
					}
					qv, err := tx.Read(q)
					if err != nil {
						return err
					}
					if pv.(int) != qv.(int) {
						t.Errorf("opacity violated: read p=%d q=%d inside one transaction", pv, qv)
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestEngineMatchesModelSequential property-checks the engine against a
// plain map model under random single-threaded transactional ops across
// all optimistic semantics.
func TestEngineMatchesModelSequential(t *testing.T) {
	f := func(ops []uint16, semSel []bool) bool {
		e := NewDefaultEngine()
		const nvars = 8
		vars := make([]*Var, nvars)
		model := make([]int, nvars)
		for i := range vars {
			vars[i] = e.NewVar(0)
		}
		for k, op := range ops {
			sem := SemanticsDef
			if k < len(semSel) && semSel[k] {
				sem = SemanticsWeak
			}
			i := int(op) % nvars
			j := int(op>>4) % nvars
			val := int(op >> 8)
			err := e.Run(sem, func(tx *Txn) error {
				got, err := tx.Read(vars[i])
				if err != nil {
					return err
				}
				if got.(int) != model[i] {
					return errModelMismatch
				}
				return tx.Write(vars[j], val)
			})
			if err != nil {
				return false
			}
			model[j] = val
		}
		for i := range vars {
			if vars[i].LoadDirect().(int) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

var errModelMismatch = errTest{}
