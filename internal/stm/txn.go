package stm

import (
	"runtime"
	"sort"
	"sync/atomic"
)

// Transaction status values.
const (
	statusActive uint32 = iota
	statusCommitted
	statusAborted
)

// readEntry records one validated read: the variable and the exact
// version record observed. Validation is by pointer identity: the read
// is still valid iff the variable's head is still that record. A pinned
// entry is never dropped by elastic window sliding and is validated at
// every cut and at commit — the anchor mechanism that lets elastic
// operations compose safely with structural invalidation (e.g. a hash
// table's bucket array being replaced by a resize).
type readEntry struct {
	v      *Var
	ver    *Version
	pinned bool
}

// writeEntry buffers one pending write (lazy versioning: writes become
// visible only at commit).
type writeEntry struct {
	v      *Var
	val    any
	prevLW uint64 // pre-lock word, meaningful once locked
	locked bool
}

// encLock records an encounter-time lock held by an irrevocable
// transaction on a variable it has read (or read and written).
type encLock struct {
	v      *Var
	prevLW uint64
}

// Txn is one transaction. A Txn value is reused across the attempts of
// one Engine.Run call (so karma and birth order persist), but each
// attempt gets a fresh id, read timestamp, and read/write sets via
// begin. Txn is not safe for concurrent use by multiple goroutines; the
// paper's model runs each operation on one process.
type Txn struct {
	eng   *Engine
	sem   Semantics
	cmFac CMFactory
	cm    ContentionManager

	// birth is the id of the first attempt; it defines the age order
	// used by the timestamp contention manager.
	birth uint64

	// id is the per-attempt identity, used as the lock-word owner.
	id uint64

	// idNext/idLimit delimit the transaction's private block of attempt
	// ids, drawn txnIDBlock at a time from the engine's global counter
	// (see nextAttemptID).
	idNext, idLimit uint64

	// shard is the stripe this attempt's counter updates land on.
	shard uint32

	// rv is the read timestamp: all reads are consistent at rv.
	rv uint64

	status atomic.Uint32
	killed atomic.Bool

	rset []readEntry
	wmap map[*Var]int
	wset []writeEntry

	// written marks that a SemanticsWeak transaction has performed its
	// first write and must behave monomorphically from then on.
	written bool

	// karma accumulates accesses across attempts for the karma manager.
	karma uint64

	attempt int

	snapRegistered  bool
	liveRegistered  bool
	irrevocableHeld bool
	encLocks        []encLock

	// modes is the nested-scope semantics stack; see nesting.go.
	modes semStack

	// elasticFloor is the read-set index below which elastic window
	// sliding may not drop entries (they belong to enclosing scopes).
	elasticFloor int
}

// txnIDBlock is how many attempt ids a transaction draws from the
// engine's global counter at a time. Blocks amortize the global
// fetch-and-add across attempts; unused remainder ids are simply never
// issued (the 63-bit id space absorbs the waste).
const txnIDBlock = 64

// nextAttemptID hands out the next per-attempt id from the
// transaction's private block, refilling from the engine once per
// txnIDBlock ids. Ids start at 1; id 0 is reserved for the
// Var.StoreDirect lock-word sentinel. Block allocation keeps ids unique
// and keeps birth order (first id of the first block) aligned with
// transaction creation order, which the timestamp contention manager's
// age priority relies on.
func (tx *Txn) nextAttemptID() uint64 {
	if tx.idNext == tx.idLimit {
		end := tx.eng.nextTxnID.Add(txnIDBlock)
		tx.idNext, tx.idLimit = end-txnIDBlock+1, end+1
	}
	id := tx.idNext
	tx.idNext++
	return id
}

// stat bumps one engine counter on this attempt's stripe.
func (tx *Txn) stat(c statCounter) { tx.eng.stats.add(tx.shard, c) }

// statSem bumps one per-semantics counter on this attempt's stripe,
// attributed to the transaction's root parameter p (nested scopes do not
// reattribute).
func (tx *Txn) statSem(c semCounter) { tx.eng.stats.addSem(tx.shard, tx.sem, c) }

// begin (re)initializes the transaction for a new attempt.
func (tx *Txn) begin() {
	tx.id = tx.nextAttemptID()
	if tx.birth == 0 {
		tx.birth = tx.id
	}
	tx.shard = stripeHint()
	tx.attempt++
	tx.status.Store(statusActive)
	tx.killed.Store(false)
	tx.rset = tx.rset[:0]
	tx.wset = tx.wset[:0]
	if tx.wmap == nil {
		tx.wmap = make(map[*Var]int, 8)
	} else {
		clear(tx.wmap)
	}
	tx.written = false
	tx.encLocks = tx.encLocks[:0]
	tx.modes.stack = tx.modes.stack[:0]
	tx.elasticFloor = 0
	tx.cm = tx.cmFac()
	tx.stat(statStarts)
	tx.statSem(semStarts)

	switch tx.sem {
	case SemanticsIrrevocable:
		tx.eng.irrevocable.Lock()
		tx.irrevocableHeld = true
		tx.rv = tx.eng.clock.Now()
		tx.stat(statIrrevocables)
	case SemanticsSnapshot:
		// Registration order matters: publish a conservative lower
		// bound (pre <= rv) to the registry FIRST, then sample the read
		// timestamp. Writers that read the registry minimum before our
		// store committed at wv <= pre's clock <= rv, so their new
		// version is itself visible at rv; writers that read it after
		// preserve at least every version >= the newest one <= pre —
		// a superset of what resolving at rv needs. Either way no
		// version this snapshot requires is ever trimmed.
		// registerSampling samples pre inside the registry's shard
		// critical section, preserving exactly this ordering.
		tx.eng.snaps.registerSampling(tx.id, &tx.eng.clock)
		tx.rv = tx.eng.clock.Now()
		tx.snapRegistered = true
	default:
		tx.rv = tx.eng.clock.Now()
	}
}

// registerLive enters this attempt into the live registry so that
// contention managers can resolve it as a lock owner. It must be called
// before the attempt's first lock-word CAS can succeed: a rival that
// observes our id in a lock word must be able to look us up (a nil
// lookup is treated as "owner already finished", which would spin
// rather than arbitrate). Read-only attempts never lock and so never
// register — that is the point: the registry is off the read fast path.
func (tx *Txn) registerLive() {
	if !tx.liveRegistered {
		tx.eng.live.store(tx.id, tx)
		tx.liveRegistered = true
	}
}

// finish tears down per-attempt registrations.
func (tx *Txn) finish(st uint32) {
	tx.status.Store(st)
	if tx.liveRegistered {
		tx.eng.live.delete(tx.id)
		tx.liveRegistered = false
	}
	if tx.snapRegistered {
		tx.eng.snaps.unregister(tx.id)
		tx.snapRegistered = false
	}
	if tx.irrevocableHeld {
		tx.eng.irrevocable.Unlock()
		tx.irrevocableHeld = false
	}
}

// ID returns the current attempt's identity.
func (tx *Txn) ID() uint64 { return tx.id }

// Birth returns the id of the transaction's first attempt (its age).
func (tx *Txn) Birth() uint64 { return tx.birth }

// Attempt returns the 1-based attempt number.
func (tx *Txn) Attempt() int { return tx.attempt }

// Karma returns the accumulated access count across attempts.
func (tx *Txn) Karma() uint64 { return tx.karma }

// Semantics returns the transaction's semantic parameter p.
func (tx *Txn) Semantics() Semantics { return tx.sem }

// ReadTimestamp returns the current read timestamp rv.
func (tx *Txn) ReadTimestamp() uint64 { return tx.rv }

// Engine returns the owning engine.
func (tx *Txn) Engine() *Engine { return tx.eng }

// kill requests asynchronous abort. It returns false if the transaction
// cannot be killed (irrevocable transactions are guaranteed to commit).
func (tx *Txn) kill() bool {
	if tx.sem == SemanticsIrrevocable {
		return false
	}
	tx.killed.Store(true)
	return true
}

// checkLive verifies the transaction is usable and not killed.
func (tx *Txn) checkLive() error {
	if tx.status.Load() != statusActive {
		return ErrTxnDone
	}
	if tx.killed.Load() {
		tx.stat(statKills)
		tx.abortCleanup()
		return ErrKilled
	}
	return nil
}

// Read performs a transactional read of v under the transaction's
// semantics. On conflict it aborts the transaction and returns a
// retryable error (see IsRetryable).
func (tx *Txn) Read(v *Var) (any, error) {
	if err := tx.checkLive(); err != nil {
		return nil, err
	}
	if v.eng != tx.eng {
		tx.abortCleanup()
		return nil, ErrCrossEngine
	}
	tx.stat(statReads)
	tx.karma++

	// Read-your-writes.
	if i, ok := tx.wmap[v]; ok {
		return tx.wset[i].val, nil
	}

	switch sem := tx.effective(); {
	case sem == SemanticsSnapshot:
		return tx.readSnapshot(v)
	case sem == SemanticsIrrevocable:
		return tx.readIrrevocable(v)
	case sem == SemanticsWeak && !tx.written:
		return tx.readElastic(v, false)
	default:
		return tx.readDef(v)
	}
}

// ReadPinned performs a transactional read whose entry is anchored: an
// elastic transaction never slides it out of the validated set, so the
// value is guaranteed current at every later cut and at commit, exactly
// like a def read. Under non-weak semantics it is identical to Read.
func (tx *Txn) ReadPinned(v *Var) (any, error) {
	if err := tx.checkLive(); err != nil {
		return nil, err
	}
	if v.eng != tx.eng {
		tx.abortCleanup()
		return nil, ErrCrossEngine
	}
	tx.stat(statReads)
	tx.karma++
	if i, ok := tx.wmap[v]; ok {
		return tx.wset[i].val, nil
	}
	switch sem := tx.effective(); {
	case sem == SemanticsSnapshot:
		return tx.readSnapshot(v)
	case sem == SemanticsIrrevocable:
		return tx.readIrrevocable(v)
	case sem == SemanticsWeak && !tx.written:
		return tx.readElastic(v, true)
	default:
		return tx.readDef(v)
	}
}

// waitUnlocked spins until v is not locked by another transaction. A
// locked variable may be mid-publish by a committer whose timestamp was
// taken BEFORE this transaction's read timestamp; trusting its (old)
// head would tear that commit across variables — the classic TL2 locked
// read hazard. Optimistic committers hold locks only across the publish
// loop; an irrevocable writer may hold them for its whole span, and
// readers of its variables wait it out (it is 2PL, after all). Returns
// an error if this transaction is killed while waiting.
func (tx *Txn) waitUnlocked(v *Var) error {
	for {
		owner, locked := v.lockedBy()
		if !locked || owner == tx.id {
			return nil
		}
		if tx.killed.Load() {
			tx.stat(statKills)
			tx.abortCleanup()
			return ErrKilled
		}
		runtime.Gosched()
	}
}

// readDef is the TL2/LSA read: wait out any in-flight commit, take the
// current head; if it is newer than rv, try to extend rv by
// revalidating the read set; otherwise the head is exactly the newest
// version <= rv (any commit after this transaction started has a
// strictly larger timestamp), so it is safe.
func (tx *Txn) readDef(v *Var) (any, error) {
	for {
		if err := tx.waitUnlocked(v); err != nil {
			return nil, err
		}
		h := v.head.Load()
		if h.ver <= tx.rv {
			tx.rset = append(tx.rset, readEntry{v: v, ver: h})
			return h.val, nil
		}
		if !tx.extend() {
			tx.stat(statReadAborts)
			tx.abortCleanup()
			return nil, abortConflict("read validation", v.id)
		}
	}
}

// extend attempts to advance rv to the current clock, revalidating every
// tracked read. Returns false if any read is no longer valid.
func (tx *Txn) extend() bool {
	now := tx.eng.clock.Now()
	if !tx.validateReads() {
		return false
	}
	tx.rv = now
	tx.stat(statExtensions)
	return true
}

// validateReads checks every tracked read: the observed version must
// still be the head and the variable must not be locked by another
// transaction.
func (tx *Txn) validateReads() bool {
	for i := range tx.rset {
		e := &tx.rset[i]
		if e.v.head.Load() != e.ver {
			return false
		}
		if owner, locked := e.v.lockedBy(); locked && owner != tx.id {
			return false
		}
	}
	return true
}

// Write buffers a transactional write of val to v.
func (tx *Txn) Write(v *Var, val any) error {
	if err := tx.checkLive(); err != nil {
		return err
	}
	if v.eng != tx.eng {
		tx.abortCleanup()
		return ErrCrossEngine
	}
	tx.stat(statWrites)
	tx.karma++

	switch tx.effective() {
	case SemanticsSnapshot:
		tx.abortCleanup()
		return ErrSnapshotWrite
	case SemanticsIrrevocable:
		if err := tx.encounterLock(v); err != nil {
			return err
		}
	case SemanticsWeak:
		// From the first write on, the elastic transaction behaves
		// monomorphically: its current consistency window anchors the
		// write's critical step and is validated at commit.
		tx.written = true
	}

	if i, ok := tx.wmap[v]; ok {
		tx.wset[i].val = val
		return nil
	}
	tx.wset = append(tx.wset, writeEntry{v: v, val: val})
	tx.wmap[v] = len(tx.wset) - 1
	return nil
}

// Abort aborts the transaction explicitly. It is idempotent on a
// finished transaction.
func (tx *Txn) Abort() {
	if tx.status.Load() != statusActive {
		return
	}
	tx.abortCleanup()
}

// abortCleanup releases resources and marks the transaction aborted.
func (tx *Txn) abortCleanup() {
	// Release commit-time locks (restore pre-lock words).
	for i := range tx.wset {
		if tx.wset[i].locked {
			tx.wset[i].v.unlockTo(tx.wset[i].prevLW)
			tx.wset[i].locked = false
		}
	}
	// Release encounter-time locks.
	for _, el := range tx.encLocks {
		el.v.unlockTo(el.prevLW)
	}
	tx.encLocks = tx.encLocks[:0]
	tx.stat(statAborts)
	tx.statSem(semAborts)
	tx.finish(statusAborted)
}

// Commit attempts to commit. On success all buffered writes become
// visible atomically at a fresh commit timestamp. On conflict the
// transaction is aborted and a retryable error returned.
func (tx *Txn) Commit() error {
	if tx.status.Load() != statusActive {
		return ErrTxnDone
	}
	if tx.killed.Load() && tx.sem != SemanticsIrrevocable {
		tx.stat(statKills)
		tx.abortCleanup()
		return ErrKilled
	}

	if tx.sem == SemanticsIrrevocable {
		tx.commitIrrevocable()
		return nil
	}

	// Read-only transactions were validated incrementally (def: all
	// reads consistent at rv; weak: every window pairwise-consistent;
	// snapshot: reads resolved at the start timestamp) and commit
	// without further work.
	if len(tx.wset) == 0 {
		tx.stat(statCommits)
		tx.statSem(semCommits)
		tx.finish(statusCommitted)
		return nil
	}

	// About to take locks: become resolvable as a lock owner first.
	tx.registerLive()

	// Acquire commit-time locks in variable-id order (deadlock-free).
	sort.Slice(tx.wset, func(i, j int) bool { return tx.wset[i].v.id < tx.wset[j].v.id })
	// Rebuild the map: indices moved.
	for i := range tx.wset {
		tx.wmap[tx.wset[i].v] = i
	}
	for i := range tx.wset {
		if err := tx.lockForCommit(&tx.wset[i]); err != nil {
			return err
		}
	}

	wv := tx.eng.clock.Tick()

	// TL2 fast path: if nothing committed since we started, reads are
	// trivially valid.
	if wv != tx.rv+1 {
		if !tx.validateReads() {
			tx.stat(statValidateAbort)
			tx.abortCleanup()
			return abortConflict("commit validation", 0)
		}
	}

	tx.publish(wv)
	tx.stat(statCommits)
	tx.statSem(semCommits)
	tx.finish(statusCommitted)
	return nil
}

// lockForCommit acquires one commit lock, driving the contention manager
// on conflict.
func (tx *Txn) lockForCommit(e *writeEntry) error {
	for attempt := 0; ; attempt++ {
		if tx.killed.Load() {
			tx.stat(statKills)
			tx.abortCleanup()
			return ErrKilled
		}
		prev, ok := e.v.tryLock(tx.id)
		if ok {
			e.prevLW = prev
			e.locked = true
			return nil
		}
		owner, locked := e.v.lockedBy()
		if !locked {
			continue // released between load and CAS; retry immediately
		}
		if owner == tx.id {
			// Defensive: already ours (cannot happen — wmap dedupes).
			return nil
		}
		enemy := tx.eng.lookupTxn(owner)
		switch tx.cm.OnLockBusy(tx, enemy, attempt) {
		case ResolutionAbortSelf:
			tx.stat(statLockAborts)
			tx.abortCleanup()
			return abortConflict("lock busy", e.v.id)
		case ResolutionKillEnemy:
			if enemy == nil || enemy.kill() {
				runtime.Gosched()
				continue
			}
			// Enemy is unkillable (irrevocable): yield the fight.
			tx.stat(statLockAborts)
			tx.abortCleanup()
			return abortConflict("lock busy (irrevocable owner)", e.v.id)
		case ResolutionRetryLock:
			runtime.Gosched()
		}
	}
}

// publish installs all buffered writes at commit timestamp wv and
// releases the locks. The overwritten head is preserved on the version
// chain, trimmed to what live snapshot readers may still need.
func (tx *Txn) publish(wv uint64) {
	needed := tx.eng.snaps.minActive()
	for i := range tx.wset {
		e := &tx.wset[i]
		e.v.head.Store(&Version{val: e.val, ver: wv, prev: retainHistory(e.v.head.Load(), wv, needed)})
		e.v.unlockTo(packVersion(wv))
		e.locked = false
	}
}
