package stm

import (
	"context"
	"runtime"
	"slices"
	"sync/atomic"
	"time"
)

// Transaction status values.
const (
	statusActive uint32 = iota
	statusCommitted
	statusAborted
)

// readEntry records one validated read: the variable and the exact
// version record observed. Validation is by pointer identity: the read
// is still valid iff the variable's head is still that record. A pinned
// entry is never dropped by elastic window sliding and is validated at
// every cut and at commit — the anchor mechanism that lets elastic
// operations compose safely with structural invalidation (e.g. a hash
// table's bucket array being replaced by a resize).
type readEntry struct {
	v      *Var
	ver    *Version
	pinned bool
}

// writeEntry buffers one pending write (lazy versioning: writes become
// visible only at commit).
type writeEntry struct {
	v      *Var
	val    any
	prevLW uint64 // pre-lock word, meaningful once locked
	locked bool
}

// encLock records an encounter-time lock held by an irrevocable
// transaction on a variable it has read (or read and written).
type encLock struct {
	v      *Var
	prevLW uint64
}

// Txn is one transaction. A Txn value is reused across the attempts of
// one Engine.Run call (so karma and birth order persist), but each
// attempt gets a fresh id, read timestamp, and read/write sets via
// begin. Txn is not safe for concurrent use by multiple goroutines; the
// paper's model runs each operation on one process.
//
// Txns created by the Run family are pooled: when the run ends the Txn
// is scrubbed (recycle) and returned to the engine's pool, so the
// common transaction costs no allocation at all. The corollary is the
// reuse contract: a transaction body must not retain its *Txn (or any
// alias into its read/write sets) beyond the body's return, and a
// finished Txn must never be used again by the caller — the next Run
// anywhere in the process may already own it. Begin hands out unpooled
// Txns for callers that need to drive the lifecycle manually.
type Txn struct {
	eng   *Engine
	sem   Semantics
	cmFac CMFactory
	cm    ContentionManager

	// ctx is the run's cancellation scope; never nil (context.Background
	// when the run is not cancellable). The Background fast path costs
	// nothing: Done() is nil and Err() is a trivial interface call, so
	// the cancellation checks in the wait loops stay allocation-free.
	ctx context.Context

	// birth is the id of the first attempt; it defines the age order
	// used by the timestamp contention manager. It is atomic because
	// rival transactions inspect it (Birth) through live-registry
	// pointers that may be stale by the time they are dereferenced,
	// racing the rewrite a pooled reuse performs.
	birth atomic.Uint64

	// id is the per-attempt identity, used as the lock-word owner.
	id uint64

	// idNext/idLimit delimit the transaction's private block of attempt
	// ids, drawn txnIDBlock at a time from the engine's global counter
	// (see nextAttemptID).
	idNext, idLimit uint64

	// shard is the stripe this attempt's counter updates land on.
	shard uint32

	// rv is the read timestamp: all reads are consistent at rv.
	rv uint64

	status atomic.Uint32

	// killedID holds the attempt id a contention manager asked to
	// abort, 0 if none. The owner treats the transaction as killed only
	// while killedID equals the current attempt id, which makes kill
	// delivery exact under pooling: a kill races with the target
	// finishing, and when it loses the race it deposits a stale id that
	// no later attempt ever matches.
	killedID atomic.Uint64

	// unkillable mirrors sem == SemanticsIrrevocable for rival
	// transactions: kill must stay safe to call through a stale registry
	// pointer whose Txn a pooled reuse is re-arming, so the flag is its
	// own atomic rather than a racy read of sem.
	unkillable atomic.Bool

	rset []readEntry
	wset []writeEntry

	// wtab is the spilled write-set index: open addressing keyed by the
	// variable id, each slot holding a wset index + 1 (0 = empty). While
	// the write set is small (<= wsetLinearScan entries) lookups scan
	// wset directly and the table is not maintained at all; the first
	// write past the threshold builds it in place (see findWrite,
	// noteWrite). It holds no pointers, so recycling keeps it as-is.
	wtab []int32

	// written marks that a SemanticsWeak transaction has performed its
	// first write and must behave monomorphically from then on.
	written bool

	// karma accumulates accesses across attempts for the karma manager.
	// Deliberately a plain field despite rival reads (karma.OnLockBusy
	// inspects a lock owner's karma through a registry pointer): it is
	// incremented on EVERY transactional access, and any atomic form —
	// LOCK-prefixed add or XCHG store — measured 20-30% on the read
	// fast path. The word-sized unsynchronized read is the same
	// exposure the seed engine had (pooling's zeroing in recycle is
	// owner-side, like the increments), and a misread can only steer
	// the karma heuristic toward a safe outcome: abort-self is always
	// safe, and kill delivery is attempt-exact (killedID), so even a
	// wrong kill expires against a finished attempt.
	karma uint64

	attempt int

	snapRegistered  bool
	liveRegistered  bool
	irrevocableHeld bool
	encLocks        []encLock

	// modes is the nested-scope semantics stack; see nesting.go.
	modes semStack

	// elasticFloor is the read-set index below which elastic window
	// sliding may not drop entries (they belong to enclosing scopes).
	elasticFloor int
}

// txnIDBlock is how many attempt ids a transaction draws from the
// engine's global counter at a time. Blocks amortize the global
// fetch-and-add across attempts; unused remainder ids are simply never
// issued (the 63-bit id space absorbs the waste).
const txnIDBlock = 64

// nextAttemptID hands out the next per-attempt id from the
// transaction's private block, refilling from the engine once per
// txnIDBlock ids. Ids start at 1; id 0 is reserved for the
// Var.StoreDirect lock-word sentinel. Block allocation keeps ids unique
// and keeps birth order (first id of the first block) aligned with
// transaction creation order, which the timestamp contention manager's
// age priority relies on.
func (tx *Txn) nextAttemptID() uint64 {
	if tx.idNext == tx.idLimit {
		end := tx.eng.nextTxnID.Add(txnIDBlock)
		tx.idNext, tx.idLimit = end-txnIDBlock+1, end+1
	}
	id := tx.idNext
	tx.idNext++
	return id
}

// wsetLinearScan is the write-set size up to which read-your-writes
// lookups scan wset linearly. Past it, an open-addressed index over the
// variable ids (wtab) is built in place and maintained incrementally —
// the crossover where a probe beats walking the entries. The old
// map[*Var]int this replaces cost an allocation (and a rehash of every
// entry) per attempt even for transactions that never wrote.
const wsetLinearScan = 8

// wtabHash spreads a variable id over the probe table. Ids are
// sequential per stripe well (see Engine.newVarID), so they need mixing
// before masking; Fibonacci hashing's high bits do it in one multiply.
func wtabHash(id uint64) uint64 { return id * 0x9E3779B97F4A7C15 >> 32 }

// findWrite returns the wset index buffering v, or -1.
func (tx *Txn) findWrite(v *Var) int {
	if len(tx.wset) <= wsetLinearScan {
		for i := range tx.wset {
			if tx.wset[i].v == v {
				return i
			}
		}
		return -1
	}
	mask := uint64(len(tx.wtab) - 1)
	for h := wtabHash(v.id); ; h++ {
		slot := tx.wtab[h&mask]
		if slot == 0 {
			return -1
		}
		if i := int(slot - 1); tx.wset[i].v == v {
			return i
		}
	}
}

// noteWrite indexes the freshly appended wset entry i, spilling the
// linear scan into the probe table at the threshold and growing the
// table before it gets crowded.
func (tx *Txn) noteWrite(i int) {
	n := len(tx.wset)
	switch {
	case n <= wsetLinearScan:
		// Still linear; nothing to maintain.
	case n == wsetLinearScan+1 || 4*n >= 3*len(tx.wtab):
		tx.rebuildWtab()
	default:
		tx.insertWtab(i)
	}
}

// rebuildWtab (re)builds the probe table over the whole write set,
// reusing its storage when capacity allows. Load factor stays below
// 3/4.
func (tx *Txn) rebuildWtab() {
	size := 32
	for 4*len(tx.wset) >= 3*size {
		size <<= 1
	}
	if cap(tx.wtab) >= size {
		tx.wtab = tx.wtab[:size]
		clear(tx.wtab)
	} else {
		tx.wtab = make([]int32, size)
	}
	for i := range tx.wset {
		tx.insertWtab(i)
	}
}

// insertWtab adds wset entry i to the probe table (which must have a
// free slot; rebuildWtab maintains the load factor).
func (tx *Txn) insertWtab(i int) {
	mask := uint64(len(tx.wtab) - 1)
	for h := wtabHash(tx.wset[i].v.id); ; h++ {
		if tx.wtab[h&mask] == 0 {
			tx.wtab[h&mask] = int32(i + 1)
			return
		}
	}
}

// recycle scrubs every per-run trace from a finished transaction so a
// pooled reuse can neither observe nor retain anything from the
// previous lifecycle: read/write sets, encounter locks and the mode
// stack are element-cleared (dropping their Var/Version/value
// references for the GC) and truncated; identity, karma, attempt count
// and the contention manager reset. Only the slice capacities, the
// pointer-free probe table, and the remainder of the private attempt-id
// block survive — the id block keeps ids engine-unique, and reusing it
// is exactly the amortization the block allocator exists for (at the
// documented cost that birth "age" order is creation order per id
// block, not per Run).
func (tx *Txn) recycle() {
	clear(tx.rset)
	tx.rset = tx.rset[:0]
	clear(tx.wset)
	tx.wset = tx.wset[:0]
	clear(tx.encLocks)
	tx.encLocks = tx.encLocks[:0]
	tx.modes.stack = tx.modes.stack[:0]
	tx.sem = 0
	tx.cmFac = nil
	tx.cm = nil
	tx.ctx = context.Background()
	tx.birth.Store(0)
	tx.karma = 0
	tx.attempt = 0
	tx.rv = 0
	tx.written = false
	tx.elasticFloor = 0
	tx.killedID.Store(0)
	tx.unkillable.Store(false)
}

// stat bumps one engine counter on this attempt's stripe.
func (tx *Txn) stat(c statCounter) { tx.eng.stats.add(tx.shard, c) }

// statSem bumps one per-semantics counter on this attempt's stripe,
// attributed to the transaction's root parameter p (nested scopes do not
// reattribute).
func (tx *Txn) statSem(c semCounter) { tx.eng.stats.addSem(tx.shard, tx.sem, c) }

// begin (re)initializes the transaction for a new attempt. The
// contention manager is built on the first attempt and reused for the
// rest of the run — managers are values with per-lifecycle state, not
// per-attempt factory products (see ContentionManager).
func (tx *Txn) begin() {
	tx.id = tx.nextAttemptID()
	if tx.birth.Load() == 0 {
		tx.birth.Store(tx.id)
	}
	tx.shard = stripeHint()
	tx.attempt++
	tx.status.Store(statusActive)
	tx.unkillable.Store(tx.sem == SemanticsIrrevocable)
	tx.rset = tx.rset[:0]
	tx.wset = tx.wset[:0]
	tx.written = false
	tx.encLocks = tx.encLocks[:0]
	tx.modes.stack = tx.modes.stack[:0]
	tx.elasticFloor = 0
	if tx.cm == nil {
		tx.cm = tx.cmFac()
	}
	tx.stat(statStarts)
	tx.statSem(semStarts)

	switch tx.sem {
	case SemanticsIrrevocable:
		tx.eng.irrevocable.Lock()
		tx.irrevocableHeld = true
		tx.rv = tx.eng.clock.Now()
		tx.stat(statIrrevocables)
	case SemanticsSnapshot:
		// Registration order matters: publish a conservative lower
		// bound to the registry FIRST, then sample the read timestamp.
		// Writers that read the registry minimum before our bound was
		// stored committed at wv <= rv (their tick preceded our
		// post-store sample), so their new version is itself visible at
		// rv; writers that read it after preserve the newest version
		// <= the bound and everything newer — a superset of what
		// resolving at rv needs. Either way no version this snapshot
		// requires is ever trimmed. registerSampling performs the
		// publish and both clock samples in one shard critical section
		// (see its comment for why the post-store sample is
		// load-bearing).
		tx.rv = tx.eng.snaps.registerSampling(tx.id, &tx.eng.clock)
		tx.snapRegistered = true
	default:
		tx.rv = tx.eng.clock.Now()
	}
}

// registerLive enters this attempt into the live registry so that
// contention managers can resolve it as a lock owner. It must be called
// before the attempt's first lock-word CAS can succeed: a rival that
// observes our id in a lock word must be able to look us up (a nil
// lookup is treated as "owner already finished", which would spin
// rather than arbitrate). Read-only attempts never lock and so never
// register — that is the point: the registry is off the read fast path.
func (tx *Txn) registerLive() {
	if !tx.liveRegistered {
		tx.eng.live.store(tx.id, tx)
		tx.liveRegistered = true
	}
}

// finish tears down per-attempt registrations.
func (tx *Txn) finish(st uint32) {
	tx.status.Store(st)
	if tx.liveRegistered {
		tx.eng.live.delete(tx.id)
		tx.liveRegistered = false
	}
	if tx.snapRegistered {
		tx.eng.snaps.unregister(tx.id)
		tx.snapRegistered = false
	}
	if tx.irrevocableHeld {
		tx.eng.irrevocable.Unlock()
		tx.irrevocableHeld = false
	}
}

// ID returns the current attempt's identity.
func (tx *Txn) ID() uint64 { return tx.id }

// Birth returns the id of the transaction's first attempt (its age).
func (tx *Txn) Birth() uint64 { return tx.birth.Load() }

// Attempt returns the 1-based attempt number.
func (tx *Txn) Attempt() int { return tx.attempt }

// Karma returns the accumulated access count across attempts.
func (tx *Txn) Karma() uint64 { return tx.karma }

// Semantics returns the transaction's semantic parameter p.
func (tx *Txn) Semantics() Semantics { return tx.sem }

// ReadTimestamp returns the current read timestamp rv.
func (tx *Txn) ReadTimestamp() uint64 { return tx.rv }

// Engine returns the owning engine.
func (tx *Txn) Engine() *Engine { return tx.eng }

// kill requests asynchronous abort of attempt expected — the id the
// caller observed in the busy lock word. It returns false if the
// transaction cannot be killed (irrevocable transactions are
// guaranteed to commit). Delivery is attempt-exact: the kill deposits
// the expected id, and the owner honours it only while that is still
// the current attempt, so a kill racing through a stale registry
// pointer after the target finished (the shell may already be pooled,
// or re-armed as a different transaction — even an unabortable-by-
// contract snapshot reader) expires instead of landing. kill reads
// only atomics for the same reason.
func (tx *Txn) kill(expected uint64) bool {
	if tx.unkillable.Load() {
		return false
	}
	tx.killedID.Store(expected)
	return true
}

// isKilled reports whether a kill was delivered to the current attempt.
func (tx *Txn) isKilled() bool { return tx.killedID.Load() == tx.id }

// Context returns the run's cancellation scope (context.Background for
// non-cancellable runs; never nil).
func (tx *Txn) Context() context.Context { return tx.ctx }

// Sleep pauses for d, waking early when the transaction's context is
// cancelled first; it reports whether the full duration elapsed.
// Contention managers route their backoff sleeps through it so a
// cancelled caller is never held hostage by its own backoff. The
// Background path is a plain time.Sleep and allocates nothing.
func (tx *Txn) Sleep(d time.Duration) bool {
	done := tx.ctx.Done()
	if done == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return false
	case <-t.C:
		return true
	}
}

// checkLive verifies the transaction is usable and not killed.
func (tx *Txn) checkLive() error {
	if tx.status.Load() != statusActive {
		return tx.opError(ErrTxnDone, "finished handle")
	}
	if tx.isKilled() {
		tx.stat(statKills)
		tx.abortCleanup()
		return tx.abortKilled()
	}
	return nil
}

// Read performs a transactional read of v under the transaction's
// semantics. On conflict it aborts the transaction and returns a
// retryable error (see IsRetryable).
func (tx *Txn) Read(v *Var) (any, error) {
	if err := tx.checkLive(); err != nil {
		return nil, err
	}
	if v.eng != tx.eng {
		tx.abortCleanup()
		return nil, tx.opError(ErrCrossEngine, "cross-engine read")
	}
	tx.stat(statReads)
	tx.karma++

	// Read-your-writes.
	if len(tx.wset) > 0 {
		if i := tx.findWrite(v); i >= 0 {
			return tx.wset[i].val, nil
		}
	}

	switch sem := tx.effective(); {
	case sem == SemanticsSnapshot:
		return tx.readSnapshot(v)
	case sem == SemanticsIrrevocable:
		return tx.readIrrevocable(v)
	case sem == SemanticsWeak && !tx.written:
		return tx.readElastic(v, false)
	default:
		return tx.readDef(v)
	}
}

// ReadPinned performs a transactional read whose entry is anchored: an
// elastic transaction never slides it out of the validated set, so the
// value is guaranteed current at every later cut and at commit, exactly
// like a def read. Under non-weak semantics it is identical to Read.
func (tx *Txn) ReadPinned(v *Var) (any, error) {
	if err := tx.checkLive(); err != nil {
		return nil, err
	}
	if v.eng != tx.eng {
		tx.abortCleanup()
		return nil, tx.opError(ErrCrossEngine, "cross-engine read")
	}
	tx.stat(statReads)
	tx.karma++
	if len(tx.wset) > 0 {
		if i := tx.findWrite(v); i >= 0 {
			return tx.wset[i].val, nil
		}
	}
	switch sem := tx.effective(); {
	case sem == SemanticsSnapshot:
		return tx.readSnapshot(v)
	case sem == SemanticsIrrevocable:
		return tx.readIrrevocable(v)
	case sem == SemanticsWeak && !tx.written:
		return tx.readElastic(v, true)
	default:
		return tx.readDef(v)
	}
}

// waitUnlocked spins until v is not locked by another transaction. A
// locked variable may be mid-publish by a committer whose timestamp was
// taken BEFORE this transaction's read timestamp; trusting its (old)
// head would tear that commit across variables — the classic TL2 locked
// read hazard. Optimistic committers hold locks only across the publish
// loop; an irrevocable writer may hold them for its whole span, and
// readers of its variables wait it out (it is 2PL, after all). Returns
// an error if this transaction is killed, or its context cancelled,
// while waiting.
func (tx *Txn) waitUnlocked(v *Var) error {
	for {
		owner, locked := v.lockedBy()
		if !locked || owner == tx.id {
			return nil
		}
		if tx.isKilled() {
			tx.stat(statKills)
			tx.abortCleanup()
			return tx.abortKilled()
		}
		if err := tx.ctx.Err(); err != nil {
			tx.abortCleanup()
			return tx.abortCancelled(err)
		}
		runtime.Gosched()
	}
}

// readDef is the TL2/LSA read: wait out any in-flight commit, take the
// current head; if it is newer than rv, try to extend rv by
// revalidating the read set; otherwise the head is exactly the newest
// version <= rv (any commit after this transaction started has a
// strictly larger timestamp), so it is safe.
//
// The preamble is the classic TL2 unlocked fast path: one lock-word
// load and one head load decide the common case without entering the
// wait/extend loop. It is sound because observing the lock word
// unlocked means any commit with a timestamp <= rv has fully published
// (head.Store precedes the releasing lock-word store), while a commit
// racing between the two loads must have acquired the lock — and then
// ticked the clock — after our lock-word load, hence after rv was
// sampled, so its version is > rv and the h.ver guard routes it to the
// slow path.
func (tx *Txn) readDef(v *Var) (any, error) {
	if w := v.lw.Load(); !isLocked(w) {
		if h := v.head.Load(); h.ver <= tx.rv {
			tx.rset = append(tx.rset, readEntry{v: v, ver: h})
			return h.val, nil
		}
	}
	return tx.readDefSlow(v)
}

// readDefSlow is readDef's wait/extend loop.
func (tx *Txn) readDefSlow(v *Var) (any, error) {
	for {
		if err := tx.waitUnlocked(v); err != nil {
			return nil, err
		}
		h := v.head.Load()
		if h.ver <= tx.rv {
			tx.rset = append(tx.rset, readEntry{v: v, ver: h})
			return h.val, nil
		}
		if !tx.extend() {
			tx.stat(statReadAborts)
			tx.abortCleanup()
			return nil, tx.abortConflict("read validation", v.id)
		}
	}
}

// extend attempts to advance rv to the current clock, revalidating every
// tracked read. Returns false if any read is no longer valid.
func (tx *Txn) extend() bool {
	now := tx.eng.clock.Now()
	if !tx.validateReads() {
		return false
	}
	tx.rv = now
	tx.stat(statExtensions)
	return true
}

// validateReads checks every tracked read: the observed version must
// still be the head and the variable must not be locked by another
// transaction.
func (tx *Txn) validateReads() bool {
	for i := range tx.rset {
		e := &tx.rset[i]
		if e.v.head.Load() != e.ver {
			return false
		}
		if owner, locked := e.v.lockedBy(); locked && owner != tx.id {
			return false
		}
	}
	return true
}

// Write buffers a transactional write of val to v.
func (tx *Txn) Write(v *Var, val any) error {
	if err := tx.checkLive(); err != nil {
		return err
	}
	if v.eng != tx.eng {
		tx.abortCleanup()
		return tx.opError(ErrCrossEngine, "cross-engine write")
	}
	tx.stat(statWrites)
	tx.karma++

	switch tx.effective() {
	case SemanticsSnapshot:
		tx.abortCleanup()
		return tx.opError(ErrSnapshotWrite, "write in read-only snapshot")
	case SemanticsIrrevocable:
		if err := tx.encounterLock(v); err != nil {
			return err
		}
	case SemanticsWeak:
		// From the first write on, the elastic transaction behaves
		// monomorphically: its current consistency window anchors the
		// write's critical step and is validated at commit.
		tx.written = true
	}

	if i := tx.findWrite(v); i >= 0 {
		tx.wset[i].val = val
		return nil
	}
	tx.wset = append(tx.wset, writeEntry{v: v, val: val})
	tx.noteWrite(len(tx.wset) - 1)
	return nil
}

// Abort aborts the transaction explicitly. It is idempotent on a
// finished transaction.
func (tx *Txn) Abort() {
	if tx.status.Load() != statusActive {
		return
	}
	tx.abortCleanup()
}

// abortCleanup releases resources and marks the transaction aborted.
func (tx *Txn) abortCleanup() {
	// Release commit-time locks (restore pre-lock words).
	for i := range tx.wset {
		if tx.wset[i].locked {
			tx.wset[i].v.unlockTo(tx.wset[i].prevLW)
			tx.wset[i].locked = false
		}
	}
	// Release encounter-time locks.
	for _, el := range tx.encLocks {
		el.v.unlockTo(el.prevLW)
	}
	tx.encLocks = tx.encLocks[:0]
	tx.stat(statAborts)
	tx.statSem(semAborts)
	tx.finish(statusAborted)
}

// Commit attempts to commit. On success all buffered writes become
// visible atomically at a fresh commit timestamp. On conflict the
// transaction is aborted and a retryable error returned.
func (tx *Txn) Commit() error {
	if tx.status.Load() != statusActive {
		return tx.opError(ErrTxnDone, "finished handle")
	}
	if tx.isKilled() && tx.sem != SemanticsIrrevocable {
		tx.stat(statKills)
		tx.abortCleanup()
		return tx.abortKilled()
	}

	if tx.sem == SemanticsIrrevocable {
		tx.commitIrrevocable()
		return nil
	}

	// Read-only transactions were validated incrementally (def: all
	// reads consistent at rv; weak: every window pairwise-consistent;
	// snapshot: reads resolved at the start timestamp) and commit
	// without further work.
	if len(tx.wset) == 0 {
		tx.stat(statCommits)
		tx.statSem(semCommits)
		tx.finish(statusCommitted)
		return nil
	}

	// About to take locks: become resolvable as a lock owner first.
	tx.registerLive()

	// Acquire commit-time locks in variable-id order (deadlock-free).
	// slices.SortFunc, unlike sort.Slice, costs no allocation.
	slices.SortFunc(tx.wset, func(a, b writeEntry) int {
		switch {
		case a.v.id < b.v.id:
			return -1
		case a.v.id > b.v.id:
			return 1
		default:
			return 0
		}
	})
	// The sort invalidates a spilled wtab, and that is fine: the engine
	// performs no write-set lookups after this point, and the next
	// lifecycle rebuilds the table from scratch when (if) its write set
	// crosses the spill threshold again.
	for i := range tx.wset {
		if err := tx.lockForCommit(&tx.wset[i]); err != nil {
			return err
		}
	}

	wv := tx.eng.clock.Tick()

	// TL2 fast path: if nothing committed since we started, reads are
	// trivially valid.
	if wv != tx.rv+1 {
		if !tx.validateReads() {
			tx.stat(statValidateAbort)
			tx.abortCleanup()
			return tx.abortConflict("commit validation", 0)
		}
	}

	tx.publish(wv)
	tx.stat(statCommits)
	tx.statSem(semCommits)
	tx.finish(statusCommitted)
	return nil
}

// lockForCommit acquires one commit lock, driving the contention manager
// on conflict.
func (tx *Txn) lockForCommit(e *writeEntry) error {
	for attempt := 0; ; attempt++ {
		if tx.isKilled() {
			tx.stat(statKills)
			tx.abortCleanup()
			return tx.abortKilled()
		}
		if err := tx.ctx.Err(); err != nil {
			tx.abortCleanup()
			return tx.abortCancelled(err)
		}
		prev, ok := e.v.tryLock(tx.id)
		if ok {
			e.prevLW = prev
			e.locked = true
			return nil
		}
		owner, locked := e.v.lockedBy()
		if !locked {
			continue // released between load and CAS; retry immediately
		}
		if owner == tx.id {
			// Defensive: already ours (cannot happen — the write set
			// dedupes by variable).
			return nil
		}
		enemy := tx.eng.lookupTxn(owner)
		switch tx.cm.OnLockBusy(tx, enemy, attempt) {
		case ResolutionAbortSelf:
			tx.stat(statLockAborts)
			tx.abortCleanup()
			return tx.abortConflict("lock busy", e.v.id)
		case ResolutionKillEnemy:
			if enemy == nil || enemy.kill(owner) {
				runtime.Gosched()
				continue
			}
			// Enemy is unkillable (irrevocable): yield the fight.
			tx.stat(statLockAborts)
			tx.abortCleanup()
			return tx.abortConflict("lock busy (irrevocable owner)", e.v.id)
		case ResolutionRetryLock:
			runtime.Gosched()
		}
	}
}

// publish installs all buffered writes at commit timestamp wv and
// releases the locks. The overwritten head is preserved on the version
// chain, trimmed to what live snapshot readers may still need.
func (tx *Txn) publish(wv uint64) {
	needed := tx.eng.snaps.minActive()
	for i := range tx.wset {
		e := &tx.wset[i]
		e.v.head.Store(&Version{val: e.val, ver: wv, prev: retainHistory(e.v.head.Load(), wv, needed)})
		e.v.unlockTo(packVersion(wv))
		e.locked = false
	}
}
