package stm

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// countingObserver tallies events; safe for concurrent use.
type countingObserver struct {
	commits, aborts, waits atomic.Int64

	mu        sync.Mutex
	lastLabel string
	lastErr   error
}

func (o *countingObserver) OnCommit(ev TxnEvent) {
	o.commits.Add(1)
	o.mu.Lock()
	o.lastLabel = ev.Label
	o.mu.Unlock()
}

func (o *countingObserver) OnAbort(ev TxnEvent) {
	o.aborts.Add(1)
	o.mu.Lock()
	o.lastLabel = ev.Label
	o.lastErr = ev.Err
	o.mu.Unlock()
}

func (o *countingObserver) OnWait(ev TxnEvent) { o.waits.Add(1) }

// TestObserverSeesLifecycle drives commit, user-error abort,
// retry-then-commit and Retry-wait flows past an engine-wide observer.
func TestObserverSeesLifecycle(t *testing.T) {
	obs := &countingObserver{}
	e := NewEngine(Config{Observer: obs})
	x := e.NewVar(0)

	// Plain commit.
	if err := e.Run(SemanticsDef, func(tx *Txn) error { return tx.Write(x, 1) }); err != nil {
		t.Fatal(err)
	}
	if got := obs.commits.Load(); got != 1 {
		t.Fatalf("commits = %d, want 1", got)
	}

	// User error: one abort, no commit, Err delivered.
	boom := errors.New("boom")
	if err := e.Run(SemanticsDef, func(tx *Txn) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("user error lost: %v", err)
	}
	if got := obs.aborts.Load(); got != 1 {
		t.Fatalf("aborts = %d, want 1", got)
	}
	obs.mu.Lock()
	if !errors.Is(obs.lastErr, boom) {
		t.Fatalf("observer abort Err = %v, want boom", obs.lastErr)
	}
	obs.mu.Unlock()

	// Conflict retries: two forced retryable aborts, then success — the
	// observer sees each aborted attempt AND the final commit.
	tries := 0
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		tries++
		if tries <= 2 {
			return tx.abortConflict("forced", 0)
		}
		return tx.Write(x, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.aborts.Load(); got != 3 {
		t.Fatalf("aborts = %d, want 3 (1 user + 2 forced)", got)
	}
	if got := obs.commits.Load(); got != 2 {
		t.Fatalf("commits = %d, want 2", got)
	}

	// Retry wait: a waiter parks (OnWait), a writer wakes it.
	ready := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- e.RunOpts(context.Background(), SemanticsDef, RunOptions{Label: "waiter"}, func(tx *Txn) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			if v.(int) != 99 {
				select {
				case <-ready:
				default:
					close(ready)
				}
				return ErrRetryWait
			}
			return nil
		})
	}()
	<-ready
	if err := e.Run(SemanticsDef, func(tx *Txn) error { return tx.Write(x, 99) }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if obs.waits.Load() == 0 {
		t.Fatal("observer saw no OnWait for a parked Retry")
	}
	obs.mu.Lock()
	label := obs.lastLabel
	obs.mu.Unlock()
	if label != "waiter" {
		t.Fatalf("label = %q, want %q (RunOptions.Label must travel on events)", label, "waiter")
	}
}

// TestObserverTerminalEventOnBoundExhaustion: a run that dies to its
// attempt bound ends with exactly one terminal OnAbort carrying the
// ErrTooManyAttempts AbortError (not the last retryable conflict), so
// outcome-counting observers balance.
func TestObserverTerminalEventOnBoundExhaustion(t *testing.T) {
	obs := &countingObserver{}
	e := NewEngine(Config{Observer: obs})
	err := e.RunWithOptions(SemanticsDef, nil, 3, func(tx *Txn) error {
		return tx.abortConflict("forced", 0)
	})
	if !errors.Is(err, ErrTooManyAttempts) {
		t.Fatalf("err = %v", err)
	}
	// Attempts 1 and 2 abort retryably; attempt 3 exhausts the bound and
	// its single OnAbort carries the terminal error.
	if got := obs.aborts.Load(); got != 3 {
		t.Fatalf("aborts = %d, want 3 (2 retryable + 1 terminal)", got)
	}
	obs.mu.Lock()
	last := obs.lastErr
	obs.mu.Unlock()
	if !errors.Is(last, ErrTooManyAttempts) || IsRetryable(last) {
		t.Fatalf("terminal event Err = %v, want non-retryable ErrTooManyAttempts", last)
	}
}

// TestObserverTerminalEventOnCancellation: a cancelled run also ends
// with a terminal OnAbort matching ErrCancelled.
func TestObserverTerminalEventOnCancellation(t *testing.T) {
	obs := &countingObserver{}
	e := NewEngine(Config{Observer: obs})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunCtx(ctx, SemanticsDef, func(tx *Txn) error { return nil }); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v", err)
	}
	if got := obs.aborts.Load(); got != 1 {
		t.Fatalf("aborts = %d, want 1 terminal event", got)
	}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if !errors.Is(obs.lastErr, ErrCancelled) {
		t.Fatalf("terminal event Err = %v, want ErrCancelled", obs.lastErr)
	}
}

// TestPerRunObserverOverridesEngine: a RunOptions observer replaces the
// engine-wide one for that run only.
func TestPerRunObserverOverridesEngine(t *testing.T) {
	engObs := &countingObserver{}
	runObs := &countingObserver{}
	e := NewEngine(Config{Observer: engObs})
	x := e.NewVar(0)
	err := e.RunOpts(context.Background(), SemanticsDef, RunOptions{Observer: runObs}, func(tx *Txn) error {
		return tx.Write(x, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if engObs.commits.Load() != 0 {
		t.Fatal("engine observer fired for a run with its own observer")
	}
	if runObs.commits.Load() != 1 {
		t.Fatal("per-run observer missed the commit")
	}
}
