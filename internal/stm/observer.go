package stm

// TxnEvent describes one transaction-lifecycle event delivered to an
// Observer. It is passed by value and allocation-free; observers that
// need to retain it may copy it freely (it holds no engine-internal
// pointers).
type TxnEvent struct {
	// Semantics is the transaction's root parameter p of start(p) —
	// nested scopes do not reattribute events.
	Semantics Semantics
	// Attempts is the 1-based attempt count at the time of the event.
	Attempts int
	// Label is the caller-supplied transaction tag (core.WithLabel),
	// "" when unset.
	Label string
	// Err is the abort reason (OnAbort only; nil for commit and wait
	// events). It is the error the attempt ended with — a retryable
	// *AbortError for conflicts the run loop is about to retry, or the
	// terminal error for the final attempt.
	Err error
}

// Observer receives transaction lifecycle events from the run loop.
// Events describe engine runs: every run ends with exactly one
// terminal event — an OnCommit, or an OnAbort whose Err is
// non-retryable (the terminal causes are user errors,
// ErrTooManyAttempts, ErrCancelled, and the misuse sentinels). Before
// that, each aborted-and-retried attempt fires one OnAbort whose Err
// IS retryable (inspect with IsRetryable), and each park in the Retry
// combinator's wait fires one OnWait.
//
// One caveat at the core layer: a TM-level escalation to irrevocable
// restarts the transaction as a NEW engine run, so a logical Atomic
// call that escalates produces a terminal OnAbort (Err matching
// core.ErrEscalated or ErrTooManyAttempts) followed by the escalated
// run's events.
//
// Hooks run synchronously on the transaction's goroutine between
// attempts — never inside one — so they may not call back into the
// transaction, and slow hooks stretch the retry loop. A nil observer
// costs one pointer comparison per event site; engines and runs without
// observers pay nothing else.
//
// Register an observer engine-wide via Config.Observer, or per
// transaction via RunOptions.Observer (core.WithObserver), which
// overrides the engine's.
type Observer interface {
	// OnCommit fires once after the transaction commits.
	OnCommit(ev TxnEvent)
	// OnAbort fires after each aborted attempt, terminal or not.
	OnAbort(ev TxnEvent)
	// OnWait fires when the transaction parks in Retry's wait loop,
	// before it starts waiting.
	OnWait(ev TxnEvent)
}
