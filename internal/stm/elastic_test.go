package stm

import (
	"sync"
	"testing"
)

// TestFigure1EngineLevel replays the transactional schedule of the
// paper's Figure 1 against the real engine:
//
//	p1: start(weak) r(x)            r(y)                      r(z) commit
//	p3:        start(def) w(z)            commit
//	p2:                                     start(def) w(x) commit
//
// The weak (elastic) transaction of p1 must commit — this is exactly the
// schedule the paper proves a polymorphic TM accepts — while the same
// interleaving under start(def) must abort (monomorphic rejection,
// Theorem 2's 6⇐ direction on this witness).
func TestFigure1EngineLevel(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar("x0")
	y := e.NewVar("y0")
	z := e.NewVar("z0")

	p1 := e.Begin(SemanticsWeak)

	vx, err := p1.Read(x)
	if err != nil {
		t.Fatalf("p1 r(x): %v", err)
	}

	// p3: start(def), w(z), commit
	p3 := e.Begin(SemanticsDef)
	if err := p3.Write(z, "z3"); err != nil {
		t.Fatal(err)
	}
	if err := p3.Commit(); err != nil {
		t.Fatal(err)
	}

	vy, err := p1.Read(y)
	if err != nil {
		t.Fatalf("p1 r(y): %v", err)
	}

	// p2: start(def), w(x), commit — overwrites p1's first read.
	p2 := e.Begin(SemanticsDef)
	if err := p2.Write(x, "x2"); err != nil {
		t.Fatal(err)
	}
	if err := p2.Commit(); err != nil {
		t.Fatal(err)
	}

	// p1 r(z): z was committed after p1's start, so this read triggers
	// an elastic cut — x (already outside the window) is dropped, the
	// window {y} revalidates, and the read succeeds.
	vz, err := p1.Read(z)
	if err != nil {
		t.Fatalf("p1 r(z) must succeed under weak semantics: %v", err)
	}
	if err := p1.Commit(); err != nil {
		t.Fatalf("p1 commit must succeed under weak semantics: %v", err)
	}

	if vx != "x0" || vy != "y0" || vz != "z3" {
		t.Fatalf("p1 observed (%v,%v,%v), want (x0,y0,z3)", vx, vy, vz)
	}
	if e.Stats().ElasticCuts == 0 {
		t.Fatal("expected an elastic cut to be recorded")
	}
}

// TestFigure1MonomorphicRejects runs the identical interleaving with
// start(def) for p1: the monomorphic transaction must abort, because its
// three reads form a single critical step that no serialization point
// satisfies once both writers committed in the middle.
func TestFigure1MonomorphicRejects(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar("x0")
	y := e.NewVar("y0")
	z := e.NewVar("z0")

	p1 := e.Begin(SemanticsDef)
	if _, err := p1.Read(x); err != nil {
		t.Fatal(err)
	}

	p3 := e.Begin(SemanticsDef)
	if err := p3.Write(z, "z3"); err != nil {
		t.Fatal(err)
	}
	if err := p3.Commit(); err != nil {
		t.Fatal(err)
	}

	if _, err := p1.Read(y); err != nil {
		t.Fatal(err) // y untouched; still consistent at p1's rv
	}

	p2 := e.Begin(SemanticsDef)
	if err := p2.Write(x, "x2"); err != nil {
		t.Fatal(err)
	}
	if err := p2.Commit(); err != nil {
		t.Fatal(err)
	}

	// r(z) forces an extension (z changed after p1 started); the
	// extension revalidates x, which p2 overwrote — abort.
	_, err := p1.Read(z)
	if !IsRetryable(err) {
		t.Fatalf("monomorphic p1 must abort on r(z), got %v", err)
	}
}

// TestElasticWindowInvalidated: if the *window itself* (the immediately
// preceding read) is overwritten before the next read, the pairwise
// critical step is unsatisfiable and the elastic transaction must abort.
func TestElasticWindowInvalidated(t *testing.T) {
	e := NewDefaultEngine()
	y := e.NewVar("y0")
	z := e.NewVar("z0")

	p1 := e.Begin(SemanticsWeak)
	if _, err := p1.Read(y); err != nil {
		t.Fatal(err)
	}

	// Overwrite y (in the window) AND z (to force the cut attempt).
	w := e.Begin(SemanticsDef)
	if err := w.Write(y, "y1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(z, "z1"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	_, err := p1.Read(z)
	if !IsRetryable(err) {
		t.Fatalf("elastic txn must abort when its window is invalidated, got %v", err)
	}
}

// TestElasticBecomesMonomorphicAfterWrite: once an elastic transaction
// writes, later reads are fully tracked and a stale read set aborts the
// commit — elasticity applies to the search prefix only.
func TestElasticBecomesMonomorphicAfterWrite(t *testing.T) {
	e := NewDefaultEngine()
	a := e.NewVar(1)
	b := e.NewVar(2)
	c := e.NewVar(3)

	p := e.Begin(SemanticsWeak)
	if _, err := p.Read(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(b, 20); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(c); err != nil {
		t.Fatal(err)
	}

	// Invalidate c after p read it, post-write: commit must fail.
	w := e.Begin(SemanticsDef)
	if err := w.Write(c, 30); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := p.Commit(); !IsRetryable(err) {
		t.Fatalf("post-write elastic commit must validate reads, got %v", err)
	}
	if got := b.LoadDirect().(int); got != 2 {
		t.Fatalf("aborted elastic write leaked: %d", got)
	}
}

// TestElasticReadOnlyNeverValidatesAtCommit: a pure search (read-only
// elastic transaction) commits even if every variable it ever read has
// since been overwritten — only pairwise consistency at read time
// matters.
func TestElasticReadOnlyCommitsDespiteStaleHistory(t *testing.T) {
	e := NewDefaultEngine()
	vars := make([]*Var, 10)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}

	p := e.Begin(SemanticsWeak)
	for i := range vars {
		if _, err := p.Read(vars[i]); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		// After each read, overwrite a variable read two steps ago —
		// always outside the window.
		if i >= 2 {
			w := e.Begin(SemanticsDef)
			if err := w.Write(vars[i-2], i*100); err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("read-only elastic commit: %v", err)
	}
}

// TestElasticCutChain: multiple successive cuts in one transaction.
func TestElasticCutChain(t *testing.T) {
	e := NewDefaultEngine()
	a := e.NewVar("a")
	b := e.NewVar("b")
	c := e.NewVar("c")
	d := e.NewVar("d")

	p := e.Begin(SemanticsWeak)
	if _, err := p.Read(a); err != nil {
		t.Fatal(err)
	}

	commitWrite := func(v *Var, val string) {
		t.Helper()
		w := e.Begin(SemanticsDef)
		if err := w.Write(v, val); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	commitWrite(b, "b1") // makes next read of b trigger a cut
	if _, err := p.Read(b); err != nil {
		t.Fatalf("cut 1: %v", err)
	}
	commitWrite(c, "c1")
	if _, err := p.Read(c); err != nil {
		t.Fatalf("cut 2: %v", err)
	}
	commitWrite(d, "d1")
	if _, err := p.Read(d); err != nil {
		t.Fatalf("cut 3: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if cuts := e.Stats().ElasticCuts; cuts < 3 {
		t.Fatalf("recorded %d cuts, want >= 3", cuts)
	}
}

// TestElasticConcurrentSearchers: many elastic readers walking a chain
// of variables while writers churn values they have already passed. All
// searches must complete without aborts in Run (retries allowed but the
// workload is designed so the window is never invalidated).
func TestElasticConcurrentSearchers(t *testing.T) {
	e := NewDefaultEngine()
	const n = 64
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers churn the first half of the chain.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint32(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*1664525 + 1013904223
				i := int(r>>8) % (n / 2)
				_ = e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(vars[i])
					if err != nil {
						return err
					}
					return tx.Write(vars[i], v.(int)+1000)
				})
			}
		}(w + 7)
	}
	// Elastic searchers walk the whole chain left to right.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				err := e.Run(SemanticsWeak, func(tx *Txn) error {
					for i := 0; i < n; i++ {
						if _, err := tx.Read(vars[i]); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Join searchers first, then stop writers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// The searchers signal completion through wg; writers need stop.
	// Close stop once searchers are done: poll via a second waitgroup
	// would be cleaner, but the searchers' 4 goroutines exit on their
	// own; give writers the signal right away and wait for everyone.
	close(stop)
	<-done
}
