package stm

import "fmt"

// Semantics is the polymorphism parameter p of the paper's start(p):
// the per-transaction semantic hint that selects how the engine
// synchronizes this transaction's accesses. The zero value is
// SemanticsDef, the paper's default semantics "def", so omitting the
// parameter yields a monomorphic transaction exactly as in the paper.
type Semantics uint8

const (
	// SemanticsDef is the default, safest semantics: the transaction is
	// opaque and appears to execute atomically at a single point (all of
	// its accesses form one critical step). This is what every
	// transaction of a monomorphic TM runs.
	SemanticsDef Semantics = iota

	// SemanticsWeak ("weak" in the paper's Figure 1) runs the
	// transaction as an elastic transaction [Felber, Gramoli, Guerraoui,
	// DISC 2009]: before its first write, only each pair of consecutive
	// reads must be mutually consistent (the paper's critical steps
	// γ1 = {r(x), r(y)}, γ2 = {r(y), r(z)}), so the read prefix may be
	// "cut" on conflict instead of aborting. Ideal for search phases of
	// linked data structures.
	SemanticsWeak

	// SemanticsSnapshot gives the transaction multi-version read-only
	// semantics: every read resolves against the committed snapshot at
	// the transaction's start time, so read-only transactions never
	// abort and never block writers. Writing under SemanticsSnapshot is
	// an error (ErrSnapshotWrite); the core layer can transparently
	// restart the transaction under SemanticsDef.
	SemanticsSnapshot

	// SemanticsIrrevocable guarantees the transaction commits on its
	// first and only attempt (a per-transaction liveness guarantee, one
	// of the applications the paper lists). It is implemented with
	// pessimistic encounter-time two-phase locking serialized by a
	// global token, so it may only be held by one transaction at a time.
	SemanticsIrrevocable
)

// String returns the paper-style name of the semantics.
func (s Semantics) String() string {
	switch s {
	case SemanticsDef:
		return "def"
	case SemanticsWeak:
		return "weak"
	case SemanticsSnapshot:
		return "snapshot"
	case SemanticsIrrevocable:
		return "irrevocable"
	default:
		return fmt.Sprintf("Semantics(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the defined semantics.
func (s Semantics) Valid() bool { return s <= SemanticsIrrevocable }

// Strength orders semantics from weakest to strongest guarantee, used by
// the NestStrongest nesting-composition policy (the paper's concluding
// question: "what should be the semantics of a nested transaction?").
// Irrevocable > Def > Snapshot > Weak.
func (s Semantics) Strength() int {
	switch s {
	case SemanticsIrrevocable:
		return 3
	case SemanticsDef:
		return 2
	case SemanticsSnapshot:
		return 1
	case SemanticsWeak:
		return 0
	default:
		return -1
	}
}

// Stronger returns the stronger of the two semantics under Strength.
func Stronger(a, b Semantics) Semantics {
	if a.Strength() >= b.Strength() {
		return a
	}
	return b
}
