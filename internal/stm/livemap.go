package stm

import "sync"

// liveRegistry maps attempt id -> *Txn for the contention managers,
// which must be able to inspect (and kill) the owner of a busy lock
// word. Only lock *owners* can ever be looked up — an enemy is always
// the holder of a busy lock — so registration is lazy: an attempt
// enters the registry the first time it acquires a lock (commit-time or
// encounter-time; see Txn.registerLive), and the read-only fast paths
// never touch the registry at all. The registry is sharded by a mixing
// hash of the id (shardOf — raw low bits would collapse block-allocated
// first-attempt ids onto one shard): each shard is a small
// mutex-guarded map on its own cache line, so concurrent writers
// almost always lock disjoint shards.
//
// A plain map under a shard mutex beats a lock-free concurrent map
// here: entries are short-lived and mostly unique, so a trie-based map
// pays an allocation and a root walk per insert, while the uncontended
// shard mutex costs a few nanoseconds — and lazy registration keeps the
// shard mutexes off the hot read path where oversubscribed schedulers
// could convoy on them.
type liveRegistry struct {
	shards []liveShard
	mask   uint64
}

type liveShard struct {
	mu sync.Mutex
	m  map[uint64]*Txn
	_  [cacheLine - 16]byte
}

// init sizes the shard array; shards must be a power of two.
func (r *liveRegistry) init(shards int) {
	r.shards = make([]liveShard, shards)
	for i := range r.shards {
		r.shards[i].m = make(map[uint64]*Txn, 4)
	}
	r.mask = uint64(shards - 1)
}

// store registers tx as the live transaction with attempt id.
func (r *liveRegistry) store(id uint64, tx *Txn) {
	sh := &r.shards[shardOf(id, r.mask)]
	sh.mu.Lock()
	sh.m[id] = tx
	sh.mu.Unlock()
}

// delete removes attempt id from the registry.
func (r *liveRegistry) delete(id uint64) {
	sh := &r.shards[shardOf(id, r.mask)]
	sh.mu.Lock()
	delete(sh.m, id)
	sh.mu.Unlock()
}

// lookup resolves a live transaction by attempt id, or nil if it has
// already finished.
func (r *liveRegistry) lookup(id uint64) *Txn {
	sh := &r.shards[shardOf(id, r.mask)]
	sh.mu.Lock()
	tx := sh.m[id]
	sh.mu.Unlock()
	return tx
}
