package stm

import "testing"

// TestPinnedReadSurvivesSliding: an anchored read stays in the validated
// set of an elastic transaction while ordinary reads slide away.
func TestPinnedReadSurvivesSliding(t *testing.T) {
	e := NewDefaultEngine()
	root := e.NewVar("root")
	a := e.NewVar(1)
	b := e.NewVar(2)
	c := e.NewVar(3)
	d := e.NewVar(4)

	p := e.Begin(SemanticsWeak)
	if _, err := p.ReadPinned(root); err != nil {
		t.Fatal(err)
	}
	for _, v := range []*Var{a, b, c} {
		if _, err := p.Read(v); err != nil {
			t.Fatal(err)
		}
	}
	// Invalidate the root, then force a cut by committing to d before p
	// reads it: the cut must fail because the pinned root is stale.
	w := e.Begin(SemanticsDef)
	if err := w.Write(root, "root2"); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(d, 40); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(d); !IsRetryable(err) {
		t.Fatalf("cut must fail on stale pinned root, got %v", err)
	}
}

// TestPinnedReadValidatedAtWriteCommit: an elastic writer whose anchor
// went stale must abort at commit even if its window is fine.
func TestPinnedReadValidatedAtWriteCommit(t *testing.T) {
	e := NewDefaultEngine()
	root := e.NewVar("root")
	a := e.NewVar(1)
	b := e.NewVar(2)
	out := e.NewVar(0)

	p := e.Begin(SemanticsWeak)
	if _, err := p.ReadPinned(root); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(b); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(out, 99); err != nil {
		t.Fatal(err)
	}

	w := e.Begin(SemanticsDef)
	if err := w.Write(root, "root2"); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	if err := p.Commit(); !IsRetryable(err) {
		t.Fatalf("commit must validate the pinned root, got %v", err)
	}
	if got := out.LoadDirect().(int); got != 0 {
		t.Fatalf("aborted write leaked: %d", got)
	}
}

// TestUnpinnedSlidingStillWorks: with an anchor present, ordinary elastic
// reads still slide and cuts still succeed when only old unpinned reads
// went stale.
func TestUnpinnedSlidingStillWorksWithAnchor(t *testing.T) {
	e := NewDefaultEngine()
	root := e.NewVar("root")
	vars := make([]*Var, 6)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}
	extra := e.NewVar(100)

	p := e.Begin(SemanticsWeak)
	if _, err := p.ReadPinned(root); err != nil {
		t.Fatal(err)
	}
	for _, v := range vars {
		if _, err := p.Read(v); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite an early, slid-away variable and the not-yet-read extra:
	// the cut validates {anchor, window} and succeeds.
	w := e.Begin(SemanticsDef)
	if err := w.Write(vars[0], -1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(extra, 200); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(extra); err != nil {
		t.Fatalf("cut with valid anchor must succeed: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedUnderDefIsOrdinaryRead(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(5)
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		v, err := tx.ReadPinned(x)
		if err != nil {
			return err
		}
		if v.(int) != 5 {
			t.Fatalf("got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
