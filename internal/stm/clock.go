// Package stm implements the low-level software transactional memory
// engine underlying the polymorphic transaction API of package core.
//
// The engine is word-based in the TL2/LSA tradition: shared state lives in
// explicit transactional variables (TVar), each guarded by a versioned
// lock word, and commit order is defined by a global version clock.
// On top of this single substrate the engine implements several
// transaction *semantics* — the paper's polymorphism parameter p in
// start(p):
//
//   - SemanticsDef: the default, opaque, monomorphic semantics
//     (TL2-style invisible reads, commit-time locking, full validation).
//   - SemanticsWeak: elastic transactions (Felber, Gramoli, Guerraoui,
//     DISC 2009) — the read prefix may be "cut" on conflict, keeping only
//     a sliding consistency window, which accepts schedules such as
//     Figure 1 of the paper that no monomorphic TM accepts.
//   - SemanticsSnapshot: multi-version read-only semantics; readers never
//     abort and observe the committed snapshot at their start time.
//   - SemanticsIrrevocable: the transaction is guaranteed to commit and
//     never re-executes; used for operations with side effects.
//
// All semantics interoperate safely in one memory: writers always
// preserve the overwritten version on a bounded version chain so that
// snapshot readers can never observe torn state, and elastic cuts only
// ever discard reads that were individually consistent at the time they
// were made (see elastic.go).
package stm

import "sync/atomic"

// Clock is the global version clock (TL2). Every committed writing
// transaction acquires a unique commit timestamp by incrementing it, and
// every transaction samples it at start to obtain its read timestamp.
//
// The zero Clock is ready to use; time starts at 0 and the first commit
// timestamp is 1.
type Clock struct {
	t atomic.Uint64
}

// Now returns the current global time. A transaction samples Now at start
// as its read timestamp rv: any location with version <= rv is guaranteed
// to have been committed no later than the sample.
func (c *Clock) Now() uint64 { return c.t.Load() }

// Tick atomically advances the clock and returns the new, unique commit
// timestamp.
func (c *Clock) Tick() uint64 { return c.t.Add(1) }

// Advance moves the clock forward to at least v. It is used by the
// irrevocable path, which writes in place and must publish versions that
// dominate every concurrent read timestamp.
func (c *Clock) Advance(v uint64) {
	for {
		cur := c.t.Load()
		if cur >= v {
			return
		}
		if c.t.CompareAndSwap(cur, v) {
			return
		}
	}
}
