package stm

import (
	"errors"
	"runtime"
	"time"
)

// ErrRetryWait is returned by a transaction body to request blocking
// retry (the composable STM "retry" combinator): the transaction aborts
// and re-executes only after at least one variable it read has been
// overwritten by a commit — so a consumer waiting on an empty queue
// sleeps instead of spinning through conflict aborts.
var ErrRetryWait = errors.New("stm: retry when read set changes")

// awaitChange blocks until some entry of the recorded read set is no
// longer current (a writer committed to it) — the wake-up condition of
// ErrRetryWait. The wait is a backoff poll: versions are compared by
// head identity, which a commit always replaces. A nil or empty read
// set returns immediately (nothing can ever change; re-execution would
// be identical, so treat it as a programming error surfaced by a fast
// spin instead of a deadlock).
func awaitChange(entries []readEntry) {
	if len(entries) == 0 {
		return
	}
	backoff := time.Microsecond
	for {
		for i := range entries {
			if entries[i].v.head.Load() != entries[i].ver {
				return
			}
		}
		if backoff < time.Millisecond {
			runtime.Gosched()
			backoff *= 2
			continue
		}
		time.Sleep(backoff)
	}
}

// RunWithRetry is Engine.Run extended with ErrRetryWait handling: when
// the body returns ErrRetryWait, the engine blocks until the
// transaction's read set changes, then re-executes. Conflicts retry
// immediately as in Run.
func (e *Engine) RunWithRetry(sem Semantics, cm CMFactory, fn func(*Txn) error) error {
	return e.RunWithOptions(sem, cm, 0, fn)
}

// RunWithOptions is the fully parameterized run entry: semantics,
// contention-manager factory (nil = engine default), a per-call attempt
// bound (0 = the engine's configured MaxAttempts), ErrRetryWait
// blocking, and conflict retry.
func (e *Engine) RunWithOptions(sem Semantics, cm CMFactory, maxAttempts int, fn func(*Txn) error) error {
	if cm == nil {
		cm = e.cfg.DefaultCM
	}
	if maxAttempts == 0 {
		maxAttempts = e.cfg.MaxAttempts
	}
	return e.run(sem, cm, maxAttempts, true, fn)
}

// run is the engine's one retry loop: every Run variant delegates here
// with resolved options. It drives a pooled Txn through the whole
// lifecycle — acquire, attempts, recycle — so steady-state transactions
// allocate nothing. blockOnRetryWait selects the RunWithOptions /
// RunWithRetry behaviour of sleeping on an ErrRetryWait read set; plain
// Run keeps its historical behaviour of returning the error unchanged.
func (e *Engine) run(sem Semantics, cm CMFactory, maxAttempts int, blockOnRetryWait bool, fn func(*Txn) error) error {
	tx := e.acquireTxn(sem, cm)
	defer e.releaseTxn(tx)
	for attempt := 1; ; attempt++ {
		tx.begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				return nil
			}
		} else if blockOnRetryWait && errors.Is(err, ErrRetryWait) {
			// Capture the read set before aborting, then sleep on it.
			// The copy is load-bearing under pooling: the Txn (and its
			// rset storage) may be recycled the moment this run ends,
			// and must never escape into a wait list by alias.
			waitSet := make([]readEntry, len(tx.rset))
			copy(waitSet, tx.rset)
			tx.Abort()
			if maxAttempts > 0 && attempt >= maxAttempts {
				return ErrTooManyAttempts
			}
			awaitChange(waitSet)
			tx.cm.OnAbort(tx)
			continue
		} else {
			tx.Abort()
		}
		if !IsRetryable(err) {
			return err
		}
		tx.cm.OnAbort(tx)
		if maxAttempts > 0 && attempt >= maxAttempts {
			return ErrTooManyAttempts
		}
	}
}
