package stm

import (
	"context"
	"errors"
	"runtime"
	"time"
)

// ErrRetryWait is returned by a transaction body to request blocking
// retry (the composable STM "retry" combinator): the transaction aborts
// and re-executes only after at least one variable it read has been
// overwritten by a commit — so a consumer waiting on an empty queue
// sleeps instead of spinning through conflict aborts.
var ErrRetryWait = errors.New("stm: retry when read set changes")

// awaitChange blocks until some entry of the recorded read set is no
// longer current (a writer committed to it) — the wake-up condition of
// ErrRetryWait — or done is closed, in which case it reports false. The
// wait is a backoff poll: versions are compared by head identity, which
// a commit always replaces, and the poll interval caps at one
// millisecond, bounding both wake-up and cancellation latency. A nil
// done channel (the context.Background fast path) keeps the historical
// allocation-free plain sleep. A nil or empty read set returns
// immediately (nothing can ever change; re-execution would be
// identical, so treat it as a programming error surfaced by a fast spin
// instead of a deadlock).
func awaitChange(entries []readEntry, done <-chan struct{}) bool {
	if len(entries) == 0 {
		return true
	}
	backoff := time.Microsecond
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		for i := range entries {
			if entries[i].v.head.Load() != entries[i].ver {
				return true
			}
		}
		if done != nil {
			select {
			case <-done:
				return false
			default:
			}
		}
		if backoff < time.Millisecond {
			runtime.Gosched()
			backoff *= 2
			continue
		}
		if done == nil {
			time.Sleep(backoff)
			continue
		}
		if timer == nil {
			timer = time.NewTimer(backoff)
		} else {
			timer.Reset(backoff)
		}
		select {
		case <-done:
			return false
		case <-timer.C:
		}
	}
}

// RunOptions bundles the optional per-run parameters of RunOpts. The
// zero value selects the engine defaults everywhere.
type RunOptions struct {
	// CM supplies the contention manager (nil = engine default).
	CM CMFactory
	// MaxAttempts bounds re-executions (0 = the engine's configured
	// MaxAttempts; that default being 0 too means unbounded).
	MaxAttempts int
	// Observer receives this run's lifecycle events (nil = the engine's
	// configured Observer, which may itself be nil).
	Observer Observer
	// Label tags the run's events for observers ("" = untagged).
	Label string
}

// runParams is RunOptions after defaults resolution, plus the run-mode
// flag, threaded through the one retry loop.
type runParams struct {
	cm          CMFactory
	maxAttempts int
	obs         Observer
	label       string
	block       bool // honour ErrRetryWait by sleeping on the read set
}

// RunWithRetry is Engine.Run extended with ErrRetryWait handling: when
// the body returns ErrRetryWait, the engine blocks until the
// transaction's read set changes, then re-executes. Conflicts retry
// immediately as in Run.
func (e *Engine) RunWithRetry(sem Semantics, cm CMFactory, fn func(*Txn) error) error {
	return e.RunOpts(context.Background(), sem, RunOptions{CM: cm}, fn)
}

// RunWithOptions is the historical parameterized run entry: semantics,
// contention-manager factory (nil = engine default), a per-call attempt
// bound (0 = the engine's configured MaxAttempts), ErrRetryWait
// blocking, and conflict retry. New code should prefer RunOpts, its
// context-aware superset.
func (e *Engine) RunWithOptions(sem Semantics, cm CMFactory, maxAttempts int, fn func(*Txn) error) error {
	return e.RunOpts(context.Background(), sem, RunOptions{CM: cm, MaxAttempts: maxAttempts}, fn)
}

// RunOpts is the fully parameterized, context-aware run entry. The
// context bounds the whole run: cancellation aborts the transaction
// between attempts, interrupts contention-manager backoff sleeps, wakes
// a transaction parked in Retry's wait loop, and breaks the lock-wait
// spins — in every case the transaction's buffered writes are discarded
// and the returned error is a *AbortError matching both ErrCancelled
// and the context's own error. A context.Background() run takes the
// exact historical fast path and allocates nothing extra.
//
// One deliberate exception: an irrevocable transaction that has begun
// is guaranteed to commit and therefore ignores cancellation until it
// has (cancellation is still honoured before its only attempt starts).
func (e *Engine) RunOpts(ctx context.Context, sem Semantics, opts RunOptions, fn func(*Txn) error) error {
	p := runParams{
		cm:          opts.CM,
		maxAttempts: opts.MaxAttempts,
		obs:         opts.Observer,
		label:       opts.Label,
		block:       true,
	}
	if p.cm == nil {
		p.cm = e.cfg.DefaultCM
	}
	if p.maxAttempts == 0 {
		p.maxAttempts = e.cfg.MaxAttempts
	}
	if p.obs == nil {
		p.obs = e.cfg.Observer
	}
	return e.run(ctx, sem, p, fn)
}

// run is the engine's one retry loop: every Run variant delegates here
// with resolved options. It drives a pooled Txn through the whole
// lifecycle — acquire, attempts, recycle — so steady-state transactions
// allocate nothing. p.block selects the RunOpts / RunWithRetry
// behaviour of sleeping on an ErrRetryWait read set; plain Run keeps
// its historical behaviour of returning the error unchanged.
func (e *Engine) run(ctx context.Context, sem Semantics, p runParams, fn func(*Txn) error) error {
	done := ctx.Done()
	tx := e.acquireTxn(sem, p.cm)
	tx.ctx = ctx
	defer e.releaseTxn(tx)
	for attempt := 1; ; attempt++ {
		if done != nil {
			if err := ctx.Err(); err != nil {
				cancelErr := &AbortError{
					Sentinel: ErrCancelled, Cause: err, Semantics: sem,
					Attempts: attempt - 1, Reason: "context cancelled",
				}
				// Terminal: every run ends with exactly one OnCommit or
				// one terminal OnAbort, cancellations included.
				if p.obs != nil {
					p.obs.OnAbort(TxnEvent{Semantics: sem, Attempts: attempt - 1, Label: p.label, Err: cancelErr})
				}
				return cancelErr
			}
		}
		tx.begin()
		err := fn(tx)
		if err == nil {
			err = tx.Commit()
			if err == nil {
				if p.obs != nil {
					p.obs.OnCommit(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label})
				}
				return nil
			}
		} else if p.block && errors.Is(err, ErrRetryWait) {
			// Capture the read set before aborting, then sleep on it.
			// The copy is load-bearing under pooling: the Txn (and its
			// rset storage) may be recycled the moment this run ends,
			// and must never escape into a wait list by alias.
			waitSet := make([]readEntry, len(tx.rset))
			copy(waitSet, tx.rset)
			tx.Abort()
			if p.maxAttempts > 0 && attempt >= p.maxAttempts {
				err := &AbortError{
					Sentinel: ErrTooManyAttempts, Semantics: sem,
					Attempts: attempt, Reason: "attempt bound exhausted",
				}
				if p.obs != nil {
					p.obs.OnAbort(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label, Err: err})
				}
				return err
			}
			if p.obs != nil {
				p.obs.OnWait(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label})
			}
			if !awaitChange(waitSet, done) {
				cancelErr := &AbortError{
					Sentinel: ErrCancelled, Cause: ctx.Err(), Semantics: sem,
					Attempts: attempt, Reason: "context cancelled in retry wait",
				}
				if p.obs != nil {
					p.obs.OnAbort(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label, Err: cancelErr})
				}
				return cancelErr
			}
			tx.cm.OnAbort(tx)
			continue
		} else {
			tx.Abort()
		}
		if !IsRetryable(err) {
			if p.obs != nil {
				p.obs.OnAbort(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label, Err: err})
			}
			return err
		}
		// Bound check BEFORE the contention manager's backoff: a run
		// whose failure is already decided must not sleep one more
		// backoff, and its one OnAbort carries the terminal error (not
		// the retryable conflict) so observers see how the run ended.
		if p.maxAttempts > 0 && attempt >= p.maxAttempts {
			final := &AbortError{
				Sentinel: ErrTooManyAttempts, Semantics: sem, Attempts: attempt,
				ByRival: errors.Is(err, ErrKilled), Reason: "attempt bound exhausted",
			}
			if p.obs != nil {
				p.obs.OnAbort(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label, Err: final})
			}
			return final
		}
		if p.obs != nil {
			p.obs.OnAbort(TxnEvent{Semantics: sem, Attempts: attempt, Label: p.label, Err: err})
		}
		tx.cm.OnAbort(tx)
	}
}
