package stm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The cancellation contract: a context bounds the whole run —
// cancellation aborts between attempts, interrupts contention-manager
// backoff sleeps, wakes a transaction parked in Retry's wait loop and
// breaks lock-wait spins — and in every case the transaction's buffered
// writes are discarded and the returned error matches both ErrCancelled
// and the context's own error.

// requireCancelled asserts the full typed shape of a cancellation
// abort.
func requireCancelled(t *testing.T, err, cause error) *AbortError {
	t.Helper()
	if err == nil {
		t.Fatal("run returned nil, want cancellation abort")
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, must also match the context cause %v", err, cause)
	}
	var ae *AbortError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %v, want *AbortError", err)
	}
	return ae
}

// TestCancelBetweenAttempts cancels the context during an attempt whose
// body then forces a retryable abort: the run loop must observe the
// cancellation before beginning the next attempt, and the aborted
// attempt's write must not be visible.
func TestCancelBetweenAttempts(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	attempts := 0
	err := e.RunCtx(ctx, SemanticsDef, func(tx *Txn) error {
		attempts++
		if err := tx.Write(x, 42); err != nil {
			return err
		}
		cancel()
		// A retryable error: without the context the run loop would
		// re-execute forever.
		return tx.abortConflict("forced", 0)
	})
	ae := requireCancelled(t, err, context.Canceled)
	if attempts != 1 {
		t.Fatalf("body ran %d times after cancel, want 1", attempts)
	}
	if ae.Attempts != 1 {
		t.Fatalf("AbortError.Attempts = %d, want 1", ae.Attempts)
	}
	if got := x.LoadDirect().(int); got != 0 {
		t.Fatalf("cancelled transaction's write visible: x = %d, want 0", got)
	}
}

// sleepCM parks every abort in a ten-second Txn.Sleep; only context
// cancellation can release it within the test's deadline.
type sleepCM struct{}

func (sleepCM) OnLockBusy(*Txn, *Txn, int) Resolution { return ResolutionAbortSelf }
func (sleepCM) OnAbort(tx *Txn)                       { tx.Sleep(10 * time.Second) }
func (sleepCM) Name() string                          { return "sleep-forever" }

// TestCancelBackoffSleep parks the transaction in its contention
// manager's backoff sleep and asserts a 50ms deadline releases it.
func TestCancelBackoffSleep(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.RunOpts(ctx, SemanticsDef, RunOptions{CM: func() ContentionManager { return sleepCM{} }}, func(tx *Txn) error {
		if err := tx.Write(x, 7); err != nil {
			return err
		}
		return tx.abortConflict("forced", 0)
	})
	elapsed := time.Since(start)
	requireCancelled(t, err, context.DeadlineExceeded)
	if elapsed > 2*time.Second {
		t.Fatalf("backoff sleep held the cancelled run for %v", elapsed)
	}
	if got := x.LoadDirect().(int); got != 0 {
		t.Fatalf("cancelled transaction's write visible: x = %d, want 0", got)
	}
}

// TestCancelRetryWait parks the transaction in the Retry combinator's
// wait (its read set never changes) and asserts a 50ms deadline wakes
// it.
func TestCancelRetryWait(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.RunOpts(ctx, SemanticsDef, RunOptions{}, func(tx *Txn) error {
		if _, err := tx.Read(x); err != nil {
			return err
		}
		if err := tx.Write(x, 99); err != nil {
			return err
		}
		return ErrRetryWait
	})
	elapsed := time.Since(start)
	requireCancelled(t, err, context.DeadlineExceeded)
	if elapsed > 2*time.Second {
		t.Fatalf("retry wait held the cancelled run for %v", elapsed)
	}
	if got := x.LoadDirect().(int); got != 0 {
		t.Fatalf("cancelled transaction's write visible: x = %d, want 0", got)
	}
}

// TestCancelLockWait parks a def reader against a variable encounter-
// locked by an irrevocable transaction and asserts a 50ms deadline
// releases the waiting reader (waitUnlocked's spin is a cancellation
// point).
func TestCancelLockWait(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	holder := e.Begin(SemanticsIrrevocable)
	if _, err := holder.Read(x); err != nil { // encounter-locks x
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.RunCtx(ctx, SemanticsDef, func(tx *Txn) error {
		_, err := tx.Read(x)
		return err
	})
	elapsed := time.Since(start)
	requireCancelled(t, err, context.DeadlineExceeded)
	if elapsed > 2*time.Second {
		t.Fatalf("lock wait held the cancelled run for %v", elapsed)
	}
	if err := holder.Commit(); err != nil {
		t.Fatalf("irrevocable holder must still commit: %v", err)
	}
}

// TestCancelBeforeFirstAttempt: an already-dead context never runs the
// body at all.
func TestCancelBeforeFirstAttempt(t *testing.T) {
	e := NewDefaultEngine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := e.RunCtx(ctx, SemanticsDef, func(tx *Txn) error {
		ran = true
		return nil
	})
	ae := requireCancelled(t, err, context.Canceled)
	if ran {
		t.Fatal("body ran under a cancelled context")
	}
	if ae.Attempts != 0 {
		t.Fatalf("AbortError.Attempts = %d, want 0", ae.Attempts)
	}
}

// TestIrrevocableIgnoresCancelMidFlight: a begun irrevocable
// transaction is guaranteed to commit and must complete even when its
// context dies mid-body.
func TestIrrevocableIgnoresCancelMidFlight(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	ctx, cancel := context.WithCancel(context.Background())
	err := e.RunCtx(ctx, SemanticsIrrevocable, func(tx *Txn) error {
		cancel()
		return tx.Write(x, 1)
	})
	if err != nil {
		t.Fatalf("irrevocable run failed under mid-flight cancel: %v", err)
	}
	if got := x.LoadDirect().(int); got != 1 {
		t.Fatalf("irrevocable write lost: x = %d, want 1", got)
	}
}

// TestRunCtxBackgroundIsFastPath: RunCtx(context.Background()) must not
// regress the pooled zero/one-alloc read path.
func TestRunCtxBackgroundAllocs(t *testing.T) {
	e := NewDefaultEngine()
	vars := make([]*Var, 8)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}
	body := func(tx *Txn) error {
		for _, v := range vars {
			if _, err := tx.Read(v); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 64; i++ {
		if err := e.RunCtx(context.Background(), SemanticsDef, body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := e.RunCtx(context.Background(), SemanticsDef, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("RunCtx(Background) def read-only txn: %.2f allocs/op, want <= 1", avg)
	}
}
