package stm

// Elastic read path (SemanticsWeak before the first write).
//
// An elastic transaction [Felber, Gramoli, Guerraoui, DISC 2009] relaxes
// the default semantics for the search phases of pointer-chasing
// operations: instead of requiring all reads to be mutually consistent
// (one critical step), only each window of consecutive accesses must be
// — the paper's semantics s assigning r(x),r(y) to γ1 and r(y),r(z) to
// γ2 for a sorted-list contains. Operationally (following ε-STM):
//
//   - The read set retains only the last ElasticWindow reads (default 2,
//     ε-STM's read buffer) plus any pinned anchors (ReadPinned).
//   - On a consistent read (head version <= rv) the window slides.
//   - On an inconsistent read (head version > rv: someone committed to
//     this variable after we started) the transaction attempts a *cut*:
//     it re-timestamps to the current clock and revalidates only the
//     most recent read (the γ partner of the incoming one) and the
//     anchors; all older window entries are dropped — they were each
//     part of a consistent pair when read, which is all the pairwise
//     critical-step semantics requires. This is what accepts the
//     Figure 1 schedule that every monomorphic TM must reject. If the
//     immediate predecessor or an anchor is stale, the binding critical
//     step is unsatisfiable and the transaction aborts.
//   - After the first write, Txn.Write flips tx.written and all
//     subsequent accesses use the default (monomorphic) path; the
//     window at the time of the write — the last two reads, typically
//     the reads that located the write's position, e.g. pred and curr of
//     a sorted-list insert — remains in the read set and is validated
//     at commit, anchoring the write's critical step.

// unpinnedSince counts unpinned read-set entries at index >= floor.
func (tx *Txn) unpinnedSince(floor int) int {
	n := 0
	for i := floor; i < len(tx.rset); i++ {
		if !tx.rset[i].pinned {
			n++
		}
	}
	return n
}

// dropOldestUnpinned removes the first unpinned entry at or above the
// elastic floor, compacting in place.
func (tx *Txn) dropOldestUnpinned() {
	for i := tx.elasticFloor; i < len(tx.rset); i++ {
		if !tx.rset[i].pinned {
			copy(tx.rset[i:], tx.rset[i+1:])
			tx.rset = tx.rset[:len(tx.rset)-1]
			return
		}
	}
}

// lastUnpinned returns the index of the newest unpinned entry at or
// above the elastic floor, or -1.
func (tx *Txn) lastUnpinned() int {
	for i := len(tx.rset) - 1; i >= tx.elasticFloor; i-- {
		if !tx.rset[i].pinned {
			return i
		}
	}
	return -1
}

// validateElasticCut checks the entries that must survive a cut: every
// pinned anchor and the most recent unpinned read (the incoming read's
// γ partner).
func (tx *Txn) validateElasticCut() bool {
	check := func(e *readEntry) bool {
		if e.v.head.Load() != e.ver {
			return false
		}
		if owner, locked := e.v.lockedBy(); locked && owner != tx.id {
			return false
		}
		return true
	}
	for i := range tx.rset {
		if tx.rset[i].pinned && !check(&tx.rset[i]) {
			return false
		}
	}
	if li := tx.lastUnpinned(); li >= 0 {
		return check(&tx.rset[li])
	}
	return true
}

// cutUnpinned drops every unpinned entry of the current elastic scope
// except the most recent one — the cut itself.
func (tx *Txn) cutUnpinned() {
	li := tx.lastUnpinned()
	out := tx.rset[:0]
	for i := range tx.rset {
		if i < tx.elasticFloor || tx.rset[i].pinned || i == li {
			out = append(out, tx.rset[i])
		}
	}
	tx.rset = out
}

// readElastic performs one elastic-mode read. A pinned read is anchored:
// it stays in the validated set for the rest of the transaction.
func (tx *Txn) readElastic(v *Var, pinned bool) (any, error) {
	keep := tx.eng.cfg.ElasticWindow
	for {
		if err := tx.waitUnlocked(v); err != nil {
			return nil, err
		}
		h := v.head.Load()
		if h.ver <= tx.rv {
			tx.rset = append(tx.rset, readEntry{v: v, ver: h, pinned: pinned})
			if tx.unpinnedSince(tx.elasticFloor) > keep {
				tx.dropOldestUnpinned()
			}
			return h.val, nil
		}
		// Cut: the variable changed since rv. Re-timestamp, keep only
		// the still-binding critical step (anchors + the last read).
		now := tx.eng.clock.Now()
		if !tx.validateElasticCut() {
			tx.stat(statReadAborts)
			tx.abortCleanup()
			return nil, tx.abortConflict("elastic window invalidated", v.id)
		}
		tx.cutUnpinned()
		tx.rv = now
		tx.stat(statElasticCuts)
	}
}
