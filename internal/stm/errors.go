package stm

import "errors"

// Abort reasons. errConflict is the internal retryable sentinel: the
// run loop in Engine.Run (and core.Atomic on top of it) re-executes the
// transaction body when the commit or a read aborts with it. User errors
// returned from the body are never retried; they abort the transaction
// and propagate unchanged.
var (
	// ErrConflict is returned by transactional operations when the
	// transaction must abort due to a conflict and be retried.
	ErrConflict = errors.New("stm: transaction aborted by conflict")

	// ErrKilled is returned when a contention manager of a competing
	// transaction requested this transaction's abort.
	ErrKilled = errors.New("stm: transaction killed by contention manager")

	// ErrSnapshotWrite is returned by Txn.Write when the transaction
	// runs under SemanticsSnapshot, which is read-only.
	ErrSnapshotWrite = errors.New("stm: write attempted in snapshot (read-only) transaction")

	// ErrTxnDone is returned when a finished (committed or aborted)
	// transaction handle is used again.
	ErrTxnDone = errors.New("stm: use of finished transaction")

	// ErrCrossEngine is returned when a transaction touches a variable
	// owned by a different engine.
	ErrCrossEngine = errors.New("stm: variable belongs to a different engine")

	// ErrTooManyAttempts is returned by Engine.Run when a transaction
	// exceeded the configured maximum number of attempts.
	ErrTooManyAttempts = errors.New("stm: transaction exceeded maximum attempts")
)

// IsRetryable reports whether err is one of the engine-generated abort
// reasons that should trigger transparent re-execution.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrConflict) || errors.Is(err, ErrKilled)
}

// AbortError wraps a conflict abort with diagnostic detail.
type AbortError struct {
	Reason string // human-readable conflict site, e.g. "read validation"
	VarID  uint64 // variable involved, 0 if not applicable
	Err    error  // ErrConflict or ErrKilled
}

// Error implements error.
func (e *AbortError) Error() string {
	return "stm: abort (" + e.Reason + ")"
}

// Unwrap returns the underlying sentinel so errors.Is works.
func (e *AbortError) Unwrap() error { return e.Err }

func abortConflict(reason string, varID uint64) error {
	return &AbortError{Reason: reason, VarID: varID, Err: ErrConflict}
}
