package stm

import (
	"errors"
	"fmt"
	"strings"
)

// Abort reasons. ErrConflict is the internal retryable sentinel: the
// run loop in Engine.Run (and core.Atomic on top of it) re-executes the
// transaction body when the commit or a read aborts with it. User errors
// returned from the body are never retried; they abort the transaction
// and propagate unchanged.
//
// Every error the engine itself produces is a *AbortError wrapping one
// of these sentinels, so callers branch with errors.Is/errors.As and
// never lose the structured detail (semantics, attempt count, rival
// involvement). The bare sentinels remain the stable identities:
// errors.Is(err, ErrTooManyAttempts) et al. keep working for every
// error the engine has ever returned.
var (
	// ErrConflict is the sentinel wrapped by transactional operations
	// when the transaction must abort due to a conflict and be retried.
	ErrConflict = errors.New("stm: transaction aborted by conflict")

	// ErrKilled is the sentinel wrapped when a contention manager of a
	// competing transaction requested this transaction's abort.
	ErrKilled = errors.New("stm: transaction killed by contention manager")

	// ErrSnapshotWrite is the sentinel wrapped by Txn.Write when the
	// transaction runs under SemanticsSnapshot, which is read-only.
	ErrSnapshotWrite = errors.New("stm: write attempted in snapshot (read-only) transaction")

	// ErrTxnDone is the sentinel wrapped when a finished (committed or
	// aborted) transaction handle is used again.
	ErrTxnDone = errors.New("stm: use of finished transaction")

	// ErrCrossEngine is the sentinel wrapped when a transaction touches a
	// variable owned by a different engine.
	ErrCrossEngine = errors.New("stm: variable belongs to a different engine")

	// ErrTooManyAttempts is the sentinel wrapped by the Run family when a
	// transaction exceeded the configured maximum number of attempts.
	ErrTooManyAttempts = errors.New("stm: transaction exceeded maximum attempts")

	// ErrCancelled is the sentinel wrapped by the Run family when the
	// caller's context is cancelled or its deadline expires: the
	// transaction's writes were discarded and it will not be retried.
	// The AbortError additionally carries the context's own error as
	// Cause, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) also report true.
	ErrCancelled = errors.New("stm: transaction cancelled by context")
)

// IsRetryable reports whether err is one of the engine-generated abort
// reasons that should trigger transparent re-execution.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrConflict) || errors.Is(err, ErrKilled)
}

// AbortError is the engine's structured abort outcome: every error the
// engine generates wraps one of the package sentinels together with the
// context a caller needs to act on it — which semantics the transaction
// ran under, how many attempts it consumed, whether a rival's contention
// manager killed it, and (for conflict aborts) the site and variable
// involved.
//
// AbortError matches via errors.Is both its Sentinel and, when set, its
// Cause — so a cancellation abort satisfies errors.Is against
// stm.ErrCancelled AND context.Canceled / context.DeadlineExceeded.
type AbortError struct {
	// Sentinel is the legacy identity of this abort: ErrConflict,
	// ErrKilled, ErrTooManyAttempts, ErrCancelled, ErrSnapshotWrite,
	// ErrTxnDone or ErrCrossEngine.
	Sentinel error
	// Cause is the underlying trigger when one exists — for
	// ErrCancelled it is the context's Err() (context.Canceled or
	// context.DeadlineExceeded). Nil when the sentinel says it all.
	Cause error
	// Semantics is the transaction's root parameter p of start(p).
	Semantics Semantics
	// Attempts is the number of attempts consumed when the abort was
	// produced (0 when the run was cancelled before its first attempt).
	Attempts int
	// ByRival reports that the abort was forced by a rival transaction's
	// contention manager (directly for ErrKilled, or as the final straw
	// for ErrTooManyAttempts whose last attempt died to a kill).
	ByRival bool
	// Reason is the human-readable abort site, e.g. "read validation".
	Reason string
	// VarID is the variable involved in a conflict abort, 0 if not
	// applicable.
	VarID uint64
}

// Error implements error.
func (e *AbortError) Error() string {
	var b strings.Builder
	b.WriteString("stm: abort")
	if e.Reason != "" {
		b.WriteString(" (")
		b.WriteString(e.Reason)
		b.WriteString(")")
	}
	fmt.Fprintf(&b, ": sem=%v attempts=%d", e.Semantics, e.Attempts)
	if e.ByRival {
		b.WriteString(" by-rival")
	}
	if e.Sentinel != nil {
		b.WriteString(": ")
		b.WriteString(e.Sentinel.Error())
	}
	if e.Cause != nil {
		b.WriteString(": ")
		b.WriteString(e.Cause.Error())
	}
	return b.String()
}

// Unwrap exposes both the sentinel and (when set) the cause to
// errors.Is/errors.As.
func (e *AbortError) Unwrap() []error {
	if e.Cause == nil {
		return []error{e.Sentinel}
	}
	return []error{e.Sentinel, e.Cause}
}

// abortConflict builds the retryable conflict abort for the current
// attempt of tx.
func (tx *Txn) abortConflict(reason string, varID uint64) error {
	return &AbortError{
		Sentinel:  ErrConflict,
		Semantics: tx.sem,
		Attempts:  tx.attempt,
		Reason:    reason,
		VarID:     varID,
	}
}

// abortKilled builds the retryable kill abort: a rival's contention
// manager requested this transaction's death.
func (tx *Txn) abortKilled() error {
	return &AbortError{
		Sentinel:  ErrKilled,
		Semantics: tx.sem,
		Attempts:  tx.attempt,
		ByRival:   true,
		Reason:    "killed by rival",
	}
}

// abortCancelled builds the terminal cancellation abort. The
// transaction (if still active) has already been cleaned up by the
// caller.
func (tx *Txn) abortCancelled(cause error) error {
	return &AbortError{
		Sentinel:  ErrCancelled,
		Cause:     cause,
		Semantics: tx.sem,
		Attempts:  tx.attempt,
		Reason:    "context cancelled",
	}
}

// opError builds a non-retryable misuse abort (snapshot write, cross-
// engine access, finished-handle use) carrying the sentinel identity.
func (tx *Txn) opError(sentinel error, reason string) error {
	return &AbortError{
		Sentinel:  sentinel,
		Semantics: tx.sem,
		Attempts:  tx.attempt,
		Reason:    reason,
	}
}
