package stm

// Version is one immutable committed state of a transactional variable.
// Versions form a singly linked chain from newest (the variable's head)
// to oldest. The chain exists so that snapshot-semantics readers can
// resolve reads against the committed state at their start timestamp —
// this is the composition rule the paper's concluding remarks call for:
// "a multi versioned transaction could not return stale data if a singly
// versioned transaction does not backup data when overwriting it". In
// this engine every writer backs up the overwritten version for as long
// as any active snapshot transaction may need it.
type Version struct {
	val  any
	ver  uint64
	prev *Version
}

// Value returns the committed value held by this version.
func (v *Version) Value() any { return v.val }

// Timestamp returns the commit timestamp of this version.
func (v *Version) Timestamp() uint64 { return v.ver }

// resolveAt returns the newest version in the chain whose timestamp is
// <= at, or nil if the chain has been trimmed past that point (which the
// snapshot registry guarantees cannot happen for registered snapshots).
func (v *Version) resolveAt(at uint64) *Version {
	for cur := v; cur != nil; cur = cur.prev {
		if cur.ver <= at {
			return cur
		}
	}
	return nil
}

// retainHistory decides what of the overwritten chain a writer committing
// at timestamp wv must keep: nothing, if no live snapshot reader can need
// a version older than wv; otherwise the chain trimmed to the oldest
// timestamp still needed.
func retainHistory(old *Version, wv, needed uint64) *Version {
	if needed >= wv {
		return nil
	}
	return old.trimmed(needed)
}

// trimmed returns the chain headed by v with every version strictly older
// than needed removed, where needed is the oldest timestamp any active
// snapshot reader may still request. The newest version with ver <=
// needed is kept (it is the one such a reader resolves to); everything
// older is unlinked so the garbage collector can reclaim it.
func (v *Version) trimmed(needed uint64) *Version {
	for cur := v; cur != nil; cur = cur.prev {
		if cur.ver <= needed {
			cur.prev = nil
			return v
		}
	}
	return v
}
