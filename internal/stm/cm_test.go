package stm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestCMNames(t *testing.T) {
	cases := []struct {
		f    CMFactory
		want string
	}{
		{NewSuicide(), "suicide"},
		{NewPolite(0), "polite"},
		{NewBackoff(0, 0), "backoff"},
		{NewKarma(), "karma"},
		{NewTimestamp(), "timestamp"},
		{NewAggressive(), "aggressive"},
	}
	for _, c := range cases {
		if got := c.f().Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestSuicideAbortsOnBusyLock(t *testing.T) {
	e := NewEngine(Config{DefaultCM: NewSuicide()})
	x := e.NewVar(0)

	// Hold the lock via an irrevocable transaction (encounter locking).
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = e.Run(SemanticsIrrevocable, func(tx *Txn) error {
			if _, err := tx.Read(x); err != nil {
				return err
			}
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	// A suicide-managed writer must abort immediately (retryable).
	tx := e.Begin(SemanticsDef)
	if err := tx.Write(x, 1); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit()
	if !IsRetryable(err) {
		t.Fatalf("commit against held lock: %v, want retryable", err)
	}
	if e.Stats().LockAborts == 0 {
		t.Fatal("expected a lock abort to be recorded")
	}
	close(release)
	<-done
}

func TestPoliteWaitsOutShortLock(t *testing.T) {
	e := NewEngine(Config{DefaultCM: NewPolite(20)})
	x := e.NewVar(0)
	var wg sync.WaitGroup
	// Two increment storms; polite spinning should let both complete.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if err := e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v.(int)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := x.LoadDirect().(int); got != 600 {
		t.Fatalf("x = %d, want 600", got)
	}
}

func TestKarmaKillsLowerPriority(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)

	// Victim: a def transaction with low karma holding nothing yet; we
	// simulate a held lock by an optimistic transaction stuck between
	// lock acquisition and publish using a second engine-level txn that
	// has locked x. Directly exercise the decision table instead.
	victim := e.Begin(SemanticsDef)
	if _, err := victim.Read(x); err != nil { // karma 1
		t.Fatal(err)
	}
	attacker := e.Begin(SemanticsDef)
	for i := 0; i < 10; i++ { // karma 10
		if _, err := attacker.Read(x); err != nil {
			t.Fatal(err)
		}
	}
	cm := NewKarma()()
	if res := cm.OnLockBusy(attacker, victim, 0); res != ResolutionKillEnemy {
		t.Fatalf("high-karma attacker got %v, want KillEnemy", res)
	}
	if res := cm.OnLockBusy(victim, attacker, 0); res != ResolutionAbortSelf {
		t.Fatalf("low-karma attacker got %v, want AbortSelf", res)
	}
	if res := cm.OnLockBusy(attacker, nil, 0); res != ResolutionRetryLock {
		t.Fatalf("vanished enemy got %v, want RetryLock", res)
	}
	victim.Abort()
	attacker.Abort()
}

func TestTimestampOlderWins(t *testing.T) {
	e := NewDefaultEngine()
	older := e.Begin(SemanticsDef)
	younger := e.Begin(SemanticsDef)
	cm := NewTimestamp()()
	if res := cm.OnLockBusy(older, younger, 0); res != ResolutionKillEnemy {
		t.Fatalf("older vs younger: %v, want KillEnemy", res)
	}
	if res := cm.OnLockBusy(younger, older, 0); res != ResolutionAbortSelf {
		t.Fatalf("younger vs older: %v, want AbortSelf", res)
	}
	older.Abort()
	younger.Abort()
}

func TestKilledTransactionObservesKill(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	tx := e.Begin(SemanticsDef)
	if _, err := tx.Read(x); err != nil {
		t.Fatal(err)
	}
	if !tx.kill(tx.ID()) {
		t.Fatal("def transaction must be killable")
	}
	_, err := tx.Read(x)
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("read after kill: %v, want ErrKilled", err)
	}
	var ae *AbortError
	if !errors.As(err, &ae) || !ae.ByRival {
		t.Fatalf("kill abort %v must be a by-rival AbortError", err)
	}
	if tx.status.Load() != statusAborted {
		t.Fatal("killed transaction must be aborted")
	}
}

func TestAggressiveVsAggressiveProgress(t *testing.T) {
	// Two aggressive increment storms must still terminate: the killed
	// party observes ErrKilled, aborts, retries.
	e := NewEngine(Config{DefaultCM: NewAggressive()})
	x := e.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v.(int)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := x.LoadDirect().(int); got != 800 {
		t.Fatalf("x = %d, want 800", got)
	}
}

func TestBackoffSleepsBetweenAttempts(t *testing.T) {
	e := NewEngine(Config{DefaultCM: NewBackoff(50*time.Microsecond, time.Millisecond)})
	x := e.NewVar(0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v.(int)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := x.LoadDirect().(int); got != 400 {
		t.Fatalf("x = %d, want 400", got)
	}
}
