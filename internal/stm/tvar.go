package stm

import "sync/atomic"

// Var is an untyped transactional variable: one shared register of the
// paper's model. All access must go through a transaction (Txn.Read,
// Txn.Write) or the non-transactional escape hatches below, which are
// only safe when no transaction is live (e.g. test setup and teardown).
//
// Typed access is provided by the generic wrappers in package core.
type Var struct {
	eng *Engine
	id  uint64

	// lw is the versioned lock word; see lockword.go.
	lw atomic.Uint64

	// head points at the current committed version. It is never nil and
	// is only replaced, under the lock word, by a newer version whose
	// prev is the old head.
	head atomic.Pointer[Version]
}

// NewVar allocates a transactional variable owned by engine e holding
// initial value v at version 0 (committed "before the beginning of
// time", so it is visible to every transaction). Ids come from the
// engine's striped wells, so concurrent allocators never contend.
func (e *Engine) NewVar(v any) *Var {
	tv := &Var{eng: e, id: e.newVarID()}
	tv.head.Store(&Version{val: v, ver: 0})
	tv.lw.Store(packVersion(0))
	e.stats.add(stripeHint(), statVarsAllocated)
	return tv
}

// ID returns the variable's engine-unique identity. Commit-time locking
// acquires locks in increasing ID order, which makes transactional
// deadlock impossible.
func (v *Var) ID() uint64 { return v.id }

// Engine returns the engine that owns this variable.
func (v *Var) Engine() *Engine { return v.eng }

// LoadDirect reads the current committed value without any transactional
// protection. It is linearizable on its own (the head version record is
// immutable) but provides no consistency with other reads; it exists for
// tests, statistics and post-quiescence inspection.
func (v *Var) LoadDirect() any { return v.head.Load().val }

// StoreDirect overwrites the variable outside any transaction. It must
// only be used while no transaction is live (e.g. test setup and
// teardown); it advances the global clock so later transactions observe
// the change, but it performs no conflict detection.
//
// The publish is CAS-guarded: StoreDirect takes the variable's lock
// word like any committer, under the reserved owner id 0 (transaction
// ids start at 1), so a misuse that races a live *locking* transaction
// — a committer, an irrevocable writer, or another StoreDirect — fails
// loudly with a panic instead of silently splicing a stale head into
// the version chain. A race against purely optimistic readers remains
// undetectable; the precondition stands.
func (v *Var) StoreDirect(val any) {
	w := v.lw.Load()
	if isLocked(w) || !v.lw.CompareAndSwap(w, packOwner(directStoreOwner)) {
		panic("stm: Var.StoreDirect raced with a live transaction (lock word held)")
	}
	wv := v.eng.clock.Tick()
	old := v.head.Load()
	v.head.Store(&Version{val: val, ver: wv, prev: retainHistory(old, wv, v.eng.snaps.minActive())})
	v.lw.Store(packVersion(wv))
}

// currentVersion returns the head version record.
func (v *Var) currentVersion() *Version { return v.head.Load() }

// tryLock attempts to acquire the variable's lock for transaction owner,
// returning the previous unlocked word and true on success. It fails
// immediately if the variable is locked by anyone (including, defensively,
// the owner itself — callers are expected to dedupe).
func (v *Var) tryLock(owner uint64) (prev uint64, ok bool) {
	w := v.lw.Load()
	if isLocked(w) {
		return 0, false
	}
	if v.lw.CompareAndSwap(w, packOwner(owner)) {
		return w, true
	}
	return 0, false
}

// unlockTo releases the lock, installing the unlocked word w (either the
// pre-lock word on abort, or packVersion(commitTS) on commit). Only the
// lock owner may call it.
func (v *Var) unlockTo(w uint64) { v.lw.Store(w) }

// lockedBy reports whether the variable is currently locked and, if so,
// by which transaction id.
func (v *Var) lockedBy() (owner uint64, locked bool) {
	w := v.lw.Load()
	if !isLocked(w) {
		return 0, false
	}
	return wordOwner(w), true
}
