package stm

import (
	"testing"
	"testing/quick"
)

func TestLockWordVersionRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		v &^= lockBit // versions are 63-bit
		w := packVersion(v)
		return !isLocked(w) && wordVersion(w) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWordOwnerRoundTrip(t *testing.T) {
	f := func(o uint64) bool {
		o &^= lockBit
		w := packOwner(o)
		return isLocked(w) && wordOwner(w) == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWordStatesDisjoint(t *testing.T) {
	f := func(a, b uint64) bool {
		a &^= lockBit
		b &^= lockBit
		return packVersion(a) != packOwner(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockWordZeroIsUnlockedVersionZero(t *testing.T) {
	if isLocked(0) {
		t.Fatal("zero word must be unlocked")
	}
	if wordVersion(0) != 0 {
		t.Fatal("zero word must carry version 0")
	}
}

func TestClockMonotonic(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock Now = %d, want 0", c.Now())
	}
	prev := uint64(0)
	for i := 0; i < 1000; i++ {
		v := c.Tick()
		if v <= prev {
			t.Fatalf("Tick not strictly increasing: %d after %d", v, prev)
		}
		prev = v
	}
	if c.Now() != prev {
		t.Fatalf("Now = %d, want %d", c.Now(), prev)
	}
}

func TestClockAdvance(t *testing.T) {
	var c Clock
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("Now = %d, want 100", c.Now())
	}
	c.Advance(50) // never moves backwards
	if c.Now() != 100 {
		t.Fatalf("Advance moved clock backwards to %d", c.Now())
	}
	if v := c.Tick(); v != 101 {
		t.Fatalf("Tick after Advance = %d, want 101", v)
	}
}

func TestClockTickConcurrentUnique(t *testing.T) {
	var c Clock
	const workers, per = 8, 2000
	out := make(chan []uint64, workers)
	for w := 0; w < workers; w++ {
		go func() {
			vs := make([]uint64, per)
			for i := range vs {
				vs[i] = c.Tick()
			}
			out <- vs
		}()
	}
	seen := make(map[uint64]bool, workers*per)
	for w := 0; w < workers; w++ {
		for _, v := range <-out {
			if seen[v] {
				t.Fatalf("duplicate commit timestamp %d", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d unique timestamps, want %d", len(seen), workers*per)
	}
}

func TestVersionResolveAt(t *testing.T) {
	v3 := &Version{val: "c", ver: 30}
	v2 := &Version{val: "b", ver: 20, prev: nil}
	v3.prev = v2
	v1 := &Version{val: "a", ver: 10}
	v2.prev = v1

	cases := []struct {
		at   uint64
		want any
	}{
		{30, "c"}, {31, "c"}, {29, "b"}, {20, "b"}, {15, "a"}, {10, "a"},
	}
	for _, c := range cases {
		got := v3.resolveAt(c.at)
		if got == nil || got.val != c.want {
			t.Fatalf("resolveAt(%d) = %v, want %v", c.at, got, c.want)
		}
	}
	if v3.resolveAt(9) != nil {
		t.Fatal("resolveAt before oldest version must return nil")
	}
}

func TestVersionTrim(t *testing.T) {
	v3 := &Version{val: "c", ver: 30}
	v2 := &Version{val: "b", ver: 20}
	v1 := &Version{val: "a", ver: 10}
	v3.prev, v2.prev = v2, v1

	got := v3.trimmed(25) // keep newest <= 25, i.e. v2; drop v1
	if got != v3 || v3.prev != v2 || v2.prev != nil {
		t.Fatal("trimmed(25) should keep v3->v2 and cut v1")
	}

	v3.prev, v2.prev = v2, v1
	got = v3.trimmed(35) // newest <= 35 is v3 itself: drop all history
	if got != v3 || v3.prev != nil {
		t.Fatal("trimmed(35) should keep only v3")
	}

	v3.prev, v2.prev = v2, v1
	got = v3.trimmed(5) // nothing <= 5: keep the whole chain
	if got != v3 || v3.prev != v2 || v2.prev != v1 {
		t.Fatal("trimmed(5) should keep the full chain")
	}
}
