package stm

import (
	"math/rand/v2"
	"runtime"
)

// Sharding support for the engine's hot-path synchronization state.
//
// Event counters, the live-transaction registry, the snapshot registry
// and the variable-id space are all striped across a power-of-two
// number of shards so that concurrent transactions touch disjoint cache
// lines. The stripe count is a Config knob (Config.Shards); the default
// is derived from GOMAXPROCS at engine construction.
//
// Two global atomics deliberately remain: the version clock (it defines
// commit order — irreducible in a TL2-style engine, and only writing
// commits tick it) and the transaction-id block source (one
// fetch-and-add per id *block*). Blocks are private to a Txn shell and
// survive its trips through the engine's Txn pool, so the fetch-and-add
// is paid once per txnIDBlock attempts, not once per Run — at the
// already-accepted cost that the timestamp contention manager's birth
// "age" order is creation order per id block, not global creation
// order. Ids remain engine-unique and totally ordered, which is what
// deadlock-free lock ordering and priority arbitration actually
// require.

// cacheLine is the assumed cache-line size, used to pad shard entries so
// neighbouring stripes never false-share.
const cacheLine = 64

// maxShards caps the stripe count; beyond a few hundred stripes the
// aggregation cost of Stats.Snapshot and snapshotRegistry.minActive
// grows with no remaining contention to remove.
const maxShards = 256

// resolveShardCount turns the Config.Shards knob into the actual stripe
// count: a power of two in [1, maxShards], defaulting to the smallest
// power of two >= GOMAXPROCS when requested <= 0. Powers of two let
// every shard selection be a mask instead of a modulo.
func resolveShardCount(requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxShards {
		n = maxShards
	}
	s := 1
	for s < n {
		s <<= 1
	}
	return s
}

// shardOf maps an id to a shard index under mask (mask = shards-1,
// shards a power of two). Ids must be mixed, not masked directly:
// attempt ids are block-allocated (txnIDBlock apart), so every
// transaction's first attempt is congruent mod the block size and raw
// low bits would collapse onto a single shard. Fibonacci hashing
// spreads any arithmetic progression; the high half of the product is
// taken because that is where the mixing lands.
func shardOf(id, mask uint64) uint64 {
	return (id * 0x9E3779B97F4A7C15) >> 32 & mask
}

// stripeHint returns a cheap quasi-per-goroutine stripe selector.
// math/rand/v2's global generator draws from per-thread (per-P) state in
// the runtime, so concurrent callers never contend here, and goroutines
// running on distinct Ps — the only ones that can actually race — are
// steered toward distinct stripes. The hint need not be stable across
// calls: callers use it to *distribute* updates (striped counters, id
// wells), never to *find* them again.
func stripeHint() uint32 { return rand.Uint32() }
