package stm

import (
	"sync"
	"testing"
)

// TestPerSemanticsStatsExact drives a mixed-semantics workload — the
// paper's polymorphism as a load profile — and cross-checks the
// per-semantics counter classes: each class's exact commit count against
// the per-worker ground truth, the per-class attempt identity
// (Starts = Commits + Aborts), the cross-class sum identity against the
// global counters, and the never-abort guarantees of the snapshot and
// irrevocable classes. Run with -race.
func TestPerSemanticsStatsExact(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e := NewEngine(Config{Shards: shards})
		vars := make([]*Var, 8)
		for i := range vars {
			vars[i] = e.NewVar(0)
		}

		const workers = 8
		const txnsPerWorker = 200
		commits := make([][numSemClasses]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := uint64(w)*0x9E3779B97F4A7C15 + 1
				for n := 0; n < txnsPerWorker; n++ {
					r = r*6364136223846793005 + 1442695040888963407
					i, j := int(r>>33)%len(vars), int(r>>45)%len(vars)
					var sem Semantics
					switch n % 4 {
					case 0:
						sem = SemanticsDef
					case 1:
						sem = SemanticsWeak
					case 2:
						sem = SemanticsSnapshot
					case 3:
						sem = SemanticsIrrevocable
					}
					err := e.Run(sem, func(tx *Txn) error {
						v, err := tx.Read(vars[i])
						if err != nil {
							return err
						}
						if sem == SemanticsSnapshot {
							_, err = tx.Read(vars[j])
							return err
						}
						return tx.Write(vars[j], v.(int)+1)
					})
					if err != nil {
						t.Errorf("sem=%v: unexpected run error: %v", sem, err)
						return
					}
					commits[w][sem]++
				}
			}(w)
		}
		wg.Wait()

		var want [numSemClasses]uint64
		for w := range commits {
			for p := range want {
				want[p] += commits[w][p]
			}
		}
		s := e.Stats()
		var sumStarts, sumCommits, sumAborts uint64
		for p := Semantics(0); p < numSemClasses; p++ {
			c := s.Sem(p)
			if c.Commits != want[p] {
				t.Errorf("shards=%d sem=%v: Commits = %d, want exactly %d",
					shards, p, c.Commits, want[p])
			}
			if c.Starts != c.Commits+c.Aborts {
				t.Errorf("shards=%d sem=%v: Starts = %d, want Commits+Aborts = %d",
					shards, p, c.Starts, c.Commits+c.Aborts)
			}
			sumStarts += c.Starts
			sumCommits += c.Commits
			sumAborts += c.Aborts
		}
		if sumStarts != s.Starts || sumCommits != s.Commits || sumAborts != s.Aborts {
			t.Errorf("shards=%d: per-semantics sums (%d/%d/%d) != global (%d/%d/%d)",
				shards, sumStarts, sumCommits, sumAborts, s.Starts, s.Commits, s.Aborts)
		}
		// The per-transaction guarantees, visible in the breakdown: a
		// snapshot transaction never aborts; an irrevocable transaction
		// commits on its only attempt.
		if c := s.Sem(SemanticsSnapshot); c.Aborts != 0 {
			t.Errorf("shards=%d: snapshot class aborted %d times; snapshot never aborts", shards, c.Aborts)
		}
		if c := s.Sem(SemanticsIrrevocable); c.Aborts != 0 || c.Starts != c.Commits {
			t.Errorf("shards=%d: irrevocable class starts=%d commits=%d aborts=%d; must commit first try",
				shards, c.Starts, c.Commits, c.Aborts)
		}
	}
}

// TestPerSemanticsStatsReset ensures ResetStats reaches the per-semantics
// matrix on every stripe.
func TestPerSemanticsStatsReset(t *testing.T) {
	e := NewEngine(Config{Shards: 4})
	v := e.NewVar(0)
	for _, sem := range []Semantics{SemanticsDef, SemanticsWeak, SemanticsSnapshot, SemanticsIrrevocable} {
		if err := e.Run(sem, func(tx *Txn) error { _, err := tx.Read(v); return err }); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Sem(SemanticsSnapshot).Commits == 0 {
		t.Fatal("expected nonzero per-semantics counters before reset")
	}
	e.ResetStats()
	s := e.Stats()
	for p := Semantics(0); p < numSemClasses; p++ {
		if s.Sem(p) != (SemStats{}) {
			t.Fatalf("ResetStats left per-semantics residue for %v: %+v", p, s.Sem(p))
		}
	}
}
