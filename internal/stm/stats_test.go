package stm

import (
	"runtime"
	"sync"
	"testing"
)

// TestStatsExactUnderStriping is the exactness cross-check for the
// striped counters: every worker counts its own Read/Write calls and
// successful commits (including calls made on attempts that later
// aborted — the engine counts per call, not per surviving attempt), and
// the aggregated Snapshot must match the sums exactly. Run with -race.
func TestStatsExactUnderStriping(t *testing.T) {
	for _, shards := range []int{1, 4, 0} { // 0 = GOMAXPROCS default
		e := NewEngine(Config{Shards: shards})
		const workers = 8
		const txnsPerWorker = 300
		vars := make([]*Var, 16)
		for i := range vars {
			vars[i] = e.NewVar(0)
		}

		type tally struct {
			reads, writes, commits uint64
		}
		tallies := make([]tally, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tl := &tallies[w]
				r := uint64(w)*0x9E3779B97F4A7C15 + 1
				for n := 0; n < txnsPerWorker; n++ {
					r = r*6364136223846793005 + 1442695040888963407
					i, j := int(r>>33)%len(vars), int(r>>45)%len(vars)
					err := e.Run(SemanticsDef, func(tx *Txn) error {
						// The engine counts every Read/Write call it
						// admits, including calls that then lose a
						// conflict — so the tally counts calls, not
						// successes. (With the default polite manager
						// nothing is ever killed, so no call is
						// rejected before being counted.)
						v, err := tx.Read(vars[i])
						tl.reads++
						if err != nil {
							return err
						}
						err = tx.Write(vars[j], v.(int)+1)
						tl.writes++
						return err
					})
					if err != nil {
						t.Errorf("unexpected run error: %v", err)
						return
					}
					tl.commits++
				}
			}(w)
		}
		wg.Wait()

		var want tally
		for w := range tallies {
			want.reads += tallies[w].reads
			want.writes += tallies[w].writes
			want.commits += tallies[w].commits
		}
		s := e.Stats()
		if s.Commits != want.commits {
			t.Errorf("shards=%d: Commits = %d, want exactly %d", shards, s.Commits, want.commits)
		}
		if s.Reads != want.reads {
			t.Errorf("shards=%d: Reads = %d, want exactly %d", shards, s.Reads, want.reads)
		}
		if s.Writes != want.writes {
			t.Errorf("shards=%d: Writes = %d, want exactly %d", shards, s.Writes, want.writes)
		}
		// Every attempt ends in exactly one commit or one abort.
		if s.Starts != s.Commits+s.Aborts {
			t.Errorf("shards=%d: Starts = %d, want Commits+Aborts = %d",
				shards, s.Starts, s.Commits+s.Aborts)
		}
		if s.VarsAllocated != uint64(len(vars)) {
			t.Errorf("shards=%d: VarsAllocated = %d, want %d", shards, s.VarsAllocated, len(vars))
		}
	}
}

// TestStatsIdentitiesUnderContention drives heavy contention on one
// variable (with the suicide manager so aborts are plentiful) and
// checks the abort-side identities plus the exact commit count against
// the per-worker success tally.
func TestStatsIdentitiesUnderContention(t *testing.T) {
	e := NewEngine(Config{Shards: 4, DefaultCM: NewSuicide()})
	hot := e.NewVar(0)
	const workers = 8
	const txnsPerWorker = 200
	var wg sync.WaitGroup
	var commitTotal [workers]uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < txnsPerWorker; n++ {
				err := e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(hot)
					if err != nil {
						return err
					}
					runtime.Gosched() // widen the conflict window
					return tx.Write(hot, v.(int)+1)
				})
				if err == nil {
					commitTotal[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var commits uint64
	for w := range commitTotal {
		commits += commitTotal[w]
	}
	s := e.Stats()
	if s.Commits != commits {
		t.Errorf("Commits = %d, want exactly %d (per-worker sum)", s.Commits, commits)
	}
	if s.Starts != s.Commits+s.Aborts {
		t.Errorf("Starts = %d, want Commits+Aborts = %d", s.Starts, s.Commits+s.Aborts)
	}
	if s.Aborts < s.ReadAborts+s.LockAborts+s.ValidateAbort {
		t.Errorf("Aborts = %d < categorized aborts %d", s.Aborts,
			s.ReadAborts+s.LockAborts+s.ValidateAbort)
	}
	if got := hot.LoadDirect().(int); uint64(got) != commits {
		t.Errorf("hot counter = %d, want %d (one increment per commit)", got, commits)
	}
}

// TestShardConfigResolution pins the knob semantics: non-power-of-two
// requests round up, oversize requests clamp, and zero derives from
// GOMAXPROCS.
func TestShardConfigResolution(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {64, 64}, {1000, 256},
	}
	for _, c := range cases {
		if e := NewEngine(Config{Shards: c.in}); e.Shards() != c.want {
			t.Errorf("Shards=%d resolved to %d, want %d", c.in, e.Shards(), c.want)
		}
	}
	def := NewDefaultEngine().Shards()
	if def < 1 || def&(def-1) != 0 {
		t.Errorf("default shard count %d is not a positive power of two", def)
	}
	want := 1
	for want < min(runtime.GOMAXPROCS(0), maxShards) {
		want <<= 1
	}
	if def != want {
		t.Errorf("default shard count = %d, want %d (from GOMAXPROCS)", def, want)
	}
}

// TestResetStatsZeroesEveryStripe ensures reset reaches all stripes,
// not just stripe zero.
func TestResetStatsZeroesEveryStripe(t *testing.T) {
	e := NewEngine(Config{Shards: 8})
	for i := 0; i < 64; i++ {
		v := e.NewVar(i)
		if err := e.Run(SemanticsDef, func(tx *Txn) error { return tx.Write(v, i+1) }); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Commits == 0 || s.VarsAllocated == 0 {
		t.Fatal("expected nonzero counters before reset")
	}
	e.ResetStats()
	if s := e.Stats(); s != (StatsSnapshot{}) {
		t.Fatalf("ResetStats left residue: %+v", s)
	}
}

// TestStoreDirectDetectsRacingLocker pins the CAS-guarded publish: a
// StoreDirect against a variable whose lock word is held must panic
// loudly instead of corrupting the version chain.
func TestStoreDirectDetectsRacingLocker(t *testing.T) {
	e := NewDefaultEngine()
	v := e.NewVar(1)
	if _, ok := v.tryLock(42); !ok {
		t.Fatal("setup: could not lock variable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StoreDirect against a locked variable did not panic")
		}
	}()
	v.StoreDirect(2)
}

// TestTxnIDBlocksUniqueAndNonzero drives many transactions concurrently
// and checks that block-allocated attempt ids never collide and never
// produce the reserved id 0 (the StoreDirect sentinel owner).
func TestTxnIDBlocksUniqueAndNonzero(t *testing.T) {
	e := NewDefaultEngine()
	const workers = 8
	const perWorker = 500
	idsCh := make(chan []uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, 0, perWorker)
			for n := 0; n < perWorker; n++ {
				tx := e.Begin(SemanticsDef)
				ids = append(ids, tx.ID())
				if tx.Birth() == 0 {
					t.Error("birth id 0")
				}
				tx.Abort()
			}
			idsCh <- ids
		}()
	}
	wg.Wait()
	close(idsCh)
	seen := make(map[uint64]bool)
	for ids := range idsCh {
		for _, id := range ids {
			if id == 0 {
				t.Fatal("attempt id 0 issued (reserved for StoreDirect)")
			}
			if seen[id] {
				t.Fatalf("attempt id %d issued twice", id)
			}
			seen[id] = true
		}
	}
}

// TestVarIDsUniqueAcrossStripes checks the striped var-id wells:
// concurrent NewVar calls must yield distinct, nonzero ids.
func TestVarIDsUniqueAcrossStripes(t *testing.T) {
	e := NewEngine(Config{Shards: 8})
	const workers = 8
	const perWorker = 500
	idsCh := make(chan []uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids := make([]uint64, 0, perWorker)
			for n := 0; n < perWorker; n++ {
				ids = append(ids, e.NewVar(n).ID())
			}
			idsCh <- ids
		}()
	}
	wg.Wait()
	close(idsCh)
	seen := make(map[uint64]bool)
	for ids := range idsCh {
		for _, id := range ids {
			if id == 0 || seen[id] {
				t.Fatalf("var id %d duplicated or zero", id)
			}
			seen[id] = true
		}
	}
}

// TestShardSelectionSpreadsBlockIDs is the regression test for a
// sharding pitfall: attempt ids are block-allocated (txnIDBlock apart),
// so every transaction's FIRST attempt id is congruent mod the block
// size — masking raw low bits would send all of them to one shard.
// shardOf must spread an arithmetic progression of stride txnIDBlock
// across all shards.
func TestShardSelectionSpreadsBlockIDs(t *testing.T) {
	const shards = 8
	const mask = shards - 1
	counts := make([]int, shards)
	for k := uint64(0); k < 1000; k++ {
		counts[shardOf(k*txnIDBlock+1, mask)]++ // first-attempt ids: 1, 65, 129, ...
	}
	for s, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d never selected across 1000 first-attempt ids: %v", s, counts)
		}
		if n > 1000/shards*3 {
			t.Errorf("shard %d grossly overloaded (%d of 1000): %v", s, n, counts)
		}
	}
}
