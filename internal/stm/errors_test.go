package stm

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// TestAbortErrorSentinelMatrix is the errors.Is/errors.As matrix: an
// AbortError wrapping each of the six legacy sentinels must match
// exactly that sentinel (and, via Cause, a context error when one is
// attached) — so every caller that branched on the bare sentinels
// before this API existed keeps working, and no abort accidentally
// matches a sentinel it does not wrap.
func TestAbortErrorSentinelMatrix(t *testing.T) {
	sentinels := []error{
		ErrConflict,
		ErrKilled,
		ErrSnapshotWrite,
		ErrTxnDone,
		ErrCrossEngine,
		ErrTooManyAttempts,
	}
	for _, s := range sentinels {
		err := error(&AbortError{Sentinel: s, Semantics: SemanticsWeak, Attempts: 3})
		for _, other := range sentinels {
			if (other == s) != errors.Is(err, other) {
				t.Errorf("AbortError{%v}: errors.Is(err, %v) = %v, want %v",
					s, other, errors.Is(err, other), other == s)
			}
		}
		var ae *AbortError
		if !errors.As(err, &ae) {
			t.Fatalf("AbortError{%v}: errors.As failed", s)
		}
		if ae.Semantics != SemanticsWeak || ae.Attempts != 3 {
			t.Errorf("AbortError{%v}: detail lost: %+v", s, ae)
		}
	}
}

// TestAbortErrorCancellationMatchesBoth: a cancellation abort matches
// ErrCancelled AND the context's own error, and only the one context
// error it actually carries.
func TestAbortErrorCancellationMatchesBoth(t *testing.T) {
	err := error(&AbortError{Sentinel: ErrCancelled, Cause: context.DeadlineExceeded})
	if !errors.Is(err, ErrCancelled) {
		t.Fatal("must match ErrCancelled")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("must match context.DeadlineExceeded")
	}
	if errors.Is(err, context.Canceled) {
		t.Fatal("must not match context.Canceled (cause was DeadlineExceeded)")
	}
	if errors.Is(err, ErrTooManyAttempts) || errors.Is(err, ErrConflict) {
		t.Fatal("cancellation must not match unrelated sentinels")
	}
}

// TestEngineErrorsAreTyped drives each misuse path through the real
// engine and asserts the returned error is an AbortError that still
// matches the legacy sentinel.
func TestEngineErrorsAreTyped(t *testing.T) {
	e := NewDefaultEngine()
	e2 := NewDefaultEngine()
	x := e.NewVar(0)
	foreign := e2.NewVar(0)

	// Snapshot write.
	err := e.Run(SemanticsSnapshot, func(tx *Txn) error { return tx.Write(x, 1) })
	var ae *AbortError
	if !errors.Is(err, ErrSnapshotWrite) || !errors.As(err, &ae) {
		t.Fatalf("snapshot write: %v, want typed ErrSnapshotWrite", err)
	}
	if ae.Semantics != SemanticsSnapshot {
		t.Fatalf("snapshot write AbortError.Semantics = %v", ae.Semantics)
	}

	// Cross-engine access.
	err = e.Run(SemanticsDef, func(tx *Txn) error { _, err := tx.Read(foreign); return err })
	if !errors.Is(err, ErrCrossEngine) || !errors.As(err, &ae) {
		t.Fatalf("cross-engine read: %v, want typed ErrCrossEngine", err)
	}

	// Finished-handle use.
	tx := e.Begin(SemanticsDef)
	tx.Abort()
	if _, err := tx.Read(x); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("finished-handle read: %v, want typed ErrTxnDone", err)
	}

	// Attempt bound exhausted: the error carries the attempt count.
	err = e.RunWithOptions(SemanticsDef, nil, 3, func(tx *Txn) error {
		return tx.abortConflict("forced", 0)
	})
	if !errors.Is(err, ErrTooManyAttempts) || !errors.As(err, &ae) {
		t.Fatalf("bound exhausted: %v, want typed ErrTooManyAttempts", err)
	}
	if ae.Attempts != 3 || ae.Semantics != SemanticsDef {
		t.Fatalf("bound exhausted detail: %+v, want Attempts=3 sem=def", ae)
	}
	if !strings.Contains(err.Error(), "attempts=3") {
		t.Fatalf("Error() = %q, want attempt count rendered", err.Error())
	}
}
