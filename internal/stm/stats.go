package stm

import (
	"fmt"
	"sync/atomic"
)

// statCounter names one engine event counter. Hot paths bump counters
// through Stats.add with their transaction's stripe, so the enum is the
// per-event half of the striped layout below.
type statCounter uint8

const (
	statStarts        statCounter = iota // transaction attempts begun
	statCommits                          // successful commits
	statAborts                           // aborts of any kind
	statReadAborts                       // aborts during read validation/extension
	statLockAborts                       // aborts acquiring commit-time locks
	statValidateAbort                    // aborts during commit-time validation
	statKills                            // aborts requested by contention managers
	statExtensions                       // successful read-timestamp extensions
	statElasticCuts                      // elastic prefix cuts (the paper's γ windows sliding)
	statSnapshotReads                    // reads resolved from non-head versions
	statIrrevocables                     // transactions run irrevocably
	statVarsAllocated                    // NewVar calls
	statReads                            // transactional reads
	statWrites                           // transactional writes

	numStatCounters
)

// statsStripe is one shard's worth of counters, padded out to a
// cache-line multiple so adjacent stripes never false-share. (The
// counter block is 14×8 = 112 bytes; the pad rounds it to 128.)
type statsStripe struct {
	c [numStatCounters]atomic.Uint64
	_ [cacheLine - (numStatCounters*8)%cacheLine]byte
}

// Stats holds the engine-wide event counters, striped across the
// engine's shard count. Each increment lands on exactly one stripe, so
// Snapshot — which sums every stripe — is exact for every individual
// counter: striping relaxes only *where* an event is recorded, never
// *whether* it is. (As before, counters are mutually consistent only
// approximately: a snapshot taken mid-flight may see a start whose
// commit it misses.)
type Stats struct {
	stripes []statsStripe
	mask    uint32
}

// init sizes the stripe array; shards must be a power of two.
func (s *Stats) init(shards int) {
	s.stripes = make([]statsStripe, shards)
	s.mask = uint32(shards - 1)
}

// add bumps counter c on the given stripe.
func (s *Stats) add(stripe uint32, c statCounter) {
	s.stripes[stripe&s.mask].c[c].Add(1)
}

// sum aggregates counter c across every stripe.
func (s *Stats) sum(c statCounter) uint64 {
	var t uint64
	for i := range s.stripes {
		t += s.stripes[i].c[c].Load()
	}
	return t
}

// reset zeroes every counter on every stripe.
func (s *Stats) reset() {
	for i := range s.stripes {
		for c := range s.stripes[i].c {
			s.stripes[i].c[c].Store(0)
		}
	}
}

// Snapshot aggregates the stripes into a plain struct for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:        s.sum(statStarts),
		Commits:       s.sum(statCommits),
		Aborts:        s.sum(statAborts),
		ReadAborts:    s.sum(statReadAborts),
		LockAborts:    s.sum(statLockAborts),
		ValidateAbort: s.sum(statValidateAbort),
		Kills:         s.sum(statKills),
		Extensions:    s.sum(statExtensions),
		ElasticCuts:   s.sum(statElasticCuts),
		SnapshotReads: s.sum(statSnapshotReads),
		Irrevocables:  s.sum(statIrrevocables),
		VarsAllocated: s.sum(statVarsAllocated),
		Reads:         s.sum(statReads),
		Writes:        s.sum(statWrites),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Starts, Commits, Aborts               uint64
	ReadAborts, LockAborts, ValidateAbort uint64
	Kills, Extensions, ElasticCuts        uint64
	SnapshotReads, Irrevocables           uint64
	VarsAllocated, Reads, Writes          uint64
}

// AbortRate returns aborts per attempt, in [0,1].
func (s StatsSnapshot) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// String renders the snapshot as a single diagnostic line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"starts=%d commits=%d aborts=%d (read=%d lock=%d val=%d kill=%d) ext=%d cuts=%d snapreads=%d irrevocable=%d reads=%d writes=%d abort-rate=%.3f",
		s.Starts, s.Commits, s.Aborts, s.ReadAborts, s.LockAborts,
		s.ValidateAbort, s.Kills, s.Extensions, s.ElasticCuts,
		s.SnapshotReads, s.Irrevocables, s.Reads, s.Writes, s.AbortRate())
}
