package stm

import (
	"fmt"
	"sync/atomic"
)

// statCounter names one engine event counter. Hot paths bump counters
// through Stats.add with their transaction's stripe, so the enum is the
// per-event half of the striped layout below.
type statCounter uint8

const (
	statStarts        statCounter = iota // transaction attempts begun
	statCommits                          // successful commits
	statAborts                           // aborts of any kind
	statReadAborts                       // aborts during read validation/extension
	statLockAborts                       // aborts acquiring commit-time locks
	statValidateAbort                    // aborts during commit-time validation
	statKills                            // aborts requested by contention managers
	statExtensions                       // successful read-timestamp extensions
	statElasticCuts                      // elastic prefix cuts (the paper's γ windows sliding)
	statSnapshotReads                    // reads resolved from non-head versions
	statIrrevocables                     // transactions run irrevocably
	statVarsAllocated                    // NewVar calls
	statReads                            // transactional reads
	statWrites                           // transactional writes

	numStatCounters
)

// semCounter names one per-semantics event counter. The engine keeps a
// (semantics × event) matrix per stripe so a polymorphic workload can be
// broken down by the paper's parameter p: how many def transactions
// aborted while the snapshot readers all committed is precisely the
// schedule-acceptance gap the paper claims, made observable.
type semCounter uint8

const (
	semStarts  semCounter = iota // attempts begun under this semantics
	semCommits                   // commits under this semantics
	semAborts                    // aborts under this semantics

	numSemCounters
)

// numSemClasses is the number of semantics classes tracked (Def, Weak,
// Snapshot, Irrevocable). Attribution is by the transaction's root
// parameter p — the semantics passed to start(p) — not by the effective
// semantics of nested scopes.
const numSemClasses = 4

// statsStripe is one shard's worth of counters, padded out to a
// cache-line multiple so adjacent stripes never false-share. (The
// counter block is (14+4×3)×8 = 208 bytes; the pad rounds it to 256.)
type statsStripe struct {
	c   [numStatCounters]atomic.Uint64
	sem [numSemClasses][numSemCounters]atomic.Uint64
	_   [cacheLine - ((int(numStatCounters)+numSemClasses*int(numSemCounters))*8)%cacheLine]byte
}

// Stats holds the engine-wide event counters, striped across the
// engine's shard count. Each increment lands on exactly one stripe, so
// Snapshot — which sums every stripe — is exact for every individual
// counter: striping relaxes only *where* an event is recorded, never
// *whether* it is. (As before, counters are mutually consistent only
// approximately: a snapshot taken mid-flight may see a start whose
// commit it misses.)
type Stats struct {
	stripes []statsStripe
	mask    uint32
}

// init sizes the stripe array; shards must be a power of two.
func (s *Stats) init(shards int) {
	s.stripes = make([]statsStripe, shards)
	s.mask = uint32(shards - 1)
}

// add bumps counter c on the given stripe.
func (s *Stats) add(stripe uint32, c statCounter) {
	s.stripes[stripe&s.mask].c[c].Add(1)
}

// addSem bumps per-semantics counter c for semantics class p on the
// given stripe.
func (s *Stats) addSem(stripe uint32, p Semantics, c semCounter) {
	s.stripes[stripe&s.mask].sem[p][c].Add(1)
}

// sum aggregates counter c across every stripe.
func (s *Stats) sum(c statCounter) uint64 {
	var t uint64
	for i := range s.stripes {
		t += s.stripes[i].c[c].Load()
	}
	return t
}

// sumSem aggregates per-semantics counter c of class p across every
// stripe.
func (s *Stats) sumSem(p Semantics, c semCounter) uint64 {
	var t uint64
	for i := range s.stripes {
		t += s.stripes[i].sem[p][c].Load()
	}
	return t
}

// reset zeroes every counter on every stripe.
func (s *Stats) reset() {
	for i := range s.stripes {
		for c := range s.stripes[i].c {
			s.stripes[i].c[c].Store(0)
		}
		for p := range s.stripes[i].sem {
			for c := range s.stripes[i].sem[p] {
				s.stripes[i].sem[p][c].Store(0)
			}
		}
	}
}

// Snapshot aggregates the stripes into a plain struct for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	var per [numSemClasses]SemStats
	for p := Semantics(0); p < numSemClasses; p++ {
		per[p] = SemStats{
			Starts:  s.sumSem(p, semStarts),
			Commits: s.sumSem(p, semCommits),
			Aborts:  s.sumSem(p, semAborts),
		}
	}
	return StatsSnapshot{
		PerSemantics:  per,
		Starts:        s.sum(statStarts),
		Commits:       s.sum(statCommits),
		Aborts:        s.sum(statAborts),
		ReadAborts:    s.sum(statReadAborts),
		LockAborts:    s.sum(statLockAborts),
		ValidateAbort: s.sum(statValidateAbort),
		Kills:         s.sum(statKills),
		Extensions:    s.sum(statExtensions),
		ElasticCuts:   s.sum(statElasticCuts),
		SnapshotReads: s.sum(statSnapshotReads),
		Irrevocables:  s.sum(statIrrevocables),
		VarsAllocated: s.sum(statVarsAllocated),
		Reads:         s.sum(statReads),
		Writes:        s.sum(statWrites),
	}
}

// SemStats is the per-semantics-class slice of a StatsSnapshot: the
// attempts, commits, and aborts of transactions whose start(p) parameter
// was that class.
type SemStats struct {
	Starts, Commits, Aborts uint64
}

// AbortRate returns aborts per attempt for this class, in [0,1].
func (s SemStats) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Starts, Commits, Aborts               uint64
	ReadAborts, LockAborts, ValidateAbort uint64
	Kills, Extensions, ElasticCuts        uint64
	SnapshotReads, Irrevocables           uint64
	VarsAllocated, Reads, Writes          uint64

	// PerSemantics breaks starts/commits/aborts down by the
	// transaction's semantic parameter p, indexed by Semantics value
	// (Def, Weak, Snapshot, Irrevocable). Each class's counters obey the
	// same exactness as the global ones, and at quiescence the classes
	// sum to the global Starts/Commits/Aborts.
	PerSemantics [numSemClasses]SemStats
}

// Sem returns the per-semantics slice for class p (zero value for an
// out-of-range p).
func (s StatsSnapshot) Sem(p Semantics) SemStats {
	if int(p) >= len(s.PerSemantics) {
		return SemStats{}
	}
	return s.PerSemantics[p]
}

// AbortRate returns aborts per attempt, in [0,1].
func (s StatsSnapshot) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// PerSemString renders the non-empty per-semantics classes as one
// diagnostic line.
func (s StatsSnapshot) PerSemString() string {
	out := ""
	for p := Semantics(0); p < numSemClasses; p++ {
		c := s.PerSemantics[p]
		if c.Starts == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%v{starts=%d commits=%d aborts=%d rate=%.3f}",
			p, c.Starts, c.Commits, c.Aborts, c.AbortRate())
	}
	if out == "" {
		return "(no transactions)"
	}
	return out
}

// String renders the snapshot as a single diagnostic line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"starts=%d commits=%d aborts=%d (read=%d lock=%d val=%d kill=%d) ext=%d cuts=%d snapreads=%d irrevocable=%d reads=%d writes=%d abort-rate=%.3f",
		s.Starts, s.Commits, s.Aborts, s.ReadAborts, s.LockAborts,
		s.ValidateAbort, s.Kills, s.Extensions, s.ElasticCuts,
		s.SnapshotReads, s.Irrevocables, s.Reads, s.Writes, s.AbortRate())
}
