package stm

import (
	"fmt"
	"sync/atomic"
)

// Stats holds engine-wide event counters. All counters are updated with
// atomic adds on hot paths and are therefore approximate only in their
// mutual consistency, never in their individual totals.
type Stats struct {
	Starts        atomic.Uint64 // transaction attempts begun
	Commits       atomic.Uint64 // successful commits
	Aborts        atomic.Uint64 // aborts of any kind
	ReadAborts    atomic.Uint64 // aborts during read validation/extension
	LockAborts    atomic.Uint64 // aborts acquiring commit-time locks
	ValidateAbort atomic.Uint64 // aborts during commit-time validation
	Kills         atomic.Uint64 // aborts requested by contention managers
	Extensions    atomic.Uint64 // successful read-timestamp extensions
	ElasticCuts   atomic.Uint64 // elastic prefix cuts (the paper's γ windows sliding)
	SnapshotReads atomic.Uint64 // reads resolved from non-head versions
	Irrevocables  atomic.Uint64 // transactions run irrevocably
	VarsAllocated atomic.Uint64 // NewVar calls
	Reads         atomic.Uint64 // transactional reads
	Writes        atomic.Uint64 // transactional writes
}

// Snapshot copies the counters into a plain struct for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Starts:        s.Starts.Load(),
		Commits:       s.Commits.Load(),
		Aborts:        s.Aborts.Load(),
		ReadAborts:    s.ReadAborts.Load(),
		LockAborts:    s.LockAborts.Load(),
		ValidateAbort: s.ValidateAbort.Load(),
		Kills:         s.Kills.Load(),
		Extensions:    s.Extensions.Load(),
		ElasticCuts:   s.ElasticCuts.Load(),
		SnapshotReads: s.SnapshotReads.Load(),
		Irrevocables:  s.Irrevocables.Load(),
		VarsAllocated: s.VarsAllocated.Load(),
		Reads:         s.Reads.Load(),
		Writes:        s.Writes.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Starts, Commits, Aborts               uint64
	ReadAborts, LockAborts, ValidateAbort uint64
	Kills, Extensions, ElasticCuts        uint64
	SnapshotReads, Irrevocables           uint64
	VarsAllocated, Reads, Writes          uint64
}

// AbortRate returns aborts per attempt, in [0,1].
func (s StatsSnapshot) AbortRate() float64 {
	if s.Starts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Starts)
}

// String renders the snapshot as a single diagnostic line.
func (s StatsSnapshot) String() string {
	return fmt.Sprintf(
		"starts=%d commits=%d aborts=%d (read=%d lock=%d val=%d kill=%d) ext=%d cuts=%d snapreads=%d irrevocable=%d reads=%d writes=%d abort-rate=%.3f",
		s.Starts, s.Commits, s.Aborts, s.ReadAborts, s.LockAborts,
		s.ValidateAbort, s.Kills, s.Extensions, s.ElasticCuts,
		s.SnapshotReads, s.Irrevocables, s.Reads, s.Writes, s.AbortRate())
}
