package stm

import (
	"errors"
	"sync"
	"testing"
)

func TestSnapshotSeesStartState(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(1)

	snap := e.Begin(SemanticsSnapshot)

	// A writer commits after the snapshot started.
	w := e.Begin(SemanticsDef)
	if err := w.Write(x, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	v, err := snap.Read(x)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 1 {
		t.Fatalf("snapshot read %v, want the pre-write value 1", v)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().SnapshotReads == 0 {
		t.Fatal("expected a non-head snapshot read to be recorded")
	}
}

func TestSnapshotNeverAborts(t *testing.T) {
	e := NewDefaultEngine()
	const n = 32
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = e.NewVar(0)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint32(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*1664525 + 1013904223
				i := int(r>>8) % n
				_ = e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(vars[i])
					if err != nil {
						return err
					}
					return tx.Write(vars[i], v.(int)+1)
				})
			}
		}(w + 3)
	}

	// Snapshot scanners: a full scan must always see a monotonically
	// consistent state and must never return a retryable error.
	for s := 0; s < 4; s++ {
		for rep := 0; rep < 100; rep++ {
			tx := e.Begin(SemanticsSnapshot)
			for i := 0; i < n; i++ {
				if _, err := tx.Read(vars[i]); err != nil {
					t.Fatalf("snapshot read aborted: %v", err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatalf("snapshot commit: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotConsistentSum: writers preserve an invariant (total sum);
// snapshot scans concurrent with the writers must observe exactly the
// invariant sum — the snapshot is a consistent cut by construction.
func TestSnapshotConsistentSum(t *testing.T) {
	e := NewDefaultEngine()
	const n = 16
	const initial = 1000
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = e.NewVar(initial)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint32(seed)
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*1664525 + 1013904223
				i := int(r>>8) % n
				j := int(r>>16) % n
				if i == j {
					continue
				}
				_ = e.Run(SemanticsDef, func(tx *Txn) error {
					a, err := tx.Read(vars[i])
					if err != nil {
						return err
					}
					b, err := tx.Read(vars[j])
					if err != nil {
						return err
					}
					if err := tx.Write(vars[i], a.(int)-5); err != nil {
						return err
					}
					return tx.Write(vars[j], b.(int)+5)
				})
			}
		}(w + 11)
	}

	// Regression scope: this loop once caught a publish-window race —
	// a writer locks its write set before ticking the clock, so a
	// snapshot starting inside that window must wait out the locks or
	// it can observe half of a two-variable transfer.
	for rep := 0; rep < 1500; rep++ {
		sum := 0
		tx := e.Begin(SemanticsSnapshot)
		for i := 0; i < n; i++ {
			v, err := tx.Read(vars[i])
			if err != nil {
				t.Fatal(err)
			}
			sum += v.(int)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if sum != n*initial {
			t.Fatalf("snapshot observed torn sum %d, want %d", sum, n*initial)
		}
	}
	close(stop)
	wg.Wait()
}

func TestSnapshotWriteRejected(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	tx := e.Begin(SemanticsSnapshot)
	err := tx.Write(x, 1)
	if !errors.Is(err, ErrSnapshotWrite) {
		t.Fatalf("err = %v, want ErrSnapshotWrite", err)
	}
	if got := x.LoadDirect().(int); got != 0 {
		t.Fatalf("snapshot write leaked: %d", got)
	}
}

func TestSnapshotRegistryTrimming(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)

	// With no live snapshots, version history is trimmed to the head.
	for i := 1; i <= 5; i++ {
		if err := e.Run(SemanticsDef, func(tx *Txn) error {
			return tx.Write(x, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	if h := x.currentVersion(); h.prev != nil {
		t.Fatal("history should be trimmed when no snapshots are live")
	}

	// With a live snapshot, the version it needs is preserved.
	snap := e.Begin(SemanticsSnapshot)
	for i := 6; i <= 10; i++ {
		if err := e.Run(SemanticsDef, func(tx *Txn) error {
			return tx.Write(x, i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := snap.Read(x)
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 5 {
		t.Fatalf("snapshot read %v, want 5 (value at its start)", v)
	}
	if err := snap.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.snaps.activeCount() != 0 {
		t.Fatal("snapshot not unregistered after commit")
	}
}

func TestSnapshotRegistryMin(t *testing.T) {
	e := NewDefaultEngine()
	t1 := e.Begin(SemanticsSnapshot)
	e.clock.Tick()
	t2 := e.Begin(SemanticsSnapshot)
	if m := e.snaps.minActive(); m != t1.ReadTimestamp() {
		t.Fatalf("minActive = %d, want %d", m, t1.ReadTimestamp())
	}
	t1.Abort()
	if m := e.snaps.minActive(); m != t2.ReadTimestamp() {
		t.Fatalf("after t1 ends, minActive = %d, want %d", m, t2.ReadTimestamp())
	}
	t2.Commit()
}
