package stm

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestIrrevocableCommitsFirstAttempt(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	attempts := 0
	err := e.Run(SemanticsIrrevocable, func(tx *Txn) error {
		attempts++
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		return tx.Write(x, v.(int)+1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 1 {
		t.Fatalf("irrevocable ran %d attempts, want exactly 1", attempts)
	}
	if got := x.LoadDirect().(int); got != 1 {
		t.Fatalf("x = %d, want 1", got)
	}
}

func TestIrrevocableCannotBeKilled(t *testing.T) {
	e := NewDefaultEngine()
	tx := e.Begin(SemanticsIrrevocable)
	if tx.kill(tx.ID()) {
		t.Fatal("kill() must refuse irrevocable transactions")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestIrrevocableSerializedByToken(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	var inside atomic.Int32
	var maxInside atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := e.Run(SemanticsIrrevocable, func(tx *Txn) error {
					n := inside.Add(1)
					for {
						m := maxInside.Load()
						if n <= m || maxInside.CompareAndSwap(m, n) {
							break
						}
					}
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					if err := tx.Write(x, v.(int)+1); err != nil {
						return err
					}
					inside.Add(-1)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if m := maxInside.Load(); m != 1 {
		t.Fatalf("observed %d concurrent irrevocable transactions, want 1", m)
	}
	if got := x.LoadDirect().(int); got != 200 {
		t.Fatalf("x = %d, want 200", got)
	}
}

// TestIrrevocableVsOptimistic: one irrevocable transaction mixed with
// optimistic writers; the irrevocable one must commit exactly once and
// the counter must not lose updates.
func TestIrrevocableVsOptimistic(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	const optWorkers, per = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < optWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v.(int)+1)
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < per; i++ {
			if err := e.Run(SemanticsIrrevocable, func(tx *Txn) error {
				v, err := tx.Read(x)
				if err != nil {
					return err
				}
				return tx.Write(x, v.(int)+1)
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	want := (optWorkers + 1) * per
	if got := x.LoadDirect().(int); got != want {
		t.Fatalf("x = %d, want %d", got, want)
	}
}

// TestIrrevocableReadLocksRestoreVersion: a read-only encounter lock must
// restore the variable's original version word so later readers see an
// unchanged version.
func TestIrrevocableReadLocksRestoreVersion(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(5)
	before := x.lw.Load()
	if err := e.Run(SemanticsIrrevocable, func(tx *Txn) error {
		_, err := tx.Read(x)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	after := x.lw.Load()
	if before != after {
		t.Fatalf("read-only irrevocable changed lock word %#x -> %#x", before, after)
	}
	if _, locked := x.lockedBy(); locked {
		t.Fatal("variable left locked")
	}
}

func TestIrrevocableUserErrorReleasesLocks(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(1)
	sentinel := errTest{}
	err := e.Run(SemanticsIrrevocable, func(tx *Txn) error {
		if err := tx.Write(x, 99); err != nil {
			return err
		}
		return sentinel
	})
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if _, locked := x.lockedBy(); locked {
		t.Fatal("abort left encounter lock held")
	}
	if got := x.LoadDirect().(int); got != 1 {
		t.Fatalf("aborted irrevocable write leaked: %d", got)
	}
	// The engine must accept new irrevocable transactions (token freed).
	if err := e.Run(SemanticsIrrevocable, func(tx *Txn) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

type errTest struct{}

func (errTest) Error() string { return "test error" }
