package stm

import (
	"math/rand/v2"
	"runtime"
	"time"
)

// ContentionManager arbitrates conflicts between transactions. Each
// transaction owns one manager instance for its whole Run lifecycle —
// the factory is invoked once, on the first attempt, and the instance
// is reused across retries (per-attempt context arrives through the
// attempt parameter and Txn.Attempt, and priority metadata — karma,
// birth timestamp — persists on the Txn). Stateless managers go
// further: their factories hand out one shared instance, so arming a
// transaction with them costs no allocation at all. A manager with
// mutable state must therefore either be returned fresh per factory
// call or be safe for concurrent use.
//
// The manager is consulted when the transaction fails to acquire a
// commit-time lock held by another live transaction. It returns a
// Resolution telling the engine what to do. Managers implementing
// priority schemes may additionally request the *enemy's* abort through
// the engine's kill mechanism; the victim observes ErrKilled at its next
// safe point.
//
// Contention management is itself a form of the paper's polymorphism:
// "providing one liveness guarantee per transaction" — each transaction
// can carry its own manager.
type ContentionManager interface {
	// OnLockBusy is invoked when tx fails to take a lock owned by enemy
	// (which may be nil if the owner finished in the meantime).
	// attempt counts consecutive failures on this same lock.
	OnLockBusy(tx *Txn, enemy *Txn, attempt int) Resolution

	// OnAbort is invoked after the transaction aborts, before the run
	// loop re-executes it; managers typically back off here.
	OnAbort(tx *Txn)

	// Name identifies the policy in reports.
	Name() string
}

// Resolution is a contention-management decision.
type Resolution uint8

const (
	// ResolutionAbortSelf aborts the current transaction for retry.
	ResolutionAbortSelf Resolution = iota
	// ResolutionRetryLock spins and retries the lock acquisition.
	ResolutionRetryLock
	// ResolutionKillEnemy marks the lock owner as killed and retries the
	// acquisition (the owner releases its locks when it observes the
	// kill at its next safe point).
	ResolutionKillEnemy
)

// CMFactory supplies the manager for one transaction lifecycle. It is
// called once per Run (not per attempt); factories of stateless
// policies return a shared instance.
type CMFactory func() ContentionManager

// ---------------------------------------------------------------------
// Suicide: always abort self immediately. The simplest livelock-prone
// policy; the classical baseline.

// NewSuicide returns the suicide contention-manager factory.
func NewSuicide() CMFactory { return func() ContentionManager { return suicide{} } }

type suicide struct{}

func (suicide) OnLockBusy(*Txn, *Txn, int) Resolution { return ResolutionAbortSelf }
func (suicide) OnAbort(*Txn)                          {}
func (suicide) Name() string                          { return "suicide" }

// ---------------------------------------------------------------------
// Polite: spin with bounded exponential backoff waiting for the lock,
// then abort self.

// NewPolite returns a polite manager factory with the given maximum
// number of spin rounds (<=0 means the default of 8). The manager is
// stateless (the attempt counter is supplied by the engine), so the
// factory shares one instance across all transactions.
func NewPolite(maxSpins int) CMFactory {
	if maxSpins <= 0 {
		maxSpins = 8
	}
	p := &polite{max: maxSpins}
	return func() ContentionManager { return p }
}

type polite struct{ max int }

func (p *polite) OnLockBusy(tx *Txn, enemy *Txn, attempt int) Resolution {
	if attempt >= p.max {
		return ResolutionAbortSelf
	}
	for i := 0; i < 1<<uint(attempt); i++ {
		runtime.Gosched()
	}
	return ResolutionRetryLock
}
func (p *polite) OnAbort(*Txn) {}
func (p *polite) Name() string { return "polite" }

// ---------------------------------------------------------------------
// Backoff: abort self on conflict but sleep with randomized exponential
// backoff between attempts, bounding livelock probabilistically.

// NewBackoff returns a backoff manager factory. base is the first-retry
// backoff (<=0 means 1µs); cap bounds the exponential growth
// (<=0 means 1ms). Randomness comes from math/rand/v2's per-thread
// generators, so the manager is stateless and the factory shares one
// instance across all transactions.
func NewBackoff(base, cap time.Duration) CMFactory {
	if base <= 0 {
		base = time.Microsecond
	}
	if cap <= 0 {
		cap = time.Millisecond
	}
	b := &backoff{base: base, cap: cap}
	return func() ContentionManager { return b }
}

type backoff struct {
	base, cap time.Duration
}

func (b *backoff) OnLockBusy(*Txn, *Txn, int) Resolution { return ResolutionAbortSelf }

func (b *backoff) OnAbort(tx *Txn) {
	d := b.base << uint(min(tx.Attempt(), 16))
	if d > b.cap {
		d = b.cap
	}
	if d > 0 {
		// Txn.Sleep, not time.Sleep: a cancelled run must not be held
		// hostage by its own backoff — the sleep wakes on cancellation
		// and the run loop surfaces the cancellation immediately after.
		tx.Sleep(time.Duration(rand.Int64N(int64(d)) + 1))
	}
}
func (b *backoff) Name() string { return "backoff" }

// ---------------------------------------------------------------------
// Karma: priority = accumulated work (reads+writes across attempts).
// Higher karma kills the lower-karma enemy; lower karma aborts self.
// Ties favour the lock holder.

// NewKarma returns the karma manager factory.
func NewKarma() CMFactory { return func() ContentionManager { return karma{} } }

type karma struct{}

func (karma) OnLockBusy(tx *Txn, enemy *Txn, attempt int) Resolution {
	if enemy == nil {
		return ResolutionRetryLock // owner gone; lock release imminent
	}
	if tx.Karma() > enemy.Karma() {
		return ResolutionKillEnemy
	}
	return ResolutionAbortSelf
}
func (karma) OnAbort(*Txn) {}
func (karma) Name() string { return "karma" }

// ---------------------------------------------------------------------
// Timestamp ("greedy"): the older transaction (earlier first-attempt
// birth order) wins; the younger aborts.

// NewTimestamp returns the timestamp manager factory.
func NewTimestamp() CMFactory { return func() ContentionManager { return timestampCM{} } }

type timestampCM struct{}

func (timestampCM) OnLockBusy(tx *Txn, enemy *Txn, attempt int) Resolution {
	if enemy == nil {
		return ResolutionRetryLock
	}
	if tx.Birth() < enemy.Birth() {
		return ResolutionKillEnemy
	}
	return ResolutionAbortSelf
}
func (timestampCM) OnAbort(*Txn) {}
func (timestampCM) Name() string { return "timestamp" }

// ---------------------------------------------------------------------
// Aggressive: always kill the enemy. Maximal progress for the requester,
// livelock-prone under symmetry; included for the ablation study.

// NewAggressive returns the aggressive manager factory.
func NewAggressive() CMFactory { return func() ContentionManager { return aggressive{} } }

type aggressive struct{}

func (aggressive) OnLockBusy(tx *Txn, enemy *Txn, attempt int) Resolution {
	if enemy == nil {
		return ResolutionRetryLock
	}
	return ResolutionKillEnemy
}
func (aggressive) OnAbort(*Txn) {}
func (aggressive) Name() string { return "aggressive" }
