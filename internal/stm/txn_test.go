package stm

import (
	"errors"
	"sync"
	"testing"
)

func TestReadInitialValue(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(42)
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		if v.(int) != 42 {
			t.Fatalf("read %v, want 42", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWriteThenReadBack(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		if err := tx.Write(x, 7); err != nil {
			return err
		}
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		if v.(int) != 7 {
			t.Fatalf("read-your-writes returned %v, want 7", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := x.LoadDirect().(int); got != 7 {
		t.Fatalf("committed value %d, want 7", got)
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(1)
	tx := e.Begin(SemanticsDef)
	if err := tx.Write(x, 2); err != nil {
		t.Fatal(err)
	}
	if got := x.LoadDirect().(int); got != 1 {
		t.Fatalf("uncommitted write visible: %d", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := x.LoadDirect().(int); got != 2 {
		t.Fatalf("after commit got %d, want 2", got)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar("keep")
	tx := e.Begin(SemanticsDef)
	if err := tx.Write(x, "discard"); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := x.LoadDirect().(string); got != "keep" {
		t.Fatalf("aborted write leaked: %q", got)
	}
}

func TestUserErrorAbortsAndPropagates(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	boom := errors.New("boom")
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		if err := tx.Write(x, 99); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := x.LoadDirect().(int); got != 0 {
		t.Fatalf("write from failed txn leaked: %d", got)
	}
}

func TestFinishedTxnRejected(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	tx := e.Begin(SemanticsDef)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Read(x); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Read on finished txn: %v, want ErrTxnDone", err)
	}
	if err := tx.Write(x, 1); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("Write on finished txn: %v, want ErrTxnDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double Commit: %v, want ErrTxnDone", err)
	}
}

func TestCrossEngineRejected(t *testing.T) {
	e1 := NewDefaultEngine()
	e2 := NewDefaultEngine()
	x2 := e2.NewVar(0)
	tx := e1.Begin(SemanticsDef)
	if _, err := tx.Read(x2); !errors.Is(err, ErrCrossEngine) {
		t.Fatalf("cross-engine read: %v, want ErrCrossEngine", err)
	}
}

// TestWriteWriteConflict: two overlapping writers to the same variable;
// exactly one order must win and no update may be lost when both
// increment through the Run retry loop.
func TestConcurrentIncrementsLoseNothing(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				err := e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(x)
					if err != nil {
						return err
					}
					return tx.Write(x, v.(int)+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := x.LoadDirect().(int); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestBankInvariant: transfers between accounts preserve the total — the
// classic atomicity test. A checker transaction concurrently reads all
// accounts and must always observe the same sum.
func TestBankInvariant(t *testing.T) {
	e := NewDefaultEngine()
	const accounts = 10
	const initial = 100
	vars := make([]*Var, accounts)
	for i := range vars {
		vars[i] = e.NewVar(initial)
	}
	done := make(chan struct{})
	var transfers sync.WaitGroup
	for w := 0; w < 4; w++ {
		transfers.Add(1)
		go func(seed int) {
			defer transfers.Done()
			r := uint32(seed)
			for i := 0; i < 400; i++ {
				r = r*1103515245 + 12345
				from := int(r>>8) % accounts
				to := int(r>>16) % accounts
				if from == to {
					to = (to + 1) % accounts
				}
				err := e.Run(SemanticsDef, func(tx *Txn) error {
					fv, err := tx.Read(vars[from])
					if err != nil {
						return err
					}
					tv, err := tx.Read(vars[to])
					if err != nil {
						return err
					}
					if err := tx.Write(vars[from], fv.(int)-1); err != nil {
						return err
					}
					return tx.Write(vars[to], tv.(int)+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w + 1)
	}
	// Checker: the total must be invariant in every atomic observation.
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			sum := 0
			err := e.Run(SemanticsDef, func(tx *Txn) error {
				sum = 0
				for _, v := range vars {
					x, err := tx.Read(v)
					if err != nil {
						return err
					}
					sum += x.(int)
				}
				return nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if sum != accounts*initial {
				t.Errorf("observed torn sum %d, want %d", sum, accounts*initial)
				return
			}
		}
	}()
	transfers.Wait()
	close(done)
	checker.Wait()
}

func TestRunRetriesOnConflict(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	tries := 0
	blocker := e.Begin(SemanticsDef)
	if _, err := blocker.Read(x); err != nil {
		t.Fatal(err)
	}
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		tries++
		if tries == 1 {
			// Invalidate our own read set by committing an external
			// write between our read and our commit.
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			other := e.Begin(SemanticsDef)
			if err := other.Write(x, 100); err != nil {
				return err
			}
			if err := other.Commit(); err != nil {
				return err
			}
			return tx.Write(x, v.(int)+1)
		}
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		return tx.Write(x, v.(int)+1)
	})
	blocker.Abort()
	if err != nil {
		t.Fatal(err)
	}
	if tries < 2 {
		t.Fatalf("expected a retry, got %d tries", tries)
	}
	if got := x.LoadDirect().(int); got != 101 {
		t.Fatalf("final = %d, want 101", got)
	}
}

func TestMaxAttempts(t *testing.T) {
	e := NewEngine(Config{MaxAttempts: 3})
	x := e.NewVar(0)
	tries := 0
	err := e.Run(SemanticsDef, func(tx *Txn) error {
		tries++
		// Force a conflict every time.
		if _, err := tx.Read(x); err != nil {
			return err
		}
		other := e.Begin(SemanticsDef)
		if err := other.Write(x, tries); err != nil {
			return err
		}
		if err := other.Commit(); err != nil {
			return err
		}
		return tx.Write(x, -1)
	})
	if !errors.Is(err, ErrTooManyAttempts) {
		t.Fatalf("err = %v, want ErrTooManyAttempts", err)
	}
	if tries != 3 {
		t.Fatalf("tries = %d, want 3", tries)
	}
}

func TestReadTimestampExtension(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(1)
	y := e.NewVar(2)

	tx := e.Begin(SemanticsDef)
	if _, err := tx.Read(x); err != nil {
		t.Fatal(err)
	}
	// Commit a write to y after tx started: y's head version now exceeds
	// tx.rv, so reading y forces an extension — which must succeed since
	// x is untouched.
	w := e.Begin(SemanticsDef)
	if err := w.Write(y, 20); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	v, err := tx.Read(y)
	if err != nil {
		t.Fatalf("extension should have succeeded: %v", err)
	}
	if v.(int) != 20 {
		t.Fatalf("read %v, want 20 (post-extension value)", v)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Extensions == 0 {
		t.Fatal("expected at least one recorded extension")
	}
}

func TestExtensionFailsWhenReadSetInvalid(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(1)
	y := e.NewVar(2)

	tx := e.Begin(SemanticsDef)
	if _, err := tx.Read(x); err != nil {
		t.Fatal(err)
	}
	// Invalidate x AND advance y so tx must extend and fail.
	w := e.Begin(SemanticsDef)
	if err := w.Write(x, 10); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(y, 20); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	_, err := tx.Read(y)
	if !IsRetryable(err) {
		t.Fatalf("expected retryable conflict, got %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	e := NewDefaultEngine()
	x := e.NewVar(0)
	for i := 0; i < 5; i++ {
		if err := e.Run(SemanticsDef, func(tx *Txn) error {
			v, err := tx.Read(x)
			if err != nil {
				return err
			}
			return tx.Write(x, v.(int)+1)
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Commits != 5 {
		t.Fatalf("commits = %d, want 5", s.Commits)
	}
	if s.Reads < 5 || s.Writes < 5 {
		t.Fatalf("reads/writes = %d/%d, want >= 5 each", s.Reads, s.Writes)
	}
	if s.Starts < 5 {
		t.Fatalf("starts = %d, want >= 5", s.Starts)
	}
}
