package stm

import (
	"errors"
	"sync"
	"testing"
)

// The allocation-regression tests lock in the pooled-transaction wins:
// the def read-only path and the snapshot read path must cost at most
// one allocation per operation (in steady state they cost zero — the
// budget of one absorbs a sync.Pool miss after a GC emptied it).

func TestReadOnlyDefAllocs(t *testing.T) {
	e := NewDefaultEngine()
	vars := make([]*Var, 8)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}
	body := func(tx *Txn) error {
		for _, v := range vars {
			if _, err := tx.Read(v); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm the pool and grow the read-set storage to steady state.
	for i := 0; i < 64; i++ {
		if err := e.Run(SemanticsDef, body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := e.Run(SemanticsDef, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("def read-only txn: %.2f allocs/op, want <= 1", avg)
	}
}

func TestSnapshotReadAllocs(t *testing.T) {
	e := NewDefaultEngine()
	vars := make([]*Var, 8)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}
	body := func(tx *Txn) error {
		for _, v := range vars {
			if _, err := tx.Read(v); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < 64; i++ {
		if err := e.Run(SemanticsSnapshot, body); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := e.Run(SemanticsSnapshot, body); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1 {
		t.Errorf("snapshot read-only txn: %.2f allocs/op, want <= 1", avg)
	}
}

// TestSnapshotNeverAbortsUnderKillStorm runs kill-happy aggressive
// writers against snapshot readers over one pooled engine: every kill
// a contention manager delivers goes through a *Txn pointer that may
// already be stale, and the attempt-scoped kill delivery (Txn.killedID)
// must guarantee none of them ever lands on a shell that has been
// recycled into a snapshot reader — the class whose never-abort
// guarantee the paper promises.
func TestSnapshotNeverAbortsUnderKillStorm(t *testing.T) {
	e := NewEngine(Config{DefaultCM: NewAggressive()})
	vars := make([]*Var, 4)
	for i := range vars {
		vars[i] = e.NewVar(i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				// A writer storm with kills...
				_ = e.Run(SemanticsDef, func(tx *Txn) error {
					v, err := tx.Read(vars[(g+i)%len(vars)])
					if err != nil {
						return err
					}
					return tx.Write(vars[(g+i+1)%len(vars)], v)
				})
				// ...interleaved with snapshot readers reusing the same
				// pooled shells.
				if err := e.Run(SemanticsSnapshot, func(tx *Txn) error {
					for _, v := range vars {
						if _, err := tx.Read(v); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					t.Errorf("g%d i%d: snapshot run failed: %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if aborts := e.Stats().Sem(SemanticsSnapshot).Aborts; aborts != 0 {
		t.Fatalf("snapshot class aborted %d times under kill storm; must never abort", aborts)
	}
}

// errPoison is the user error the reuse stress test aborts with.
var errPoison = errors.New("poison: deliberate user abort")

// TestPooledTxnReuseFreshState hammers one engine from many goroutines
// through the pooled Run path, rotating all four semantics and mixing
// commits with user-error aborts, and asserts at every transaction
// entry that nothing leaked from whatever lifecycle previously owned
// the pooled shell: read-your-writes sees no stale buffered write, the
// effective semantics (and hence the mode stack and elastic floor) are
// fresh, and committed state is exactly what this goroutine committed.
// Run under -race (CI does) it also checks the pool handoff itself.
func TestPooledTxnReuseFreshState(t *testing.T) {
	e := NewDefaultEngine()
	shared := e.NewVar(0)
	const goroutines = 8
	const iters = 400

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			private := e.NewVar(0)
			want := 0
			sems := [...]Semantics{SemanticsDef, SemanticsWeak, SemanticsSnapshot, SemanticsIrrevocable}
			for i := 0; i < iters; i++ {
				sem := sems[i%len(sems)]
				// Only the writing optimistic classes abort: snapshot
				// bodies return before the poison point and irrevocable
				// transactions are guaranteed to commit.
				abort := (sem == SemanticsDef || sem == SemanticsWeak) && i%7 == 3
				err := e.Run(sem, func(tx *Txn) error {
					if got := tx.EffectiveSemantics(); got != sem {
						t.Errorf("g%d i%d: effective semantics %v at entry, want %v (mode stack leaked?)", g, i, got, sem)
					}
					// A leaked write set would satisfy this read from a
					// stale buffered value; a leaked read set would
					// break validation accounting.
					v, err := tx.Read(private)
					if err != nil {
						return err
					}
					if v.(int) != want {
						t.Errorf("g%d i%d: private = %v at entry, want %d", g, i, v, want)
					}
					if sem == SemanticsSnapshot {
						return nil // read-only class
					}
					// Exercise the nested-mode stack so a missed reset
					// would be observable next lifecycle.
					tx.PushMode(SemanticsDef)
					sv, err := tx.Read(shared)
					if err != nil {
						tx.PopMode()
						return err
					}
					if err := tx.Write(shared, sv.(int)+1); err != nil {
						tx.PopMode()
						return err
					}
					tx.PopMode()
					if err := tx.Write(private, want+1); err != nil {
						return err
					}
					if abort {
						return errPoison
					}
					return nil
				})
				switch {
				case abort:
					if !errors.Is(err, errPoison) {
						t.Errorf("g%d i%d: aborting run returned %v, want poison", g, i, err)
					}
				case err != nil:
					t.Errorf("g%d i%d: run failed: %v", g, i, err)
				case sem != SemanticsSnapshot:
					want++
				}
			}
			if got := private.LoadDirect().(int); got != want {
				t.Errorf("g%d: final private = %d, want %d", g, got, want)
			}
		}(g)
	}
	wg.Wait()
}
