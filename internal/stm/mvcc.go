package stm

// Snapshot read path (SemanticsSnapshot).
//
// A snapshot transaction reads the committed state at its start
// timestamp by resolving each read against the variable's version chain.
// It therefore never aborts and never interferes with writers — the
// per-transaction liveness guarantee the paper lists as an application
// of polymorphism, and the "multi versioned" semantics of its concluding
// composition question. The engine-wide composition rule that makes this
// safe next to single-version writers: every writer preserves the
// overwritten version on the chain for as long as a registered snapshot
// reader may need it (see snapshotRegistry and Version.trimmed).

// readSnapshot performs one snapshot-mode read.
//
// If the variable is locked, a writer may be mid-publish with a commit
// timestamp taken BEFORE this snapshot started (it locks its write set
// before ticking the clock), so the current head might not yet show a
// version the snapshot must observe. Waiting for the unlock closes that
// window: afterwards, every in-flight commit has a timestamp greater
// than rv and is correctly skipped by the chain resolution. Optimistic
// committers hold their locks only across the short publish loop; an
// irrevocable writer may hold them longer, and snapshot readers of the
// variables it touches wait it out — the price of its no-abort
// guarantee.
func (tx *Txn) readSnapshot(v *Var) (any, error) {
	if err := tx.waitUnlocked(v); err != nil {
		return nil, err
	}
	h := v.head.Load()
	res := h.resolveAt(tx.rv)
	if res == nil {
		// Defensive: cannot happen for a registered snapshot (writers
		// never trim versions a registered reader needs), but fail safe.
		tx.stat(statReadAborts)
		tx.abortCleanup()
		return nil, tx.abortConflict("snapshot history trimmed", v.id)
	}
	if res != h {
		tx.stat(statSnapshotReads)
	}
	return res.val, nil
}
