package stm

// The lock word of a transactional variable packs, into one uint64 that
// can be manipulated with a single atomic operation:
//
//	unlocked: bit 63 = 0, bits 0..62 = version (commit timestamp of the
//	          current head version)
//	locked:   bit 63 = 1, bits 0..62 = id of the owning transaction
//
// Versions and transaction ids are both monotonically increasing counters
// and comfortably fit in 63 bits.

const lockBit = uint64(1) << 63

// directStoreOwner is the reserved lock-word owner id used by
// Var.StoreDirect's CAS-guarded publish. Transaction attempt ids start
// at 1 (see Txn.nextAttemptID), so 0 can never collide with a live
// transaction.
const directStoreOwner = uint64(0)

// packVersion returns the unlocked lock word carrying version v.
func packVersion(v uint64) uint64 { return v &^ lockBit }

// packOwner returns the locked lock word carrying owner transaction id o.
func packOwner(o uint64) uint64 { return o | lockBit }

// isLocked reports whether the lock word is in the locked state.
func isLocked(w uint64) bool { return w&lockBit != 0 }

// wordVersion extracts the version from an unlocked lock word. It must
// only be called when isLocked(w) is false.
func wordVersion(w uint64) uint64 { return w &^ lockBit }

// wordOwner extracts the owning transaction id from a locked lock word.
// It must only be called when isLocked(w) is true.
func wordOwner(w uint64) uint64 { return w &^ lockBit }
