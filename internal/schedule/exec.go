package schedule

import "fmt"

// Result is the outcome of executing a schedule under a synchronization.
type Result struct {
	Accepted bool
	History  History
	Reason   string // diagnosis when rejected
	AbortAt  int    // index of the aborting event, -1 if none
}

func rejected(at int, format string, args ...any) Result {
	return Result{Accepted: false, AbortAt: at, Reason: fmt.Sprintf(format, args...)}
}

// txnState tracks one live transaction during transactional execution.
type txnState struct {
	sem     Sem
	started bool
	// rset holds (register, value read) pairs in read order. Under weak
	// semantics before the first write it is trimmed to the sliding
	// window; afterwards it grows like a def read set.
	rset []Access
	// wset buffers writes (register -> value), applied at commit.
	wset map[Register]int
	// worder preserves write order for the history.
	written bool
	// startMem is the committed state at start (snapshot semantics).
	startMem map[Register]int
}

// ExecMonomorphic executes a transactional schedule under monomorphic
// synchronization: every start(p) is executed as start(def) — the
// paper's clause (i) — and each transaction keeps its whole read set
// current at every access and at commit (single-version opaque TM).
// The schedule is accepted iff no event aborts.
func ExecMonomorphic(s Schedule) Result { return execTransactional(s, true) }

// ExecPolymorphic executes a transactional schedule under polymorphic
// synchronization: each transaction runs the semantics of its start
// parameter (def, weak/elastic, or snapshot).
func ExecPolymorphic(s Schedule) Result { return execTransactional(s, false) }

func execTransactional(s Schedule, mono bool) Result {
	if err := s.WellFormedTransactional(); err != nil {
		return rejected(-1, "ill-formed: %v", err)
	}
	mem := map[Register]int{}
	txns := map[Proc]*txnState{}
	hist := History{Events: make([]Event, 0, len(s.Events))}

	// currentAll reports whether every tracked read value is still the
	// register's committed value (the transaction's own buffered writes
	// do not change mem).
	currentAll := func(t *txnState) bool {
		for _, a := range t.rset {
			if mem[a.Reg] != a.Val {
				return false
			}
		}
		return true
	}

	for i, e := range s.Events {
		he := e
		switch e.Kind {
		case KStart:
			sem := e.Sem
			if mono {
				sem = SemDef // clause (i): start(*) executes as start(def)
				he.Sem = SemDef
			}
			t := &txnState{sem: sem, started: true, wset: map[Register]int{}}
			if sem == SemSnapshot {
				t.startMem = make(map[Register]int, len(mem))
				for k, v := range mem {
					t.startMem[k] = v
				}
			}
			txns[e.P] = t

		case KRead:
			t := txns[e.P]
			if t == nil {
				return rejected(i, "%v: read outside transaction", e.P)
			}
			var val int
			fromWset := false
			if t.sem == SemSnapshot {
				val = t.startMem[e.Reg] // multi-version: value at start
			} else if v, ok := t.wset[e.Reg]; ok {
				val = v // read-your-writes: not a memory read
				fromWset = true
			} else {
				val = mem[e.Reg] // latest committed value
			}
			he.Val = val
			switch {
			case t.sem == SemSnapshot || fromWset:
				// Snapshot never aborts; buffered values need no
				// validation and are not tracked.
			case t.sem == SemWeak && !t.written:
				// Elastic: only the sliding window must stay current.
				if !currentAll(t) {
					return rejected(i, "%v: elastic window invalidated at r(%s)", e.P, e.Reg)
				}
				t.rset = append(t.rset, Access{Kind: KRead, Reg: e.Reg, Val: val})
				if len(t.rset) > 1 {
					t.rset = t.rset[len(t.rset)-1:] // cut: keep the window
				}
			default: // def (and weak after its first write)
				if !currentAll(t) {
					return rejected(i, "%v: read validation failed at r(%s)", e.P, e.Reg)
				}
				t.rset = append(t.rset, Access{Kind: KRead, Reg: e.Reg, Val: val})
			}

		case KWrite:
			t := txns[e.P]
			if t == nil {
				return rejected(i, "%v: write outside transaction", e.P)
			}
			if t.sem == SemSnapshot {
				return rejected(i, "%v: write in snapshot (read-only) transaction", e.P)
			}
			if t.sem == SemWeak && !t.written {
				// The window anchors the write's critical step and is
				// validated from here on like a def read set.
				t.written = true
			}
			t.wset[e.Reg] = e.Val

		case KCommit:
			t := txns[e.P]
			if t == nil {
				return rejected(i, "%v: commit outside transaction", e.P)
			}
			switch {
			case t.sem == SemSnapshot:
				// Read-only; commits unconditionally.
			case t.sem == SemWeak && !t.written:
				// Read-only elastic: every window was validated on the
				// fly; nothing to re-check.
			default:
				if !currentAll(t) {
					return rejected(i, "%v: commit validation failed", e.P)
				}
			}
			for r, v := range t.wset {
				mem[r] = v
			}
			delete(txns, e.P)

		case KLock, KUnlock:
			return rejected(i, "lock event in transactional schedule")
		}
		hist.Events = append(hist.Events, he)
	}
	return Result{Accepted: true, History: hist, AbortAt: -1}
}
