package schedule

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a schedule from the compact textual notation used by the
// paper (and printed by Schedule.String): events separated by
// semicolons or newlines, each of the form
//
//	p1:start(weak)   p2:start(def)   p3:start        (default def)
//	p1:r(x)          p2:w(x,20)      p1:commit
//	p1:lock(x)       p1:unlock(x)
//
// Whitespace is free; '#' starts a comment to end of line. Process
// names are p<N> with N >= 1.
func Parse(src string) (Schedule, error) {
	var out Schedule
	for ln, rawLine := range strings.Split(src, "\n") {
		line := rawLine
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, tok := range strings.Split(line, ";") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			ev, err := parseEvent(tok)
			if err != nil {
				return Schedule{}, fmt.Errorf("line %d: %q: %w", ln+1, tok, err)
			}
			out.Events = append(out.Events, ev)
		}
	}
	if len(out.Events) == 0 {
		return Schedule{}, fmt.Errorf("empty schedule")
	}
	return out, nil
}

func parseEvent(tok string) (Event, error) {
	colon := strings.IndexByte(tok, ':')
	if colon < 0 {
		return Event{}, fmt.Errorf("missing ':' between process and event")
	}
	pstr := strings.TrimSpace(tok[:colon])
	if len(pstr) < 2 || pstr[0] != 'p' {
		return Event{}, fmt.Errorf("bad process %q (want pN)", pstr)
	}
	pn, err := strconv.Atoi(pstr[1:])
	if err != nil || pn < 1 {
		return Event{}, fmt.Errorf("bad process number %q", pstr)
	}
	ev := Event{P: Proc(pn)}

	body := strings.TrimSpace(tok[colon+1:])
	name := body
	var arg string
	if open := strings.IndexByte(body, '('); open >= 0 {
		if !strings.HasSuffix(body, ")") {
			return Event{}, fmt.Errorf("unbalanced parentheses in %q", body)
		}
		name = body[:open]
		arg = strings.TrimSpace(body[open+1 : len(body)-1])
	}

	switch name {
	case "start":
		ev.Kind = KStart
		switch arg {
		case "", "def", "⊥", "*":
			ev.Sem = SemDef
		case "weak":
			ev.Sem = SemWeak
		case "snapshot":
			ev.Sem = SemSnapshot
		default:
			return Event{}, fmt.Errorf("unknown semantics %q", arg)
		}
	case "commit":
		ev.Kind = KCommit
		if arg != "" {
			return Event{}, fmt.Errorf("commit takes no argument")
		}
	case "r":
		ev.Kind = KRead
		if arg == "" {
			return Event{}, fmt.Errorf("read needs a register")
		}
		ev.Reg = Register(arg)
	case "w":
		ev.Kind = KWrite
		parts := strings.SplitN(arg, ",", 2)
		if parts[0] == "" {
			return Event{}, fmt.Errorf("write needs a register")
		}
		ev.Reg = Register(strings.TrimSpace(parts[0]))
		if len(parts) == 2 {
			v, err := strconv.Atoi(strings.TrimSpace(parts[1]))
			if err != nil {
				return Event{}, fmt.Errorf("bad write value %q", parts[1])
			}
			ev.Val = v
		} else {
			// Unvalued writes get a synthetic unique value per position
			// when the schedule is completed by the caller; default to
			// process*1000 here for determinism.
			ev.Val = pn * 1000
		}
	case "lock":
		ev.Kind = KLock
		if arg == "" {
			return Event{}, fmt.Errorf("lock needs a register")
		}
		ev.Reg = Register(arg)
	case "unlock":
		ev.Kind = KUnlock
		if arg == "" {
			return Event{}, fmt.Errorf("unlock needs a register")
		}
		ev.Reg = Register(arg)
	default:
		return Event{}, fmt.Errorf("unknown event %q", name)
	}
	return ev, nil
}
