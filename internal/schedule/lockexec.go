package schedule

// OpSem declares the semantics of one operation: the assignment of its
// accesses (indexed in program order, counting only reads and writes) to
// critical steps — the paper's "assignment of accesses to critical
// steps". Steps may share accesses, as in the sorted-list contains whose
// pairs both contain r(y).
type OpSem struct {
	Steps [][]int
}

// AtomicSem is the all-in-one-step semantics of n accesses — what a
// monomorphic transaction enforces.
func AtomicSem(n int) OpSem {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return OpSem{Steps: [][]int{idx}}
}

// PairsSem is the consecutive-pairs semantics of n accesses — the
// paper's γ1={a0,a1}, γ2={a1,a2}, … (a single step when n < 2).
func PairsSem(n int) OpSem {
	if n < 2 {
		return AtomicSem(n)
	}
	steps := make([][]int, 0, n-1)
	for i := 0; i+1 < n; i++ {
		steps = append(steps, []int{i, i + 1})
	}
	return OpSem{Steps: steps}
}

// ExecLockBased executes a lock-based schedule literally: lock events
// acquire per-register locks (a lock held by another process means the
// interleaving cannot occur and the schedule is rejected), accesses must
// be covered by a lock on their register, writes apply in place, reads
// return the current value. The history is then checked for validity:
// it must be equivalent to a sequential history of the operations'
// declared critical steps (sems maps each process to its operation's
// semantics; missing entries default to atomic). Each step's atomicity
// point is confined to the span of its accesses, which the held locks
// make exclusive.
func ExecLockBased(s Schedule, sems map[Proc]OpSem) Result {
	if err := s.WellFormedLockBased(); err != nil {
		return rejected(-1, "ill-formed: %v", err)
	}
	mem := map[Register]int{}
	holder := map[Register]Proc{}
	hist := History{Events: make([]Event, 0, len(s.Events))}

	// accesses[p] collects p's executed accesses with their positions.
	type posAccess struct {
		a   Access
		pos int
	}
	accesses := map[Proc][]posAccess{}

	for i, e := range s.Events {
		he := e
		switch e.Kind {
		case KLock:
			if h, held := holder[e.Reg]; held && h != e.P {
				return rejected(i, "%v: lock(%s) while held by %v — interleaving impossible", e.P, e.Reg, h)
			}
			holder[e.Reg] = e.P
		case KUnlock:
			if holder[e.Reg] != e.P {
				return rejected(i, "%v: unlock(%s) not held", e.P, e.Reg)
			}
			delete(holder, e.Reg)
		case KRead:
			if holder[e.Reg] != e.P {
				return rejected(i, "%v: r(%s) without holding its lock", e.P, e.Reg)
			}
			he.Val = mem[e.Reg]
			accesses[e.P] = append(accesses[e.P], posAccess{Access{KRead, e.Reg, he.Val}, i})
		case KWrite:
			if holder[e.Reg] != e.P {
				return rejected(i, "%v: w(%s) without holding its lock", e.P, e.Reg)
			}
			mem[e.Reg] = e.Val
			accesses[e.P] = append(accesses[e.P], posAccess{Access{KWrite, e.Reg, e.Val}, i})
		case KStart, KCommit:
			return rejected(i, "transactional event in lock-based schedule")
		}
		hist.Events = append(hist.Events, he)
	}

	// Build critical steps from the declared semantics and check
	// sequential equivalence.
	var steps []Step
	for p, pas := range accesses {
		sem, ok := sems[p]
		if !ok {
			sem = AtomicSem(len(pas))
		}
		for si, idxs := range sem.Steps {
			st := Step{P: p, Index: si, Lo: len(s.Events), Hi: -1}
			for _, ai := range idxs {
				if ai < 0 || ai >= len(pas) {
					return rejected(-1, "%v: semantics references access %d of %d", p, ai, len(pas))
				}
				pa := pas[ai]
				st.Accesses = append(st.Accesses, pa.a)
				if pa.pos < st.Lo {
					st.Lo = pa.pos
				}
				if pa.pos > st.Hi {
					st.Hi = pa.pos
				}
			}
			steps = append(steps, st)
		}
	}
	if !SequentiallyEquivalent(steps) {
		return Result{Accepted: false, History: hist, AbortAt: -1,
			Reason: "history not equivalent to a sequential history of the declared critical steps"}
	}
	return Result{Accepted: true, History: hist, AbortAt: -1}
}
