package schedule

// This file encodes the paper's Figure 1 — the witness schedule
// "accepted by lock-based and polymorphic transactions but not by
// monomorphic transactions" — in both its lock-based and transactional
// renditions, exactly event for event.
//
// Three processes over registers x, y, z, all initially 0:
//
//	p1 runs a sorted-linked-list-style search r(x), r(y), r(z) whose
//	   declared semantics is the pairs γ1={r(x),r(y)}, γ2={r(y),r(z)}
//	   (hand-over-hand locking / start(weak));
//	p3 writes z (w(z,30)) in the middle of the search;
//	p2 overwrites x (w(x,20)) after p1 has moved past it.
//
// No single point of the execution has the values returned by r(x) and
// r(z) simultaneously present once both writers commit in that order
// relative to p1's reads under commit-time currency — which is why every
// monomorphic transaction aborts — while each pair is atomic at some
// point, which locks and elastic transactions both exploit.

// Figure-1 process names.
const (
	P1 Proc = 1
	P2 Proc = 2
	P3 Proc = 3
)

// Figure-1 written values.
const (
	ValZ3 = 30 // value p3 writes to z
	ValX2 = 20 // value p2 writes to x
)

// Figure1Lock returns the lock-based schedule of Figure 1 (left side).
func Figure1Lock() Schedule {
	return Schedule{Events: []Event{
		{P: P1, Kind: KLock, Reg: "x"},
		{P: P1, Kind: KRead, Reg: "x"},
		{P: P1, Kind: KLock, Reg: "y"},
		{P: P3, Kind: KLock, Reg: "z"},
		{P: P3, Kind: KWrite, Reg: "z", Val: ValZ3},
		{P: P1, Kind: KRead, Reg: "y"},
		{P: P3, Kind: KUnlock, Reg: "z"},
		{P: P1, Kind: KUnlock, Reg: "x"},
		{P: P2, Kind: KLock, Reg: "x"},
		{P: P2, Kind: KWrite, Reg: "x", Val: ValX2},
		{P: P1, Kind: KLock, Reg: "z"},
		{P: P2, Kind: KUnlock, Reg: "x"},
		{P: P1, Kind: KRead, Reg: "z"},
		{P: P1, Kind: KUnlock, Reg: "y"},
		{P: P1, Kind: KUnlock, Reg: "z"},
	}}
}

// Figure1LockSems returns the declared operation semantics of the
// lock-based Figure 1: p1's three reads have pairs semantics (the
// hand-over-hand invariant), the writers are single-access operations.
func Figure1LockSems() map[Proc]OpSem {
	return map[Proc]OpSem{
		P1: PairsSem(3),
		P2: AtomicSem(1),
		P3: AtomicSem(1),
	}
}

// Figure1TM returns the transactional schedule of Figure 1 (right
// side): p1 runs start(weak); p2 and p3 run start(def).
func Figure1TM() Schedule {
	return Schedule{Events: []Event{
		{P: P1, Kind: KStart, Sem: SemWeak},
		{P: P1, Kind: KRead, Reg: "x"},
		{P: P3, Kind: KStart, Sem: SemDef},
		{P: P3, Kind: KWrite, Reg: "z", Val: ValZ3},
		{P: P1, Kind: KRead, Reg: "y"},
		{P: P3, Kind: KCommit},
		{P: P2, Kind: KStart, Sem: SemDef},
		{P: P2, Kind: KWrite, Reg: "x", Val: ValX2},
		{P: P2, Kind: KCommit},
		{P: P1, Kind: KRead, Reg: "z"},
		{P: P1, Kind: KCommit},
	}}
}
