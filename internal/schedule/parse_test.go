package schedule

import (
	"strings"
	"testing"
)

func TestParseFigure1RoundTrip(t *testing.T) {
	want := Figure1TM()
	got, err := Parse(want.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("len = %d, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestParseLockScheduleRoundTrip(t *testing.T) {
	want := Figure1Lock()
	got, err := Parse(want.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Events {
		if got.Events[i] != want.Events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got.Events[i], want.Events[i])
		}
	}
}

func TestParseMultilineWithComments(t *testing.T) {
	src := `
# Figure 1, hand-written
p1:start(weak)
p1:r(x)        # the search begins
p3:start(def); p3:w(z,30); p1:r(y); p3:commit
p2:start(def); p2:w(x,20); p2:commit
p1:r(z); p1:commit
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 11 {
		t.Fatalf("events = %d, want 11", len(s.Events))
	}
	r := ExecPolymorphic(s)
	if !r.Accepted {
		t.Fatalf("hand-written Figure 1 rejected by poly: %s", r.Reason)
	}
	if ExecMonomorphic(s).Accepted {
		t.Fatal("hand-written Figure 1 accepted by mono")
	}
}

func TestParseDefaultsAndAliases(t *testing.T) {
	s, err := Parse("p1:start; p1:r(x); p1:commit")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Sem != SemDef {
		t.Fatal("bare start must default to def")
	}
	s, err = Parse("p1:start(*); p1:w(x); p1:commit")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Sem != SemDef {
		t.Fatal("start(*) must map to def")
	}
	if s.Events[1].Val == 0 {
		t.Fatal("unvalued write must get a synthetic value")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"start(weak)",        // no process
		"q1:start",           // bad process letter
		"p0:start",           // process numbers start at 1
		"p1:start(turbo)",    // unknown semantics
		"p1:frobnicate(x)",   // unknown event
		"p1:r()",             // read without register
		"p1:w(x,notanumber)", // bad value
		"p1:commit(now)",     // commit takes no argument
		"p1:lock",            // lock without register
		"p1:r(x",             // unbalanced parens
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseErrorMentionsLine(t *testing.T) {
	_, err := Parse("p1:start\np1:oops\np1:commit")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want line number", err)
	}
}
