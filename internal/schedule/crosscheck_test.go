package schedule

import (
	"math/rand"
	"testing"
)

// buildSteps derives the critical steps of an executed transactional
// history: one step per def operation (interval from its first access to
// its commit), consecutive-pair steps for weak operations (interval from
// the first to the second access of the pair, extended to the commit for
// the final write-anchored step). Used to cross-check the operational
// executors against the declarative SequentiallyEquivalent definition.
func buildSteps(h History) []Step {
	type acc struct {
		a   Access
		pos int
	}
	perProc := map[Proc][]acc{}
	commitPos := map[Proc]int{}
	params := map[Proc]Sem{}
	for i, e := range h.Events {
		switch e.Kind {
		case KStart:
			params[e.P] = e.Sem
		case KCommit:
			commitPos[e.P] = i
		case KRead, KWrite:
			perProc[e.P] = append(perProc[e.P], acc{Access{e.Kind, e.Reg, e.Val}, i})
		}
	}
	var steps []Step
	for p, as := range perProc {
		// A weak operation is elastic only over its read prefix: pairs
		// of consecutive reads up to the first write; the window read
		// plus everything from the first write on form one final
		// critical step anchored at commit (the executor degrades to
		// def there).
		firstWrite := len(as)
		for i, a := range as {
			if a.a.Kind == KWrite {
				firstWrite = i
				break
			}
		}
		if params[p] == SemWeak && firstWrite >= 1 {
			idx := 0
			for i := 0; i+1 < firstWrite; i++ {
				steps = append(steps, Step{P: p, Index: idx,
					Accesses: []Access{as[i].a, as[i+1].a},
					Lo:       as[i].pos, Hi: as[i+1].pos})
				idx++
			}
			if firstWrite == len(as) {
				// Read-only: the pairs are the whole semantics; a
				// single read is its own step.
				if len(as) == 1 {
					steps = append(steps, Step{P: p, Index: idx,
						Accesses: []Access{as[0].a},
						Lo:       as[0].pos, Hi: as[0].pos})
				}
			} else {
				// Final step: the window read plus everything from the
				// first write on, anchored at commit.
				final := Step{P: p, Index: idx, Lo: as[firstWrite-1].pos, Hi: commitPos[p]}
				for i := firstWrite - 1; i < len(as); i++ {
					final.Accesses = append(final.Accesses, as[i].a)
				}
				steps = append(steps, final)
			}
		} else {
			st := Step{P: p, Index: 0, Lo: as[0].pos, Hi: commitPos[p]}
			for _, a := range as {
				st.Accesses = append(st.Accesses, a.a)
			}
			steps = append(steps, st)
		}
	}
	return steps
}

// randomTxnSchedule builds a random well-formed transactional schedule
// with nops operations of 1..3 accesses over {x,y,z}.
func randomTxnSchedule(rng *rand.Rand, nops int, params []Sem) Schedule {
	regs := []Register{"x", "y", "z"}
	seqs := make([][]Event, nops)
	for i := 0; i < nops; i++ {
		p := Proc(i + 1)
		n := 1 + rng.Intn(3)
		evs := []Event{{P: p, Kind: KStart, Sem: params[rng.Intn(len(params))]}}
		for j := 0; j < n; j++ {
			reg := regs[rng.Intn(len(regs))]
			if rng.Intn(2) == 0 {
				evs = append(evs, Event{P: p, Kind: KRead, Reg: reg})
			} else {
				evs = append(evs, Event{P: p, Kind: KWrite, Reg: reg, Val: (i+1)*100 + j + 1})
			}
		}
		seqs[i] = append(evs, Event{P: p, Kind: KCommit})
	}
	idx := make([]int, nops)
	var out []Event
	for {
		var cand []int
		for i := range seqs {
			if idx[i] < len(seqs[i]) {
				cand = append(cand, i)
			}
		}
		if len(cand) == 0 {
			return Schedule{Events: out}
		}
		c := cand[rng.Intn(len(cand))]
		out = append(out, seqs[c][idx[c]])
		idx[c]++
	}
}

// TestMonoAcceptanceImpliesSequentialEquivalence: every schedule the
// monomorphic executor accepts yields a history equivalent to a
// sequential history of whole-operation critical steps — the paper's
// validity definition. This cross-validates the operational executor
// against the declarative checker.
func TestMonoAcceptanceImpliesSequentialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	accepted := 0
	for i := 0; i < 3000; i++ {
		s := randomTxnSchedule(rng, 2+rng.Intn(2), []Sem{SemDef})
		r := ExecMonomorphic(s)
		if !r.Accepted {
			continue
		}
		accepted++
		if !SequentiallyEquivalent(buildSteps(r.History)) {
			t.Fatalf("mono accepted a non-serializable history:\n%s", r.History)
		}
	}
	if accepted == 0 {
		t.Fatal("no schedules accepted — generator broken")
	}
	t.Logf("cross-checked %d accepted histories", accepted)
}

// TestPolyAcceptanceImpliesStepEquivalence: same cross-check for the
// polymorphic executor under its declared (pairwise for weak) steps.
func TestPolyAcceptanceImpliesStepEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	accepted := 0
	for i := 0; i < 3000; i++ {
		s := randomTxnSchedule(rng, 2+rng.Intn(2), []Sem{SemDef, SemWeak})
		r := ExecPolymorphic(s)
		if !r.Accepted {
			continue
		}
		accepted++
		if !SequentiallyEquivalent(buildSteps(r.History)) {
			t.Fatalf("poly accepted a history violating its declared critical steps:\n%s", r.History)
		}
	}
	if accepted == 0 {
		t.Fatal("no schedules accepted — generator broken")
	}
	t.Logf("cross-checked %d accepted histories", accepted)
}

// TestSerialSchedulesAlwaysAccepted: operations run one after another
// are accepted by both transactional synchronizations, whatever the
// parameters — the baseline sanity of any synchronization.
func TestSerialSchedulesAlwaysAccepted(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	regs := []Register{"x", "y"}
	params := []Sem{SemDef, SemWeak, SemSnapshot}
	for i := 0; i < 500; i++ {
		nops := 2 + rng.Intn(3)
		var evs []Event
		for p := 1; p <= nops; p++ {
			sem := params[rng.Intn(len(params))]
			evs = append(evs, Event{P: Proc(p), Kind: KStart, Sem: sem})
			n := 1 + rng.Intn(3)
			for j := 0; j < n; j++ {
				reg := regs[rng.Intn(len(regs))]
				if sem != SemSnapshot && rng.Intn(2) == 0 {
					evs = append(evs, Event{P: Proc(p), Kind: KWrite, Reg: reg, Val: p*100 + j})
				} else {
					evs = append(evs, Event{P: Proc(p), Kind: KRead, Reg: reg})
				}
			}
			evs = append(evs, Event{P: Proc(p), Kind: KCommit})
		}
		s := Schedule{Events: evs}
		if r := ExecMonomorphic(s); !r.Accepted {
			t.Fatalf("mono rejected a serial schedule: %s (%s)", s, r.Reason)
		}
		if r := ExecPolymorphic(s); !r.Accepted {
			t.Fatalf("poly rejected a serial schedule: %s (%s)", s, r.Reason)
		}
	}
}
