package schedule

import (
	"strings"
	"testing"
)

// --- well-formedness -------------------------------------------------

func TestWellFormedTransactional(t *testing.T) {
	s := Figure1TM()
	if err := s.WellFormedTransactional(); err != nil {
		t.Fatalf("Figure 1 TM schedule must be well-formed: %v", err)
	}
}

func TestIllFormedTransactional(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"access outside txn", []Event{{P: 1, Kind: KRead, Reg: "x"}}},
		{"commit without start", []Event{{P: 1, Kind: KCommit}}},
		{"nested start", []Event{
			{P: 1, Kind: KStart}, {P: 1, Kind: KStart}}},
		{"unterminated txn", []Event{
			{P: 1, Kind: KStart}, {P: 1, Kind: KRead, Reg: "x"}}},
		{"lock event", []Event{
			{P: 1, Kind: KStart}, {P: 1, Kind: KLock, Reg: "x"}}},
	}
	for _, c := range cases {
		if err := (Schedule{Events: c.events}).WellFormedTransactional(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestWellFormedLockBased(t *testing.T) {
	if err := Figure1Lock().WellFormedLockBased(); err != nil {
		t.Fatalf("Figure 1 lock schedule must be well-formed: %v", err)
	}
}

func TestIllFormedLockBased(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
	}{
		{"unlock without lock", []Event{{P: 1, Kind: KUnlock, Reg: "x"}}},
		{"never unlocked", []Event{{P: 1, Kind: KLock, Reg: "x"}}},
		{"re-lock held", []Event{
			{P: 1, Kind: KLock, Reg: "x"}, {P: 1, Kind: KLock, Reg: "x"}}},
		{"start event", []Event{{P: 1, Kind: KStart}}},
	}
	for _, c := range cases {
		if err := (Schedule{Events: c.events}).WellFormedLockBased(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// --- Figure 1: the paper's central claim ------------------------------

func TestFigure1AcceptedByLocks(t *testing.T) {
	r := ExecLockBased(Figure1Lock(), Figure1LockSems())
	if !r.Accepted {
		t.Fatalf("lock-based must accept Figure 1: %s", r.Reason)
	}
	// p1 must have observed x=0, y=0, z=30 — the hand-over-hand values.
	vals := readValues(r.History, P1)
	if vals["x"] != 0 || vals["y"] != 0 || vals["z"] != ValZ3 {
		t.Fatalf("p1 observed %v, want x=0 y=0 z=%d", vals, ValZ3)
	}
}

func TestFigure1RejectedByMonomorphic(t *testing.T) {
	r := ExecMonomorphic(Figure1TM())
	if r.Accepted {
		t.Fatal("monomorphic synchronization must reject Figure 1")
	}
	if r.AbortAt < 0 {
		t.Fatal("expected an aborting event index")
	}
	if !strings.Contains(r.Reason, "read validation") {
		t.Fatalf("unexpected reason: %s", r.Reason)
	}
}

func TestFigure1AcceptedByPolymorphic(t *testing.T) {
	r := ExecPolymorphic(Figure1TM())
	if !r.Accepted {
		t.Fatalf("polymorphic synchronization must accept Figure 1: %s", r.Reason)
	}
	vals := readValues(r.History, P1)
	if vals["x"] != 0 || vals["y"] != 0 || vals["z"] != ValZ3 {
		t.Fatalf("p1 observed %v, want x=0 y=0 z=%d", vals, ValZ3)
	}
}

// TestFigure1PolyMatchesEngine: the schedule-level verdicts must agree
// with the real engine behaviour (TestFigure1EngineLevel in
// internal/stm); here we additionally check the poly history equals the
// lock history on read values — the two accepting synchronizations
// observe the same world.
func TestFigure1PolyAndLockAgree(t *testing.T) {
	lock := ExecLockBased(Figure1Lock(), Figure1LockSems())
	poly := ExecPolymorphic(Figure1TM())
	lv, pv := readValues(lock.History, P1), readValues(poly.History, P1)
	for _, reg := range []Register{"x", "y", "z"} {
		if lv[reg] != pv[reg] {
			t.Fatalf("lock and poly disagree on %s: %d vs %d", reg, lv[reg], pv[reg])
		}
	}
}

func readValues(h History, p Proc) map[Register]int {
	out := map[Register]int{}
	for _, e := range h.Events {
		if e.P == p && e.Kind == KRead {
			out[e.Reg] = e.Val
		}
	}
	return out
}

// --- executor unit behaviour ------------------------------------------

func TestMonoAcceptsSerialSchedule(t *testing.T) {
	s := Schedule{Events: []Event{
		{P: 1, Kind: KStart}, {P: 1, Kind: KWrite, Reg: "x", Val: 1}, {P: 1, Kind: KCommit},
		{P: 2, Kind: KStart}, {P: 2, Kind: KRead, Reg: "x"}, {P: 2, Kind: KCommit},
	}}
	r := ExecMonomorphic(s)
	if !r.Accepted {
		t.Fatalf("serial schedule rejected: %s", r.Reason)
	}
	if v := readValues(r.History, 2)["x"]; v != 1 {
		t.Fatalf("p2 read %d, want 1", v)
	}
}

func TestMonoRejectsInvalidatedRead(t *testing.T) {
	// p1 reads x, p2 commits a write to x, p1 reads y -> validation of
	// {x} fails.
	s := Schedule{Events: []Event{
		{P: 1, Kind: KStart},
		{P: 1, Kind: KRead, Reg: "x"},
		{P: 2, Kind: KStart},
		{P: 2, Kind: KWrite, Reg: "x", Val: 9},
		{P: 2, Kind: KCommit},
		{P: 1, Kind: KRead, Reg: "y"},
		{P: 1, Kind: KCommit},
	}}
	if r := ExecMonomorphic(s); r.Accepted {
		t.Fatal("mono must reject: read set invalidated mid-transaction")
	}
	// The same schedule with p1 weak is accepted by poly: the window
	// after r(x) is {x}, and r(y) validates it... x was overwritten, so
	// weak must also reject here (the window itself died).
	s.Events[0].Sem = SemWeak
	if r := ExecPolymorphic(s); r.Accepted {
		t.Fatal("weak must also reject when the window itself is invalidated")
	}
}

func TestWeakAcceptsCutScenario(t *testing.T) {
	// p1(weak) reads x then y; p2 overwrites x (outside the window);
	// p1 reads z: accepted, unlike mono.
	s := Schedule{Events: []Event{
		{P: 1, Kind: KStart, Sem: SemWeak},
		{P: 1, Kind: KRead, Reg: "x"},
		{P: 1, Kind: KRead, Reg: "y"},
		{P: 2, Kind: KStart},
		{P: 2, Kind: KWrite, Reg: "x", Val: 9},
		{P: 2, Kind: KCommit},
		{P: 1, Kind: KRead, Reg: "z"},
		{P: 1, Kind: KCommit},
	}}
	if r := ExecPolymorphic(s); !r.Accepted {
		t.Fatalf("poly must accept the cut scenario: %s", r.Reason)
	}
	if r := ExecMonomorphic(s); r.Accepted {
		t.Fatal("mono must reject the cut scenario")
	}
}

func TestWeakBecomesDefAfterWrite(t *testing.T) {
	// p1(weak) reads x, writes q, reads y; p2 then overwrites y before
	// p1 commits -> commit validation fails even under weak.
	s := Schedule{Events: []Event{
		{P: 1, Kind: KStart, Sem: SemWeak},
		{P: 1, Kind: KRead, Reg: "x"},
		{P: 1, Kind: KWrite, Reg: "q", Val: 5},
		{P: 1, Kind: KRead, Reg: "y"},
		{P: 2, Kind: KStart},
		{P: 2, Kind: KWrite, Reg: "y", Val: 9},
		{P: 2, Kind: KCommit},
		{P: 1, Kind: KCommit},
	}}
	if r := ExecPolymorphic(s); r.Accepted {
		t.Fatal("weak with a write must validate at commit and reject")
	}
}

func TestSnapshotSemReadsStartState(t *testing.T) {
	s := Schedule{Events: []Event{
		{P: 2, Kind: KStart}, {P: 2, Kind: KWrite, Reg: "x", Val: 7}, {P: 2, Kind: KCommit},
		{P: 1, Kind: KStart, Sem: SemSnapshot},
		{P: 3, Kind: KStart}, {P: 3, Kind: KWrite, Reg: "x", Val: 8}, {P: 3, Kind: KCommit},
		{P: 1, Kind: KRead, Reg: "x"},
		{P: 1, Kind: KCommit},
	}}
	r := ExecPolymorphic(s)
	if !r.Accepted {
		t.Fatalf("snapshot schedule rejected: %s", r.Reason)
	}
	if v := readValues(r.History, 1)["x"]; v != 7 {
		t.Fatalf("snapshot read %d, want 7 (value at start)", v)
	}
	// Under mono the same schedule runs as def: the read returns 8 and
	// is accepted (single read, current at commit).
	r = ExecMonomorphic(s)
	if !r.Accepted {
		t.Fatalf("mono: %s", r.Reason)
	}
	if v := readValues(r.History, 1)["x"]; v != 8 {
		t.Fatalf("mono read %d, want 8 (latest committed)", v)
	}
}

func TestSnapshotWriteRejectedBySchedExec(t *testing.T) {
	s := Schedule{Events: []Event{
		{P: 1, Kind: KStart, Sem: SemSnapshot},
		{P: 1, Kind: KWrite, Reg: "x", Val: 1},
		{P: 1, Kind: KCommit},
	}}
	if r := ExecPolymorphic(s); r.Accepted {
		t.Fatal("write in snapshot transaction must be rejected")
	}
}

func TestReadYourWritesNotValidated(t *testing.T) {
	// p1 writes x then reads it back (buffered value, not a memory
	// read); p2's commit to x must not abort p1's read-back, but p1's
	// commit has no memory reads to validate, so it commits and
	// overwrites.
	s := Schedule{Events: []Event{
		{P: 1, Kind: KStart},
		{P: 1, Kind: KWrite, Reg: "x", Val: 5},
		{P: 2, Kind: KStart},
		{P: 2, Kind: KWrite, Reg: "x", Val: 6},
		{P: 2, Kind: KCommit},
		{P: 1, Kind: KRead, Reg: "x"},
		{P: 1, Kind: KCommit},
	}}
	r := ExecMonomorphic(s)
	if !r.Accepted {
		t.Fatalf("read-your-writes schedule rejected: %s", r.Reason)
	}
	if v := readValues(r.History, 1)["x"]; v != 5 {
		t.Fatalf("read-back = %d, want 5 (own buffered write)", v)
	}
}

// --- lock executor ----------------------------------------------------

func TestLockExecRejectsConflictingLock(t *testing.T) {
	s := Schedule{Events: []Event{
		{P: 1, Kind: KLock, Reg: "x"},
		{P: 2, Kind: KLock, Reg: "x"}, // impossible interleaving
		{P: 1, Kind: KUnlock, Reg: "x"},
		{P: 2, Kind: KUnlock, Reg: "x"},
	}}
	if r := ExecLockBased(s, nil); r.Accepted {
		t.Fatal("conflicting lock must reject the interleaving")
	}
}

func TestLockExecRequiresCoverage(t *testing.T) {
	s := Schedule{Events: []Event{
		{P: 1, Kind: KRead, Reg: "x"},
	}}
	if r := ExecLockBased(s, nil); r.Accepted {
		t.Fatal("access without holding the lock must be rejected")
	}
}

func TestLockExecRejectsNonSerializable(t *testing.T) {
	// Two atomic operations that each read both registers interleaved
	// with writes so that no sequential order justifies the values:
	// p1 reads x=0 then y=1 (after p2 wrote both x and y) — with atomic
	// semantics for p1 the two reads bracket p2's atomic double write.
	s := Schedule{Events: []Event{
		{P: 1, Kind: KLock, Reg: "x"},
		{P: 1, Kind: KRead, Reg: "x"}, // 0
		{P: 1, Kind: KUnlock, Reg: "x"},
		{P: 2, Kind: KLock, Reg: "x"},
		{P: 2, Kind: KLock, Reg: "y"},
		{P: 2, Kind: KWrite, Reg: "x", Val: 1},
		{P: 2, Kind: KWrite, Reg: "y", Val: 1},
		{P: 2, Kind: KUnlock, Reg: "x"},
		{P: 2, Kind: KUnlock, Reg: "y"},
		{P: 1, Kind: KLock, Reg: "y"},
		{P: 1, Kind: KRead, Reg: "y"}, // 1
		{P: 1, Kind: KUnlock, Reg: "y"},
	}}
	sems := map[Proc]OpSem{1: AtomicSem(2), 2: AtomicSem(2)}
	if r := ExecLockBased(s, sems); r.Accepted {
		t.Fatal("atomic semantics for p1 must reject x=0,y=1")
	}
	// With pairs (= single pair = both in one step) it is the same; but
	// declaring p1's reads as two independent singleton steps accepts.
	sems[1] = OpSem{Steps: [][]int{{0}, {1}}}
	if r := ExecLockBased(s, sems); !r.Accepted {
		t.Fatalf("singleton steps must accept: %s", r.Reason)
	}
}

// --- sequential equivalence checker ------------------------------------

func TestSequentiallyEquivalentBasics(t *testing.T) {
	// One writer step then one reader step.
	steps := []Step{
		{P: 1, Index: 0, Accesses: []Access{{KWrite, "x", 5}}, Lo: 0, Hi: 0},
		{P: 2, Index: 0, Accesses: []Access{{KRead, "x", 5}}, Lo: 1, Hi: 1},
	}
	if !SequentiallyEquivalent(steps) {
		t.Fatal("trivial write-then-read must be equivalent")
	}
	// Reader claims a value nobody wrote.
	steps[1].Accesses[0].Val = 6
	if SequentiallyEquivalent(steps) {
		t.Fatal("read of unwritten value must not be equivalent")
	}
}

func TestSequentiallyEquivalentRespectsIntervals(t *testing.T) {
	// The reader's interval ends before the writer's begins, so the
	// reader cannot be ordered after the writer.
	steps := []Step{
		{P: 1, Index: 0, Accesses: []Access{{KWrite, "x", 5}}, Lo: 10, Hi: 10},
		{P: 2, Index: 0, Accesses: []Access{{KRead, "x", 5}}, Lo: 0, Hi: 1},
	}
	if SequentiallyEquivalent(steps) {
		t.Fatal("interval constraint violated")
	}
}

func TestSequentiallyEquivalentProgramOrder(t *testing.T) {
	// Same process: step 1 must precede step 0 is impossible.
	steps := []Step{
		{P: 1, Index: 1, Accesses: []Access{{KRead, "x", 5}}, Lo: 0, Hi: 20},
		{P: 1, Index: 0, Accesses: []Access{{KRead, "x", 0}}, Lo: 0, Hi: 20},
		{P: 2, Index: 0, Accesses: []Access{{KWrite, "x", 5}}, Lo: 0, Hi: 20},
	}
	// Legal order exists: p1/0 (x=0), p2 write, p1/1 (x=5).
	if !SequentiallyEquivalent(steps) {
		t.Fatal("expected an order respecting program order")
	}
	// Now make it impossible: step 0 needs 5, step 1 needs 0.
	steps[0].Accesses[0].Val = 0
	steps[1].Accesses[0].Val = 5
	if SequentiallyEquivalent(steps) {
		t.Fatal("no order should satisfy read 5 before read 0 in program order")
	}
}

func TestIntraStepReadYourWrites(t *testing.T) {
	steps := []Step{
		{P: 1, Index: 0, Accesses: []Access{
			{KWrite, "x", 7}, {KRead, "x", 7},
		}, Lo: 0, Hi: 5},
	}
	if !SequentiallyEquivalent(steps) {
		t.Fatal("intra-step write must be visible to later intra-step read")
	}
}

// --- rendering ----------------------------------------------------------

func TestGridRendering(t *testing.T) {
	g := Figure1TM().Grid()
	if !strings.Contains(g, "start(weak)") {
		t.Fatalf("grid missing start(weak):\n%s", g)
	}
	if !strings.Contains(g, "p1") || !strings.Contains(g, "p3") {
		t.Fatalf("grid missing process headers:\n%s", g)
	}
}

func TestEventString(t *testing.T) {
	e := Event{P: 2, Kind: KWrite, Reg: "x", Val: 20}
	if e.String() != "p2:w(x,20)" {
		t.Fatalf("got %q", e.String())
	}
	e = Event{P: 1, Kind: KStart, Sem: SemWeak}
	if e.String() != "p1:start(weak)" {
		t.Fatalf("got %q", e.String())
	}
}
