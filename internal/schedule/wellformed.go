package schedule

import "fmt"

// WellFormedTransactional checks the paper's definition (ii): every
// process's projection is a sequence of transactions, each starting with
// a start event and ending with a matching commit, with accesses only in
// between, and no lock events anywhere.
func (s Schedule) WellFormedTransactional() error {
	type st int
	const (
		outside st = iota
		inside
	)
	state := map[Proc]st{}
	for i, e := range s.Events {
		switch e.Kind {
		case KLock, KUnlock:
			return fmt.Errorf("event %d (%v): lock event in transactional schedule", i, e)
		case KStart:
			if state[e.P] == inside {
				return fmt.Errorf("event %d (%v): nested start", i, e)
			}
			state[e.P] = inside
		case KCommit:
			if state[e.P] != inside {
				return fmt.Errorf("event %d (%v): commit without start", i, e)
			}
			state[e.P] = outside
		case KRead, KWrite:
			if state[e.P] != inside {
				return fmt.Errorf("event %d (%v): access outside transaction", i, e)
			}
		}
	}
	for p, st := range state {
		if st == inside {
			return fmt.Errorf("%v: transaction not committed", p)
		}
	}
	return nil
}

// WellFormedLockBased checks the paper's definition (i): for each shared
// register x, every lock(x) has a following unlock(x) by the same
// process, locks are not re-acquired while held by the same process,
// unlocks match holds, and no transactional events appear. It does not
// require accesses to be covered by locks — that is a validity concern,
// not well-formedness (see LockExec).
func (s Schedule) WellFormedLockBased() error {
	held := map[Proc]map[Register]bool{}
	for i, e := range s.Events {
		switch e.Kind {
		case KStart, KCommit:
			return fmt.Errorf("event %d (%v): transactional event in lock-based schedule", i, e)
		case KLock:
			if held[e.P] == nil {
				held[e.P] = map[Register]bool{}
			}
			if held[e.P][e.Reg] {
				return fmt.Errorf("event %d (%v): re-lock of held register", i, e)
			}
			held[e.P][e.Reg] = true
		case KUnlock:
			if !held[e.P][e.Reg] {
				return fmt.Errorf("event %d (%v): unlock of register not held", i, e)
			}
			delete(held[e.P], e.Reg)
		}
	}
	for p, m := range held {
		for r := range m {
			return fmt.Errorf("%v: register %s never unlocked", p, r)
		}
	}
	return nil
}
