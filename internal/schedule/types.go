// Package schedule is an executable rendition of Section 2 of the paper
// ("Evaluating Concurrency"): shared registers, operations, critical-step
// semantics, schedules, histories, well-formedness, and the execution of
// schedules by the three synchronizations (lock-based, monomorphic
// transactions, polymorphic transactions).
//
// # Model
//
// A shared memory is partitioned into registers supporting atomic reads
// and writes. An operation π (run by a process p) is a sequence of read
// and write accesses. The semantics s of an operation assigns its
// accesses to critical steps γ — e.g. the sorted-linked-list contains
// r(x),r(y),r(z) has pairs semantics γ1={r(x),r(y)}, γ2={r(y),r(z)}:
// each pair must be atomic somewhere, but no single point needs all
// three values simultaneously.
//
// A schedule is an interleaving of the operations' events extended with
// synchronization events: lock(x)/unlock(x) for lock-based operations,
// start(p)/commit for transactional ones. Executing a schedule under a
// synchronization yields a history (reads carry returned values) or an
// abort, in which case the schedule is invalid for that synchronization.
// A schedule is accepted if its execution yields a valid history —
// one equivalent to a sequential history of its critical steps.
//
// # Executor semantics (the operational choices, and why)
//
// The brief announcement leaves the TM operationally underspecified; we
// pin it down to the canonical single-version opaque TM that "def"
// denotes (and that internal/stm implements), which is the reading under
// which both theorems hold and Figure 1 behaves as the paper states:
//
//   - Reads return the latest committed value at the read event
//     (single-version memory; transactional writes are buffered and
//     apply at commit).
//   - A monomorphic (def) transaction keeps its entire read set current:
//     at every access and at commit, every previously read value must
//     still be the register's committed value, else the transaction
//     aborts (this is TL2/LSA validation with extension-to-now).
//   - A weak (elastic) transaction keeps only a sliding window of its
//     most recent reads current — the paper's pairwise critical steps;
//     older reads are cut. After its first write it behaves like def for
//     the remaining accesses.
//   - Lock-based execution applies writes in place; a lock event that
//     would block (register held by another process) means the given
//     interleaving cannot be produced, so the schedule is rejected.
package schedule

import (
	"fmt"
	"strings"
)

// Register is a shared register name (the paper's x, y, z).
type Register string

// Proc identifies a process (the paper's p1, p2, p3). Valid processes
// are numbered from 1.
type Proc int

// String renders p like the paper ("p1").
func (p Proc) String() string { return fmt.Sprintf("p%d", int(p)) }

// Kind enumerates event kinds.
type Kind uint8

// Event kinds: synchronization events and accesses.
const (
	KLock Kind = iota
	KUnlock
	KStart
	KCommit
	KRead
	KWrite
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KLock:
		return "lock"
	case KUnlock:
		return "unlock"
	case KStart:
		return "start"
	case KCommit:
		return "commit"
	case KRead:
		return "r"
	case KWrite:
		return "w"
	default:
		return "?"
	}
}

// Sem is the semantic parameter of start(p) in input schedules.
type Sem uint8

// Semantic parameters. SemDef is the paper's def (all accesses one
// critical step); SemWeak is the paper's weak (elastic: consecutive
// pairs of accesses are the critical steps); SemSnapshot reads the
// committed state at the transaction's start. A monomorphic execution
// maps every parameter to SemDef.
const (
	SemDef Sem = iota
	SemWeak
	SemSnapshot
)

// String renders the parameter as in the paper's figure.
func (s Sem) String() string {
	switch s {
	case SemDef:
		return "def"
	case SemWeak:
		return "weak"
	case SemSnapshot:
		return "snapshot"
	default:
		return "?"
	}
}

// Event is one schedule event. Reg is set for lock, unlock, read and
// write events; Sem for start events; Val for write events (the written
// value) and, in histories, for read events (the returned value).
type Event struct {
	P    Proc
	Kind Kind
	Reg  Register
	Sem  Sem
	Val  int
}

// String renders the event in the paper's notation, e.g. "p1:r(x)" or
// "p2:start(def)".
func (e Event) String() string {
	switch e.Kind {
	case KStart:
		return fmt.Sprintf("%v:start(%v)", e.P, e.Sem)
	case KCommit:
		return fmt.Sprintf("%v:commit", e.P)
	case KRead:
		return fmt.Sprintf("%v:r(%s)", e.P, e.Reg)
	case KWrite:
		return fmt.Sprintf("%v:w(%s,%d)", e.P, e.Reg, e.Val)
	default:
		return fmt.Sprintf("%v:%v(%s)", e.P, e.Kind, e.Reg)
	}
}

// Schedule is a sequence of events — the paper's I.
type Schedule struct {
	Events []Event
}

// String renders the schedule one event per line.
func (s Schedule) String() string {
	var b strings.Builder
	for i, e := range s.Events {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// Procs returns the set of processes appearing in the schedule, in
// first-appearance order.
func (s Schedule) Procs() []Proc {
	var out []Proc
	seen := map[Proc]bool{}
	for _, e := range s.Events {
		if !seen[e.P] {
			seen[e.P] = true
			out = append(out, e.P)
		}
	}
	return out
}

// Registers returns the set of registers accessed, in first-appearance
// order.
func (s Schedule) Registers() []Register {
	var out []Register
	seen := map[Register]bool{}
	for _, e := range s.Events {
		if e.Reg != "" && !seen[e.Reg] {
			seen[e.Reg] = true
			out = append(out, e.Reg)
		}
	}
	return out
}

// ByProc returns p's subsequence of events (the projection defining p's
// operation).
func (s Schedule) ByProc(p Proc) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.P == p {
			out = append(out, e)
		}
	}
	return out
}

// IsTransactional reports whether the schedule contains only
// transactional events (start/commit/read/write).
func (s Schedule) IsTransactional() bool {
	for _, e := range s.Events {
		if e.Kind == KLock || e.Kind == KUnlock {
			return false
		}
	}
	return true
}

// IsLockBased reports whether the schedule contains only lock-based
// events (lock/unlock/read/write).
func (s Schedule) IsLockBased() bool {
	for _, e := range s.Events {
		if e.Kind == KStart || e.Kind == KCommit {
			return false
		}
	}
	return true
}

// Grid renders the schedule in the paper's figure layout: one column per
// process, one row per event.
func (s Schedule) Grid() string {
	procs := s.Procs()
	col := map[Proc]int{}
	for i, p := range procs {
		col[p] = i
	}
	var b strings.Builder
	for _, p := range procs {
		fmt.Fprintf(&b, "%-16s", p.String())
	}
	b.WriteString("\n")
	for _, e := range s.Events {
		c := col[e.P]
		b.WriteString(strings.Repeat(" ", 16*c))
		// Strip the "pN:" prefix for the grid cell.
		cell := e.String()
		if i := strings.IndexByte(cell, ':'); i >= 0 {
			cell = cell[i+1:]
		}
		b.WriteString(cell)
		b.WriteString("\n")
	}
	return b.String()
}
