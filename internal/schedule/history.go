package schedule

import "fmt"

// History is the result of executing a schedule: the same events with
// read events carrying the values their execution returned (the paper's
// H). Initial register values are 0.
type History struct {
	Events []Event
}

// String renders the history one event per line with read values.
func (h History) String() string {
	out := ""
	for i, e := range h.Events {
		if i > 0 {
			out += "; "
		}
		if e.Kind == KRead {
			out += fmt.Sprintf("%v:r(%s):%d", e.P, e.Reg, e.Val)
		} else {
			out += e.String()
		}
	}
	return out
}

// Access is one read or write inside a critical step, with the value it
// returned (reads) or wrote (writes).
type Access struct {
	Kind Kind
	Reg  Register
	Val  int
}

// Step is one critical step γ of one operation, ready for the
// sequential-equivalence check: its accesses in program order and the
// interval of schedule positions [Lo, Hi] within which its atomicity
// point may lie (for a lock-based step, the span of its accesses; for a
// transactional step, from its first access to the commit event).
type Step struct {
	P        Proc
	Index    int // position of this step within its operation
	Accesses []Access
	Lo, Hi   int
}

// SequentiallyEquivalent reports whether the steps can be ordered as a
// sequential history: a total order of steps that (a) respects each
// operation's program order, (b) admits strictly increasing atomicity
// points with each step's point inside its [Lo, Hi] interval, and
// (c) is legal — every read returns the most recent write to its
// register in that order (initial values 0), with intra-step writes
// visible to later intra-step reads.
//
// The search is exhaustive over step permutations with pruning; the
// model targets the paper's hand-sized schedules (a handful of steps).
func SequentiallyEquivalent(steps []Step) bool {
	n := len(steps)
	if n == 0 {
		return true
	}
	used := make([]bool, n)
	order := make([]int, 0, n)
	var rec func(lastPoint float64) bool
	rec = func(lastPoint float64) bool {
		if len(order) == n {
			return legal(steps, order)
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Program order: all earlier steps of the same operation
			// must already be placed.
			ok := true
			for j := 0; j < n; j++ {
				if j != i && !used[j] && steps[j].P == steps[i].P && steps[j].Index < steps[i].Index {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Interval feasibility: the step's point must exceed the
			// previous point and fit inside [Lo, Hi].
			point := lastPoint + 0.001
			if float64(steps[i].Lo) > point {
				point = float64(steps[i].Lo)
			}
			if point > float64(steps[i].Hi)+0.5 {
				continue
			}
			used[i] = true
			order = append(order, i)
			if rec(point) {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	return rec(-1)
}

// legal simulates the steps in the given order and checks every read.
func legal(steps []Step, order []int) bool {
	mem := map[Register]int{}
	for _, idx := range order {
		for _, a := range steps[idx].Accesses {
			switch a.Kind {
			case KRead:
				if mem[a.Reg] != a.Val {
					return false
				}
			case KWrite:
				mem[a.Reg] = a.Val
			}
		}
	}
	return true
}
