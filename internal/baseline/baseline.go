// Package baseline implements the lock-based comparator structures for
// the benchmark suite: a coarse-grained (single-mutex) sorted list, the
// lazy list of Heller et al. (fine-grained per-node locking with
// wait-free contains — the tuned lock-based set the paper contrasts
// with transactions), a coarse-grained resizable hash set, a
// lock-striped resizable hash set, and a coarse-grained skip list.
package baseline

import "sync"

// --- coarse list -------------------------------------------------------

type cnode struct {
	key  uint64
	next *cnode
}

// CoarseList is a sorted linked list protected by one mutex.
type CoarseList struct {
	mu   sync.Mutex
	head *cnode
	n    int
}

// NewCoarseList creates an empty coarse-grained list.
func NewCoarseList() *CoarseList { return &CoarseList{} }

// Insert adds key, returning false if present.
func (l *CoarseList) Insert(key uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pred *cnode
	curr := l.head
	for curr != nil && curr.key < key {
		pred, curr = curr, curr.next
	}
	if curr != nil && curr.key == key {
		return false
	}
	n := &cnode{key: key, next: curr}
	if pred == nil {
		l.head = n
	} else {
		pred.next = n
	}
	l.n++
	return true
}

// Remove deletes key, returning false if absent.
func (l *CoarseList) Remove(key uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	var pred *cnode
	curr := l.head
	for curr != nil && curr.key < key {
		pred, curr = curr, curr.next
	}
	if curr == nil || curr.key != key {
		return false
	}
	if pred == nil {
		l.head = curr.next
	} else {
		pred.next = curr.next
	}
	l.n--
	return true
}

// Contains reports whether key is present.
func (l *CoarseList) Contains(key uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	curr := l.head
	for curr != nil && curr.key < key {
		curr = curr.next
	}
	return curr != nil && curr.key == key
}

// Len returns the element count.
func (l *CoarseList) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}
