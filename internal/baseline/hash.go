package baseline

import (
	"sync"

	"polytm/internal/locks"
)

// mix64 is the splitmix64 finalizer shared by the hash baselines.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CoarseHash is a resizable hash set under one RWMutex: resize is
// trivial but every operation serializes behind the global lock.
type CoarseHash struct {
	mu      sync.RWMutex
	buckets [][]uint64
	n       int
}

// NewCoarseHash creates a coarse-grained hash set with nbuckets initial
// buckets (rounded up to a power of two).
func NewCoarseHash(nbuckets int) *CoarseHash {
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	return &CoarseHash{buckets: make([][]uint64, n)}
}

func (h *CoarseHash) idx(key uint64) uint64 { return mix64(key) & uint64(len(h.buckets)-1) }

// Insert adds key, returning false if present.
func (h *CoarseHash) Insert(key uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.idx(key)
	for _, k := range h.buckets[b] {
		if k == key {
			return false
		}
	}
	h.buckets[b] = append(h.buckets[b], key)
	h.n++
	return true
}

// Remove deletes key, returning false if absent.
func (h *CoarseHash) Remove(key uint64) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	b := h.idx(key)
	for i, k := range h.buckets[b] {
		if k == key {
			last := len(h.buckets[b]) - 1
			h.buckets[b][i] = h.buckets[b][last]
			h.buckets[b] = h.buckets[b][:last]
			h.n--
			return true
		}
	}
	return false
}

// Contains reports whether key is present.
func (h *CoarseHash) Contains(key uint64) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	for _, k := range h.buckets[h.idx(key)] {
		if k == key {
			return true
		}
	}
	return false
}

// Len returns the element count.
func (h *CoarseHash) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.n
}

// Buckets returns the bucket count.
func (h *CoarseHash) Buckets() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.buckets)
}

// Resize doubles or halves the table under the global write lock,
// blocking every concurrent operation for the duration.
func (h *CoarseHash) Resize(grow bool) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	newLen := len(h.buckets) * 2
	if !grow {
		newLen = max(1, len(h.buckets)/2)
	}
	fresh := make([][]uint64, newLen)
	for _, b := range h.buckets {
		for _, k := range b {
			i := mix64(k) & uint64(newLen-1)
			fresh[i] = append(fresh[i], k)
		}
	}
	h.buckets = fresh
	return newLen
}

// StripedHash is a hash set with lock striping (a fixed stripe array
// guards a growable bucket array). Operations lock one stripe; resize
// write-locks all stripes in order — concurrency-friendly operations,
// stop-the-world resize.
type StripedHash struct {
	stripes *locks.Striped
	mu      sync.RWMutex // guards the buckets slice header swap
	buckets [][]uint64
	n       int64
	countMu sync.Mutex
}

// NewStripedHash creates a striped hash set with nbuckets initial
// buckets and nstripes stripes. The bucket count never drops below the
// stripe count (both powers of two), so two keys in one bucket always
// share a stripe — the invariant that makes one-stripe locking safe.
func NewStripedHash(nbuckets, nstripes int) *StripedHash {
	s := locks.NewStriped(nstripes)
	n := s.Len()
	for n < nbuckets {
		n <<= 1
	}
	return &StripedHash{stripes: s, buckets: make([][]uint64, n)}
}

func (h *StripedHash) withStripe(key uint64, w bool, f func(b uint64)) {
	hash := mix64(key)
	mu := h.stripes.For(hash)
	if w {
		mu.Lock()
		defer mu.Unlock()
	} else {
		mu.RLock()
		defer mu.RUnlock()
	}
	h.mu.RLock()
	b := hash & uint64(len(h.buckets)-1)
	f(b)
	h.mu.RUnlock()
}

// Insert adds key, returning false if present.
func (h *StripedHash) Insert(key uint64) bool {
	ok := false
	h.withStripe(key, true, func(b uint64) {
		for _, k := range h.buckets[b] {
			if k == key {
				return
			}
		}
		h.buckets[b] = append(h.buckets[b], key)
		ok = true
	})
	if ok {
		h.countMu.Lock()
		h.n++
		h.countMu.Unlock()
	}
	return ok
}

// Remove deletes key, returning false if absent.
func (h *StripedHash) Remove(key uint64) bool {
	ok := false
	h.withStripe(key, true, func(b uint64) {
		for i, k := range h.buckets[b] {
			if k == key {
				last := len(h.buckets[b]) - 1
				h.buckets[b][i] = h.buckets[b][last]
				h.buckets[b] = h.buckets[b][:last]
				ok = true
				return
			}
		}
	})
	if ok {
		h.countMu.Lock()
		h.n--
		h.countMu.Unlock()
	}
	return ok
}

// Contains reports whether key is present.
func (h *StripedHash) Contains(key uint64) bool {
	found := false
	h.withStripe(key, false, func(b uint64) {
		for _, k := range h.buckets[b] {
			if k == key {
				found = true
				return
			}
		}
	})
	return found
}

// Len returns the element count.
func (h *StripedHash) Len() int {
	h.countMu.Lock()
	defer h.countMu.Unlock()
	return int(h.n)
}

// Buckets returns the bucket count.
func (h *StripedHash) Buckets() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.buckets)
}

// Resize doubles or halves the bucket array. It locks every stripe —
// a stop-the-world pause for all operations.
func (h *StripedHash) Resize(grow bool) int {
	h.stripes.LockAll()
	defer h.stripes.UnlockAll()
	h.mu.Lock()
	defer h.mu.Unlock()
	newLen := len(h.buckets) * 2
	if !grow {
		newLen = max(h.stripes.Len(), len(h.buckets)/2)
	}
	fresh := make([][]uint64, newLen)
	for _, b := range h.buckets {
		for _, k := range b {
			i := mix64(k) & uint64(newLen-1)
			fresh[i] = append(fresh[i], k)
		}
	}
	h.buckets = fresh
	return newLen
}
