package baseline

import (
	"sync"
	"testing"
	"testing/quick"
)

type set interface {
	Insert(uint64) bool
	Remove(uint64) bool
	Contains(uint64) bool
	Len() int
}

func eachSet(t *testing.T, f func(t *testing.T, mk func() set)) {
	t.Helper()
	cases := []struct {
		name string
		mk   func() set
	}{
		{"CoarseList", func() set { return NewCoarseList() }},
		{"LazyList", func() set { return NewLazyList() }},
		{"CoarseHash", func() set { return NewCoarseHash(8) }},
		{"StripedHash", func() set { return NewStripedHash(16, 8) }},
		{"CoarseSkipList", func() set { return NewCoarseSkipList() }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { f(t, c.mk) })
	}
}

func TestBaselineBasics(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		s := mk()
		if s.Contains(5) {
			t.Fatal("empty set contains 5")
		}
		if !s.Insert(5) || s.Insert(5) {
			t.Fatal("insert semantics broken")
		}
		if !s.Contains(5) || s.Len() != 1 {
			t.Fatal("5 missing")
		}
		if !s.Remove(5) || s.Remove(5) {
			t.Fatal("remove semantics broken")
		}
		if s.Contains(5) || s.Len() != 0 {
			t.Fatal("5 present after remove")
		}
	})
}

func TestBaselineMatchesModel(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		f := func(ops []uint16) bool {
			s := mk()
			model := map[uint64]bool{}
			for _, op := range ops {
				key := uint64(op % 64)
				switch op % 3 {
				case 0:
					if s.Insert(key) != !model[key] {
						return false
					}
					model[key] = true
				case 1:
					if s.Remove(key) != model[key] {
						return false
					}
					delete(model, key)
				case 2:
					if s.Contains(key) != model[key] {
						return false
					}
				}
			}
			return s.Len() == len(model)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBaselineConcurrent(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		s := mk()
		const workers, per = 8, 200
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(base uint64) {
				defer wg.Done()
				for i := uint64(0); i < per; i++ {
					if !s.Insert(base + i) {
						t.Errorf("insert %d failed", base+i)
						return
					}
				}
				for i := uint64(0); i < per; i += 2 {
					if !s.Remove(base + i) {
						t.Errorf("remove %d failed", base+i)
						return
					}
				}
			}(uint64(w) * 1000)
		}
		wg.Wait()
		if got, want := s.Len(), workers*per/2; got != want {
			t.Fatalf("len = %d, want %d", got, want)
		}
	})
}

func TestCoarseHashResize(t *testing.T) {
	h := NewCoarseHash(4)
	for k := uint64(0); k < 500; k++ {
		h.Insert(k)
	}
	before := h.Buckets()
	if got := h.Resize(true); got != before*2 {
		t.Fatalf("resize -> %d, want %d", got, before*2)
	}
	for k := uint64(0); k < 500; k++ {
		if !h.Contains(k) {
			t.Fatalf("key %d lost", k)
		}
	}
	h.Resize(false)
	if h.Len() != 500 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestStripedHashResizeUnderChurn(t *testing.T) {
	h := NewStripedHash(16, 8)
	const workers, per = 4, 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				h.Insert(base + i)
			}
			for i := uint64(0); i < per; i += 2 {
				h.Remove(base + i)
			}
		}(uint64(w) * 10000)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		grow := true
		for {
			select {
			case <-stop:
				return
			default:
				h.Resize(grow)
				grow = !grow
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got, want := h.Len(), workers*per/2; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		base := uint64(w) * 10000
		for i := uint64(0); i < per; i++ {
			if h.Contains(base+i) != (i%2 == 1) {
				t.Fatalf("contains(%d) wrong after resize churn", base+i)
			}
		}
	}
}

func TestStripedHashNeverFewerBucketsThanStripes(t *testing.T) {
	h := NewStripedHash(4, 8)
	if h.Buckets() < 8 {
		t.Fatalf("buckets = %d, want >= stripes", h.Buckets())
	}
	for i := 0; i < 10; i++ {
		h.Resize(false)
	}
	if h.Buckets() < 8 {
		t.Fatalf("shrink went below stripe count: %d", h.Buckets())
	}
}

func TestLazyListWaitFreeContainsUnderChurn(t *testing.T) {
	l := NewLazyList()
	for k := uint64(0); k < 128; k += 2 {
		l.Insert(k)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint32) {
			defer wg.Done()
			r := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*1664525 + 1013904223
				k := uint64(r>>8) % 128
				if r%2 == 0 {
					l.Insert(k)
				} else {
					l.Remove(k)
				}
			}
		}(uint32(w + 3))
	}
	for i := 0; i < 20000; i++ {
		l.Contains(uint64(i) % 128) // must never hang or crash
	}
	close(stop)
	wg.Wait()
}
