package baseline

import (
	"sync"
	"sync/atomic"
)

// LazyList is the lazy synchronization list of Heller, Herlihy, Luchangco,
// Moir, Scherer & Shavit: per-node locks, logical deletion via a marked
// bit, optimistic traversal with post-lock validation, and a wait-free
// Contains. It is the hand-tuned fine-grained lock-based set the paper's
// introduction contrasts with generic transactional code — fast, but its
// hand-over-hand reasoning is exactly the pairwise critical-step
// semantics of Figure 1.
type LazyList struct {
	head *lnode // sentinel with minimal key semantics (never compared)
	tail *lnode // sentinel treated as +inf (never compared)
	n    atomic.Int64
}

type lnode struct {
	key    uint64
	mu     sync.Mutex
	marked atomic.Bool
	next   atomic.Pointer[lnode]
}

// NewLazyList creates an empty lazy list.
func NewLazyList() *LazyList {
	tail := &lnode{}
	head := &lnode{}
	head.next.Store(tail)
	return &LazyList{head: head, tail: tail}
}

// find returns (pred, curr) where curr is the first real node with
// key >= target, or the tail sentinel.
func (l *LazyList) find(key uint64) (*lnode, *lnode) {
	pred := l.head
	curr := pred.next.Load()
	for curr != l.tail && curr.key < key {
		pred, curr = curr, curr.next.Load()
	}
	return pred, curr
}

// validate checks the lazy-list invariant after locking: neither node is
// marked and pred still points to curr.
func (l *LazyList) validate(pred, curr *lnode) bool {
	return !pred.marked.Load() && !curr.marked.Load() && pred.next.Load() == curr
}

// Insert adds key, returning false if present.
func (l *LazyList) Insert(key uint64) bool {
	for {
		pred, curr := l.find(key)
		pred.mu.Lock()
		curr.mu.Lock()
		if l.validate(pred, curr) {
			if curr != l.tail && curr.key == key {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			n := &lnode{key: key}
			n.next.Store(curr)
			pred.next.Store(n)
			l.n.Add(1)
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		curr.mu.Unlock()
		pred.mu.Unlock()
	}
}

// Remove deletes key, returning false if absent. Deletion is logical
// (mark) then physical (unlink), both under the two locks.
func (l *LazyList) Remove(key uint64) bool {
	for {
		pred, curr := l.find(key)
		pred.mu.Lock()
		curr.mu.Lock()
		if l.validate(pred, curr) {
			if curr == l.tail || curr.key != key {
				curr.mu.Unlock()
				pred.mu.Unlock()
				return false
			}
			curr.marked.Store(true)
			pred.next.Store(curr.next.Load())
			l.n.Add(-1)
			curr.mu.Unlock()
			pred.mu.Unlock()
			return true
		}
		curr.mu.Unlock()
		pred.mu.Unlock()
	}
}

// Contains reports whether key is present. It is wait-free: one
// traversal, no locks, no retries — the marked bit carries the pairwise
// atomicity argument.
func (l *LazyList) Contains(key uint64) bool {
	curr := l.head.next.Load()
	for curr != l.tail && curr.key < key {
		curr = curr.next.Load()
	}
	return curr != l.tail && curr.key == key && !curr.marked.Load()
}

// Len returns the element count (approximate under concurrency).
func (l *LazyList) Len() int { return int(l.n.Load()) }
