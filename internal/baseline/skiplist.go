package baseline

import "sync"

const skipMaxLevel = 16

// CoarseSkipList is a plain skip list under one mutex — the
// coarse-grained comparator for the skip-list benchmarks.
type CoarseSkipList struct {
	mu   sync.Mutex
	head *skipNode
	n    int
	seed uint64
}

type skipNode struct {
	key  uint64
	next []*skipNode
}

// NewCoarseSkipList creates an empty coarse-grained skip list.
func NewCoarseSkipList() *CoarseSkipList {
	return &CoarseSkipList{
		head: &skipNode{next: make([]*skipNode, skipMaxLevel)},
		seed: 0x2545f4914f6cdd1d,
	}
}

func (s *CoarseSkipList) randLevel() int {
	s.seed ^= s.seed << 13
	s.seed ^= s.seed >> 7
	s.seed ^= s.seed << 17
	x := s.seed
	lvl := 1
	for x&1 == 1 && lvl < skipMaxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

func (s *CoarseSkipList) find(key uint64, preds []*skipNode) *skipNode {
	pred := s.head
	var curr *skipNode
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		curr = pred.next[lvl]
		for curr != nil && curr.key < key {
			pred, curr = curr, curr.next[lvl]
		}
		if preds != nil {
			preds[lvl] = pred
		}
	}
	return curr
}

// Insert adds key, returning false if present.
func (s *CoarseSkipList) Insert(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	preds := make([]*skipNode, skipMaxLevel)
	curr := s.find(key, preds)
	if curr != nil && curr.key == key {
		return false
	}
	lvl := s.randLevel()
	n := &skipNode{key: key, next: make([]*skipNode, lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = preds[i].next[i]
		preds[i].next[i] = n
	}
	s.n++
	return true
}

// Remove deletes key, returning false if absent.
func (s *CoarseSkipList) Remove(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	preds := make([]*skipNode, skipMaxLevel)
	curr := s.find(key, preds)
	if curr == nil || curr.key != key {
		return false
	}
	for i := 0; i < len(curr.next); i++ {
		if preds[i].next[i] == curr {
			preds[i].next[i] = curr.next[i]
		}
	}
	s.n--
	return true
}

// Contains reports whether key is present.
func (s *CoarseSkipList) Contains(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	curr := s.find(key, nil)
	return curr != nil && curr.key == key
}

// Len returns the element count.
func (s *CoarseSkipList) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
