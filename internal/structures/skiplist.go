package structures

import (
	"context"
	"sync/atomic"

	"polytm/internal/core"
)

const skipMaxLevel = 16

// TSkipList is a transactional skip list integer set. Searches
// (Contains) run with the structure's configured semantics — elastic
// searches skim the index levels without dragging a read set behind
// them. Updates always run under Def semantics: an insert or remove
// links at several levels at once, and its correctness needs every
// predecessor it read to be validated, which is precisely the "safest
// semantics" the paper's def denotes. Choosing semantics per operation
// like this is the paper's polymorphism put to work inside one
// structure.
type TSkipList struct {
	tm   *core.TM
	head *slNode // sentinel; key unused
	size *core.TVar[int]
	sem  core.Semantics
	seed atomic.Uint64
}

type slNode struct {
	key  uint64
	next []*core.TVar[*slNode]
}

// NewTSkipList creates an empty skip list whose searches use sem.
func NewTSkipList(tm *core.TM, sem core.Semantics) *TSkipList {
	head := &slNode{next: make([]*core.TVar[*slNode], skipMaxLevel)}
	for i := range head.next {
		head.next[i] = core.NewTVar[*slNode](tm, nil)
	}
	s := &TSkipList{tm: tm, head: head, size: core.NewTVar(tm, 0), sem: sem}
	s.seed.Store(0x9e3779b97f4a7c15)
	return s
}

// randLevel draws a geometric(1/2) height in [1, skipMaxLevel] from a
// lock-free splitmix64 stream.
func (s *TSkipList) randLevel() int {
	x := s.seed.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	lvl := 1
	for x&1 == 1 && lvl < skipMaxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// search fills preds/succs per level for key inside tx.
func (s *TSkipList) search(tx *core.Tx, key uint64, preds []*slNode, succs []*slNode) error {
	pred := s.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		curr, err := core.Get(tx, pred.next[lvl])
		if err != nil {
			return err
		}
		for curr != nil && curr.key < key {
			next, err := core.Get(tx, curr.next[lvl])
			if err != nil {
				return err
			}
			pred, curr = curr, next
		}
		if preds != nil {
			preds[lvl] = pred
			succs[lvl] = curr
		}
	}
	return nil
}

// Contains reports whether key is in the set.
func (s *TSkipList) Contains(key uint64) bool {
	found, err := s.ContainsCtx(context.Background(), key)
	must(err)
	return found
}

// ContainsCtx is Contains bounded by ctx; cancellation surfaces as an
// error matching stm.ErrCancelled.
func (s *TSkipList) ContainsCtx(ctx context.Context, key uint64) (bool, error) {
	var found bool
	err := s.tm.AtomicAsCtx(ctx, s.sem, func(tx *core.Tx) error {
		pred := s.head
		var curr *slNode
		for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
			var err error
			curr, err = core.Get(tx, pred.next[lvl])
			if err != nil {
				return err
			}
			for curr != nil && curr.key < key {
				next, err := core.Get(tx, curr.next[lvl])
				if err != nil {
					return err
				}
				pred, curr = curr, next
			}
		}
		found = curr != nil && curr.key == key
		return nil
	})
	return found, err
}

// Insert adds key, returning false if present. Runs under Def.
func (s *TSkipList) Insert(key uint64) bool {
	added, err := s.InsertCtx(context.Background(), key)
	must(err)
	return added
}

// InsertCtx is Insert bounded by ctx; a cancelled insert's writes are
// discarded, never partially applied.
func (s *TSkipList) InsertCtx(ctx context.Context, key uint64) (bool, error) {
	lvl := s.randLevel()
	var added bool
	err := s.tm.AtomicAsCtx(ctx, core.Def, func(tx *core.Tx) error {
		// Stack-resident search results: search only fills the slices,
		// so they never escape (no per-op allocation).
		var predsArr, succsArr [skipMaxLevel]*slNode
		preds, succs := predsArr[:], succsArr[:]
		if err := s.search(tx, key, preds, succs); err != nil {
			return err
		}
		if succs[0] != nil && succs[0].key == key {
			added = false
			return nil
		}
		n := &slNode{key: key, next: make([]*core.TVar[*slNode], lvl)}
		for i := 0; i < lvl; i++ {
			n.next[i] = core.NewTVar(s.tm, succs[i])
		}
		for i := 0; i < lvl; i++ {
			if err := core.Set(tx, preds[i].next[i], n); err != nil {
				return err
			}
		}
		added = true
		return core.Modify(tx, s.size, func(v int) int { return v + 1 })
	})
	return added, err
}

// Remove deletes key, returning false if absent. Runs under Def.
func (s *TSkipList) Remove(key uint64) bool {
	removed, err := s.RemoveCtx(context.Background(), key)
	must(err)
	return removed
}

// RemoveCtx is Remove bounded by ctx; a cancelled remove's writes are
// discarded, never partially applied.
func (s *TSkipList) RemoveCtx(ctx context.Context, key uint64) (bool, error) {
	var removed bool
	err := s.tm.AtomicAsCtx(ctx, core.Def, func(tx *core.Tx) error {
		var predsArr, succsArr [skipMaxLevel]*slNode
		preds, succs := predsArr[:], succsArr[:]
		if err := s.search(tx, key, preds, succs); err != nil {
			return err
		}
		target := succs[0]
		if target == nil || target.key != key {
			removed = false
			return nil
		}
		for i := 0; i < len(target.next); i++ {
			if preds[i] == nil || succs[i] != target {
				continue
			}
			next, err := core.Get(tx, target.next[i])
			if err != nil {
				return err
			}
			if err := core.Set(tx, preds[i].next[i], next); err != nil {
				return err
			}
		}
		removed = true
		return core.Modify(tx, s.size, func(v int) int { return v - 1 })
	})
	return removed, err
}

// Len returns the element count.
func (s *TSkipList) Len() int {
	n, err := core.AtomicGet(s.tm, s.size)
	must(err)
	return n
}
