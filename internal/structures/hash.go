package structures

import (
	"context"

	"polytm/internal/core"
)

// THash is a transactional hash set that supports resize — the
// capability whose absence from tuned lock-free hash tables motivates
// the paper's introduction ("this data structure does not support a
// resize, therefore it is preferable to use a split ordered linked
// list..."). Built on polymorphic transactions, the answer is simpler:
// ordinary operations run with Weak (elastic) semantics and the resize
// is one monomorphic (Def) transaction; polymorphism lets them run
// concurrently, with conflicts resolved by the engine.
//
// Layout: a TVar holding the bucket array (a slice of chain-head TVars)
// plus per-node next TVars. Operations read the bucket array with an
// anchored read (core.GetAnchored), so even an elastic operation whose
// traversal window has slid past the array conflicts with a resize that
// swapped it — the composition rule that keeps elastic updates
// linearizable across resizes.
type THash struct {
	tm      *core.TM
	buckets *core.TVar[[]*core.TVar[*hnode]]
	size    *core.TVar[int]
	sem     core.Semantics
}

type hnode struct {
	key  uint64
	next *core.TVar[*hnode]
}

// mix64 is the splitmix64 finalizer (bijective hash).
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTHash creates a transactional hash set with nbuckets initial
// buckets (rounded up to a power of two) whose operations use
// semantics sem.
func NewTHash(tm *core.TM, sem core.Semantics, nbuckets int) *THash {
	n := 1
	for n < nbuckets {
		n <<= 1
	}
	bs := make([]*core.TVar[*hnode], n)
	for i := range bs {
		bs[i] = core.NewTVar[*hnode](tm, nil)
	}
	return &THash{
		tm:      tm,
		buckets: core.NewTVar(tm, bs),
		size:    core.NewTVar(tm, 0),
		sem:     sem,
	}
}

// search walks key's bucket chain, returning the bucket head TVar, the
// predecessor node (nil if the match/insertion point is the head) and
// the first node with key >= target.
func (h *THash) search(tx *core.Tx, key uint64) (head *core.TVar[*hnode], pred, curr *hnode, err error) {
	bs, err := core.GetAnchored(tx, h.buckets)
	if err != nil {
		return nil, nil, nil, err
	}
	head = bs[mix64(key)&uint64(len(bs)-1)]
	curr, err = core.Get(tx, head)
	if err != nil {
		return nil, nil, nil, err
	}
	for curr != nil && curr.key < key {
		next, err := core.Get(tx, curr.next)
		if err != nil {
			return nil, nil, nil, err
		}
		pred, curr = curr, next
	}
	return head, pred, curr, nil
}

func (h *THash) containsBody(tx *core.Tx, key uint64, out *bool) error {
	_, _, curr, err := h.search(tx, key)
	if err != nil {
		return err
	}
	*out = curr != nil && curr.key == key
	return nil
}

func (h *THash) insertBody(tx *core.Tx, key uint64, out *bool) error {
	head, pred, curr, err := h.search(tx, key)
	if err != nil {
		return err
	}
	if curr != nil && curr.key == key {
		*out = false
		return nil
	}
	n := &hnode{key: key, next: core.NewTVar(h.tm, curr)}
	if pred == nil {
		err = core.Set(tx, head, n)
	} else {
		err = core.Set(tx, pred.next, n)
	}
	if err != nil {
		return err
	}
	*out = true
	return core.Modify(tx, h.size, func(s int) int { return s + 1 })
}

func (h *THash) removeBody(tx *core.Tx, key uint64, out *bool) error {
	head, pred, curr, err := h.search(tx, key)
	if err != nil {
		return err
	}
	if curr == nil || curr.key != key {
		*out = false
		return nil
	}
	next, err := core.Get(tx, curr.next)
	if err != nil {
		return err
	}
	if pred == nil {
		err = core.Set(tx, head, next)
	} else {
		err = core.Set(tx, pred.next, next)
	}
	if err != nil {
		return err
	}
	// Version-bump the unlinked node (see TList.Remove).
	if err := core.Set(tx, curr.next, next); err != nil {
		return err
	}
	*out = true
	return core.Modify(tx, h.size, func(s int) int { return s - 1 })
}

// Contains reports whether key is in the set.
func (h *THash) Contains(key uint64) bool {
	found, err := h.ContainsCtx(context.Background(), key)
	must(err)
	return found
}

// ContainsCtx is Contains bounded by ctx; cancellation surfaces as an
// error matching stm.ErrCancelled.
func (h *THash) ContainsCtx(ctx context.Context, key uint64) (bool, error) {
	var found bool
	err := h.tm.AtomicAsCtx(ctx, h.sem, func(tx *core.Tx) error {
		return h.containsBody(tx, key, &found)
	})
	return found, err
}

// ContainsTx is Contains inside an enclosing transaction.
func (h *THash) ContainsTx(tx *core.Tx, key uint64) (bool, error) {
	var found bool
	err := tx.AtomicAs(h.sem, func(tx *core.Tx) error {
		return h.containsBody(tx, key, &found)
	})
	return found, err
}

// Insert adds key, returning false if present.
func (h *THash) Insert(key uint64) bool {
	added, err := h.InsertCtx(context.Background(), key)
	must(err)
	return added
}

// InsertCtx is Insert bounded by ctx; a cancelled insert's writes are
// discarded, never partially applied.
func (h *THash) InsertCtx(ctx context.Context, key uint64) (bool, error) {
	var added bool
	err := h.tm.AtomicAsCtx(ctx, h.sem, func(tx *core.Tx) error {
		return h.insertBody(tx, key, &added)
	})
	return added, err
}

// InsertTx is Insert inside an enclosing transaction.
func (h *THash) InsertTx(tx *core.Tx, key uint64) (bool, error) {
	var added bool
	err := tx.AtomicAs(h.sem, func(tx *core.Tx) error {
		return h.insertBody(tx, key, &added)
	})
	return added, err
}

// Remove deletes key, returning false if absent.
func (h *THash) Remove(key uint64) bool {
	removed, err := h.RemoveCtx(context.Background(), key)
	must(err)
	return removed
}

// RemoveCtx is Remove bounded by ctx; a cancelled remove's writes are
// discarded, never partially applied.
func (h *THash) RemoveCtx(ctx context.Context, key uint64) (bool, error) {
	var removed bool
	err := h.tm.AtomicAsCtx(ctx, h.sem, func(tx *core.Tx) error {
		return h.removeBody(tx, key, &removed)
	})
	return removed, err
}

// RemoveTx is Remove inside an enclosing transaction.
func (h *THash) RemoveTx(tx *core.Tx, key uint64) (bool, error) {
	var removed bool
	err := tx.AtomicAs(h.sem, func(tx *core.Tx) error {
		return h.removeBody(tx, key, &removed)
	})
	return removed, err
}

// Len returns the element count.
func (h *THash) Len() int {
	n, err := core.AtomicGet(h.tm, h.size)
	must(err)
	return n
}

// Buckets returns the current bucket count.
func (h *THash) Buckets() int {
	bs, err := core.AtomicGet(h.tm, h.buckets)
	must(err)
	return len(bs)
}

// LoadFactor returns elements per bucket.
func (h *THash) LoadFactor() float64 {
	var lf float64
	must(h.tm.Atomic(func(tx *core.Tx) error {
		bs, err := core.Get(tx, h.buckets)
		if err != nil {
			return err
		}
		n, err := core.Get(tx, h.size)
		if err != nil {
			return err
		}
		lf = float64(n) / float64(len(bs))
		return nil
	}))
	return lf
}

// Resize doubles (grow) or halves (shrink) the bucket array in one
// monomorphic transaction: it reads every chain, rebuilds them into a
// fresh array of new TVars, and swaps the array variable. Because it is
// a plain Def transaction, it is atomic with respect to every concurrent
// polymorphic operation — exactly the genericity the paper's
// introduction claims for transactions over hand-tuned structures. It
// returns the new bucket count.
func (h *THash) Resize(grow bool) int {
	var newLen int
	must(h.tm.AtomicAs(core.Def, func(tx *core.Tx) error {
		bs, err := core.Get(tx, h.buckets)
		if err != nil {
			return err
		}
		newLen = len(bs) * 2
		if !grow {
			newLen = len(bs) / 2
			if newLen < 1 {
				newLen = 1
			}
		}
		fresh := make([]*core.TVar[*hnode], newLen)
		for i := range fresh {
			fresh[i] = core.NewTVar[*hnode](h.tm, nil)
		}
		// Rehash every chain into the fresh array (new nodes: the old
		// ones stay immutable for concurrent readers).
		for _, b := range bs {
			n, err := core.Get(tx, b)
			if err != nil {
				return err
			}
			for n != nil {
				idx := mix64(n.key) & uint64(newLen-1)
				old, err := core.Get(tx, fresh[idx])
				if err != nil {
					return err
				}
				// Insert sorted into the fresh chain.
				var fpred *hnode
				fcurr := old
				for fcurr != nil && fcurr.key < n.key {
					fc, err := core.Get(tx, fcurr.next)
					if err != nil {
						return err
					}
					fpred, fcurr = fcurr, fc
				}
				nn := &hnode{key: n.key, next: core.NewTVar(h.tm, fcurr)}
				if fpred == nil {
					err = core.Set(tx, fresh[idx], nn)
				} else {
					err = core.Set(tx, fpred.next, nn)
				}
				if err != nil {
					return err
				}
				if n, err = core.Get(tx, n.next); err != nil {
					return err
				}
			}
		}
		return core.Set(tx, h.buckets, fresh)
	}))
	return newLen
}
