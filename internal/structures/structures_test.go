package structures

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"polytm/internal/core"
)

// set is the common shape of the integer sets under test.
type set interface {
	Insert(uint64) bool
	Remove(uint64) bool
	Contains(uint64) bool
	Len() int
}

// eachSet runs f on every (name, constructor) pair of transactional set.
func eachSet(t *testing.T, f func(t *testing.T, mk func() set)) {
	t.Helper()
	cases := []struct {
		name string
		mk   func() set
	}{
		{"TList/def", func() set { return NewTList(core.NewDefault(), core.Def) }},
		{"TList/weak", func() set { return NewTList(core.NewDefault(), core.Weak) }},
		{"THash/def", func() set { return NewTHash(core.NewDefault(), core.Def, 8) }},
		{"THash/weak", func() set { return NewTHash(core.NewDefault(), core.Weak, 8) }},
		{"TSkipList/def", func() set { return NewTSkipList(core.NewDefault(), core.Def) }},
		{"TSkipList/weak", func() set { return NewTSkipList(core.NewDefault(), core.Weak) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { f(t, c.mk) })
	}
}

func TestSetBasics(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		s := mk()
		if s.Contains(5) {
			t.Fatal("empty set contains 5")
		}
		if !s.Insert(5) || s.Insert(5) {
			t.Fatal("insert semantics broken")
		}
		if !s.Contains(5) {
			t.Fatal("5 missing")
		}
		if s.Len() != 1 {
			t.Fatalf("len = %d, want 1", s.Len())
		}
		if !s.Remove(5) || s.Remove(5) {
			t.Fatal("remove semantics broken")
		}
		if s.Contains(5) || s.Len() != 0 {
			t.Fatal("5 present after remove")
		}
	})
}

func TestSetMatchesModel(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		f := func(ops []uint16) bool {
			s := mk()
			model := map[uint64]bool{}
			for _, op := range ops {
				key := uint64(op % 32)
				switch op % 3 {
				case 0:
					if s.Insert(key) != !model[key] {
						return false
					}
					model[key] = true
				case 1:
					if s.Remove(key) != model[key] {
						return false
					}
					delete(model, key)
				case 2:
					if s.Contains(key) != model[key] {
						return false
					}
				}
			}
			return s.Len() == len(model)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSetConcurrentDisjoint(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		s := mk()
		const workers, per = 4, 100
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(base uint64) {
				defer wg.Done()
				for i := uint64(0); i < per; i++ {
					if !s.Insert(base + i) {
						t.Errorf("insert %d failed", base+i)
						return
					}
				}
				for i := uint64(0); i < per; i += 2 {
					if !s.Remove(base + i) {
						t.Errorf("remove %d failed", base+i)
						return
					}
				}
			}(uint64(w) * 1000)
		}
		wg.Wait()
		if got, want := s.Len(), workers*per/2; got != want {
			t.Fatalf("len = %d, want %d", got, want)
		}
		for w := 0; w < workers; w++ {
			base := uint64(w) * 1000
			for i := uint64(0); i < per; i++ {
				if s.Contains(base+i) != (i%2 == 1) {
					t.Fatalf("contains(%d) wrong", base+i)
				}
			}
		}
	})
}

// TestSetConcurrentContended drives all workers into a small key space
// and cross-checks the final state against per-key success counters —
// the linearizability conservation argument.
func TestSetConcurrentContended(t *testing.T) {
	eachSet(t, func(t *testing.T, mk func() set) {
		s := mk()
		const workers, keys, opsPer = 4, 8, 300
		var inserted, removed [keys]int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				localIns := make([]int64, keys)
				localRem := make([]int64, keys)
				for i := 0; i < opsPer; i++ {
					k := uint64(r.Intn(keys))
					if r.Intn(2) == 0 {
						if s.Insert(k) {
							localIns[k]++
						}
					} else if s.Remove(k) {
						localRem[k]++
					}
				}
				mu.Lock()
				for k := 0; k < keys; k++ {
					inserted[k] += localIns[k]
					removed[k] += localRem[k]
				}
				mu.Unlock()
			}(int64(w + 1))
		}
		wg.Wait()
		for k := uint64(0); k < keys; k++ {
			diff := inserted[k] - removed[k]
			if diff != 0 && diff != 1 {
				t.Fatalf("key %d: inserts-removes = %d", k, diff)
			}
			if s.Contains(k) != (diff == 1) {
				t.Fatalf("key %d: contains = %v, want %v", k, !(diff == 1), diff == 1)
			}
		}
	})
}

func TestTListSnapshotAndSum(t *testing.T) {
	tm := core.NewDefault()
	l := NewTList(tm, core.Weak)
	var want uint64
	for _, k := range []uint64{5, 1, 9, 3} {
		l.Insert(k)
		want += k
	}
	if got := l.Sum(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1] >= snap[i] {
			t.Fatalf("snapshot not sorted: %v", snap)
		}
	}
}

// TestTListSumInvariantUnderChurn: writers move one key around (remove k,
// insert k+delta where delta sums to zero over pairs); snapshot sums must
// always equal one of the legal states. Simplest invariant: insert and
// remove the same keys so the sum alternates between S and S; here we
// swap 10<->10 (no-op pairs) — instead, move value between two keys so
// the multiset sum is preserved.
func TestTListSumInvariantUnderChurn(t *testing.T) {
	tm := core.NewDefault()
	l := NewTList(tm, core.Weak)
	for k := uint64(1); k <= 20; k++ {
		l.Insert(k)
	}
	baseSum := l.Sum()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Churner: atomically replaces key 100 with 101 and back — sum
	// changes by +-1 between the two legal states.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cur := uint64(100)
		l.Insert(cur)
		for {
			select {
			case <-stop:
				return
			default:
			}
			next := uint64(201) - cur // alternates 100 <-> 101
			l.Remove(cur)
			l.Insert(next)
			cur = next
		}
	}()
	for i := 0; i < 100; i++ {
		got := l.Sum()
		if got != baseSum && got != baseSum+100 && got != baseSum+101 && got != baseSum+201 {
			t.Errorf("snapshot sum %d not a legal state (base %d)", got, baseSum)
			break
		}
	}
	close(stop)
	wg.Wait()
}

func TestTHashResizePreservesContents(t *testing.T) {
	tm := core.NewDefault()
	h := NewTHash(tm, core.Weak, 4)
	for k := uint64(0); k < 200; k++ {
		h.Insert(k)
	}
	before := h.Buckets()
	if got := h.Resize(true); got != before*2 {
		t.Fatalf("resize -> %d buckets, want %d", got, before*2)
	}
	for k := uint64(0); k < 200; k++ {
		if !h.Contains(k) {
			t.Fatalf("key %d lost in resize", k)
		}
	}
	if h.Len() != 200 {
		t.Fatalf("len = %d, want 200", h.Len())
	}
	h.Resize(false)
	for k := uint64(0); k < 200; k++ {
		if !h.Contains(k) {
			t.Fatalf("key %d lost in shrink", k)
		}
	}
}

// TestTHashConcurrentOpsDuringResize is the motivating scenario of the
// paper's introduction, live: elastic operations churn the table while a
// resizer repeatedly doubles and halves it. Nothing may be lost.
func TestTHashConcurrentOpsDuringResize(t *testing.T) {
	tm := core.NewDefault()
	h := NewTHash(tm, core.Weak, 4)
	const workers, per = 4, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				if !h.Insert(base + i) {
					t.Errorf("insert %d failed", base+i)
					return
				}
			}
			for i := uint64(0); i < per; i += 2 {
				if !h.Remove(base + i) {
					t.Errorf("remove %d failed", base+i)
					return
				}
			}
		}(uint64(w) * 10000)
	}
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		grow := true
		for {
			select {
			case <-stop:
				return
			default:
				h.Resize(grow)
				grow = !grow
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got, want := h.Len(), workers*per/2; got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
	for w := 0; w < workers; w++ {
		base := uint64(w) * 10000
		for i := uint64(0); i < per; i++ {
			if h.Contains(base+i) != (i%2 == 1) {
				t.Fatalf("contains(%d) wrong after resize churn", base+i)
			}
		}
	}
}

func TestTQueueFIFO(t *testing.T) {
	tm := core.NewDefault()
	q := NewTQueue[int](tm)
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue from empty succeeded")
	}
	for i := 1; i <= 5; i++ {
		q.Enqueue(i)
	}
	if q.Len() != 5 {
		t.Fatalf("len = %d", q.Len())
	}
	for i := 1; i <= 5; i++ {
		v, ok := q.Dequeue()
		if !ok || v != i {
			t.Fatalf("dequeue = %d,%v want %d", v, ok, i)
		}
	}
	// Drain then reuse: the tail must have been reset correctly.
	q.Enqueue(42)
	if v, ok := q.Dequeue(); !ok || v != 42 {
		t.Fatalf("reuse after drain failed: %d,%v", v, ok)
	}
}

func TestTQueueConcurrent(t *testing.T) {
	tm := core.NewDefault()
	q := NewTQueue[uint64](tm)
	const producers, per = 4, 300
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				q.Enqueue(id*100000 + i)
			}
		}(uint64(p))
	}
	wg.Wait()
	last := map[uint64]int64{}
	for i := 0; i < producers*per; i++ {
		v, ok := q.Dequeue()
		if !ok {
			t.Fatalf("queue drained early at %d", i)
		}
		id, seq := v/100000, int64(v%100000)
		if prev, seen := last[id]; seen && seq <= prev {
			t.Fatalf("producer %d out of order", id)
		}
		last[id] = seq
	}
	if q.Len() != 0 {
		t.Fatalf("len = %d after drain", q.Len())
	}
}

// TestDequeueBlocking: consumers block on an empty queue and drain
// everything producers push, exactly once each.
func TestDequeueBlocking(t *testing.T) {
	tm := core.NewDefault()
	q := NewTQueue[uint64](tm)
	const producers, per, consumers = 3, 200, 3
	var prod sync.WaitGroup
	for p := 0; p < producers; p++ {
		prod.Add(1)
		go func(base uint64) {
			defer prod.Done()
			for i := uint64(0); i < per; i++ {
				q.Enqueue(base + i)
			}
		}(uint64(p) * 10000)
	}
	var seen sync.Map
	var got sync.WaitGroup
	got.Add(producers * per)
	for c := 0; c < consumers; c++ {
		go func() {
			for {
				v := q.DequeueBlocking()
				if _, dup := seen.LoadOrStore(v, true); dup {
					t.Errorf("value %d consumed twice", v)
				}
				got.Done()
			}
		}()
	}
	prod.Wait()
	got.Wait()
	if q.Len() != 0 {
		t.Fatalf("len = %d after drain", q.Len())
	}
	// The consumer goroutines stay blocked in DequeueBlocking; they are
	// reclaimed when the test binary exits (the queue never changes
	// again, so they sleep).
}

func TestTransferComposes(t *testing.T) {
	tm := core.NewDefault()
	a := NewTQueue[int](tm)
	b := NewTQueue[int](tm)
	a.Enqueue(1)
	a.Enqueue(2)
	if !Transfer(tm, a, b) {
		t.Fatal("transfer failed")
	}
	if Transfer(tm, b, b) != true {
		t.Fatal("self transfer of nonempty queue should succeed")
	}
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("lens = %d,%d want 1,1", a.Len(), b.Len())
	}
	if Transfer(tm, NewTQueue[int](tm), b) {
		t.Fatal("transfer from empty queue should report false")
	}
}

// TestMixedStructuresOneTransaction: a cross-structure transaction (move
// a key from a list into a hash set) is atomic — the paper's genericity
// claim for transactions.
func TestMixedStructuresOneTransaction(t *testing.T) {
	tm := core.NewDefault()
	l := NewTList(tm, core.Weak)
	h := NewTHash(tm, core.Weak, 8)
	l.Insert(7)
	err := tm.Atomic(func(tx *core.Tx) error {
		// Composed operations become nested scopes of this transaction.
		ok, err := l.RemoveTx(tx, 7)
		if err != nil {
			return err
		}
		if !ok {
			t.Fatal("remove failed")
		}
		ok, err = h.InsertTx(tx, 7)
		if err != nil {
			return err
		}
		if !ok {
			t.Fatal("insert failed")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.Contains(7) || !h.Contains(7) {
		t.Fatal("cross-structure move not atomic")
	}
}
