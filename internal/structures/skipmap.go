package structures

import (
	"context"
	"sync/atomic"

	"polytm/internal/core"
)

// KV is one key/value pair of a TSkipMap range scan.
type KV struct {
	Key, Val string
}

// TSkipMap is a transactional ordered map from string keys to string
// values, backed by a skip list. Unlike TSkipList it does not fix the
// semantics of its operations: every method takes an enclosing *core.Tx,
// so the caller picks the semantics per operation — a point lookup can
// run as a never-abort snapshot read, a range scan elastically, an
// update under def, and a whole-map rebuild irrevocably, all over the
// same structure. That per-request-class choice is exactly what the
// polyserve server maps wire opcodes onto.
//
// Values live in their own TVar, separate from the index links, so an
// overwrite of an existing key conflicts only with accesses of that key,
// never with the tower structure around it.
type TSkipMap struct {
	tm   *core.TM
	head *smNode // sentinel; key unused
	size *core.TVar[int]
	seed atomic.Uint64
}

type smNode struct {
	key  string
	val  *core.TVar[string]
	next []*core.TVar[*smNode]
}

// NewTSkipMap creates an empty ordered map.
func NewTSkipMap(tm *core.TM) *TSkipMap {
	head := &smNode{next: make([]*core.TVar[*smNode], skipMaxLevel)}
	for i := range head.next {
		head.next[i] = core.NewTVar[*smNode](tm, nil)
	}
	m := &TSkipMap{tm: tm, head: head, size: core.NewTVar(tm, 0)}
	m.seed.Store(0x9e3779b97f4a7c15)
	return m
}

// TM returns the owning transactional memory.
func (m *TSkipMap) TM() *core.TM { return m.tm }

// randLevel draws a geometric(1/2) height in [1, skipMaxLevel] from a
// lock-free splitmix64 stream.
func (m *TSkipMap) randLevel() int {
	x := m.seed.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	lvl := 1
	for x&1 == 1 && lvl < skipMaxLevel {
		lvl++
		x >>= 1
	}
	return lvl
}

// search fills preds/succs per level for key inside tx. Either slice may
// be nil when only succs[0] (via the return value) is needed.
func (m *TSkipMap) search(tx *core.Tx, key string, preds, succs []*smNode) (*smNode, error) {
	pred := m.head
	var curr *smNode
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		var err error
		curr, err = core.Get(tx, pred.next[lvl])
		if err != nil {
			return nil, err
		}
		for curr != nil && curr.key < key {
			next, err := core.Get(tx, curr.next[lvl])
			if err != nil {
				return nil, err
			}
			pred, curr = curr, next
		}
		if preds != nil {
			preds[lvl] = pred
			succs[lvl] = curr
		}
	}
	return curr, nil
}

// GetTx looks key up inside tx, under tx's semantics.
func (m *TSkipMap) GetTx(tx *core.Tx, key string) (string, bool, error) {
	n, err := m.search(tx, key, nil, nil)
	if err != nil || n == nil || n.key != key {
		return "", false, err
	}
	v, err := core.Get(tx, n.val)
	if err != nil {
		return "", false, err
	}
	return v, true, nil
}

// PutTx inserts or overwrites key inside tx, reporting whether the key
// already existed.
func (m *TSkipMap) PutTx(tx *core.Tx, key, val string) (bool, error) {
	// The per-level search results live on the stack: search only fills
	// the slices, so they never escape and the per-op make()s this path
	// used to pay are gone.
	var predsArr, succsArr [skipMaxLevel]*smNode
	preds, succs := predsArr[:], succsArr[:]
	if _, err := m.search(tx, key, preds, succs); err != nil {
		return false, err
	}
	if succs[0] != nil && succs[0].key == key {
		return true, core.Set(tx, succs[0].val, val)
	}
	lvl := m.randLevel()
	n := &smNode{key: key, val: core.NewTVar(m.tm, val), next: make([]*core.TVar[*smNode], lvl)}
	for i := 0; i < lvl; i++ {
		n.next[i] = core.NewTVar(m.tm, succs[i])
	}
	for i := 0; i < lvl; i++ {
		if err := core.Set(tx, preds[i].next[i], n); err != nil {
			return false, err
		}
	}
	return false, core.Modify(tx, m.size, func(v int) int { return v + 1 })
}

// DeleteTx removes key inside tx, reporting whether it was present.
func (m *TSkipMap) DeleteTx(tx *core.Tx, key string) (bool, error) {
	var predsArr, succsArr [skipMaxLevel]*smNode
	preds, succs := predsArr[:], succsArr[:]
	if _, err := m.search(tx, key, preds, succs); err != nil {
		return false, err
	}
	target := succs[0]
	if target == nil || target.key != key {
		return false, nil
	}
	for i := 0; i < len(target.next); i++ {
		if preds[i] == nil || succs[i] != target {
			continue
		}
		next, err := core.Get(tx, target.next[i])
		if err != nil {
			return false, err
		}
		if err := core.Set(tx, preds[i].next[i], next); err != nil {
			return false, err
		}
	}
	if err := core.Modify(tx, m.size, func(v int) int { return v - 1 }); err != nil {
		return false, err
	}
	return true, nil
}

// RangeTx walks keys in [from, to) in order inside tx, calling fn for
// each pair until fn returns false, limit pairs have been visited
// (limit <= 0 means unbounded), or the range is exhausted. An empty `to`
// means "to the end".
func (m *TSkipMap) RangeTx(tx *core.Tx, from, to string, limit int, fn func(key, val string) bool) error {
	// Descend to the bottom-level predecessor of `from`.
	pred := m.head
	for lvl := skipMaxLevel - 1; lvl >= 0; lvl-- {
		curr, err := core.Get(tx, pred.next[lvl])
		if err != nil {
			return err
		}
		for curr != nil && curr.key < from {
			next, err := core.Get(tx, curr.next[lvl])
			if err != nil {
				return err
			}
			pred, curr = curr, next
		}
	}
	curr, err := core.Get(tx, pred.next[0])
	if err != nil {
		return err
	}
	n := 0
	for curr != nil && (to == "" || curr.key < to) {
		if limit > 0 && n >= limit {
			return nil
		}
		v, err := core.Get(tx, curr.val)
		if err != nil {
			return err
		}
		if !fn(curr.key, v) {
			return nil
		}
		n++
		curr, err = core.Get(tx, curr.next[0])
		if err != nil {
			return err
		}
	}
	return nil
}

// SnapshotAllCtx streams every pair of the map, in key order, out of
// ONE snapshot-semantics transaction: the callback observes a single
// consistent committed state (the multi-versioned read path resolves
// every link and value at the transaction's start timestamp), no
// matter how heavily writers commit during the walk — and the walk
// never aborts and never blocks those writers. fn returning an error
// stops the walk and surfaces that error unchanged; this is the
// iteration the durability checkpointer writes files from, so write
// failures must propagate.
func (m *TSkipMap) SnapshotAllCtx(ctx context.Context, fn func(key, val string) error) error {
	var fnErr error
	err := m.tm.AtomicAsCtx(ctx, core.Snapshot, func(tx *core.Tx) error {
		fnErr = nil
		return m.RangeTx(tx, "", "", 0, func(k, v string) bool {
			if err := fn(k, v); err != nil {
				fnErr = err
				return false
			}
			return true
		})
	})
	if err != nil {
		return err
	}
	return fnErr
}

// LenTx reads the element count inside tx.
func (m *TSkipMap) LenTx(tx *core.Tx) (int, error) {
	return core.Get(tx, m.size)
}

// ClearTx unlinks every element inside tx, returning how many were
// removed. It touches only the sentinel's towers and the size counter,
// so it is O(levels) regardless of map size.
func (m *TSkipMap) ClearTx(tx *core.Tx) (int, error) {
	n, err := core.Get(tx, m.size)
	if err != nil {
		return 0, err
	}
	for i := range m.head.next {
		if err := core.Set(tx, m.head.next[i], nil); err != nil {
			return 0, err
		}
	}
	return n, core.Set(tx, m.size, 0)
}

// RebuildTx re-levels the whole map inside tx: it walks the bottom
// level, draws fresh tower heights for every node, and relinks the index
// levels. Value TVars are carried over, so concurrent readers of a key's
// value conflict only if the value itself changes. This is the map's
// "resize"-class admin operation; run it under Irrevocable semantics to
// guarantee it completes in one attempt.
func (m *TSkipMap) RebuildTx(tx *core.Tx) (int, error) {
	type kn struct {
		key string
		val *core.TVar[string]
	}
	var all []kn
	curr, err := core.Get(tx, m.head.next[0])
	if err != nil {
		return 0, err
	}
	for curr != nil {
		all = append(all, kn{key: curr.key, val: curr.val})
		curr, err = core.Get(tx, curr.next[0])
		if err != nil {
			return 0, err
		}
	}
	// Build the new chain back-to-front so every tower links forward to
	// an already-built node.
	tails := make([]*smNode, skipMaxLevel)
	for i := len(all) - 1; i >= 0; i-- {
		lvl := m.randLevel()
		n := &smNode{key: all[i].key, val: all[i].val, next: make([]*core.TVar[*smNode], lvl)}
		for l := 0; l < lvl; l++ {
			n.next[l] = core.NewTVar(m.tm, tails[l])
			tails[l] = n
		}
	}
	for l := 0; l < skipMaxLevel; l++ {
		if err := core.Set(tx, m.head.next[l], tails[l]); err != nil {
			return 0, err
		}
	}
	return len(all), core.Set(tx, m.size, len(all))
}

// Get is the one-shot form of GetTx under semantics sem.
func (m *TSkipMap) Get(key string, sem core.Semantics) (string, bool) {
	val, ok, err := m.GetCtx(context.Background(), key, sem)
	must(err)
	return val, ok
}

// GetCtx is Get bounded by ctx; cancellation surfaces as an error
// matching stm.ErrCancelled.
func (m *TSkipMap) GetCtx(ctx context.Context, key string, sem core.Semantics) (string, bool, error) {
	var val string
	var ok bool
	err := m.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		var err error
		val, ok, err = m.GetTx(tx, key)
		return err
	})
	return val, ok, err
}

// Put is the one-shot form of PutTx under semantics sem.
func (m *TSkipMap) Put(key, val string, sem core.Semantics) bool {
	existed, err := m.PutCtx(context.Background(), key, val, sem)
	must(err)
	return existed
}

// PutCtx is Put bounded by ctx; a cancelled put's writes are discarded,
// never partially applied.
func (m *TSkipMap) PutCtx(ctx context.Context, key, val string, sem core.Semantics) (bool, error) {
	var existed bool
	err := m.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		var err error
		existed, err = m.PutTx(tx, key, val)
		return err
	})
	return existed, err
}

// Delete is the one-shot form of DeleteTx under semantics sem.
func (m *TSkipMap) Delete(key string, sem core.Semantics) bool {
	removed, err := m.DeleteCtx(context.Background(), key, sem)
	must(err)
	return removed
}

// DeleteCtx is Delete bounded by ctx; a cancelled delete's writes are
// discarded, never partially applied.
func (m *TSkipMap) DeleteCtx(ctx context.Context, key string, sem core.Semantics) (bool, error) {
	var removed bool
	err := m.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		var err error
		removed, err = m.DeleteTx(tx, key)
		return err
	})
	return removed, err
}

// Range is the one-shot form of RangeTx under semantics sem, collecting
// the visited pairs.
func (m *TSkipMap) Range(from, to string, limit int, sem core.Semantics) []KV {
	out, err := m.RangeCtx(context.Background(), from, to, limit, sem)
	must(err)
	return out
}

// RangeCtx is Range bounded by ctx; cancellation surfaces as an error
// matching stm.ErrCancelled with no pairs returned.
func (m *TSkipMap) RangeCtx(ctx context.Context, from, to string, limit int, sem core.Semantics) ([]KV, error) {
	var out []KV
	err := m.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		out = out[:0]
		return m.RangeTx(tx, from, to, limit, func(k, v string) bool {
			out = append(out, KV{Key: k, Val: v})
			return true
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Len returns the element count (snapshot read; never aborts).
func (m *TSkipMap) Len() int {
	var n int
	must(m.tm.AtomicAs(core.Snapshot, func(tx *core.Tx) error {
		var err error
		n, err = m.LenTx(tx)
		return err
	}))
	return n
}
