package structures

import (
	"context"

	"polytm/internal/core"
)

// TDeque is a transactional double-ended queue: a doubly-linked list
// between two sentinels, every link a TVar. Operations are short Def
// transactions; both ends can be worked concurrently, and — being
// transactions — operations on both ends compose atomically (e.g. a
// rotate, or a steal that observes emptiness and both ends at one
// point), which is where the transactional version earns its keep over
// a two-lock deque.
type TDeque[T any] struct {
	tm   *core.TM
	head *dnode[T] // sentinel; head.next is the front element
	tail *dnode[T] // sentinel; tail.prev is the back element
	size *core.TVar[int]
}

type dnode[T any] struct {
	val  T
	prev *core.TVar[*dnode[T]]
	next *core.TVar[*dnode[T]]
}

// NewTDeque creates an empty transactional deque.
func NewTDeque[T any](tm *core.TM) *TDeque[T] {
	h := &dnode[T]{}
	t := &dnode[T]{}
	h.prev = core.NewTVar[*dnode[T]](tm, nil)
	h.next = core.NewTVar(tm, t)
	t.prev = core.NewTVar(tm, h)
	t.next = core.NewTVar[*dnode[T]](tm, nil)
	return &TDeque[T]{tm: tm, head: h, tail: t, size: core.NewTVar(tm, 0)}
}

// insertBetween links n between a and b inside tx.
func (d *TDeque[T]) insertBetween(tx *core.Tx, n, a, b *dnode[T]) error {
	if err := core.Set(tx, n.prev, a); err != nil {
		return err
	}
	if err := core.Set(tx, n.next, b); err != nil {
		return err
	}
	if err := core.Set(tx, a.next, n); err != nil {
		return err
	}
	if err := core.Set(tx, b.prev, n); err != nil {
		return err
	}
	return core.Modify(tx, d.size, func(s int) int { return s + 1 })
}

// unlink removes n (between its current neighbours) inside tx.
func (d *TDeque[T]) unlink(tx *core.Tx, n *dnode[T]) error {
	a, err := core.Get(tx, n.prev)
	if err != nil {
		return err
	}
	b, err := core.Get(tx, n.next)
	if err != nil {
		return err
	}
	if err := core.Set(tx, a.next, b); err != nil {
		return err
	}
	if err := core.Set(tx, b.prev, a); err != nil {
		return err
	}
	return core.Modify(tx, d.size, func(s int) int { return s - 1 })
}

// PushFront adds v at the front.
func (d *TDeque[T]) PushFront(v T) {
	must(d.PushFrontCtx(context.Background(), v))
}

// PushFrontCtx is PushFront bounded by ctx; a cancelled push's writes
// are discarded, never partially applied.
func (d *TDeque[T]) PushFrontCtx(ctx context.Context, v T) error {
	return d.tm.AtomicCtx(ctx, func(tx *core.Tx) error {
		n := &dnode[T]{val: v,
			prev: core.NewTVar[*dnode[T]](d.tm, nil),
			next: core.NewTVar[*dnode[T]](d.tm, nil)}
		first, err := core.Get(tx, d.head.next)
		if err != nil {
			return err
		}
		return d.insertBetween(tx, n, d.head, first)
	})
}

// PushBack adds v at the back.
func (d *TDeque[T]) PushBack(v T) {
	must(d.PushBackCtx(context.Background(), v))
}

// PushBackCtx is PushBack bounded by ctx.
func (d *TDeque[T]) PushBackCtx(ctx context.Context, v T) error {
	return d.tm.AtomicCtx(ctx, func(tx *core.Tx) error {
		n := &dnode[T]{val: v,
			prev: core.NewTVar[*dnode[T]](d.tm, nil),
			next: core.NewTVar[*dnode[T]](d.tm, nil)}
		last, err := core.Get(tx, d.tail.prev)
		if err != nil {
			return err
		}
		return d.insertBetween(tx, n, last, d.tail)
	})
}

// PopFront removes and returns the front element, ok=false when empty.
func (d *TDeque[T]) PopFront() (v T, ok bool) {
	v, ok, err := d.PopFrontCtx(context.Background())
	must(err)
	return v, ok
}

// PopFrontCtx is PopFront bounded by ctx.
func (d *TDeque[T]) PopFrontCtx(ctx context.Context) (v T, ok bool, err error) {
	err = d.tm.AtomicCtx(ctx, func(tx *core.Tx) error {
		first, err := core.Get(tx, d.head.next)
		if err != nil {
			return err
		}
		if first == d.tail {
			ok = false
			return nil
		}
		v, ok = first.val, true
		return d.unlink(tx, first)
	})
	return v, ok, err
}

// PopBack removes and returns the back element, ok=false when empty.
func (d *TDeque[T]) PopBack() (v T, ok bool) {
	v, ok, err := d.PopBackCtx(context.Background())
	must(err)
	return v, ok
}

// PopBackCtx is PopBack bounded by ctx.
func (d *TDeque[T]) PopBackCtx(ctx context.Context) (v T, ok bool, err error) {
	err = d.tm.AtomicCtx(ctx, func(tx *core.Tx) error {
		last, err := core.Get(tx, d.tail.prev)
		if err != nil {
			return err
		}
		if last == d.head {
			ok = false
			return nil
		}
		v, ok = last.val, true
		return d.unlink(tx, last)
	})
	return v, ok, err
}

// Rotate atomically moves the front element to the back, returning
// false when the deque is empty — a composed two-end transaction no
// two-lock deque performs atomically.
func (d *TDeque[T]) Rotate() bool {
	var moved bool
	must(d.tm.Atomic(func(tx *core.Tx) error {
		first, err := core.Get(tx, d.head.next)
		if err != nil {
			return err
		}
		if first == d.tail {
			moved = false
			return nil
		}
		if err := d.unlink(tx, first); err != nil {
			return err
		}
		last, err := core.Get(tx, d.tail.prev)
		if err != nil {
			return err
		}
		moved = true
		return d.insertBetween(tx, first, last, d.tail)
	}))
	return moved
}

// Len returns the element count.
func (d *TDeque[T]) Len() int {
	n, err := core.AtomicGet(d.tm, d.size)
	must(err)
	return n
}

// Drain pops everything from the front in one atomic transaction and
// returns the values in order.
func (d *TDeque[T]) Drain() []T {
	var out []T
	must(d.tm.Atomic(func(tx *core.Tx) error {
		out = out[:0]
		for {
			first, err := core.Get(tx, d.head.next)
			if err != nil {
				return err
			}
			if first == d.tail {
				return nil
			}
			out = append(out, first.val)
			if err := d.unlink(tx, first); err != nil {
				return err
			}
		}
	}))
	return out
}
