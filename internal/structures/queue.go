package structures

import (
	"context"

	"polytm/internal/core"
)

// TQueue is a transactional FIFO queue with a sentinel head node (the
// two-pointer layout of Michael & Scott, transactionalized). Operations
// run under Def semantics — they are two-to-three access transactions
// for which elasticity buys nothing — but being transactions they
// compose: a dequeue-then-enqueue transfer between queues is one atomic
// step when run inside an enclosing tm.Atomic.
type TQueue[T any] struct {
	tm   *core.TM
	head *core.TVar[*qnode[T]] // sentinel; head.next is the front
	tail *core.TVar[*qnode[T]]
	size *core.TVar[int]
}

type qnode[T any] struct {
	val  T
	next *core.TVar[*qnode[T]]
}

// NewTQueue creates an empty transactional queue.
func NewTQueue[T any](tm *core.TM) *TQueue[T] {
	sentinel := &qnode[T]{next: core.NewTVar[*qnode[T]](tm, nil)}
	return &TQueue[T]{
		tm:   tm,
		head: core.NewTVar(tm, sentinel),
		tail: core.NewTVar(tm, sentinel),
		size: core.NewTVar(tm, 0),
	}
}

// Enqueue appends v.
func (q *TQueue[T]) Enqueue(v T) {
	must(q.EnqueueCtx(context.Background(), v))
}

// EnqueueCtx is Enqueue bounded by ctx; a cancelled enqueue's writes
// are discarded, never partially applied.
func (q *TQueue[T]) EnqueueCtx(ctx context.Context, v T) error {
	return q.tm.AtomicCtx(ctx, func(tx *core.Tx) error { return q.EnqueueTx(tx, v) })
}

// EnqueueTx appends v inside an enclosing transaction.
func (q *TQueue[T]) EnqueueTx(tx *core.Tx, v T) error {
	n := &qnode[T]{val: v, next: core.NewTVar[*qnode[T]](q.tm, nil)}
	t, err := core.Get(tx, q.tail)
	if err != nil {
		return err
	}
	if err := core.Set(tx, t.next, n); err != nil {
		return err
	}
	if err := core.Set(tx, q.tail, n); err != nil {
		return err
	}
	return core.Modify(tx, q.size, func(s int) int { return s + 1 })
}

// Dequeue removes and returns the front element, or ok=false if empty.
func (q *TQueue[T]) Dequeue() (v T, ok bool) {
	v, ok, err := q.DequeueCtx(context.Background())
	must(err)
	return v, ok
}

// DequeueCtx is Dequeue bounded by ctx.
func (q *TQueue[T]) DequeueCtx(ctx context.Context) (v T, ok bool, err error) {
	err = q.tm.AtomicCtx(ctx, func(tx *core.Tx) error {
		var err error
		v, ok, err = q.DequeueTx(tx)
		return err
	})
	return v, ok, err
}

// DequeueTx removes the front element inside an enclosing transaction.
func (q *TQueue[T]) DequeueTx(tx *core.Tx) (v T, ok bool, err error) {
	s, err := core.Get(tx, q.head)
	if err != nil {
		return v, false, err
	}
	first, err := core.Get(tx, s.next)
	if err != nil {
		return v, false, err
	}
	if first == nil {
		return v, false, nil
	}
	if err := core.Set(tx, q.head, first); err != nil {
		return v, false, err
	}
	// If we dequeued the last element, the tail must fall back to the
	// new sentinel (first, whose value we are about to take).
	rest, err := core.Get(tx, first.next)
	if err != nil {
		return v, false, err
	}
	if rest == nil {
		if err := core.Set(tx, q.tail, first); err != nil {
			return v, false, err
		}
	}
	if err := core.Modify(tx, q.size, func(s int) int { return s - 1 }); err != nil {
		return v, false, err
	}
	return first.val, true, nil
}

// DequeueBlocking removes and returns the front element, blocking
// (via the Retry combinator: sleeping until the queue changes, not
// spinning) while the queue is empty.
func (q *TQueue[T]) DequeueBlocking() T {
	v, err := q.DequeueBlockingCtx(context.Background())
	must(err)
	return v
}

// DequeueBlockingCtx is DequeueBlocking bounded by ctx — the
// context-first consumer: it sleeps in the Retry combinator's wait
// while the queue is empty and wakes either when an element arrives or
// when ctx is cancelled, returning an error matching stm.ErrCancelled
// (and the context's own error) in the latter case.
func (q *TQueue[T]) DequeueBlockingCtx(ctx context.Context) (T, error) {
	var v T
	err := q.tm.AtomicCtx(ctx, func(tx *core.Tx) error {
		got, ok, err := q.DequeueTx(tx)
		if err != nil {
			return err
		}
		if !ok {
			return core.Retry
		}
		v = got
		return nil
	})
	return v, err
}

// Len returns the element count.
func (q *TQueue[T]) Len() int {
	n, err := core.AtomicGet(q.tm, q.size)
	must(err)
	return n
}

// LenTx returns the element count inside an enclosing transaction.
func (q *TQueue[T]) LenTx(tx *core.Tx) (int, error) {
	return core.Get(tx, q.size)
}

// Transfer atomically moves the front element of src to the back of
// dst, returning false if src was empty — transactional composition in
// one call.
func Transfer[T any](tm *core.TM, src, dst *TQueue[T]) bool {
	var moved bool
	must(tm.Atomic(func(tx *core.Tx) error {
		v, ok, err := src.DequeueTx(tx)
		if err != nil || !ok {
			moved = false
			return err
		}
		moved = true
		return dst.EnqueueTx(tx, v)
	}))
	return moved
}
