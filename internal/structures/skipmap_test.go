package structures

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"

	"polytm/internal/core"
)

func TestSkipMapBasic(t *testing.T) {
	tm := core.NewDefault()
	m := NewTSkipMap(tm)

	if _, ok := m.Get("a", core.Snapshot); ok {
		t.Fatal("empty map reported a key")
	}
	if existed := m.Put("b", "1", core.Def); existed {
		t.Fatal("fresh insert reported existing key")
	}
	if existed := m.Put("a", "2", core.Def); existed {
		t.Fatal("fresh insert reported existing key")
	}
	if existed := m.Put("b", "3", core.Def); !existed {
		t.Fatal("overwrite did not report existing key")
	}
	if v, ok := m.Get("b", core.Snapshot); !ok || v != "3" {
		t.Fatalf("Get(b) = %q,%v; want \"3\",true", v, ok)
	}
	if v, ok := m.Get("a", core.Weak); !ok || v != "2" {
		t.Fatalf("Get(a) = %q,%v; want \"2\",true", v, ok)
	}
	if n := m.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	if removed := m.Delete("nope", core.Def); removed {
		t.Fatal("Delete of absent key reported removal")
	}
	if removed := m.Delete("a", core.Def); !removed {
		t.Fatal("Delete of present key reported no removal")
	}
	if n := m.Len(); n != 1 {
		t.Fatalf("Len after delete = %d, want 1", n)
	}
}

func TestSkipMapRangeOrderedAndBounded(t *testing.T) {
	tm := core.NewDefault()
	m := NewTSkipMap(tm)
	keys := []string{"delta", "alpha", "echo", "bravo", "charlie", "foxtrot"}
	for i, k := range keys {
		m.Put(k, fmt.Sprint(i), core.Def)
	}
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)

	all := m.Range("", "", 0, core.Weak)
	if len(all) != len(keys) {
		t.Fatalf("full range returned %d pairs, want %d", len(all), len(keys))
	}
	for i, kv := range all {
		if kv.Key != sorted[i] {
			t.Fatalf("range out of order at %d: %q, want %q", i, kv.Key, sorted[i])
		}
	}

	// Half-open window [bravo, echo) — excludes echo and foxtrot.
	win := m.Range("bravo", "echo", 0, core.Snapshot)
	want := []string{"bravo", "charlie", "delta"}
	if len(win) != len(want) {
		t.Fatalf("window returned %d pairs, want %d (%v)", len(win), len(want), win)
	}
	for i, kv := range win {
		if kv.Key != want[i] {
			t.Fatalf("window[%d] = %q, want %q", i, kv.Key, want[i])
		}
	}

	// Limit cuts the walk short.
	if lim := m.Range("", "", 2, core.Weak); len(lim) != 2 || lim[0].Key != "alpha" || lim[1].Key != "bravo" {
		t.Fatalf("limited range = %v, want first two keys", lim)
	}
}

func TestSkipMapClearAndRebuild(t *testing.T) {
	tm := core.NewDefault()
	m := NewTSkipMap(tm)
	const n = 100
	for i := 0; i < n; i++ {
		m.Put(fmt.Sprintf("k%03d", i), fmt.Sprint(i), core.Def)
	}

	var rebuilt int
	must(tm.Atomic(func(tx *core.Tx) error {
		var err error
		rebuilt, err = m.RebuildTx(tx)
		return err
	}, core.WithSemantics(core.Irrevocable)))
	if rebuilt != n {
		t.Fatalf("RebuildTx touched %d keys, want %d", rebuilt, n)
	}
	if m.Len() != n {
		t.Fatalf("Len after rebuild = %d, want %d", m.Len(), n)
	}
	all := m.Range("", "", 0, core.Snapshot)
	if len(all) != n {
		t.Fatalf("range after rebuild returned %d, want %d", len(all), n)
	}
	for i, kv := range all {
		if want := fmt.Sprintf("k%03d", i); kv.Key != want || kv.Val != fmt.Sprint(i) {
			t.Fatalf("after rebuild pair %d = %+v, want {%s %d}", i, kv, want, i)
		}
	}

	var cleared int
	must(tm.Atomic(func(tx *core.Tx) error {
		var err error
		cleared, err = m.ClearTx(tx)
		return err
	}, core.WithSemantics(core.Irrevocable)))
	if cleared != n {
		t.Fatalf("ClearTx removed %d, want %d", cleared, n)
	}
	if m.Len() != 0 || len(m.Range("", "", 0, core.Snapshot)) != 0 {
		t.Fatal("map not empty after clear")
	}
}

// TestSkipMapConcurrentMixedSemantics hammers the map from writers (def),
// elastic scanners (weak), snapshot readers, and an irrevocable
// rebuilder, then checks the exact final contents. Run with -race.
func TestSkipMapConcurrentMixedSemantics(t *testing.T) {
	tm := core.NewDefault()
	m := NewTSkipMap(tm)
	const workers = 4
	const perWorker = 150

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-%03d", w, i)
				m.Put(key, fmt.Sprint(i), core.Def)
				if v, ok := m.Get(key, core.Snapshot); !ok || v != fmt.Sprint(i) {
					t.Errorf("read-your-writes violated for %s: %q,%v", key, v, ok)
					return
				}
				if i%10 == 9 {
					m.Delete(key, core.Def)
				}
				if i%25 == 0 {
					// Elastic scan of this worker's prefix: keys must come
					// back in order even while towers churn.
					prev := ""
					for _, kv := range m.Range(fmt.Sprintf("w%d-", w), fmt.Sprintf("w%d.", w), 0, core.Weak) {
						if kv.Key <= prev {
							t.Errorf("scan out of order: %q after %q", kv.Key, prev)
							return
						}
						prev = kv.Key
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var adminWg sync.WaitGroup
	adminWg.Add(1)
	go func() {
		defer adminWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			must(tm.Atomic(func(tx *core.Tx) error {
				_, err := m.RebuildTx(tx)
				return err
			}, core.WithSemantics(core.Irrevocable)))
		}
	}()
	wg.Wait()
	close(stop)
	adminWg.Wait()

	want := map[string]string{}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			if i%10 == 9 {
				continue
			}
			want[fmt.Sprintf("w%d-%03d", w, i)] = fmt.Sprint(i)
		}
	}
	got := m.Range("", "", 0, core.Snapshot)
	if len(got) != len(want) {
		t.Fatalf("final map has %d keys, want %d", len(got), len(want))
	}
	for _, kv := range got {
		if want[kv.Key] != kv.Val {
			t.Fatalf("final %q = %q, want %q", kv.Key, kv.Val, want[kv.Key])
		}
	}
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(want))
	}
}

// TestSkipMapSnapshotAllConsistent hammers the map with writers that
// preserve an invariant (key pairs i/i' always hold equal values) and
// asserts SnapshotAllCtx only ever observes invariant-holding states —
// the consistency the durability checkpointer depends on.
func TestSkipMapSnapshotAllConsistent(t *testing.T) {
	tm := core.NewDefault()
	m := NewTSkipMap(tm)
	const pairs = 16
	key := func(i int, side string) string { return fmt.Sprintf("p%02d-%s", i, side) }
	for i := 0; i < pairs; i++ {
		m.Put(key(i, "a"), "0", core.Def)
		m.Put(key(i, "b"), "0", core.Def)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint64(seed)*2654435761 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				i := int(r>>33) % pairs
				v := fmt.Sprintf("%d", r&0xFFFF)
				if err := tm.AtomicAs(core.Def, func(tx *core.Tx) error {
					if _, err := m.PutTx(tx, key(i, "a"), v); err != nil {
						return err
					}
					_, err := m.PutTx(tx, key(i, "b"), v)
					return err
				}); err != nil {
					t.Errorf("writer: %v", err)
					return
				}
			}
		}(w + 1)
	}
	for scan := 0; scan < 50; scan++ {
		seen := map[string]string{}
		prev := ""
		if err := m.SnapshotAllCtx(context.Background(), func(k, v string) error {
			if k <= prev && prev != "" {
				t.Fatalf("keys out of order: %q after %q", k, prev)
			}
			prev = k
			seen[k] = v
			return nil
		}); err != nil {
			t.Fatalf("snapshot: %v", err)
		}
		if len(seen) != 2*pairs {
			t.Fatalf("snapshot saw %d keys, want %d", len(seen), 2*pairs)
		}
		for i := 0; i < pairs; i++ {
			if a, b := seen[key(i, "a")], seen[key(i, "b")]; a != b {
				t.Fatalf("snapshot tore pair %d: %q != %q", i, a, b)
			}
		}
	}
	close(stop)
	wg.Wait()

	// The error path: a failing callback stops the walk and surfaces.
	sentinel := fmt.Errorf("stop here")
	n := 0
	if err := m.SnapshotAllCtx(context.Background(), func(k, v string) error {
		n++
		if n == 3 {
			return sentinel
		}
		return nil
	}); err != sentinel {
		t.Fatalf("callback error = %v, want sentinel", err)
	}
	if n != 3 {
		t.Fatalf("walk continued past failing callback: %d", n)
	}
}
