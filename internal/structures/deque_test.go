package structures

import (
	"sync"
	"testing"

	"polytm/internal/core"
)

func TestDequeBasics(t *testing.T) {
	tm := core.NewDefault()
	d := NewTDeque[int](tm)
	if _, ok := d.PopFront(); ok {
		t.Fatal("pop from empty deque")
	}
	if _, ok := d.PopBack(); ok {
		t.Fatal("pop from empty deque")
	}
	d.PushBack(2)
	d.PushFront(1)
	d.PushBack(3)
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	if v, _ := d.PopFront(); v != 1 {
		t.Fatalf("front = %d, want 1", v)
	}
	if v, _ := d.PopBack(); v != 3 {
		t.Fatalf("back = %d, want 3", v)
	}
	if v, _ := d.PopFront(); v != 2 {
		t.Fatalf("middle = %d, want 2", v)
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d after drain", d.Len())
	}
}

func TestDequeRotate(t *testing.T) {
	tm := core.NewDefault()
	d := NewTDeque[int](tm)
	if d.Rotate() {
		t.Fatal("rotate of empty deque should be false")
	}
	for i := 1; i <= 3; i++ {
		d.PushBack(i)
	}
	if !d.Rotate() { // 1,2,3 -> 2,3,1
		t.Fatal("rotate failed")
	}
	got := d.Drain()
	want := []int{2, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after rotate: %v, want %v", got, want)
		}
	}
}

func TestDequeDrainAtomic(t *testing.T) {
	tm := core.NewDefault()
	d := NewTDeque[int](tm)
	for i := 0; i < 10; i++ {
		d.PushBack(i)
	}
	out := d.Drain()
	if len(out) != 10 || d.Len() != 0 {
		t.Fatalf("drain returned %d items, len now %d", len(out), d.Len())
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("drain[%d] = %d", i, v)
		}
	}
}

// TestDequeConcurrentBothEnds: producers on both ends, consumers on both
// ends; every pushed value is popped exactly once.
func TestDequeConcurrentBothEnds(t *testing.T) {
	tm := core.NewDefault()
	d := NewTDeque[uint64](tm)
	const producers, per = 4, 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := uint64(0); i < per; i++ {
				v := id*100000 + i
				if id%2 == 0 {
					d.PushFront(v)
				} else {
					d.PushBack(v)
				}
			}
		}(uint64(p))
	}
	var seen sync.Map
	var cg sync.WaitGroup
	var popped sync.WaitGroup
	popped.Add(producers * per)
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cg.Add(1)
		go func(front bool) {
			defer cg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var v uint64
				var ok bool
				if front {
					v, ok = d.PopFront()
				} else {
					v, ok = d.PopBack()
				}
				if !ok {
					continue
				}
				if _, dup := seen.LoadOrStore(v, true); dup {
					t.Errorf("value %d popped twice", v)
					return
				}
				popped.Done()
			}
		}(c%2 == 0)
	}
	wg.Wait()
	popped.Wait()
	close(stop)
	cg.Wait()
	if d.Len() != 0 {
		t.Fatalf("len = %d, want 0", d.Len())
	}
}

// TestDequeRotateConservation: concurrent rotates never lose or
// duplicate elements.
func TestDequeRotateConservation(t *testing.T) {
	tm := core.NewDefault()
	d := NewTDeque[int](tm)
	const n = 16
	for i := 0; i < n; i++ {
		d.PushBack(i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				d.Rotate()
			}
		}()
	}
	wg.Wait()
	out := d.Drain()
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	present := map[int]bool{}
	for _, v := range out {
		if present[v] {
			t.Fatalf("duplicate %d", v)
		}
		present[v] = true
	}
	// Rotation preserves cyclic order: find 0 and check the cycle.
	start := 0
	for i, v := range out {
		if v == 0 {
			start = i
			break
		}
	}
	for i := 0; i < n; i++ {
		if out[(start+i)%n] != i {
			t.Fatalf("cyclic order broken: %v", out)
		}
	}
}
