// Package structures provides the transactional data structures the
// paper's introduction motivates, built purely on the polymorphic
// transaction API of internal/core: a sorted linked list, a hash table
// that — unlike Michael's lock-free one — supports resize, a skip list,
// and a FIFO queue. Each structure takes an operation semantics at
// construction, so the same code runs monomorphically (Def everywhere:
// what a classical STM gives you) or polymorphically (Weak searches that
// elastically cut their read prefix, exactly Figure 1's p1).
//
// Every operation runs in a transaction and retries internally on
// conflict; operations therefore compose: call them inside an enclosing
// tm.Atomic and they become nested scopes governed by the TM's nesting
// policy.
package structures

import (
	"context"
	"fmt"

	"polytm/internal/core"
)

// must panics on impossible engine errors. Structure operations run
// with unbounded retry, so the only error a transaction body can
// surface is a programming error in the structure itself.
func must(err error) {
	if err != nil {
		panic(fmt.Sprintf("structures: unexpected transaction error: %v", err))
	}
}

// listNode is one node of the sorted singly-linked list. Nodes are
// immutable except for their next pointer, which lives in a TVar.
type listNode struct {
	key  uint64
	next *core.TVar[*listNode]
}

// TList is a transactional sorted linked list implementing an integer
// set — the paper's running example. With Weak operation semantics its
// searches are elastic: the traversal keeps only a pairwise-consistent
// window, so writers behind the search never abort it (Figure 1).
type TList struct {
	tm   *core.TM
	head *core.TVar[*listNode]
	size *core.TVar[int]
	sem  core.Semantics
}

// NewTList creates an empty list whose operations run with semantics
// sem (core.Weak for elastic searches, core.Def for monomorphic).
func NewTList(tm *core.TM, sem core.Semantics) *TList {
	return &TList{
		tm:   tm,
		head: core.NewTVar[*listNode](tm, nil),
		size: core.NewTVar(tm, 0),
		sem:  sem,
	}
}

// search walks the list inside tx, returning the last node with key <
// target (nil if none, meaning the insertion point is the head) and the
// first node with key >= target (nil at the end).
func (l *TList) search(tx *core.Tx, key uint64) (pred, curr *listNode, err error) {
	curr, err = core.Get(tx, l.head)
	if err != nil {
		return nil, nil, err
	}
	for curr != nil && curr.key < key {
		next, err := core.Get(tx, curr.next)
		if err != nil {
			return nil, nil, err
		}
		pred, curr = curr, next
	}
	return pred, curr, nil
}

func (l *TList) containsBody(tx *core.Tx, key uint64, out *bool) error {
	_, curr, err := l.search(tx, key)
	if err != nil {
		return err
	}
	*out = curr != nil && curr.key == key
	return nil
}

func (l *TList) insertBody(tx *core.Tx, key uint64, out *bool) error {
	pred, curr, err := l.search(tx, key)
	if err != nil {
		return err
	}
	if curr != nil && curr.key == key {
		*out = false
		return nil
	}
	n := &listNode{key: key, next: core.NewTVar(l.tm, curr)}
	if pred == nil {
		err = core.Set(tx, l.head, n)
	} else {
		err = core.Set(tx, pred.next, n)
	}
	if err != nil {
		return err
	}
	*out = true
	return core.Modify(tx, l.size, func(s int) int { return s + 1 })
}

func (l *TList) removeBody(tx *core.Tx, key uint64, out *bool) error {
	pred, curr, err := l.search(tx, key)
	if err != nil {
		return err
	}
	if curr == nil || curr.key != key {
		*out = false
		return nil
	}
	next, err := core.Get(tx, curr.next)
	if err != nil {
		return err
	}
	if pred == nil {
		err = core.Set(tx, l.head, next)
	} else {
		err = core.Set(tx, pred.next, next)
	}
	if err != nil {
		return err
	}
	// Mark the removed node by rewriting its next pointer with the same
	// value: structurally a no-op, but it bumps the variable's version
	// so any concurrent elastic operation whose window includes curr
	// (e.g. a remove of curr's successor that already slid pred out of
	// its window) conflicts and retries instead of updating an unlinked
	// node.
	if err := core.Set(tx, curr.next, next); err != nil {
		return err
	}
	*out = true
	return core.Modify(tx, l.size, func(s int) int { return s - 1 })
}

// Contains reports whether key is in the set.
func (l *TList) Contains(key uint64) bool {
	found, err := l.ContainsCtx(context.Background(), key)
	must(err)
	return found
}

// ContainsCtx is Contains bounded by ctx: cancellation aborts the
// operation's retry loop and surfaces as an error matching
// stm.ErrCancelled; the structure is untouched.
func (l *TList) ContainsCtx(ctx context.Context, key uint64) (bool, error) {
	var found bool
	err := l.tm.AtomicAsCtx(ctx, l.sem, func(tx *core.Tx) error {
		return l.containsBody(tx, key, &found)
	})
	return found, err
}

// ContainsTx is Contains inside an enclosing transaction; the operation
// becomes a nested scope whose semantics the TM's nesting policy
// composes from the enclosing semantics and the list's own.
func (l *TList) ContainsTx(tx *core.Tx, key uint64) (bool, error) {
	var found bool
	err := tx.AtomicAs(l.sem, func(tx *core.Tx) error {
		return l.containsBody(tx, key, &found)
	})
	return found, err
}

// Insert adds key, returning false if it was already present.
func (l *TList) Insert(key uint64) bool {
	added, err := l.InsertCtx(context.Background(), key)
	must(err)
	return added
}

// InsertCtx is Insert bounded by ctx; a cancelled insert's writes are
// discarded, never partially applied.
func (l *TList) InsertCtx(ctx context.Context, key uint64) (bool, error) {
	var added bool
	err := l.tm.AtomicAsCtx(ctx, l.sem, func(tx *core.Tx) error {
		return l.insertBody(tx, key, &added)
	})
	return added, err
}

// InsertTx is Insert inside an enclosing transaction.
func (l *TList) InsertTx(tx *core.Tx, key uint64) (bool, error) {
	var added bool
	err := tx.AtomicAs(l.sem, func(tx *core.Tx) error {
		return l.insertBody(tx, key, &added)
	})
	return added, err
}

// Remove deletes key, returning false if it was absent.
func (l *TList) Remove(key uint64) bool {
	removed, err := l.RemoveCtx(context.Background(), key)
	must(err)
	return removed
}

// RemoveCtx is Remove bounded by ctx; a cancelled remove's writes are
// discarded, never partially applied.
func (l *TList) RemoveCtx(ctx context.Context, key uint64) (bool, error) {
	var removed bool
	err := l.tm.AtomicAsCtx(ctx, l.sem, func(tx *core.Tx) error {
		return l.removeBody(tx, key, &removed)
	})
	return removed, err
}

// RemoveTx is Remove inside an enclosing transaction.
func (l *TList) RemoveTx(tx *core.Tx, key uint64) (bool, error) {
	var removed bool
	err := tx.AtomicAs(l.sem, func(tx *core.Tx) error {
		return l.removeBody(tx, key, &removed)
	})
	return removed, err
}

// Len returns the element count.
func (l *TList) Len() int {
	n, err := core.AtomicGet(l.tm, l.size)
	must(err)
	return n
}

// Sum returns the sum of all keys in one atomic snapshot read — a whole
// structure scan, the kind of operation Snapshot semantics exists for.
func (l *TList) Sum() uint64 {
	var sum uint64
	must(l.tm.AtomicAs(core.Snapshot, func(tx *core.Tx) error {
		sum = 0
		curr, err := core.Get(tx, l.head)
		if err != nil {
			return err
		}
		for curr != nil {
			sum += curr.key
			if curr, err = core.Get(tx, curr.next); err != nil {
				return err
			}
		}
		return nil
	}))
	return sum
}

// Snapshot returns the keys in order, read atomically.
func (l *TList) Snapshot() []uint64 {
	var out []uint64
	must(l.tm.AtomicAs(core.Snapshot, func(tx *core.Tx) error {
		out = out[:0]
		curr, err := core.Get(tx, l.head)
		if err != nil {
			return err
		}
		for curr != nil {
			out = append(out, curr.key)
			if curr, err = core.Get(tx, curr.next); err != nil {
				return err
			}
		}
		return nil
	}))
	return out
}
