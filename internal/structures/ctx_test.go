package structures

import (
	"context"
	"errors"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/stm"
)

// TestDequeueBlockingCtxCancelled: a consumer parked on an empty queue
// wakes within its deadline with a typed cancellation error, and a live
// consumer still receives an element produced after it parked.
func TestDequeueBlockingCtxCancelled(t *testing.T) {
	tm := core.NewDefault()
	q := NewTQueue[int](tm)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := q.DequeueBlockingCtx(ctx)
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancelled consumer stayed parked")
	}
	if !errors.Is(err, stm.ErrCancelled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCancelled/DeadlineExceeded", err)
	}

	// A live consumer is woken by a producer, not the deadline.
	got := make(chan int, 1)
	go func() {
		v, err := q.DequeueBlockingCtx(context.Background())
		if err != nil {
			t.Errorf("live consumer: %v", err)
		}
		got <- v
	}()
	time.Sleep(10 * time.Millisecond)
	q.Enqueue(41)
	select {
	case v := <-got:
		if v != 41 {
			t.Fatalf("consumer got %d, want 41", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer did not wake the parked consumer")
	}
}

// TestStructureCtxForms smoke-tests the *Ctx one-shot forms across the
// structures: Background behaves like the plain form; a dead context is
// a typed no-op that leaves the structure untouched.
func TestStructureCtxForms(t *testing.T) {
	tm := core.NewDefault()
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	bg := context.Background()

	l := NewTList(tm, core.Weak)
	if added, err := l.InsertCtx(bg, 7); err != nil || !added {
		t.Fatalf("list InsertCtx: %v %v", added, err)
	}
	if _, err := l.InsertCtx(dead, 8); !errors.Is(err, stm.ErrCancelled) {
		t.Fatalf("list InsertCtx(dead): %v", err)
	}
	if found, err := l.ContainsCtx(bg, 8); err != nil || found {
		t.Fatal("cancelled insert landed in list")
	}
	if removed, err := l.RemoveCtx(bg, 7); err != nil || !removed {
		t.Fatalf("list RemoveCtx: %v %v", removed, err)
	}

	h := NewTHash(tm, core.Weak, 8)
	if added, err := h.InsertCtx(bg, 1); err != nil || !added {
		t.Fatalf("hash InsertCtx: %v %v", added, err)
	}
	if _, err := h.RemoveCtx(dead, 1); !errors.Is(err, stm.ErrCancelled) {
		t.Fatalf("hash RemoveCtx(dead): %v", err)
	}
	if found, err := h.ContainsCtx(bg, 1); err != nil || !found {
		t.Fatal("cancelled remove emptied hash")
	}

	sl := NewTSkipList(tm, core.Weak)
	if added, err := sl.InsertCtx(bg, 3); err != nil || !added {
		t.Fatalf("skiplist InsertCtx: %v %v", added, err)
	}
	if found, err := sl.ContainsCtx(bg, 3); err != nil || !found {
		t.Fatal("skiplist lost 3")
	}
	if _, err := sl.RemoveCtx(dead, 3); !errors.Is(err, stm.ErrCancelled) {
		t.Fatalf("skiplist RemoveCtx(dead): %v", err)
	}

	m := NewTSkipMap(tm)
	if _, err := m.PutCtx(bg, "a", "1", core.Def); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PutCtx(dead, "b", "2", core.Def); !errors.Is(err, stm.ErrCancelled) {
		t.Fatalf("skipmap PutCtx(dead): %v", err)
	}
	if v, ok, err := m.GetCtx(bg, "a", core.Snapshot); err != nil || !ok || v != "1" {
		t.Fatalf("skipmap GetCtx: %q %v %v", v, ok, err)
	}
	if _, ok, err := m.GetCtx(bg, "b", core.Snapshot); err != nil || ok {
		t.Fatal("cancelled put landed in skipmap")
	}
	if kvs, err := m.RangeCtx(bg, "", "", 0, core.Weak); err != nil || len(kvs) != 1 {
		t.Fatalf("skipmap RangeCtx: %v %v", kvs, err)
	}

	d := NewTDeque[int](tm)
	if err := d.PushFrontCtx(bg, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.PushBackCtx(dead, 2); !errors.Is(err, stm.ErrCancelled) {
		t.Fatalf("deque PushBackCtx(dead): %v", err)
	}
	if v, ok, err := d.PopBackCtx(bg); err != nil || !ok || v != 1 {
		t.Fatalf("deque PopBackCtx: %v %v %v", v, ok, err)
	}

	if err := q0(tm, dead); err == nil {
		t.Fatal("queue EnqueueCtx(dead) succeeded")
	}
}

// q0 exercises the queue's ctx forms.
func q0(tm *core.TM, dead context.Context) error {
	q := NewTQueue[int](tm)
	if err := q.EnqueueCtx(dead, 1); err != nil {
		return err
	}
	return nil
}
