// Package session is polyserve's stateful session subsystem: per-shard
// commit-ordered change notifiers, a registry of watch sessions with
// exact/prefix matching, and bounded per-session push buffers whose
// overflow cuts the session instead of blocking commits.
//
// The ordering design mirrors the write-ahead log's two-phase append
// (see internal/wal and the walCapture in internal/server): a mutating
// transaction reserves a notifier slot at the end of its body — under a
// durable shard's irrevocable token, so reservation order is exactly
// commit order — then confirms the slot with its changes on commit or
// tombstones it on abort. Slots are DELIVERED strictly in reservation
// order: a slot resolved early waits for its predecessors, so watchers
// observe one commit order, the same one the log records.
package session

import (
	"sync"
	"time"

	"polytm/internal/wire"
)

// Change is one committed mutation handed from a shard's transaction
// capture to its notifier. Key is an owned copy (wire buffers are
// reused); TTL carries SETEX's time-to-live.
type Change struct {
	Op  wire.EventOp
	Key string
	// TTL > 0 arms expiry TTL after delivery (SETEX). TTL == 0 on an
	// EventSet clears any existing deadline — a plain SET means "no
	// expiry" — unless KeepTTL is set.
	TTL time.Duration
	// KeepTTL preserves the key's existing deadline across this write
	// (INCR/DECR: touching a counter does not re-arm or disarm it).
	KeepTTL bool
}

// Notifier orders one shard's committed changes for delivery. Reserve /
// Commit / Cancel follow the transaction lifecycle; the deliver
// callback — TTL-table application plus registry fan-out, supplied by
// the store — runs with slots in reservation order, serialized under
// the notifier's lock.
type Notifier struct {
	deliver func([]Change)

	mu       sync.Mutex
	cond     *sync.Cond
	next     uint64              // next slot id to hand out
	head     uint64              // lowest unresolved-or-undelivered slot
	resolved map[uint64][]Change // slots resolved ahead of head (nil = cancelled)
}

// NewNotifier creates a notifier delivering through fn.
func NewNotifier(fn func([]Change)) *Notifier {
	n := &Notifier{deliver: fn, resolved: make(map[uint64][]Change)}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// Reserve allocates the next slot. Called at the end of a transaction
// body, after the last mutation and before commit — under a durable
// shard's irrevocable token that makes slot order commit order.
func (n *Notifier) Reserve() uint64 {
	n.mu.Lock()
	id := n.next
	n.next++
	n.mu.Unlock()
	return id
}

// Commit resolves a slot with its transaction's changes. When the slot
// is at the head, it (and any successors resolved early) delivers
// before Commit returns — so a mutation that waits for its own slot
// (Wait) is guaranteed its events are buffered and its TTL effects
// visible before the client sees the ack. changes is borrowed for the
// duration of the call; the notifier copies it if delivery must wait.
func (n *Notifier) Commit(id uint64, changes []Change) {
	n.mu.Lock()
	if id == n.head {
		if len(changes) > 0 {
			n.deliver(changes)
		}
		n.head++
		n.drainLocked()
	} else {
		cp := make([]Change, len(changes))
		copy(cp, changes)
		n.resolved[id] = cp
	}
	n.cond.Broadcast()
	n.mu.Unlock()
}

// Cancel tombstones an aborted transaction's slot.
func (n *Notifier) Cancel(id uint64) {
	n.Commit(id, nil)
}

// drainLocked delivers every already-resolved slot now contiguous with
// the head.
func (n *Notifier) drainLocked() {
	for {
		ch, ok := n.resolved[n.head]
		if !ok {
			return
		}
		delete(n.resolved, n.head)
		if len(ch) > 0 {
			n.deliver(ch)
		}
		n.head++
	}
}

// Wait blocks until slot id has been delivered (or cancelled). The
// store calls it before acknowledging a mutation, closing the window
// between "committed" and "watchers/TTL see it".
func (n *Notifier) Wait(id uint64) {
	n.mu.Lock()
	for n.head <= id {
		n.cond.Wait()
	}
	n.mu.Unlock()
}

// Sync blocks until every slot reserved before the call has been
// delivered or cancelled. The TTL reaper runs it before re-checking
// deadlines: any SETEX that committed earlier (under the token, every
// earlier commit also reserved earlier) has applied its deadline by the
// time Sync returns, so the reaper never deletes a key whose TTL was
// just extended.
func (n *Notifier) Sync() {
	n.mu.Lock()
	target := n.next
	for n.head < target {
		n.cond.Wait()
	}
	n.mu.Unlock()
}
