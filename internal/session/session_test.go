package session

import (
	"fmt"
	"sync"
	"testing"

	"polytm/internal/wire"
)

// TestNotifierDeliversInReserveOrder resolves slots out of order and
// asserts delivery still follows reservation order, with cancelled
// slots skipped.
func TestNotifierDeliversInReserveOrder(t *testing.T) {
	var got []string
	n := NewNotifier(func(cs []Change) {
		for _, c := range cs {
			got = append(got, c.Key)
		}
	})
	a, b, c, d := n.Reserve(), n.Reserve(), n.Reserve(), n.Reserve()
	n.Commit(c, []Change{{Op: wire.EventSet, Key: "c"}})
	n.Commit(d, []Change{{Op: wire.EventSet, Key: "d"}})
	if len(got) != 0 {
		t.Fatalf("delivered %v before head resolved", got)
	}
	n.Cancel(b)
	if len(got) != 0 {
		t.Fatalf("delivered %v before head resolved", got)
	}
	n.Commit(a, []Change{{Op: wire.EventSet, Key: "a"}})
	want := []string{"a", "c", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
	n.Wait(d) // everything delivered: must not block
	n.Sync()
}

// TestNotifierWaitBlocksUntilDelivered runs Wait concurrently with a
// straggling predecessor.
func TestNotifierWaitBlocksUntilDelivered(t *testing.T) {
	delivered := make(chan string, 8)
	n := NewNotifier(func(cs []Change) {
		for _, c := range cs {
			delivered <- c.Key
		}
	})
	first := n.Reserve()
	second := n.Reserve()
	n.Commit(second, []Change{{Op: wire.EventSet, Key: "second"}})
	done := make(chan struct{})
	go func() {
		n.Wait(second)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Wait returned before the predecessor resolved")
	default:
	}
	n.Commit(first, []Change{{Op: wire.EventSet, Key: "first"}})
	<-done
	if a, b := <-delivered, <-delivered; a != "first" || b != "second" {
		t.Fatalf("delivery order %q,%q, want first,second", a, b)
	}
}

// TestNotifierConcurrent hammers the notifier from many goroutines and
// asserts every committed change delivers exactly once, in slot order.
func TestNotifierConcurrent(t *testing.T) {
	var mu sync.Mutex
	var got []string
	n := NewNotifier(func(cs []Change) {
		mu.Lock()
		for _, c := range cs {
			got = append(got, c.Key)
		}
		mu.Unlock()
	})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := n.Reserve()
				if i%3 == 0 {
					n.Cancel(id)
					continue
				}
				n.Commit(id, []Change{{Op: wire.EventSet, Key: fmt.Sprintf("w%d-%d", w, i)}})
				n.Wait(id)
			}
		}(w)
	}
	wg.Wait()
	n.Sync()
	perWorker := 0
	for i := 0; i < per; i++ {
		if i%3 != 0 {
			perWorker++
		}
	}
	want := workers * perWorker
	if len(got) != want {
		t.Fatalf("delivered %d changes, want %d", len(got), want)
	}
	seen := make(map[string]bool, len(got))
	for _, k := range got {
		if seen[k] {
			t.Fatalf("change %q delivered twice", k)
		}
		seen[k] = true
	}
}

// TestRegistryMatching covers exact and prefix watches, flush
// broadcast, and the ActiveWatches gate.
func TestRegistryMatching(t *testing.T) {
	r := NewRegistry()
	if r.ActiveWatches() != 0 {
		t.Fatalf("fresh registry reports %d watches", r.ActiveWatches())
	}
	r.Publish(wire.EventSet, "ignored") // no watches: must not count
	s := r.NewSession(16)
	exact := s.Watch("k1", false)
	pre := s.Watch("user:", true)
	if r.ActiveWatches() != 2 || r.Sessions() != 1 {
		t.Fatalf("watches=%d sessions=%d, want 2/1", r.ActiveWatches(), r.Sessions())
	}
	r.Publish(wire.EventSet, "k1")     // exact only
	r.Publish(wire.EventSet, "user:7") // prefix only
	r.Publish(wire.EventDel, "other")  // neither
	r.Publish(wire.EventFlush, "")     // both
	evs, _, dropped, cut := s.Take(nil, nil)
	if dropped != 0 || cut {
		t.Fatalf("dropped=%d cut=%v on an underfull buffer", dropped, cut)
	}
	type k struct {
		id  uint64
		op  wire.EventOp
		key string
	}
	want := []k{
		{exact, wire.EventSet, "k1"},
		{pre, wire.EventSet, "user:7"},
		{exact, wire.EventFlush, ""},
		{pre, wire.EventFlush, ""},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events %v, want %d", len(evs), evs, len(want))
	}
	var lastSeq uint64
	for i, ev := range evs {
		w := want[i]
		if ev.WatchID != w.id || ev.Op != w.op || ev.Key != w.key {
			t.Fatalf("event %d = %+v, want %+v", i, ev, w)
		}
		if ev.Seq < lastSeq {
			t.Fatalf("event %d seq %d below predecessor %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	if got := r.EventsPushed(); got != 4 {
		t.Fatalf("events_pushed=%d, want 4", got)
	}
	if !s.Unwatch(exact) || s.Unwatch(exact) {
		t.Fatal("Unwatch idempotence broken")
	}
	if r.ActiveWatches() != 1 {
		t.Fatalf("watches=%d after unwatch, want 1", r.ActiveWatches())
	}
	s.Close()
	s.Close() // idempotent
	if r.ActiveWatches() != 0 || r.Sessions() != 0 {
		t.Fatalf("watches=%d sessions=%d after close, want 0/0", r.ActiveWatches(), r.Sessions())
	}
}

// TestSessionOverflowCuts fills a tiny buffer and asserts the overflow
// contract: buffered events survive, extra events count as dropped,
// the session reports cut, and nothing ever blocks.
func TestSessionOverflowCuts(t *testing.T) {
	r := NewRegistry()
	s := r.NewSession(2)
	s.Watch("k", false)
	for i := 0; i < 5; i++ {
		r.Publish(wire.EventSet, "k")
	}
	evs, _, dropped, cut := s.Take(nil, nil)
	if !cut {
		t.Fatal("overflowed session not marked cut")
	}
	if len(evs) != 2 || dropped != 3 {
		t.Fatalf("events=%d dropped=%d, want 2 buffered / 3 dropped", len(evs), dropped)
	}
	if r.EventsLost() != 3 || r.EventsPushed() != 2 {
		t.Fatalf("lost=%d pushed=%d, want 3/2", r.EventsLost(), r.EventsPushed())
	}
	// Once overflowed, nothing buffers again even with room taken.
	r.Publish(wire.EventSet, "k")
	evs, _, dropped, cut = s.Take(evs, nil)
	if len(evs) != 0 || dropped != 4 || !cut {
		t.Fatalf("post-cut take: events=%d dropped=%d cut=%v, want 0/4/true", len(evs), dropped, cut)
	}
	s.Close()
}

// TestSessionCtrlQueue orders control frames for the writer.
func TestSessionCtrlQueue(t *testing.T) {
	r := NewRegistry()
	s := r.NewSession(4)
	s.EnqueueCtrl(wire.SessWatchOK, 1)
	s.EnqueueCtrl(wire.SessPong, 0)
	s.EnqueueCtrl(wire.SessWatchOK, 2)
	select {
	case <-s.Wake():
	default:
		t.Fatal("ctrl enqueue did not wake the writer")
	}
	_, ctrls, _, _ := s.Take(nil, nil)
	want := []Ctrl{{Kind: wire.SessWatchOK, WatchID: 1}, {Kind: wire.SessPong}, {Kind: wire.SessWatchOK, WatchID: 2}}
	if fmt.Sprint(ctrls) != fmt.Sprint(want) {
		t.Fatalf("ctrl queue %v, want %v", ctrls, want)
	}
	s.Close()
}
