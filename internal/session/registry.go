package session

import (
	"strings"
	"sync"
	"sync/atomic"

	"polytm/internal/wire"
)

// Registry is the store-wide set of live watch sessions. Publishing a
// change assigns it a global event sequence number and fans it out to
// every session with a matching watch; per-key ordering is inherited
// from the per-shard notifiers (one key always lives on one shard, so
// its changes deliver — and therefore publish — serialized and in
// commit order).
type Registry struct {
	seq     atomic.Uint64 // global event sequence (per-key strictly increasing)
	watches atomic.Int64  // live watches across all sessions — the capture gate

	gauge  atomic.Int64  // live sessions (watch_sessions)
	pushed atomic.Uint64 // events buffered to a session (events_pushed)
	lost   atomic.Uint64 // events dropped on overflowed sessions (events_lost)

	mu       sync.RWMutex
	sessions map[*Session]struct{}
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{sessions: make(map[*Session]struct{})}
}

// ActiveWatches reports the number of live watches — the store's fast
// gate for whether mutations must capture change events at all.
func (r *Registry) ActiveWatches() int64 { return r.watches.Load() }

// Sessions / EventsPushed / EventsLost are the STATS gauges.
func (r *Registry) Sessions() int64      { return r.gauge.Load() }
func (r *Registry) EventsPushed() uint64 { return r.pushed.Load() }
func (r *Registry) EventsLost() uint64   { return r.lost.Load() }

// NewSession registers a session whose push buffer holds up to buffer
// events (<= 0 picks DefaultBuffer). Close it to unregister.
func (r *Registry) NewSession(buffer int) *Session {
	if buffer <= 0 {
		buffer = DefaultBuffer
	}
	s := &Session{reg: r, max: buffer, wake: make(chan struct{}, 1)}
	r.mu.Lock()
	r.sessions[s] = struct{}{}
	r.mu.Unlock()
	r.gauge.Add(1)
	return s
}

func (r *Registry) remove(s *Session) {
	r.mu.Lock()
	_, ok := r.sessions[s]
	delete(r.sessions, s)
	r.mu.Unlock()
	if ok {
		r.gauge.Add(-1)
	}
}

// Publish fans one committed change out to every matching watch. An
// EventFlush matches every watch (its key is empty: the whole keyspace
// went away, including everything the watch covered). Called from the
// per-shard notifier deliver callbacks, so publishes for one key are
// serialized in that key's commit order.
func (r *Registry) Publish(op wire.EventOp, key string) {
	if r.watches.Load() == 0 {
		return
	}
	seq := r.seq.Add(1)
	r.mu.RLock()
	for s := range r.sessions {
		pushed, lost := s.offer(op, key, seq)
		if pushed > 0 {
			r.pushed.Add(pushed)
		}
		if lost > 0 {
			r.lost.Add(lost)
		}
	}
	r.mu.RUnlock()
}

// watch is one registered interest of a session.
type watch struct {
	id     uint64
	key    string
	prefix bool
}

func (w *watch) match(key string) bool {
	if w.prefix {
		return strings.HasPrefix(key, w.key)
	}
	return key == w.key
}
