package session

import (
	"sync"

	"polytm/internal/wire"
)

// DefaultBuffer is the per-session event buffer bound when the server
// does not configure one.
const DefaultBuffer = 1024

// Event is one queued push for a session: a committed change matched to
// one of its watches.
type Event struct {
	WatchID uint64
	Seq     uint64
	Op      wire.EventOp
	Key     string
}

// Ctrl is one queued control frame for a session's writer: the reader
// half of a session connection never writes, so acknowledgements it
// owes (WATCH-OK for a mid-session SessWatch, PONG for a client PING)
// and terminal errors (SessErr, carrying Code) queue here for the
// writer to send in order.
type Ctrl struct {
	Kind    wire.SessKind
	WatchID uint64
	Code    wire.ProtoCode
}

// Session is one connection's watch state: its registered watches, its
// bounded event buffer, and the control queue its reader feeds its
// writer through. All methods are safe for concurrent use; the
// reader/writer goroutines and every shard's notifier share one.
type Session struct {
	reg  *Registry
	max  int
	wake chan struct{}

	mu       sync.Mutex
	watches  []watch
	nextID   uint64
	events   []Event
	ctrl     []Ctrl
	overflow bool
	dropped  uint64
	closed   bool
}

// Watch registers interest in a key (prefix=false) or key prefix and
// returns the watch id events for it will carry. IDs are per-session,
// starting at 1.
func (s *Session) Watch(key string, prefix bool) uint64 {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.watches = append(s.watches, watch{id: id, key: key, prefix: prefix})
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		s.reg.watches.Add(1)
	}
	return id
}

// WatchAck is Watch plus an enqueued WATCH-OK control frame, under one
// lock: no event for the new watch can be buffered between the
// registration and its acknowledgement, so the writer always sends
// WATCH-OK before the watch's first event.
func (s *Session) WatchAck(key string, prefix bool) uint64 {
	s.mu.Lock()
	s.nextID++
	id := s.nextID
	s.watches = append(s.watches, watch{id: id, key: key, prefix: prefix})
	s.ctrl = append(s.ctrl, Ctrl{Kind: wire.SessWatchOK, WatchID: id})
	closed := s.closed
	s.mu.Unlock()
	if !closed {
		s.reg.watches.Add(1)
	}
	s.wakeup()
	return id
}

// Unwatch drops a watch by id, reporting whether it existed. Events
// already buffered for it may still be delivered.
func (s *Session) Unwatch(id uint64) bool {
	s.mu.Lock()
	found := false
	for i := range s.watches {
		if s.watches[i].id == id {
			s.watches = append(s.watches[:i], s.watches[i+1:]...)
			found = true
			break
		}
	}
	closed := s.closed
	s.mu.Unlock()
	if found && !closed {
		s.reg.watches.Add(-1)
	}
	return found
}

// offer matches one published change against the session's watches and
// buffers an event per match. Once the buffer overflows the session is
// marked cut: no further events buffer, every subsequent match counts
// as dropped, and the writer (woken here) sends EVENT-LOST and closes.
// offer never blocks beyond the session mutex — a slow consumer costs
// its own session, never a commit.
func (s *Session) offer(op wire.EventOp, key string, seq uint64) (pushed, lost uint64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0, 0
	}
	for i := range s.watches {
		w := &s.watches[i]
		if op != wire.EventFlush && !w.match(key) {
			continue
		}
		if s.overflow || len(s.events) >= s.max {
			s.overflow = true
			s.dropped++
			lost++
			continue
		}
		s.events = append(s.events, Event{WatchID: w.id, Seq: seq, Op: op, Key: key})
		pushed++
	}
	s.mu.Unlock()
	if pushed > 0 || lost > 0 {
		s.wakeup()
	}
	return pushed, lost
}

// EnqueueCtrl queues a control frame for the writer (WATCH-OK, PONG).
func (s *Session) EnqueueCtrl(kind wire.SessKind, watchID uint64) {
	s.mu.Lock()
	s.ctrl = append(s.ctrl, Ctrl{Kind: kind, WatchID: watchID})
	s.mu.Unlock()
	s.wakeup()
}

// EnqueueErr queues the terminal ERR control frame: the writer sends it
// and closes the session connection.
func (s *Session) EnqueueErr(code wire.ProtoCode) {
	s.mu.Lock()
	s.ctrl = append(s.ctrl, Ctrl{Kind: wire.SessErr, Code: code})
	s.mu.Unlock()
	s.wakeup()
}

// Take moves the session's queued output into the caller's buffers
// (reusing their storage) and reports overflow: events and control
// frames to send, the dropped-event count, and cut=true when the
// session overflowed — the writer sends what it got, then EVENT-LOST
// with the count, then closes.
func (s *Session) Take(ev []Event, ctrl []Ctrl) (events []Event, ctrls []Ctrl, dropped uint64, cut bool) {
	s.mu.Lock()
	events = append(ev[:0], s.events...)
	s.events = s.events[:0]
	ctrls = append(ctrl[:0], s.ctrl...)
	s.ctrl = s.ctrl[:0]
	dropped, cut = s.dropped, s.overflow
	s.mu.Unlock()
	return events, ctrls, dropped, cut
}

// Wake returns the channel the writer parks on; it receives (capacity
// 1, coalesced) whenever the session queues output or closes.
func (s *Session) Wake() <-chan struct{} { return s.wake }

func (s *Session) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// Close unregisters the session: its watches stop matching and its
// buffers are dropped. Idempotent; wakes the writer so it can exit.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	n := int64(len(s.watches))
	s.watches = nil
	s.events = nil
	s.ctrl = nil
	s.mu.Unlock()
	if n > 0 {
		s.reg.watches.Add(-n)
	}
	s.reg.remove(s)
	s.wakeup()
}
