package wire

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func roundTripReplFrame(t *testing.T, f *ReplFrame) *ReplFrame {
	t.Helper()
	frame, err := AppendReplFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendReplFrame(%v): %v", f.Kind, err)
	}
	payload, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	dec := new(ReplFrame)
	if err := DecodeReplFrame(dec, payload); err != nil {
		t.Fatalf("DecodeReplFrame(%v): %v", f.Kind, err)
	}
	return dec
}

func TestReplFrameRoundTrip(t *testing.T) {
	frames := []*ReplFrame{
		{Kind: ReplWALBatch, Shard: 3, Recs: []ReplRec{
			{Seq: 1, Payload: []byte("rec-one")},
			{Seq: 2, Payload: []byte("")},
			{Seq: 9000, Payload: []byte("rec-three")},
		}},
		{Kind: ReplWALBatch, Shard: 0},
		{Kind: ReplAck, Acks: []ReplAckEntry{
			{Shard: 0, Seq: 17, Bytes: 4096},
			{Shard: 1, Seq: 0, Bytes: 0},
		}},
		{Kind: ReplAck},
		{Kind: ReplSnapBatch, Shard: 2, Pairs: []KV{
			{Key: []byte("a"), Val: []byte("1")},
			{Key: []byte(""), Val: []byte("")},
		}},
		{Kind: ReplSnapDone, Shard: 5, CoverSeq: 123456},
		{Kind: ReplSnapDone, Shard: 1, CoverSeq: 77, Mode: ReplCatchupDelta, Incarnation: 1723400000000000000},
		{Kind: ReplPing},
		{Kind: ReplHello, Incarnation: 42, Acks: []ReplAckEntry{
			{Shard: 0, Seq: 9},
			{Shard: 3, Seq: 0},
		}},
		{Kind: ReplHello},
		{Kind: ReplDeltaBatch, Shard: 2, Deltas: []ReplDelta{
			{Key: []byte("k1"), Val: []byte("v1")},
			{Key: []byte("gone"), Del: true},
			{Key: []byte(""), Val: []byte("")},
		}},
		{Kind: ReplDeltaBatch, Shard: 0},
	}
	for _, f := range frames {
		dec := roundTripReplFrame(t, f)
		norm := func(f *ReplFrame) ReplFrame {
			c := *f
			if len(c.Recs) == 0 {
				c.Recs = nil
			}
			if len(c.Pairs) == 0 {
				c.Pairs = nil
			}
			if len(c.Acks) == 0 {
				c.Acks = nil
			}
			if len(c.Deltas) == 0 {
				c.Deltas = nil
			}
			return c
		}
		if got, want := norm(dec), norm(f); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: round trip mismatch:\n got  %+v\n want %+v", f.Kind, got, want)
		}
	}
}

func TestReplFrameDecodeReuse(t *testing.T) {
	// One decode target across frames of different kinds must not leak
	// state from the previous frame.
	var f ReplFrame
	big, err := AppendReplFrame(nil, &ReplFrame{Kind: ReplWALBatch, Shard: 7, Recs: []ReplRec{{Seq: 4, Payload: []byte("p")}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeReplFrame(&f, big[4:]); err != nil {
		t.Fatal(err)
	}
	ping, err := AppendReplFrame(nil, &ReplFrame{Kind: ReplPing})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeReplFrame(&f, ping[4:]); err != nil {
		t.Fatal(err)
	}
	if f.Kind != ReplPing || f.Shard != 0 || len(f.Recs) != 0 {
		t.Fatalf("stale state after reuse: %+v", f)
	}
}

func TestReplFrameHostileInput(t *testing.T) {
	cases := [][]byte{
		{},                                 // no kind byte
		{99},                               // unknown kind
		{byte(ReplWALBatch)},               // missing shard
		{byte(ReplWALBatch), 0},            // missing count
		{byte(ReplWALBatch), 0, 2},         // count > remaining bytes
		{byte(ReplSnapDone), 1},            // missing coverSeq
		{byte(ReplSnapDone), 1, 7},         // missing mode byte
		{byte(ReplSnapDone), 1, 7, 9},      // unknown catch-up mode
		{byte(ReplSnapDone), 1, 7, 1},      // missing incarnation
		{byte(ReplPing), 0},                // trailing byte
		{byte(ReplAck), 0xFF, 0xFF},        // unterminated uvarint count
		{byte(ReplHello)},                  // missing incarnation
		{byte(ReplHello), 5},               // missing count
		{byte(ReplHello), 5, 2, 0, 1},      // count > remaining entries
		{byte(ReplDeltaBatch)},             // missing shard
		{byte(ReplDeltaBatch), 0, 1},       // count > remaining bytes
		{byte(ReplDeltaBatch), 0, 1, 2},    // unknown entry kind
		{byte(ReplDeltaBatch), 0, 1, 0, 1}, // set entry missing key bytes
	}
	var f ReplFrame
	for _, payload := range cases {
		if err := DecodeReplFrame(&f, payload); err == nil {
			t.Errorf("DecodeReplFrame(%v): expected error", payload)
		}
	}
}

func TestNewOpcodesRoundTrip(t *testing.T) {
	for _, op := range []Op{OpPing, OpSubscribeWAL} {
		dec := roundTripRequest(t, &Request{Op: op, Sem: SemDefault})
		if dec.Op != op {
			t.Fatalf("op %v decoded as %v", op, dec.Op)
		}
		if op.Mutates() {
			t.Fatalf("%v must not count as mutating", op)
		}
	}
	// SUBSCRIBE-WAL's OK response carries the store-shard count.
	payload, err := AppendResponse(nil, OpSubscribeWAL, &Response{Status: StatusOK, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(payload, OpSubscribeWAL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.N != 8 {
		t.Fatalf("shard count = %d, want 8", resp.N)
	}
	// PING's OK response is empty.
	payload, err = AppendResponse(nil, OpPing, &Response{Status: StatusOK})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != 1 {
		t.Fatalf("PING response payload = %v, want bare status", payload)
	}
	if _, err := DecodeResponse(payload, OpPing, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNotPrimaryError(t *testing.T) {
	e := &NotPrimaryError{Primary: "10.0.0.7:7700"}
	if !errors.Is(e, ErrNotPrimary) {
		t.Fatal("NotPrimaryError must match ErrNotPrimary")
	}
	got, ok := ParseNotPrimary(e.Error())
	if !ok || got.Primary != e.Primary {
		t.Fatalf("ParseNotPrimary(%q) = %+v, %v", e.Error(), got, ok)
	}
	// Unknown-primary form round trips too.
	bare := &NotPrimaryError{}
	got, ok = ParseNotPrimary(bare.Error())
	if !ok || got.Primary != "" {
		t.Fatalf("ParseNotPrimary(%q) = %+v, %v", bare.Error(), got, ok)
	}
	for _, msg := range []string{"", "wire: server error", "wire: not primary; primary="} {
		if _, ok := ParseNotPrimary(msg); ok {
			t.Errorf("ParseNotPrimary(%q) unexpectedly ok", msg)
		}
	}
}
