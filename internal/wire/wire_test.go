package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"polytm/internal/stm"
)

func roundTripRequest(t *testing.T, r *Request) *Request {
	t.Helper()
	payload, err := AppendRequest(nil, r)
	if err != nil {
		t.Fatalf("AppendRequest(%v): %v", r.Op, err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	got, err := ReadFrame(bufio.NewReader(&buf), 0)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	dec, err := DecodeRequest(got)
	if err != nil {
		t.Fatalf("DecodeRequest(%v): %v", r.Op, err)
	}
	return dec
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpGet, Sem: SemDefault, Key: []byte("k")},
		{Op: OpGet, Sem: byte(stm.SemanticsDef), Key: []byte("k")},
		{Op: OpSet, Sem: SemDefault, Key: []byte("key"), Val: []byte("value")},
		{Op: OpSet, Sem: SemDefault, Key: []byte(""), Val: []byte("")},
		{Op: OpCAS, Sem: byte(stm.SemanticsIrrevocable), Key: []byte("k"), Old: []byte("a"), Val: []byte("b")},
		{Op: OpDel, Sem: SemDefault, Key: []byte("gone")},
		{Op: OpScan, Sem: byte(stm.SemanticsWeak), From: []byte("a"), To: []byte("z"), Limit: 42},
		{Op: OpScan, Sem: SemDefault, From: []byte(""), To: []byte(""), Limit: 0},
		{Op: OpMGet, Sem: byte(stm.SemanticsSnapshot), Keys: [][]byte{[]byte("a"), []byte("b"), []byte("c")}},
		{Op: OpTxn, Sem: SemDefault, Batch: []Request{
			{Op: OpGet, Sem: SemDefault, Key: []byte("x")},
			{Op: OpSet, Sem: SemDefault, Key: []byte("y"), Val: []byte("1")},
			{Op: OpCAS, Sem: SemDefault, Key: []byte("z"), Old: []byte("0"), Val: []byte("1")},
			{Op: OpDel, Sem: SemDefault, Key: []byte("w")},
		}},
		{Op: OpStats, Sem: SemDefault},
		{Op: OpFlush, Sem: SemDefault},
		{Op: OpRebuild, Sem: SemDefault},
	}
	for _, r := range reqs {
		dec := roundTripRequest(t, r)
		norm := func(r *Request) *Request {
			c := *r
			if len(c.Key) == 0 {
				c.Key = nil
			}
			if len(c.Val) == 0 {
				c.Val = nil
			}
			if len(c.Old) == 0 {
				c.Old = nil
			}
			if len(c.From) == 0 {
				c.From = nil
			}
			if len(c.To) == 0 {
				c.To = nil
			}
			return &c
		}
		want := norm(r)
		got := norm(dec)
		if len(want.Batch) == 0 {
			want.Batch, got.Batch = nil, nil
		} else {
			for i := range want.Batch {
				want.Batch[i] = *norm(&want.Batch[i])
				got.Batch[i] = *norm(&got.Batch[i])
			}
		}
		if len(want.Keys) == 0 {
			want.Keys, got.Keys = nil, nil
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%v round trip:\n got %+v\nwant %+v", r.Op, got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op     Op
		subOps []Op
		resp   *Response
	}{
		{OpGet, nil, &Response{Status: StatusOK, Val: []byte("v")}},
		{OpGet, nil, &Response{Status: StatusNotFound}},
		{OpSet, nil, &Response{Status: StatusOK}},
		{OpCAS, nil, &Response{Status: StatusOK}},
		{OpCAS, nil, &Response{Status: StatusCASMismatch, Val: []byte("current")}},
		{OpCAS, nil, &Response{Status: StatusNotFound}},
		{OpDel, nil, &Response{Status: StatusNotFound}},
		{OpScan, nil, &Response{Status: StatusOK, Pairs: []KV{
			{Key: []byte("a"), Val: []byte("1")},
			{Key: []byte("b"), Val: []byte("2")},
		}}},
		{OpScan, nil, &Response{Status: StatusOK}},
		{OpMGet, nil, &Response{Status: StatusOK, Batch: []Response{
			{Status: StatusOK, Val: []byte("x")},
			{Status: StatusNotFound},
		}}},
		{OpTxn, []Op{OpGet, OpSet}, &Response{Status: StatusOK, Batch: []Response{
			{Status: StatusOK, Val: []byte("got"), SubOp: OpGet},
			{Status: StatusOK, SubOp: OpSet},
		}}},
		{OpStats, nil, &Response{Status: StatusOK, Counters: []Counter{
			{Name: "commits", Value: 17},
			{Name: "aborts.def", Value: 3},
		}}},
		{OpFlush, nil, &Response{Status: StatusOK, N: 123}},
		{OpRebuild, nil, &Response{Status: StatusOK, N: 9}},
		{OpGet, nil, &Response{Status: StatusErr, Msg: "boom"}},
		{OpTxn, []Op{OpGet}, &Response{Status: StatusErr, Msg: "snapshot write"}},
	}
	for _, c := range cases {
		payload, err := AppendResponse(nil, c.op, c.resp)
		if err != nil {
			t.Fatalf("AppendResponse(%v): %v", c.op, err)
		}
		dec, err := DecodeResponse(payload, c.op, c.subOps)
		if err != nil {
			t.Fatalf("DecodeResponse(%v): %v", c.op, err)
		}
		// SubOp is encode-side only.
		want := *c.resp
		want.SubOp = 0
		for i := range want.Batch {
			want.Batch[i].SubOp = 0
		}
		if len(want.Val) == 0 {
			want.Val = nil
		}
		if dec.Status != want.Status || !bytes.Equal(dec.Val, want.Val) || dec.Msg != want.Msg || dec.N != want.N {
			t.Errorf("%v round trip: got %+v want %+v", c.op, dec, want)
		}
		if !reflect.DeepEqual(dec.Counters, want.Counters) && (len(dec.Counters) != 0 || len(want.Counters) != 0) {
			t.Errorf("%v counters: got %+v want %+v", c.op, dec.Counters, want.Counters)
		}
		if len(dec.Pairs) != len(want.Pairs) {
			t.Errorf("%v pairs: got %d want %d", c.op, len(dec.Pairs), len(want.Pairs))
		} else {
			for i := range want.Pairs {
				if !bytes.Equal(dec.Pairs[i].Key, want.Pairs[i].Key) || !bytes.Equal(dec.Pairs[i].Val, want.Pairs[i].Val) {
					t.Errorf("%v pair %d: got %+v want %+v", c.op, i, dec.Pairs[i], want.Pairs[i])
				}
			}
		}
		if len(dec.Batch) != len(want.Batch) {
			t.Errorf("%v batch: got %d want %d", c.op, len(dec.Batch), len(want.Batch))
		} else {
			for i := range want.Batch {
				if dec.Batch[i].Status != want.Batch[i].Status || !bytes.Equal(dec.Batch[i].Val, want.Batch[i].Val) {
					t.Errorf("%v batch %d: got %+v want %+v", c.op, i, dec.Batch[i], want.Batch[i])
				}
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr error
	}{
		{"empty", nil, ErrTruncated},
		{"op only", []byte{byte(OpGet)}, ErrTruncated},
		{"bad op", []byte{99, SemDefault}, ErrBadOp},
		{"bad sem", []byte{byte(OpGet), 7}, ErrBadSemantics},
		{"truncated key", []byte{byte(OpGet), SemDefault, 5, 'a'}, ErrTruncated},
		{"txn bad subop", []byte{byte(OpTxn), SemDefault, 1, byte(OpFlush)}, ErrBadSubOp},
		{"mget absurd count", append([]byte{byte(OpMGet), SemDefault}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), ErrTruncated},
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c.payload); !errors.Is(err, c.wantErr) {
			t.Errorf("%s: DecodeRequest error = %v, want %v", c.name, err, c.wantErr)
		}
	}
	// Trailing bytes are an error too.
	payload, err := AppendRequest(nil, &Request{Op: OpGet, Sem: SemDefault, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRequest(append(payload, 0)); err == nil {
		t.Error("DecodeRequest accepted trailing bytes")
	}
}

func TestReadFrameLimits(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(buf.Bytes())), 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize frame error = %v, want ErrFrameTooLarge", err)
	}
	// Truncated frame body.
	raw := buf.Bytes()[:20]
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(raw)), 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame error = %v, want ErrUnexpectedEOF", err)
	}
	// Clean EOF at a frame boundary.
	if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)), 0); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream error = %v, want EOF", err)
	}
}

// TestPipelinedFrames writes several frames back-to-back and reads them
// in order — the wire-level property request pipelining rests on.
func TestPipelinedFrames(t *testing.T) {
	var buf bytes.Buffer
	var want [][]byte
	for i := 0; i < 5; i++ {
		payload, err := AppendRequest(nil, &Request{Op: OpSet, Sem: SemDefault,
			Key: []byte{byte('a' + i)}, Val: bytes.Repeat([]byte{byte(i)}, i*7)})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, payload)
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i := range want {
		got, err := ReadFrame(br, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(br, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}
