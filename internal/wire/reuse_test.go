package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestReadFrameBufLimits proves the reusable-buffer read path keeps
// exactly ReadFrame's rejection behaviour on hostile input: an oversize
// announced length is refused before any buffer is grown, a truncated
// body surfaces ErrUnexpectedEOF, and a clean EOF stays io.EOF — with a
// pre-sized reuse buffer in play in every case.
func TestReadFrameBufLimits(t *testing.T) {
	reuse := make([]byte, 0, 256)

	// Oversize frame.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrameBuf(bufio.NewReader(bytes.NewReader(buf.Bytes())), reuse, 50); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversize frame error = %v, want ErrFrameTooLarge", err)
	}

	// Truncated frame body.
	raw := buf.Bytes()[:20]
	if _, err := ReadFrameBuf(bufio.NewReader(bytes.NewReader(raw)), reuse, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame error = %v, want ErrUnexpectedEOF", err)
	}

	// Truncated header.
	if _, err := ReadFrameBuf(bufio.NewReader(bytes.NewReader(raw[:2])), reuse, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header error = %v, want ErrUnexpectedEOF", err)
	}

	// Clean EOF at a frame boundary.
	if _, err := ReadFrameBuf(bufio.NewReader(bytes.NewReader(nil)), reuse, 0); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream error = %v, want EOF", err)
	}

	// A hostile announced length larger than maxFrame must not grow the
	// reuse buffer: the length check runs before any allocation.
	small := make([]byte, 0, 8)
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := ReadFrameBuf(bufio.NewReader(bytes.NewReader(hostile)), small, 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("hostile length error = %v, want ErrFrameTooLarge", err)
	}
}

// TestReadFrameBufReuse streams frames of varying sizes through one
// reuse buffer and checks contents, growth-only-when-needed, and
// aliasing (a frame that fits returns a view of the same storage).
func TestReadFrameBufReuse(t *testing.T) {
	var buf bytes.Buffer
	sizes := []int{100, 10, 0, 200, 50}
	for i, n := range sizes {
		if err := WriteFrame(&buf, bytes.Repeat([]byte{byte('a' + i)}, n)); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	var frame []byte
	for i, n := range sizes {
		var err error
		prevCap := cap(frame)
		frame, err = ReadFrameBuf(br, frame, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if len(frame) != n {
			t.Fatalf("frame %d: len = %d, want %d", i, len(frame), n)
		}
		if !bytes.Equal(frame, bytes.Repeat([]byte{byte('a' + i)}, n)) {
			t.Fatalf("frame %d: content mismatch", i)
		}
		if n <= prevCap && cap(frame) != prevCap {
			t.Fatalf("frame %d: buffer reallocated (cap %d -> %d) though %d bytes fit", i, prevCap, cap(frame), n)
		}
	}
	if _, err := ReadFrameBuf(br, frame, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

// TestDecodeRequestIntoHostile drives the in-place decoder over the
// same hostile corpus as DecodeRequest — a reused Request must reject
// exactly what a fresh one rejects.
func TestDecodeRequestIntoHostile(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
		wantErr error
	}{
		{"empty", nil, ErrTruncated},
		{"op only", []byte{byte(OpGet)}, ErrTruncated},
		{"bad op", []byte{99, SemDefault}, ErrBadOp},
		{"bad sem", []byte{byte(OpGet), 7}, ErrBadSemantics},
		{"truncated key", []byte{byte(OpGet), SemDefault, 5, 'a'}, ErrTruncated},
		{"txn bad subop", []byte{byte(OpTxn), SemDefault, 1, byte(OpFlush)}, ErrBadSubOp},
		{"mget absurd count", append([]byte{byte(OpMGet), SemDefault}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01), ErrTruncated},
	}
	var req Request
	// Pre-populate the reused request with a rich decode so stale state
	// is available to leak.
	seed, err := AppendRequest(nil, &Request{Op: OpMGet, Sem: SemDefault,
		Keys: [][]byte{[]byte("k1"), []byte("k2"), []byte("k3")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestInto(&req, seed); err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if err := DecodeRequestInto(&req, c.payload); !errors.Is(err, c.wantErr) {
			t.Errorf("%s: DecodeRequestInto error = %v, want %v", c.name, err, c.wantErr)
		}
	}
	// Trailing bytes are an error too.
	payload, err := AppendRequest(nil, &Request{Op: OpGet, Sem: SemDefault, Key: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestInto(&req, append(payload, 0)); err == nil {
		t.Error("DecodeRequestInto accepted trailing bytes")
	}
}

// TestDecodeRequestIntoNoStaleState decodes frames of shrinking shapes
// through one reused Request and checks nothing from an earlier decode
// survives into a later one.
func TestDecodeRequestIntoNoStaleState(t *testing.T) {
	var req Request

	enc := func(r *Request) []byte {
		p, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	// 1: a TXN batch with three sub-ops.
	p := enc(&Request{Op: OpTxn, Sem: SemDefault, Batch: []Request{
		{Op: OpSet, Key: []byte("a"), Val: []byte("1")},
		{Op: OpCAS, Key: []byte("b"), Old: []byte("x"), Val: []byte("y")},
		{Op: OpDel, Key: []byte("c")},
	}})
	if err := DecodeRequestInto(&req, p); err != nil {
		t.Fatal(err)
	}
	if len(req.Batch) != 3 || req.Batch[1].Op != OpCAS || string(req.Batch[1].Old) != "x" {
		t.Fatalf("txn decode: %+v", req)
	}

	// 2: a smaller TXN — the third stale sub-entry must be gone, and a
	// reused DEL entry must not keep the CAS entry's Old/Val.
	p = enc(&Request{Op: OpTxn, Sem: SemDefault, Batch: []Request{
		{Op: OpGet, Key: []byte("g")},
		{Op: OpDel, Key: []byte("d")},
	}})
	if err := DecodeRequestInto(&req, p); err != nil {
		t.Fatal(err)
	}
	if len(req.Batch) != 2 {
		t.Fatalf("batch len = %d, want 2", len(req.Batch))
	}
	if req.Batch[0].Val != nil || req.Batch[0].Old != nil || req.Batch[1].Val != nil || req.Batch[1].Old != nil {
		t.Fatalf("stale sub-op fields survived reuse: %+v", req.Batch)
	}

	// 3: an MGET, then a plain GET — Keys and Batch must both reset.
	p = enc(&Request{Op: OpMGet, Sem: SemDefault, Keys: [][]byte{[]byte("k1"), []byte("k2")}})
	if err := DecodeRequestInto(&req, p); err != nil {
		t.Fatal(err)
	}
	if len(req.Keys) != 2 || len(req.Batch) != 0 {
		t.Fatalf("mget decode: keys=%d batch=%d", len(req.Keys), len(req.Batch))
	}
	p = enc(&Request{Op: OpGet, Sem: SemDefault, Key: []byte("solo")})
	if err := DecodeRequestInto(&req, p); err != nil {
		t.Fatal(err)
	}
	if len(req.Keys) != 0 || len(req.Batch) != 0 || string(req.Key) != "solo" {
		t.Fatalf("get after mget: %+v", req)
	}

	// 4: a failed decode must not be executable as the previous request:
	// Op is reset before parsing, so a truncated frame leaves a request
	// that no longer claims to be the old opcode with the old fields.
	if err := DecodeRequestInto(&req, []byte{byte(OpSet), SemDefault, 3, 'a'}); err == nil {
		t.Fatal("truncated SET decoded")
	}
	if string(req.Key) == "solo" {
		t.Fatal("failed decode kept the previous request's key")
	}
}
