package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestSessFrameRoundTrip(t *testing.T) {
	frames := []SessFrame{
		{Kind: SessEvent, WatchID: 1, Seq: 99, Op: EventSet, Key: []byte("k")},
		{Kind: SessEvent, WatchID: 7, Seq: 100, Op: EventDel, Key: []byte("gone")},
		{Kind: SessEvent, WatchID: 7, Seq: 101, Op: EventExpire, Key: []byte("ttl")},
		{Kind: SessEvent, WatchID: 7, Seq: 102, Op: EventFlush, Key: []byte{}},
		{Kind: SessEventLost, Dropped: 1234},
		{Kind: SessPing},
		{Kind: SessPong},
		{Kind: SessWatch, Key: []byte("exact")},
		{Kind: SessWatch, Key: []byte("pre:"), Prefix: true},
		{Kind: SessWatchOK, WatchID: 8},
		{Kind: SessUnwatch, WatchID: 8},
		{Kind: SessErr, Code: ProtoBadSession, Detail: []byte("nope")},
	}
	var got SessFrame // one reused frame, like the session loops
	for i := range frames {
		f := &frames[i]
		enc, err := AppendSessFrame(nil, f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.Kind, err)
		}
		if err := DecodeSessFrame(&got, enc[4:]); err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.WatchID != f.WatchID || got.Seq != f.Seq ||
			got.Op != f.Op || got.Prefix != f.Prefix || got.Dropped != f.Dropped ||
			got.Code != f.Code ||
			!bytes.Equal(got.Key, f.Key) || !bytes.Equal(got.Detail, f.Detail) {
			t.Fatalf("%v: round trip mismatch:\nsent %+v\ngot  %+v", f.Kind, f, got)
		}
	}
}

func TestSessFrameRejectsGarbage(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", []byte{}},
		{"unknown kind", []byte{0xEE}},
		{"event truncated", []byte{byte(SessEvent), 1, 1}},
		{"event bad op", []byte{byte(SessEvent), 1, 1, 99, 1, 'k'}},
		{"watch bad mode", []byte{byte(SessWatch), 7, 1, 'k'}},
		{"ping trailing", []byte{byte(SessPing), 0}},
		{"err truncated", []byte{byte(SessErr), byte(ProtoMalformed)}},
	}
	var f SessFrame
	for _, c := range cases {
		if err := DecodeSessFrame(&f, c.payload); err == nil {
			t.Errorf("%s: decoder accepted %x", c.name, c.payload)
		}
	}
}

func TestProtocolErrorWireFormat(t *testing.T) {
	for _, e := range []*ProtocolError{
		{Code: ProtoUnknownOp},
		{Code: ProtoMalformed, Detail: "5 trailing bytes in payload"},
		{Code: ProtoOversize, Detail: "frame exceeds size limit"},
		{Code: ProtoBadSession, Detail: "WATCH on a session connection"},
	} {
		if !errors.Is(e, ErrProtocol) {
			t.Fatalf("%v does not match ErrProtocol", e)
		}
		got, ok := ParseProtocolError(e.Error())
		if !ok {
			t.Fatalf("ParseProtocolError rejected %q", e.Error())
		}
		if got.Code != e.Code || got.Detail != e.Detail {
			t.Fatalf("parse mismatch: sent %+v got %+v", e, got)
		}
	}
	for _, msg := range []string{
		"", "boom", "wire: not primary",
		"wire: protocol error",                // no code
		"wire: protocol error; code=espresso", // unknown code
	} {
		if pe, ok := ParseProtocolError(msg); ok {
			t.Fatalf("ParseProtocolError accepted %q as %+v", msg, pe)
		}
	}
	// A StatusErr response carrying the format folds back into the typed
	// error on the client side.
	r := &Response{Status: StatusErr, Msg: (&ProtocolError{Code: ProtoUnknownOp, Detail: "Op(200)"}).Error()}
	err := r.Err()
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("Response.Err() = %v, want ErrProtocol match", err)
	}
	var pe *ProtocolError
	if !errors.As(err, &pe) || pe.Code != ProtoUnknownOp {
		t.Fatalf("Response.Err() = %#v, want *ProtocolError{ProtoUnknownOp}", err)
	}
}

func TestSessionOpcodeCodec(t *testing.T) {
	reqs := []Request{
		{Op: OpWatch, Sem: SemDefault, Key: []byte("k")},
		{Op: OpWatch, Sem: SemDefault, Key: []byte("user:"), Prefix: true},
		{Op: OpIncr, Sem: SemDefault, Key: []byte("ctr"), Delta: 3},
		{Op: OpDecr, Sem: SemDefault, Key: []byte("ctr"), Delta: 10},
		{Op: OpSetEx, Sem: SemDefault, Key: []byte("k"), Val: []byte("v"), TTLMillis: 250},
	}
	var got Request
	for i := range reqs {
		r := &reqs[i]
		payload, err := AppendRequest(nil, r)
		if err != nil {
			t.Fatalf("%v: encode: %v", r.Op, err)
		}
		if err := DecodeRequestInto(&got, payload); err != nil {
			t.Fatalf("%v: decode: %v", r.Op, err)
		}
		if got.Op != r.Op || !bytes.Equal(got.Key, r.Key) || !bytes.Equal(got.Val, r.Val) ||
			got.Delta != r.Delta || got.TTLMillis != r.TTLMillis || got.Prefix != r.Prefix {
			t.Fatalf("%v: round trip mismatch:\nsent %+v\ngot  %+v", r.Op, r, got)
		}
	}
	// Field hygiene: a SETEX decoded into a reused Request must not leak
	// into a following WATCH decode, and vice versa.
	payload, _ := AppendRequest(nil, &reqs[0]) // exact-key WATCH
	if err := DecodeRequestInto(&got, payload); err != nil {
		t.Fatal(err)
	}
	if got.Delta != 0 || got.TTLMillis != 0 || got.Prefix {
		t.Fatalf("stale session fields after reuse: %+v", got)
	}

	if _, err := AppendRequest(nil, &Request{Op: OpSetEx, Sem: SemDefault, Key: []byte("k"), Val: []byte("v"), TTLMillis: 1}); err != nil {
		t.Fatal(err)
	}
	if err := DecodeRequestInto(&got, []byte{byte(OpSetEx), SemDefault, 1, 'k', 1, 'v', 0}); !errors.Is(err, ErrZeroTTL) {
		t.Fatalf("zero TTL decode: err=%v, want ErrZeroTTL", err)
	}
	if err := DecodeRequestInto(&got, []byte{byte(OpWatch), SemDefault, 9, 1, 'k'}); !errors.Is(err, ErrBadWatchMode) {
		t.Fatalf("bad WATCH mode decode: err=%v, want ErrBadWatchMode", err)
	}

	// Responses.
	for _, c := range []struct {
		op   Op
		resp Response
	}{
		{OpWatch, Response{Status: StatusOK, N: 5}},
		{OpIncr, Response{Status: StatusOK, Int: 41}},
		{OpDecr, Response{Status: StatusOK, Int: -41}},
		{OpSetEx, Response{Status: StatusOK}},
	} {
		payload, err := AppendResponse(nil, c.op, &c.resp)
		if err != nil {
			t.Fatalf("%v: encode: %v", c.op, err)
		}
		dec, err := DecodeResponse(payload, c.op, nil)
		if err != nil {
			t.Fatalf("%v: decode: %v", c.op, err)
		}
		if dec.Status != c.resp.Status || dec.N != c.resp.N || dec.Int != c.resp.Int {
			t.Fatalf("%v: round trip mismatch: sent %+v got %+v", c.op, c.resp, dec)
		}
	}
}
