// Replication streaming frames.
//
// After a SUBSCRIBE-WAL request is answered OK the connection leaves the
// request/response protocol: the primary pushes frames to the follower
// and the follower pushes ACK frames back, full duplex, both using the
// same 4-byte length framing as the rest of the protocol. Each push
// payload is
//
//	kind(1) | body
//
// with the per-kind layouts documented on the ReplKind constants. The
// same frame family is the substrate a future watch/subscribe session
// layer rides on — a subscription is just a feed whose records are
// filtered, so the framing is designed once here.
package wire

import (
	"errors"
	"strings"
)

// ReplKind is the first payload byte of a replication push frame.
type ReplKind byte

const (
	// ReplWALBatch carries committed WAL records for one shard, in log
	// order (primary → follower). Body: uvarint shard | uvarint n |
	// n × (uvarint seq, bytes payload). Payloads are verbatim WAL record
	// payloads (see internal/wal); seqs are that shard's WAL sequence
	// numbers and strictly increase within and across batches.
	ReplWALBatch ReplKind = 1
	// ReplAck reports the follower's applied positions (follower →
	// primary). Body: uvarint n | n × (uvarint shard, uvarint seq,
	// uvarint bytes): for each shard the highest contiguously applied
	// WAL seq and the cumulative applied payload bytes. Also sent in
	// answer to ReplPing, so the primary's idle-detection and
	// acked-offset tracking share one frame.
	ReplAck ReplKind = 2
	// ReplSnapBatch carries key/value pairs of the catch-up snapshot for
	// one shard (primary → follower). Body: uvarint shard | uvarint n |
	// n × (key, val). The first ReplSnapBatch for a shard implicitly
	// clears that shard on the follower.
	ReplSnapBatch ReplKind = 3
	// ReplSnapDone ends one shard's catch-up — snapshot or delta. Body:
	// uvarint shard | uvarint coverSeq | mode(1) | uvarint incarnation:
	// every WAL record with seq <= coverSeq is already reflected in the
	// shipped state, and every record with a larger seq will arrive in
	// ReplWALBatch frames. mode is ReplCatchupSnap (the shard was
	// replaced whole) or ReplCatchupDelta (churn-bounded ReplDeltaBatch
	// frames were layered onto the follower's existing state).
	// incarnation identifies the primary process whose WAL seq space
	// coverSeq lives in; the follower echoes it in its next ReplHello so
	// the primary can tell whether the follower's applied positions are
	// comparable to its own chain (seqs restart at 1 per process).
	ReplSnapDone ReplKind = 4
	// ReplPing is the link heartbeat (primary → follower, sent when the
	// feed has been idle past its budget). Body: empty. The follower
	// answers with a ReplAck.
	ReplPing ReplKind = 5
	// ReplHello introduces a (re)connecting follower (follower →
	// primary, sent once right after the SUBSCRIBE-WAL response). Body:
	// uvarint incarnation | uvarint n | n × (uvarint shard, uvarint
	// seq) | uvarint epoch: the primary incarnation the follower last
	// caught up from (0 = never), its applied position per shard within
	// it, and the routing epoch of the topology those positions are
	// indexed by. The primary uses the triple to choose delta catch-up
	// over a full snapshot: positions under a different routing epoch
	// are incomparable (shards may have split or merged), so an epoch
	// mismatch forces snapshot catch-up for every shard.
	ReplHello ReplKind = 6
	// ReplDeltaBatch carries churn-bounded catch-up entries for one
	// shard (primary → follower). Body: uvarint shard | uvarint n | n ×
	// (kind(1) | key | [val]) with kind 0 = set (key, val follow) and 1
	// = tombstone (key only: delete). Unlike ReplSnapBatch it layers
	// onto — never clears — the follower's existing shard state; last
	// writer wins.
	ReplDeltaBatch ReplKind = 7
	// ReplTopology announces the primary's routing table (primary →
	// follower, sent once right after reading the follower's HELLO and
	// again never — a topology change cuts every feed, so a follower
	// always learns the new table through a reconnect). Body: uvarint
	// epoch | uvarint n | n × (uvarint id, uvarint mod, uvarint res):
	// the routing epoch and, per table position, the shard's stable id
	// and hash slice (a key routes to the shard where hash % mod ==
	// res). All shard indices in subsequent frames of this feed are
	// positions in this table.
	ReplTopology ReplKind = 8
)

// ReplSnapDone catch-up modes.
const (
	ReplCatchupSnap  byte = 0
	ReplCatchupDelta byte = 1
)

// String names the frame kind.
func (k ReplKind) String() string {
	switch k {
	case ReplWALBatch:
		return "WAL-BATCH"
	case ReplAck:
		return "ACK"
	case ReplSnapBatch:
		return "SNAP-BATCH"
	case ReplSnapDone:
		return "SNAP-DONE"
	case ReplPing:
		return "PING"
	case ReplHello:
		return "HELLO"
	case ReplDeltaBatch:
		return "DELTA-BATCH"
	case ReplTopology:
		return "TOPOLOGY"
	default:
		return "ReplKind(?)"
	}
}

// ErrBadReplFrame reports an unknown replication frame kind.
var ErrBadReplFrame = errors.New("wire: unknown replication frame kind")

// ReplRec is one WAL record of a ReplWALBatch frame.
type ReplRec struct {
	Seq     uint64
	Payload []byte
}

// ReplAckEntry is one shard's applied position in a ReplAck frame.
// ReplHello reuses it for the follower's per-shard positions (Bytes
// stays 0 there).
type ReplAckEntry struct {
	Shard uint64
	Seq   uint64 // highest contiguously applied WAL seq
	Bytes uint64 // cumulative applied payload bytes
}

// ReplDelta is one entry of a ReplDeltaBatch frame: a key's current
// value, or its tombstone (Del: the key was deleted).
type ReplDelta struct {
	Key []byte
	Val []byte
	Del bool
}

// ReplShardSlice is one table position of a ReplTopology frame: a
// shard's stable id and its hash slice. A key with FNV-1a hash h
// routes to the shard where h % Mod == Res.
type ReplShardSlice struct {
	ID, Mod, Res uint64
}

// ReplFrame is the decoded form of one replication push frame. Fields
// are kind-dependent; unused fields are zero.
type ReplFrame struct {
	Kind ReplKind

	Shard uint64 // WAL-BATCH, SNAP-BATCH, SNAP-DONE, DELTA-BATCH

	Recs        []ReplRec        // WAL-BATCH
	Pairs       []KV             // SNAP-BATCH
	CoverSeq    uint64           // SNAP-DONE
	Mode        byte             // SNAP-DONE: ReplCatchupSnap/ReplCatchupDelta
	Incarnation uint64           // SNAP-DONE, HELLO
	Acks        []ReplAckEntry   // ACK, HELLO
	Deltas      []ReplDelta      // DELTA-BATCH
	Epoch       uint64           // HELLO, TOPOLOGY: routing epoch
	Topo        []ReplShardSlice // TOPOLOGY: table positions in order
}

// AppendReplFrame appends f's complete frame — 4-byte length prefix plus
// kind | body — to dst.
func AppendReplFrame(dst []byte, f *ReplFrame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(f.Kind))
	switch f.Kind {
	case ReplWALBatch:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, uint64(len(f.Recs)))
		for i := range f.Recs {
			dst = appendUvarint(dst, f.Recs[i].Seq)
			dst = appendBytes(dst, f.Recs[i].Payload)
		}
	case ReplAck:
		dst = appendUvarint(dst, uint64(len(f.Acks)))
		for i := range f.Acks {
			dst = appendUvarint(dst, f.Acks[i].Shard)
			dst = appendUvarint(dst, f.Acks[i].Seq)
			dst = appendUvarint(dst, f.Acks[i].Bytes)
		}
	case ReplSnapBatch:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, uint64(len(f.Pairs)))
		for _, kv := range f.Pairs {
			dst = appendBytes(dst, kv.Key)
			dst = appendBytes(dst, kv.Val)
		}
	case ReplSnapDone:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, f.CoverSeq)
		dst = append(dst, f.Mode)
		dst = appendUvarint(dst, f.Incarnation)
	case ReplPing:
		// empty body
	case ReplHello:
		dst = appendUvarint(dst, f.Incarnation)
		dst = appendUvarint(dst, uint64(len(f.Acks)))
		for i := range f.Acks {
			dst = appendUvarint(dst, f.Acks[i].Shard)
			dst = appendUvarint(dst, f.Acks[i].Seq)
		}
		dst = appendUvarint(dst, f.Epoch)
	case ReplDeltaBatch:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, uint64(len(f.Deltas)))
		for i := range f.Deltas {
			d := &f.Deltas[i]
			if d.Del {
				dst = append(dst, 1)
				dst = appendBytes(dst, d.Key)
			} else {
				dst = append(dst, 0)
				dst = appendBytes(dst, d.Key)
				dst = appendBytes(dst, d.Val)
			}
		}
	case ReplTopology:
		dst = appendUvarint(dst, f.Epoch)
		dst = appendUvarint(dst, uint64(len(f.Topo)))
		for i := range f.Topo {
			dst = appendUvarint(dst, f.Topo[i].ID)
			dst = appendUvarint(dst, f.Topo[i].Mod)
			dst = appendUvarint(dst, f.Topo[i].Res)
		}
	default:
		return dst[:start], ErrBadReplFrame
	}
	putFrameLen(dst, start)
	return dst, nil
}

// DecodeReplFrame parses one replication push payload into f, reusing
// f's slice storage across calls (the feed loops keep one ReplFrame per
// connection). The decoded byte fields alias payload. On error f holds
// partially decoded state and must not be applied.
func DecodeReplFrame(f *ReplFrame, payload []byte) error {
	f.Shard, f.CoverSeq = 0, 0
	f.Mode, f.Incarnation = 0, 0
	f.Epoch = 0
	f.Recs = f.Recs[:0]
	f.Pairs = f.Pairs[:0]
	f.Acks = f.Acks[:0]
	f.Deltas = f.Deltas[:0]
	f.Topo = f.Topo[:0]
	rd := &reader{buf: payload}
	kind, err := rd.byte1()
	if err != nil {
		return err
	}
	f.Kind = ReplKind(kind)
	switch f.Kind {
	case ReplWALBatch:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var rec ReplRec
			if rec.Seq, err = rd.uvarint(); err != nil {
				return err
			}
			if rec.Payload, err = rd.bytes(); err != nil {
				return err
			}
			f.Recs = append(f.Recs, rec)
		}
	case ReplAck:
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var e ReplAckEntry
			if e.Shard, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Seq, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Bytes, err = rd.uvarint(); err != nil {
				return err
			}
			f.Acks = append(f.Acks, e)
		}
	case ReplSnapBatch:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var kv KV
			if kv.Key, err = rd.bytes(); err != nil {
				return err
			}
			if kv.Val, err = rd.bytes(); err != nil {
				return err
			}
			f.Pairs = append(f.Pairs, kv)
		}
	case ReplSnapDone:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		if f.CoverSeq, err = rd.uvarint(); err != nil {
			return err
		}
		if f.Mode, err = rd.byte1(); err != nil {
			return err
		}
		if f.Mode != ReplCatchupSnap && f.Mode != ReplCatchupDelta {
			return ErrBadReplFrame
		}
		if f.Incarnation, err = rd.uvarint(); err != nil {
			return err
		}
	case ReplPing:
		// empty body
	case ReplHello:
		if f.Incarnation, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var e ReplAckEntry
			if e.Shard, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Seq, err = rd.uvarint(); err != nil {
				return err
			}
			f.Acks = append(f.Acks, e)
		}
		if f.Epoch, err = rd.uvarint(); err != nil {
			return err
		}
	case ReplDeltaBatch:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var d ReplDelta
			kind, err := rd.byte1()
			if err != nil {
				return err
			}
			switch kind {
			case 0:
				if d.Key, err = rd.bytes(); err != nil {
					return err
				}
				if d.Val, err = rd.bytes(); err != nil {
					return err
				}
			case 1:
				d.Del = true
				if d.Key, err = rd.bytes(); err != nil {
					return err
				}
			default:
				return ErrBadReplFrame
			}
			f.Deltas = append(f.Deltas, d)
		}
	case ReplTopology:
		if f.Epoch, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var e ReplShardSlice
			if e.ID, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Mod, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Res, err = rd.uvarint(); err != nil {
				return err
			}
			f.Topo = append(f.Topo, e)
		}
	default:
		return ErrBadReplFrame
	}
	return rd.done()
}

// ---- not-primary redirect ----

// ErrNotPrimary is matched (via errors.Is) by the typed
// *NotPrimaryError a follower raises for a mutating opcode.
var ErrNotPrimary = errors.New("wire: not primary")

const notPrimaryMsg = "wire: not primary"

// NotPrimaryError is the typed redirect error a follower returns for
// any mutating opcode: the rejection happens at the protocol layer,
// before any transaction starts, and carries the primary's address so
// the client can re-aim the write without an extra discovery round
// trip. It crosses the wire as a StatusErr message in a fixed format
// that ParseNotPrimary recovers on the client side.
type NotPrimaryError struct {
	// Primary is the address writes should go to ("" when the follower
	// does not know, e.g. mid-failover).
	Primary string
}

// Error implements error in the wire format ParseNotPrimary parses.
func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return notPrimaryMsg
	}
	return notPrimaryMsg + "; primary=" + e.Primary
}

// Is makes errors.Is(err, ErrNotPrimary) report true.
func (e *NotPrimaryError) Is(target error) bool { return target == ErrNotPrimary }

// ParseNotPrimary recovers a NotPrimaryError from a StatusErr message,
// reporting ok=false for any other message.
func ParseNotPrimary(msg string) (*NotPrimaryError, bool) {
	if msg == notPrimaryMsg {
		return &NotPrimaryError{}, true
	}
	rest, found := strings.CutPrefix(msg, notPrimaryMsg+"; primary=")
	if !found || rest == "" {
		return nil, false
	}
	return &NotPrimaryError{Primary: rest}, true
}
