// Replication streaming frames.
//
// After a SUBSCRIBE-WAL request is answered OK the connection leaves the
// request/response protocol: the primary pushes frames to the follower
// and the follower pushes ACK frames back, full duplex, both using the
// same 4-byte length framing as the rest of the protocol. Each push
// payload is
//
//	kind(1) | body
//
// with the per-kind layouts documented on the ReplKind constants. The
// same frame family is the substrate a future watch/subscribe session
// layer rides on — a subscription is just a feed whose records are
// filtered, so the framing is designed once here.
package wire

import (
	"errors"
	"strings"
)

// ReplKind is the first payload byte of a replication push frame.
type ReplKind byte

const (
	// ReplWALBatch carries committed WAL records for one shard, in log
	// order (primary → follower). Body: uvarint shard | uvarint n |
	// n × (uvarint seq, bytes payload). Payloads are verbatim WAL record
	// payloads (see internal/wal); seqs are that shard's WAL sequence
	// numbers and strictly increase within and across batches.
	ReplWALBatch ReplKind = 1
	// ReplAck reports the follower's applied positions (follower →
	// primary). Body: uvarint n | n × (uvarint shard, uvarint seq,
	// uvarint bytes): for each shard the highest contiguously applied
	// WAL seq and the cumulative applied payload bytes. Also sent in
	// answer to ReplPing, so the primary's idle-detection and
	// acked-offset tracking share one frame.
	ReplAck ReplKind = 2
	// ReplSnapBatch carries key/value pairs of the catch-up snapshot for
	// one shard (primary → follower). Body: uvarint shard | uvarint n |
	// n × (key, val). The first ReplSnapBatch for a shard implicitly
	// clears that shard on the follower.
	ReplSnapBatch ReplKind = 3
	// ReplSnapDone ends one shard's catch-up snapshot. Body: uvarint
	// shard | uvarint coverSeq: every WAL record with seq <= coverSeq is
	// already reflected in the snapshot, and every record with a larger
	// seq will arrive in ReplWALBatch frames.
	ReplSnapDone ReplKind = 4
	// ReplPing is the link heartbeat (primary → follower, sent when the
	// feed has been idle past its budget). Body: empty. The follower
	// answers with a ReplAck.
	ReplPing ReplKind = 5
)

// String names the frame kind.
func (k ReplKind) String() string {
	switch k {
	case ReplWALBatch:
		return "WAL-BATCH"
	case ReplAck:
		return "ACK"
	case ReplSnapBatch:
		return "SNAP-BATCH"
	case ReplSnapDone:
		return "SNAP-DONE"
	case ReplPing:
		return "PING"
	default:
		return "ReplKind(?)"
	}
}

// ErrBadReplFrame reports an unknown replication frame kind.
var ErrBadReplFrame = errors.New("wire: unknown replication frame kind")

// ReplRec is one WAL record of a ReplWALBatch frame.
type ReplRec struct {
	Seq     uint64
	Payload []byte
}

// ReplAckEntry is one shard's applied position in a ReplAck frame.
type ReplAckEntry struct {
	Shard uint64
	Seq   uint64 // highest contiguously applied WAL seq
	Bytes uint64 // cumulative applied payload bytes
}

// ReplFrame is the decoded form of one replication push frame. Fields
// are kind-dependent; unused fields are zero.
type ReplFrame struct {
	Kind ReplKind

	Shard uint64 // WAL-BATCH, SNAP-BATCH, SNAP-DONE

	Recs     []ReplRec      // WAL-BATCH
	Pairs    []KV           // SNAP-BATCH
	CoverSeq uint64         // SNAP-DONE
	Acks     []ReplAckEntry // ACK
}

// AppendReplFrame appends f's complete frame — 4-byte length prefix plus
// kind | body — to dst.
func AppendReplFrame(dst []byte, f *ReplFrame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(f.Kind))
	switch f.Kind {
	case ReplWALBatch:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, uint64(len(f.Recs)))
		for i := range f.Recs {
			dst = appendUvarint(dst, f.Recs[i].Seq)
			dst = appendBytes(dst, f.Recs[i].Payload)
		}
	case ReplAck:
		dst = appendUvarint(dst, uint64(len(f.Acks)))
		for i := range f.Acks {
			dst = appendUvarint(dst, f.Acks[i].Shard)
			dst = appendUvarint(dst, f.Acks[i].Seq)
			dst = appendUvarint(dst, f.Acks[i].Bytes)
		}
	case ReplSnapBatch:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, uint64(len(f.Pairs)))
		for _, kv := range f.Pairs {
			dst = appendBytes(dst, kv.Key)
			dst = appendBytes(dst, kv.Val)
		}
	case ReplSnapDone:
		dst = appendUvarint(dst, f.Shard)
		dst = appendUvarint(dst, f.CoverSeq)
	case ReplPing:
		// empty body
	default:
		return dst[:start], ErrBadReplFrame
	}
	putFrameLen(dst, start)
	return dst, nil
}

// DecodeReplFrame parses one replication push payload into f, reusing
// f's slice storage across calls (the feed loops keep one ReplFrame per
// connection). The decoded byte fields alias payload. On error f holds
// partially decoded state and must not be applied.
func DecodeReplFrame(f *ReplFrame, payload []byte) error {
	f.Shard, f.CoverSeq = 0, 0
	f.Recs = f.Recs[:0]
	f.Pairs = f.Pairs[:0]
	f.Acks = f.Acks[:0]
	rd := &reader{buf: payload}
	kind, err := rd.byte1()
	if err != nil {
		return err
	}
	f.Kind = ReplKind(kind)
	switch f.Kind {
	case ReplWALBatch:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var rec ReplRec
			if rec.Seq, err = rd.uvarint(); err != nil {
				return err
			}
			if rec.Payload, err = rd.bytes(); err != nil {
				return err
			}
			f.Recs = append(f.Recs, rec)
		}
	case ReplAck:
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var e ReplAckEntry
			if e.Shard, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Seq, err = rd.uvarint(); err != nil {
				return err
			}
			if e.Bytes, err = rd.uvarint(); err != nil {
				return err
			}
			f.Acks = append(f.Acks, e)
		}
	case ReplSnapBatch:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			var kv KV
			if kv.Key, err = rd.bytes(); err != nil {
				return err
			}
			if kv.Val, err = rd.bytes(); err != nil {
				return err
			}
			f.Pairs = append(f.Pairs, kv)
		}
	case ReplSnapDone:
		if f.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		if f.CoverSeq, err = rd.uvarint(); err != nil {
			return err
		}
	case ReplPing:
		// empty body
	default:
		return ErrBadReplFrame
	}
	return rd.done()
}

// ---- not-primary redirect ----

// ErrNotPrimary is matched (via errors.Is) by the typed
// *NotPrimaryError a follower raises for a mutating opcode.
var ErrNotPrimary = errors.New("wire: not primary")

const notPrimaryMsg = "wire: not primary"

// NotPrimaryError is the typed redirect error a follower returns for
// any mutating opcode: the rejection happens at the protocol layer,
// before any transaction starts, and carries the primary's address so
// the client can re-aim the write without an extra discovery round
// trip. It crosses the wire as a StatusErr message in a fixed format
// that ParseNotPrimary recovers on the client side.
type NotPrimaryError struct {
	// Primary is the address writes should go to ("" when the follower
	// does not know, e.g. mid-failover).
	Primary string
}

// Error implements error in the wire format ParseNotPrimary parses.
func (e *NotPrimaryError) Error() string {
	if e.Primary == "" {
		return notPrimaryMsg
	}
	return notPrimaryMsg + "; primary=" + e.Primary
}

// Is makes errors.Is(err, ErrNotPrimary) report true.
func (e *NotPrimaryError) Is(target error) bool { return target == ErrNotPrimary }

// ParseNotPrimary recovers a NotPrimaryError from a StatusErr message,
// reporting ok=false for any other message.
func ParseNotPrimary(msg string) (*NotPrimaryError, bool) {
	if msg == notPrimaryMsg {
		return &NotPrimaryError{}, true
	}
	rest, found := strings.CutPrefix(msg, notPrimaryMsg+"; primary=")
	if !found || rest == "" {
		return nil, false
	}
	return &NotPrimaryError{Primary: rest}, true
}
