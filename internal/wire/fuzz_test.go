package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"polytm/internal/stm"
)

// The fuzz targets below are seeded from the hostile-input tests
// (TestDecodeRejectsGarbage, TestReadFrameLimits) plus valid frames of
// every opcode, and pin the decoder properties the server depends on:
//
//   - no input makes a decoder panic;
//   - no declared length or count makes a decoder allocate beyond the
//     input's own size class (`count` bounds elements by remaining
//     bytes, `prealloc` caps speculative element storage, ReadFrame
//     validates the frame length before any buffer is grown);
//   - anything a decoder accepts, the encoder round-trips.
//
// A persisted corpus lives in testdata/fuzz/<Target>/; CI runs each
// target for a short -fuzztime as a smoke test.

// FuzzReadFrame feeds arbitrary streams to the framing layer.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, payload)
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                        // short header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})         // absurd length
	f.Add([]byte{0, 0, 0, 5, 'a'})                // truncated body
	f.Add(frame([]byte{byte(OpGet), SemDefault})) // one clean frame
	f.Add(append(frame([]byte("abc")), frame([]byte("defg"))...))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 4; i++ { // a few frames per stream exercises reuse
			payload, err := ReadFrameBuf(br, buf, maxFrame)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && err != ErrFrameTooLarge {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(payload) > maxFrame {
				t.Fatalf("frame of %d bytes exceeds the %d cap", len(payload), maxFrame)
			}
			buf = payload
		}
	})
}

// FuzzDecodeRequest throws arbitrary payloads at the request decoder,
// and re-encodes whatever it accepts.
func FuzzDecodeRequest(f *testing.F) {
	// The hostile-input seeds.
	f.Add([]byte{})
	f.Add([]byte{byte(OpGet)})
	f.Add([]byte{99, SemDefault})
	f.Add([]byte{byte(OpGet), 7})
	f.Add([]byte{byte(OpGet), SemDefault, 5, 'a'})
	f.Add([]byte{byte(OpTxn), SemDefault, 1, byte(OpFlush)})
	f.Add([]byte{byte(OpSet), byte(stm.SemanticsSnapshot), 1, 'k', 1, 'v'})
	f.Add(append([]byte{byte(OpMGet), SemDefault}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
	f.Add([]byte{byte(OpWatch), SemDefault, 9, 1, 'k'})         // bad mode byte
	f.Add([]byte{byte(OpSetEx), SemDefault, 1, 'k', 1, 'v', 0}) // zero TTL
	f.Add([]byte{byte(OpIncr), SemDefault, 1, 'k'})             // missing delta
	// One valid payload per opcode.
	for _, r := range []*Request{
		{Op: OpGet, Sem: SemDefault, Key: []byte("k")},
		{Op: OpSet, Sem: SemDefault, Key: []byte("k"), Val: []byte("v")},
		{Op: OpCAS, Sem: byte(stm.SemanticsIrrevocable), Key: []byte("k"), Old: []byte("o"), Val: []byte("n")},
		{Op: OpDel, Sem: SemDefault, Key: []byte("k")},
		{Op: OpScan, Sem: byte(stm.SemanticsWeak), From: []byte("a"), To: []byte("z"), Limit: 9},
		{Op: OpMGet, Sem: byte(stm.SemanticsSnapshot), Keys: [][]byte{[]byte("a"), []byte("b")}},
		{Op: OpTxn, Sem: SemDefault, Batch: []Request{
			{Op: OpSet, Sem: SemDefault, Key: []byte("k"), Val: []byte("v")},
			{Op: OpDel, Sem: SemDefault, Key: []byte("k")},
		}},
		{Op: OpStats, Sem: SemDefault},
		{Op: OpFlush, Sem: SemDefault},
		{Op: OpRebuild, Sem: SemDefault},
		{Op: OpWatch, Sem: SemDefault, Key: []byte("k")},
		{Op: OpWatch, Sem: SemDefault, Key: []byte("user:"), Prefix: true},
		{Op: OpIncr, Sem: SemDefault, Key: []byte("ctr"), Delta: 3},
		{Op: OpDecr, Sem: SemDefault, Key: []byte("ctr"), Delta: 1},
		{Op: OpSetEx, Sem: SemDefault, Key: []byte("k"), Val: []byte("v"), TTLMillis: 1500},
	} {
		payload, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode...
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v (%+v)", err, req)
		}
		// ...and the re-encoding must decode to the same thing (the
		// encoder is canonical, so encode∘decode is a fixpoint there).
		req2, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		enc2, err := AppendRequest(nil, req2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not a fixpoint:\n first %x\nsecond %x", enc, enc2)
		}
		// The decoder reuse path must agree with the fresh path.
		var into Request
		if err := DecodeRequestInto(&into, data); err != nil {
			t.Fatalf("DecodeRequestInto rejects what DecodeRequest accepts: %v", err)
		}
	})
}

// FuzzDecodeResponse throws arbitrary payloads at the response decoder
// under every opcode it could answer.
func FuzzDecodeResponse(f *testing.F) {
	txnSubs := []Op{OpGet, OpSet, OpCAS, OpDel}
	for _, c := range []struct {
		op   Op
		resp *Response
	}{
		{OpGet, &Response{Status: StatusOK, Val: []byte("v")}},
		{OpCAS, &Response{Status: StatusCASMismatch, Val: []byte("cur")}},
		{OpScan, &Response{Status: StatusOK, Pairs: []KV{{Key: []byte("a"), Val: []byte("1")}}}},
		{OpMGet, &Response{Status: StatusOK, Batch: []Response{{Status: StatusNotFound}}}},
		{OpTxn, &Response{Status: StatusOK, Batch: []Response{
			{Status: StatusOK, Val: []byte("g"), SubOp: OpGet},
			{Status: StatusOK, SubOp: OpSet},
			{Status: StatusCASMismatch, Val: []byte("c"), SubOp: OpCAS},
			{Status: StatusNotFound, SubOp: OpDel},
		}}},
		{OpStats, &Response{Status: StatusOK, Counters: []Counter{{Name: "commits", Value: 3}}}},
		{OpFlush, &Response{Status: StatusOK, N: 12}},
		{OpWatch, &Response{Status: StatusOK, N: 7}},
		{OpIncr, &Response{Status: StatusOK, Int: 42}},
		{OpDecr, &Response{Status: StatusOK, Int: -5}},
		{OpSetEx, &Response{Status: StatusOK}},
		{OpGet, &Response{Status: StatusErr, Msg: "boom"}},
		{OpIncr, &Response{Status: StatusErr, Msg: (&ProtocolError{Code: ProtoUnknownOp}).Error()}},
	} {
		payload, err := AppendResponse(nil, c.op, c.resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(byte(c.op), payload)
	}
	f.Add(byte(OpScan), append([]byte{byte(StatusOK)}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
	f.Add(byte(OpTxn), []byte{byte(StatusOK), 4})
	f.Fuzz(func(t *testing.T, opByte byte, data []byte) {
		op := Op(opByte)
		if !op.Valid() {
			op = OpGet
		}
		var subOps []Op
		if op == OpTxn {
			subOps = txnSubs
		}
		resp, err := DecodeResponse(data, op, subOps)
		if err != nil {
			return
		}
		// Accepted input must re-encode. TXN sub-responses carry their
		// opcode on the encode side only; restore it from subOps the
		// way a client stores them next to the pending request.
		if op == OpTxn {
			for i := range resp.Batch {
				resp.Batch[i].SubOp = subOps[i]
			}
		}
		if _, err := AppendResponse(nil, op, resp); err != nil {
			t.Fatalf("decoded %v response does not re-encode: %v (%+v)", op, err, resp)
		}
	})
}

// FuzzDecodeSessFrame throws arbitrary payloads at the session-frame
// decoder and re-encodes whatever it accepts.
func FuzzDecodeSessFrame(f *testing.F) {
	for _, sf := range []*SessFrame{
		{Kind: SessEvent, WatchID: 1, Seq: 42, Op: EventSet, Key: []byte("k")},
		{Kind: SessEvent, WatchID: 2, Seq: 43, Op: EventExpire, Key: []byte("ttl:k")},
		{Kind: SessEvent, WatchID: 2, Seq: 44, Op: EventFlush},
		{Kind: SessEventLost, Dropped: 9},
		{Kind: SessPing},
		{Kind: SessPong},
		{Kind: SessWatch, Key: []byte("user:"), Prefix: true},
		{Kind: SessWatchOK, WatchID: 3},
		{Kind: SessUnwatch, WatchID: 3},
		{Kind: SessErr, Code: ProtoBadSession, Detail: []byte("request opcode on session")},
	} {
		frame, err := AppendSessFrame(nil, sf)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:]) // payload only: kind | body
	}
	// Hostile seeds.
	f.Add([]byte{})
	f.Add([]byte{byte(SessEvent)})                   // truncated
	f.Add([]byte{byte(SessEvent), 1, 1, 99, 1, 'k'}) // bad event op
	f.Add([]byte{byte(SessWatch), 7, 1, 'k'})        // bad mode byte
	f.Add([]byte{byte(SessPong), 0})                 // trailing byte
	f.Add([]byte{0xEE})                              // unknown kind
	f.Fuzz(func(t *testing.T, data []byte) {
		var sf SessFrame
		if err := DecodeSessFrame(&sf, data); err != nil {
			return
		}
		// Accepted input must re-encode, and the re-encoded frame's
		// payload must decode back to an identical re-encoding (the
		// encoder is canonical).
		enc, err := AppendSessFrame(nil, &sf)
		if err != nil {
			t.Fatalf("decoded session frame does not re-encode: %v (%+v)", err, sf)
		}
		var sf2 SessFrame
		if err := DecodeSessFrame(&sf2, enc[4:]); err != nil {
			t.Fatalf("re-encoded session frame does not decode: %v", err)
		}
		enc2, err := AppendSessFrame(nil, &sf2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not a fixpoint:\n first %x\nsecond %x", enc, enc2)
		}
	})
}
