package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"polytm/internal/stm"
)

// The fuzz targets below are seeded from the hostile-input tests
// (TestDecodeRejectsGarbage, TestReadFrameLimits) plus valid frames of
// every opcode, and pin the decoder properties the server depends on:
//
//   - no input makes a decoder panic;
//   - no declared length or count makes a decoder allocate beyond the
//     input's own size class (`count` bounds elements by remaining
//     bytes, `prealloc` caps speculative element storage, ReadFrame
//     validates the frame length before any buffer is grown);
//   - anything a decoder accepts, the encoder round-trips.
//
// A persisted corpus lives in testdata/fuzz/<Target>/; CI runs each
// target for a short -fuzztime as a smoke test.

// FuzzReadFrame feeds arbitrary streams to the framing layer.
func FuzzReadFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, payload)
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                        // short header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})         // absurd length
	f.Add([]byte{0, 0, 0, 5, 'a'})                // truncated body
	f.Add(frame([]byte{byte(OpGet), SemDefault})) // one clean frame
	f.Add(append(frame([]byte("abc")), frame([]byte("defg"))...))
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 16
		br := bufio.NewReader(bytes.NewReader(data))
		var buf []byte
		for i := 0; i < 4; i++ { // a few frames per stream exercises reuse
			payload, err := ReadFrameBuf(br, buf, maxFrame)
			if err != nil {
				if err != io.EOF && err != io.ErrUnexpectedEOF && err != ErrFrameTooLarge {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			if len(payload) > maxFrame {
				t.Fatalf("frame of %d bytes exceeds the %d cap", len(payload), maxFrame)
			}
			buf = payload
		}
	})
}

// FuzzDecodeRequest throws arbitrary payloads at the request decoder,
// and re-encodes whatever it accepts.
func FuzzDecodeRequest(f *testing.F) {
	// The hostile-input seeds.
	f.Add([]byte{})
	f.Add([]byte{byte(OpGet)})
	f.Add([]byte{99, SemDefault})
	f.Add([]byte{byte(OpGet), 7})
	f.Add([]byte{byte(OpGet), SemDefault, 5, 'a'})
	f.Add([]byte{byte(OpTxn), SemDefault, 1, byte(OpFlush)})
	f.Add([]byte{byte(OpSet), byte(stm.SemanticsSnapshot), 1, 'k', 1, 'v'})
	f.Add(append([]byte{byte(OpMGet), SemDefault}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
	// One valid payload per opcode.
	for _, r := range []*Request{
		{Op: OpGet, Sem: SemDefault, Key: []byte("k")},
		{Op: OpSet, Sem: SemDefault, Key: []byte("k"), Val: []byte("v")},
		{Op: OpCAS, Sem: byte(stm.SemanticsIrrevocable), Key: []byte("k"), Old: []byte("o"), Val: []byte("n")},
		{Op: OpDel, Sem: SemDefault, Key: []byte("k")},
		{Op: OpScan, Sem: byte(stm.SemanticsWeak), From: []byte("a"), To: []byte("z"), Limit: 9},
		{Op: OpMGet, Sem: byte(stm.SemanticsSnapshot), Keys: [][]byte{[]byte("a"), []byte("b")}},
		{Op: OpTxn, Sem: SemDefault, Batch: []Request{
			{Op: OpSet, Sem: SemDefault, Key: []byte("k"), Val: []byte("v")},
			{Op: OpDel, Sem: SemDefault, Key: []byte("k")},
		}},
		{Op: OpStats, Sem: SemDefault},
		{Op: OpFlush, Sem: SemDefault},
		{Op: OpRebuild, Sem: SemDefault},
	} {
		payload, err := AppendRequest(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		// Accepted input must re-encode...
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v (%+v)", err, req)
		}
		// ...and the re-encoding must decode to the same thing (the
		// encoder is canonical, so encode∘decode is a fixpoint there).
		req2, err := DecodeRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		enc2, err := AppendRequest(nil, req2)
		if err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not a fixpoint:\n first %x\nsecond %x", enc, enc2)
		}
		// The decoder reuse path must agree with the fresh path.
		var into Request
		if err := DecodeRequestInto(&into, data); err != nil {
			t.Fatalf("DecodeRequestInto rejects what DecodeRequest accepts: %v", err)
		}
	})
}

// FuzzDecodeResponse throws arbitrary payloads at the response decoder
// under every opcode it could answer.
func FuzzDecodeResponse(f *testing.F) {
	txnSubs := []Op{OpGet, OpSet, OpCAS, OpDel}
	for _, c := range []struct {
		op   Op
		resp *Response
	}{
		{OpGet, &Response{Status: StatusOK, Val: []byte("v")}},
		{OpCAS, &Response{Status: StatusCASMismatch, Val: []byte("cur")}},
		{OpScan, &Response{Status: StatusOK, Pairs: []KV{{Key: []byte("a"), Val: []byte("1")}}}},
		{OpMGet, &Response{Status: StatusOK, Batch: []Response{{Status: StatusNotFound}}}},
		{OpTxn, &Response{Status: StatusOK, Batch: []Response{
			{Status: StatusOK, Val: []byte("g"), SubOp: OpGet},
			{Status: StatusOK, SubOp: OpSet},
			{Status: StatusCASMismatch, Val: []byte("c"), SubOp: OpCAS},
			{Status: StatusNotFound, SubOp: OpDel},
		}}},
		{OpStats, &Response{Status: StatusOK, Counters: []Counter{{Name: "commits", Value: 3}}}},
		{OpFlush, &Response{Status: StatusOK, N: 12}},
		{OpGet, &Response{Status: StatusErr, Msg: "boom"}},
	} {
		payload, err := AppendResponse(nil, c.op, c.resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(byte(c.op), payload)
	}
	f.Add(byte(OpScan), append([]byte{byte(StatusOK)}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01))
	f.Add(byte(OpTxn), []byte{byte(StatusOK), 4})
	f.Fuzz(func(t *testing.T, opByte byte, data []byte) {
		op := Op(opByte)
		if !op.Valid() {
			op = OpGet
		}
		var subOps []Op
		if op == OpTxn {
			subOps = txnSubs
		}
		resp, err := DecodeResponse(data, op, subOps)
		if err != nil {
			return
		}
		// Accepted input must re-encode. TXN sub-responses carry their
		// opcode on the encode side only; restore it from subOps the
		// way a client stores them next to the pending request.
		if op == OpTxn {
			for i := range resp.Batch {
				resp.Batch[i].SubOp = subOps[i]
			}
		}
		if _, err := AppendResponse(nil, op, resp); err != nil {
			t.Fatalf("decoded %v response does not re-encode: %v (%+v)", op, err, resp)
		}
	})
}
