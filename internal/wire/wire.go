// Package wire defines polyserve's length-prefixed binary protocol.
//
// Every frame is a 4-byte big-endian payload length followed by the
// payload. A request payload is
//
//	op(1) | sem(1) | body
//
// and a response payload is
//
//	status(1) | body
//
// where sem is the transaction-semantics byte: one of the four
// stm.Semantics values, or SemDefault (0xFF) to accept the server's
// per-opcode mapping (GET/MGET → snapshot, SCAN → weak/elastic,
// SET/CAS/DEL/TXN → def, FLUSH/REBUILD → irrevocable). The byte is the
// wire rendition of the paper's start(p): each request class picks the
// semantics that fits it, and a client may override the class default
// per request.
//
// Bodies are built from uvarint-length-prefixed byte strings and bare
// uvarints; see the per-opcode layout comments on the Op constants.
// Responses carry no opcode — the protocol is strictly in-order
// (pipelined requests are answered in arrival order, like Redis), so the
// client decodes each response against the opcode it sent.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"polytm/internal/stm"
)

// Op is a request opcode.
type Op byte

const (
	// OpGet reads one key. Body: key. OK response body: val.
	OpGet Op = 1
	// OpSet writes one key. Body: key, val. OK response body: empty.
	OpSet Op = 2
	// OpCAS compares-and-swaps one key. Body: key, old, new. OK response
	// body: empty; a CASMismatch response carries the current value.
	OpCAS Op = 3
	// OpDel removes one key. Body: key. OK / NotFound, body empty.
	OpDel Op = 4
	// OpScan walks keys in [from, to) in order. Body: from, to,
	// uvarint limit (empty `to` = to the end, limit 0 = unbounded).
	// OK response body: uvarint n, then n × (key, val).
	OpScan Op = 5
	// OpMGet reads many keys in one transaction. Body: uvarint n, then
	// n × key. OK response body: uvarint n, then n × sub-response
	// (status(1) | val-if-OK).
	OpMGet Op = 6
	// OpTxn runs a batch of sub-operations (OpGet/OpSet/OpCAS/OpDel
	// bodies) in ONE transaction. Body: uvarint n, then n × (op(1) |
	// body). OK response body: uvarint n, then n × sub-response
	// (status(1) | body as for the sub-op). Sub-operations share the
	// batch's semantics.
	OpTxn Op = 7
	// OpStats reports engine counters. Body: empty. OK response body:
	// uvarint n, then n × (name, uvarint value). Beyond the aggregate
	// engine counters (starts, commits, aborts, ... and the sem.<class>.*
	// per-semantics rows) a sharded store reports store_shards,
	// xshard_txns/xshard_aborts (cross-shard 2PC traffic), and per-shard
	// shard<i>.ops plus — when durable — shard<i>.wal_bytes/records/fsyncs
	// rows exposing routing balance and per-shard log pressure. A durable
	// store also reports its checkpoint-chain gauges — ckpt_chain_len
	// (deltas on the current base), ckpt_delta_bytes, ckpt_base_bytes,
	// and ckpt_last_kind (0 none / 1 full / 2 delta) — aggregated and,
	// when sharded, per shard as shard<i>.ckpt_*, making the
	// churn-bounded checkpoint claim observable from the wire. A
	// replicating node adds repl_role (0 primary / 1 follower) and
	// repl_failovers (promotions performed); a primary additionally
	// reports repl_followers, repl_sync, repl_shipped_records/bytes,
	// repl_delta_catchups (reconnects served by churn-bounded delta
	// catch-up instead of a full snapshot) and per-follower
	// follower<i>.acked_records / follower<i>.lag_bytes; a follower
	// reports repl_applied_records/bytes, repl_reconnects and
	// repl_state (its link state-machine position). The session layer
	// adds watch_sessions (live watch sessions), events_pushed /
	// events_lost (push-buffer delivery vs overflow-cut drops),
	// keys_expired (TTL deadlines the reaper turned into durable
	// deletes), ttl_armed (deadlines currently pending), and incr_ops
	// (server-side INCR/DECR commits).
	OpStats Op = 8
	// OpFlush removes every key (admin). Body: empty. OK response body:
	// uvarint removed-count.
	OpFlush Op = 9
	// OpRebuild re-levels the store's skip-list index (admin; the
	// "resize" class). Body: empty. OK response body: uvarint key-count.
	OpRebuild Op = 10
	// OpPing is a liveness probe: it touches no store state and starts no
	// transaction. Body: empty. OK response body: empty. Clients use it to
	// health-check pooled connections that have sat idle past their
	// heartbeat budget; the replication link uses the push-frame
	// equivalent (ReplPing).
	OpPing Op = 11
	// OpSubscribeWAL converts the connection into a replication feed.
	// Body: empty. OK response body: uvarint store-shard count. After the
	// OK response the request/response protocol ends and the server
	// pushes replication frames (see the Repl* frame kinds) on the same
	// connection; the subscriber sends ReplAck frames back. Only a
	// durable primary accepts it.
	OpSubscribeWAL Op = 12
	// OpWatch converts the connection into a watch session. Body:
	// mode(1) | key-or-prefix, with mode 0 = exact key and 1 = prefix.
	// OK response body: uvarint watch-id. After the OK response the
	// request/response protocol ends and both ends push session frames
	// (see the Sess* frame kinds): the server delivers EVENT frames for
	// commits matching the session's watches, the client may register
	// further watches with SessWatch frames. Followers accept it too —
	// a watch on a follower observes replicated applies.
	OpWatch Op = 13
	// OpIncr atomically adds a delta to a key's integer value under def
	// semantics (server-side counter: one round trip, contention handled
	// by the engine's contention manager instead of client CAS loops).
	// Body: key | uvarint delta. A missing — or expired — key counts
	// from 0; a non-integer value is a StatusErr. OK response body:
	// zigzag-varint new value.
	OpIncr Op = 14
	// OpDecr is OpIncr with the delta subtracted. Body and response as
	// OpIncr.
	OpDecr Op = 15
	// OpSetEx is SET with a time-to-live: the entry expires TTL
	// milliseconds after the write commits. Reads under ANY semantics
	// treat an expired entry as absent (lazy expiry, no write); a
	// background reaper deletes expired entries in small def-class
	// batches, logged through the WAL as ordinary deletes so replicas
	// and recovery converge. Body: key | val | uvarint ttl-ms (0 is
	// rejected — plain SET already means "no expiry"). OK response
	// body: empty.
	OpSetEx Op = 16
	// OpSplit splits one keyspace shard in two (admin): the shard's
	// hash slice (mod, res) halves into (2·mod, res) on the source and
	// (2·mod, res+mod) on a freshly created shard, online — the bulk of
	// the key range copies under a snapshot read plus dirty-delta
	// rounds, and only the final cutover runs inside a short
	// irrevocable barrier. Body: uvarint epoch | uvarint shard-id,
	// where epoch is the routing epoch the caller observed (STATS
	// routing_epoch): a stale epoch is rejected with the typed
	// *WrongEpochError so concurrent admin ops cannot split against a
	// topology they never saw. OK response body: uvarint new epoch.
	OpSplit Op = 17
	// OpMerge merges two buddy shards (admin): valid only for slices
	// (mod, r) and (mod, r+mod/2), which fold back into (mod/2, r) on
	// the surviving first shard. Body: uvarint epoch | uvarint shard-a
	// | uvarint shard-b (stable shard ids). Epoch contract and response
	// as OpSplit.
	OpMerge Op = 18
)

// String names the opcode.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpCAS:
		return "CAS"
	case OpDel:
		return "DEL"
	case OpScan:
		return "SCAN"
	case OpMGet:
		return "MGET"
	case OpTxn:
		return "TXN"
	case OpStats:
		return "STATS"
	case OpFlush:
		return "FLUSH"
	case OpRebuild:
		return "REBUILD"
	case OpPing:
		return "PING"
	case OpSubscribeWAL:
		return "SUBSCRIBE-WAL"
	case OpWatch:
		return "WATCH"
	case OpIncr:
		return "INCR"
	case OpDecr:
		return "DECR"
	case OpSetEx:
		return "SETEX"
	case OpSplit:
		return "SPLIT"
	case OpMerge:
		return "MERGE"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o >= OpGet && o <= OpMerge }

// Mutates reports whether the opcode can change store state. A TXN
// batch counts as mutating regardless of its sub-operations (a batch
// of pure GETs should be an MGET); so do the whole-store admin ops,
// including the resharding ops (a follower must redirect them to the
// primary — topology changes flow through the replication feed).
func (o Op) Mutates() bool {
	switch o {
	case OpSet, OpCAS, OpDel, OpTxn, OpFlush, OpRebuild, OpIncr, OpDecr, OpSetEx,
		OpSplit, OpMerge:
		return true
	default:
		return false
	}
}

// Status is a response status byte.
type Status byte

const (
	// StatusOK: the operation succeeded.
	StatusOK Status = 0
	// StatusNotFound: the key does not exist.
	StatusNotFound Status = 1
	// StatusCASMismatch: the key's current value differs from `old`; the
	// response body carries the current value.
	StatusCASMismatch Status = 2
	// StatusErr: the operation failed; the response body is a message.
	StatusErr Status = 3
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusCASMismatch:
		return "CAS_MISMATCH"
	case StatusErr:
		return "ERR"
	default:
		return fmt.Sprintf("Status(%d)", byte(s))
	}
}

// SemDefault in the sem byte selects the server's per-opcode semantics
// mapping. Any other value must be a valid stm.Semantics.
const SemDefault byte = 0xFF

// SemanticsError is the typed protocol error for an out-of-range
// semantics byte. It matches ErrBadSemantics via errors.Is and carries
// the offending byte for diagnostics.
type SemanticsError struct{ Byte byte }

// Error implements error.
func (e *SemanticsError) Error() string {
	return fmt.Sprintf("wire: invalid semantics byte 0x%02X", e.Byte)
}

// Is makes errors.Is(err, ErrBadSemantics) report true.
func (e *SemanticsError) Is(target error) bool { return target == ErrBadSemantics }

// SnapshotWriteError is the typed protocol error for a frame that
// overrides a write opcode to snapshot (read-only) semantics — a
// combination the engine could only reject after starting a
// transaction, so the protocol layer rejects it before one starts. It
// matches ErrSnapshotWriteOp via errors.Is and carries the opcode.
type SnapshotWriteError struct{ Op Op }

// Error implements error.
func (e *SnapshotWriteError) Error() string {
	return fmt.Sprintf("wire: %s cannot run under snapshot (read-only) semantics", e.Op)
}

// Is makes errors.Is(err, ErrSnapshotWriteOp) report true.
func (e *SnapshotWriteError) Is(target error) bool { return target == ErrSnapshotWriteOp }

// Semantics validates a frame's semantics byte in ONE place — the
// encoder, the decoder and the server's request executor all call it,
// so no handler re-implements the range check. SemDefault resolves to
// def (the caller's per-opcode mapping); any other byte must name a
// defined stm.Semantics or a *SemanticsError is returned.
func Semantics(b byte, def stm.Semantics) (stm.Semantics, error) {
	if b == SemDefault {
		return def, nil
	}
	if s := stm.Semantics(b); s.Valid() {
		return s, nil
	}
	return 0, &SemanticsError{Byte: b}
}

// MaxFrame is the default cap on a frame payload; a peer announcing a
// larger frame is protocol-broken (or hostile) and the connection is
// dropped rather than the length trusted.
const MaxFrame = 16 << 20

// Protocol errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrTruncated     = errors.New("wire: truncated payload")
	ErrBadOp         = errors.New("wire: unknown opcode")
	ErrBadSemantics  = errors.New("wire: invalid semantics byte")
	ErrBadSubOp      = errors.New("wire: opcode not allowed in TXN batch")
	// ErrBadWatchMode rejects a WATCH frame whose mode byte is neither 0
	// (exact) nor 1 (prefix).
	ErrBadWatchMode = errors.New("wire: invalid WATCH mode byte")
	// ErrZeroTTL rejects a SETEX frame with a zero TTL — plain SET
	// already means "no expiry", so a zero here is a client bug, not a
	// request.
	ErrZeroTTL = errors.New("wire: SETEX with zero TTL")
	// ErrSnapshotWriteOp is matched (via errors.Is) by the typed
	// *SnapshotWriteError a server raises for snapshot-semantics
	// override on a write opcode.
	ErrSnapshotWriteOp = errors.New("wire: write opcode under snapshot semantics")
)

// KV is one key/value pair of a SCAN response.
type KV struct {
	Key, Val []byte
}

// Counter is one named engine counter of a STATS response.
type Counter struct {
	Name  string
	Value uint64
}

// Request is the decoded form of one request frame. Fields are
// opcode-dependent; unused fields are zero.
type Request struct {
	Op  Op
	Sem byte // SemDefault or a stm.Semantics value

	Key []byte // GET, SET, CAS, DEL
	Val []byte // SET; CAS new
	Old []byte // CAS expected

	Keys [][]byte // MGET

	From, To []byte // SCAN
	Limit    uint64 // SCAN

	Batch []Request // TXN sub-operations (Sem ignored on sub-ops)

	Delta     uint64 // INCR / DECR magnitude
	TTLMillis uint64 // SETEX time-to-live in milliseconds
	Prefix    bool   // WATCH: Key is a prefix, not an exact key

	// Resharding admin fields (SPLIT / MERGE). Epoch is the routing
	// epoch the caller last observed; the server rejects the request
	// with *WrongEpochError when it no longer matches, so an admin op
	// can never act on a topology its issuer never saw. Shard (and
	// Shard2 for MERGE) are stable shard ids, not table positions.
	Epoch  uint64
	Shard  uint64 // SPLIT target; MERGE first (surviving) shard
	Shard2 uint64 // MERGE second (absorbed) shard
}

// Response is the decoded form of one response frame, against the
// request opcode it answers.
type Response struct {
	Status Status

	Val      []byte     // GET value; CAS current value on mismatch
	Pairs    []KV       // SCAN
	Batch    []Response // MGET / TXN sub-responses
	Counters []Counter  // STATS
	N        uint64     // FLUSH / REBUILD counts; WATCH watch-id
	Int      int64      // INCR / DECR new value
	Msg      string     // StatusErr message

	// SubOp is the opcode this TXN sub-response answers. It is consulted
	// only when encoding the Batch of an OpTxn response (the decoder
	// takes the sub-opcodes from the request instead); it never crosses
	// the wire itself.
	SubOp Op
}

// Err folds a StatusErr response into a Go error (nil otherwise).
// Typed server errors that survive the wire as messages are recovered
// here, so clients can match them with errors.Is/As: a follower's
// write rejection comes back as *NotPrimaryError (carrying the
// primary's address), not an opaque string.
func (r *Response) Err() error {
	if r.Status == StatusErr {
		if np, ok := ParseNotPrimary(r.Msg); ok {
			return np
		}
		if we, ok := ParseWrongEpoch(r.Msg); ok {
			return we
		}
		if pe, ok := ParseProtocolError(r.Msg); ok {
			return pe
		}
		return fmt.Errorf("wire: server error: %s", r.Msg)
	}
	return nil
}

// ErrWrongEpoch is matched (via errors.Is) by the typed
// *WrongEpochError a server raises for a resharding admin op carrying
// a stale routing epoch.
var ErrWrongEpoch = errors.New("wire: wrong routing epoch")

// WrongEpochError is the typed rejection for a SPLIT/MERGE whose
// Epoch field does not match the server's current routing epoch. It
// carries both sides so the client can refresh and retry: Have is the
// epoch the request carried, Want the server's current one. Its
// Error() string is the exact wire format ParseWrongEpoch recovers on
// the client side.
type WrongEpochError struct {
	Have, Want uint64
}

// Error implements error in the wire format ParseWrongEpoch parses.
func (e *WrongEpochError) Error() string {
	return fmt.Sprintf("wire: wrong routing epoch; have=%d want=%d", e.Have, e.Want)
}

// Is matches ErrWrongEpoch so callers can errors.Is without the
// concrete type.
func (e *WrongEpochError) Is(target error) bool { return target == ErrWrongEpoch }

// ParseWrongEpoch recovers a WrongEpochError from a StatusErr message,
// reporting whether the message was one.
func ParseWrongEpoch(msg string) (*WrongEpochError, bool) {
	const prefix = "wire: wrong routing epoch; have="
	rest, ok := strings.CutPrefix(msg, prefix)
	if !ok {
		return nil, false
	}
	havePart, wantPart, ok := strings.Cut(rest, " want=")
	if !ok {
		return nil, false
	}
	have, err1 := strconv.ParseUint(havePart, 10, 64)
	want, err2 := strconv.ParseUint(wantPart, 10, 64)
	if err1 != nil || err2 != nil {
		return nil, false
	}
	return &WrongEpochError{Have: have, Want: want}, true
}

// ---- primitive encoding ----

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

type reader struct {
	buf []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return nil, ErrTruncated
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

func (r *reader) byte1() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) done() error {
	if r.pos != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes in payload", len(r.buf)-r.pos)
	}
	return nil
}

// count reads a collection count and sanity-bounds it against the bytes
// actually remaining (each element costs at least one byte), so a
// hostile count cannot demand more elements than the frame can encode.
func (r *reader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.buf)-r.pos) {
		return 0, ErrTruncated
	}
	return int(n), nil
}

// prealloc caps speculative slice allocation for a declared element
// count: decoders start at most this big and grow with append, so a
// count near the frame limit cannot allocate element-struct memory far
// exceeding the frame itself.
func prealloc(n int) int {
	const cap = 1024
	if n > cap {
		return cap
	}
	return n
}

// ---- framing ----

// WriteFrame writes one length-prefixed frame to w.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload from br, refusing frames larger than
// maxFrame (<= 0 means MaxFrame). The payload is freshly allocated; a
// loop that processes each frame before reading the next should use
// ReadFrameBuf with a reusable buffer instead.
func ReadFrame(br *bufio.Reader, maxFrame int) ([]byte, error) {
	return ReadFrameBuf(br, nil, maxFrame)
}

// ReadFrameBuf is ReadFrame with caller-owned payload storage: the
// frame is read into buf (grown only when the payload exceeds its
// capacity) and the filled slice, which aliases buf's storage, is
// returned. The caller passes the returned slice back on the next call
// and must be done with a payload before reading the next frame into
// it. Rejection behaviour is identical to ReadFrame — the frame length
// is validated against maxFrame BEFORE any buffer is grown, so a
// hostile length cannot force an allocation, and a truncated body
// surfaces io.ErrUnexpectedEOF.
func ReadFrameBuf(br *bufio.Reader, buf []byte, maxFrame int) ([]byte, error) {
	if maxFrame <= 0 {
		maxFrame = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	// Compare in uint64: a maxFrame above 4GiB must not wrap to a tiny
	// (or zero) cap and start rejecting everything.
	if uint64(n) > uint64(maxFrame) {
		return nil, ErrFrameTooLarge
	}
	var payload []byte
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(br, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// putFrameLen back-fills the 4-byte length prefix of a frame whose
// reserved header starts at `start` in dst.
func putFrameLen(dst []byte, start int) {
	binary.BigEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
}

// AppendRequestFrame appends r's complete frame — 4-byte length prefix
// plus payload — to dst, so a pipelined batch can be encoded into one
// reusable buffer and written with a single Write. On error dst is
// returned truncated to its original length.
func AppendRequestFrame(dst []byte, r *Request) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	out, err := AppendRequest(dst, r)
	if err != nil {
		return dst[:start], err
	}
	binary.BigEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	return out, nil
}

// AppendResponseFrame appends the complete response frame (length
// prefix plus status | body) answering opcode op to dst.
func AppendResponseFrame(dst []byte, op Op, r *Response) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	out, err := AppendResponse(dst, op, r)
	if err != nil {
		return dst[:start], err
	}
	binary.BigEndian.PutUint32(out[start:], uint32(len(out)-start-4))
	return out, nil
}

// ---- request codec ----

// appendRequestBody encodes the opcode-dependent body (no op/sem bytes).
func appendRequestBody(dst []byte, r *Request) ([]byte, error) {
	switch r.Op {
	case OpGet, OpDel:
		dst = appendBytes(dst, r.Key)
	case OpSet:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
	case OpCAS:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Old)
		dst = appendBytes(dst, r.Val)
	case OpScan:
		dst = appendBytes(dst, r.From)
		dst = appendBytes(dst, r.To)
		dst = appendUvarint(dst, r.Limit)
	case OpMGet:
		dst = appendUvarint(dst, uint64(len(r.Keys)))
		for _, k := range r.Keys {
			dst = appendBytes(dst, k)
		}
	case OpTxn:
		dst = appendUvarint(dst, uint64(len(r.Batch)))
		for i := range r.Batch {
			sub := &r.Batch[i]
			switch sub.Op {
			case OpGet, OpSet, OpCAS, OpDel:
			default:
				return nil, ErrBadSubOp
			}
			dst = append(dst, byte(sub.Op))
			var err error
			if dst, err = appendRequestBody(dst, sub); err != nil {
				return nil, err
			}
		}
	case OpWatch:
		if r.Prefix {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, r.Key)
	case OpIncr, OpDecr:
		dst = appendBytes(dst, r.Key)
		dst = appendUvarint(dst, r.Delta)
	case OpSetEx:
		dst = appendBytes(dst, r.Key)
		dst = appendBytes(dst, r.Val)
		dst = appendUvarint(dst, r.TTLMillis)
	case OpSplit:
		dst = appendUvarint(dst, r.Epoch)
		dst = appendUvarint(dst, r.Shard)
	case OpMerge:
		dst = appendUvarint(dst, r.Epoch)
		dst = appendUvarint(dst, r.Shard)
		dst = appendUvarint(dst, r.Shard2)
	case OpStats, OpFlush, OpRebuild, OpPing, OpSubscribeWAL:
		// empty body
	default:
		return nil, ErrBadOp
	}
	return dst, nil
}

// AppendRequest appends r's full payload (op | sem | body) to dst.
func AppendRequest(dst []byte, r *Request) ([]byte, error) {
	if !r.Op.Valid() {
		return nil, ErrBadOp
	}
	if _, err := Semantics(r.Sem, 0); err != nil {
		return nil, err
	}
	dst = append(dst, byte(r.Op), r.Sem)
	return appendRequestBody(dst, r)
}

func decodeRequestBody(rd *reader, r *Request) error {
	var err error
	switch r.Op {
	case OpGet, OpDel:
		r.Key, err = rd.bytes()
	case OpSet:
		if r.Key, err = rd.bytes(); err != nil {
			return err
		}
		r.Val, err = rd.bytes()
	case OpCAS:
		if r.Key, err = rd.bytes(); err != nil {
			return err
		}
		if r.Old, err = rd.bytes(); err != nil {
			return err
		}
		r.Val, err = rd.bytes()
	case OpScan:
		if r.From, err = rd.bytes(); err != nil {
			return err
		}
		if r.To, err = rd.bytes(); err != nil {
			return err
		}
		r.Limit, err = rd.uvarint()
	case OpMGet:
		n, err := rd.count()
		if err != nil {
			return err
		}
		// Grown by append from the (possibly reused) slice, never
		// preallocated from the declared count: a hostile count cannot
		// reserve memory beyond what its elements actually decode to.
		for i := 0; i < n; i++ {
			k, err := rd.bytes()
			if err != nil {
				return err
			}
			r.Keys = append(r.Keys, k)
		}
	case OpTxn:
		n, err := rd.count()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			op, err := rd.byte1()
			if err != nil {
				return err
			}
			switch Op(op) {
			case OpGet, OpSet, OpCAS, OpDel:
			default:
				return ErrBadSubOp
			}
			// Reuse a retained sub-entry when the batch slice has the
			// capacity (sub-ops never nest, so only the flat fields
			// need scrubbing).
			var sub *Request
			if m := len(r.Batch); m < cap(r.Batch) {
				r.Batch = r.Batch[:m+1]
				sub = &r.Batch[m]
				sub.Op, sub.Sem = Op(op), SemDefault
				sub.Key, sub.Val, sub.Old = nil, nil, nil
			} else {
				r.Batch = append(r.Batch, Request{Op: Op(op), Sem: SemDefault})
				sub = &r.Batch[m]
			}
			if err := decodeRequestBody(rd, sub); err != nil {
				return err
			}
		}
	case OpWatch:
		mode, err := rd.byte1()
		if err != nil {
			return err
		}
		switch mode {
		case 0:
			r.Prefix = false
		case 1:
			r.Prefix = true
		default:
			return ErrBadWatchMode
		}
		r.Key, err = rd.bytes()
		return err
	case OpIncr, OpDecr:
		if r.Key, err = rd.bytes(); err != nil {
			return err
		}
		r.Delta, err = rd.uvarint()
	case OpSetEx:
		if r.Key, err = rd.bytes(); err != nil {
			return err
		}
		if r.Val, err = rd.bytes(); err != nil {
			return err
		}
		if r.TTLMillis, err = rd.uvarint(); err != nil {
			return err
		}
		if r.TTLMillis == 0 {
			return ErrZeroTTL
		}
	case OpSplit:
		if r.Epoch, err = rd.uvarint(); err != nil {
			return err
		}
		r.Shard, err = rd.uvarint()
	case OpMerge:
		if r.Epoch, err = rd.uvarint(); err != nil {
			return err
		}
		if r.Shard, err = rd.uvarint(); err != nil {
			return err
		}
		r.Shard2, err = rd.uvarint()
	case OpStats, OpFlush, OpRebuild, OpPing, OpSubscribeWAL:
		// empty body
	default:
		return ErrBadOp
	}
	return err
}

// DecodeRequest parses one request payload into a fresh Request.
func DecodeRequest(payload []byte) (*Request, error) {
	r := new(Request)
	if err := DecodeRequestInto(r, payload); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeRequestInto parses one request payload into r, reusing r's
// slice storage (MGET key lists, TXN sub-request entries) across calls
// — the decode path of a connection loop that keeps one Request per
// connection. All of r's request fields are reset first; on error r
// holds partially decoded state and must not be executed. The decoded
// fields alias payload, so r is only valid while the payload buffer is.
func DecodeRequestInto(r *Request, payload []byte) error {
	r.Key, r.Val, r.Old = nil, nil, nil
	r.From, r.To = nil, nil
	r.Limit = 0
	r.Keys = r.Keys[:0]
	r.Batch = r.Batch[:0]
	r.Delta, r.TTLMillis, r.Prefix = 0, 0, false
	r.Epoch, r.Shard, r.Shard2 = 0, 0, 0
	rd := &reader{buf: payload}
	op, err := rd.byte1()
	if err != nil {
		return err
	}
	sem, err := rd.byte1()
	if err != nil {
		return err
	}
	r.Op, r.Sem = Op(op), sem
	if !r.Op.Valid() {
		return ErrBadOp
	}
	if _, err := Semantics(sem, 0); err != nil {
		return err
	}
	if err := decodeRequestBody(rd, r); err != nil {
		return err
	}
	return rd.done()
}

// ---- response codec ----

// appendResponseBody encodes the body of a sub- or top-level response
// answering opcode op.
func appendResponseBody(dst []byte, op Op, r *Response) ([]byte, error) {
	if r.Status == StatusErr {
		return appendBytes(dst, []byte(r.Msg)), nil
	}
	switch op {
	case OpGet:
		if r.Status == StatusOK {
			dst = appendBytes(dst, r.Val)
		}
	case OpCAS:
		if r.Status == StatusCASMismatch {
			dst = appendBytes(dst, r.Val)
		}
	case OpSet, OpDel:
		// empty body
	case OpScan:
		dst = appendUvarint(dst, uint64(len(r.Pairs)))
		for _, kv := range r.Pairs {
			dst = appendBytes(dst, kv.Key)
			dst = appendBytes(dst, kv.Val)
		}
	case OpMGet:
		dst = appendUvarint(dst, uint64(len(r.Batch)))
		for i := range r.Batch {
			sub := &r.Batch[i]
			dst = append(dst, byte(sub.Status))
			var err error
			if dst, err = appendResponseBody(dst, OpGet, sub); err != nil {
				return nil, err
			}
		}
	case OpTxn:
		dst = appendUvarint(dst, uint64(len(r.Batch)))
		for i := range r.Batch {
			sub := &r.Batch[i]
			dst = append(dst, byte(sub.Status))
			var err error
			if dst, err = appendResponseBody(dst, sub.SubOp, sub); err != nil {
				return nil, err
			}
		}
	case OpStats:
		dst = appendUvarint(dst, uint64(len(r.Counters)))
		for _, c := range r.Counters {
			dst = appendBytes(dst, []byte(c.Name))
			dst = appendUvarint(dst, c.Value)
		}
	case OpFlush, OpRebuild, OpSubscribeWAL, OpWatch, OpSplit, OpMerge:
		dst = appendUvarint(dst, r.N)
	case OpIncr, OpDecr:
		dst = binary.AppendVarint(dst, r.Int)
	case OpPing, OpSetEx:
		// empty body
	default:
		return nil, ErrBadOp
	}
	return dst, nil
}

// AppendResponse appends the full response payload (status | body) for a
// response answering opcode op.
func AppendResponse(dst []byte, op Op, r *Response) ([]byte, error) {
	dst = append(dst, byte(r.Status))
	return appendResponseBody(dst, op, r)
}

func decodeResponseBody(rd *reader, op Op, r *Response, subOps []Op) error {
	if r.Status == StatusErr {
		msg, err := rd.bytes()
		if err != nil {
			return err
		}
		r.Msg = string(msg)
		return nil
	}
	var err error
	switch op {
	case OpGet:
		if r.Status == StatusOK {
			r.Val, err = rd.bytes()
		}
	case OpCAS:
		if r.Status == StatusCASMismatch {
			r.Val, err = rd.bytes()
		}
	case OpSet, OpDel:
		// empty body
	case OpScan:
		n, err := rd.count()
		if err != nil {
			return err
		}
		r.Pairs = make([]KV, 0, prealloc(n))
		for i := 0; i < n; i++ {
			var kv KV
			if kv.Key, err = rd.bytes(); err != nil {
				return err
			}
			if kv.Val, err = rd.bytes(); err != nil {
				return err
			}
			r.Pairs = append(r.Pairs, kv)
		}
	case OpMGet:
		n, err := rd.count()
		if err != nil {
			return err
		}
		r.Batch = make([]Response, 0, prealloc(n))
		for i := 0; i < n; i++ {
			st, err := rd.byte1()
			if err != nil {
				return err
			}
			sub := Response{Status: Status(st)}
			if err := decodeResponseBody(rd, OpGet, &sub, nil); err != nil {
				return err
			}
			r.Batch = append(r.Batch, sub)
		}
	case OpTxn:
		var n uint64
		if n, err = rd.uvarint(); err != nil {
			return err
		}
		if n != uint64(len(subOps)) {
			return fmt.Errorf("wire: TXN response has %d sub-responses, expected %d", n, len(subOps))
		}
		r.Batch = make([]Response, n)
		for i := range r.Batch {
			st, err := rd.byte1()
			if err != nil {
				return err
			}
			r.Batch[i].Status = Status(st)
			if err := decodeResponseBody(rd, subOps[i], &r.Batch[i], nil); err != nil {
				return err
			}
		}
	case OpStats:
		n, err := rd.count()
		if err != nil {
			return err
		}
		r.Counters = make([]Counter, 0, prealloc(n))
		for i := 0; i < n; i++ {
			name, err := rd.bytes()
			if err != nil {
				return err
			}
			v, err := rd.uvarint()
			if err != nil {
				return err
			}
			r.Counters = append(r.Counters, Counter{Name: string(name), Value: v})
		}
	case OpFlush, OpRebuild, OpSubscribeWAL, OpWatch, OpSplit, OpMerge:
		r.N, err = rd.uvarint()
	case OpIncr, OpDecr:
		r.Int, err = rd.varint()
	case OpPing, OpSetEx:
		// empty body
	default:
		return ErrBadOp
	}
	return err
}

// DecodeResponse parses one response payload answering opcode op. For
// OpTxn, subOps must list the batch's sub-opcodes in order (the client
// knows them from the request it sent).
func DecodeResponse(payload []byte, op Op, subOps []Op) (*Response, error) {
	rd := &reader{buf: payload}
	st, err := rd.byte1()
	if err != nil {
		return nil, err
	}
	r := &Response{Status: Status(st)}
	if err := decodeResponseBody(rd, op, r, subOps); err != nil {
		return nil, err
	}
	if err := rd.done(); err != nil {
		return nil, err
	}
	return r, nil
}
