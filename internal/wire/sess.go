// Session streaming frames and typed protocol errors.
//
// After a WATCH request is answered OK the connection leaves the
// request/response protocol the same way a SUBSCRIBE-WAL feed does:
// both ends push frames with the 4-byte length framing, each payload
//
//	kind(1) | body
//
// with the per-kind layouts documented on the SessKind constants. The
// server pushes EVENT frames for commits matching the session's
// watches and PING frames when the link has been idle; the client may
// register further watches, drop them, and must answer PING with PONG
// so the server can cut dead sessions instead of buffering for them.
package wire

import (
	"errors"
	"fmt"
	"strings"
)

// SessKind is the first payload byte of a session push frame.
type SessKind byte

const (
	// SessEvent delivers one committed mutation matching a watch
	// (server → client). Body: uvarint watch-id | uvarint seq | op(1) |
	// key. seq is a server-global event sequence number, strictly
	// increasing per key and per watch (delivery order is commit order);
	// op is an EventOp. EventFlush frames carry an empty key: the whole
	// keyspace was cleared, including every key the watch matched.
	SessEvent SessKind = 1
	// SessEventLost reports that the session's buffer overflowed and the
	// server is cutting the session rather than blocking commits (server
	// → client, terminal: the connection closes after it). Body: uvarint
	// dropped — events discarded beyond the buffer. The client must
	// reconnect and re-register; it cannot assume it saw every event.
	SessEventLost SessKind = 2
	// SessPing is the link heartbeat (server → client, sent when the
	// session has pushed nothing past its idle budget). Body: empty. The
	// client answers with SessPong within the reply budget or the server
	// cuts the session.
	SessPing SessKind = 3
	// SessPong answers SessPing (client → server). Body: empty.
	SessPong SessKind = 4
	// SessWatch registers one more watch on the live session (client →
	// server). Body: mode(1) | key-or-prefix, mode as in the OpWatch
	// request (0 exact, 1 prefix). The server answers with SessWatchOK.
	SessWatch SessKind = 5
	// SessWatchOK acknowledges a SessWatch (server → client). Body:
	// uvarint watch-id. Acks arrive in registration order; events for
	// the new watch begin with commits that observe the registration.
	SessWatchOK SessKind = 6
	// SessUnwatch drops a watch by id (client → server). Body: uvarint
	// watch-id. Not acknowledged; events already buffered for the watch
	// may still arrive.
	SessUnwatch SessKind = 7
	// SessErr reports a session-protocol violation (server → client,
	// terminal: the connection closes after it). Body: code(1) | detail,
	// code being a ProtoCode and detail a human-readable byte string.
	SessErr SessKind = 8
)

// String names the frame kind.
func (k SessKind) String() string {
	switch k {
	case SessEvent:
		return "EVENT"
	case SessEventLost:
		return "EVENT-LOST"
	case SessPing:
		return "PING"
	case SessPong:
		return "PONG"
	case SessWatch:
		return "WATCH"
	case SessWatchOK:
		return "WATCH-OK"
	case SessUnwatch:
		return "UNWATCH"
	case SessErr:
		return "ERR"
	default:
		return "SessKind(?)"
	}
}

// ErrBadSessFrame reports an unknown or malformed session frame kind.
var ErrBadSessFrame = errors.New("wire: unknown session frame kind")

// EventOp says what happened to the key a SessEvent names.
type EventOp byte

const (
	// EventSet: the key was written (SET, CAS, SETEX, INCR/DECR, TXN
	// sub-write).
	EventSet EventOp = 0
	// EventDel: the key was deleted (DEL or a TXN sub-delete).
	EventDel EventOp = 1
	// EventExpire: the key's TTL lapsed and the reaper deleted it. On a
	// follower an expiry arrives as EventDel — the follower applies the
	// primary's WAL delete and cannot tell why the primary issued it.
	EventExpire EventOp = 2
	// EventFlush: the whole store was cleared by FLUSH, one event per
	// watch regardless of shard count; the event's key is empty, and
	// every TTL was cleared with the keys. REBUILD is invisible to
	// sessions — it re-levels the index but every key, value, and
	// deadline survives.
	EventFlush EventOp = 3
)

// String names the event op.
func (o EventOp) String() string {
	switch o {
	case EventSet:
		return "SET"
	case EventDel:
		return "DEL"
	case EventExpire:
		return "EXPIRE"
	case EventFlush:
		return "FLUSH"
	default:
		return "EventOp(?)"
	}
}

// SessFrame is the decoded form of one session push frame. Fields are
// kind-dependent; unused fields are zero.
type SessFrame struct {
	Kind SessKind

	WatchID uint64  // EVENT, WATCH-OK, UNWATCH
	Seq     uint64  // EVENT
	Op      EventOp // EVENT
	Key     []byte  // EVENT, WATCH
	Prefix  bool    // WATCH: Key is a prefix

	Dropped uint64 // EVENT-LOST

	Code   ProtoCode // ERR
	Detail []byte    // ERR
}

// AppendSessFrame appends f's complete frame — 4-byte length prefix
// plus kind | body — to dst.
func AppendSessFrame(dst []byte, f *SessFrame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(f.Kind))
	switch f.Kind {
	case SessEvent:
		dst = appendUvarint(dst, f.WatchID)
		dst = appendUvarint(dst, f.Seq)
		dst = append(dst, byte(f.Op))
		dst = appendBytes(dst, f.Key)
	case SessEventLost:
		dst = appendUvarint(dst, f.Dropped)
	case SessPing, SessPong:
		// empty body
	case SessWatch:
		if f.Prefix {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendBytes(dst, f.Key)
	case SessWatchOK:
		dst = appendUvarint(dst, f.WatchID)
	case SessUnwatch:
		dst = appendUvarint(dst, f.WatchID)
	case SessErr:
		dst = append(dst, byte(f.Code))
		dst = appendBytes(dst, f.Detail)
	default:
		return dst[:start], ErrBadSessFrame
	}
	putFrameLen(dst, start)
	return dst, nil
}

// DecodeSessFrame parses one session push payload into f, reusing f
// across calls (the session loops keep one SessFrame per connection).
// The decoded byte fields alias payload. On error f holds partially
// decoded state and must not be acted on.
func DecodeSessFrame(f *SessFrame, payload []byte) error {
	f.WatchID, f.Seq, f.Dropped = 0, 0, 0
	f.Op, f.Code = 0, 0
	f.Key, f.Detail = nil, nil
	f.Prefix = false
	rd := &reader{buf: payload}
	kind, err := rd.byte1()
	if err != nil {
		return err
	}
	f.Kind = SessKind(kind)
	switch f.Kind {
	case SessEvent:
		if f.WatchID, err = rd.uvarint(); err != nil {
			return err
		}
		if f.Seq, err = rd.uvarint(); err != nil {
			return err
		}
		op, err := rd.byte1()
		if err != nil {
			return err
		}
		if EventOp(op) > EventFlush {
			return ErrBadSessFrame
		}
		f.Op = EventOp(op)
		if f.Key, err = rd.bytes(); err != nil {
			return err
		}
	case SessEventLost:
		if f.Dropped, err = rd.uvarint(); err != nil {
			return err
		}
	case SessPing, SessPong:
		// empty body
	case SessWatch:
		mode, err := rd.byte1()
		if err != nil {
			return err
		}
		switch mode {
		case 0:
			f.Prefix = false
		case 1:
			f.Prefix = true
		default:
			return ErrBadWatchMode
		}
		if f.Key, err = rd.bytes(); err != nil {
			return err
		}
	case SessWatchOK:
		if f.WatchID, err = rd.uvarint(); err != nil {
			return err
		}
	case SessUnwatch:
		if f.WatchID, err = rd.uvarint(); err != nil {
			return err
		}
	case SessErr:
		code, err := rd.byte1()
		if err != nil {
			return err
		}
		f.Code = ProtoCode(code)
		if f.Detail, err = rd.bytes(); err != nil {
			return err
		}
	default:
		return ErrBadSessFrame
	}
	return rd.done()
}

// ---- typed protocol errors ----

// ProtoCode classifies a protocol violation the way HSMS S9 messages
// do: the peer is told WHAT rule it broke in a machine-readable reply
// instead of having its connection silently dropped.
type ProtoCode byte

const (
	// ProtoUnknownOp: the request opcode is not defined.
	ProtoUnknownOp ProtoCode = 1
	// ProtoMalformed: the frame decoded to garbage (truncated body,
	// trailing bytes, invalid mode byte, ...).
	ProtoMalformed ProtoCode = 2
	// ProtoOversize: the announced frame length exceeds the limit.
	ProtoOversize ProtoCode = 3
	// ProtoBadSession: a session frame arrived in a state that cannot
	// accept it (e.g. a request opcode on a converted session
	// connection, or a session kind the client may not send).
	ProtoBadSession ProtoCode = 4
)

// String names the code in the fixed wire spelling ParseProtocolError
// recognises.
func (c ProtoCode) String() string {
	switch c {
	case ProtoUnknownOp:
		return "unknown-op"
	case ProtoMalformed:
		return "malformed"
	case ProtoOversize:
		return "oversize"
	case ProtoBadSession:
		return "bad-session"
	default:
		return fmt.Sprintf("ProtoCode(%d)", byte(c))
	}
}

func protoCodeFromString(s string) (ProtoCode, bool) {
	switch s {
	case "unknown-op":
		return ProtoUnknownOp, true
	case "malformed":
		return ProtoMalformed, true
	case "oversize":
		return ProtoOversize, true
	case "bad-session":
		return ProtoBadSession, true
	default:
		return 0, false
	}
}

// ErrProtocol is matched (via errors.Is) by the typed *ProtocolError a
// server raises for a protocol violation.
var ErrProtocol = errors.New("wire: protocol error")

const protocolMsg = "wire: protocol error"

// ProtocolError is the S9-style typed reply to a protocol violation: a
// classified code plus a human-readable detail, sent as a clean
// StatusErr (or a SessErr frame on a converted session) so the peer
// learns what it did wrong and the connection survives where it safely
// can. It crosses the wire as a StatusErr message in a fixed format
// that ParseProtocolError recovers on the client side.
type ProtocolError struct {
	Code   ProtoCode
	Detail string
}

// Error implements error in the wire format ParseProtocolError parses.
func (e *ProtocolError) Error() string {
	s := protocolMsg + "; code=" + e.Code.String()
	if e.Detail != "" {
		s += "; detail=" + e.Detail
	}
	return s
}

// Is makes errors.Is(err, ErrProtocol) report true.
func (e *ProtocolError) Is(target error) bool { return target == ErrProtocol }

// ParseProtocolError recovers a ProtocolError from a StatusErr message,
// reporting ok=false for any other message.
func ParseProtocolError(msg string) (*ProtocolError, bool) {
	rest, found := strings.CutPrefix(msg, protocolMsg+"; code=")
	if !found {
		return nil, false
	}
	name, detail, _ := strings.Cut(rest, "; detail=")
	code, ok := protoCodeFromString(name)
	if !ok {
		return nil, false
	}
	return &ProtocolError{Code: code, Detail: detail}, true
}
