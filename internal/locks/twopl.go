package locks

import "errors"

// ErrTwoPhaseViolation is returned when a lock is requested after the
// first unlock — the growing phase has ended.
var ErrTwoPhaseViolation = errors.New("locks: lock acquired after unlock (2PL violation)")

// TwoPhase wraps a Manager with the two-phase locking discipline: all
// Lock calls must precede the first Unlock. The paper's Theorem 1 uses
// the fact that fine-grained locks *can* implement 2PL — every schedule
// a monomorphic TM accepts can be produced by a 2PL locking of the same
// accesses — while plain well-formed locking (Figure 1's hand-over-hand
// pattern) also accepts schedules no TM can. TwoPhase lets executors and
// tests distinguish those two regimes mechanically.
type TwoPhase struct {
	m         *Manager
	owner     uint64
	shrinking bool
	held      map[any]bool
	strict    bool
}

// NewTwoPhase starts a 2PL session for owner on manager m. If strict is
// true, individual Unlock calls are refused: all locks are held until
// ReleaseAll (strict 2PL, the discipline commit-time STM locking
// follows).
func NewTwoPhase(m *Manager, owner uint64, strict bool) *TwoPhase {
	return &TwoPhase{m: m, owner: owner, held: make(map[any]bool), strict: strict}
}

// Lock acquires key, enforcing the growing phase.
func (t *TwoPhase) Lock(key any) error {
	if t.shrinking {
		return ErrTwoPhaseViolation
	}
	if t.held[key] {
		return nil
	}
	if err := t.m.Acquire(t.owner, key); err != nil {
		return err
	}
	t.held[key] = true
	return nil
}

// Unlock releases key and enters the shrinking phase. Under strict 2PL
// it returns ErrTwoPhaseViolation (use ReleaseAll).
func (t *TwoPhase) Unlock(key any) error {
	if t.strict {
		return ErrTwoPhaseViolation
	}
	if !t.held[key] {
		return ErrNotHeld
	}
	if err := t.m.Release(t.owner, key); err != nil {
		return err
	}
	delete(t.held, key)
	t.shrinking = true
	return nil
}

// ReleaseAll ends the session, releasing every held lock.
func (t *TwoPhase) ReleaseAll() {
	for key := range t.held {
		_ = t.m.Release(t.owner, key)
		delete(t.held, key)
	}
	t.shrinking = true
}

// Holds reports whether key is currently held in this session.
func (t *TwoPhase) Holds(key any) bool { return t.held[key] }

// Shrinking reports whether the growing phase has ended.
func (t *TwoPhase) Shrinking() bool { return t.shrinking }
