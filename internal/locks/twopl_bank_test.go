package locks

import (
	"errors"
	"sync"
	"testing"
)

// TestTwoPhaseBankTransfers: concurrent strict-2PL sessions move money
// between accounts through the deadlock-detecting manager; deadlock
// victims release everything and retry. The total is invariant and no
// session ever observes a torn pair while holding both locks.
func TestTwoPhaseBankTransfers(t *testing.T) {
	m := NewManager()
	const accounts = 6
	const initial = 1000
	balances := make([]int, accounts)
	for i := range balances {
		balances[i] = initial
	}

	var wg sync.WaitGroup
	const workers, transfers = 6, 300
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(owner uint64, seed uint32) {
			defer wg.Done()
			r := seed
			for i := 0; i < transfers; i++ {
				r = r*1664525 + 1013904223
				a := int(r>>8) % accounts
				b := int(r>>16) % accounts
				if a == b {
					b = (b + 1) % accounts
				}
				for {
					tp := NewTwoPhase(m, owner, true)
					if err := tp.Lock(a); err != nil {
						tp.ReleaseAll()
						continue
					}
					if err := tp.Lock(b); err != nil {
						// Deadlock victim: drop everything, retry.
						if !errors.Is(err, ErrDeadlock) {
							t.Errorf("unexpected lock error: %v", err)
							tp.ReleaseAll()
							return
						}
						tp.ReleaseAll()
						continue
					}
					balances[a]--
					balances[b]++
					tp.ReleaseAll()
					break
				}
			}
		}(uint64(w), uint32(w*13))
	}
	wg.Wait()
	total := 0
	for _, b := range balances {
		total += b
	}
	if total != accounts*initial {
		t.Fatalf("total = %d, want %d (2PL lost an update)", total, accounts*initial)
	}
	acq, contended, deadlocks := m.Stats()
	t.Logf("acquired=%d contended=%d deadlocks=%d", acq, contended, deadlocks)
}

// TestTwoPhaseHoldsAcrossCriticalSection: while a strict session holds
// its locks, no other owner can acquire them (TryAcquire fails), and
// after ReleaseAll it can.
func TestTwoPhaseHoldsAcrossCriticalSection(t *testing.T) {
	m := NewManager()
	tp := NewTwoPhase(m, 1, true)
	if err := tp.Lock("x"); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, "x"); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("TryAcquire while held: %v, want ErrWouldBlock", err)
	}
	tp.ReleaseAll()
	if err := m.TryAcquire(2, "x"); err != nil {
		t.Fatalf("TryAcquire after release: %v", err)
	}
}
