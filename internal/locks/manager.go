// Package locks implements the lock-based synchronization of the paper:
// per-register locks with lock(x)/unlock(x) events, a strict two-phase
// locking discipline checker (the construction behind the second half of
// Theorem 1: "fine-grained locks can implement 2-phase-locking"), a
// deadlock-detecting lock manager, and lock striping used by the
// lock-based baseline data structures.
package locks

import (
	"errors"
	"fmt"
	"sync"
)

// Lock manager errors.
var (
	// ErrDeadlock is returned by Acquire when granting the request would
	// close a cycle in the waits-for graph.
	ErrDeadlock = errors.New("locks: deadlock detected")

	// ErrNotHeld is returned when releasing a lock the owner does not hold.
	ErrNotHeld = errors.New("locks: lock not held by owner")

	// ErrWouldBlock is returned by TryAcquire when the lock is busy.
	ErrWouldBlock = errors.New("locks: lock busy")
)

// lockState is the per-key record.
type lockState struct {
	holder uint64 // 0 = free
	depth  int    // reentrancy depth
	cond   *sync.Cond
}

// Manager is a blocking lock manager over arbitrary comparable keys
// (the paper's shared registers x, y, z). It grants exclusive,
// reentrant locks, blocks waiters on per-key condition variables, and
// detects deadlock by searching the waits-for graph before blocking.
//
// Owner ids are caller-chosen and must be non-zero and unique per
// concurrent actor (the paper's processes p1, p2, p3).
type Manager struct {
	mu      sync.Mutex
	locks   map[any]*lockState
	waitFor map[uint64]uint64 // waiting owner -> owner it waits on

	acquired  uint64
	contended uint64
	deadlocks uint64
}

// NewManager creates an empty lock manager.
func NewManager() *Manager {
	return &Manager{
		locks:   make(map[any]*lockState),
		waitFor: make(map[uint64]uint64),
	}
}

func (m *Manager) state(key any) *lockState {
	ls, ok := m.locks[key]
	if !ok {
		ls = &lockState{}
		ls.cond = sync.NewCond(&m.mu)
		m.locks[key] = ls
	}
	return ls
}

// Acquire blocks until owner holds key, or returns ErrDeadlock if
// blocking would create a waits-for cycle. Re-acquiring a held key
// increments its reentrancy depth.
func (m *Manager) Acquire(owner uint64, key any) error {
	if owner == 0 {
		return fmt.Errorf("locks: owner id must be non-zero")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.state(key)
	for {
		if ls.holder == 0 {
			ls.holder = owner
			ls.depth = 1
			m.acquired++
			return nil
		}
		if ls.holder == owner {
			ls.depth++
			return nil
		}
		// Would block: check for a waits-for cycle holder -> ... -> owner.
		if m.wouldDeadlock(owner, ls.holder) {
			m.deadlocks++
			return ErrDeadlock
		}
		m.contended++
		m.waitFor[owner] = ls.holder
		ls.cond.Wait()
		delete(m.waitFor, owner)
	}
}

// wouldDeadlock walks the waits-for chain from holder; each owner waits
// on at most one other owner, so the graph is a union of chains.
func (m *Manager) wouldDeadlock(requester, holder uint64) bool {
	seen := 0
	for cur := holder; ; {
		if cur == requester {
			return true
		}
		next, ok := m.waitFor[cur]
		if !ok {
			return false
		}
		cur = next
		if seen++; seen > len(m.waitFor)+1 {
			return true // defensive: malformed graph treated as cycle
		}
	}
}

// TryAcquire acquires key for owner without blocking, returning
// ErrWouldBlock if it is held by someone else.
func (m *Manager) TryAcquire(owner uint64, key any) error {
	if owner == 0 {
		return fmt.Errorf("locks: owner id must be non-zero")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.state(key)
	switch ls.holder {
	case 0:
		ls.holder = owner
		ls.depth = 1
		m.acquired++
		return nil
	case owner:
		ls.depth++
		return nil
	default:
		return ErrWouldBlock
	}
}

// Release releases one level of owner's hold on key, waking a waiter
// when the lock becomes free.
func (m *Manager) Release(owner uint64, key any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	ls, ok := m.locks[key]
	if !ok || ls.holder != owner {
		return ErrNotHeld
	}
	ls.depth--
	if ls.depth == 0 {
		ls.holder = 0
		ls.cond.Signal()
	}
	return nil
}

// ReleaseAll releases every lock owner holds (any depth), returning how
// many keys were freed. It is the shrinking phase of strict 2PL.
func (m *Manager) ReleaseAll(owner uint64) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, ls := range m.locks {
		if ls.holder == owner {
			ls.holder = 0
			ls.depth = 0
			ls.cond.Broadcast()
			n++
		}
	}
	return n
}

// Holder reports the current holder of key (0 if free or unknown).
func (m *Manager) Holder(key any) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ls, ok := m.locks[key]; ok {
		return ls.holder
	}
	return 0
}

// HeldBy reports whether owner currently holds key.
func (m *Manager) HeldBy(owner uint64, key any) bool { return m.Holder(key) == owner }

// Stats returns (acquired, contended, deadlocks) counters.
func (m *Manager) Stats() (acquired, contended, deadlocks uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.acquired, m.contended, m.deadlocks
}
