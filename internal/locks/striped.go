package locks

import "sync"

// Striped is a fixed array of reader/writer locks indexed by hash — the
// classic lock-striping scheme of coarse-to-medium-grained hash tables.
// The stripe count is rounded up to a power of two so selection is a
// mask.
type Striped struct {
	stripes []sync.RWMutex
	mask    uint64
}

// NewStriped creates a striped lock set with at least n stripes (minimum
// 1, rounded up to a power of two).
func NewStriped(n int) *Striped {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Striped{stripes: make([]sync.RWMutex, size), mask: uint64(size - 1)}
}

// For returns the stripe responsible for hash h.
func (s *Striped) For(h uint64) *sync.RWMutex { return &s.stripes[h&s.mask] }

// Len returns the number of stripes.
func (s *Striped) Len() int { return len(s.stripes) }

// LockAll write-locks every stripe in index order (a global critical
// section, e.g. for resize); UnlockAll releases in reverse order.
func (s *Striped) LockAll() {
	for i := range s.stripes {
		s.stripes[i].Lock()
	}
}

// UnlockAll releases all stripes taken by LockAll.
func (s *Striped) UnlockAll() {
	for i := len(s.stripes) - 1; i >= 0; i-- {
		s.stripes[i].Unlock()
	}
}
