package locks

import (
	"errors"
	"sync"
	"testing"
)

func TestAcquireRelease(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x"); err != nil {
		t.Fatal(err)
	}
	if !m.HeldBy(1, "x") {
		t.Fatal("owner 1 should hold x")
	}
	if err := m.Release(1, "x"); err != nil {
		t.Fatal(err)
	}
	if m.Holder("x") != 0 {
		t.Fatal("x should be free")
	}
}

func TestReleaseNotHeld(t *testing.T) {
	m := NewManager()
	if err := m.Release(1, "x"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
	_ = m.Acquire(2, "x")
	if err := m.Release(1, "x"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("release of other's lock: %v, want ErrNotHeld", err)
	}
}

func TestReentrancy(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1, "x"); err != nil {
		t.Fatal(err)
	}
	if !m.HeldBy(1, "x") {
		t.Fatal("x must still be held after one of two releases")
	}
	if err := m.Release(1, "x"); err != nil {
		t.Fatal(err)
	}
	if m.Holder("x") != 0 {
		t.Fatal("x should be free after matching releases")
	}
}

func TestTryAcquire(t *testing.T) {
	m := NewManager()
	if err := m.TryAcquire(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, "x"); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("err = %v, want ErrWouldBlock", err)
	}
	if err := m.TryAcquire(1, "x"); err != nil {
		t.Fatalf("reentrant TryAcquire: %v", err)
	}
}

func TestZeroOwnerRejected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(0, "x"); err == nil {
		t.Fatal("owner 0 must be rejected")
	}
	if err := m.TryAcquire(0, "x"); err == nil {
		t.Fatal("owner 0 must be rejected")
	}
}

func TestBlockingHandoff(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x"); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, "x") }()
	// Owner 2 must be blocked; give the release.
	if err := m.Release(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatal(err)
	}
	if !m.HeldBy(2, "x") {
		t.Fatal("owner 2 should hold x after handoff")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Acquire(1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, "y"); err != nil {
		t.Fatal(err)
	}
	// Owner 1 blocks on y (held by 2); then owner 2 requesting x closes
	// the cycle and must get ErrDeadlock.
	step := make(chan error, 1)
	go func() { step <- m.Acquire(1, "y") }()
	// Wait until owner 1 is registered as waiting.
	for {
		m.mu.Lock()
		_, waiting := m.waitFor[1]
		m.mu.Unlock()
		if waiting {
			break
		}
	}
	err := m.Acquire(2, "x")
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Resolve: owner 2 releases y, owner 1 proceeds.
	if err := m.Release(2, "y"); err != nil {
		t.Fatal(err)
	}
	if err := <-step; err != nil {
		t.Fatal(err)
	}
	_, _, d := m.Stats()
	if d != 1 {
		t.Fatalf("deadlocks = %d, want 1", d)
	}
}

func TestReleaseAll(t *testing.T) {
	m := NewManager()
	for _, k := range []string{"a", "b", "c"} {
		if err := m.Acquire(1, k); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.ReleaseAll(1); n != 3 {
		t.Fatalf("released %d, want 3", n)
	}
	for _, k := range []string{"a", "b", "c"} {
		if m.Holder(k) != 0 {
			t.Fatalf("%s still held", k)
		}
	}
}

func TestManagerMutualExclusion(t *testing.T) {
	m := NewManager()
	counter := 0
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(owner uint64) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := m.Acquire(owner, "ctr"); err != nil {
					t.Error(err)
					return
				}
				counter++
				if err := m.Release(owner, "ctr"); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", counter, workers*per)
	}
}

func TestTwoPhaseDiscipline(t *testing.T) {
	m := NewManager()
	tp := NewTwoPhase(m, 1, false)
	if err := tp.Lock("x"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Lock("y"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Unlock("x"); err != nil {
		t.Fatal(err)
	}
	if !tp.Shrinking() {
		t.Fatal("unlock must start the shrinking phase")
	}
	if err := tp.Lock("z"); !errors.Is(err, ErrTwoPhaseViolation) {
		t.Fatalf("lock after unlock: %v, want ErrTwoPhaseViolation", err)
	}
	tp.ReleaseAll()
	if m.Holder("y") != 0 {
		t.Fatal("y should be free after ReleaseAll")
	}
}

func TestStrictTwoPhaseRefusesEarlyUnlock(t *testing.T) {
	m := NewManager()
	tp := NewTwoPhase(m, 1, true)
	if err := tp.Lock("x"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Unlock("x"); !errors.Is(err, ErrTwoPhaseViolation) {
		t.Fatalf("strict unlock: %v, want ErrTwoPhaseViolation", err)
	}
	tp.ReleaseAll()
	if m.Holder("x") != 0 {
		t.Fatal("x should be free")
	}
}

func TestTwoPhaseIdempotentLock(t *testing.T) {
	m := NewManager()
	tp := NewTwoPhase(m, 1, false)
	if err := tp.Lock("x"); err != nil {
		t.Fatal(err)
	}
	if err := tp.Lock("x"); err != nil {
		t.Fatal(err)
	}
	if !tp.Holds("x") {
		t.Fatal("x should be held")
	}
	tp.ReleaseAll()
	if m.Holder("x") != 0 {
		t.Fatal("x should be free after ReleaseAll despite double Lock")
	}
}

func TestStripedBasics(t *testing.T) {
	s := NewStriped(10)
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16 (next power of two)", s.Len())
	}
	if s.For(0) == s.For(1) {
		t.Fatal("adjacent hashes should map to distinct stripes")
	}
	if s.For(5) != s.For(5+16) {
		t.Fatal("stripe selection must be hash mod size")
	}
}

func TestStripedLockAll(t *testing.T) {
	s := NewStriped(4)
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(h uint64) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				mu := s.For(h)
				mu.Lock()
				counter++
				mu.Unlock()
			}
		}(uint64(0)) // all workers share one stripe so counter is protected
	}
	// Concurrent global sections.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.LockAll()
				counter += 2
				s.UnlockAll()
			}
		}()
	}
	wg.Wait()
	if counter != 4*1000+3*50*2 {
		t.Fatalf("counter = %d, want %d", counter, 4*1000+3*50*2)
	}
}
