package server

import (
	"sync"

	"polytm/internal/wal"
)

// dirtySet tracks the keys a shard has mutated since its last
// checkpoint cut — the working set an incremental (delta) checkpoint
// serializes instead of the whole keyspace, which is what bounds
// checkpoint I/O by churn rather than keyspace size.
//
// Marking is eager: the walCapture marks keys while the transaction
// body builds its record, before commit is certain. A body that errors
// out after marking leaves spurious entries behind, which is safe —
// the delta writes the key's CURRENT committed value (or a tombstone),
// so an unchanged key costs bytes but never correctness. Irrevocable
// bodies (every durable mutation) cannot abort after reserving anyway,
// so spurious marks are limited to pre-reserve error returns.
//
// A FLUSH (ClearTx) cannot be expressed in the delta vocabulary — it
// would need a tombstone per previously-live key, which nobody tracks —
// so it raises the flushed flag instead, forcing the next checkpoint to
// be a full base. REBUILD leaves contents untouched and marks nothing.
type dirtySet struct {
	mu      sync.Mutex
	keys    map[string]struct{}
	flushed bool
}

// mark records one mutated key. The []byte converts to string only on
// first insertion (the map lookup itself does not allocate).
func (d *dirtySet) mark(key []byte) {
	d.mu.Lock()
	if d.keys == nil {
		d.keys = make(map[string]struct{})
	}
	d.keys[string(key)] = struct{}{}
	d.mu.Unlock()
}

// markString is mark for keys already held as strings.
func (d *dirtySet) markString(key string) {
	d.mu.Lock()
	if d.keys == nil {
		d.keys = make(map[string]struct{})
	}
	d.keys[key] = struct{}{}
	d.mu.Unlock()
}

// markFlush records a whole-keyspace clear: the next checkpoint must be
// a full base.
func (d *dirtySet) markFlush() {
	d.mu.Lock()
	d.flushed = true
	d.mu.Unlock()
}

// markOps records a recovered/re-logged operation group — the WAL
// replay tail and resolved in-doubt prepares feed the dirty set through
// it, so keys that changed past the checkpoint chain land in the next
// delta.
func (d *dirtySet) markOps(ops []wal.Op) {
	d.mu.Lock()
	for _, op := range ops {
		switch op.Kind {
		case wal.OpSet, wal.OpDel:
			if d.keys == nil {
				d.keys = make(map[string]struct{})
			}
			d.keys[op.Key] = struct{}{}
		case wal.OpFlush:
			d.flushed = true
		}
	}
	d.mu.Unlock()
}

// peek reports the current size and flush flag without consuming them.
func (d *dirtySet) peek() (n int, flushed bool) {
	d.mu.Lock()
	n, flushed = len(d.keys), d.flushed
	d.mu.Unlock()
	return n, flushed
}

// snapshotKeys copies the current key set without consuming it —
// replication delta catch-up reads the set but must leave it intact
// for the next checkpoint cut.
func (d *dirtySet) snapshotKeys() (keys []string, flushed bool) {
	d.mu.Lock()
	keys = make([]string, 0, len(d.keys))
	for k := range d.keys {
		keys = append(keys, k)
	}
	flushed = d.flushed
	d.mu.Unlock()
	return keys, flushed
}

// take consumes and returns the accumulated set. The checkpointer calls
// it inside the empty irrevocable rotation transaction, so the cut is
// the same commit-order boundary the rotation seals.
func (d *dirtySet) take() (keys map[string]struct{}, flushed bool) {
	d.mu.Lock()
	keys, flushed = d.keys, d.flushed
	d.keys, d.flushed = nil, false
	d.mu.Unlock()
	return keys, flushed
}

// restore merges a taken set back after a failed checkpoint write:
// losing taken keys would carve them out of every future delta.
func (d *dirtySet) restore(keys map[string]struct{}, flushed bool) {
	d.mu.Lock()
	if d.keys == nil {
		d.keys = keys
	} else {
		for k := range keys {
			d.keys[k] = struct{}{}
		}
	}
	d.flushed = d.flushed || flushed
	d.mu.Unlock()
}
