package server

import (
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"polytm/internal/wal"
	"polytm/internal/wire"
)

// Cross-shard crash atomicity: SIGKILL a durable sharded store inside
// the two crash windows of the commit protocol and prove recovery
// never surfaces a half-applied multi-shard TXN.
//
//   - "prepare" window: the process dies the instant the first PREPARE
//     record is durable — before the coordinator's DECISION exists.
//     Recovery must roll the whole transaction back (no client was
//     acknowledged).
//   - "decision" window: the process dies the instant the DECISION
//     record is durable — before any participant's COMMIT mark.
//     Recovery must commit the whole transaction (the commit point was
//     reached), resolving the participants' in-doubt prepares against
//     the coordinator's decision set.
//
// The kill is injected through the WAL's OnDurableRecord hook, which
// runs on the flusher goroutine after the record is on stable storage
// and before any appender is acknowledged — exactly the instant the
// crash window opens.

const (
	xcrashChildEnv = "POLYSERVE_XCRASH_DIR"
	xcrashModeEnv  = "POLYSERVE_XCRASH_MODE"
	xcrashShards   = 4
)

// xcrashPair deterministically picks two keys on different shards of
// st — identical in the child (writer) and the parent (verifier).
func xcrashPair(st *Store) (a, b []byte) {
	a = tkey(0)
	for i := 1; ; i++ {
		if st.shardIdx(tkey(i)) != st.shardIdx(a) {
			return a, tkey(i)
		}
	}
}

// xcrashChild seeds a cross-shard pair, arms the kill hook, then runs
// a cross-shard TXN moving both keys — and dies mid-protocol.
func xcrashChild(dir, mode string) {
	target := byte(0x10) // PREPARE
	if mode == "decision" {
		target = 0x11 // DECISION
	}
	var armed atomic.Bool
	st := newSharded(xcrashShards)
	_, err := st.EnableDurability(Durability{
		Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1,
		onDurableRecord: func(first byte) {
			if armed.Load() && first == target {
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
				select {} // never acknowledge past the kill point
			}
		},
	})
	if err != nil {
		fmt.Printf("CHILD-ERR enable durability: %v\n", err)
		os.Exit(1)
	}
	a, b := xcrashPair(st)
	seed := st.Execute(&wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: a, Val: []byte("init")},
		{Op: wire.OpSet, Key: b, Val: []byte("init")},
	}})
	if seed.Status != wire.StatusOK {
		fmt.Printf("CHILD-ERR seed: %s\n", seed.Msg)
		os.Exit(1)
	}
	fmt.Println("SEEDED")
	armed.Store(true)
	st.Execute(&wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: a, Val: []byte("after")},
		{Op: wire.OpSet, Key: b, Val: []byte("after")},
	}})
	fmt.Println("CHILD-ERR survived the kill window")
	os.Exit(1)
}

// TestCrossShardCrashAtomicity kills a child process in each window
// and verifies the recovered pair moved in lockstep. CI runs it
// -count=10 per mode for the 20-kill acceptance gate.
func TestCrossShardCrashAtomicity(t *testing.T) {
	if dir := os.Getenv(xcrashChildEnv); dir != "" {
		xcrashChild(dir, os.Getenv(xcrashModeEnv)) // never returns
	}
	for _, mode := range []string{"prepare", "decision"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=TestCrossShardCrashAtomicity$", "-test.v")
			cmd.Env = append(os.Environ(), xcrashChildEnv+"="+dir, xcrashModeEnv+"="+mode)
			timer := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
			out, _ := cmd.CombinedOutput() // dies by SIGKILL: error by design
			timer.Stop()
			if s := string(out); strings.Contains(s, "CHILD-ERR") || !strings.Contains(s, "SEEDED") {
				t.Fatalf("crash child (mode=%s):\n%s", mode, s)
			}

			st := newSharded(xcrashShards)
			res, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer st.CloseDurability()
			t.Logf("recovery: %s", res)

			got := scanAll(t, st)
			a, b := xcrashPair(st)
			va, vb := got[string(a)], got[string(b)]
			if va != vb {
				t.Fatalf("HALF-APPLIED cross-shard txn after crash: %s=%q %s=%q", a, va, b, vb)
			}
			switch mode {
			case "prepare":
				// No decision was ever durable: the transaction must roll
				// back, and nothing was acknowledged so nothing is lost.
				if va != "init" {
					t.Fatalf("prepare-window crash surfaced the unacknowledged txn: %q", va)
				}
			case "decision":
				// The commit point was durable: recovery must finish the
				// transaction, resolving in-doubt prepares via the
				// coordinator's decision set.
				if va != "after" {
					t.Fatalf("decision was durable but recovery rolled back: %q", va)
				}
				if res.Committed == 0 {
					t.Fatalf("expected at least one in-doubt prepare committed via the decision set: %s", res)
				}
			}
		})
	}
}
