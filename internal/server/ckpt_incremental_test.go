package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"polytm/internal/core"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// newDurableCfg is newDurable with full control over the checkpoint
// policy knobs (MaxChain, CompactRatio).
func newDurableCfg(t *testing.T, d Durability) (*Store, *wal.RecoverResult) {
	t.Helper()
	st := NewStore(core.NewDefault())
	res, err := st.EnableDurability(d)
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return st, res.Shards[0]
}

// ckptKeyN formats the i-th fill key of the churn-bound workload.
func ckptKeyN(i int) string { return fmt.Sprintf("key-%08d", i) }

// fillKeys loads keys [0, n) in TXN batches (one WAL record per batch,
// so the fill is fast even under ModeAlways).
func fillKeys(t *testing.T, st *Store, n int, val func(i int) string) {
	t.Helper()
	const batch = 200
	for lo := 0; lo < n; lo += batch {
		hi := lo + batch
		if hi > n {
			hi = n
		}
		reqs := make([]wire.Request, 0, batch)
		for i := lo; i < hi; i++ {
			reqs = append(reqs, wire.Request{Op: wire.OpSet,
				Key: []byte(ckptKeyN(i)), Val: []byte(val(i))})
		}
		execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: reqs})
	}
}

// churnKeys mutates ~pct percent of the first n keys: most are
// overwritten, every 10th churned key is deleted instead. Returns the
// churned key count.
func churnKeys(t *testing.T, st *Store, n, pct int, gen string) int {
	t.Helper()
	stride := 100 / pct
	count := 0
	for i := 0; i < n; i += stride {
		if count%10 == 9 {
			execOK(t, st, &wire.Request{Op: wire.OpDel, Sem: wire.SemDefault,
				Key: []byte(ckptKeyN(i))})
		} else {
			execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
				Key: []byte(ckptKeyN(i)), Val: []byte(gen + "-" + strconv.Itoa(i))})
		}
		count++
	}
	return count
}

// TestIncrementalCheckpointChurnBound is the acceptance experiment for
// incremental checkpoints: on a large store with 1% churn, a delta
// checkpoint must write <= 5% of the full-checkpoint bytes, and
// recovery through base + delta + tail must yield exactly the same
// contents as a store that only ever wrote full checkpoints.
//
// The key count defaults to 100k (20k under -short) and scales to the
// paper-sized 1M-key run with POLYSERVE_CKPT_KEYS=1000000 — the
// churn-bound ratio only improves with scale, since the delta cost is
// proportional to churn while the base grows with the keyspace.
func TestIncrementalCheckpointChurnBound(t *testing.T) {
	keys := 100_000
	if testing.Short() {
		keys = 20_000
	}
	if env := os.Getenv("POLYSERVE_CKPT_KEYS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1000 {
			t.Fatalf("POLYSERVE_CKPT_KEYS=%q: need an int >= 1000", env)
		}
		keys = v
	}
	ctx := context.Background()
	val := func(i int) string { return fmt.Sprintf("val-%08d-%08x", i, i*2654435761) }

	dirInc := t.TempDir()
	dirFull := t.TempDir()
	inc, _ := newDurableCfg(t, Durability{Dir: dirInc, Fsync: wal.ModeOff, CheckpointEvery: -1})
	full, _ := newDurableCfg(t, Durability{Dir: dirFull, Fsync: wal.ModeOff, CheckpointEvery: -1,
		MaxChain: -1})
	// Identical workload on both stores: fill, base checkpoint, 1%
	// churn, second checkpoint (delta vs forced-full), then a tail of
	// un-checkpointed writes.
	for _, st := range []*Store{inc, full} {
		fillKeys(t, st, keys, val)
		if err := st.Checkpoint(ctx); err != nil {
			t.Fatalf("base checkpoint: %v", err)
		}
	}
	if kind := inc.WAL().LastCheckpointKind(); kind != wal.CkptFull {
		t.Fatalf("first checkpoint kind = %v, want full", kind)
	}
	for _, st := range []*Store{inc, full} {
		churnKeys(t, st, keys, 1, "churn")
		if err := st.Checkpoint(ctx); err != nil {
			t.Fatalf("churn checkpoint: %v", err)
		}
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
			Key: []byte("tail-key"), Val: []byte("tail-val")})
	}

	// Churn bound: the second checkpoint on the incremental store must
	// be a delta costing <= 5% of the base it chains from.
	chain := inc.WAL().Chain()
	if kind := inc.WAL().LastCheckpointKind(); kind != wal.CkptDelta {
		t.Fatalf("churn checkpoint kind = %v, want delta (chain %+v)", kind, chain)
	}
	if chain.Len() != 1 || chain.BaseSeg == 0 {
		t.Fatalf("chain after churn checkpoint = %+v, want base + 1 delta", chain)
	}
	if db, bb := chain.DeltaBytes(), chain.BaseBytes; db*20 > bb {
		t.Fatalf("delta checkpoint = %d bytes, > 5%% of %d-byte base", db, bb)
	} else {
		t.Logf("%d keys, 1%% churn: base %d bytes, delta %d bytes (%.2f%%)",
			keys, bb, db, 100*float64(db)/float64(bb))
	}
	if kind := full.WAL().LastCheckpointKind(); kind != wal.CkptFull {
		t.Fatalf("MaxChain -1 store wrote a %v checkpoint", kind)
	}

	// Byte-identical recovery: reopen both directories and compare the
	// full contents. The incremental side must really travel the
	// base + delta + tail path.
	want := scanAll(t, inc)
	inc.CloseDurability()
	full.CloseDurability()
	inc2, resInc := newDurableCfg(t, Durability{Dir: dirInc, Fsync: wal.ModeOff, CheckpointEvery: -1})
	full2, _ := newDurableCfg(t, Durability{Dir: dirFull, Fsync: wal.ModeOff, CheckpointEvery: -1})
	defer inc2.CloseDurability()
	defer full2.CloseDurability()
	if resInc.DeltasLoaded != 1 {
		t.Fatalf("incremental recovery loaded %d deltas, want 1 (%s)", resInc.DeltasLoaded, resInc)
	}
	gotInc, gotFull := scanAll(t, inc2), scanAll(t, full2)
	if len(gotInc) != len(want) || len(gotFull) != len(want) {
		t.Fatalf("recovered sizes: inc %d, full %d, want %d", len(gotInc), len(gotFull), len(want))
	}
	for k, v := range want {
		if gotInc[k] != v {
			t.Fatalf("incremental recovery: %s = %q, want %q", k, gotInc[k], v)
		}
		if gotFull[k] != v {
			t.Fatalf("full recovery: %s = %q, want %q", k, gotFull[k], v)
		}
	}
}

// TestCheckpointChainCompaction: the chain-length bound folds the
// chain back into a full base once MaxChain deltas accumulate, and the
// compaction removes every delta file.
func TestCheckpointChainCompaction(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, _ := newDurableCfg(t, Durability{Dir: dir, Fsync: wal.ModeOff, CheckpointEvery: -1,
		MaxChain: 2, CompactRatio: 1e9})
	defer st.CloseDurability()

	fillKeys(t, st, 50, func(i int) string { return "v0" })
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	for round := 1; round <= 2; round++ {
		churnKeys(t, st, 50, 10, "r"+strconv.Itoa(round))
		if err := st.Checkpoint(ctx); err != nil {
			t.Fatal(err)
		}
		if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptDelta {
			t.Fatalf("round %d kind = %v, want delta", round, kind)
		}
		if chain := st.WAL().Chain(); chain.Len() != round {
			t.Fatalf("round %d chain len = %d, want %d", round, chain.Len(), round)
		}
	}
	// Chain is at MaxChain: the next checkpoint must compact to a full
	// base even though more churn arrived.
	churnKeys(t, st, 50, 10, "r3")
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptFull {
		t.Fatalf("compaction kind = %v, want full", kind)
	}
	if chain := st.WAL().Chain(); chain.Len() != 0 {
		t.Fatalf("chain after compaction = %+v, want empty", chain)
	}
	if left, err := filepath.Glob(filepath.Join(dir, "delta-*.ckpt")); err != nil || len(left) != 0 {
		t.Fatalf("delta files after compaction: %v (err %v)", left, err)
	}
}

// TestCheckpointRatioCompaction: the byte-ratio bound compacts as soon
// as accumulated delta bytes cross CompactRatio x base bytes.
func TestCheckpointRatioCompaction(t *testing.T) {
	ctx := context.Background()
	st, _ := newDurableCfg(t, Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1,
		MaxChain: 100, CompactRatio: 1e-12})
	defer st.CloseDurability()

	fillKeys(t, st, 50, func(i int) string { return "v0" })
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	// First post-base checkpoint: zero accumulated delta bytes, so even
	// a microscopic ratio admits one delta.
	churnKeys(t, st, 50, 10, "r1")
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptDelta {
		t.Fatalf("first churn kind = %v, want delta", kind)
	}
	// Second: the chain now carries bytes >= ratio x base, so compact.
	churnKeys(t, st, 50, 10, "r2")
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptFull {
		t.Fatalf("ratio-bound kind = %v, want full", kind)
	}
}

// TestCheckpointIdleSkip: a checkpoint pass over an unchanged store
// writes nothing — unless a chain is standing, in which case one final
// compaction folds it down and THEN the store goes quiet.
func TestCheckpointIdleSkip(t *testing.T) {
	ctx := context.Background()
	st, _ := newDurableCfg(t, Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1})
	defer st.CloseDurability()

	fillKeys(t, st, 20, func(i int) string { return "v0" })
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	_, _, _, ckptsAfterBase := st.WAL().Stats()
	segAfterBase := st.WAL().Segment()

	// Nothing dirty, no chain: the pass is a no-op.
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, _, n := st.WAL().Stats(); n != ckptsAfterBase {
		t.Fatalf("idle checkpoint ran: %d -> %d", ckptsAfterBase, n)
	}
	if seg := st.WAL().Segment(); seg != segAfterBase {
		t.Fatalf("idle checkpoint rotated: seg %d -> %d", segAfterBase, seg)
	}

	// Leave a chain standing, then go idle: the next pass compacts the
	// chain into a base (restart cost folds to one file), and only the
	// pass after that is the true no-op.
	churnKeys(t, st, 20, 10, "r1")
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptDelta {
		t.Fatalf("churn kind = %v, want delta", kind)
	}
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptFull {
		t.Fatalf("idle-with-chain kind = %v, want full compaction", kind)
	}
	if chain := st.WAL().Chain(); chain.Len() != 0 {
		t.Fatalf("chain after idle compaction = %+v", chain)
	}
	_, _, _, ckptsQuiet := st.WAL().Stats()
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, _, n := st.WAL().Stats(); n != ckptsQuiet {
		t.Fatalf("post-compaction idle checkpoint ran")
	}
}

// TestFlushForcesFullCheckpoint: FLUSH empties whole shards without
// naming keys, so it cannot ride a delta — the next checkpoint must be
// a full base, and until it lands the delta catch-up path must refuse.
func TestFlushForcesFullCheckpoint(t *testing.T) {
	ctx := context.Background()
	st, _ := newDurableCfg(t, Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1})
	defer st.CloseDurability()

	fillKeys(t, st, 20, func(i int) string { return "v0" })
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	applied := st.WAL().Chain().BaseCover

	execOK(t, st, &wire.Request{Op: wire.OpFlush, Sem: wire.SemDefault})
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("post-flush"), Val: []byte("1")})

	// Delta catch-up cannot express "the shard was emptied": refuse.
	ok, err := st.DeltaShard(ctx, 0, applied, func(k, v string, del bool) error { return nil })
	if err != nil || ok {
		t.Fatalf("DeltaShard with flush pending = %v, %v, want false, nil", ok, err)
	}

	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if kind := st.WAL().LastCheckpointKind(); kind != wal.CkptFull {
		t.Fatalf("post-flush kind = %v, want full", kind)
	}
	st.CloseDurability()

	st2, _ := newDurableCfg(t, Durability{Dir: st.tab().shards[0].wal.Dir(), Fsync: wal.ModeOff, CheckpointEvery: -1})
	defer st2.CloseDurability()
	if got := scanAll(t, st2); len(got) != 1 || got["post-flush"] != "1" {
		t.Fatalf("recovered after flush = %v, want only post-flush", got)
	}
}

// TestCheckpointChainStats: the chain gauges are visible through the
// wire STATS op and track the chain through delta and compaction.
func TestCheckpointChainStats(t *testing.T) {
	ctx := context.Background()
	st, _ := newDurableCfg(t, Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1})
	defer st.CloseDurability()

	stats := func() map[string]uint64 {
		resp := execOK(t, st, &wire.Request{Op: wire.OpStats, Sem: wire.SemDefault})
		out := map[string]uint64{}
		for _, c := range resp.Counters {
			out[c.Name] = c.Value
		}
		return out
	}

	got := stats()
	if got["ckpt_last_kind"] != uint64(wal.CkptNone) || got["ckpt_base_bytes"] != 0 {
		t.Fatalf("fresh store chain stats: %v", got)
	}

	fillKeys(t, st, 30, func(i int) string { return "v0" })
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	got = stats()
	if got["ckpt_last_kind"] != uint64(wal.CkptFull) || got["ckpt_base_bytes"] == 0 ||
		got["ckpt_chain_len"] != 0 || got["ckpt_delta_bytes"] != 0 {
		t.Fatalf("after base: %v", got)
	}

	churnKeys(t, st, 30, 10, "r1")
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	got = stats()
	if got["ckpt_last_kind"] != uint64(wal.CkptDelta) || got["ckpt_chain_len"] != 1 ||
		got["ckpt_delta_bytes"] == 0 {
		t.Fatalf("after delta: %v", got)
	}
	if got["ckpt_delta_bytes"] >= got["ckpt_base_bytes"] {
		t.Fatalf("delta bytes %d not churn-bounded vs base %d",
			got["ckpt_delta_bytes"], got["ckpt_base_bytes"])
	}
}

// TestDeltaShardGating walks every refusal edge of the delta catch-up
// contract, then the success path's exact emitted set.
func TestDeltaShardGating(t *testing.T) {
	ctx := context.Background()
	sink := func(k, v string, del bool) error { return nil }

	// A non-durable store has no chain and no incarnation: refuse.
	plain := NewStore(core.NewDefault())
	if ok, err := plain.DeltaShard(ctx, 0, 99, sink); ok || err != nil {
		t.Fatalf("non-durable DeltaShard = %v, %v", ok, err)
	}
	if plain.Incarnation() != 0 {
		t.Fatalf("non-durable incarnation = %d, want 0", plain.Incarnation())
	}

	st, _ := newDurableCfg(t, Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1})
	defer st.CloseDurability()
	if st.Incarnation() == 0 {
		t.Fatal("durable store must mint a nonzero incarnation")
	}
	if ok, err := st.DeltaShard(ctx, -1, 0, sink); ok || err == nil {
		t.Fatalf("out-of-range shard = %v, %v, want error", ok, err)
	}

	// No base checkpoint yet: refuse.
	fillKeys(t, st, 20, func(i int) string { return "v0" })
	if ok, err := st.DeltaShard(ctx, 0, 999, sink); ok || err != nil {
		t.Fatalf("no-base DeltaShard = %v, %v", ok, err)
	}
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	base := st.WAL().Chain().BaseCover
	if base == 0 {
		t.Fatal("base cover = 0 after a live checkpoint")
	}

	// A follower whose applied position predates the base may have
	// changes buried in the base itself: refuse.
	if ok, err := st.DeltaShard(ctx, 0, base-1, sink); ok || err != nil {
		t.Fatalf("stale-applied DeltaShard = %v, %v", ok, err)
	}

	// Caught-up follower + live churn: the delta set is exactly the
	// dirty keys at their current values, deletes as tombstones.
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte(ckptKeyN(0)), Val: []byte("rewritten")})
	execOK(t, st, &wire.Request{Op: wire.OpDel, Sem: wire.SemDefault,
		Key: []byte(ckptKeyN(1))})
	type ent struct {
		v   string
		del bool
	}
	got := map[string]ent{}
	ok, err := st.DeltaShard(ctx, 0, base, func(k, v string, del bool) error {
		got[k] = ent{v, del}
		return nil
	})
	if !ok || err != nil {
		t.Fatalf("caught-up DeltaShard = %v, %v", ok, err)
	}
	want := map[string]ent{
		ckptKeyN(0): {"rewritten", false},
		ckptKeyN(1): {"", true},
	}
	if len(got) != len(want) {
		t.Fatalf("delta set = %v, want %v", got, want)
	}
	for k, e := range want {
		if got[k] != e {
			t.Fatalf("delta[%s] = %+v, want %+v", k, got[k], e)
		}
	}

	// Emit errors surface to the caller (the feed must fail, not fall
	// back, when the connection itself is the problem).
	bang := fmt.Errorf("conn reset")
	if ok, err := st.DeltaShard(ctx, 0, base, func(k, v string, del bool) error { return bang }); ok || err != bang {
		t.Fatalf("emit-error DeltaShard = %v, %v, want false, %v", ok, err, bang)
	}
}
