package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polytm/internal/wal"
	"polytm/internal/wire"
)

// statsMap fetches the STATS counters as a map.
func statsMap(t *testing.T, st *Store) map[string]uint64 {
	t.Helper()
	resp := execOK(t, st, &wire.Request{Op: wire.OpStats, Sem: wire.SemDefault})
	m := make(map[string]uint64, len(resp.Counters))
	for _, c := range resp.Counters {
		m[c.Name] = c.Value
	}
	return m
}

// TestSplitMovesKeys: a SPLIT doubles the table, keeps every key at its
// pre-split value, routes each key to the slice that owns its hash, and
// leaves the store fully writable.
func TestSplitMovesKeys(t *testing.T) {
	ctx := context.Background()
	st := newSharded(2)
	const n = 512
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	epoch, err := st.Split(ctx, 0, 0)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	if epoch != 1 || st.RoutingEpoch() != 1 {
		t.Fatalf("epoch = %d / %d, want 1", epoch, st.RoutingEpoch())
	}
	if st.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", st.NumShards())
	}
	got := scanAll(t, st)
	if len(got) != n {
		t.Fatalf("post-split scan found %d keys, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[string(tkey(i))] != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q", i, got[string(tkey(i))])
		}
	}
	// Every key's owning table position actually owns its hash.
	tab := st.tab()
	for i := 0; i < n; i++ {
		h := hashKey(tkey(i))
		sl := tab.slices[tab.pos(h)]
		if h%sl.mod != sl.res {
			t.Fatalf("key %d routed to a slice that does not own it", i)
		}
	}
	// Point reads and writes still work for moved and unmoved keys.
	for i := 0; i < n; i += 7 {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("post")})
		r := execOK(t, st, &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: tkey(i)})
		if string(r.Val) != "post" {
			t.Fatalf("post-split rewrite of key %d read %q", i, r.Val)
		}
	}
	sm := statsMap(t, st)
	if sm["routing_epoch"] != 1 || sm["reshard_splits"] != 1 {
		t.Fatalf("stats: routing_epoch=%d reshard_splits=%d", sm["routing_epoch"], sm["reshard_splits"])
	}
}

// TestSplitWrongEpoch: a stale epoch is rejected with the typed error,
// both at the Store API and through the wire dispatch.
func TestSplitWrongEpoch(t *testing.T) {
	st := newSharded(2)
	_, err := st.Split(context.Background(), 7, 0)
	var we *wire.WrongEpochError
	if !errors.As(err, &we) || we.Have != 7 || we.Want != 0 {
		t.Fatalf("Split with stale epoch: %v", err)
	}
	resp := st.Execute(&wire.Request{Op: wire.OpSplit, Sem: wire.SemDefault, Epoch: 7, Shard: 0})
	if resp.Status != wire.StatusErr || !errors.Is(resp.Err(), wire.ErrWrongEpoch) {
		t.Fatalf("wire SPLIT with stale epoch: status=%v err=%v", resp.Status, resp.Err())
	}
	if !errors.As(resp.Err(), &we) || we.Want != 0 {
		t.Fatalf("wire error lost the typed payload: %v", resp.Err())
	}
	// Unknown shard id and over-split guards surface as plain errors.
	if _, err := st.Split(context.Background(), 0, 99); err == nil {
		t.Fatal("SPLIT of unknown shard accepted")
	}
}

// TestMergeRoundTrip: split, then merge the buddies back — twice, down
// to a single shard — with the keyspace intact throughout.
func TestMergeRoundTrip(t *testing.T) {
	ctx := context.Background()
	st := newSharded(2)
	const n = 384
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if _, err := st.Split(ctx, 0, 0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	// id 0 now owns (4,0); the new shard id 2 owns (4,2) — buddies.
	epoch, err := st.Merge(ctx, 1, 0, 2)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if epoch != 2 || st.NumShards() != 2 {
		t.Fatalf("after merge: epoch=%d shards=%d", epoch, st.NumShards())
	}
	// (2,0) and (2,1) are buddies too: fold to a single shard.
	if _, err := st.Merge(ctx, 2, 0, 1); err != nil {
		t.Fatalf("Merge to one: %v", err)
	}
	if st.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", st.NumShards())
	}
	got := scanAll(t, st)
	if len(got) != n {
		t.Fatalf("found %d keys, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[string(tkey(i))] != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d: %q", i, got[string(tkey(i))])
		}
	}
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("post-merge"), Val: []byte("ok")})
	sm := statsMap(t, st)
	if sm["reshard_merges"] != 2 || sm["routing_epoch"] != 3 {
		t.Fatalf("stats: %v", sm)
	}
	// Merging the last shard with itself (or a ghost) is rejected.
	if _, err := st.Merge(ctx, 3, 0, 0); err == nil {
		t.Fatal("self-merge accepted")
	}
}

// TestReshardUnderLiveLoad is the online-cutover contract: SPLITs and
// MERGEs run while writers hammer the store, no request may fail, and
// every acknowledged write must read back at its acknowledged value.
func TestReshardUnderLiveLoad(t *testing.T) {
	ctx := context.Background()
	st := newSharded(2)
	const workers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var failures atomic.Uint64
	last := make([]map[string]string, workers) // per-worker acknowledged values
	for g := 0; g < workers; g++ {
		last[g] = make(map[string]string)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seq := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("live-%d-%04d", g, seq%97)
				v := fmt.Sprintf("%d", seq)
				resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte(k), Val: []byte(v)})
				if resp.Status == wire.StatusErr {
					failures.Add(1)
					t.Errorf("SET failed mid-reshard: %s", resp.Msg)
					return
				}
				last[g][k] = v
				if r := st.Execute(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte(k)}); r.Status == wire.StatusErr {
					failures.Add(1)
					t.Errorf("GET failed mid-reshard: %s", r.Msg)
					return
				}
				seq++
			}
		}(g)
	}
	// A full reshard cycle under load: split both initial shards, then
	// merge everything back.
	time.Sleep(20 * time.Millisecond)
	epoch := uint64(0)
	for _, id := range []int{0, 1} {
		e, err := st.Split(ctx, epoch, id)
		if err != nil {
			t.Fatalf("Split %d under load: %v", id, err)
		}
		epoch = e
		time.Sleep(20 * time.Millisecond)
	}
	// After splitting ids 0 and 1 of a 2-shard store: id0 (4,0),
	// id2 (4,2) and id1 (4,1), id3 (4,3) are the buddy pairs.
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		e, err := st.Merge(ctx, epoch, pair[0], pair[1])
		if err != nil {
			t.Fatalf("Merge %v under load: %v", pair, err)
		}
		epoch = e
		time.Sleep(20 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed across the reshard cycle", n)
	}
	if st.NumShards() != 2 || st.RoutingEpoch() != 4 {
		t.Fatalf("end state: shards=%d epoch=%d", st.NumShards(), st.RoutingEpoch())
	}
	// Every acknowledged write reads back at its final value.
	got := scanAll(t, st)
	for g := 0; g < workers; g++ {
		for k, v := range last[g] {
			if got[k] != v {
				t.Fatalf("acknowledged %s=%q reads back %q", k, v, got[k])
			}
		}
	}
}

// TestSplitPreservesTTL: deadlines armed before a split survive the
// move — every short-lived key physically expires afterwards.
func TestSplitPreservesTTL(t *testing.T) {
	ctx := context.Background()
	st := newSharded(2)
	const n = 128
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSetEx, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("x"), TTLMillis: 40})
	}
	if _, err := st.Split(ctx, 0, 0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	total := 0
	for i := 0; i < 20; i++ {
		r, err := st.ReapExpired(ctx)
		if err != nil {
			t.Fatalf("ReapExpired: %v", err)
		}
		total += r
		if r == 0 {
			break
		}
	}
	if total != n {
		t.Fatalf("reaped %d of %d keys after a split — deadlines lost in the move", total, n)
	}
}

// TestDurableSplitReopen: a durable split survives close + reopen —
// the MANIFEST pins the grown table and recovery adopts it.
func TestDurableSplitReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, _ := newShardedDurable(t, dir, 2, wal.ModeOff)
	const n = 256
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if _, err := st.Split(ctx, 0, 0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	// Writes AFTER the split land in the new layout's logs.
	for i := 0; i < n; i += 3 {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("post")})
	}
	if err := st.CloseDurability(); err != nil {
		t.Fatalf("CloseDurability: %v", err)
	}

	pinned, err := WALShardCount(dir)
	if err != nil {
		t.Fatalf("WALShardCount: %v", err)
	}
	if pinned != 3 {
		t.Fatalf("pinned shard count = %d, want 3", pinned)
	}
	st2, _ := newShardedDurable(t, dir, 3, wal.ModeOff)
	defer st2.CloseDurability()
	if st2.RoutingEpoch() != 1 {
		t.Fatalf("reopened epoch = %d, want 1", st2.RoutingEpoch())
	}
	got := scanAll(t, st2)
	if len(got) != n {
		t.Fatalf("reopened store has %d keys, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("v%d", i)
		if i%3 == 0 {
			want = "post"
		}
		if got[string(tkey(i))] != want {
			t.Fatalf("key %d: %q, want %q", i, got[string(tkey(i))], want)
		}
	}
}

// TestDurableMergeReopen: a durable split + merge-back survives reopen
// at the original shard count, and the absorbed shard's directory is
// gone.
func TestDurableMergeReopen(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, _ := newShardedDurable(t, dir, 2, wal.ModeOff)
	const n = 256
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	if _, err := st.Split(ctx, 0, 0); err != nil {
		t.Fatalf("Split: %v", err)
	}
	if !fileExists(filepath.Join(dir, "shard-0002")) {
		t.Fatal("split did not create the new shard's directory")
	}
	if _, err := st.Merge(ctx, 1, 0, 2); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if fileExists(filepath.Join(dir, "shard-0002")) {
		t.Fatal("absorbed shard's directory survived the merge")
	}
	if err := st.CloseDurability(); err != nil {
		t.Fatalf("CloseDurability: %v", err)
	}
	pinned, err := WALShardCount(dir)
	if err != nil {
		t.Fatalf("WALShardCount: %v", err)
	}
	if pinned != 2 {
		t.Fatalf("pinned shard count = %d, want 2", pinned)
	}
	st2, _ := newShardedDurable(t, dir, 2, wal.ModeOff)
	defer st2.CloseDurability()
	if st2.RoutingEpoch() != 2 {
		t.Fatalf("reopened epoch = %d, want 2", st2.RoutingEpoch())
	}
	if got := scanAll(t, st2); len(got) != n {
		t.Fatalf("reopened store has %d keys, want %d", len(got), n)
	}
}

// TestAdoptRouting: the follower-side reshape — survivors keep their
// contents, new ids appear empty, dropped ids disappear, and a
// regressing epoch is refused.
func TestAdoptRouting(t *testing.T) {
	st := newSharded(2)
	for i := 0; i < 64; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("v")})
	}
	grown := []wire.ReplShardSlice{{ID: 0, Mod: 4, Res: 0}, {ID: 1, Mod: 2, Res: 1}, {ID: 2, Mod: 4, Res: 2}}
	if err := st.AdoptRouting(1, grown); err != nil {
		t.Fatalf("AdoptRouting: %v", err)
	}
	if st.NumShards() != 3 || st.RoutingEpoch() != 1 {
		t.Fatalf("after adopt: shards=%d epoch=%d", st.NumShards(), st.RoutingEpoch())
	}
	if err := st.AdoptRouting(1, grown); err != nil {
		t.Fatalf("same-epoch adopt must be a no-op: %v", err)
	}
	if err := st.AdoptRouting(0, grown[:2]); err == nil {
		t.Fatal("regressing epoch accepted")
	}
	if err := st.AdoptRouting(2, []wire.ReplShardSlice{{ID: 2, Mod: 4, Res: 2}, {ID: 0, Mod: 4, Res: 0}, {ID: 1, Mod: 2, Res: 1}}); err == nil {
		t.Fatal("out-of-residue-order topology accepted")
	}
	// Shrink back: id 2 is dropped.
	if err := st.AdoptRouting(2, []wire.ReplShardSlice{{ID: 0, Mod: 2, Res: 0}, {ID: 1, Mod: 2, Res: 1}}); err != nil {
		t.Fatalf("shrinking adopt: %v", err)
	}
	if st.NumShards() != 2 || st.tab().byID(2) != nil {
		t.Fatalf("dropped shard still present")
	}
}

// TestManifestCorruption (satellite): every torn or malformed MANIFEST
// shape must either recover to a correct table or fail loudly — never
// silently open the wrong shard count.
func TestManifestCorruption(t *testing.T) {
	write := func(t *testing.T, dir, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Build one real post-split directory to corrupt per case.
	mkSplitDir := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		st, _ := newShardedDurable(t, dir, 2, wal.ModeOff)
		for i := 0; i < 32; i++ {
			execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("v")})
		}
		if _, err := st.Split(context.Background(), 0, 0); err != nil {
			t.Fatalf("Split: %v", err)
		}
		if err := st.CloseDurability(); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("truncated", func(t *testing.T) {
		dir := mkSplitDir(t)
		write(t, dir, "polyserve-wal v2 epoch=1 next=3 shards=3\nshard 0 mod=4 res=0 dir=shard-0000\n")
		st := newSharded(3)
		if _, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeOff, CheckpointEvery: -1}); err == nil {
			st.CloseDurability()
			t.Fatal("truncated MANIFEST opened silently")
		}
	})
	t.Run("bad-epoch", func(t *testing.T) {
		dir := mkSplitDir(t)
		write(t, dir, "polyserve-wal v2 epoch=zebra next=3 shards=3\n")
		st := newSharded(3)
		if _, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeOff, CheckpointEvery: -1}); err == nil {
			st.CloseDurability()
			t.Fatal("garbage epoch opened silently")
		}
	})
	t.Run("empty", func(t *testing.T) {
		dir := mkSplitDir(t)
		write(t, dir, "")
		st := newSharded(3)
		if _, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeOff, CheckpointEvery: -1}); err == nil {
			st.CloseDurability()
			t.Fatal("empty MANIFEST opened silently")
		}
	})
	t.Run("invalid-slice", func(t *testing.T) {
		dir := mkSplitDir(t)
		write(t, dir, "polyserve-wal v2 epoch=1 next=3 shards=2\nshard 0 mod=4 res=0 dir=shard-0000\nshard 1 mod=2 res=7 dir=shard-0001\n")
		st := newSharded(2)
		if _, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeOff, CheckpointEvery: -1}); err == nil {
			st.CloseDurability()
			t.Fatal("res >= mod opened silently")
		}
	})
	t.Run("stale-tmp", func(t *testing.T) {
		// A crash between writing MANIFEST.tmp and the rename leaves the
		// orphan next to a VALID manifest: recovery sweeps it and opens
		// the real table.
		dir := mkSplitDir(t)
		tmp := filepath.Join(dir, manifestName+".tmp")
		if err := os.WriteFile(tmp, []byte("polyserve-wal v2 epoch=9 next=9 shards=1\nshard 0 mod=1 res=0 dir=.\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		st, _ := newShardedDurable(t, dir, 3, wal.ModeOff)
		defer st.CloseDurability()
		if st.RoutingEpoch() != 1 || st.NumShards() != 3 {
			t.Fatalf("stale .tmp leaked into the table: epoch=%d shards=%d", st.RoutingEpoch(), st.NumShards())
		}
		if fileExists(tmp) {
			t.Fatal("stale MANIFEST.tmp survived recovery")
		}
		if got := scanAll(t, st); len(got) != 32 {
			t.Fatalf("recovered %d keys, want 32", len(got))
		}
	})
	t.Run("v1-compat", func(t *testing.T) {
		// A never-resharded directory keeps the v1 format; reopening it
		// must imply the legacy table (epoch 0, uniform slices).
		dir := t.TempDir()
		st, _ := newShardedDurable(t, dir, 2, wal.ModeOff)
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("k"), Val: []byte("v")})
		if err := st.CloseDurability(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != "polyserve-wal shards=2\n" {
			t.Fatalf("legacy-shaped store wrote %q", raw)
		}
		st2, _ := newShardedDurable(t, dir, 2, wal.ModeOff)
		defer st2.CloseDurability()
		if st2.RoutingEpoch() != 0 {
			t.Fatalf("v1 manifest implied epoch %d", st2.RoutingEpoch())
		}
		if got := scanAll(t, st2); got["k"] != "v" {
			t.Fatalf("v1 reopen lost data: %v", got)
		}
	})
	t.Run("shard-count-mismatch", func(t *testing.T) {
		// Opening a 3-shard directory with a 2-shard store must refuse,
		// not scatter keys across a wrong table.
		dir := mkSplitDir(t)
		st := newSharded(2)
		if _, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeOff, CheckpointEvery: -1}); err == nil {
			st.CloseDurability()
			t.Fatal("shard-count mismatch opened silently")
		}
	})
}
