package server

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"polytm/internal/wal"
	"polytm/internal/wire"
)

// Repro: crash the instant a MERGE's RESHARD COMMIT is durable (before
// the manifest rewrite), then recover. Mirrors TestReshardCrashRecovery
// but for the merge commit window.

const mergeCrashDirEnv = "POLYSERVE_MERGE_CRASH_DIR"

func mergeCrashChild(dir string) {
	var armed atomic.Bool
	st := newSharded(2)
	_, err := st.EnableDurability(Durability{
		Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1,
		onDurableRecord: func(first byte) {
			if armed.Load() && first == 0x14 { // RESHARD COMMIT
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
				select {}
			}
		},
	})
	if err != nil {
		fmt.Printf("CHILD-ERR enable durability: %v\n", err)
		os.Exit(1)
	}
	for i := 0; i < 64; i++ {
		resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
		if resp.Status != wire.StatusOK {
			fmt.Printf("CHILD-ERR seed %d: %s\n", i, resp.Msg)
			os.Exit(1)
		}
	}
	if _, err := st.Split(context.Background(), 0, 0); err != nil {
		fmt.Printf("CHILD-ERR split: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("SPLITDONE")
	armed.Store(true)
	st.Merge(context.Background(), 1, 0, 2)
	fmt.Println("CHILD-ERR survived the kill window")
	os.Exit(1)
}

func TestMergeCommitCrashRecoveryRepro(t *testing.T) {
	if dir := os.Getenv(mergeCrashDirEnv); dir != "" {
		mergeCrashChild(dir) // never returns
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestMergeCommitCrashRecoveryRepro$", "-test.v")
	cmd.Env = append(os.Environ(), mergeCrashDirEnv+"="+dir)
	timer := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	out, _ := cmd.CombinedOutput()
	timer.Stop()
	if s := string(out); strings.Contains(s, "CHILD-ERR") || !strings.Contains(s, "SPLITDONE") {
		t.Fatalf("crash child:\n%s", s)
	}

	// Manifest still says 3 shards (the crash beat the rewrite).
	pinned, err := WALShardCount(dir)
	if err != nil {
		t.Fatalf("WALShardCount: %v", err)
	}
	t.Logf("pinned shards after crash: %d", pinned)
	st := newSharded(pinned)
	res, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.CloseDurability()
	t.Logf("recovery: %s, shards=%d epoch=%d", res, st.NumShards(), st.RoutingEpoch())

	got := scanAll(t, st)
	if len(got) != 64 {
		t.Fatalf("recovered %d keys, want 64", len(got))
	}
}
