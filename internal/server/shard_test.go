package server

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"polytm/internal/core"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// rmManifest strips a directory's MANIFEST, recreating the layout
// earlier releases wrote.
func rmManifest(t *testing.T, dir string) {
	t.Helper()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
}

// newSharded builds an n-shard in-memory store.
func newSharded(n int) *Store {
	tms := make([]*core.TM, n)
	for i := range tms {
		tms[i] = core.NewDefault()
	}
	return NewShardedStore(tms)
}

// newShardedDurable builds an n-shard durable store on dir.
func newShardedDurable(t *testing.T, dir string, n int, mode wal.Mode) (*Store, *RecoverSummary) {
	t.Helper()
	st := newSharded(n)
	res, err := st.EnableDurability(Durability{Dir: dir, Fsync: mode, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return st, res
}

// key returns a test key; the i-space spreads over all shards.
func tkey(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }

// TestShardRoutingDeterministic: the same key always lands on the same
// shard, and a realistic key population touches every shard.
func TestShardRoutingDeterministic(t *testing.T) {
	st := newSharded(4)
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		a := st.shardIdx(tkey(i))
		b := st.shardIdx(tkey(i))
		if a != b {
			t.Fatalf("key %d routed to %d then %d", i, a, b)
		}
		if a < 0 || a >= 4 {
			t.Fatalf("key %d routed out of range: %d", i, a)
		}
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 keys hit only shards %v", seen)
	}
}

// TestShardedBasicOps: point ops, MGET and SCAN behave identically to
// a single-shard store, including cross-shard merge order and limits.
func TestShardedBasicOps(t *testing.T) {
	st := newSharded(4)
	const n = 100
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
	}
	// Point reads route back to the writer's shard.
	for i := 0; i < n; i++ {
		resp := execOK(t, st, &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: tkey(i)})
		if resp.Status != wire.StatusOK || string(resp.Val) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d: %v %q", i, resp.Status, resp.Val)
		}
	}
	// MGET fans out and keeps slot order, hits and misses interleaved.
	keys := [][]byte{tkey(3), []byte("missing"), tkey(97), tkey(41)}
	resp := execOK(t, st, &wire.Request{Op: wire.OpMGet, Sem: wire.SemDefault, Keys: keys})
	if len(resp.Batch) != 4 {
		t.Fatalf("mget batch = %d", len(resp.Batch))
	}
	if string(resp.Batch[0].Val) != "v3" || resp.Batch[1].Status != wire.StatusNotFound ||
		string(resp.Batch[2].Val) != "v97" || string(resp.Batch[3].Val) != "v41" {
		t.Fatalf("mget = %+v", resp.Batch)
	}
	// SCAN merges the per-shard slices back into global key order.
	resp = execOK(t, st, &wire.Request{Op: wire.OpScan, Sem: wire.SemDefault})
	if len(resp.Pairs) != n {
		t.Fatalf("scan returned %d pairs, want %d", len(resp.Pairs), n)
	}
	for i := 1; i < len(resp.Pairs); i++ {
		if string(resp.Pairs[i-1].Key) >= string(resp.Pairs[i].Key) {
			t.Fatalf("scan out of order at %d: %q >= %q", i, resp.Pairs[i-1].Key, resp.Pairs[i].Key)
		}
	}
	// Bounded scan honours the limit across shards.
	resp = execOK(t, st, &wire.Request{Op: wire.OpScan, Sem: wire.SemDefault, Limit: 7})
	if len(resp.Pairs) != 7 || string(resp.Pairs[0].Key) != "key-0000" {
		t.Fatalf("limited scan = %d pairs, first %q", len(resp.Pairs), resp.Pairs[0].Key)
	}
	// DEL routes too.
	execOK(t, st, &wire.Request{Op: wire.OpDel, Sem: wire.SemDefault, Key: tkey(0)})
	resp = execOK(t, st, &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: tkey(0)})
	if resp.Status != wire.StatusNotFound {
		t.Fatalf("deleted key still %v", resp.Status)
	}
}

// TestCrossShardTxn: a TXN spanning shards is all-or-nothing and its
// sub-responses land in order; FLUSH clears every shard atomically.
func TestCrossShardTxn(t *testing.T) {
	st := newSharded(4)
	// Find two keys on different shards.
	a, b := tkey(0), []byte(nil)
	for i := 1; b == nil; i++ {
		if st.shardIdx(tkey(i)) != st.shardIdx(a) {
			b = tkey(i)
		}
	}
	resp := execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: a, Val: []byte("va")},
		{Op: wire.OpSet, Key: b, Val: []byte("vb")},
		{Op: wire.OpGet, Key: a},
	}})
	if len(resp.Batch) != 3 || string(resp.Batch[2].Val) != "va" {
		t.Fatalf("txn batch = %+v", resp.Batch)
	}
	if got := scanAll(t, st); len(got) != 2 || got[string(a)] != "va" || got[string(b)] != "vb" {
		t.Fatalf("state = %v", got)
	}
	if st.xshardTxns.Load() == 0 {
		t.Fatal("cross-shard txn did not use the cross-shard path")
	}
	// Cross-shard CAS inside a TXN: the mismatch arm reports per-slot.
	resp = execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpCAS, Key: a, Old: []byte("wrong"), Val: []byte("x")},
		{Op: wire.OpCAS, Key: b, Old: []byte("vb"), Val: []byte("vb2")},
	}})
	if resp.Batch[0].Status != wire.StatusCASMismatch || resp.Batch[1].Status != wire.StatusOK {
		t.Fatalf("cas txn = %+v", resp.Batch)
	}
	// FLUSH crosses all shards and sums the evictions.
	resp = execOK(t, st, &wire.Request{Op: wire.OpFlush, Sem: wire.SemDefault})
	if resp.N != 2 {
		t.Fatalf("flush N = %d, want 2", resp.N)
	}
	if got := scanAll(t, st); len(got) != 0 {
		t.Fatalf("state after flush = %v", got)
	}
}

// TestCrossShardTxnConcurrent: many goroutines hammer cross-shard
// TXNs over a shared key pair; the two keys move in lockstep, so any
// torn commit shows up as a mismatched pair. Run with -race in CI.
func TestCrossShardTxnConcurrent(t *testing.T) {
	st := newSharded(4)
	a, b := tkey(0), []byte(nil)
	for i := 1; b == nil; i++ {
		if st.shardIdx(tkey(i)) != st.shardIdx(a) {
			b = tkey(i)
		}
	}
	execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: a, Val: []byte("0")},
		{Op: wire.OpSet, Key: b, Val: []byte("0")},
	}})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := []byte(fmt.Sprintf("%d-%d", w, i))
				execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
					{Op: wire.OpSet, Key: a, Val: v},
					{Op: wire.OpSet, Key: b, Val: v},
				}})
				// Reading both through a cross-shard TXN of GETs serializes
				// against the writers above, so the pair must match.
				resp := execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
					{Op: wire.OpGet, Key: a},
					{Op: wire.OpGet, Key: b},
				}})
				if string(resp.Batch[0].Val) != string(resp.Batch[1].Val) {
					t.Errorf("torn pair: %q vs %q", resp.Batch[0].Val, resp.Batch[1].Val)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestShardedDurableRestart: a sharded durable store replays every
// shard's log — including cross-shard TXN prepares — back to the same
// state, and the manifest pins the shard count.
func TestShardedDurableRestart(t *testing.T) {
	dir := t.TempDir()
	st, res := newShardedDurable(t, dir, 4, wal.ModeAlways)
	if len(res.Shards) != 4 {
		t.Fatalf("recovered %d shards", len(res.Shards))
	}
	const n = 60
	for i := 0; i < n; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("v")})
	}
	// One cross-shard TXN so prepares/decision/commit marks hit the logs.
	a, b := tkey(0), []byte(nil)
	for i := 1; b == nil; i++ {
		if st.shardIdx(tkey(i)) != st.shardIdx(a) {
			b = tkey(i)
		}
	}
	execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: a, Val: []byte("xa")},
		{Op: wire.OpSet, Key: b, Val: []byte("xb")},
	}})
	before := scanAll(t, st)
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	if got, err := WALShardCount(dir); err != nil || got != 4 {
		t.Fatalf("WALShardCount = %d, %v; want 4", got, err)
	}

	st2, res2 := newShardedDurable(t, dir, 4, wal.ModeAlways)
	defer st2.CloseDurability()
	if res2.RolledBack != 0 {
		t.Fatalf("clean restart rolled back %d prepares", res2.RolledBack)
	}
	if got := scanAll(t, st2); len(got) != len(before) || got[string(a)] != "xa" || got[string(b)] != "xb" {
		t.Fatalf("state after restart = %d keys, want %d (a=%q b=%q)", len(got), len(before), got[string(a)], got[string(b)])
	}
	// The epoch counter resumed past the recovered maximum: the next
	// cross-shard commit must not collide with the logged one.
	if st2.epoch.Load() == 0 {
		t.Fatal("epoch did not resume from the recovered logs")
	}
}

// TestShardCountMismatch: reopening a pinned directory with the wrong
// shard count refuses, and the error names the pinned count.
func TestShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	st, _ := newShardedDurable(t, dir, 4, wal.ModeAlways)
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(1), Val: []byte("v")})
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	st2 := newSharded(2)
	_, err := st2.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
	if err == nil || !strings.Contains(err.Error(), "4") {
		t.Fatalf("mismatched open: err = %v, want pinned-count error", err)
	}
}

// TestLegacyDirOpensAsSingleShard: a pre-manifest directory (files at
// the root) reads back as one shard and keeps working.
func TestLegacyDirOpensAsSingleShard(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeAlways)
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("k"), Val: []byte("v")})
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	// Strip the manifest: the layout earlier releases wrote.
	rmManifest(t, dir)
	if got, err := WALShardCount(dir); err != nil || got != 1 {
		t.Fatalf("legacy WALShardCount = %d, %v; want 1", got, err)
	}
	st2, _ := newDurable(t, dir, wal.ModeAlways)
	defer st2.CloseDurability()
	if got := scanAll(t, st2); got["k"] != "v" {
		t.Fatalf("legacy replay = %v", got)
	}
}

// TestShardedStats: STATS surfaces the shard count, distribution rows
// and per-shard WAL rows.
func TestShardedStats(t *testing.T) {
	dir := t.TempDir()
	st, _ := newShardedDurable(t, dir, 2, wal.ModeAlways)
	defer st.CloseDurability()
	for i := 0; i < 32; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte("v")})
	}
	resp := execOK(t, st, &wire.Request{Op: wire.OpStats})
	counters := map[string]uint64{}
	for _, c := range resp.Counters {
		counters[c.Name] = c.Value
	}
	if counters["store_shards"] != 2 {
		t.Fatalf("store_shards = %d", counters["store_shards"])
	}
	if counters["shard0.ops"]+counters["shard1.ops"] < 32 {
		t.Fatalf("distribution rows = %d + %d", counters["shard0.ops"], counters["shard1.ops"])
	}
	if counters["shard0.wal_records"]+counters["shard1.wal_records"] != 32 {
		t.Fatalf("per-shard wal_records sum = %d, want 32",
			counters["shard0.wal_records"]+counters["shard1.wal_records"])
	}
	if counters["wal_records"] != 32 {
		t.Fatalf("aggregate wal_records = %d, want 32", counters["wal_records"])
	}
	if counters["commits"] == 0 {
		t.Fatal("aggregate engine counters missing")
	}
}
