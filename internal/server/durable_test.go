package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// execOK runs one request against st and fails the test on StatusErr.
func execOK(t *testing.T, st *Store, req *wire.Request) *wire.Response {
	t.Helper()
	resp := st.Execute(req)
	if resp.Status == wire.StatusErr {
		t.Fatalf("%v: %s", req.Op, resp.Msg)
	}
	return resp
}

// scanAll returns the store's full contents via a SCAN.
func scanAll(t *testing.T, st *Store) map[string]string {
	t.Helper()
	resp := execOK(t, st, &wire.Request{Op: wire.OpScan, Sem: wire.SemDefault})
	out := map[string]string{}
	for _, kv := range resp.Pairs {
		out[string(kv.Key)] = string(kv.Val)
	}
	return out
}

// newDurable builds a durable store on dir with background
// checkpoints off (tests drive Checkpoint explicitly).
func newDurable(t *testing.T, dir string, mode wal.Mode) (*Store, *wal.RecoverResult) {
	t.Helper()
	st := NewStore(core.NewDefault())
	res, err := st.EnableDurability(Durability{Dir: dir, Fsync: mode, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return st, res.Shards[0]
}

// TestDurableRoundTrip: every mutation class survives a close/reopen.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, res := newDurable(t, dir, wal.ModeAlways)
	if res.CheckpointSeq != 0 || res.Records != 0 {
		t.Fatalf("fresh recovery: %+v", res)
	}

	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("a"), Val: []byte("1")})
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("b"), Val: []byte("2")})
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("c"), Val: []byte("3")})
	// CAS success mutates; CAS mismatch and miss must log nothing.
	if r := execOK(t, st, &wire.Request{Op: wire.OpCAS, Sem: wire.SemDefault, Key: []byte("a"), Old: []byte("1"), Val: []byte("1x")}); r.Status != wire.StatusOK {
		t.Fatalf("cas: %v", r.Status)
	}
	if r := execOK(t, st, &wire.Request{Op: wire.OpCAS, Sem: wire.SemDefault, Key: []byte("a"), Old: []byte("wrong"), Val: []byte("zz")}); r.Status != wire.StatusCASMismatch {
		t.Fatalf("cas mismatch: %v", r.Status)
	}
	if r := execOK(t, st, &wire.Request{Op: wire.OpCAS, Sem: wire.SemDefault, Key: []byte("nope"), Old: []byte("x"), Val: []byte("y")}); r.Status != wire.StatusNotFound {
		t.Fatalf("cas miss: %v", r.Status)
	}
	// DEL hit logs, DEL miss does not.
	execOK(t, st, &wire.Request{Op: wire.OpDel, Sem: wire.SemDefault, Key: []byte("b")})
	execOK(t, st, &wire.Request{Op: wire.OpDel, Sem: wire.SemDefault, Key: []byte("ghost")})
	// A TXN batch is one atomic record.
	execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: []byte("t1"), Val: []byte("x")},
		{Op: wire.OpDel, Key: []byte("c")},
		{Op: wire.OpGet, Key: []byte("a")},
	}})
	execOK(t, st, &wire.Request{Op: wire.OpRebuild, Sem: wire.SemDefault})

	want := scanAll(t, st)
	if err := st.CloseDurability(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2, res2 := newDurable(t, dir, wal.ModeAlways)
	defer st2.CloseDurability()
	// set×3 + cas-success + del-hit + txn + rebuild = 7 records.
	if res2.Records != 7 {
		t.Fatalf("replayed %d records, want 7", res2.Records)
	}
	got := scanAll(t, st2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d: %v vs %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: recovered %q, want %q", k, got[k], v)
		}
	}
	if got["a"] != "1x" || got["t1"] != "x" {
		t.Fatalf("recovered state wrong: %v", got)
	}
}

// TestDurableFlushAndCheckpoint: FLUSH is logged, checkpoints compact
// the log, and recovery = checkpoint + tail.
func TestDurableFlushAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeBatch)
	for i := 0; i < 10; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
			Key: []byte(fmt.Sprintf("k%02d", i)), Val: []byte("v")})
	}
	execOK(t, st, &wire.Request{Op: wire.OpFlush, Sem: wire.SemDefault})
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("post"), Val: []byte("flush")})

	if err := st.Checkpoint(context.Background()); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// The pre-checkpoint segment must be gone.
	if _, err := os.Stat(filepath.Join(dir, "wal-00000001.log")); !os.IsNotExist(err) {
		t.Fatalf("segment 1 survived the checkpoint: %v", err)
	}
	// Writes after the checkpoint land in the tail.
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("tail"), Val: []byte("1")})
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	st2, res := newDurable(t, dir, wal.ModeBatch)
	defer st2.CloseDurability()
	if res.CheckpointSeq == 0 || res.CheckpointKeys != 1 || res.Records != 1 {
		t.Fatalf("recovery: %+v", res)
	}
	got := scanAll(t, st2)
	if len(got) != 2 || got["post"] != "flush" || got["tail"] != "1" {
		t.Fatalf("recovered: %v", got)
	}
}

// TestDurableTornTail writes through the store, then tears the log's
// last record on disk: recovery must surface exactly the durable
// prefix — the torn record's transaction never half-applies.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeAlways)
	for i := 0; i < 6; i++ {
		execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
			Key: []byte(fmt.Sprintf("k%d", i)), Val: []byte("v")})
	}
	// A multi-op record at the tail: tearing it must drop ALL of it.
	execOK(t, st, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: []byte("x"), Val: []byte("1")},
		{Op: wire.OpSet, Key: []byte("y"), Val: []byte("2")},
	}})
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000001.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	st2, res := newDurable(t, dir, wal.ModeAlways)
	defer st2.CloseDurability()
	if res.Records != 6 || res.TruncatedSeg != 1 {
		t.Fatalf("recovery: %+v", res)
	}
	got := scanAll(t, st2)
	if len(got) != 6 {
		t.Fatalf("recovered %d keys, want 6: %v", len(got), got)
	}
	if _, ok := got["x"]; ok {
		t.Fatal("torn TXN record half-applied")
	}
	if _, ok := got["y"]; ok {
		t.Fatal("torn TXN record half-applied")
	}
}

// TestDurableConcurrent hammers a durable store from many goroutines
// and checks recovery equals the final state — the log's total order
// must match the commit order even under contention.
func TestDurableConcurrent(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeBatch)
	const workers, per = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-k%d", w, i%8))
				resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
					Key: key, Val: []byte(fmt.Sprintf("%d", i))})
				if resp.Status != wire.StatusOK {
					t.Errorf("set: %v %s", resp.Status, resp.Msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := scanAll(t, st)
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	st2, res := newDurable(t, dir, wal.ModeBatch)
	defer st2.CloseDurability()
	if res.Records != workers*per {
		t.Fatalf("replayed %d records, want %d", res.Records, workers*per)
	}
	got := scanAll(t, st2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: %q != %q (log order diverged from commit order)", k, got[k], v)
		}
	}
}

// TestDurableCheckpointUnderLoad checkpoints while writers run: the
// recovered state must equal the live state afterwards (checkpoint +
// tail overlap replays idempotently).
func TestDurableCheckpointUnderLoad(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeBatch)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
					Key: []byte(fmt.Sprintf("w%d-%d", w, i%16)), Val: []byte(fmt.Sprintf("%d", i))})
				i++
			}
		}(w)
	}
	for c := 0; c < 3; c++ {
		time.Sleep(10 * time.Millisecond)
		if err := st.Checkpoint(context.Background()); err != nil {
			t.Fatalf("checkpoint %d: %v", c, err)
		}
	}
	close(stop)
	wg.Wait()
	want := scanAll(t, st)
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	st2, res := newDurable(t, dir, wal.ModeBatch)
	defer st2.CloseDurability()
	if res.CheckpointSeq == 0 {
		t.Fatalf("no checkpoint loaded: %+v", res)
	}
	got := scanAll(t, st2)
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: %q != %q", k, got[k], v)
		}
	}
}

// TestDurableStats: the STATS surface exposes the wal counters.
func TestDurableStats(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeAlways)
	defer st.CloseDurability()
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("k"), Val: []byte("v")})
	if err := st.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp := execOK(t, st, &wire.Request{Op: wire.OpStats, Sem: wire.SemDefault})
	got := map[string]uint64{}
	for _, c := range resp.Counters {
		got[c.Name] = c.Value
	}
	for _, name := range []string{"wal_bytes", "wal_records", "wal_fsyncs", "wal_checkpoints", "wal_segment"} {
		if _, ok := got[name]; !ok {
			t.Fatalf("STATS missing %s: %v", name, got)
		}
	}
	if got["wal_records"] != 1 || got["wal_checkpoints"] != 1 || got["wal_bytes"] == 0 || got["wal_fsyncs"] == 0 {
		t.Fatalf("wal counters: %v", got)
	}
	// Non-durable stores must not grow the counters.
	plain := NewStore(core.NewDefault())
	resp = execOK(t, plain, &wire.Request{Op: wire.OpStats, Sem: wire.SemDefault})
	for _, c := range resp.Counters {
		if c.Name == "wal_bytes" {
			t.Fatal("non-durable store reports wal counters")
		}
	}
}

// TestDurableAbortNotLogged: a transaction that fails mid-body (bad
// TXN sub-op after a successful write) must leave nothing in the log
// and nothing in the store.
func TestDurableAbortNotLogged(t *testing.T) {
	dir := t.TempDir()
	st, _ := newDurable(t, dir, wal.ModeAlways)
	resp := st.Execute(&wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpSet, Key: []byte("doomed"), Val: []byte("1")},
		{Op: wire.OpScan}, // not a legal sub-op: the body errors after the write
	}})
	if resp.Status != wire.StatusErr {
		t.Fatalf("bad batch accepted: %v", resp.Status)
	}
	if got := scanAll(t, st); len(got) != 0 {
		t.Fatalf("aborted txn left writes: %v", got)
	}
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}
	st2, res := newDurable(t, dir, wal.ModeAlways)
	defer st2.CloseDurability()
	if res.Records != 0 {
		t.Fatalf("aborted transaction reached the log: %+v", res)
	}
}

// TestSnapshotWriteRejectedAtProtocol: a hand-built frame overriding a
// write opcode to snapshot semantics is rejected before any
// transaction starts — one clean StatusErr, no retry loop, no engine
// activity, no visible writes.
func TestSnapshotWriteRejectedAtProtocol(t *testing.T) {
	st := NewStore(core.NewDefault())
	before := st.TM().Stats()
	for _, op := range []wire.Op{wire.OpSet, wire.OpCAS, wire.OpDel, wire.OpTxn, wire.OpFlush, wire.OpRebuild} {
		req := &wire.Request{Op: op, Sem: byte(core.Snapshot), Key: []byte("k"), Val: []byte("v"), Old: []byte("o")}
		if op == wire.OpTxn {
			req.Batch = []wire.Request{{Op: wire.OpSet, Key: []byte("k"), Val: []byte("v")}}
		}
		resp := st.Execute(req)
		if resp.Status != wire.StatusErr {
			t.Fatalf("%v under snapshot accepted: %v", op, resp.Status)
		}
		wantErr := (&wire.SnapshotWriteError{Op: op}).Error()
		if resp.Msg != wantErr {
			t.Fatalf("%v: Msg = %q, want %q", op, resp.Msg, wantErr)
		}
	}
	// The typed error is matchable.
	_, err := resolveSemantics(&wire.Request{Op: wire.OpSet, Sem: byte(core.Snapshot)})
	if !errors.Is(err, wire.ErrSnapshotWriteOp) {
		t.Fatalf("err = %v, want ErrSnapshotWriteOp", err)
	}
	var typed *wire.SnapshotWriteError
	if !errors.As(err, &typed) || typed.Op != wire.OpSet {
		t.Fatalf("err not typed: %v", err)
	}
	// No transaction ever started, let alone retried; nothing visible.
	after := st.TM().Stats()
	if after.Starts != before.Starts {
		t.Fatalf("rejection started %d transactions", after.Starts-before.Starts)
	}
	if got := scanAll(t, st); len(got) != 0 {
		t.Fatalf("rejected writes visible: %v", got)
	}
	// Snapshot on READ opcodes stays legal.
	if resp := st.Execute(&wire.Request{Op: wire.OpGet, Sem: byte(core.Snapshot), Key: []byte("k")}); resp.Status != wire.StatusNotFound {
		t.Fatalf("snapshot GET: %v %s", resp.Status, resp.Msg)
	}
}

// TestAppendSubScrubPoisonedReuse is the regression test for the
// appendSub reuse bug: fill EVERY Response field with poison, reuse
// the Response for MGET and TXN answers, and assert the re-encoded
// bytes are identical to a fresh encode — no stale Msg/N/Pairs/
// Counters/nested-Batch may leak through a reused Batch slot.
func TestAppendSubScrubPoisonedReuse(t *testing.T) {
	st := NewStore(core.NewDefault())
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("a"), Val: []byte("va")})

	poisonSub := wire.Response{
		Status:   wire.StatusErr,
		Val:      []byte("stale-val"),
		Pairs:    []wire.KV{{Key: []byte("pk"), Val: []byte("pv")}},
		Batch:    []wire.Response{{Status: wire.StatusErr, Msg: "nested"}},
		Counters: []wire.Counter{{Name: "stale", Value: 9}},
		N:        77,
		Msg:      "stale-msg",
		SubOp:    wire.OpScan,
	}
	poisoned := &wire.Response{
		Status:   wire.StatusErr,
		Val:      []byte("top-val"),
		Pairs:    []wire.KV{{Key: []byte("k"), Val: []byte("v")}},
		Batch:    []wire.Response{poisonSub, poisonSub, poisonSub},
		Counters: []wire.Counter{{Name: "x", Value: 1}},
		N:        42,
		Msg:      "top-msg",
		SubOp:    wire.OpCAS,
	}

	reqs := []*wire.Request{
		{Op: wire.OpMGet, Sem: wire.SemDefault, Keys: [][]byte{[]byte("a"), []byte("miss")}},
		{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
			{Op: wire.OpGet, Key: []byte("a")},
			{Op: wire.OpCAS, Key: []byte("a"), Old: []byte("wrong"), Val: []byte("x")},
			{Op: wire.OpDel, Key: []byte("miss")},
		}},
	}
	for _, req := range reqs {
		fresh := new(wire.Response)
		st.ExecuteInto(req, fresh)
		freshBytes, err := wire.AppendResponse(nil, req.Op, fresh)
		if err != nil {
			t.Fatalf("%v fresh encode: %v", req.Op, err)
		}

		reused := poisoned // the same poisoned Response, reused in place
		st.ExecuteInto(req, reused)
		reusedBytes, err := wire.AppendResponse(nil, req.Op, reused)
		if err != nil {
			t.Fatalf("%v reused encode: %v", req.Op, err)
		}
		if !bytes.Equal(freshBytes, reusedBytes) {
			t.Fatalf("%v: poisoned reuse leaked onto the wire:\nfresh  %x\nreused %x", req.Op, freshBytes, reusedBytes)
		}
		// Belt and braces: the scrub is visible on the struct too.
		for i := range reused.Batch {
			sub := &reused.Batch[i]
			if sub.Msg != "" && sub.Status != wire.StatusErr {
				t.Fatalf("%v sub %d kept stale Msg %q", req.Op, i, sub.Msg)
			}
			if sub.N != 0 || len(sub.Pairs) != 0 || len(sub.Counters) != 0 || len(sub.Batch) != 0 {
				t.Fatalf("%v sub %d kept stale fields: %+v", req.Op, i, sub)
			}
		}
	}
}
