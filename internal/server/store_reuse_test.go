package server

import (
	"bytes"
	"testing"

	"polytm/internal/core"
	"polytm/internal/wire"
)

// roundTrip encodes resp as op's wire answer and decodes it back —
// exactly what a client would see — so any stale state a reused
// Response leaks through the encoder becomes visible.
func roundTrip(t *testing.T, op wire.Op, resp *wire.Response, subOps []wire.Op) *wire.Response {
	t.Helper()
	raw, err := wire.AppendResponse(nil, op, resp)
	if err != nil {
		t.Fatalf("encode %v: %v", op, err)
	}
	dec, err := wire.DecodeResponse(raw, op, subOps)
	if err != nil {
		t.Fatalf("decode %v: %v", op, err)
	}
	return dec
}

// TestExecuteIntoReuse drives one reused Request/Response pair through
// a sequence chosen so every later answer would betray leakage from an
// earlier one: a GET hit before a GET miss, a populated SCAN before an
// empty one, a long MGET before a short one, a CAS mismatch carrying a
// value before a clean CAS.
func TestExecuteIntoReuse(t *testing.T) {
	st := NewStore(core.NewDefault())
	var req wire.Request
	var resp wire.Response

	exec := func(r *wire.Request) {
		t.Helper()
		st.ExecuteInto(r, &resp)
	}

	exec(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("a"), Val: []byte("va")})
	if resp.Status != wire.StatusOK {
		t.Fatalf("set: %v", resp.Status)
	}
	exec(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("b"), Val: []byte("vb")})

	// GET hit, then GET miss: the miss must not carry the hit's value.
	exec(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("a")})
	if got := roundTrip(t, wire.OpGet, &resp, nil); got.Status != wire.StatusOK || !bytes.Equal(got.Val, []byte("va")) {
		t.Fatalf("get hit: %+v", got)
	}
	exec(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("nope")})
	if got := roundTrip(t, wire.OpGet, &resp, nil); got.Status != wire.StatusNotFound || len(got.Val) != 0 {
		t.Fatalf("get miss leaked: %+v", got)
	}

	// Populated SCAN, then empty SCAN.
	exec(&wire.Request{Op: wire.OpScan, Sem: wire.SemDefault, From: []byte("a"), To: []byte("z")})
	if got := roundTrip(t, wire.OpScan, &resp, nil); len(got.Pairs) != 2 ||
		string(got.Pairs[0].Key) != "a" || string(got.Pairs[1].Val) != "vb" {
		t.Fatalf("scan: %+v", got)
	}
	exec(&wire.Request{Op: wire.OpScan, Sem: wire.SemDefault, From: []byte("x"), To: []byte("z")})
	if got := roundTrip(t, wire.OpScan, &resp, nil); len(got.Pairs) != 0 {
		t.Fatalf("empty scan leaked %d pairs", len(got.Pairs))
	}

	// Long MGET, then short MGET: sub-count and per-sub values reset.
	exec(&wire.Request{Op: wire.OpMGet, Sem: wire.SemDefault,
		Keys: [][]byte{[]byte("a"), []byte("nope"), []byte("b")}})
	if got := roundTrip(t, wire.OpMGet, &resp, nil); len(got.Batch) != 3 ||
		got.Batch[0].Status != wire.StatusOK || got.Batch[1].Status != wire.StatusNotFound ||
		!bytes.Equal(got.Batch[2].Val, []byte("vb")) {
		t.Fatalf("mget: %+v", got)
	}
	exec(&wire.Request{Op: wire.OpMGet, Sem: wire.SemDefault, Keys: [][]byte{[]byte("nope")}})
	if got := roundTrip(t, wire.OpMGet, &resp, nil); len(got.Batch) != 1 ||
		got.Batch[0].Status != wire.StatusNotFound || len(got.Batch[0].Val) != 0 {
		t.Fatalf("short mget leaked: %+v", got)
	}

	// CAS mismatch (carries current value), then successful CAS (must
	// not carry it anymore).
	exec(&wire.Request{Op: wire.OpCAS, Sem: wire.SemDefault, Key: []byte("a"), Old: []byte("wrong"), Val: []byte("x")})
	if got := roundTrip(t, wire.OpCAS, &resp, nil); got.Status != wire.StatusCASMismatch || !bytes.Equal(got.Val, []byte("va")) {
		t.Fatalf("cas mismatch: %+v", got)
	}
	exec(&wire.Request{Op: wire.OpCAS, Sem: wire.SemDefault, Key: []byte("a"), Old: []byte("va"), Val: []byte("va2")})
	if got := roundTrip(t, wire.OpCAS, &resp, nil); got.Status != wire.StatusOK || len(got.Val) != 0 {
		t.Fatalf("cas ok leaked: %+v", got)
	}

	// TXN batch through the reused pair, decoded with its sub-ops.
	txnPayload, err := wire.AppendRequest(nil, &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{
		{Op: wire.OpGet, Key: []byte("a")},
		{Op: wire.OpDel, Key: []byte("b")},
		{Op: wire.OpGet, Key: []byte("b")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.DecodeRequestInto(&req, txnPayload); err != nil {
		t.Fatal(err)
	}
	st.ExecuteInto(&req, &resp)
	got := roundTrip(t, wire.OpTxn, &resp, []wire.Op{wire.OpGet, wire.OpDel, wire.OpGet})
	if len(got.Batch) != 3 || !bytes.Equal(got.Batch[0].Val, []byte("va2")) ||
		got.Batch[1].Status != wire.StatusOK || got.Batch[2].Status != wire.StatusNotFound {
		t.Fatalf("txn: %+v", got)
	}

	// FLUSH resets N-bearing responses; a following STATS must not be
	// polluted by it and vice versa.
	exec(&wire.Request{Op: wire.OpFlush, Sem: wire.SemDefault})
	if got := roundTrip(t, wire.OpFlush, &resp, nil); got.Status != wire.StatusOK || got.N != 1 {
		t.Fatalf("flush: %+v", got)
	}
	exec(&wire.Request{Op: wire.OpStats, Sem: wire.SemDefault})
	if got := roundTrip(t, wire.OpStats, &resp, nil); len(got.Counters) == 0 {
		t.Fatalf("stats empty")
	}
	exec(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("a")})
	if got := roundTrip(t, wire.OpGet, &resp, nil); got.Status != wire.StatusNotFound || len(got.Val) != 0 {
		t.Fatalf("get after flush leaked: %+v", got)
	}
}
