package server

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/stm"
	"polytm/internal/wire"
)

// TestExecuteCtxCancelled: a dead request context turns into a
// StatusErr response carrying the cancellation, and the store is
// untouched.
func TestExecuteCtxCancelled(t *testing.T) {
	st := NewStore(core.NewDefault())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var resp wire.Response
	st.ExecuteCtx(ctx, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("k"), Val: []byte("v")}, &resp)
	if resp.Status != wire.StatusErr {
		t.Fatalf("status = %v, want StatusErr", resp.Status)
	}
	if !strings.Contains(resp.Msg, "cancelled") {
		t.Fatalf("msg = %q, want cancellation rendered", resp.Msg)
	}
	if v := st.Execute(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("k")}); v.Status != wire.StatusNotFound {
		t.Fatalf("cancelled SET landed: GET status %v", v.Status)
	}
}

// TestExecuteRejectsBadSemanticsByte: the semantics byte range is
// validated centrally (wire.Semantics), so a request that bypasses the
// wire decoder — hand-built, in-process — is rejected with the typed
// protocol error, for every opcode.
func TestExecuteRejectsBadSemanticsByte(t *testing.T) {
	st := NewStore(core.NewDefault())
	for _, op := range []wire.Op{wire.OpGet, wire.OpSet, wire.OpScan, wire.OpMGet, wire.OpTxn, wire.OpFlush} {
		resp := st.Execute(&wire.Request{Op: op, Sem: 0x7C, Key: []byte("k")})
		if resp.Status != wire.StatusErr {
			t.Fatalf("%v with bad sem byte: status %v, want StatusErr", op, resp.Status)
		}
		if !strings.Contains(resp.Msg, "0x7C") {
			t.Fatalf("%v: msg %q does not name the offending byte", op, resp.Msg)
		}
	}
	// The typed error itself.
	if _, err := wire.Semantics(0x7C, 0); !errors.Is(err, wire.ErrBadSemantics) {
		t.Fatalf("wire.Semantics(0x7C) = %v, want ErrBadSemantics match", err)
	}
	var se *wire.SemanticsError
	if _, err := wire.Semantics(0x7C, 0); !errors.As(err, &se) || se.Byte != 0x7C {
		t.Fatal("wire.Semantics must return a *SemanticsError carrying the byte")
	}
	// Valid bytes resolve; SemDefault takes the supplied default.
	if s, err := wire.Semantics(wire.SemDefault, core.Weak); err != nil || s != core.Weak {
		t.Fatalf("SemDefault resolution: %v %v", s, err)
	}
	if s, err := wire.Semantics(byte(stm.SemanticsSnapshot), core.Def); err != nil || s != core.Snapshot {
		t.Fatalf("explicit byte resolution: %v %v", s, err)
	}
}

// TestForcedShutdownCancelsInflight parks a wire request's transaction
// on a variable held hostage by an irrevocable encounter lock, then
// asserts a forced Shutdown cancels the in-flight transaction (through
// the per-connection context) instead of hanging on the drain.
func TestForcedShutdownCancelsInflight(t *testing.T) {
	srv := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	// Seed the key, then take an irrevocable encounter lock on its value
	// variable: the handler's def SET will spin in waitUnlocked — the
	// exact in-flight state a forced drain must be able to abandon.
	if err := srv.TM().Atomic(func(tx *core.Tx) error {
		_, err := srv.Store().tab().shards[0].m.PutTx(tx, "k", "seed")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	hostage := srv.TM().Engine().Begin(stm.SemanticsIrrevocable)
	defer hostage.Abort()
	if _, ok, err := srv.Store().tab().shards[0].m.GetTx(core.WrapTx(srv.TM(), hostage), "k"); err != nil || !ok {
		t.Fatalf("hostage lock: ok=%v err=%v", ok, err)
	}

	// Fire a SET at the locked key over a real connection; it parks.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	frame, err := wire.AppendRequestFrame(nil, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("k"), Val: []byte("v2")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the handler park on the lock

	// Forced shutdown with a 10ms budget: the graceful phase cannot
	// finish (the handler is parked), so Shutdown cancels the serving
	// context; the parked transaction aborts and the handler exits.
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	sdDone := make(chan error, 1)
	go func() { sdDone <- srv.Shutdown(sdCtx) }()
	select {
	case err := <-sdDone:
		if err == nil {
			t.Fatal("forced shutdown should report the forced drain")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("forced shutdown hung on an in-flight transaction parked on a lock")
	}
	// The key keeps its seeded value: the cancelled SET never landed.
	hostage.Abort()
	if v, ok := srv.Store().tab().shards[0].m.Get("k", core.Snapshot); !ok || v != "seed" {
		t.Fatalf("store after forced drain: %q/%v, want seed", v, ok)
	}
	<-serveDone
}
