package server

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/repl"
	"polytm/internal/server/client"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// failoverChildEnv marks the re-executed test binary as the primary
// process of TestFailoverKill9; its value is the WAL directory.
const failoverChildEnv = "POLYSERVE_FAILOVER_DIR"

// failoverItersEnv overrides the iteration count (CI runs the full
// sweep; local runs keep it short).
const failoverItersEnv = "POLYSERVE_FAILOVER_ITERS"

// failoverKey formats the i-th sequential key of the failover workload.
func failoverKey(i int) string { return fmt.Sprintf("fo-%08d", i) }

// failoverChild runs a durable sync-ack replication primary: it prints
// "ADDR <addr>", waits for a follower to subscribe, then loads itself
// with sequential SETs printing "ACK n" after each acknowledgement.
// With -fsync=always AND sync acks, every printed n is both on stable
// storage and applied by the follower. It runs until SIGKILLed.
func failoverChild(dir string) {
	srv := New(Config{StoreShards: 2})
	if _, err := srv.Store().EnableDurability(Durability{
		Dir:             dir,
		Fsync:           wal.ModeAlways,
		CheckpointEvery: -1,
	}); err != nil {
		fmt.Printf("CHILD-ERR durability: %v\n", err)
		os.Exit(1)
	}
	if err := srv.EnableReplication(ReplConfig{SyncAck: true}); err != nil {
		fmt.Printf("CHILD-ERR replication: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD-ERR listen: %v\n", err)
		os.Exit(1)
	}
	go srv.Serve(ln)
	fmt.Printf("ADDR %s\n", ln.Addr())

	// Only load once the follower is attached: sync acks degrade to
	// local-durability acks while no follower is connected, and this
	// experiment's contract is "acked ⟹ follower applied".
	deadline := time.Now().Add(20 * time.Second)
	for {
		followers := uint64(0)
		for _, c := range srv.Hub().Counters() {
			if c.Name == "repl_followers" {
				followers = c.Value
			}
		}
		if followers >= 1 {
			break
		}
		if time.Now().After(deadline) {
			fmt.Printf("CHILD-ERR no follower subscribed\n")
			os.Exit(1)
		}
		time.Sleep(2 * time.Millisecond)
	}

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		fmt.Printf("CHILD-ERR dial: %v\n", err)
		os.Exit(1)
	}
	for i := 1; ; i++ {
		if err := cl.Set([]byte(failoverKey(i)), []byte(strconv.Itoa(i))); err != nil {
			fmt.Printf("CHILD-ERR set %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("ACK %d\n", i)
	}
}

// TestFailoverKill9 is the failover acceptance experiment: a real
// primary process is SIGKILLed mid-load while replicating with sync
// acks to an in-process follower; the follower is promoted and must
// hold EXACTLY the keys 1..N of a prefix with N at least the last
// acknowledgement the client saw — then take new writes as primary.
// The iteration count comes from POLYSERVE_FAILOVER_ITERS (CI runs the
// 20-iteration sweep).
func TestFailoverKill9(t *testing.T) {
	if dir := os.Getenv(failoverChildEnv); dir != "" {
		failoverChild(dir) // never returns
	}
	iters := 5
	if v := os.Getenv(failoverItersEnv); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad %s=%q", failoverItersEnv, v)
		}
		iters = n
	}
	if testing.Short() {
		iters = 2
	}
	for i := 0; i < iters; i++ {
		t.Run(fmt.Sprintf("iter%02d", i), runFailoverIteration)
	}
}

func runFailoverIteration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "primary-wal")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestFailoverKill9$", "-test.v")
	cmd.Env = append(os.Environ(), failoverChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	watchdog := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	defer watchdog.Stop()

	// The in-process follower (non-durable: promotion correctness is
	// what's under test, and the repl apply path is the same either
	// way).
	fstore := NewShardedStore([]*core.TM{core.NewDefault(), core.NewDefault()})
	var fl *repl.Follower
	defer func() {
		if fl != nil {
			fl.Close()
		}
	}()

	const killAfter = 60
	lastAck := 0
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD-ERR") {
			t.Fatalf("failover child failed: %s", line)
		}
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			fstore.BecomeFollower(addr)
			fl, err = repl.StartFollower(repl.FollowerConfig{
				Primary: addr,
				Store:   fstore,
				Backoff: repl.Backoff{Min: 10 * time.Millisecond, Max: 100 * time.Millisecond},
			})
			if err != nil {
				t.Fatalf("follower: %v", err)
			}
			continue
		}
		n, ok := strings.CutPrefix(line, "ACK ")
		if !ok {
			continue // test-framework chatter
		}
		v, err := strconv.Atoi(n)
		if err != nil {
			continue
		}
		lastAck = v
		if v == killAfter {
			cmd.Process.Kill() // SIGKILL: no shutdown path runs
		}
	}
	cmd.Wait() // the kill makes this an error by design
	if fl == nil {
		t.Fatal("child never printed its address")
	}
	if lastAck < killAfter {
		t.Fatalf("child died after only %d acks (wanted >= %d)", lastAck, killAfter)
	}

	// Promote: the link stops, the follower becomes the primary.
	if _, err := fl.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	fstore.BecomePrimary()

	// The promoted store holds exactly a prefix 1..n with n >= lastAck:
	// sync acks mean nothing acknowledged can be missing, and
	// sequential load means nothing beyond the next in-flight write can
	// be present.
	got := scanAll(t, fstore)
	n := len(got)
	if n < lastAck {
		t.Fatalf("promoted follower has %d keys < %d acknowledged — acked writes lost in failover", n, lastAck)
	}
	for i := 1; i <= n; i++ {
		v, ok := got[failoverKey(i)]
		if !ok {
			t.Fatalf("promoted state is not a prefix: %d keys but %s missing", n, failoverKey(i))
		}
		if v != strconv.Itoa(i) {
			t.Fatalf("%s = %q, want %q", failoverKey(i), v, strconv.Itoa(i))
		}
	}
	if _, ok := got[failoverKey(n+1)]; ok {
		t.Fatal("key beyond the prefix present")
	}

	// And the new primary takes writes.
	if resp := fstore.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("post-failover"), Val: []byte("ok")}); resp.Status != wire.StatusOK {
		t.Fatalf("post-failover write: %v %s", resp.Status, resp.Msg)
	}
}
