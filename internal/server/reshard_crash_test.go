package server

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"polytm/internal/wal"
	"polytm/internal/wire"
)

// Online-resharding crash windows: SIGKILL a durable store inside the
// two windows of the split protocol and prove recovery restores the
// exact acknowledged prefix in both.
//
//   - "begin" window: the process dies the instant the RESHARD BEGIN
//     record is durable — the new shard never went live and no routing
//     change was ever visible. Recovery must roll the split back: the
//     original shard count, the original epoch, the new shard's
//     directory gone, every acknowledged key intact.
//   - "commit" window: the process dies the instant the RESHARD COMMIT
//     record is durable — the cutover reached its commit point but the
//     crash beat the MANIFEST rewrite. Recovery must roll the split
//     forward: adopt the grown table from the journal, rewrite the
//     manifest, and surface every acknowledged key.
//
// Like the 2PC gate, the kill is injected through the WAL's
// OnDurableRecord hook — on the flusher goroutine, after the record is
// on stable storage and before any appender is acknowledged.

const (
	reshardCrashDirEnv  = "POLYSERVE_RESHARD_CRASH_DIR"
	reshardCrashModeEnv = "POLYSERVE_RESHARD_CRASH_MODE"
	reshardCrashShards  = 2
	reshardCrashKeys    = 96
)

// reshardCrashChild seeds an acknowledged keyspace, arms the kill hook
// on the journal record for its window, then starts a SPLIT — and dies
// mid-protocol.
func reshardCrashChild(dir, mode string) {
	target := byte(0x13) // RESHARD BEGIN
	if mode == "commit" {
		target = 0x14 // RESHARD COMMIT
	}
	var armed atomic.Bool
	st := newSharded(reshardCrashShards)
	_, err := st.EnableDurability(Durability{
		Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1,
		onDurableRecord: func(first byte) {
			if armed.Load() && first == target {
				syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
				select {} // never acknowledge past the kill point
			}
		},
	})
	if err != nil {
		fmt.Printf("CHILD-ERR enable durability: %v\n", err)
		os.Exit(1)
	}
	for i := 0; i < reshardCrashKeys; i++ {
		resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(i), Val: []byte(fmt.Sprintf("v%d", i))})
		if resp.Status != wire.StatusOK {
			fmt.Printf("CHILD-ERR seed %d: %s\n", i, resp.Msg)
			os.Exit(1)
		}
	}
	fmt.Println("SEEDED")
	armed.Store(true)
	st.Split(context.Background(), 0, 0)
	fmt.Println("CHILD-ERR survived the kill window")
	os.Exit(1)
}

// TestReshardCrashRecovery kills a child process in each split window
// and verifies the recovered directory. CI runs it -count=10 for the
// 20-kill acceptance gate.
func TestReshardCrashRecovery(t *testing.T) {
	if dir := os.Getenv(reshardCrashDirEnv); dir != "" {
		reshardCrashChild(dir, os.Getenv(reshardCrashModeEnv)) // never returns
	}
	for _, mode := range []string{"begin", "commit"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=TestReshardCrashRecovery$", "-test.v")
			cmd.Env = append(os.Environ(), reshardCrashDirEnv+"="+dir, reshardCrashModeEnv+"="+mode)
			timer := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
			out, _ := cmd.CombinedOutput() // dies by SIGKILL: error by design
			timer.Stop()
			if s := string(out); strings.Contains(s, "CHILD-ERR") || !strings.Contains(s, "SEEDED") {
				t.Fatalf("crash child (mode=%s):\n%s", mode, s)
			}

			// The crash in BOTH windows beat the MANIFEST rewrite, so the
			// pinned count is still the pre-split one — recovery itself
			// decides whether the table grows.
			pinned, err := WALShardCount(dir)
			if err != nil {
				t.Fatalf("WALShardCount: %v", err)
			}
			if pinned != reshardCrashShards {
				t.Fatalf("pinned shard count = %d, want %d", pinned, reshardCrashShards)
			}
			st := newSharded(reshardCrashShards)
			res, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			defer st.CloseDurability()
			t.Logf("recovery: %s", res)

			switch mode {
			case "begin":
				// Rolled back: original table, no trace of the new shard.
				if st.NumShards() != reshardCrashShards || st.RoutingEpoch() != 0 {
					t.Fatalf("begin-window crash left shards=%d epoch=%d", st.NumShards(), st.RoutingEpoch())
				}
				if fileExists(filepath.Join(dir, "shard-0002")) {
					t.Fatal("rolled-back split left the new shard's directory")
				}
			case "commit":
				// Rolled forward: the journaled table, manifest healed.
				if st.NumShards() != reshardCrashShards+1 || st.RoutingEpoch() != 1 {
					t.Fatalf("commit-window crash recovered to shards=%d epoch=%d", st.NumShards(), st.RoutingEpoch())
				}
				if n, err := WALShardCount(dir); err != nil || n != reshardCrashShards+1 {
					t.Fatalf("manifest not healed after roll-forward: n=%d err=%v", n, err)
				}
			}

			// Both windows: the exact acknowledged prefix, no more, no less.
			got := scanAll(t, st)
			if len(got) != reshardCrashKeys {
				t.Fatalf("recovered %d keys, want %d", len(got), reshardCrashKeys)
			}
			for i := 0; i < reshardCrashKeys; i++ {
				if got[string(tkey(i))] != fmt.Sprintf("v%d", i) {
					t.Fatalf("key %d: %q", i, got[string(tkey(i))])
				}
			}
			// And the recovered store serves writes on every shard.
			for i := 0; i < 32; i++ {
				execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: tkey(1000 + i), Val: []byte("post")})
			}
		})
	}
}
