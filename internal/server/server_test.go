package server_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/server"
	"polytm/internal/server/client"
	"polytm/internal/wire"
)

// startServer brings up a loopback polyserve and tears it down with the
// test, returning the server and its dial address. POLYSERVE_STORE_SHARDS
// overrides the keyspace shard count when the test doesn't pin one — the
// CI matrix leg sets it to run the whole suite against a sharded store.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.StoreShards == 0 && cfg.TM == nil {
		if v := os.Getenv("POLYSERVE_STORE_SHARDS"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				t.Fatalf("POLYSERVE_STORE_SHARDS=%q: %v", v, err)
			}
			cfg.StoreShards = n
		}
	}
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != server.ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialTest(t *testing.T, addr string, opts ...client.Option) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, opts...)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// TestLoopbackRoundTrip exercises every opcode over a real loopback
// connection: the wire-format round trip against a live store.
func TestLoopbackRoundTrip(t *testing.T) {
	_, addr := startServer(t, server.Config{Shards: 2})
	cl := dialTest(t, addr)

	// GET on an empty store.
	if _, ok, err := cl.Get([]byte("nope")); err != nil || ok {
		t.Fatalf("Get(empty) = ok=%v err=%v, want miss", ok, err)
	}
	// SET then GET.
	if err := cl.Set([]byte("k1"), []byte("v1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if v, ok, err := cl.Get([]byte("k1")); err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get(k1) = %q,%v,%v; want v1", v, ok, err)
	}
	// CAS success, mismatch, and miss.
	if swapped, found, _, err := cl.CAS([]byte("k1"), []byte("v1"), []byte("v2")); err != nil || !swapped || !found {
		t.Fatalf("CAS ok-path = %v,%v,%v", swapped, found, err)
	}
	if swapped, found, cur, err := cl.CAS([]byte("k1"), []byte("v1"), []byte("v3")); err != nil || swapped || !found || string(cur) != "v2" {
		t.Fatalf("CAS mismatch-path = %v,%v,%q,%v", swapped, found, cur, err)
	}
	if swapped, found, _, err := cl.CAS([]byte("ghost"), []byte("a"), []byte("b")); err != nil || swapped || found {
		t.Fatalf("CAS miss-path = %v,%v,%v", swapped, found, err)
	}
	// MGET.
	cl.Set([]byte("k2"), []byte("v2b"))
	vals, found, err := cl.MGet([]byte("k1"), []byte("ghost"), []byte("k2"))
	if err != nil || !found[0] || found[1] || !found[2] || string(vals[0]) != "v2" || string(vals[2]) != "v2b" {
		t.Fatalf("MGet = %q %v %v", vals, found, err)
	}
	// SCAN is ordered and windowed.
	cl.Set([]byte("a"), []byte("1"))
	pairs, err := cl.Scan([]byte("a"), []byte("k2"), 0)
	if err != nil || len(pairs) != 2 || string(pairs[0].Key) != "a" || string(pairs[1].Key) != "k1" {
		t.Fatalf("Scan = %v, %v", pairs, err)
	}
	// TXN batch: atomic multi-op.
	rs, err := cl.Txn(
		wire.Request{Op: wire.OpGet, Key: []byte("k1")},
		wire.Request{Op: wire.OpSet, Key: []byte("k3"), Val: []byte("v3")},
		wire.Request{Op: wire.OpCAS, Key: []byte("k2"), Old: []byte("v2b"), Val: []byte("v2c")},
		wire.Request{Op: wire.OpDel, Key: []byte("a")},
	)
	if err != nil {
		t.Fatalf("Txn: %v", err)
	}
	if rs[0].Status != wire.StatusOK || string(rs[0].Val) != "v2" ||
		rs[1].Status != wire.StatusOK || rs[2].Status != wire.StatusOK || rs[3].Status != wire.StatusOK {
		t.Fatalf("Txn responses = %+v", rs)
	}
	// DEL reports presence.
	if removed, err := cl.Del([]byte("ghost")); err != nil || removed {
		t.Fatalf("Del(ghost) = %v,%v", removed, err)
	}
	// REBUILD preserves contents; STATS sees the irrevocable commit.
	n, err := cl.Rebuild()
	if err != nil || n != 3 { // k1, k2, k3
		t.Fatalf("Rebuild = %d,%v; want 3 keys", n, err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats["commits.irrevocable"] == 0 {
		t.Fatalf("stats missing irrevocable commit: %v", stats)
	}
	if stats["commits.snapshot"] == 0 || stats["aborts.snapshot"] != 0 {
		t.Fatalf("snapshot class off: commits=%d aborts=%d", stats["commits.snapshot"], stats["aborts.snapshot"])
	}
	// FLUSH empties the store.
	if n, err := cl.Flush(); err != nil || n != 3 {
		t.Fatalf("Flush = %d,%v; want 3", n, err)
	}
	if pairs, err := cl.Scan(nil, nil, 0); err != nil || len(pairs) != 0 {
		t.Fatalf("Scan after flush = %v,%v; want empty", pairs, err)
	}
}

// TestSemanticsOverrideByte pins the per-request start(p) byte: a write
// forced under snapshot semantics must fail (snapshot is read-only), and
// a read forced under def must succeed.
func TestSemanticsOverrideByte(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	cl := dialTest(t, addr)

	if err := cl.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	rs, err := cl.Do(&wire.Request{Op: wire.OpSet, Sem: byte(core.Snapshot), Key: []byte("k"), Val: []byte("w")})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if rs[0].Status != wire.StatusErr {
		t.Fatalf("snapshot-override SET status = %v, want ERR", rs[0].Status)
	}
	rs, err = cl.Do(&wire.Request{Op: wire.OpGet, Sem: byte(core.Def), Key: []byte("k")})
	if err != nil || rs[0].Status != wire.StatusOK || string(rs[0].Val) != "v" {
		t.Fatalf("def-override GET = %+v, %v", rs[0], err)
	}
	// The value was not clobbered by the failed snapshot write.
	if v, ok, err := cl.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after failed write = %q,%v,%v", v, ok, err)
	}
}

// TestPipelinedRequests sends a burst of frames before reading any
// response and checks the strict 1:1 in-order reply stream.
func TestPipelinedRequests(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	cl := dialTest(t, addr)

	p := cl.Pipeline()
	const n = 64
	for i := 0; i < n; i++ {
		p.Set([]byte(fmt.Sprintf("p%03d", i)), []byte(fmt.Sprint(i)))
	}
	for i := 0; i < n; i++ {
		p.Get([]byte(fmt.Sprintf("p%03d", i)))
	}
	p.Scan([]byte("p"), []byte("q"), 0)
	rs, err := p.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(rs) != 2*n+1 {
		t.Fatalf("got %d responses, want %d", len(rs), 2*n+1)
	}
	for i := 0; i < n; i++ {
		if rs[i].Status != wire.StatusOK {
			t.Fatalf("SET %d status %v", i, rs[i].Status)
		}
		if got := rs[n+i]; got.Status != wire.StatusOK || string(got.Val) != fmt.Sprint(i) {
			t.Fatalf("GET %d = %+v", i, got)
		}
	}
	if got := rs[2*n]; len(got.Pairs) != n {
		t.Fatalf("final SCAN saw %d keys, want %d", len(got.Pairs), n)
	}
}

// TestGracefulShutdownDrains verifies Shutdown lets an in-flight
// request finish and then unblocks idle connections.
func TestGracefulShutdownDrains(t *testing.T) {
	srv := server.New(server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Set([]byte("x"), []byte("1")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != server.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
	// The store survived the shutdown path (no torn state).
	if v := srv.Store().TM(); v == nil {
		t.Fatal("TM lost")
	}
}
