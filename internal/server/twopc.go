package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"polytm/internal/core"
	"polytm/internal/session"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// Cross-shard commit.
//
// A TXN whose keys span shards — and FLUSH/REBUILD, which span all of
// them — must be failure-atomic: after any crash, recovery surfaces
// either every shard's share of the transaction or none of it. The
// store gets this from a two-phase commit built on the pieces the
// polymorphic engine already provides:
//
//   - Each participating shard runs its share inside one IRREVOCABLE
//     transaction. The irrevocable token is held from the moment the
//     body starts until the transaction finishes, so a participant
//     that has applied its operations cannot be aborted by contention,
//     and nothing else can write that shard's log in between.
//   - Durable stores write a PREPARE record (epoch, coordinator shard,
//     redo operations) to each participating shard's log, under that
//     shard's token, and wait for it to be durable.
//   - The COORDINATOR — the lowest participating shard — collects all
//     votes and appends a DECISION record (the epoch alone) to ITS log.
//     That single durable append is the commit point.
//   - Each participant then appends a COMMIT mark to its own log,
//     still under its token, and the acknowledgement waits for it.
//
// Recovery (wal.Open + EnableDurability) resolves the crash windows:
// a PREPARE followed in its own log by its COMMIT mark (or, on the
// coordinator, by the DECISION) replays; a PREPARE followed by any
// other record was aborted live and is dropped; a PREPARE that ends
// its log is in-doubt and commits iff its epoch is in the coordinator
// shard's recovered decision set. Orphaned prepares — coordinator
// never durably decided — roll back, which is correct because no
// acknowledgement was sent without the decision being durable.
//
// Deadlock freedom: participants enter their transactions in
// ascending shard order, each waiting until the previous
// participant's body is running (and therefore holds its token).
// Two concurrent cross-shard commits contending for the same tokens
// acquire them in the same global order, so one always drains.
//
// The coordinator keeps holding its token until every participant's
// COMMIT mark is durable. A checkpoint rotation on the coordinator
// shard needs that token, so a DECISION record can never be truncated
// out of the log while any participant's prepare might still need it.

// errXShardAbort is the internal "another participant failed" abort;
// crossShard unwraps it to the real cause before returning.
var errXShardAbort = errors.New("server: cross-shard transaction aborted")

// xpart is one shard's share of a cross-shard commit. apply runs
// inside the shard's irrevocable transaction; it applies the shard's
// operations to memory, appends their redo form to rec, and returns
// the grown record (empty = nothing to log for this shard).
type xpart struct {
	sh    *shard
	apply func(tx *core.Tx, rec []byte) ([]byte, error)
}

// crossShard commits parts — which MUST be in ascending shard order —
// as one atomic unit, with parts[0].sh as coordinator. It returns nil
// iff every shard's share committed; on error nothing committed.
//
// The caller's context is honoured only up to the point the protocol
// begins: once tokens are being taken the commit ignores cancellation
// (context.WithoutCancel), mirroring the irrevocable contract it
// rides — a hung-up client must not strand held tokens or a prepare
// with no outcome.
func (s *Store) crossShard(ctx context.Context, parts []xpart, label string) error {
	s.xshardTxns.Add(1)
	n := len(parts)
	epoch := s.epoch.Add(1)
	durable := s.durable()
	coord := parts[0].sh.idx
	bctx := context.WithoutCancel(ctx)

	var (
		votes    = make(chan error, n)
		done     = make(chan struct{}, n)
		decided  = make(chan struct{})
		decide   sync.Once
		commit   atomic.Bool
		decision error // the vote that aborted (or the decision append error); written before decided closes

		// begun[i] closes when participant i's body is running — i.e.
		// its shard token is held. Participant i+1 enters only then.
		begun = make([]chan struct{}, n)

		prepares atomic.Uint64 // PREPARE records written (durable stores)
	)
	for i := range begun {
		begun[i] = make(chan struct{})
	}

	run := func(i int) error {
		p := parts[i]
		var began, voted sync.Once
		begin := func() { began.Do(func() { close(begun[i]) }) }
		vote := func(err error) { voted.Do(func() { votes <- err }) }

		if i > 0 {
			<-begun[i-1]
		}
		err := p.sh.tm.AtomicCtx(bctx, func(tx *core.Tx) error {
			begin()
			rec, aerr := p.apply(tx, nil)
			logged := false
			if aerr == nil && durable && len(rec) > 0 {
				// Append blocks until the record is durable: a PREPARE is
				// only a vote once it cannot be lost.
				if aerr = p.sh.wal.Append(wal.AppendPrepare(nil, epoch, coord, rec)); aerr == nil {
					prepares.Add(1)
					logged = true
				}
			}
			vote(aerr)

			if i == 0 {
				// Coordinator: collect every vote (its own included),
				// decide, and make the decision durable before anyone
				// learns it.
				var ferr error
				for j := 0; j < n; j++ {
					if verr := <-votes; verr != nil && ferr == nil {
						ferr = verr
					}
				}
				if ferr == nil && durable && prepares.Load() > 0 {
					// The commit point. If this append fails the outcome
					// is unknown on disk; abort in memory — recovery will
					// roll the participants' prepares back, matching.
					ferr = p.sh.wal.Append(wal.AppendDecision(nil, epoch))
				}
				decide.Do(func() {
					decision = ferr
					commit.Store(ferr == nil)
					close(decided)
				})
				if ferr != nil {
					return ferr // aborts the coordinator's own share
				}
				// Hold the token until every participant's COMMIT mark is
				// durable (see the package comment on truncation safety).
				for j := 1; j < n; j++ {
					<-done
				}
				return nil
			}

			<-decided
			if !commit.Load() {
				return errXShardAbort // aborts this shard's share
			}
			if logged {
				// The decision already committed this prepare; the mark
				// only spares the next recovery a coordinator lookup. An
				// append failure here is NOT an abort — log and move on,
				// the wal's sticky error will surface loudly enough.
				if werr := p.sh.wal.Append(wal.AppendCommitMark(nil, epoch)); werr != nil && s.logf != nil {
					s.logf("polyserve: shard %d: commit mark epoch=%d: %v", p.sh.idx, epoch, werr)
				}
			}
			done <- struct{}{}
			return nil
		}, core.WithSemantics(core.Irrevocable), core.WithLabel(label))

		// If the engine refused the transaction outright the body never
		// ran: the chain, the vote, and (for the coordinator) the
		// decision are still owed, or everyone else hangs.
		begin()
		vote(err)
		if i == 0 {
			decide.Do(func() {
				decision = err
				close(decided)
			})
		}
		return err
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(i)
		}(i)
	}
	errs[0] = run(0)
	wg.Wait()

	if commit.Load() {
		return nil
	}
	s.xshardAborts.Add(1)
	if decision != nil {
		return decision
	}
	for _, err := range errs {
		if err != nil && !errors.Is(err, errXShardAbort) {
			return err
		}
	}
	return errXShardAbort
}

// sessionTrack reports whether cross-shard commits must collect
// session changes: a watch is live, or some shard has armed TTL
// deadlines a SET/DEL/FLUSH would have to disarm.
func (s *Store) sessionTrack(tab *routingTable) bool {
	if s.sessions.ActiveWatches() > 0 {
		return true
	}
	for _, sh := range tab.shards {
		if sh.ttl.Len() > 0 {
			return true
		}
	}
	return false
}

// partSess is one cross-shard participant's session side: the changes
// its share collected and the notifier slot its body reserved (under
// its token, so the slot sits at the participant's commit position).
// The slots resolve after crossShard returns — Commit on success,
// Cancel on abort — exactly the walCapture lifecycle, hand-rolled
// because cross-shard bodies build prepare records, not captures.
type partSess struct {
	sh   *shard
	chs  []session.Change
	slot uint64
	on   bool
}

// reserve takes the participant's notifier slot if it collected any
// changes. Called as the apply body's last step, under the token.
func (ps *partSess) reserve() {
	if ps != nil && len(ps.chs) > 0 {
		ps.slot = ps.sh.notif.Reserve()
		ps.on = true
	}
}

// resolveSess resolves every reserved participant slot: delivery on
// commit (waiting until watchers and TTL tables have it, like a
// single-shard ack), tombstone on abort.
func resolveSess(parts []*partSess, commit bool) {
	for _, ps := range parts {
		if !ps.on {
			continue
		}
		if commit {
			ps.sh.notif.Commit(ps.slot, ps.chs)
		} else {
			ps.sh.notif.Cancel(ps.slot)
		}
	}
	if commit {
		for _, ps := range parts {
			if ps.on {
				ps.sh.notif.Wait(ps.slot)
			}
		}
	}
}

// txnCross commits a TXN batch spanning shards of the snapshot table.
// Sub-responses are pre-created so the per-shard bodies write disjoint
// slots. Each participant re-checks table freshness under its token: a
// cutover that published a newer table between grouping and commit
// means some key may have a new owner (or FLUSH would miss a brand-new
// shard), so the whole unit aborts with errMovedKey and the dispatcher
// retries through the current table.
func (s *Store) txnCross(ctx context.Context, tab *routingTable, batch []wire.Request, resp *wire.Response) {
	resp.Batch = resp.Batch[:0]
	for i := range batch {
		sub := appendSub(resp)
		sub.SubOp = batch[i].Op
	}
	groups := make([][]int, len(tab.shards))
	for i := range batch {
		si := tab.pos(hashKey(batch[i].Key))
		groups[si] = append(groups[si], i)
	}
	track := s.sessionTrack(tab)
	parts := make([]xpart, 0, len(tab.shards))
	sess := make([]*partSess, 0, len(tab.shards))
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sh := tab.shards[si]
		sh.routed.Add(uint64(len(idxs)))
		idxs := idxs
		ps := &partSess{sh: sh}
		sess = append(sess, ps)
		parts = append(parts, xpart{sh: sh, apply: func(tx *core.Tx, rec []byte) ([]byte, error) {
			if s.tab() != tab {
				return rec, errMovedKey
			}
			resharding := sh.resharding.Load()
			for _, j := range idxs {
				out := &resp.Batch[j]
				out.Status = wire.StatusOK
				out.Val = out.Val[:0]
				err := applySubOp(tx, sh, &batch[j], out, func(kind wal.OpKind, key, val []byte) {
					switch kind {
					case wal.OpSet:
						rec = wal.AppendSet(rec, key, val)
						if track {
							ps.chs = append(ps.chs, session.Change{Op: wire.EventSet, Key: string(key)})
						}
					case wal.OpDel:
						rec = wal.AppendDel(rec, key)
						if track {
							ps.chs = append(ps.chs, session.Change{Op: wire.EventDel, Key: string(key)})
						}
					}
					if sh.wal != nil {
						sh.dirty.mark(key)
					}
					if resharding {
						sh.rdirty.mark(key)
					}
				})
				if err != nil {
					return rec, err
				}
			}
			ps.reserve()
			return rec, nil
		}})
	}
	if err := s.crossShard(ctx, parts, "xshard-txn"); err != nil {
		resolveSess(sess, false)
		resp.Batch = resp.Batch[:0]
		errInto(resp, err)
		return
	}
	resolveSess(sess, true)
	resp.Status = wire.StatusOK
}

// adminCross runs FLUSH or REBUILD across every shard as one
// cross-shard commit, summing the per-shard counts into resp.N. Like
// txnCross, each participant re-checks table freshness under its token
// so a FLUSH can never miss a shard a concurrent split just published.
func (s *Store) adminCross(ctx context.Context, tab *routingTable, kind wal.OpKind, resp *wire.Response) {
	var total atomic.Uint64
	track := s.sessionTrack(tab)
	parts := make([]xpart, len(tab.shards))
	sess := make([]*partSess, len(tab.shards))
	for i, sh := range tab.shards {
		sh.routed.Add(1)
		sh := sh
		ps := &partSess{sh: sh}
		sess[i] = ps
		parts[i] = xpart{sh: sh, apply: func(tx *core.Tx, rec []byte) ([]byte, error) {
			if s.tab() != tab {
				return rec, errMovedKey
			}
			var n int
			var err error
			if kind == wal.OpFlush {
				n, err = sh.m.ClearTx(tx)
			} else {
				n, err = sh.m.RebuildTx(tx)
			}
			if err != nil {
				return rec, err
			}
			total.Add(uint64(n))
			if kind == wal.OpFlush {
				// A flush empties the delta vocabulary's hands — force the
				// next checkpoint to a full base (see dirtySet).
				if sh.wal != nil {
					sh.dirty.markFlush()
				}
				if sh.resharding.Load() {
					// Tell the copy protocol everything it shipped so far
					// is void (see the delta loop in reshard.go).
					sh.rdirty.markFlush()
				}
				if track {
					// Every participant's change clears its own TTL table;
					// only shard 0's delivery publishes the single FLUSH
					// event watchers see (see applyChanges).
					ps.chs = append(ps.chs, session.Change{Op: wire.EventFlush})
				}
				ps.reserve()
				return wal.AppendFlush(rec), nil
			}
			// REBUILD keeps every key: no events, deadlines stay armed.
			return wal.AppendRebuild(rec), nil
		}}
	}
	label := "xshard-flush"
	if kind == wal.OpRebuild {
		label = "xshard-rebuild"
	}
	if err := s.crossShard(ctx, parts, label); err != nil {
		resolveSess(sess, false)
		errInto(resp, err)
		return
	}
	resolveSess(sess, true)
	resp.N = total.Load()
	resp.Status = wire.StatusOK
}
