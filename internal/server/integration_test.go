package server_test

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"polytm/internal/core"
	"polytm/internal/server"
	"polytm/internal/wire"
)

// TestMixedTrafficIntegration is the subsystem's acceptance experiment:
// ≥8 concurrent client connections drive mixed GET/SCAN/SET/CAS/admin
// traffic through a loopback polyserve. Per connection it asserts
// linearizable read-your-writes (every snapshot GET that follows a SET
// on the same connection observes it); afterwards it asserts the exact
// final store contents; and it verifies through the engine's sharded
// per-semantics stats that the snapshot read class committed without a
// single abort while the def write class was aborting — the paper's
// polymorphic schedule-acceptance gap measured on real wire traffic.
// Run with -race.
func TestMixedTrafficIntegration(t *testing.T) {
	// Force real goroutine interleaving even on a single-CPU runner: the
	// def-abort assertion needs transactions to genuinely overlap.
	if old := runtime.GOMAXPROCS(0); old < 4 {
		runtime.GOMAXPROCS(4)
		defer runtime.GOMAXPROCS(old)
	}
	srv, addr := startServer(t, server.Config{Shards: 4})

	const (
		conns       = 10 // ≥ 8 concurrent client connections
		opsPerConn  = 120
		hotKeys     = 2 // tiny hot set so def writers genuinely conflict
		casAttempts = 40
	)

	// Phase 0: seed a little state, then FLUSH it away (admin traffic,
	// irrevocable) so the final-contents accounting starts from zero.
	seed := dialTest(t, addr)
	for i := 0; i < 5; i++ {
		if err := seed.Set([]byte(fmt.Sprintf("seed%d", i)), []byte("x")); err != nil {
			t.Fatalf("seed set: %v", err)
		}
	}
	if n, err := seed.Flush(); err != nil || n != 5 {
		t.Fatalf("flush = %d, %v; want 5", n, err)
	}
	for k := 0; k < hotKeys; k++ {
		if err := seed.Set([]byte("hot"+strconv.Itoa(k)), []byte("0")); err != nil {
			t.Fatalf("hot seed: %v", err)
		}
	}

	// Phase 1: mixed traffic. Each worker owns ONE connection (pool size
	// 1), so the read-your-writes assertion is genuinely per-connection.
	incs := make([]uint64, conns) // successful hot-key increments per conn
	var wg sync.WaitGroup
	errCh := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := dialTest(t, addr)
			for i := 0; i < opsPerConn; i++ {
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				val := []byte(fmt.Sprintf("v%d.%d", w, i))
				// SET (def) ...
				if err := cl.Set(key, val); err != nil {
					errCh <- fmt.Errorf("conn %d: set: %w", w, err)
					return
				}
				// ... then GET (snapshot) on the same connection MUST see
				// it: the snapshot's read timestamp is taken after the
				// previous commit on this connection completed.
				got, ok, err := cl.Get(key)
				if err != nil {
					errCh <- fmt.Errorf("conn %d: get: %w", w, err)
					return
				}
				if !ok || string(got) != string(val) {
					errCh <- fmt.Errorf("conn %d: read-your-writes violated at op %d: got %q,%v want %q",
						w, i, got, ok, val)
					return
				}
				// SCAN (weak/elastic): this worker's own prefix must come
				// back complete and ordered — every key it wrote so far is
				// committed, and nobody else writes that prefix.
				if i%20 == 19 {
					prefix := fmt.Sprintf("w%02d-", w)
					pairs, err := cl.Scan([]byte(prefix), []byte(prefix+"~"), 0)
					if err != nil {
						errCh <- fmt.Errorf("conn %d: scan: %w", w, err)
						return
					}
					if len(pairs) != i+1 {
						errCh <- fmt.Errorf("conn %d: scan after op %d saw %d own keys, want %d",
							w, i, len(pairs), i+1)
						return
					}
					for j := 1; j < len(pairs); j++ {
						if string(pairs[j-1].Key) >= string(pairs[j].Key) {
							errCh <- fmt.Errorf("conn %d: scan out of order: %q !< %q",
								w, pairs[j-1].Key, pairs[j].Key)
							return
						}
					}
				}
				// Admin traffic (irrevocable REBUILD) rides along from one
				// connection: content-preserving structural maintenance
				// concurrent with everything above.
				if w == 0 && i%30 == 29 {
					if _, err := cl.Rebuild(); err != nil {
						errCh <- fmt.Errorf("conn %d: rebuild: %w", w, err)
						return
					}
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	for w := 0; w < conns; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: contended def writers. Three traffic shapes overlap:
	//
	//   - conn 0 issues back-to-back irrevocable REBUILDs; each rebuild
	//     commit rewrites the skip list's head towers, so any def
	//     transaction whose span straddles it fails validation;
	//   - conns 1..3 run LONG def TXN batches that read the hot keys and
	//     rewrite their own keys (same values — contents stay exact); a
	//     hot-key write or rebuild committing mid-batch aborts them;
	//   - every conn CAS-increments the tiny hot set, so the hot keys
	//     keep changing under the batch readers.
	//
	// Meanwhile every CAS is fed by a snapshot GET that can never abort.
	// The round repeats (bounded) until the engine has recorded def
	// aborts, so the assertion below cannot flake on a lucky
	// interleaving; the exactness accounting uses the dynamic total of
	// successful increments.
	contentionRound := func() {
		var wg2 sync.WaitGroup
		for w := 0; w < conns; w++ {
			wg2.Add(1)
			go func(w int) {
				defer wg2.Done()
				cl := dialTest(t, addr)
				if w == 0 {
					// Admin storm: irrevocable whole-store rebuilds.
					for i := 0; i < 10; i++ {
						if _, err := cl.Rebuild(); err != nil {
							errCh <- fmt.Errorf("conn %d: rebuild: %w", w, err)
							return
						}
					}
					errCh <- nil
					return
				}
				if w <= 3 {
					// Long def batches: read the hot set many times, then
					// rewrite this worker's own keys with their current
					// values (a wide read+write footprint, zero net change).
					for i := 0; i < 10; i++ {
						var batch []wire.Request
						for j := 0; j < 24; j++ {
							batch = append(batch, wire.Request{Op: wire.OpGet,
								Key: []byte("hot" + strconv.Itoa(j%hotKeys))})
						}
						for j := 0; j < 24; j++ {
							k := (i*24 + j) % opsPerConn
							batch = append(batch, wire.Request{Op: wire.OpSet,
								Key: []byte(fmt.Sprintf("w%02d-%04d", w, k)),
								Val: []byte(fmt.Sprintf("v%d.%d", w, k))})
						}
						if _, err := cl.Txn(batch...); err != nil {
							errCh <- fmt.Errorf("conn %d: batch: %w", w, err)
							return
						}
					}
				}
				for i := 0; i < casAttempts; i++ {
					key := []byte("hot" + strconv.Itoa((w+i)%hotKeys))
					for {
						cur, ok, err := cl.Get(key)
						if err != nil || !ok {
							errCh <- fmt.Errorf("conn %d: hot get: %v ok=%v", w, err, ok)
							return
						}
						n, err := strconv.Atoi(string(cur))
						if err != nil {
							errCh <- fmt.Errorf("conn %d: hot value %q: %w", w, cur, err)
							return
						}
						swapped, found, _, err := cl.CAS(key, cur, []byte(strconv.Itoa(n+1)))
						if err != nil || !found {
							errCh <- fmt.Errorf("conn %d: hot cas: %v found=%v", w, err, found)
							return
						}
						if swapped {
							incs[w]++
							break
						}
					}
				}
				errCh <- nil
			}(w)
		}
		wg2.Wait()
		for w := 0; w < conns; w++ {
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
		}
	}
	for round := 0; round < 8; round++ {
		contentionRound()
		if srv.Stats().Sem(core.Def).Aborts > 0 {
			break
		}
	}

	// Exact final contents: every private key with its last value, plus
	// the hot keys summing exactly to the successful increments.
	expect := make(map[string]string, conns*opsPerConn+hotKeys)
	for w := 0; w < conns; w++ {
		for i := 0; i < opsPerConn; i++ {
			expect[fmt.Sprintf("w%02d-%04d", w, i)] = fmt.Sprintf("v%d.%d", w, i)
		}
	}
	var totalIncs uint64
	for _, n := range incs {
		totalIncs += n
	}
	if totalIncs < uint64((conns-1)*casAttempts) {
		t.Fatalf("increment accounting: %d successes, want >= %d", totalIncs, (conns-1)*casAttempts)
	}
	hotTotal := 0
	pairs, err := seed.Scan(nil, nil, 0)
	if err != nil {
		t.Fatalf("final scan: %v", err)
	}
	got := make(map[string]string, len(pairs))
	prev := ""
	for _, kv := range pairs {
		k := string(kv.Key)
		if prev != "" && k <= prev {
			t.Fatalf("final scan out of order: %q after %q", k, prev)
		}
		prev = k
		got[k] = string(kv.Val)
	}
	for k := 0; k < hotKeys; k++ {
		name := "hot" + strconv.Itoa(k)
		n, err := strconv.Atoi(got[name])
		if err != nil {
			t.Fatalf("hot key %s final value %q", name, got[name])
		}
		hotTotal += n
		delete(got, name)
	}
	if uint64(hotTotal) != totalIncs {
		t.Fatalf("hot keys sum to %d, want %d (every successful CAS exactly once)", hotTotal, totalIncs)
	}
	if len(got) != len(expect) {
		t.Fatalf("final store has %d non-hot keys, want %d", len(got), len(expect))
	}
	for k, v := range expect {
		if got[k] != v {
			t.Fatalf("final store %q = %q, want %q", k, got[k], v)
		}
	}

	// The polymorphism dividend, read off the engine's sharded stats:
	// the snapshot class (all those GETs) committed with ZERO aborts
	// while the def class (the contended writers) was aborting, and the
	// irrevocable admin class never aborted either.
	s := srv.Stats()
	snap := s.Sem(core.Snapshot)
	def := s.Sem(core.Def)
	irr := s.Sem(core.Irrevocable)
	weak := s.Sem(core.Weak)
	if snap.Commits == 0 {
		t.Fatal("no snapshot commits recorded — GETs did not run under snapshot semantics")
	}
	if snap.Aborts != 0 {
		t.Fatalf("snapshot class aborted %d times; the multi-versioned read path must never abort", snap.Aborts)
	}
	if def.Aborts == 0 {
		t.Fatalf("def class never aborted under %d contended writers — contention phase ineffective (stats: %s)",
			conns, s.PerSemString())
	}
	if weak.Commits == 0 {
		t.Fatal("no weak commits recorded — SCANs did not run elastically")
	}
	if irr.Commits == 0 || irr.Aborts != 0 {
		t.Fatalf("irrevocable class commits=%d aborts=%d; admin ops must commit first try", irr.Commits, irr.Aborts)
	}
	t.Logf("per-semantics stats: %s", s.PerSemString())
}
