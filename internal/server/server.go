// Package server implements polyserve: a TCP transactional key-value
// server whose request classes map onto the four transaction semantics
// of the polymorphic TM (see DefaultSemantics). It is the paper's
// start(p) made network-facing: point reads, range scans, writes, and
// admin operations from many concurrent connections become transactions
// of distinct semantics running over one shared memory, accepting
// schedules no monomorphic server could.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"polytm/internal/core"
	"polytm/internal/repl"
	"polytm/internal/stm"
	"polytm/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// TM, when non-nil, is used directly and pins the store to a single
	// keyspace shard; otherwise one TM per store shard is built from
	// Shards and Nesting.
	TM *core.TM
	// Shards is the engine stripe count (0 = GOMAXPROCS default),
	// per store shard. Distinct from StoreShards: Shards stripes one
	// engine's metadata locks; StoreShards partitions the keyspace.
	Shards int
	// StoreShards is the keyspace partition count (0 or 1 = a single
	// shard). Each store shard owns its own engine, map, and — when
	// durable — write-ahead log; see Store.
	StoreShards int
	// Nesting is the TM's nesting-composition policy.
	Nesting core.NestingPolicy
	// MaxConns bounds concurrently served connections (the handler
	// pool); excess accepted connections wait for a slot. 0 means 1024.
	MaxConns int
	// MaxFrame caps request frame payloads; 0 means wire.MaxFrame.
	MaxFrame int
	// WatchBuffer bounds each watch session's event push buffer; a
	// session that overflows it is cut with EVENT-LOST rather than ever
	// blocking a commit. 0 means session.DefaultBuffer.
	WatchBuffer int
	// TTLReapEvery is the background TTL reaper cadence
	// (0 = DefaultReapEvery; negative disables the reaper — lazy expiry
	// still hides expired keys from reads).
	TTLReapEvery time.Duration
	// SessionTimeouts is the watch-session liveness budget (zero fields
	// take the repl defaults): Idle is the server's PING cadence on an
	// otherwise-quiet session, and the session is cut when
	// Idle + 2×Reply passes without a frame from the client.
	SessionTimeouts repl.Timeouts
	// Logf, when non-nil, receives connection-level diagnostics.
	Logf func(format string, args ...any)
}

// Server is one polyserve instance.
type Server struct {
	cfg   Config
	store *Store
	slots chan struct{}

	// serveCtx parents every connection's request context; cancelServe
	// abandons all in-flight transactions at once (forced drain). The
	// per-connection child context is additionally cancelled when its
	// handler exits, so a disconnect stops that connection's work.
	serveCtx    context.Context
	cancelServe context.CancelFunc

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool

	// Replication wiring (see replication.go): a primary owns a hub
	// serving follower feeds, a follower owns the link to its primary.
	hub      *repl.Hub
	follower *repl.Follower
	replCfg  ReplConfig

	wg sync.WaitGroup
}

// New creates a server (not yet listening).
func New(cfg Config) *Server {
	n := cfg.StoreShards
	if n <= 0 || cfg.TM != nil {
		n = 1
	}
	tms := make([]*core.TM, n)
	if cfg.TM != nil {
		tms[0] = cfg.TM
	} else {
		for i := range tms {
			tms[i] = core.New(core.Config{Shards: cfg.Shards, Nesting: cfg.Nesting})
		}
		cfg.TM = tms[0]
	}
	if cfg.MaxConns <= 0 {
		cfg.MaxConns = 1024
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = wire.MaxFrame
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{
		cfg:         cfg,
		store:       NewShardedStore(tms),
		slots:       make(chan struct{}, cfg.MaxConns),
		serveCtx:    ctx,
		cancelServe: cancel,
		conns:       make(map[net.Conn]struct{}),
	}
	srv.store.StartTTLReaper(cfg.TTLReapEvery)
	return srv
}

// TM returns shard 0's transactional memory (stats, tests; see Stats
// for the all-shards aggregate).
func (s *Server) TM() *core.TM { return s.cfg.TM }

// Stats aggregates the engine counters across every store shard.
func (s *Server) Stats() stm.StatsSnapshot { return s.store.Stats() }

// Store returns the server's keyspace.
func (s *Server) Store() *Store { return s.store }

// Addr returns the bound listener address, or nil before Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// logf emits a diagnostic when configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// ListenAndServe binds addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after a Shutdown.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown. Each connection is
// handled by one goroutine from the bounded handler pool.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		c, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.shutdown
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		// Claim a handler-pool slot (bounds live goroutines and engine
		// pressure under accept floods).
		select {
		case s.slots <- struct{}{}:
		default:
			s.logf("polyserve: handler pool full, connection from %v waits", c.RemoteAddr())
			s.slots <- struct{}{}
		}

		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			<-s.slots
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.handle(c)
	}
}

// handle runs one connection's request loop: read frame, execute, queue
// the response, flushing whenever the pipeline drains (the response
// writer is buffered so pipelined requests batch their replies).
//
// The loop owns one payload buffer, one decoded Request, one Response
// and one response-frame encoding buffer, all reused for every request
// on the connection — steady-state request handling performs no
// per-frame allocation at this layer. The reuse is safe because the
// pipeline is strictly sequential: a request is fully executed and its
// response fully encoded into the write buffer before the next frame is
// read over the payload storage.
func (s *Server) handle(c net.Conn) {
	defer func() {
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		<-s.slots
		s.wg.Done()
	}()

	// The connection's request context: every transaction this handler
	// runs is bounded by it. It is cancelled when the handler exits
	// (disconnects are observed at the next read or write — the
	// handler is the one goroutine driving the pipeline, so a
	// mid-transaction disconnect is noticed once that request's
	// response fails to write) and by the server's forced drain
	// (serveCtx), which is what releases a transaction parked in a
	// retry loop or a lock wait.
	ctx, cancel := context.WithCancel(s.serveCtx)
	defer cancel()

	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var (
		payload []byte        // reusable frame payload storage
		req     wire.Request  // reusable decoded request
		resp    wire.Response // reusable response
		out     []byte        // reusable response-frame encoding
	)
	for {
		var err error
		payload, err = wire.ReadFrameBuf(br, payload, s.cfg.MaxFrame)
		if err != nil {
			// Responses already executed (and committed) must reach the
			// client even when the read that follows them fails — e.g. a
			// shutdown deadline landing on a partially received frame.
			bw.Flush()
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// The stream cannot be resynchronized past an oversize
				// length prefix, so the connection must end — but the
				// client still gets one typed refusal before the cut.
				resetResponse(&resp)
				errInto(&resp, &wire.ProtocolError{Code: wire.ProtoOversize, Detail: err.Error()})
				if fr, e := wire.AppendResponseFrame(out[:0], wire.OpGet, &resp); e == nil {
					bw.Write(fr)
					bw.Flush()
				}
				s.logf("polyserve: %v: read: %v", c.RemoteAddr(), err)
				return
			}
			// EOF and shutdown-induced deadlines end the connection
			// silently; anything else is worth a diagnostic.
			if !isExpectedClose(err) {
				s.logf("polyserve: %v: read: %v", c.RemoteAddr(), err)
			}
			return
		}
		var op wire.Op
		if err := wire.DecodeRequestInto(&req, payload); err != nil {
			// A malformed frame still gets a 1:1 typed reply: the framing
			// survived, so the pipeline stays aligned and the connection
			// lives on. Unknown opcodes get their own code so clients can
			// tell "server too old" from "I sent garbage".
			op = wire.OpGet
			resetResponse(&resp)
			code := wire.ProtoMalformed
			if errors.Is(err, wire.ErrBadOp) {
				code = wire.ProtoUnknownOp
			}
			errInto(&resp, &wire.ProtocolError{Code: code, Detail: err.Error()})
		} else if req.Op == wire.OpWatch {
			// WATCH takes the connection over: the OK response carries the
			// first watch id, then the session's writer goroutine pushes
			// EVENT frames until either side cuts (see session.go).
			s.serveWatch(c, br, bw, &req)
			return
		} else if req.Op == wire.OpSubscribeWAL {
			// A replication subscribe takes the connection over: answer
			// the handshake, then the hub streams frames until either
			// side drops. With no hub, fall through to the execution
			// path's typed refusal like any other request.
			if h := s.replHub(); h != nil {
				s.serveSubscribe(c, br, bw, h)
				return
			}
			op = req.Op
			s.store.ExecuteCtx(ctx, &req, &resp)
		} else {
			op = req.Op
			s.store.ExecuteCtx(ctx, &req, &resp)
		}
		out, err = wire.AppendResponseFrame(out[:0], op, &resp)
		if err != nil {
			resetResponse(&resp)
			errInto(&resp, err)
			out, _ = wire.AppendResponseFrame(out[:0], op, &resp)
		}
		if _, err := bw.Write(out); err != nil {
			s.logf("polyserve: %v: write: %v", c.RemoteAddr(), err)
			return
		}
		// Flush before the next read would block: everything the client
		// pipelined is answered in one burst.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				if !isExpectedClose(err) {
					s.logf("polyserve: %v: flush: %v", c.RemoteAddr(), err)
				}
				return
			}
		}
	}
}

// isExpectedClose reports whether err is a normal connection-end: EOF,
// a closed socket, or the read deadline Shutdown uses to unblock
// handlers.
func isExpectedClose(err error) bool {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// Shutdown stops accepting, unblocks idle connection handlers, and
// waits for in-flight requests to finish. If ctx expires first, the
// serving context is cancelled — every in-flight transaction aborts
// cleanly at its next cancellation point (its writes are discarded, so
// nothing is ever half-committed) — and the remaining connections are
// force-closed. During the graceful phase in-flight requests complete
// their response before their handler observes the shutdown; the
// engine's irrevocable transactions are never abandoned midway in
// either phase (a begun irrevocable transaction ignores cancellation
// by contract).
func (s *Server) Shutdown(ctx context.Context) error {
	// Replication first: feeds and links hold connections open in
	// handler goroutines; closing the hub/link lets them drain with the
	// rest. The TTL reaper stops too — draining requests stay correct
	// without it (lazy expiry), and a reap mid-teardown has no one left
	// to tell.
	s.closeReplication()
	s.store.StopTTLReaper()
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	// A read deadline in the past makes every handler's next blocking
	// read return a timeout; handlers finish the request they are on,
	// flush, and exit.
	for c := range s.conns {
		c.SetReadDeadline(time.Now().Add(-time.Second))
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Forced drain: abandon in-flight transactions through the
		// context plumbing FIRST (they abort between attempts and wake
		// from backoff/Retry waits), then cut the sockets.
		s.cancelServe()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: shutdown forced: %w", ctx.Err())
	}
}
