package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/server/client"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// ckptCrashEnv marks the re-executed test binary as the victim process
// of TestCheckpointChainCrash; its value is the WAL directory.
const ckptCrashEnv = "POLYSERVE_CKPT_CRASH_DIR"

// ckptCrashWindow is the churn keyspace width: every write lands on
// slot i % window, so the store is 100% churn and every checkpoint
// cycle exercises the delta path.
const ckptCrashWindow = 512

// ckptCrashKey formats churn slot s.
func ckptCrashKey(s int) string { return fmt.Sprintf("churn-%04d", s) }

// ckptCrashChild runs a durable polyserve tuned so the SIGKILL races
// the incremental-checkpoint machinery: checkpoints every 5ms and a
// chain bound of 2, so delta installs, compactions, and segment
// cleanups are all in flight more or less continuously. The workload
// rewrites a fixed window of slots with the sequence number, which
// makes the exact post-crash state a pure function of the durable
// prefix length.
func ckptCrashChild(dir string) {
	srv := New(Config{Shards: 1})
	if _, err := srv.Store().EnableDurability(Durability{
		Dir:             dir,
		Fsync:           wal.ModeAlways,
		CheckpointEvery: 5 * time.Millisecond,
		MaxChain:        2,
	}); err != nil {
		fmt.Printf("CHILD-ERR enable durability: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD-ERR listen: %v\n", err)
		os.Exit(1)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		fmt.Printf("CHILD-ERR dial: %v\n", err)
		os.Exit(1)
	}
	for i := 1; ; i++ {
		slot := i % ckptCrashWindow
		if err := cl.Set([]byte(ckptCrashKey(slot)), []byte(strconv.Itoa(i))); err != nil {
			fmt.Printf("CHILD-ERR set %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("ACK %d\n", i)
	}
}

// TestCheckpointChainCrash is the crash-safety acceptance experiment
// for incremental checkpoints: SIGKILL a server whose base + delta
// chain is being cut, compacted, and cleaned on a 5ms cadence, then
// recover the directory through that chain and demand the state of an
// exact durable prefix — every slot holding precisely the last value
// the prefix wrote to it, nothing stale resurrected from a dead delta,
// nothing lost below the last acknowledgement.
func TestCheckpointChainCrash(t *testing.T) {
	if dir := os.Getenv(ckptCrashEnv); dir != "" {
		ckptCrashChild(dir) // never returns
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCheckpointChainCrash$", "-test.v")
	cmd.Env = append(os.Environ(), ckptCrashEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Let the workload wrap the churn window a couple of times (so real
	// overwrites are flowing through deltas), then SIGKILL mid-stream.
	// Acks already in the pipe still count — the client saw them.
	const killAfter = 2*ckptCrashWindow + 100
	lastAck := 0
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD-ERR") {
			t.Fatalf("crash child failed: %s", line)
		}
		n, ok := strings.CutPrefix(line, "ACK ")
		if !ok {
			continue
		}
		v, err := strconv.Atoi(n)
		if err != nil {
			continue
		}
		lastAck = v
		if v == killAfter {
			cmd.Process.Kill() // SIGKILL: no shutdown path runs
		}
	}
	cmd.Wait() // the kill makes this an error by design
	if lastAck < killAfter {
		t.Fatalf("child died after only %d acks (wanted >= %d)", lastAck, killAfter)
	}
	t.Logf("killed child after ACK %d", lastAck)

	// Recover through whatever base + deltas + tail the kill left.
	st := NewStore(core.NewDefault())
	res, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.CloseDurability()
	t.Logf("recovery: %s", res.Shards[0])

	// The recovered state must be EXACTLY prefix 1..N for some N >=
	// lastAck: slot s holds the largest i <= N with i == s (mod W), or
	// is absent when that i would be below 1.
	got := scanAll(t, st)
	n := 0
	for k, v := range got {
		i, err := strconv.Atoi(v)
		if err != nil || i < 1 {
			t.Fatalf("recovered %s = %q: not a sequence number", k, v)
		}
		if want := ckptCrashKey(i % ckptCrashWindow); k != want {
			t.Fatalf("recovered %s = %q, but %d belongs to %s", k, v, i, want)
		}
		if i > n {
			n = i
		}
	}
	if n < lastAck {
		t.Fatalf("recovered prefix ends at %d < %d acknowledged — durable writes lost", n, lastAck)
	}
	for s := 0; s < ckptCrashWindow; s++ {
		i := n - (n-s)%ckptCrashWindow // largest i <= n, i == s (mod W)
		if i < 1 {
			if v, ok := got[ckptCrashKey(s)]; ok {
				t.Fatalf("slot %d never written by prefix %d but holds %q", s, n, v)
			}
			continue
		}
		if v := got[ckptCrashKey(s)]; v != strconv.Itoa(i) {
			t.Fatalf("slot %d = %q, want %d (prefix %d)", s, v, i, n)
		}
	}

	// The recovered chain must be live: it accepts writes and can cut
	// the next checkpoint on top of whatever it loaded.
	execOK(t, st, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("post-crash"), Val: []byte("ok")})
	if err := st.Checkpoint(context.Background()); err != nil {
		t.Fatalf("post-recovery checkpoint: %v", err)
	}
}
