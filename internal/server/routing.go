package server

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// ---- epoch-versioned routing ----
//
// The keyspace is partitioned by extendible hashing: each shard owns
// the hash slice (mod, res) — every key whose FNV-1a hash h satisfies
// h % mod == res. A fresh N-shard store gives shard i the slice
// (N, i), which is exactly the historical h % N routing. A SPLIT of a
// shard owning (M, r) halves its slice: the source keeps (2M, r) and
// the new shard takes (2M, r+M) — a key's owner changes only between
// those two, so the rest of the keyspace never moves. A MERGE is the
// inverse, legal only for such a buddy pair.
//
// The live table is immutable once published: every request snapshots
// one *routingTable pointer and groups, fans out, and 2PCs against
// that one consistent view. A reshard publishes a fresh table (epoch
// incremented) while still holding the frozen shard's irrevocable
// token, so a mutation that raced the cutover re-checks ownership
// inside its transaction body and retries through the new table (see
// errMovedKey) instead of writing to a shard that no longer owns its
// key.

// hashSlice is one shard's share of the keyspace: every key whose hash
// h has h % mod == res.
type hashSlice struct {
	mod, res uint64
}

// routingTable is one immutable routing epoch: the shards in table
// order with their hash slices. Slices live in the table, NOT on the
// shard — a cutover changes the source shard's slice, and requests
// still working against the previous table must keep seeing the slice
// that table routed by.
type routingTable struct {
	epoch  uint64
	shards []*shard
	slices []hashSlice // parallel to shards

	// uniform is the shared modulus when every slice has the same one
	// (the all-splits-balanced common case, including every never-resharded
	// store): routing is then a single h % uniform. 0 when mixed.
	uniform uint64
}

// newRoutingTable builds a table, computing the uniform fast path.
// slices[i] is shards[i]'s; callers keep both sorted by residue.
func newRoutingTable(epoch uint64, shards []*shard, slices []hashSlice) *routingTable {
	t := &routingTable{epoch: epoch, shards: shards, slices: slices}
	t.uniform = slices[0].mod
	for _, sl := range slices {
		if sl.mod != t.uniform {
			t.uniform = 0
			break
		}
	}
	if t.uniform != 0 {
		// The uniform dispatch indexes by h % mod, so the table must be
		// ordered res 0..mod-1 — newRoutingTable callers keep it sorted.
		for i, sl := range slices {
			if sl.res != uint64(i) {
				t.uniform = 0
				break
			}
		}
	}
	return t
}

// pos returns the table position owning hash h.
func (t *routingTable) pos(h uint64) int {
	if t.uniform != 0 {
		return int(h % t.uniform)
	}
	for i, sl := range t.slices {
		if h%sl.mod == sl.res {
			return i
		}
	}
	// Unreachable for a well-formed table (the slices partition the
	// residue space); routing to 0 beats panicking mid-request.
	return 0
}

// shardFor returns the shard owning hash h.
func (t *routingTable) shardFor(h uint64) *shard { return t.shards[t.pos(h)] }

// byID returns the table's shard with the given stable id (nil when
// absent).
func (t *routingTable) byID(id int) *shard {
	for _, sh := range t.shards {
		if sh.idx == id {
			return sh
		}
	}
	return nil
}

// hashKey is the routing hash: FNV-1a 64 over the key bytes. It must
// be stable across restarts — it decides which shard's WAL a key's
// records live in.
func hashKey(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// hashKeyStr is hashKey for keys already materialized as strings.
func hashKeyStr(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// splitSlices derives the two child slices of splitting (mod, res):
// the source keeps (2·mod, res), the new shard takes (2·mod, res+mod).
func splitSlices(mod, res uint64) (srcMod, srcRes, dstMod, dstRes uint64) {
	return 2 * mod, res, 2 * mod, res + mod
}

// mergeable validates that slices a and b are a buddy pair — the exact
// inverse of one split — and returns the merged slice. Buddies share a
// modulus that is even, and differ in exactly the top residue bit:
// b.res == a.res + mod/2.
func mergeable(aMod, aRes, bMod, bRes uint64) (mod, res uint64, err error) {
	if aMod != bMod {
		return 0, 0, fmt.Errorf("server: MERGE of unlike moduli %d and %d", aMod, bMod)
	}
	if aMod < 2 || aMod%2 != 0 {
		return 0, 0, fmt.Errorf("server: MERGE at modulus %d has no buddy pairs", aMod)
	}
	if bRes != aRes+aMod/2 {
		return 0, 0, fmt.Errorf("server: shards with residues %d and %d (mod %d) are not buddies", aRes, bRes, aMod)
	}
	return aMod / 2, aRes, nil
}

// ---- reshard grace period ----
//
// Turning a shard's capture gate on (shard.resharding) only takes
// effect for mutations that READ the flag after it is set. A mutation
// that read the gate as closed may still be in flight, about to commit
// without the irrevocable token and without marking the reshard dirty
// set — invisible to the copy protocol. graceGate is the RCU-style
// answer: every gated mutation enters the gate for its duration, and
// the resharder, after setting the flag, waits for one full grace
// period — every mutation that entered before the flag flip has
// exited; everything after sees the flag.
type graceGate struct {
	gen atomic.Uint64
	cnt [2]atomic.Int64 // in-flight entries per generation parity
}

// enter registers an in-flight gated mutation and returns the ticket
// exit needs. The re-check handles the flip race: incrementing a slot
// whose generation just advanced would let synchronize miss us, so we
// back out and land in the new generation instead.
func (g *graceGate) enter() uint64 {
	for {
		gen := g.gen.Load()
		g.cnt[gen&1].Add(1)
		if g.gen.Load() == gen {
			return gen
		}
		g.cnt[gen&1].Add(-1)
	}
}

// exit unregisters an in-flight mutation.
func (g *graceGate) exit(gen uint64) { g.cnt[gen&1].Add(-1) }

// synchronize advances the generation and waits until every mutation
// of the previous one has exited. Callers serialize (reshardMu).
func (g *graceGate) synchronize() {
	old := g.gen.Add(1) - 1
	for g.cnt[old&1].Load() != 0 {
		runtime.Gosched()
	}
}
