package client

import (
	"context"
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"polytm/internal/wire"
)

// blackholeListener accepts connections and reads forever without ever
// answering — the pathological peer a context deadline must defend
// against.
func blackholeListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}()
		}
	}()
	return ln
}

// TestDoCtxDeadlineBecomesWireTimeout: a context deadline bounds the
// whole wire round trip; against a server that never answers, DoCtx
// returns a timeout error within the budget instead of hanging.
func TestDoCtxDeadlineBecomesWireTimeout(t *testing.T) {
	ln := blackholeListener(t)
	defer ln.Close()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cl.DoCtx(ctx, &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("k")})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("DoCtx against a black hole returned nil")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Fatalf("err = %v, want a timeout", err)
		}
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the round trip: %v", elapsed)
	}
}

// TestDoCtxCancelUnblocksRead: a cancel-only context (no deadline)
// must still interrupt a DoCtx blocked on a server that never answers —
// the context.AfterFunc yanks the socket deadline to now.
func TestDoCtxCancelUnblocksRead(t *testing.T) {
	ln := blackholeListener(t)
	defer ln.Close()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = cl.DoCtx(ctx, &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("k")})
	if err == nil {
		t.Fatal("cancelled DoCtx returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel did not unblock the read: %v", elapsed)
	}
}

// TestDoCtxAlreadyCancelled returns immediately without touching a
// connection.
func TestDoCtxAlreadyCancelled(t *testing.T) {
	ln := blackholeListener(t)
	defer ln.Close()
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.DoCtx(ctx, &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("k")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
