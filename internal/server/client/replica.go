package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"polytm/internal/wire"
)

// ReplicaSetConfig parameterizes DialReplicaSet. Zero values take the
// documented defaults.
type ReplicaSetConfig struct {
	// PoolSize is the per-endpoint connection pool cap (default 4).
	PoolSize int
	// DialTimeout bounds each connection dial (default 5s).
	DialTimeout time.Duration
	// IdlePing, when positive, health-checks pooled connections idle
	// longer than this before reuse (see WithIdlePing).
	IdlePing time.Duration
	// MaxHops bounds one write's redirect/failover chain: how many
	// endpoints it may try before giving up (default 6).
	MaxHops int
	// RetryMin/RetryMax shape the backoff between failover attempts
	// (defaults 50ms/1s, doubling).
	RetryMin, RetryMax time.Duration
}

func (c ReplicaSetConfig) withDefaults() ReplicaSetConfig {
	if c.MaxHops <= 0 {
		c.MaxHops = 6
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	return c
}

// endpoint is one server in the set: its address and a lazily dialed
// pooled client.
type endpoint struct {
	addr string
	mu   sync.Mutex
	cl   *Client
}

// client returns the endpoint's pooled client, dialing on first use
// and after a drop.
func (e *endpoint) client(opts []Option) (*Client, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cl != nil {
		return e.cl, nil
	}
	cl, err := Dial(e.addr, opts...)
	if err != nil {
		return nil, err
	}
	e.cl = cl
	return cl, nil
}

// drop discards the endpoint's client (it re-dials on next use).
func (e *endpoint) drop() {
	e.mu.Lock()
	cl := e.cl
	e.cl = nil
	e.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}

// ReplicaSet is a topology-aware client over one primary and any
// number of follower replicas:
//
//   - snapshot-class reads (Get/MGet/Scan) load-balance round-robin
//     across the replicas, falling back to the primary when a replica
//     is down (or none are configured);
//   - writes pin to the primary. A *wire.NotPrimaryError redirect is
//     followed to the address it names; a transport error triggers
//     failover — the set walks its known endpoints with backoff until
//     one accepts the write (a promoted follower) — both bounded by
//     MaxHops.
//
// The consistency contract matches the server's: replica reads are
// prefix-consistent snapshots (possibly slightly stale), exactly what
// snapshot/weak semantics already promise on the primary.
type ReplicaSet struct {
	cfg  ReplicaSetConfig
	opts []Option

	mu        sync.Mutex
	endpoints []*endpoint // endpoints[primary] is the current write target
	primary   int

	rr atomic.Uint64 // replica round-robin cursor

	failovers atomic.Uint64 // primary re-points observed by this client
}

// DialReplicaSet creates a set over the primary and its replicas. Only
// the primary is dialed eagerly; replicas dial on first read (a
// replica that is down just shifts reads to the others, or the
// primary). When the set has replicas, an unreachable primary does NOT
// fail the dial — the cluster may have failed over before this client
// started, so the first write probes the ring for the new primary
// instead.
func DialReplicaSet(primary string, replicas []string, cfg ReplicaSetConfig) (*ReplicaSet, error) {
	cfg = cfg.withDefaults()
	var opts []Option
	if cfg.PoolSize > 0 {
		opts = append(opts, WithPoolSize(cfg.PoolSize))
	}
	if cfg.DialTimeout > 0 {
		opts = append(opts, WithDialTimeout(cfg.DialTimeout))
	}
	if cfg.IdlePing > 0 {
		opts = append(opts, WithIdlePing(cfg.IdlePing, 0))
	}
	rs := &ReplicaSet{cfg: cfg, opts: opts}
	rs.endpoints = append(rs.endpoints, &endpoint{addr: primary})
	for _, r := range replicas {
		if r == "" || r == primary {
			continue
		}
		rs.endpoints = append(rs.endpoints, &endpoint{addr: r})
	}
	if _, err := rs.endpoints[0].client(opts); err != nil {
		if len(rs.endpoints) == 1 {
			return nil, err
		}
		// Leave the dead primary registered: reads already route to the
		// replicas, and the write hop loop rotates past it (following a
		// NotPrimary redirect if a replica knows who leads now).
	}
	return rs, nil
}

// Close closes every dialed endpoint.
func (rs *ReplicaSet) Close() error {
	rs.mu.Lock()
	eps := append([]*endpoint(nil), rs.endpoints...)
	rs.mu.Unlock()
	for _, e := range eps {
		e.drop()
	}
	return nil
}

// PrimaryAddr returns the current write target's address.
func (rs *ReplicaSet) PrimaryAddr() string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.endpoints[rs.primary].addr
}

// Failovers reports how many times this client re-pointed its primary.
func (rs *ReplicaSet) Failovers() uint64 { return rs.failovers.Load() }

// primaryEndpoint returns the current write target.
func (rs *ReplicaSet) primaryEndpoint() *endpoint {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.endpoints[rs.primary]
}

// setPrimary re-points the write target at addr, registering the
// address if it is new (a redirect may name an endpoint the set was
// never configured with).
func (rs *ReplicaSet) setPrimary(addr string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i, e := range rs.endpoints {
		if e.addr == addr {
			if rs.primary != i {
				rs.primary = i
				rs.failovers.Add(1)
			}
			return
		}
	}
	rs.endpoints = append(rs.endpoints, &endpoint{addr: addr})
	rs.primary = len(rs.endpoints) - 1
	rs.failovers.Add(1)
}

// advancePrimary rotates the write target to the next known endpoint
// (failover probing when no redirect address is available).
func (rs *ReplicaSet) advancePrimary(from *endpoint) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.endpoints[rs.primary] != from {
		return // someone else already moved it
	}
	rs.primary = (rs.primary + 1) % len(rs.endpoints)
	rs.failovers.Add(1)
}

// nextReplica returns the next read endpoint round-robin, preferring
// non-primary endpoints; nil when the set has no replicas.
func (rs *ReplicaSet) nextReplica() *endpoint {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	n := len(rs.endpoints)
	if n <= 1 {
		return nil
	}
	// n-1 non-primary endpoints; pick by cursor, skipping the primary.
	k := int(rs.rr.Add(1)-1) % (n - 1)
	for i, j := 0, 0; i < n; i++ {
		if i == rs.primary {
			continue
		}
		if j == k {
			return rs.endpoints[i]
		}
		j++
	}
	return nil
}

// write sends one mutating request to the primary, following
// NotPrimary redirects and failing over past dead endpoints, bounded
// by MaxHops.
func (rs *ReplicaSet) write(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	var lastErr error
	delay := rs.cfg.RetryMin
	for hop := 0; hop < rs.cfg.MaxHops; hop++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ep := rs.primaryEndpoint()
		cl, err := ep.client(rs.opts)
		if err == nil {
			var resps []*wire.Response
			resps, err = cl.DoCtx(ctx, req)
			if err == nil {
				resp := resps[0]
				var np *wire.NotPrimaryError
				if err := resp.Err(); errors.As(err, &np) {
					// The follower told us who leads: go there. With no
					// address (promotion in progress), probe the ring.
					if np.Primary != "" {
						rs.setPrimary(np.Primary)
					} else {
						rs.advancePrimary(ep)
					}
					lastErr = np
					continue
				}
				return resp, nil
			}
		}
		// Dial or transport failure: this endpoint is gone; drop its
		// pool, rotate, and back off before the next candidate.
		lastErr = err
		ep.drop()
		rs.advancePrimary(ep)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > rs.cfg.RetryMax {
			delay = rs.cfg.RetryMax
		}
	}
	return nil, fmt.Errorf("client: no reachable primary after %d attempts: %w", rs.cfg.MaxHops, lastErr)
}

// read sends one snapshot-class request to a replica (round-robin),
// falling back to the primary when the replica fails or none exist.
func (rs *ReplicaSet) read(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	if ep := rs.nextReplica(); ep != nil {
		if cl, err := ep.client(rs.opts); err == nil {
			if resps, err := cl.DoCtx(ctx, req); err == nil {
				return resps[0], nil
			}
			ep.drop()
		}
	}
	ep := rs.primaryEndpoint()
	cl, err := ep.client(rs.opts)
	if err != nil {
		return nil, err
	}
	resps, err := cl.DoCtx(ctx, req)
	if err != nil {
		return nil, err
	}
	return resps[0], nil
}

// Get reads key from a replica (snapshot semantics; prefix-consistent,
// possibly stale).
func (rs *ReplicaSet) Get(key []byte) (val []byte, ok bool, err error) {
	r, err := rs.read(context.Background(), &wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: key})
	if err != nil {
		return nil, false, err
	}
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	return r.Val, r.Status == wire.StatusOK, nil
}

// MGet reads many keys in one snapshot transaction on a replica.
func (rs *ReplicaSet) MGet(keys ...[]byte) (vals [][]byte, found []bool, err error) {
	r, err := rs.read(context.Background(), &wire.Request{Op: wire.OpMGet, Sem: wire.SemDefault, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	vals = make([][]byte, len(r.Batch))
	found = make([]bool, len(r.Batch))
	for i := range r.Batch {
		if r.Batch[i].Status == wire.StatusOK {
			vals[i] = r.Batch[i].Val
			found[i] = true
		}
	}
	return vals, found, nil
}

// Scan walks [from, to) on a replica.
func (rs *ReplicaSet) Scan(from, to []byte, limit uint64) ([]wire.KV, error) {
	r, err := rs.read(context.Background(), &wire.Request{Op: wire.OpScan, Sem: wire.SemDefault, From: from, To: to, Limit: limit})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return r.Pairs, nil
}

// Set writes key on the primary.
func (rs *ReplicaSet) Set(key, val []byte) error {
	return rs.SetCtx(context.Background(), key, val)
}

// SetCtx is Set bounded by ctx (the budget covers redirects and
// failover retries).
func (rs *ReplicaSet) SetCtx(ctx context.Context, key, val []byte) error {
	r, err := rs.write(ctx, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: key, Val: val})
	if err != nil {
		return err
	}
	return r.Err()
}

// Del removes key on the primary, reporting whether it existed.
func (rs *ReplicaSet) Del(key []byte) (bool, error) {
	r, err := rs.write(context.Background(), &wire.Request{Op: wire.OpDel, Sem: wire.SemDefault, Key: key})
	if err != nil {
		return false, err
	}
	if err := r.Err(); err != nil {
		return false, err
	}
	return r.Status == wire.StatusOK, nil
}

// Txn runs sub as one transaction on the primary.
func (rs *ReplicaSet) Txn(sub ...wire.Request) ([]wire.Response, error) {
	r, err := rs.write(context.Background(), &wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: sub})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return r.Batch, nil
}

// Stats fetches the primary's counters.
func (rs *ReplicaSet) Stats() (map[string]uint64, error) {
	ep := rs.primaryEndpoint()
	cl, err := ep.client(rs.opts)
	if err != nil {
		return nil, err
	}
	return cl.Stats()
}

// ReplicaStats fetches each replica endpoint's counters, keyed by
// address (for lag observation; endpoints that are down are skipped).
func (rs *ReplicaSet) ReplicaStats() map[string]map[string]uint64 {
	rs.mu.Lock()
	var eps []*endpoint
	for i, e := range rs.endpoints {
		if i != rs.primary {
			eps = append(eps, e)
		}
	}
	rs.mu.Unlock()
	out := make(map[string]map[string]uint64, len(eps))
	for _, e := range eps {
		cl, err := e.client(rs.opts)
		if err != nil {
			continue
		}
		m, err := cl.Stats()
		if err != nil {
			continue
		}
		out[e.addr] = m
	}
	return out
}
