package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"polytm/internal/repl"
	"polytm/internal/wire"
)

// WatchEvent is one server push: a committed mutation that matched one
// of the watcher's watches. Seq is the server-global commit-order
// sequence number — strictly increasing across every event the server
// pushes, so two watchers of the same key see identical Seq sequences.
type WatchEvent struct {
	WatchID uint64
	Seq     uint64
	Op      wire.EventOp
	Key     string
}

// ErrEventsLost reports a server-side cut: the watcher consumed too
// slowly, the session's buffer overflowed, and the server ended the
// session after telling us how many events vanished (Watcher.Lost).
var ErrEventsLost = errors.New("client: watch events lost (session cut by server)")

// WatchOption configures a Watcher.
type WatchOption func(*Watcher)

// WithWatchTimeouts sets the liveness budget (zero fields take the repl
// defaults). The watcher answers server PINGs and treats a silence of
// Idle + 2×Reply as a dead link.
func WithWatchTimeouts(tv repl.Timeouts) WatchOption {
	return func(w *Watcher) { w.tv = tv }
}

// WithWatchBackoff sets the reconnect policy.
func WithWatchBackoff(b repl.Backoff) WatchOption {
	return func(w *Watcher) { w.backoff = b }
}

// WithWatchBuffer sets the delivery channel's capacity (default 256).
func WithWatchBuffer(n int) WatchOption {
	return func(w *Watcher) {
		if n > 0 {
			w.chanCap = n
		}
	}
}

// WithoutReconnect makes any transport failure terminal instead of
// triggering redial+resubscribe — tests that reason about a single
// session want the session's end to be observable.
func WithoutReconnect() WatchOption {
	return func(w *Watcher) { w.noReconnect = true }
}

type watchSpec struct {
	key    string
	prefix bool
}

// Watcher owns one dedicated session connection pushing watch events.
// Events arrive on Events() in server commit order; within one session
// delivery is exactly-once (the server cuts the session rather than
// drop silently). Across a reconnect the watcher re-subscribes its
// current watch set, but events committed while the link was down are
// gone and watch ids are reissued — session-scoped, not durable.
type Watcher struct {
	addr        string
	tv          repl.Timeouts
	backoff     repl.Backoff
	chanCap     int
	noReconnect bool

	events chan WatchEvent
	stop   chan struct{}

	// firstID is set once by Watch before run starts.
	firstID uint64

	// wmu serializes writes: Add/Unwatch/Ping race the reader's PONG
	// replies for the connection's write half. It also guards the
	// connection swap on reconnect (br is only read by run).
	wmu sync.Mutex
	bw  *bufio.Writer
	br  *bufio.Reader
	c   net.Conn

	mu      sync.Mutex
	specs   map[uint64]watchSpec // acked watches, by current session id
	pending []watchSpec          // SessWatch sent, WATCH-OK not yet seen
	lost    uint64
	err     error
	closed  bool
}

// Watch dials a dedicated session connection and registers the first
// watch (key, or every key under it when prefix is true). The returned
// watcher's first watch id is FirstID.
func Watch(addr string, key []byte, prefix bool, opts ...WatchOption) (*Watcher, error) {
	w := &Watcher{
		addr:    addr,
		chanCap: 256,
		stop:    make(chan struct{}),
		specs:   make(map[uint64]watchSpec),
	}
	for _, o := range opts {
		o(w)
	}
	w.tv = w.tv.WithDefaults()
	w.backoff = w.backoff.WithDefaults()
	w.events = make(chan WatchEvent, w.chanCap)

	first := watchSpec{key: string(key), prefix: prefix}
	id, err := w.connect([]watchSpec{first})
	if err != nil {
		return nil, err
	}
	w.firstID = id
	go w.run()
	return w, nil
}

// Events returns the delivery channel. It closes when the watcher ends;
// Err then says why (nil after Close).
func (w *Watcher) Events() <-chan WatchEvent { return w.events }

// FirstID returns the id of the watch registered by Watch, valid for
// the initial session.
func (w *Watcher) FirstID() uint64 { return w.firstID }

// Lost returns the server-reported dropped-event count (non-zero only
// after ErrEventsLost).
func (w *Watcher) Lost() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lost
}

// Err returns the terminal error after Events closes.
func (w *Watcher) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Add registers another watch on the live session. Its id arrives with
// the server's WATCH-OK and is applied to the resubscribe set; Add does
// not wait for it.
func (w *Watcher) Add(key []byte, prefix bool) error {
	w.mu.Lock()
	w.pending = append(w.pending, watchSpec{key: string(key), prefix: prefix})
	w.mu.Unlock()
	return w.send(&wire.SessFrame{Kind: wire.SessWatch, Key: key, Prefix: prefix})
}

// Unwatch drops a watch by its current-session id (from FirstID or a
// WATCH-OK observed via events' WatchID).
func (w *Watcher) Unwatch(id uint64) error {
	w.mu.Lock()
	delete(w.specs, id)
	w.mu.Unlock()
	return w.send(&wire.SessFrame{Kind: wire.SessUnwatch, WatchID: id})
}

// Ping sends a client-side liveness probe; the server answers PONG,
// which refreshes the link without surfacing to Events.
func (w *Watcher) Ping() error {
	return w.send(&wire.SessFrame{Kind: wire.SessPing})
}

// Close ends the watcher: the connection drops, Events closes, Err
// stays nil.
func (w *Watcher) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.stop)
	w.wmu.Lock()
	if w.c != nil {
		w.c.Close()
	}
	w.wmu.Unlock()
	return nil
}

func (w *Watcher) send(f *wire.SessFrame) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if w.c == nil {
		return ErrClosed
	}
	buf, err := wire.AppendSessFrame(nil, f)
	if err != nil {
		return err
	}
	w.c.SetWriteDeadline(time.Now().Add(w.tv.Reply))
	if _, err := w.bw.Write(buf); err != nil {
		return err
	}
	return w.bw.Flush()
}

// connect dials and performs the session handshake: a WATCH request for
// specs[0] (whose OK carries the first watch id), then a SessWatch
// frame per remaining spec (their WATCH-OKs arrive in order on the
// session stream). On success the watcher's connection fields and
// spec-tracking state are installed.
func (w *Watcher) connect(specs []watchSpec) (uint64, error) {
	if len(specs) == 0 {
		return 0, errors.New("client: watcher has no watches to subscribe")
	}
	c, err := net.DialTimeout("tcp", w.addr, w.tv.Connect)
	if err != nil {
		return 0, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)

	req := wire.Request{Op: wire.OpWatch, Sem: wire.SemDefault, Key: []byte(specs[0].key), Prefix: specs[0].prefix}
	buf, err := wire.AppendRequestFrame(nil, &req)
	if err != nil {
		c.Close()
		return 0, err
	}
	c.SetDeadline(time.Now().Add(w.tv.Reply))
	if _, err := bw.Write(buf); err != nil {
		c.Close()
		return 0, err
	}
	for _, sp := range specs[1:] {
		f := wire.SessFrame{Kind: wire.SessWatch, Key: []byte(sp.key), Prefix: sp.prefix}
		if buf, err = wire.AppendSessFrame(buf[:0], &f); err != nil {
			c.Close()
			return 0, err
		}
		if _, err := bw.Write(buf); err != nil {
			c.Close()
			return 0, err
		}
	}
	if err := bw.Flush(); err != nil {
		c.Close()
		return 0, err
	}
	raw, err := wire.ReadFrame(br, 0)
	if err != nil {
		c.Close()
		return 0, err
	}
	resp, err := wire.DecodeResponse(raw, wire.OpWatch, nil)
	if err != nil {
		c.Close()
		return 0, err
	}
	if err := resp.Err(); err != nil {
		c.Close()
		return 0, err
	}
	c.SetDeadline(time.Time{})

	w.wmu.Lock()
	w.c, w.bw, w.br = c, bw, br
	w.wmu.Unlock()
	w.mu.Lock()
	w.specs = map[uint64]watchSpec{resp.N: specs[0]}
	w.pending = append(w.pending[:0], specs[1:]...)
	w.mu.Unlock()
	return resp.N, nil
}

// run reads the session stream, delivering events and answering pings,
// reconnecting (unless disabled) when the transport dies. Terminal
// server frames — EVENT-LOST, ERR — end the watcher; so does Close.
func (w *Watcher) run() {
	defer close(w.events)
	attempt := 0
	var payload []byte
	var f wire.SessFrame
	for {
		c, br := w.conn()
		if c == nil {
			return // closed
		}
		c.SetReadDeadline(time.Now().Add(w.tv.Idle + 2*w.tv.Reply))
		var err error
		payload, err = wire.ReadFrameBuf(br, payload, 0)
		if err == nil {
			err = wire.DecodeSessFrame(&f, payload)
			if err != nil {
				w.fail(fmt.Errorf("client: session frame: %w", err))
				return
			}
			attempt = 0
			switch f.Kind {
			case wire.SessEvent:
				ev := WatchEvent{WatchID: f.WatchID, Seq: f.Seq, Op: f.Op, Key: string(f.Key)}
				select {
				case w.events <- ev:
				case <-w.stop:
					w.fail(nil)
					return
				}
			case wire.SessEventLost:
				w.mu.Lock()
				w.lost += f.Dropped
				w.mu.Unlock()
				w.fail(ErrEventsLost)
				return
			case wire.SessWatchOK:
				w.ackWatch(f.WatchID)
			case wire.SessPing:
				w.send(&wire.SessFrame{Kind: wire.SessPong})
			case wire.SessPong:
				// liveness only
			case wire.SessErr:
				pe := &wire.ProtocolError{Code: f.Code, Detail: string(f.Detail)}
				w.fail(fmt.Errorf("client: session ended by server: %w", pe))
				return
			}
			continue
		}
		// Transport failure: closed watcher ends quietly, otherwise
		// redial and resubscribe whatever the watch set is now.
		select {
		case <-w.stop:
			w.fail(nil)
			return
		default:
		}
		if w.noReconnect {
			w.fail(fmt.Errorf("client: session read: %w", err))
			return
		}
		c.Close()
		for {
			select {
			case <-time.After(w.backoff.Delay(attempt)):
			case <-w.stop:
				w.fail(nil)
				return
			}
			attempt++
			if _, err := w.connect(w.snapshotSpecs()); err == nil {
				break
			}
			select {
			case <-w.stop:
				w.fail(nil)
				return
			default:
			}
		}
	}
}

// ackWatch maps the next pending spec to its server-issued id.
func (w *Watcher) ackWatch(id uint64) {
	w.mu.Lock()
	if len(w.pending) > 0 {
		w.specs[id] = w.pending[0]
		w.pending = w.pending[1:]
	}
	w.mu.Unlock()
}

// snapshotSpecs is the resubscribe set: every acked watch plus any
// still pending when the link died.
func (w *Watcher) snapshotSpecs() []watchSpec {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]watchSpec, 0, len(w.specs)+len(w.pending))
	for _, sp := range w.specs {
		out = append(out, sp)
	}
	out = append(out, w.pending...)
	return out
}

// conn returns the live connection pair, or nils after Close.
func (w *Watcher) conn() (net.Conn, *bufio.Reader) {
	select {
	case <-w.stop:
		return nil, nil
	default:
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.c, w.br
}

func (w *Watcher) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.wmu.Lock()
	if w.c != nil {
		w.c.Close()
	}
	w.wmu.Unlock()
}
