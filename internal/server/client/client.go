// Package client is the polyserve wire client: a connection-pooled,
// pipelining KV client used by tests, the load generator, and example
// programs. Every convenience method accepts the server's per-opcode
// semantics mapping; the generic Do path takes explicit wire.Requests
// for per-request semantics overrides (the start(p) byte on the wire).
package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"polytm/internal/wire"
)

// ErrClosed is returned by operations on a closed client.
var ErrClosed = errors.New("client: closed")

// Option configures Dial.
type Option func(*Client)

// WithPoolSize caps the connection pool (default 4). Connections are
// dialed lazily up to the cap; concurrent callers beyond it wait.
func WithPoolSize(n int) Option {
	return func(c *Client) {
		if n > 0 {
			c.size = n
		}
	}
}

// WithDialTimeout bounds each connection dial (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithIdlePing health-checks pooled connections: a connection idle for
// longer than idleAfter is PINGed (under the reply budget) before
// reuse, and silently replaced when the ping fails — so a request
// after a long quiet period lands on a live connection instead of
// discovering a half-dead one with its own payload. Zero idleAfter
// disables the check (the default); zero reply means 2s.
func WithIdlePing(idleAfter, reply time.Duration) Option {
	return func(c *Client) {
		c.idleAfter = idleAfter
		if reply > 0 {
			c.pingReply = reply
		}
	}
}

// conn is one pooled connection with its buffered endpoints.
type conn struct {
	c        net.Conn
	br       *bufio.Reader
	bw       *bufio.Writer
	lastUsed time.Time
}

// Client is a pooled polyserve client. It is safe for concurrent use;
// each request batch holds one pooled connection for its duration.
type Client struct {
	addr        string
	size        int
	dialTimeout time.Duration
	idleAfter   time.Duration // ping-before-reuse threshold (0 = off)
	pingReply   time.Duration // health-check ping budget

	mu     sync.Mutex
	closed bool
	idle   []*conn
	live   int // dialed connections (idle + in use)
	waitCh chan struct{}
}

// Dial creates a client for the server at addr. The first connection is
// dialed eagerly so misconfiguration fails fast.
func Dial(addr string, opts ...Option) (*Client, error) {
	cl := &Client{addr: addr, size: 4, dialTimeout: 5 * time.Second, pingReply: 2 * time.Second, waitCh: make(chan struct{}, 1)}
	for _, o := range opts {
		o(cl)
	}
	first, err := cl.dial()
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	cl.live = 1
	cl.idle = append(cl.idle, first)
	cl.mu.Unlock()
	return cl, nil
}

func (cl *Client) dial() (*conn, error) {
	c, err := net.DialTimeout("tcp", cl.addr, cl.dialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return &conn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

// acquire takes an idle connection, dials a new one under the cap, or
// waits for a release; the wait (and a fresh dial) honours ctx.
func (cl *Client) acquire(ctx context.Context) (*conn, error) {
	for {
		cl.mu.Lock()
		if cl.closed {
			cl.mu.Unlock()
			return nil, ErrClosed
		}
		if n := len(cl.idle); n > 0 {
			cn := cl.idle[n-1]
			cl.idle = cl.idle[:n-1]
			cl.mu.Unlock()
			// Stale-connection health check: a connection idle past the
			// threshold proves itself with a PING before carrying a real
			// request; a dead one is dropped and the loop dials afresh.
			if cl.idleAfter > 0 && !cn.lastUsed.IsZero() && time.Since(cn.lastUsed) >= cl.idleAfter {
				if err := cl.pingConn(cn); err != nil {
					cl.discard(cn)
					continue
				}
			}
			return cn, nil
		}
		if cl.live < cl.size {
			cl.live++
			cl.mu.Unlock()
			cn, err := cl.dial()
			if err != nil {
				cl.mu.Lock()
				cl.live--
				cl.mu.Unlock()
				return nil, err
			}
			return cn, nil
		}
		cl.mu.Unlock()
		select {
		case <-cl.waitCh:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// pingConn runs one PING round trip on a specific connection under the
// reply budget. Any failure poisons the connection for the caller.
func (cl *Client) pingConn(cn *conn) error {
	buf, err := wire.AppendRequestFrame(nil, &wire.Request{Op: wire.OpPing, Sem: wire.SemDefault})
	if err != nil {
		return err
	}
	if err := cn.c.SetDeadline(time.Now().Add(cl.pingReply)); err != nil {
		return err
	}
	if _, err := cn.bw.Write(buf); err != nil {
		return err
	}
	if err := cn.bw.Flush(); err != nil {
		return err
	}
	raw, err := wire.ReadFrame(cn.br, 0)
	if err != nil {
		return err
	}
	resp, err := wire.DecodeResponse(raw, wire.OpPing, nil)
	if err != nil {
		return err
	}
	if err := resp.Err(); err != nil {
		return err
	}
	return cn.c.SetDeadline(time.Time{})
}

// release returns a healthy connection to the pool.
func (cl *Client) release(cn *conn) {
	cn.lastUsed = time.Now()
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		cn.c.Close()
		return
	}
	cl.idle = append(cl.idle, cn)
	cl.mu.Unlock()
	cl.signal()
}

// discard drops a broken connection.
func (cl *Client) discard(cn *conn) {
	cn.c.Close()
	cl.mu.Lock()
	cl.live--
	cl.mu.Unlock()
	cl.signal()
}

func (cl *Client) signal() {
	select {
	case cl.waitCh <- struct{}{}:
	default:
	}
}

// Close closes the client and all idle connections. In-flight requests
// finish; their connections close on release.
func (cl *Client) Close() error {
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil
	}
	cl.closed = true
	idle := cl.idle
	cl.idle = nil
	cl.mu.Unlock()
	for _, cn := range idle {
		cn.c.Close()
	}
	cl.signal()
	return nil
}

// encBufs pools batch-encoding buffers across Do calls: a batch's
// frames (length prefixes included) are appended into one buffer and
// written with a single Write, so the encode path allocates nothing in
// steady state.
var encBufs = sync.Pool{New: func() any { return new([]byte) }}

// Do sends reqs pipelined over one pooled connection — all frames
// written back-to-back, then all responses read in order — and returns
// one response per request. A transport error poisons the connection
// (it is discarded, not pooled) and is returned; wire-level failures
// arrive as StatusErr responses instead.
func (cl *Client) Do(reqs ...*wire.Request) ([]*wire.Response, error) {
	return cl.DoCtx(context.Background(), reqs...)
}

// DoCtx is Do bounded by ctx: a context deadline becomes the wire
// timeout (the pooled connection's read/write deadline for this batch),
// so a caller's request budget propagates to the socket; cancellation
// is honoured while waiting for a free pooled connection AND while
// blocked on the socket (a context.AfterFunc yanks the connection's
// deadline to now, unblocking the read/write immediately). A batch
// that is cancelled or times out poisons its connection — the server
// may still be executing the abandoned requests, so the connection's
// stream can no longer be trusted — and returns the transport error
// (matching os.ErrDeadlineExceeded / net.Error timeout).
func (cl *Client) DoCtx(ctx context.Context, reqs ...*wire.Request) ([]*wire.Response, error) {
	if len(reqs) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Encode every frame BEFORE touching the connection: an encoding
	// error must not leave a half-written batch in a pooled writer (the
	// next caller would flush it and read misaligned responses).
	bufp := encBufs.Get().(*[]byte)
	buf := (*bufp)[:0]
	for _, r := range reqs {
		var err error
		if buf, err = wire.AppendRequestFrame(buf, r); err != nil {
			*bufp = buf
			encBufs.Put(bufp)
			return nil, err
		}
	}
	cn, err := cl.acquire(ctx)
	if err != nil {
		*bufp = buf
		encBufs.Put(bufp)
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		if err := cn.c.SetDeadline(deadline); err != nil {
			*bufp = buf
			encBufs.Put(bufp)
			cl.discard(cn)
			return nil, err
		}
	}
	// Cancellation while blocked on the socket: the AfterFunc fires on
	// ctx.Done and forces an immediate I/O deadline. stopCancel's
	// return value disambiguates the race at completion — false means
	// the callback ran (or is running), so the connection must be
	// treated as poisoned even if the batch happened to finish.
	var stopCancel func() bool
	if ctx.Done() != nil {
		stopCancel = context.AfterFunc(ctx, func() {
			cn.c.SetDeadline(time.Now())
		})
	}
	finish := func() bool { // true = connection still trustworthy
		if stopCancel == nil {
			return true
		}
		return stopCancel()
	}
	_, werr := cn.bw.Write(buf)
	if werr == nil {
		werr = cn.bw.Flush()
	}
	*bufp = buf
	encBufs.Put(bufp)
	if werr != nil {
		finish()
		cl.discard(cn)
		return nil, werr
	}
	out := make([]*wire.Response, len(reqs))
	for i, r := range reqs {
		// Response payloads are freshly read per frame (not pooled):
		// the decoded Response aliases the raw payload and escapes to
		// the caller, so its storage must outlive this call.
		raw, err := wire.ReadFrame(cn.br, 0)
		if err != nil {
			finish()
			cl.discard(cn)
			return nil, fmt.Errorf("client: response %d/%d: %w", i+1, len(reqs), err)
		}
		var subOps []wire.Op
		if r.Op == wire.OpTxn {
			subOps = make([]wire.Op, len(r.Batch))
			for j := range r.Batch {
				subOps[j] = r.Batch[j].Op
			}
		}
		resp, err := wire.DecodeResponse(raw, r.Op, subOps)
		if err != nil {
			finish()
			cl.discard(cn)
			return nil, fmt.Errorf("client: response %d/%d: %w", i+1, len(reqs), err)
		}
		out[i] = resp
	}
	if !finish() {
		// Cancellation raced the batch's completion: the responses are
		// whole, but the connection's deadline state is tainted.
		cl.discard(cn)
		return out, nil
	}
	if hasDeadline {
		// The batch completed inside its budget: clear the deadline so
		// the connection pools clean for deadline-less callers.
		if err := cn.c.SetDeadline(time.Time{}); err != nil {
			cl.discard(cn)
			return out, nil
		}
	}
	cl.release(cn)
	return out, nil
}

// do1 is the single-request path.
func (cl *Client) do1(r *wire.Request) (*wire.Response, error) {
	rs, err := cl.Do(r)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Get reads key (server default: snapshot semantics). ok reports
// whether the key exists.
func (cl *Client) Get(key []byte) (val []byte, ok bool, err error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: key})
	if err != nil {
		return nil, false, err
	}
	if err := r.Err(); err != nil {
		return nil, false, err
	}
	return r.Val, r.Status == wire.StatusOK, nil
}

// Set writes key (server default: def semantics).
func (cl *Client) Set(key, val []byte) error {
	r, err := cl.do1(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: key, Val: val})
	if err != nil {
		return err
	}
	return r.Err()
}

// CAS atomically replaces key's value with new if it currently equals
// old. swapped reports success; on mismatch, current carries the value
// found. A missing key reports swapped=false with found=false.
func (cl *Client) CAS(key, old, new []byte) (swapped, found bool, current []byte, err error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpCAS, Sem: wire.SemDefault, Key: key, Old: old, Val: new})
	if err != nil {
		return false, false, nil, err
	}
	if err := r.Err(); err != nil {
		return false, false, nil, err
	}
	switch r.Status {
	case wire.StatusOK:
		return true, true, nil, nil
	case wire.StatusCASMismatch:
		return false, true, r.Val, nil
	default: // StatusNotFound
		return false, false, nil, nil
	}
}

// Del removes key, reporting whether it existed.
func (cl *Client) Del(key []byte) (bool, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpDel, Sem: wire.SemDefault, Key: key})
	if err != nil {
		return false, err
	}
	if err := r.Err(); err != nil {
		return false, err
	}
	return r.Status == wire.StatusOK, nil
}

// Scan walks [from, to) in key order (server default: weak/elastic
// semantics). An empty `to` scans to the end; limit 0 is unbounded.
func (cl *Client) Scan(from, to []byte, limit uint64) ([]wire.KV, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpScan, Sem: wire.SemDefault, From: from, To: to, Limit: limit})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return r.Pairs, nil
}

// MGet reads many keys in one transaction (server default: snapshot
// semantics). vals[i] is nil when found[i] is false.
func (cl *Client) MGet(keys ...[]byte) (vals [][]byte, found []bool, err error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpMGet, Sem: wire.SemDefault, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	if err := r.Err(); err != nil {
		return nil, nil, err
	}
	vals = make([][]byte, len(r.Batch))
	found = make([]bool, len(r.Batch))
	for i := range r.Batch {
		if r.Batch[i].Status == wire.StatusOK {
			vals[i] = r.Batch[i].Val
			found[i] = true
		}
	}
	return vals, found, nil
}

// Txn runs sub (GET/SET/CAS/DEL requests) as ONE transaction and
// returns the per-operation responses.
func (cl *Client) Txn(sub ...wire.Request) ([]wire.Response, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: sub})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return r.Batch, nil
}

// Incr atomically adds delta to the integer at key (missing keys start
// at 0; def semantics server-side, one round trip) and returns the new
// value. A non-integer value or int64 overflow is a StatusErr.
func (cl *Client) Incr(key []byte, delta uint64) (int64, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpIncr, Sem: wire.SemDefault, Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return r.Int, nil
}

// Decr is Incr with a negative delta.
func (cl *Client) Decr(key []byte, delta uint64) (int64, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpDecr, Sem: wire.SemDefault, Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return r.Int, nil
}

// SetEx writes key with a time-to-live. Once the TTL elapses the key
// reads as absent (lazy expiry) and is eventually deleted by the
// server's reaper. TTLs below one millisecond are an error server-side
// (the wire carries whole milliseconds).
func (cl *Client) SetEx(key, val []byte, ttl time.Duration) error {
	r, err := cl.do1(&wire.Request{Op: wire.OpSetEx, Sem: wire.SemDefault, Key: key, Val: val, TTLMillis: uint64(ttl / time.Millisecond)})
	if err != nil {
		return err
	}
	return r.Err()
}

// Ping runs one liveness round trip (no transaction server-side).
func (cl *Client) Ping() error {
	return cl.PingCtx(context.Background())
}

// PingCtx is Ping bounded by ctx.
func (cl *Client) PingCtx(ctx context.Context) error {
	rs, err := cl.DoCtx(ctx, &wire.Request{Op: wire.OpPing, Sem: wire.SemDefault})
	if err != nil {
		return err
	}
	return rs[0].Err()
}

// Stats fetches the engine counters as a name→value map.
func (cl *Client) Stats() (map[string]uint64, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpStats, Sem: wire.SemDefault})
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	m := make(map[string]uint64, len(r.Counters))
	for _, c := range r.Counters {
		m[c.Name] = c.Value
	}
	return m, nil
}

// Flush removes every key (admin; irrevocable semantics), returning the
// removed count.
func (cl *Client) Flush() (uint64, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpFlush, Sem: wire.SemDefault})
	if err != nil {
		return 0, err
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return r.N, nil
}

// Rebuild re-levels the store's index (admin; irrevocable semantics),
// returning the key count.
func (cl *Client) Rebuild() (uint64, error) {
	r, err := cl.do1(&wire.Request{Op: wire.OpRebuild, Sem: wire.SemDefault})
	if err != nil {
		return 0, err
	}
	if err := r.Err(); err != nil {
		return 0, err
	}
	return r.N, nil
}

// RoutingEpoch fetches the server's current routing epoch (the STATS
// routing_epoch gauge; 0 until the first completed SPLIT/MERGE).
func (cl *Client) RoutingEpoch() (uint64, error) {
	m, err := cl.Stats()
	if err != nil {
		return 0, err
	}
	return m["routing_epoch"], nil
}

// Split asks the server to split the shard with stable id `shard`
// online (admin), returning the new routing epoch. The request carries
// the epoch the client observed; on a *wire.WrongEpochError rejection
// (someone else resharded in between) the client refreshes to the
// server's epoch and retries, a bounded number of times — each retry
// re-validates the shard against the topology it is actually splitting.
func (cl *Client) Split(shard uint64) (uint64, error) {
	return cl.reshard(&wire.Request{Op: wire.OpSplit, Sem: wire.SemDefault, Shard: shard})
}

// Merge asks the server to merge buddy shards a and b (stable ids,
// admin) back into a, returning the new routing epoch. Epoch contract
// as in Split.
func (cl *Client) Merge(a, b uint64) (uint64, error) {
	return cl.reshard(&wire.Request{Op: wire.OpMerge, Sem: wire.SemDefault, Shard: a, Shard2: b})
}

// reshard runs one SPLIT/MERGE with the observe-epoch / retry-on-stale
// loop.
func (cl *Client) reshard(req *wire.Request) (uint64, error) {
	epoch, err := cl.RoutingEpoch()
	if err != nil {
		return 0, err
	}
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		req.Epoch = epoch
		r, err := cl.do1(req)
		if err != nil {
			return 0, err
		}
		err = r.Err()
		if err == nil {
			return r.N, nil
		}
		var we *wire.WrongEpochError
		if !errors.As(err, &we) {
			return 0, err
		}
		epoch, lastErr = we.Want, err
	}
	return 0, lastErr
}

// Pipeline accumulates requests to send in one pipelined batch over one
// connection. Not safe for concurrent use.
type Pipeline struct {
	cl   *Client
	reqs []*wire.Request
}

// Pipeline starts an empty pipeline.
func (cl *Client) Pipeline() *Pipeline { return &Pipeline{cl: cl} }

// Add queues an arbitrary request (the hook for per-request semantics
// overrides).
func (p *Pipeline) Add(r *wire.Request) *Pipeline { p.reqs = append(p.reqs, r); return p }

// Get queues a GET.
func (p *Pipeline) Get(key []byte) *Pipeline {
	return p.Add(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: key})
}

// Set queues a SET.
func (p *Pipeline) Set(key, val []byte) *Pipeline {
	return p.Add(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: key, Val: val})
}

// Scan queues a SCAN.
func (p *Pipeline) Scan(from, to []byte, limit uint64) *Pipeline {
	return p.Add(&wire.Request{Op: wire.OpScan, Sem: wire.SemDefault, From: from, To: to, Limit: limit})
}

// Del queues a DEL.
func (p *Pipeline) Del(key []byte) *Pipeline {
	return p.Add(&wire.Request{Op: wire.OpDel, Sem: wire.SemDefault, Key: key})
}

// Len reports the queued request count.
func (p *Pipeline) Len() int { return len(p.reqs) }

// Exec sends the queued requests pipelined and returns their responses
// in order, resetting the pipeline.
func (p *Pipeline) Exec() ([]*wire.Response, error) {
	return p.ExecCtx(context.Background())
}

// ExecCtx is Exec bounded by ctx (see Client.DoCtx for the deadline →
// wire-timeout contract).
func (p *Pipeline) ExecCtx(ctx context.Context) ([]*wire.Response, error) {
	reqs := p.reqs
	p.reqs = nil
	return p.cl.DoCtx(ctx, reqs...)
}
