package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"polytm/internal/core"
	"polytm/internal/session"
	"polytm/internal/stm"
	"polytm/internal/structures"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// DefaultSemantics is the server's per-request-class semantics mapping —
// the subsystem's rendition of the paper's start(p). Each wire opcode is
// a request class, and each class gets the weakest semantics that still
// carries its correctness requirement:
//
//   - GET/MGET run as snapshot transactions: point reads need a
//     consistent committed value but tolerate slight staleness, and the
//     multi-versioned read path never aborts and never blocks writers —
//     the ideal profile for read-dominated KV traffic.
//   - SCAN runs elastically (weak): a range scan is a search traversal;
//     consecutive hops must be mutually consistent but the window may
//     slide past concurrent inserts elsewhere in the range, exactly like
//     the paper's elastic list search.
//   - SET/CAS/DEL/TXN run under def: updates relink skip-list towers and
//     read-modify-write values, which need full opacity.
//   - FLUSH/REBUILD (admin) run irrevocably: whole-store operations
//     would starve under optimistic retry against heavy traffic, so they
//     take the guaranteed-commit semantics and serialize.
//
// A request may override its class's mapping with an explicit semantics
// byte in the frame header.
func DefaultSemantics(op wire.Op) core.Semantics {
	switch op {
	case wire.OpGet, wire.OpMGet:
		return core.Snapshot
	case wire.OpScan:
		return core.Weak
	case wire.OpFlush, wire.OpRebuild:
		return core.Irrevocable
	default: // OpSet, OpCAS, OpDel, OpTxn, OpStats
		return core.Def
	}
}

// resolveSemantics applies a request's semantics byte over the class
// default. Validation lives in wire.Semantics — the one place the byte
// range is checked — so requests that bypass the wire decoder (tests,
// in-process embedding) are rejected identically to decoded ones.
//
// A hand-built frame can ask for any combination, including snapshot
// (read-only) semantics on a write opcode; the engine would reject the
// write mid-transaction (stm.ErrSnapshotWrite), but only after a
// transaction has started and begun its attempt. The protocol layer
// knows the combination is nonsense from the header alone, so it is
// rejected here — before any transaction starts — with the typed
// *wire.SnapshotWriteError.
func resolveSemantics(req *wire.Request) (core.Semantics, error) {
	sem, err := wire.Semantics(req.Sem, DefaultSemantics(req.Op))
	if err != nil {
		return 0, err
	}
	if sem == core.Snapshot && req.Op.Mutates() {
		return 0, &wire.SnapshotWriteError{Op: req.Op}
	}
	return sem, nil
}

// shard is one hash partition of the keyspace: its own polymorphic TM
// (so its irrevocable token serializes only this shard's durable
// writes), its own skip map, and — when durable — its own write-ahead
// log. Nothing is shared between shards except the Store's routing
// table and the cross-shard commit protocol.
type shard struct {
	// idx is the shard's STABLE id: assigned once (at construction or
	// when a split creates the shard), persisted in the MANIFEST, and
	// never reused. It names the shard in 2PC coordinator records,
	// STATS rows, and admin ops — unlike the shard's position in the
	// routing table, which shifts as shards split and merge.
	idx int
	tm  *core.TM
	m   *structures.TSkipMap

	// The shard's hash slice lives in the routing table (hashSlice),
	// not here: tables are immutable and a cutover publishes the new
	// slice only with the new table.

	// resharding is the split/merge capture gate: while set, every
	// mutation on this shard runs under the irrevocable token and marks
	// rdirty, so the copy protocol's delta rounds see exactly the keys
	// that changed since its snapshot. rdirty reuses the incremental-
	// checkpoint dirty-set machinery, but tracks a different consumer.
	// ckptHold additionally pauses the shard's checkpoints — a rotation
	// between a RESHARD BEGIN and its COMMIT could truncate the journal
	// record recovery needs.
	resharding atomic.Bool
	ckptHold   atomic.Bool
	rdirty     dirtySet

	// Session wiring (see internal/session and applyChanges): sess is
	// the store-wide watch registry, notif orders this shard's
	// committed changes for delivery, ttl holds its armed expiry
	// deadlines.
	sess  *session.Registry
	notif *session.Notifier
	ttl   ttlTable

	wal *wal.Log
	// walName is the shard's log directory relative to the store's WAL
	// root ("." = the root itself; "" when not durable) — what the
	// MANIFEST records and a retiring merge removes.
	walName string
	caps    sync.Pool // *walCapture, wired at store construction

	// dirty tracks the keys mutated since the last checkpoint cut — the
	// incremental checkpointer's working set; ckptMu serializes cuts so
	// one policy decision pairs with one installed file.
	dirty  dirtySet
	ckptMu sync.Mutex

	// replWait, when set (sync-ack replication), gates a durable
	// mutation's acknowledgement on a follower ack covering its record.
	replWait atomic.Pointer[func(ctx context.Context, seq uint64) error]

	routed atomic.Uint64 // operations routed here (STATS distribution row)
}

// capture returns the shard's pooled walCapture (escalating sem to the
// irrevocable class) when the mutation has side effects to order —
// durability, live watches, or armed TTL deadlines — nil (and sem
// unchanged) otherwise. The escalation holds in every captured case,
// even over an explicit weaker override: both the log and the session
// notifier need a total order matching commit order, the shard's
// irrevocable token is that order, and it guarantees a reserved
// record's (and slot's) transaction commits. Session-free non-durable
// mutations keep the historical un-escalated hot path.
func (sh *shard) capture(sem core.Semantics) (*walCapture, core.Semantics) {
	if sh.wal == nil && sh.sess.ActiveWatches() == 0 && sh.ttl.Len() == 0 &&
		!sh.resharding.Load() {
		return nil, sem
	}
	cp := sh.caps.Get().(*walCapture)
	cp.reset()
	return cp, core.Irrevocable
}

// captureForce is capture with the session gate forced open: SETEX
// must track its change even on an idle store (arming the first
// deadline is what opens the gate for everyone else), and the reaper
// must emit EventExpire regardless of who is watching.
func (sh *shard) captureForce() (*walCapture, core.Semantics) {
	cp := sh.caps.Get().(*walCapture)
	cp.reset()
	cp.track = true
	return cp, core.Irrevocable
}

// atomicMut runs one single-shard mutating transaction. The non-durable
// path is the historical hot path, untouched. The durable path runs fn
// with the capture as the transaction's observer — confirming or
// tombstoning the record the body reserved — and gates the
// acknowledgement on the record being durable.
func (sh *shard) atomicMut(ctx context.Context, sem core.Semantics, cp *walCapture, fn func(tx *core.Tx) error) error {
	if cp == nil {
		return sh.tm.AtomicAsCtx(ctx, sem, fn)
	}
	err := sh.tm.AtomicCtx(ctx, fn, core.WithSemantics(sem), core.WithObserver(cp))
	if err != nil {
		return err
	}
	if err := cp.wait(); err != nil {
		return err
	}
	// Session delivery gate: an acked mutation's events are buffered to
	// every matching watcher and its TTL effects applied before the
	// client sees OK.
	cp.waitDelivered()
	// Sync-ack replication: the record is locally durable; additionally
	// wait for a follower ack covering it. (Cross-shard commits go
	// through twopc.go, not here — they acknowledge on local durability
	// only; see the replication doc.)
	if cp.logged {
		if w := sh.replWait.Load(); w != nil {
			return (*w)(ctx, cp.seq)
		}
	}
	return nil
}

// Store is the server's keyspace: an ordered transactional map
// hash-partitioned across one or more shards. Single-key requests
// route to exactly one shard by key hash; MGET and SCAN fan out and
// merge; a TXN whose keys span shards — and FLUSH/REBUILD, which span
// all of them — commit through the cross-shard protocol in twopc.go.
// All transaction-semantics policy lives in the request execution
// path, not in the structure.
//
// A durable store (EnableDurability) additionally owns one write-ahead
// log per shard: every mutating request runs as an irrevocable
// transaction on its shard that reserves its log record under that
// shard's irrevocable token, and is acknowledged only once the record
// is durable.
type Store struct {
	// table is the current routing epoch: the shards in table order
	// with their hash slices, immutable once published. Every request
	// snapshots it once (tab) and works against that one view; a
	// SPLIT/MERGE publishes a successor with the epoch incremented.
	table atomic.Pointer[routingTable]

	// Reshard machinery: reshardMu serializes SPLIT/MERGE (and guards
	// nextID, the next stable shard id); grace fences the capture-gate
	// flip (see graceGate); the counters feed STATS.
	reshardMu     sync.Mutex
	nextID        int
	grace         graceGate
	reshardSplits atomic.Uint64
	reshardMerges atomic.Uint64

	// mkTM builds the engine for a shard a split creates. server.New
	// overrides it with the configured engine parameters; the default
	// clones nothing and uses the engine's own defaults.
	mkTM func() *core.TM

	// reshardHook, when set (replication), runs after a reshard
	// publishes its new table — the hub cuts every feed so followers
	// renegotiate topology through a reconnect.
	reshardHook atomic.Pointer[func(epoch uint64)]

	// epoch numbers cross-shard transactions; durable stores persist it
	// through control records and resume past the recovered maximum.
	epoch atomic.Uint64

	xshardTxns   atomic.Uint64 // cross-shard commits attempted
	xshardAborts atomic.Uint64 // cross-shard commits that aborted

	// Replication role state (see replication.go). A follower rejects
	// every mutating request before any transaction starts; primaryAddr
	// rides the rejection so clients can redirect.
	role         atomic.Int32
	failovers    atomic.Uint64
	primaryAddr  atomic.Pointer[string]
	replCounters atomic.Pointer[func() []wire.Counter]

	// Session subsystem (see internal/session): the watch registry all
	// shards publish through, plus the STATS counters the wire reports.
	sessions    *session.Registry
	keysExpired atomic.Uint64 // keys the reaper durably deleted
	incrOps     atomic.Uint64 // INCR/DECR operations served

	// TTL reaper lifecycle (StartTTLReaper / StopTTLReaper).
	reapStop chan struct{}
	reapDone chan struct{}

	logf     func(format string, args ...any) // diagnostics sink (durable stores)
	ckptStop chan struct{}
	ckptDone chan struct{}

	// Incremental-checkpoint policy (EnableDurability resolves the
	// defaults) and the process incarnation scoping this lifetime's WAL
	// seqs for replication delta catch-up (see DeltaShard).
	ckptMaxChain int
	ckptRatio    float64
	incarnation  uint64

	// Durable-store layout, kept so a SPLIT can open the new shard's log
	// with the same options under the same root (empty when not durable).
	walDir  string
	walOpts wal.Options
}

// NewStore creates an empty single-shard store on tm.
func NewStore(tm *core.TM) *Store {
	return NewShardedStore([]*core.TM{tm})
}

// NewShardedStore creates an empty store with one shard per TM. Shard
// i starts with stable id i and hash slice (N, i) — the historical
// h % N routing — at routing epoch 0.
func NewShardedStore(tms []*core.TM) *Store {
	if len(tms) == 0 {
		panic("server: store needs at least one shard")
	}
	s := &Store{sessions: session.NewRegistry()}
	s.mkTM = func() *core.TM { return core.New(core.Config{}) }
	shards := make([]*shard, len(tms))
	slices := make([]hashSlice, len(tms))
	for i, tm := range tms {
		shards[i] = s.newShard(i, tm)
		slices[i] = hashSlice{mod: uint64(len(tms)), res: uint64(i)}
	}
	s.nextID = len(tms)
	s.table.Store(newRoutingTable(0, shards, slices))
	return s
}

// newShard wires one shard: engine, skip map, session plumbing. The
// capture pool closes over the shard, so a pool is per-shard by
// construction.
func (s *Store) newShard(id int, tm *core.TM) *shard {
	sh := &shard{idx: id, tm: tm, m: structures.NewTSkipMap(tm), sess: s.sessions}
	sh.notif = session.NewNotifier(func(cs []session.Change) { s.applyChanges(sh, cs) })
	sh.caps.New = func() any { return &walCapture{sh: sh, next: sh.tm.Engine().Observer()} }
	return sh
}

// tab snapshots the current routing table. All multi-step work —
// fan-outs, cross-shard groups, stats — runs against ONE snapshot so
// a concurrent reshard cannot split a request across two epochs.
func (s *Store) tab() *routingTable { return s.table.Load() }

// RoutingEpoch returns the current routing epoch (0 until the first
// completed SPLIT/MERGE).
func (s *Store) RoutingEpoch() uint64 { return s.tab().epoch }

// shardIdx returns the table position owning key under the current
// table (tests and diagnostics; request paths snapshot a table first).
func (s *Store) shardIdx(key []byte) int { return s.tab().pos(hashKey(key)) }

// Sessions returns the store's watch registry (the server's session
// connections register through it).
func (s *Store) Sessions() *session.Registry { return s.sessions }

// applyChanges is shard sh's notifier deliver callback: it runs with
// committed changes strictly in sh's commit order (serialized under
// the notifier). Each change first lands its TTL effect on the shard's
// table, then fans out to the watch sessions. A FLUSH drops every
// deadline on the shard; to keep a multi-shard FLUSH from showing up
// N times, only shard 0 — a participant of every flush — publishes the
// event.
func (s *Store) applyChanges(sh *shard, cs []session.Change) {
	for i := range cs {
		ch := &cs[i]
		switch ch.Op {
		case wire.EventFlush:
			sh.ttl.clearAll()
			if sh.idx != 0 {
				continue
			}
		case wire.EventSet:
			switch {
			case ch.TTL > 0:
				sh.ttl.set(ch.Key, nowNanos()+int64(ch.TTL))
			case !ch.KeepTTL:
				sh.ttl.clear(ch.Key)
			}
		case wire.EventDel, wire.EventExpire:
			sh.ttl.clear(ch.Key)
		}
		s.sessions.Publish(ch.Op, ch.Key)
	}
}

// expiredNow reports whether key is past an armed deadline on sh —
// the read paths' lazy-expiry check. The Len gate keeps TTL-free
// stores at one atomic load.
func (sh *shard) expiredNow(key []byte) bool {
	if sh.ttl.Len() == 0 {
		return false
	}
	return sh.ttl.expired(lookupKey(key), nowNanos())
}

// expiredNowStr is expiredNow for keys already materialized as strings
// (scan callbacks).
func (sh *shard) expiredNowStr(key string) bool {
	if sh.ttl.Len() == 0 {
		return false
	}
	return sh.ttl.expired(key, nowNanos())
}

// TM returns the first shard's transactional memory (stats, tests;
// see Store.Stats for the all-shards aggregate).
func (s *Store) TM() *core.TM { return s.tab().shards[0].tm }

// NumShards returns the store's current shard count.
func (s *Store) NumShards() int { return len(s.tab().shards) }

// Stats aggregates the engine counters across every shard's TM.
func (s *Store) Stats() stm.StatsSnapshot {
	var agg stm.StatsSnapshot
	for _, sh := range s.tab().shards {
		sn := sh.tm.Stats()
		agg.Starts += sn.Starts
		agg.Commits += sn.Commits
		agg.Aborts += sn.Aborts
		agg.ReadAborts += sn.ReadAborts
		agg.LockAborts += sn.LockAborts
		agg.ValidateAbort += sn.ValidateAbort
		agg.Kills += sn.Kills
		agg.Extensions += sn.Extensions
		agg.ElasticCuts += sn.ElasticCuts
		agg.SnapshotReads += sn.SnapshotReads
		agg.Irrevocables += sn.Irrevocables
		agg.VarsAllocated += sn.VarsAllocated
		agg.Reads += sn.Reads
		agg.Writes += sn.Writes
		for i := range agg.PerSemantics {
			agg.PerSemantics[i].Starts += sn.PerSemantics[i].Starts
			agg.PerSemantics[i].Commits += sn.PerSemantics[i].Commits
			agg.PerSemantics[i].Aborts += sn.PerSemantics[i].Aborts
		}
	}
	return agg
}

// ResetStats zeroes every shard's engine counters.
func (s *Store) ResetStats() {
	for _, sh := range s.tab().shards {
		sh.tm.ResetStats()
	}
}

// route returns the shard owning key under the current table, counting
// the routing decision.
func (s *Store) route(key []byte) *shard {
	t := s.tab()
	var sh *shard
	if len(t.shards) == 1 {
		sh = t.shards[0]
	} else {
		sh = t.shardFor(hashKey(key))
	}
	sh.routed.Add(1)
	return sh
}

// errMovedKey is the internal retry signal for a mutation that raced a
// reshard cutover: the request routed through the pre-cutover table,
// but by the time its transaction body ran (serialized behind the
// cutover barrier on the frozen shard's token) the key's owner had
// changed. The body aborts with this sentinel before writing anything
// and ExecuteCtx re-routes through the published table — the caller
// never sees a failure, only the bounded barrier latency.
var errMovedKey = errors.New("server: key moved by concurrent reshard")

// ownsKey re-checks, inside a transaction body, that sh still owns key
// under the CURRENT table. Free until the first reshard (epoch 0 means
// routing can never have changed).
func (s *Store) ownsKey(sh *shard, key []byte) bool {
	t := s.tab()
	if t.epoch == 0 {
		return true
	}
	return t.shardFor(hashKey(key)) == sh
}

// Execute runs one decoded request against the store and returns its
// response. It never returns an error: failures become StatusErr
// responses so the connection's pipeline keeps its 1:1 ordering.
func (s *Store) Execute(req *wire.Request) *wire.Response {
	resp := new(wire.Response)
	s.ExecuteCtx(context.Background(), req, resp)
	return resp
}

// ExecuteInto is Execute writing into a caller-owned response, reusing
// its slice storage (value buffer, scan pairs, sub-responses, counter
// list) — the execution path of a connection loop that keeps one
// Response per connection. The previous contents of resp are
// discarded; the filled resp is valid until the next ExecuteInto on it.
func (s *Store) ExecuteInto(req *wire.Request, resp *wire.Response) {
	s.ExecuteCtx(context.Background(), req, resp)
}

// ExecuteCtx is ExecuteInto bounded by a request-scoped context: the
// server derives one per connection — cancelled when the connection's
// handler exits and on forced drain — so an abandoned request's
// transaction stops retrying instead of running to completion for
// nobody. A cancelled transaction surfaces as a StatusErr response
// matching stm.ErrCancelled. (Cross-shard commits are the exception:
// once begun they ignore cancellation, mirroring the irrevocable
// contract they ride.)
func (s *Store) ExecuteCtx(ctx context.Context, req *wire.Request, resp *wire.Response) {
	// A mutation that raced a reshard cutover aborts with errMovedKey
	// before writing anything; re-dispatching routes it through the
	// published table. Bounded: each retry needs another cutover to
	// land inside the request's own window, and reshards serialize.
	for attempt := 0; ; attempt++ {
		s.executeOnce(ctx, req, resp)
		if attempt < 3 && resp.Status == wire.StatusErr && resp.Msg == errMovedKey.Error() {
			continue
		}
		return
	}
}

func (s *Store) executeOnce(ctx context.Context, req *wire.Request, resp *wire.Response) {
	resetResponse(resp)
	// The follower role gate runs before semantics resolution and before
	// any routing: a mutating request on a follower gets exactly one
	// clean StatusErr carrying the primary's address, with zero engine
	// transactions started.
	if req.Op.Mutates() && Role(s.role.Load()) == RoleFollower {
		errInto(resp, &wire.NotPrimaryError{Primary: s.PrimaryAddr()})
		return
	}
	sem, err := resolveSemantics(req)
	if err != nil {
		errInto(resp, err)
		return
	}
	switch req.Op {
	case wire.OpGet:
		s.get(ctx, s.route(req.Key), req.Key, sem, resp)
	case wire.OpSet:
		s.set(ctx, s.route(req.Key), req.Key, req.Val, sem, resp)
	case wire.OpCAS:
		s.cas(ctx, s.route(req.Key), req.Key, req.Old, req.Val, sem, resp)
	case wire.OpDel:
		s.del(ctx, s.route(req.Key), req.Key, sem, resp)
	case wire.OpScan:
		s.scan(ctx, req.From, req.To, req.Limit, sem, resp)
	case wire.OpMGet:
		s.mget(ctx, req.Keys, sem, resp)
	case wire.OpTxn:
		s.txn(ctx, req.Batch, sem, resp)
	case wire.OpIncr:
		s.incr(ctx, s.route(req.Key), req.Key, req.Delta, false, sem, resp)
	case wire.OpDecr:
		s.incr(ctx, s.route(req.Key), req.Key, req.Delta, true, sem, resp)
	case wire.OpSetEx:
		s.setex(ctx, s.route(req.Key), req.Key, req.Val, time.Duration(req.TTLMillis)*time.Millisecond, resp)
	case wire.OpWatch:
		// A watch reaching the execution path means no session-capable
		// connection intercepted it (in-process store, or a server bug):
		// there is nowhere to push events to.
		errInto(resp, &wire.ProtocolError{Code: wire.ProtoBadSession, Detail: "WATCH needs a server connection to push events on"})
	case wire.OpStats:
		s.stats(resp)
	case wire.OpFlush:
		s.flush(ctx, sem, resp)
	case wire.OpRebuild:
		s.rebuild(ctx, sem, resp)
	case wire.OpPing:
		// Liveness probe: no transaction, no routing; followers answer
		// too. The response is the health signal.
		resp.Status = wire.StatusOK
	case wire.OpSubscribeWAL:
		// A subscribe reaching the execution path means no replication
		// hub intercepted it (server not replication-enabled, or an
		// in-process store with no server at all).
		errInto(resp, errReplicationDisabled)
	case wire.OpSplit:
		s.splitOp(ctx, req, resp)
	case wire.OpMerge:
		s.mergeOp(ctx, req, resp)
	default:
		errInto(resp, wire.ErrBadOp)
	}
}

// resetResponse scrubs resp for reuse, truncating (not freeing) its
// slice storage.
func resetResponse(r *wire.Response) {
	r.Status = wire.StatusOK
	r.Val = r.Val[:0]
	r.Pairs = r.Pairs[:0]
	r.Batch = r.Batch[:0]
	r.Counters = r.Counters[:0]
	r.N = 0
	r.Int = 0
	r.Msg = ""
	r.SubOp = 0
}

// errInto folds err into resp as a StatusErr response.
func errInto(resp *wire.Response, err error) {
	resp.Status = wire.StatusErr
	resp.Msg = err.Error()
}

// lookupKey views a wire key as a string without copying. Safe only
// for operations that compare the key and never retain it (lookups,
// deletes, range bounds): the skip map stores the keys it inserts, so
// every insertion path converts with a real copy instead.
func lookupKey(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// appendPair appends one scan result to resp.Pairs, reusing the
// entry's key/value storage when the slice has capacity.
func appendPair(resp *wire.Response, k, v string) {
	n := len(resp.Pairs)
	if n < cap(resp.Pairs) {
		resp.Pairs = resp.Pairs[:n+1]
	} else {
		resp.Pairs = append(resp.Pairs, wire.KV{})
	}
	p := &resp.Pairs[n]
	p.Key = append(p.Key[:0], k...)
	p.Val = append(p.Val[:0], v...)
}

// appendSub appends one sub-response slot to resp.Batch, reusing the
// entry's storage when the slice has capacity, and returns it fully
// scrubbed (via resetResponse — every field, not just the ones MGET
// and TXN happen to set: a reused slot carries whatever the previous
// request left in Msg, N, Pairs, Counters and nested Batch, and any
// stale field is a wire leak waiting for the encoder to grow a path
// that reads it).
func appendSub(resp *wire.Response) *wire.Response {
	n := len(resp.Batch)
	if n < cap(resp.Batch) {
		resp.Batch = resp.Batch[:n+1]
	} else {
		resp.Batch = append(resp.Batch, wire.Response{})
	}
	sub := &resp.Batch[n]
	resetResponse(sub)
	return sub
}

func (s *Store) get(ctx context.Context, sh *shard, key []byte, sem core.Semantics, resp *wire.Response) {
	err := sh.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		v, ok, err := sh.m.GetTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		// Lazy expiry: a key past its armed deadline reads as absent even
		// before the reaper's delete lands (the reaper is the only thing
		// that mutates here — reads never write).
		if !ok || sh.expiredNow(key) {
			// A miss on a shard that no longer owns the key is a routing
			// race with a reshard cutover, not an answer: the value may
			// live on the new owner. Re-route instead of reporting absent.
			if !s.ownsKey(sh, key) {
				return errMovedKey
			}
			resp.Status = wire.StatusNotFound
			resp.Val = resp.Val[:0]
			return nil
		}
		resp.Status = wire.StatusOK
		resp.Val = append(resp.Val[:0], v...)
		return nil
	})
	if err != nil {
		errInto(resp, err)
	}
}

func (s *Store) set(ctx context.Context, sh *shard, key, val []byte, sem core.Semantics, resp *wire.Response) {
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if !s.ownsKey(sh, key) {
			return errMovedKey
		}
		if _, err := sh.m.PutTx(tx, string(key), string(val)); err != nil {
			return err
		}
		cp.set(key, val)
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

// cas is an atomic compare-and-swap: mismatches and misses COMMIT as
// read-only transactions (they are legitimate outcomes, not failures),
// so wire-level CAS misses never inflate the engine's abort counters.
func (s *Store) cas(ctx context.Context, sh *shard, key, old, val []byte, sem core.Semantics, resp *wire.Response) {
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if !s.ownsKey(sh, key) {
			return errMovedKey
		}
		cur, ok, err := sh.m.GetTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		if !ok || sh.expiredNow(key) {
			resp.Status = wire.StatusNotFound
			resp.Val = resp.Val[:0]
			return nil
		}
		if cur != lookupKey(old) {
			resp.Status = wire.StatusCASMismatch
			resp.Val = append(resp.Val[:0], cur...)
			return nil
		}
		if _, err := sh.m.PutTx(tx, string(key), string(val)); err != nil {
			return err
		}
		resp.Status = wire.StatusOK
		resp.Val = resp.Val[:0]
		// Only a successful swap mutates state; misses and mismatches
		// reserve nothing and the log stays untouched.
		cp.set(key, val)
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
	}
}

func (s *Store) del(ctx context.Context, sh *shard, key []byte, sem core.Semantics, resp *wire.Response) {
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if !s.ownsKey(sh, key) {
			return errMovedKey
		}
		// An expired entry is absent to DEL too; its physical removal
		// stays with the reaper so expiry reaches the WAL (and every
		// follower) exactly once, as the reaper's delete.
		if sh.expiredNow(key) {
			resp.Status = wire.StatusNotFound
			return nil
		}
		removed, err := sh.m.DeleteTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		if removed {
			resp.Status = wire.StatusOK
			cp.del(key)
			cp.reserve()
		} else {
			resp.Status = wire.StatusNotFound
		}
		return nil
	})
	if err != nil {
		errInto(resp, err)
	}
}

// incr is the server-side counter: one def-class read-modify-write
// round trip, with contention left to the engine's contention manager
// instead of client CAS loops. A missing (or expired) key counts from
// zero; a non-integer value is a clean StatusErr committed read-only
// (like a CAS mismatch, it is an outcome, not an engine failure). The
// new value rides back in resp.Int. Counters keep an armed TTL ticking
// (KeepTTL) — touching a counter neither re-arms nor disarms it —
// except when the increment revives an expired entry, which must not
// inherit the dead deadline.
func (s *Store) incr(ctx context.Context, sh *shard, key []byte, delta uint64, negate bool, sem core.Semantics, resp *wire.Response) {
	if delta > math.MaxInt64 {
		errInto(resp, fmt.Errorf("server: INCR delta %d overflows int64", delta))
		return
	}
	d := int64(delta)
	if negate {
		d = -d
	}
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if !s.ownsKey(sh, key) {
			return errMovedKey
		}
		cur, ok, err := sh.m.GetTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		expired := ok && sh.expiredNow(key)
		var n int64
		if ok && !expired {
			n, err = strconv.ParseInt(cur, 10, 64)
			if err != nil {
				resp.Status = wire.StatusErr
				resp.Msg = fmt.Sprintf("server: INCR on non-integer value %q", cur)
				return nil
			}
		}
		if (d > 0 && n > math.MaxInt64-d) || (d < 0 && n < math.MinInt64-d) {
			resp.Status = wire.StatusErr
			resp.Msg = fmt.Sprintf("server: counter %d%+d overflows int64", n, d)
			return nil
		}
		nv := n + d
		val := strconv.FormatInt(nv, 10)
		if _, err := sh.m.PutTx(tx, string(key), val); err != nil {
			return err
		}
		resp.Status = wire.StatusOK
		resp.Int = nv
		cp.setOpts(key, []byte(val), 0, !expired)
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	s.incrOps.Add(1)
}

// setex is SET with a TTL: the write is logged and replicated as an
// ordinary set (TTL never persists); the armed deadline lives in the
// shard's in-memory table, applied through the notifier so it lands in
// commit order before the ack. The capture is forced: arming the first
// deadline is what turns the session gate on.
func (s *Store) setex(ctx context.Context, sh *shard, key, val []byte, ttl time.Duration, resp *wire.Response) {
	if ttl <= 0 {
		errInto(resp, wire.ErrZeroTTL)
		return
	}
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.captureForce()
	defer sh.caps.Put(cp)
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if !s.ownsKey(sh, key) {
			return errMovedKey
		}
		if _, err := sh.m.PutTx(tx, string(key), string(val)); err != nil {
			return err
		}
		cp.setOpts(key, val, ttl, false)
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

func (s *Store) scan(ctx context.Context, from, to []byte, limit uint64, sem core.Semantics, resp *wire.Response) {
	tab := s.tab()
	if len(tab.shards) > 1 {
		s.scanFanout(ctx, tab, from, to, limit, sem, resp)
		return
	}
	sh := tab.shards[0]
	sh.routed.Add(1)
	err := sh.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		resp.Pairs = resp.Pairs[:0]
		rangeLimit := int(limit)
		if sh.ttl.Len() > 0 {
			// Expired entries are filtered below and must not consume the
			// limit: range unbounded, stop once enough live pairs landed.
			rangeLimit = 0
		}
		return sh.m.RangeTx(tx, lookupKey(from), lookupKey(to), rangeLimit, func(k, v string) bool {
			if sh.expiredNowStr(k) {
				return true
			}
			appendPair(resp, k, v)
			return limit == 0 || uint64(len(resp.Pairs)) < limit
		})
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

// txn executes the batch's sub-operations in ONE atomic unit: all
// commit together or none do. A batch whose keys live on one shard is
// a single transaction under the resolved semantics (the historical
// path); a batch spanning shards commits through the cross-shard
// protocol, one irrevocable transaction per participating shard.
func (s *Store) txn(ctx context.Context, batch []wire.Request, sem core.Semantics, resp *wire.Response) {
	// Validate before grouping: an unknown sub-op fails the whole batch
	// before any transaction starts on any shard.
	for i := range batch {
		switch batch[i].Op {
		case wire.OpGet, wire.OpSet, wire.OpCAS, wire.OpDel:
		default:
			errInto(resp, wire.ErrBadSubOp)
			return
		}
	}
	tab := s.tab()
	sh := tab.shards[0]
	if len(tab.shards) > 1 && len(batch) > 0 {
		single := true
		pos := tab.pos(hashKey(batch[0].Key))
		for i := 1; i < len(batch); i++ {
			if tab.pos(hashKey(batch[i].Key)) != pos {
				single = false
				break
			}
		}
		if !single {
			s.txnCross(ctx, tab, batch, resp)
			return
		}
		sh = tab.shards[pos]
	}
	sh.routed.Add(uint64(len(batch)))
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		for i := range batch {
			if batch[i].Op != wire.OpGet && !s.ownsKey(sh, batch[i].Key) {
				return errMovedKey
			}
		}
		resp.Batch = resp.Batch[:0]
		for i := range batch {
			sub := &batch[i]
			out := appendSub(resp)
			out.SubOp = sub.Op
			if err := applySubOp(tx, sh, sub, out, cp.appendOp); err != nil {
				return err
			}
		}
		// The whole batch is ONE record: its operations replay in one
		// transaction, atomic exactly as they committed.
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

// applySubOp runs one TXN sub-operation against a shard inside tx,
// filling out and reporting each mutation to record (nil-safe via the
// walCapture-style sink). It is shared by the single-shard TXN path
// (sink = the shard's walCapture) and the cross-shard prepare bodies
// (sink = the participant's prepare record under construction).
func applySubOp(tx *core.Tx, sh *shard, sub *wire.Request, out *wire.Response, record func(kind wal.OpKind, key, val []byte)) error {
	switch sub.Op {
	case wire.OpGet:
		v, ok, err := sh.m.GetTx(tx, lookupKey(sub.Key))
		if err != nil {
			return err
		}
		if ok && !sh.expiredNow(sub.Key) {
			out.Status = wire.StatusOK
			out.Val = append(out.Val, v...)
		} else {
			out.Status = wire.StatusNotFound
		}
	case wire.OpSet:
		if _, err := sh.m.PutTx(tx, string(sub.Key), string(sub.Val)); err != nil {
			return err
		}
		out.Status = wire.StatusOK
		record(wal.OpSet, sub.Key, sub.Val)
	case wire.OpCAS:
		cur, ok, err := sh.m.GetTx(tx, lookupKey(sub.Key))
		if err != nil {
			return err
		}
		switch {
		case !ok || sh.expiredNow(sub.Key):
			out.Status = wire.StatusNotFound
		case cur != lookupKey(sub.Old):
			out.Status = wire.StatusCASMismatch
			out.Val = append(out.Val, cur...)
		default:
			if _, err := sh.m.PutTx(tx, string(sub.Key), string(sub.Val)); err != nil {
				return err
			}
			out.Status = wire.StatusOK
			record(wal.OpSet, sub.Key, sub.Val)
		}
	case wire.OpDel:
		if sh.expiredNow(sub.Key) {
			out.Status = wire.StatusNotFound
			break
		}
		removed, err := sh.m.DeleteTx(tx, lookupKey(sub.Key))
		if err != nil {
			return err
		}
		if removed {
			out.Status = wire.StatusOK
			record(wal.OpDel, sub.Key, nil)
		} else {
			out.Status = wire.StatusNotFound
		}
	default:
		return wire.ErrBadSubOp
	}
	return nil
}

// stats snapshots the aggregated engine counters — including the
// per-semantics breakdown that makes the polymorphic schedule-
// acceptance gap visible from the wire — plus, on a sharded store, the
// per-shard routing distribution and per-shard WAL rows.
func (s *Store) stats(resp *wire.Response) {
	tab := s.tab()
	snap := s.Stats()
	cs := append(resp.Counters[:0], []wire.Counter{
		{Name: "starts", Value: snap.Starts},
		{Name: "commits", Value: snap.Commits},
		{Name: "aborts", Value: snap.Aborts},
		{Name: "read_aborts", Value: snap.ReadAborts},
		{Name: "lock_aborts", Value: snap.LockAborts},
		{Name: "validate_aborts", Value: snap.ValidateAbort},
		{Name: "kills", Value: snap.Kills},
		{Name: "extensions", Value: snap.Extensions},
		{Name: "elastic_cuts", Value: snap.ElasticCuts},
		{Name: "snapshot_reads", Value: snap.SnapshotReads},
		{Name: "irrevocables", Value: snap.Irrevocables},
		{Name: "vars", Value: snap.VarsAllocated},
		{Name: "reads", Value: snap.Reads},
		{Name: "writes", Value: snap.Writes},
	}...)
	for _, p := range []stm.Semantics{stm.SemanticsDef, stm.SemanticsWeak, stm.SemanticsSnapshot, stm.SemanticsIrrevocable} {
		c := snap.Sem(p)
		cs = append(cs,
			wire.Counter{Name: "starts." + p.String(), Value: c.Starts},
			wire.Counter{Name: "commits." + p.String(), Value: c.Commits},
			wire.Counter{Name: "aborts." + p.String(), Value: c.Aborts},
		)
	}
	cs = append(cs,
		wire.Counter{Name: "store_shards", Value: uint64(len(tab.shards))},
		wire.Counter{Name: "routing_epoch", Value: tab.epoch},
		wire.Counter{Name: "reshard_splits", Value: s.reshardSplits.Load()},
		wire.Counter{Name: "reshard_merges", Value: s.reshardMerges.Load()},
	)
	var armed uint64
	for _, sh := range tab.shards {
		armed += uint64(sh.ttl.Len())
	}
	cs = append(cs,
		wire.Counter{Name: "watch_sessions", Value: uint64(s.sessions.Sessions())},
		wire.Counter{Name: "events_pushed", Value: s.sessions.EventsPushed()},
		wire.Counter{Name: "events_lost", Value: s.sessions.EventsLost()},
		wire.Counter{Name: "keys_expired", Value: s.keysExpired.Load()},
		wire.Counter{Name: "ttl_armed", Value: armed},
		wire.Counter{Name: "incr_ops", Value: s.incrOps.Load()},
	)
	cs = append(cs,
		wire.Counter{Name: "repl_role", Value: uint64(s.role.Load())},
		wire.Counter{Name: "repl_failovers", Value: s.failovers.Load()},
	)
	if fn := s.replCounters.Load(); fn != nil {
		cs = append(cs, (*fn)()...)
	}
	if s.durable() {
		var bytes, records, fsyncs, checkpoints uint64
		var chainLen, deltaBytes, baseBytes uint64
		for _, sh := range tab.shards {
			b, r, f, c := sh.wal.Stats()
			bytes += b
			records += r
			fsyncs += f
			checkpoints += c
			ch := sh.wal.Chain()
			if n := uint64(ch.Len()); n > chainLen {
				chainLen = n // the longest chain bounds restart work
			}
			deltaBytes += ch.DeltaBytes()
			baseBytes += ch.BaseBytes
		}
		cs = append(cs,
			wire.Counter{Name: "wal_bytes", Value: bytes},
			wire.Counter{Name: "wal_records", Value: records},
			wire.Counter{Name: "wal_fsyncs", Value: fsyncs},
			wire.Counter{Name: "wal_checkpoints", Value: checkpoints},
			wire.Counter{Name: "wal_segment", Value: tab.shards[0].wal.Segment()},
			wire.Counter{Name: "ckpt_chain_len", Value: chainLen},
			wire.Counter{Name: "ckpt_delta_bytes", Value: deltaBytes},
			wire.Counter{Name: "ckpt_base_bytes", Value: baseBytes},
			wire.Counter{Name: "ckpt_last_kind", Value: uint64(tab.shards[0].wal.LastCheckpointKind())},
		)
	}
	if len(tab.shards) > 1 {
		cs = append(cs,
			wire.Counter{Name: "xshard_txns", Value: s.xshardTxns.Load()},
			wire.Counter{Name: "xshard_aborts", Value: s.xshardAborts.Load()},
		)
		// The shard-distribution rows, keyed by stable shard id: how the
		// workload's keys spread, and (post-reshard) each shard's slice.
		for i, sh := range tab.shards {
			cs = append(cs, wire.Counter{Name: fmt.Sprintf("shard%d.ops", sh.idx), Value: sh.routed.Load()})
			if tab.epoch > 0 {
				cs = append(cs,
					wire.Counter{Name: fmt.Sprintf("shard%d.mod", sh.idx), Value: tab.slices[i].mod},
					wire.Counter{Name: fmt.Sprintf("shard%d.res", sh.idx), Value: tab.slices[i].res},
				)
			}
			if sh.wal != nil {
				b, r, f, _ := sh.wal.Stats()
				ch := sh.wal.Chain()
				cs = append(cs,
					wire.Counter{Name: fmt.Sprintf("shard%d.wal_bytes", sh.idx), Value: b},
					wire.Counter{Name: fmt.Sprintf("shard%d.wal_records", sh.idx), Value: r},
					wire.Counter{Name: fmt.Sprintf("shard%d.wal_fsyncs", sh.idx), Value: f},
					wire.Counter{Name: fmt.Sprintf("shard%d.ckpt_chain_len", sh.idx), Value: uint64(ch.Len())},
					wire.Counter{Name: fmt.Sprintf("shard%d.ckpt_delta_bytes", sh.idx), Value: ch.DeltaBytes()},
					wire.Counter{Name: fmt.Sprintf("shard%d.ckpt_base_bytes", sh.idx), Value: ch.BaseBytes},
					wire.Counter{Name: fmt.Sprintf("shard%d.ckpt_last_kind", sh.idx), Value: uint64(sh.wal.LastCheckpointKind())},
				)
			}
		}
	}
	resp.Status = wire.StatusOK
	resp.Counters = cs
}

func (s *Store) flush(ctx context.Context, sem core.Semantics, resp *wire.Response) {
	tab := s.tab()
	if len(tab.shards) > 1 {
		s.adminCross(ctx, tab, wal.OpFlush, resp)
		return
	}
	sh := tab.shards[0]
	sh.routed.Add(1)
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		// Freshness: a split racing this flush may have published a
		// second shard this body would miss — retry through the new
		// table so FLUSH stays whole-store atomic.
		if s.tab() != tab {
			return errMovedKey
		}
		n, err := sh.m.ClearTx(tx)
		if err != nil {
			return err
		}
		resp.N = uint64(n)
		cp.flush()
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

func (s *Store) rebuild(ctx context.Context, sem core.Semantics, resp *wire.Response) {
	tab := s.tab()
	if len(tab.shards) > 1 {
		s.adminCross(ctx, tab, wal.OpRebuild, resp)
		return
	}
	sh := tab.shards[0]
	sh.routed.Add(1)
	g := s.grace.enter()
	defer s.grace.exit(g)
	cp, sem := sh.capture(sem)
	if cp != nil {
		defer sh.caps.Put(cp)
	}
	err := sh.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if s.tab() != tab {
			return errMovedKey
		}
		n, err := sh.m.RebuildTx(tx)
		if err != nil {
			return err
		}
		resp.N = uint64(n)
		cp.rebuild()
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}
