package server

import (
	"context"
	"sync"
	"unsafe"

	"polytm/internal/core"
	"polytm/internal/stm"
	"polytm/internal/structures"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// DefaultSemantics is the server's per-request-class semantics mapping —
// the subsystem's rendition of the paper's start(p). Each wire opcode is
// a request class, and each class gets the weakest semantics that still
// carries its correctness requirement:
//
//   - GET/MGET run as snapshot transactions: point reads need a
//     consistent committed value but tolerate slight staleness, and the
//     multi-versioned read path never aborts and never blocks writers —
//     the ideal profile for read-dominated KV traffic.
//   - SCAN runs elastically (weak): a range scan is a search traversal;
//     consecutive hops must be mutually consistent but the window may
//     slide past concurrent inserts elsewhere in the range, exactly like
//     the paper's elastic list search.
//   - SET/CAS/DEL/TXN run under def: updates relink skip-list towers and
//     read-modify-write values, which need full opacity.
//   - FLUSH/REBUILD (admin) run irrevocably: whole-store operations
//     would starve under optimistic retry against heavy traffic, so they
//     take the guaranteed-commit semantics and serialize.
//
// A request may override its class's mapping with an explicit semantics
// byte in the frame header.
func DefaultSemantics(op wire.Op) core.Semantics {
	switch op {
	case wire.OpGet, wire.OpMGet:
		return core.Snapshot
	case wire.OpScan:
		return core.Weak
	case wire.OpFlush, wire.OpRebuild:
		return core.Irrevocable
	default: // OpSet, OpCAS, OpDel, OpTxn, OpStats
		return core.Def
	}
}

// resolveSemantics applies a request's semantics byte over the class
// default. Validation lives in wire.Semantics — the one place the byte
// range is checked — so requests that bypass the wire decoder (tests,
// in-process embedding) are rejected identically to decoded ones.
//
// A hand-built frame can ask for any combination, including snapshot
// (read-only) semantics on a write opcode; the engine would reject the
// write mid-transaction (stm.ErrSnapshotWrite), but only after a
// transaction has started and begun its attempt. The protocol layer
// knows the combination is nonsense from the header alone, so it is
// rejected here — before any transaction starts — with the typed
// *wire.SnapshotWriteError.
func resolveSemantics(req *wire.Request) (core.Semantics, error) {
	sem, err := wire.Semantics(req.Sem, DefaultSemantics(req.Op))
	if err != nil {
		return 0, err
	}
	if sem == core.Snapshot && req.Op.Mutates() {
		return 0, &wire.SnapshotWriteError{Op: req.Op}
	}
	return sem, nil
}

// Store is the server's keyspace: a transactional ordered map over one
// polymorphic TM. All transaction-semantics policy lives in the request
// execution path, not in the structure.
//
// A durable store (EnableDurability) additionally owns a write-ahead
// log: every mutating request runs as an irrevocable transaction that
// reserves its log record under the irrevocable token, and is
// acknowledged only once the record is durable.
type Store struct {
	tm *core.TM
	m  *structures.TSkipMap

	wal  *wal.Log
	caps sync.Pool // *walCapture, created by EnableDurability

	ckptStop chan struct{}
	ckptDone chan struct{}
}

// NewStore creates an empty store on tm.
func NewStore(tm *core.TM) *Store {
	return &Store{tm: tm, m: structures.NewTSkipMap(tm)}
}

// TM returns the store's transactional memory (stats, tests).
func (s *Store) TM() *core.TM { return s.tm }

// Execute runs one decoded request against the store and returns its
// response. It never returns an error: failures become StatusErr
// responses so the connection's pipeline keeps its 1:1 ordering.
func (s *Store) Execute(req *wire.Request) *wire.Response {
	resp := new(wire.Response)
	s.ExecuteCtx(context.Background(), req, resp)
	return resp
}

// ExecuteInto is Execute writing into a caller-owned response, reusing
// its slice storage (value buffer, scan pairs, sub-responses, counter
// list) — the execution path of a connection loop that keeps one
// Response per connection. The previous contents of resp are
// discarded; the filled resp is valid until the next ExecuteInto on it.
func (s *Store) ExecuteInto(req *wire.Request, resp *wire.Response) {
	s.ExecuteCtx(context.Background(), req, resp)
}

// ExecuteCtx is ExecuteInto bounded by a request-scoped context: the
// server derives one per connection — cancelled when the connection's
// handler exits and on forced drain — so an abandoned request's
// transaction stops retrying instead of running to completion for
// nobody. A cancelled transaction surfaces as a StatusErr response
// matching stm.ErrCancelled.
func (s *Store) ExecuteCtx(ctx context.Context, req *wire.Request, resp *wire.Response) {
	resetResponse(resp)
	sem, err := resolveSemantics(req)
	if err != nil {
		errInto(resp, err)
		return
	}
	// Durable stores escalate every mutation to the irrevocable class —
	// even over an explicit weaker override. The log needs a total
	// order matching commit order, and the irrevocable token is that
	// order; it also guarantees a reserved record's transaction commits.
	var cp *walCapture
	if s.wal != nil && req.Op.Mutates() {
		cp = s.caps.Get().(*walCapture)
		cp.reset()
		defer s.caps.Put(cp)
		sem = core.Irrevocable
	}
	switch req.Op {
	case wire.OpGet:
		s.get(ctx, req.Key, sem, resp)
	case wire.OpSet:
		s.set(ctx, req.Key, req.Val, sem, resp, cp)
	case wire.OpCAS:
		s.cas(ctx, req.Key, req.Old, req.Val, sem, resp, cp)
	case wire.OpDel:
		s.del(ctx, req.Key, sem, resp, cp)
	case wire.OpScan:
		s.scan(ctx, req.From, req.To, req.Limit, sem, resp)
	case wire.OpMGet:
		s.mget(ctx, req.Keys, sem, resp)
	case wire.OpTxn:
		s.txn(ctx, req.Batch, sem, resp, cp)
	case wire.OpStats:
		s.stats(resp)
	case wire.OpFlush:
		s.flush(ctx, sem, resp, cp)
	case wire.OpRebuild:
		s.rebuild(ctx, sem, resp, cp)
	default:
		errInto(resp, wire.ErrBadOp)
	}
}

// atomicMut runs one mutating request's transaction. The non-durable
// path is the historical hot path, untouched. The durable path runs fn
// with the capture as the transaction's observer — confirming or
// tombstoning the record the body reserved — and gates the
// acknowledgement on the record being durable.
func (s *Store) atomicMut(ctx context.Context, sem core.Semantics, cp *walCapture, fn func(tx *core.Tx) error) error {
	if cp == nil {
		return s.tm.AtomicAsCtx(ctx, sem, fn)
	}
	err := s.tm.AtomicCtx(ctx, fn, core.WithSemantics(sem), core.WithObserver(cp))
	if err != nil {
		return err
	}
	return cp.wait()
}

// resetResponse scrubs resp for reuse, truncating (not freeing) its
// slice storage.
func resetResponse(r *wire.Response) {
	r.Status = wire.StatusOK
	r.Val = r.Val[:0]
	r.Pairs = r.Pairs[:0]
	r.Batch = r.Batch[:0]
	r.Counters = r.Counters[:0]
	r.N = 0
	r.Msg = ""
	r.SubOp = 0
}

// errInto folds err into resp as a StatusErr response.
func errInto(resp *wire.Response, err error) {
	resp.Status = wire.StatusErr
	resp.Msg = err.Error()
}

// lookupKey views a wire key as a string without copying. Safe only
// for operations that compare the key and never retain it (lookups,
// deletes, range bounds): the skip map stores the keys it inserts, so
// every insertion path converts with a real copy instead.
func lookupKey(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// appendPair appends one scan result to resp.Pairs, reusing the
// entry's key/value storage when the slice has capacity.
func appendPair(resp *wire.Response, k, v string) {
	n := len(resp.Pairs)
	if n < cap(resp.Pairs) {
		resp.Pairs = resp.Pairs[:n+1]
	} else {
		resp.Pairs = append(resp.Pairs, wire.KV{})
	}
	p := &resp.Pairs[n]
	p.Key = append(p.Key[:0], k...)
	p.Val = append(p.Val[:0], v...)
}

// appendSub appends one sub-response slot to resp.Batch, reusing the
// entry's storage when the slice has capacity, and returns it fully
// scrubbed (via resetResponse — every field, not just the ones MGET
// and TXN happen to set: a reused slot carries whatever the previous
// request left in Msg, N, Pairs, Counters and nested Batch, and any
// stale field is a wire leak waiting for the encoder to grow a path
// that reads it).
func appendSub(resp *wire.Response) *wire.Response {
	n := len(resp.Batch)
	if n < cap(resp.Batch) {
		resp.Batch = resp.Batch[:n+1]
	} else {
		resp.Batch = append(resp.Batch, wire.Response{})
	}
	sub := &resp.Batch[n]
	resetResponse(sub)
	return sub
}

func (s *Store) get(ctx context.Context, key []byte, sem core.Semantics, resp *wire.Response) {
	err := s.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		v, ok, err := s.m.GetTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Val = resp.Val[:0]
			return nil
		}
		resp.Status = wire.StatusOK
		resp.Val = append(resp.Val[:0], v...)
		return nil
	})
	if err != nil {
		errInto(resp, err)
	}
}

func (s *Store) set(ctx context.Context, key, val []byte, sem core.Semantics, resp *wire.Response, cp *walCapture) {
	err := s.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		if _, err := s.m.PutTx(tx, string(key), string(val)); err != nil {
			return err
		}
		cp.set(key, val)
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

// cas is an atomic compare-and-swap: mismatches and misses COMMIT as
// read-only transactions (they are legitimate outcomes, not failures),
// so wire-level CAS misses never inflate the engine's abort counters.
func (s *Store) cas(ctx context.Context, key, old, val []byte, sem core.Semantics, resp *wire.Response, cp *walCapture) {
	err := s.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		cur, ok, err := s.m.GetTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Val = resp.Val[:0]
			return nil
		}
		if cur != lookupKey(old) {
			resp.Status = wire.StatusCASMismatch
			resp.Val = append(resp.Val[:0], cur...)
			return nil
		}
		if _, err := s.m.PutTx(tx, string(key), string(val)); err != nil {
			return err
		}
		resp.Status = wire.StatusOK
		resp.Val = resp.Val[:0]
		// Only a successful swap mutates state; misses and mismatches
		// reserve nothing and the log stays untouched.
		cp.set(key, val)
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
	}
}

func (s *Store) del(ctx context.Context, key []byte, sem core.Semantics, resp *wire.Response, cp *walCapture) {
	err := s.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		removed, err := s.m.DeleteTx(tx, lookupKey(key))
		if err != nil {
			return err
		}
		if removed {
			resp.Status = wire.StatusOK
			cp.del(key)
			cp.reserve()
		} else {
			resp.Status = wire.StatusNotFound
		}
		return nil
	})
	if err != nil {
		errInto(resp, err)
	}
}

func (s *Store) scan(ctx context.Context, from, to []byte, limit uint64, sem core.Semantics, resp *wire.Response) {
	err := s.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		resp.Pairs = resp.Pairs[:0]
		return s.m.RangeTx(tx, lookupKey(from), lookupKey(to), int(limit), func(k, v string) bool {
			appendPair(resp, k, v)
			return true
		})
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

func (s *Store) mget(ctx context.Context, keys [][]byte, sem core.Semantics, resp *wire.Response) {
	err := s.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
		resp.Batch = resp.Batch[:0]
		for _, key := range keys {
			v, ok, err := s.m.GetTx(tx, lookupKey(key))
			if err != nil {
				return err
			}
			sub := appendSub(resp)
			if ok {
				sub.Status = wire.StatusOK
				sub.Val = append(sub.Val, v...)
			} else {
				sub.Status = wire.StatusNotFound
			}
		}
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

// txn executes the batch's sub-operations in ONE transaction: all commit
// together or none do, and the batch observes and produces a single
// atomic state change under the resolved semantics.
func (s *Store) txn(ctx context.Context, batch []wire.Request, sem core.Semantics, resp *wire.Response, cp *walCapture) {
	err := s.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		resp.Batch = resp.Batch[:0]
		for i := range batch {
			sub := &batch[i]
			out := appendSub(resp)
			out.SubOp = sub.Op
			switch sub.Op {
			case wire.OpGet:
				v, ok, err := s.m.GetTx(tx, lookupKey(sub.Key))
				if err != nil {
					return err
				}
				if ok {
					out.Status = wire.StatusOK
					out.Val = append(out.Val, v...)
				} else {
					out.Status = wire.StatusNotFound
				}
			case wire.OpSet:
				if _, err := s.m.PutTx(tx, string(sub.Key), string(sub.Val)); err != nil {
					return err
				}
				out.Status = wire.StatusOK
				cp.set(sub.Key, sub.Val)
			case wire.OpCAS:
				cur, ok, err := s.m.GetTx(tx, lookupKey(sub.Key))
				if err != nil {
					return err
				}
				switch {
				case !ok:
					out.Status = wire.StatusNotFound
				case cur != lookupKey(sub.Old):
					out.Status = wire.StatusCASMismatch
					out.Val = append(out.Val, cur...)
				default:
					if _, err := s.m.PutTx(tx, string(sub.Key), string(sub.Val)); err != nil {
						return err
					}
					out.Status = wire.StatusOK
					cp.set(sub.Key, sub.Val)
				}
			case wire.OpDel:
				removed, err := s.m.DeleteTx(tx, lookupKey(sub.Key))
				if err != nil {
					return err
				}
				if removed {
					out.Status = wire.StatusOK
					cp.del(sub.Key)
				} else {
					out.Status = wire.StatusNotFound
				}
			default:
				return wire.ErrBadSubOp
			}
		}
		// The whole batch is ONE record: its operations replay in one
		// transaction, atomic exactly as they committed.
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

// stats snapshots the engine counters, including the per-semantics
// breakdown that makes the polymorphic schedule-acceptance gap visible
// from the wire.
func (s *Store) stats(resp *wire.Response) {
	snap := s.tm.Stats()
	cs := append(resp.Counters[:0], []wire.Counter{
		{Name: "starts", Value: snap.Starts},
		{Name: "commits", Value: snap.Commits},
		{Name: "aborts", Value: snap.Aborts},
		{Name: "read_aborts", Value: snap.ReadAborts},
		{Name: "lock_aborts", Value: snap.LockAborts},
		{Name: "validate_aborts", Value: snap.ValidateAbort},
		{Name: "kills", Value: snap.Kills},
		{Name: "extensions", Value: snap.Extensions},
		{Name: "elastic_cuts", Value: snap.ElasticCuts},
		{Name: "snapshot_reads", Value: snap.SnapshotReads},
		{Name: "irrevocables", Value: snap.Irrevocables},
		{Name: "vars", Value: snap.VarsAllocated},
		{Name: "reads", Value: snap.Reads},
		{Name: "writes", Value: snap.Writes},
	}...)
	for _, p := range []stm.Semantics{stm.SemanticsDef, stm.SemanticsWeak, stm.SemanticsSnapshot, stm.SemanticsIrrevocable} {
		c := snap.Sem(p)
		cs = append(cs,
			wire.Counter{Name: "starts." + p.String(), Value: c.Starts},
			wire.Counter{Name: "commits." + p.String(), Value: c.Commits},
			wire.Counter{Name: "aborts." + p.String(), Value: c.Aborts},
		)
	}
	if s.wal != nil {
		bytes, records, fsyncs, checkpoints := s.wal.Stats()
		cs = append(cs,
			wire.Counter{Name: "wal_bytes", Value: bytes},
			wire.Counter{Name: "wal_records", Value: records},
			wire.Counter{Name: "wal_fsyncs", Value: fsyncs},
			wire.Counter{Name: "wal_checkpoints", Value: checkpoints},
			wire.Counter{Name: "wal_segment", Value: s.wal.Segment()},
		)
	}
	resp.Status = wire.StatusOK
	resp.Counters = cs
}

func (s *Store) flush(ctx context.Context, sem core.Semantics, resp *wire.Response, cp *walCapture) {
	err := s.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		n, err := s.m.ClearTx(tx)
		if err != nil {
			return err
		}
		resp.N = uint64(n)
		cp.flush()
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}

func (s *Store) rebuild(ctx context.Context, sem core.Semantics, resp *wire.Response, cp *walCapture) {
	err := s.atomicMut(ctx, sem, cp, func(tx *core.Tx) error {
		cp.begin()
		n, err := s.m.RebuildTx(tx)
		if err != nil {
			return err
		}
		resp.N = uint64(n)
		cp.rebuild()
		cp.reserve()
		return nil
	})
	if err != nil {
		errInto(resp, err)
		return
	}
	resp.Status = wire.StatusOK
}
