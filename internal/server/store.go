package server

import (
	"polytm/internal/core"
	"polytm/internal/stm"
	"polytm/internal/structures"
	"polytm/internal/wire"
)

// DefaultSemantics is the server's per-request-class semantics mapping —
// the subsystem's rendition of the paper's start(p). Each wire opcode is
// a request class, and each class gets the weakest semantics that still
// carries its correctness requirement:
//
//   - GET/MGET run as snapshot transactions: point reads need a
//     consistent committed value but tolerate slight staleness, and the
//     multi-versioned read path never aborts and never blocks writers —
//     the ideal profile for read-dominated KV traffic.
//   - SCAN runs elastically (weak): a range scan is a search traversal;
//     consecutive hops must be mutually consistent but the window may
//     slide past concurrent inserts elsewhere in the range, exactly like
//     the paper's elastic list search.
//   - SET/CAS/DEL/TXN run under def: updates relink skip-list towers and
//     read-modify-write values, which need full opacity.
//   - FLUSH/REBUILD (admin) run irrevocably: whole-store operations
//     would starve under optimistic retry against heavy traffic, so they
//     take the guaranteed-commit semantics and serialize.
//
// A request may override its class's mapping with an explicit semantics
// byte in the frame header.
func DefaultSemantics(op wire.Op) core.Semantics {
	switch op {
	case wire.OpGet, wire.OpMGet:
		return core.Snapshot
	case wire.OpScan:
		return core.Weak
	case wire.OpFlush, wire.OpRebuild:
		return core.Irrevocable
	default: // OpSet, OpCAS, OpDel, OpTxn, OpStats
		return core.Def
	}
}

// resolveSemantics applies a request's semantics byte over the class
// default.
func resolveSemantics(req *wire.Request) core.Semantics {
	if req.Sem == wire.SemDefault {
		return DefaultSemantics(req.Op)
	}
	return core.Semantics(req.Sem)
}

// Store is the server's keyspace: a transactional ordered map over one
// polymorphic TM. All transaction-semantics policy lives in the request
// execution path, not in the structure.
type Store struct {
	tm *core.TM
	m  *structures.TSkipMap
}

// NewStore creates an empty store on tm.
func NewStore(tm *core.TM) *Store {
	return &Store{tm: tm, m: structures.NewTSkipMap(tm)}
}

// TM returns the store's transactional memory (stats, tests).
func (s *Store) TM() *core.TM { return s.tm }

// Execute runs one decoded request against the store and returns its
// response. It never returns an error: failures become StatusErr
// responses so the connection's pipeline keeps its 1:1 ordering.
func (s *Store) Execute(req *wire.Request) *wire.Response {
	sem := resolveSemantics(req)
	switch req.Op {
	case wire.OpGet:
		return s.get(req.Key, sem)
	case wire.OpSet:
		return s.set(req.Key, req.Val, sem)
	case wire.OpCAS:
		return s.cas(req.Key, req.Old, req.Val, sem)
	case wire.OpDel:
		return s.del(req.Key, sem)
	case wire.OpScan:
		return s.scan(req.From, req.To, req.Limit, sem)
	case wire.OpMGet:
		return s.mget(req.Keys, sem)
	case wire.OpTxn:
		return s.txn(req.Batch, sem)
	case wire.OpStats:
		return s.stats()
	case wire.OpFlush:
		return s.flush(sem)
	case wire.OpRebuild:
		return s.rebuild(sem)
	default:
		return errResponse(wire.ErrBadOp)
	}
}

func errResponse(err error) *wire.Response {
	return &wire.Response{Status: wire.StatusErr, Msg: err.Error()}
}

func (s *Store) get(key []byte, sem core.Semantics) *wire.Response {
	resp := &wire.Response{}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		v, ok, err := s.m.GetTx(tx, string(key))
		if err != nil {
			return err
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Val = nil
			return nil
		}
		resp.Status = wire.StatusOK
		resp.Val = []byte(v)
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

func (s *Store) set(key, val []byte, sem core.Semantics) *wire.Response {
	err := s.tm.Atomic(func(tx *core.Tx) error {
		_, err := s.m.PutTx(tx, string(key), string(val))
		return err
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return &wire.Response{Status: wire.StatusOK}
}

// cas is an atomic compare-and-swap: mismatches and misses COMMIT as
// read-only transactions (they are legitimate outcomes, not failures),
// so wire-level CAS misses never inflate the engine's abort counters.
func (s *Store) cas(key, old, val []byte, sem core.Semantics) *wire.Response {
	resp := &wire.Response{}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		cur, ok, err := s.m.GetTx(tx, string(key))
		if err != nil {
			return err
		}
		if !ok {
			resp.Status = wire.StatusNotFound
			resp.Val = nil
			return nil
		}
		if cur != string(old) {
			resp.Status = wire.StatusCASMismatch
			resp.Val = []byte(cur)
			return nil
		}
		if _, err := s.m.PutTx(tx, string(key), string(val)); err != nil {
			return err
		}
		resp.Status = wire.StatusOK
		resp.Val = nil
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

func (s *Store) del(key []byte, sem core.Semantics) *wire.Response {
	resp := &wire.Response{}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		removed, err := s.m.DeleteTx(tx, string(key))
		if err != nil {
			return err
		}
		if removed {
			resp.Status = wire.StatusOK
		} else {
			resp.Status = wire.StatusNotFound
		}
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

func (s *Store) scan(from, to []byte, limit uint64, sem core.Semantics) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		resp.Pairs = resp.Pairs[:0]
		return s.m.RangeTx(tx, string(from), string(to), int(limit), func(k, v string) bool {
			resp.Pairs = append(resp.Pairs, wire.KV{Key: []byte(k), Val: []byte(v)})
			return true
		})
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

func (s *Store) mget(keys [][]byte, sem core.Semantics) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		resp.Batch = resp.Batch[:0]
		for _, key := range keys {
			v, ok, err := s.m.GetTx(tx, string(key))
			if err != nil {
				return err
			}
			sub := wire.Response{Status: wire.StatusNotFound}
			if ok {
				sub = wire.Response{Status: wire.StatusOK, Val: []byte(v)}
			}
			resp.Batch = append(resp.Batch, sub)
		}
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

// txn executes the batch's sub-operations in ONE transaction: all commit
// together or none do, and the batch observes and produces a single
// atomic state change under the resolved semantics.
func (s *Store) txn(batch []wire.Request, sem core.Semantics) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		resp.Batch = resp.Batch[:0]
		for i := range batch {
			sub := &batch[i]
			out := wire.Response{SubOp: sub.Op}
			switch sub.Op {
			case wire.OpGet:
				v, ok, err := s.m.GetTx(tx, string(sub.Key))
				if err != nil {
					return err
				}
				if ok {
					out.Status = wire.StatusOK
					out.Val = []byte(v)
				} else {
					out.Status = wire.StatusNotFound
				}
			case wire.OpSet:
				if _, err := s.m.PutTx(tx, string(sub.Key), string(sub.Val)); err != nil {
					return err
				}
				out.Status = wire.StatusOK
			case wire.OpCAS:
				cur, ok, err := s.m.GetTx(tx, string(sub.Key))
				if err != nil {
					return err
				}
				switch {
				case !ok:
					out.Status = wire.StatusNotFound
				case cur != string(sub.Old):
					out.Status = wire.StatusCASMismatch
					out.Val = []byte(cur)
				default:
					if _, err := s.m.PutTx(tx, string(sub.Key), string(sub.Val)); err != nil {
						return err
					}
					out.Status = wire.StatusOK
				}
			case wire.OpDel:
				removed, err := s.m.DeleteTx(tx, string(sub.Key))
				if err != nil {
					return err
				}
				if removed {
					out.Status = wire.StatusOK
				} else {
					out.Status = wire.StatusNotFound
				}
			default:
				return wire.ErrBadSubOp
			}
			resp.Batch = append(resp.Batch, out)
		}
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

// stats snapshots the engine counters, including the per-semantics
// breakdown that makes the polymorphic schedule-acceptance gap visible
// from the wire.
func (s *Store) stats() *wire.Response {
	snap := s.tm.Stats()
	cs := []wire.Counter{
		{Name: "starts", Value: snap.Starts},
		{Name: "commits", Value: snap.Commits},
		{Name: "aborts", Value: snap.Aborts},
		{Name: "read_aborts", Value: snap.ReadAborts},
		{Name: "lock_aborts", Value: snap.LockAborts},
		{Name: "validate_aborts", Value: snap.ValidateAbort},
		{Name: "kills", Value: snap.Kills},
		{Name: "extensions", Value: snap.Extensions},
		{Name: "elastic_cuts", Value: snap.ElasticCuts},
		{Name: "snapshot_reads", Value: snap.SnapshotReads},
		{Name: "irrevocables", Value: snap.Irrevocables},
		{Name: "vars", Value: snap.VarsAllocated},
		{Name: "reads", Value: snap.Reads},
		{Name: "writes", Value: snap.Writes},
	}
	for _, p := range []stm.Semantics{stm.SemanticsDef, stm.SemanticsWeak, stm.SemanticsSnapshot, stm.SemanticsIrrevocable} {
		c := snap.Sem(p)
		cs = append(cs,
			wire.Counter{Name: "starts." + p.String(), Value: c.Starts},
			wire.Counter{Name: "commits." + p.String(), Value: c.Commits},
			wire.Counter{Name: "aborts." + p.String(), Value: c.Aborts},
		)
	}
	return &wire.Response{Status: wire.StatusOK, Counters: cs}
}

func (s *Store) flush(sem core.Semantics) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		n, err := s.m.ClearTx(tx)
		if err != nil {
			return err
		}
		resp.N = uint64(n)
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}

func (s *Store) rebuild(sem core.Semantics) *wire.Response {
	resp := &wire.Response{Status: wire.StatusOK}
	err := s.tm.Atomic(func(tx *core.Tx) error {
		n, err := s.m.RebuildTx(tx)
		if err != nil {
			return err
		}
		resp.N = uint64(n)
		return nil
	}, core.WithSemantics(sem))
	if err != nil {
		return errResponse(err)
	}
	return resp
}
