package server

import (
	"fmt"
	"testing"
)

// TestSplitSlicesMath: a split's two child slices exactly partition the
// parent slice — every key the parent owned lands on exactly one child,
// and no key from outside ever matches either.
func TestSplitSlicesMath(t *testing.T) {
	const mod, res = 4, 1
	sMod, sRes, dMod, dRes := splitSlices(mod, res)
	if sMod != 8 || sRes != 1 || dMod != 8 || dRes != 5 {
		t.Fatalf("splitSlices(4,1) = (%d,%d),(%d,%d); want (8,1),(8,5)", sMod, sRes, dMod, dRes)
	}
	for i := 0; i < 4096; i++ {
		h := hashKeyStr(fmt.Sprintf("key-%d", i))
		parent := h%mod == res
		src := h%sMod == sRes
		dst := h%dMod == dRes
		if parent != (src || dst) {
			t.Fatalf("hash %d: parent=%v src=%v dst=%v — children must partition the parent", h, parent, src, dst)
		}
		if src && dst {
			t.Fatalf("hash %d matched both children", h)
		}
	}
}

// TestMergeable: buddy validation accepts exactly the inverse of one
// split and rejects everything else.
func TestMergeable(t *testing.T) {
	if mod, res, err := mergeable(8, 1, 8, 5); err != nil || mod != 4 || res != 1 {
		t.Fatalf("mergeable(8,1 / 8,5) = (%d,%d), %v; want (4,1), nil", mod, res, err)
	}
	for _, bad := range []struct {
		name                   string
		aMod, aRes, bMod, bRes uint64
	}{
		{"unlike moduli", 8, 1, 4, 5},
		{"odd modulus", 3, 1, 3, 2},
		{"modulus one", 1, 0, 1, 0},
		{"not buddies", 8, 1, 8, 3},
		{"reversed pair", 8, 5, 8, 1},
	} {
		if _, _, err := mergeable(bad.aMod, bad.aRes, bad.bMod, bad.bRes); err == nil {
			t.Errorf("%s: mergeable(%d,%d / %d,%d) accepted", bad.name, bad.aMod, bad.aRes, bad.bMod, bad.bRes)
		}
	}
}

// TestRoutingTablePos: the uniform fast path and the mixed-moduli slow
// path agree, and a mixed table still partitions the hash space.
func TestRoutingTablePos(t *testing.T) {
	mk := func(slices []hashSlice) *routingTable {
		shards := make([]*shard, len(slices))
		for i := range shards {
			shards[i] = &shard{idx: i}
		}
		return newRoutingTable(1, shards, slices)
	}
	uni := mk([]hashSlice{{4, 0}, {4, 1}, {4, 2}, {4, 3}})
	if uni.uniform != 4 {
		t.Fatalf("uniform table not detected: %d", uni.uniform)
	}
	// Post-split of residue 1: (8,1) and (8,5) replace (4,1).
	mixed := mk([]hashSlice{{4, 0}, {8, 1}, {4, 2}, {4, 3}, {8, 5}})
	if mixed.uniform != 0 {
		t.Fatalf("mixed table claimed uniform %d", mixed.uniform)
	}
	for i := 0; i < 4096; i++ {
		h := hashKeyStr(fmt.Sprintf("key-%d", i))
		owners := 0
		for _, sl := range mixed.slices {
			if h%sl.mod == sl.res {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("hash %d owned by %d slices", h, owners)
		}
		p := mixed.pos(h)
		sl := mixed.slices[p]
		if h%sl.mod != sl.res {
			t.Fatalf("pos(%d) = %d but slice (%d,%d) does not own it", h, p, sl.mod, sl.res)
		}
		// The keys that stayed at modulus 4 must route identically in
		// both tables (a split moves only the split shard's keys).
		if h%4 != 1 && uni.pos(h) != func() int {
			for i, s := range mixed.slices {
				if h%s.mod == s.res {
					return i
				}
			}
			return -1
		}() {
			t.Fatalf("hash %d moved across an unrelated split", h)
		}
	}
	if mixed.byID(4).idx != 4 || mixed.byID(9) != nil {
		t.Fatalf("byID lookup broken")
	}
}
