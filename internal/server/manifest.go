package server

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The MANIFEST pins what a durable directory's logs mean. Two formats:
//
//	v1 (pre-resharding):  polyserve-wal shards=N
//	v2 (epoch-versioned): polyserve-wal v2 epoch=E next=I shards=N
//	                      shard <id> mod=<m> res=<r> dir=<d>   (× N)
//
// v1 implies routing epoch 0 with the historical layout: shard i has
// stable id i, hash slice (N, i), and directory shard-%04d (the root
// itself when N == 1). A store that has never resharded keeps writing
// v1, so old binaries and existing tests read its directories
// unchanged; the first SPLIT/MERGE upgrades the file to v2, where
// every shard's id, slice, and directory are explicit. The shard lines
// are in table order (ascending residue).
//
// The file is replaced atomically (tmp + rename + dir sync). A crash
// can strand the .tmp — openManifest sweeps it, since the rename
// either happened (MANIFEST is the new content) or did not (MANIFEST
// is the old content); the orphan is dead either way. Malformed
// content is always a loud error: silently opening N shard logs under
// a wrong table scatters keys to the wrong stores.

// manifestShard is one shard entry: stable id, hash slice, and the log
// directory (relative to the store dir; "." = the root itself).
type manifestShard struct {
	ID       int
	Mod, Res uint64
	Dir      string
}

// storeManifest is a parsed MANIFEST.
type storeManifest struct {
	Epoch  uint64
	NextID int
	Shards []manifestShard // table order (ascending residue)
}

// legacyManifest builds the v1-implied manifest for an n-shard store.
func legacyManifest(n int) *storeManifest {
	m := &storeManifest{NextID: n, Shards: make([]manifestShard, n)}
	for i := range m.Shards {
		dir := "."
		if n > 1 {
			dir = fmt.Sprintf("shard-%04d", i)
		}
		m.Shards[i] = manifestShard{ID: i, Mod: uint64(n), Res: uint64(i), Dir: dir}
	}
	return m
}

// legacyShaped reports whether m is exactly what v1 implies — if so,
// writeStoreManifest keeps the v1 format for compatibility.
func (m *storeManifest) legacyShaped() bool {
	if m.Epoch != 0 || m.NextID != len(m.Shards) {
		return false
	}
	n := len(m.Shards)
	for i, sh := range m.Shards {
		dir := "."
		if n > 1 {
			dir = fmt.Sprintf("shard-%04d", i)
		}
		if sh.ID != i || sh.Mod != uint64(n) || sh.Res != uint64(i) || sh.Dir != dir {
			return false
		}
	}
	return true
}

// posByID returns the index of the entry with stable id, -1 if absent.
func (m *storeManifest) posByID(id int) int {
	for i := range m.Shards {
		if m.Shards[i].ID == id {
			return i
		}
	}
	return -1
}

// openManifest reads dir's MANIFEST (nil when the file is absent — a
// fresh directory) and sweeps a stale MANIFEST.tmp left by a crashed
// rewrite. Every malformed shape is an explicit error.
func openManifest(dir string) (*storeManifest, error) {
	if tmp := filepath.Join(dir, manifestName+".tmp"); fileExists(tmp) {
		// The rename either completed (MANIFEST holds the new content)
		// or never happened (MANIFEST holds the old); the orphan is
		// dead weight that would shadow nothing but confuse operators.
		os.Remove(tmp)
	}
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return nil, fmt.Errorf("server: %s in %s is empty or unreadable", manifestName, dir)
	}
	header := sc.Text()
	if n := 0; !strings.HasPrefix(header, "polyserve-wal v2 ") {
		// v1: the single legacy line.
		if _, serr := fmt.Sscanf(header, "polyserve-wal shards=%d", &n); serr != nil || n < 1 {
			return nil, fmt.Errorf("server: malformed %s in %s: %q", manifestName, dir, header)
		}
		return legacyManifest(n), nil
	}
	m := &storeManifest{}
	var n int
	if _, serr := fmt.Sscanf(header, "polyserve-wal v2 epoch=%d next=%d shards=%d", &m.Epoch, &m.NextID, &n); serr != nil || n < 1 {
		return nil, fmt.Errorf("server: malformed %s header in %s: %q", manifestName, dir, header)
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e manifestShard
		if _, serr := fmt.Sscanf(line, "shard %d mod=%d res=%d dir=%s", &e.ID, &e.Mod, &e.Res, &e.Dir); serr != nil {
			return nil, fmt.Errorf("server: malformed %s shard line in %s: %q", manifestName, dir, line)
		}
		m.Shards = append(m.Shards, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Shards) != n {
		return nil, fmt.Errorf("server: %s in %s is truncated: header says %d shards, found %d", manifestName, dir, n, len(m.Shards))
	}
	for i, e := range m.Shards {
		if e.Mod == 0 || e.Res >= e.Mod {
			return nil, fmt.Errorf("server: %s in %s: shard %d has invalid slice (%d, %d)", manifestName, dir, e.ID, e.Mod, e.Res)
		}
		if e.ID >= m.NextID {
			return nil, fmt.Errorf("server: %s in %s: shard id %d >= next id %d", manifestName, dir, e.ID, m.NextID)
		}
		if i > 0 && e.Res <= m.Shards[i-1].Res {
			return nil, fmt.Errorf("server: %s in %s: shard lines not in residue order", manifestName, dir)
		}
	}
	return m, nil
}

// writeStoreManifest durably replaces dir's MANIFEST with m, keeping
// the v1 format while m is legacy-shaped.
func writeStoreManifest(dir string, m *storeManifest) error {
	var b strings.Builder
	if m.legacyShaped() {
		fmt.Fprintf(&b, "polyserve-wal shards=%d\n", len(m.Shards))
	} else {
		fmt.Fprintf(&b, "polyserve-wal v2 epoch=%d next=%d shards=%d\n", m.Epoch, m.NextID, len(m.Shards))
		for _, e := range m.Shards {
			fmt.Fprintf(&b, "shard %d mod=%d res=%d dir=%s\n", e.ID, e.Mod, e.Res, e.Dir)
		}
	}
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDirBestEffort(dir)
	return nil
}

// fileExists reports whether path exists (any kind).
func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
