package server

import (
	"bufio"
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/server/client"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// crashChildEnv marks the re-executed test binary as the victim
// process of TestCrashRecoveryKill9; its value is the WAL directory.
const crashChildEnv = "POLYSERVE_CRASH_DIR"

// crashKey formats the i-th sequential key of the crash workload.
func crashKey(i int) string { return fmt.Sprintf("key-%08d", i) }

// crashChild runs a real durable polyserve and loads it over TCP with
// sequential SETs, printing "ACK n" after each server acknowledgement
// — with -fsync=always, every printed n is on stable storage. It runs
// until SIGKILLed by the parent; background checkpoints run on a tight
// cadence so the kill can also land mid-checkpoint.
func crashChild(dir string) {
	srv := New(Config{Shards: 1})
	if _, err := srv.Store().EnableDurability(Durability{
		Dir:             dir,
		Fsync:           wal.ModeAlways,
		CheckpointEvery: 20 * time.Millisecond,
	}); err != nil {
		fmt.Printf("CHILD-ERR enable durability: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD-ERR listen: %v\n", err)
		os.Exit(1)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		fmt.Printf("CHILD-ERR dial: %v\n", err)
		os.Exit(1)
	}
	for i := 1; ; i++ {
		if err := cl.Set([]byte(crashKey(i)), []byte(strconv.Itoa(i))); err != nil {
			fmt.Printf("CHILD-ERR set %d: %v\n", i, err)
			os.Exit(1)
		}
		fmt.Printf("ACK %d\n", i)
	}
}

// TestCrashRecoveryKill9 is the acceptance experiment for the
// durability pipeline: a real server process is SIGKILLed mid-load
// (checkpoints racing the kill), then the same WAL directory is
// recovered and the store must contain EXACTLY the keys 1..N of a
// durable prefix, with N at least the last acknowledgement the client
// observed — nothing lost below it, nothing half-applied above it.
func TestCrashRecoveryKill9(t *testing.T) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir) // never returns
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoveryKill9$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Read acknowledgements until the workload is warm, then SIGKILL
	// mid-stream. Keep draining afterwards: acks already in the pipe
	// count (the client saw them before the kill).
	const killAfter = 200
	lastAck := 0
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(30*time.Second, func() { cmd.Process.Kill() })
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD-ERR") {
			t.Fatalf("crash child failed: %s", line)
		}
		n, ok := strings.CutPrefix(line, "ACK ")
		if !ok {
			continue // test-framework chatter
		}
		v, err := strconv.Atoi(n)
		if err != nil {
			continue
		}
		lastAck = v
		if v == killAfter {
			cmd.Process.Kill() // SIGKILL: no shutdown path runs
		}
	}
	cmd.Wait() // the kill makes this an error by design
	if lastAck < killAfter {
		t.Fatalf("child died after only %d acks (wanted >= %d)", lastAck, killAfter)
	}
	t.Logf("killed child after ACK %d", lastAck)

	// Recover the directory in-process and check the prefix contract.
	st := NewStore(core.NewDefault())
	res, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.CloseDurability()
	t.Logf("recovery: %s", res)

	got := scanAll(t, st)
	n := len(got)
	if n < lastAck {
		t.Fatalf("recovered %d keys < %d acknowledged — acknowledged-durable writes lost", n, lastAck)
	}
	for i := 1; i <= n; i++ {
		v, ok := got[crashKey(i)]
		if !ok {
			t.Fatalf("recovered state is not a prefix: %d keys but %s missing", n, crashKey(i))
		}
		if v != strconv.Itoa(i) {
			t.Fatalf("%s = %q, want %q", crashKey(i), v, strconv.Itoa(i))
		}
	}
	if _, ok := got[crashKey(n+1)]; ok {
		t.Fatalf("key beyond the prefix present")
	}

	// The recovered store must be live: it accepts and persists writes.
	if resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("post-crash"), Val: []byte("ok")}); resp.Status != wire.StatusOK {
		t.Fatalf("post-recovery write: %v %s", resp.Status, resp.Msg)
	}
}
