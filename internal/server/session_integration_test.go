package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/server/client"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// rawConn is a frame-level connection for protocol-violation tests: it
// speaks length prefixes directly so it can send what no client would.
type rawConn struct {
	t  *testing.T
	c  net.Conn
	br *bufio.Reader
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return &rawConn{t: t, c: c, br: bufio.NewReader(c)}
}

// sendRaw writes one frame with the given payload bytes.
func (r *rawConn) sendRaw(payload []byte) {
	r.t.Helper()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := r.c.Write(append(hdr[:], payload...)); err != nil {
		r.t.Fatalf("raw write: %v", err)
	}
}

// readResp reads one response frame and decodes it for op.
func (r *rawConn) readResp(op wire.Op) *wire.Response {
	r.t.Helper()
	raw, err := wire.ReadFrame(r.br, 0)
	if err != nil {
		r.t.Fatalf("raw read: %v", err)
	}
	resp, err := wire.DecodeResponse(raw, op, nil)
	if err != nil {
		r.t.Fatalf("raw decode: %v", err)
	}
	return resp
}

// TestProtocolErrorsKeepConnection is the S9 satellite: an unknown
// opcode or malformed frame gets one clean typed StatusErr reply and
// the connection keeps serving; an oversize frame gets the typed reply
// and then the cut (the stream cannot be resynchronized).
func TestProtocolErrorsKeepConnection(t *testing.T) {
	srv, addr := startReplServer(t, Config{Shards: 1, MaxFrame: 1 << 16}, nil, nil)
	_ = srv
	rc := dialRaw(t, addr)

	checkProto := func(resp *wire.Response, want wire.ProtoCode) *wire.ProtocolError {
		t.Helper()
		err := resp.Err()
		if err == nil {
			t.Fatalf("protocol violation answered with status %v, want StatusErr", resp.Status)
		}
		if !errors.Is(err, wire.ErrProtocol) {
			t.Fatalf("error %v does not match wire.ErrProtocol", err)
		}
		pe, ok := wire.ParseProtocolError(resp.Msg)
		if !ok {
			t.Fatalf("StatusErr %q is not a parseable protocol error", resp.Msg)
		}
		if pe.Code != want {
			t.Fatalf("protocol error code %v, want %v", pe.Code, want)
		}
		return pe
	}

	// Unknown opcode: op byte far beyond the defined range.
	rc.sendRaw([]byte{0xEE, byte(wire.SemDefault), 'k'})
	checkProto(rc.readResp(wire.OpGet), wire.ProtoUnknownOp)

	// Malformed body: INCR with a truncated key length.
	rc.sendRaw([]byte{byte(wire.OpIncr), byte(wire.SemDefault), 0xFF})
	checkProto(rc.readResp(wire.OpGet), wire.ProtoMalformed)

	// The connection SURVIVED both: a well-formed SET on the same
	// connection round-trips.
	buf, err := wire.AppendRequestFrame(nil, &wire.Request{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("alive"), Val: []byte("yes")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.c.Write(buf); err != nil {
		t.Fatalf("post-violation set: %v", err)
	}
	if resp := rc.readResp(wire.OpSet); resp.Err() != nil {
		t.Fatalf("post-violation set: %v", resp.Err())
	}

	// Oversize frame: a length prefix beyond MaxFrame. One typed reply,
	// then the connection ends.
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<20)
	if _, err := rc.c.Write(hdr[:]); err != nil {
		t.Fatalf("oversize prefix: %v", err)
	}
	checkProto(rc.readResp(wire.OpGet), wire.ProtoOversize)
	rc.c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := rc.br.ReadByte(); err != io.EOF {
		t.Fatalf("connection after oversize: %v, want EOF", err)
	}
}

// TestIncrDecrSetEx covers the counter and TTL opcodes end to end:
// atomic arithmetic on missing/existing keys, the typed failures, and
// lazy expiry making a SETEX key vanish from every read class before
// the reaper physically deletes it.
func TestIncrDecrSetEx(t *testing.T) {
	srv, addr := startReplServer(t, Config{Shards: 1, TTLReapEvery: -1}, nil, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if n, err := cl.Incr([]byte("ctr"), 5); err != nil || n != 5 {
		t.Fatalf("Incr(missing, 5) = %d, %v; want 5", n, err)
	}
	if n, err := cl.Incr([]byte("ctr"), 7); err != nil || n != 12 {
		t.Fatalf("Incr(+7) = %d, %v; want 12", n, err)
	}
	if n, err := cl.Decr([]byte("ctr"), 20); err != nil || n != -8 {
		t.Fatalf("Decr(20) = %d, %v; want -8", n, err)
	}
	// Non-integer value: typed StatusErr, value untouched.
	if err := cl.Set([]byte("word"), []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Incr([]byte("word"), 1); err == nil {
		t.Fatal("Incr on non-integer succeeded")
	}
	if v, _, _ := cl.Get([]byte("word")); string(v) != "abc" {
		t.Fatalf("failed Incr mutated the value: %q", v)
	}
	// Overflow: typed StatusErr.
	if err := cl.Set([]byte("max"), []byte(strconv.FormatInt(math.MaxInt64, 10))); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Incr([]byte("max"), 1); err == nil {
		t.Fatal("Incr overflow succeeded")
	}

	// SETEX + lazy expiry with the reaper disabled: GET, MGET, SCAN and
	// TXN-GET all report the key absent once the deadline passes, even
	// though nothing deleted it.
	if err := cl.SetEx([]byte("fleeting"), []byte("v"), 40*time.Millisecond); err != nil {
		t.Fatalf("SetEx: %v", err)
	}
	if _, ok, _ := cl.Get([]byte("fleeting")); !ok {
		t.Fatal("SETEX key missing before its TTL")
	}
	waitCond(t, 2*time.Second, "lazy expiry", func() bool {
		_, ok, err := cl.Get([]byte("fleeting"))
		return err == nil && !ok
	})
	if _, found, _ := cl.MGet([]byte("fleeting")); found[0] {
		t.Fatal("MGET sees expired key")
	}
	if pairs := scanPairs(t, cl); pairs["fleeting"] != "" {
		t.Fatal("SCAN sees expired key")
	}
	// The reaper (driven by hand) physically deletes it and counts it.
	if _, err := srv.Store().ReapExpired(t.Context()); err != nil {
		t.Fatalf("ReapExpired: %v", err)
	}
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats["keys_expired"] != 1 {
		t.Fatalf("keys_expired = %d, want 1", stats["keys_expired"])
	}
	if stats["ttl_armed"] != 0 {
		t.Fatalf("ttl_armed = %d after reap, want 0", stats["ttl_armed"])
	}
	if stats["incr_ops"] == 0 {
		t.Fatal("incr_ops stayed 0")
	}
	// INCR preserves a TTL (KeepTTL) but revives an expired key fresh.
	if err := cl.SetEx([]byte("ttlctr"), []byte("1"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Incr([]byte("ttlctr"), 1); err != nil {
		t.Fatal(err)
	}
	stats, _ = cl.Stats()
	if stats["ttl_armed"] != 1 {
		t.Fatalf("INCR dropped the TTL: ttl_armed = %d, want 1", stats["ttl_armed"])
	}
}

// collectEvents drains a watcher until no event arrives for the idle
// window, returning what it saw.
func collectEvents(w *client.Watcher, want int, idle time.Duration) []client.WatchEvent {
	var evs []client.WatchEvent
	timer := time.NewTimer(idle)
	defer timer.Stop()
	for {
		// Once the expected count arrives, linger one idle window to
		// catch duplicates; before that, wait generously.
		d := 5 * time.Second
		if len(evs) >= want {
			d = idle
		}
		timer.Reset(d)
		select {
		case ev, ok := <-w.Events():
			if !ok {
				return evs
			}
			evs = append(evs, ev)
		case <-timer.C:
			return evs
		}
	}
}

// TestWatchPushBasics: a prefix watcher sees SET and DEL events in
// commit order with strictly increasing sequence numbers; mid-session
// WATCH (Add) and UNWATCH work; non-matching keys stay silent.
func TestWatchPushBasics(t *testing.T) {
	srv, addr := startReplServer(t, Config{Shards: 1, StoreShards: 2, TTLReapEvery: -1}, nil, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	w, err := client.Watch(addr, []byte("w:"), true, client.WithoutReconnect())
	if err != nil {
		t.Fatalf("Watch: %v", err)
	}
	defer w.Close()
	if w.FirstID() == 0 {
		t.Fatal("first watch id is 0")
	}

	mustSet := func(k, v string) {
		if err := cl.Set([]byte(k), []byte(v)); err != nil {
			t.Fatalf("set %s: %v", k, err)
		}
	}
	mustSet("w:a", "1")
	mustSet("quiet", "x") // must not surface
	mustSet("w:b", "2")
	if _, err := cl.Del([]byte("w:a")); err != nil {
		t.Fatal(err)
	}

	evs := collectEvents(w, 3, 200*time.Millisecond)
	if len(evs) != 3 {
		t.Fatalf("got %d events %v, want 3", len(evs), evs)
	}
	wantOps := []wire.EventOp{wire.EventSet, wire.EventSet, wire.EventDel}
	wantKeys := []string{"w:a", "w:b", "w:a"}
	var lastSeq uint64
	for i, ev := range evs {
		if ev.Op != wantOps[i] || ev.Key != wantKeys[i] {
			t.Fatalf("event %d = %v %q, want %v %q", i, ev.Op, ev.Key, wantOps[i], wantKeys[i])
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("event %d seq %d not increasing past %d", i, ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// Liveness: a client PING round-trips without disturbing events.
	if err := w.Ping(); err != nil {
		t.Fatalf("watcher ping: %v", err)
	}

	// Mid-session watch via Add, then a TTL expiry event from the reaper.
	if err := w.Add([]byte("exact"), false); err != nil {
		t.Fatalf("Add: %v", err)
	}
	waitCond(t, 2*time.Second, "watch ack", func() bool {
		st, err := cl.Stats()
		return err == nil && st["watch_sessions"] == 1
	})
	mustSet("exact", "v")
	if err := cl.SetEx([]byte("w:ttl"), []byte("v"), 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	waitCond(t, 2*time.Second, "deadline passed", func() bool {
		_, ok, err := cl.Get([]byte("w:ttl"))
		return err == nil && !ok
	})
	if _, err := srv.Store().ReapExpired(t.Context()); err != nil {
		t.Fatal(err)
	}
	evs = collectEvents(w, 3, 200*time.Millisecond)
	if len(evs) != 3 {
		t.Fatalf("got %d events %v, want 3 (exact-set, ttl-set, expire)", len(evs), evs)
	}
	if evs[0].Key != "exact" || evs[0].Op != wire.EventSet {
		t.Fatalf("Add'd watch event = %v %q", evs[0].Op, evs[0].Key)
	}
	if evs[1].Key != "w:ttl" || evs[1].Op != wire.EventSet {
		t.Fatalf("setex event = %v %q", evs[1].Op, evs[1].Key)
	}
	if evs[2].Key != "w:ttl" || evs[2].Op != wire.EventExpire {
		t.Fatalf("expiry event = %v %q, want EXPIRE w:ttl", evs[2].Op, evs[2].Key)
	}
}

// TestFlushWatchTTLRegression pins the FLUSH/REBUILD contract: FLUSH
// publishes exactly ONE FLUSH event per watch (not one per shard) and
// clears every TTL; REBUILD is invisible to sessions and preserves
// TTLs.
func TestFlushWatchTTLRegression(t *testing.T) {
	_, addr := startReplServer(t, Config{Shards: 1, StoreShards: 4, TTLReapEvery: -1}, nil, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	w, err := client.Watch(addr, []byte(""), true, client.WithoutReconnect())
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	if err := cl.SetEx([]byte("t1"), []byte("v"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := collectEvents(w, 2, 250*time.Millisecond)
	if len(evs) != 2 || evs[0].Op != wire.EventSet || evs[1].Op != wire.EventFlush {
		t.Fatalf("events %v, want [SET t1, FLUSH]", evs)
	}
	st, _ := cl.Stats()
	if st["ttl_armed"] != 0 {
		t.Fatalf("FLUSH left %d TTLs armed", st["ttl_armed"])
	}
	// The cleared deadline must not haunt a reused key: a plain SET
	// after FLUSH lives forever.
	if err := cl.Set([]byte("t1"), []byte("immortal")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, ok, _ := cl.Get([]byte("t1")); !ok {
		t.Fatal("key expired from a deadline FLUSH should have cleared")
	}

	// REBUILD: silent for sessions, TTLs intact.
	if err := cl.SetEx([]byte("t2"), []byte("v"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Set([]byte("after"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	evs = collectEvents(w, 3, 250*time.Millisecond)
	// SET t1(immortal), SET t2, SET after — and nothing from REBUILD.
	if len(evs) != 3 {
		t.Fatalf("got %v, want exactly the 3 SETs around REBUILD", evs)
	}
	for i, k := range []string{"t1", "t2", "after"} {
		if evs[i].Op != wire.EventSet || evs[i].Key != k {
			t.Fatalf("event %d = %v %q, want SET %q", i, evs[i].Op, evs[i].Key, k)
		}
	}
	st, _ = cl.Stats()
	if st["ttl_armed"] != 1 {
		t.Fatalf("REBUILD disturbed TTLs: ttl_armed = %d, want 1", st["ttl_armed"])
	}
}

// TestWatchExactlyOnceUnderRace is the acceptance race test: N watchers
// and M writers, every committed write delivered exactly once to every
// watcher, in commit order, with identical per-key sequence streams
// across watchers. 20 iterations (run under -race in CI).
func TestWatchExactlyOnceUnderRace(t *testing.T) {
	const (
		iterations = 20
		watchers   = 3
		writers    = 3
		perWriter  = 15
	)
	_, addr := startReplServer(t, Config{Shards: 2, StoreShards: 2, TTLReapEvery: -1}, nil, nil)

	for iter := 0; iter < iterations; iter++ {
		ws := make([]*client.Watcher, watchers)
		for i := range ws {
			w, err := client.Watch(addr, []byte(fmt.Sprintf("race%d:", iter)), true, client.WithoutReconnect())
			if err != nil {
				t.Fatalf("iter %d: watch: %v", iter, err)
			}
			ws[i] = w
		}

		var wg sync.WaitGroup
		errs := make(chan error, writers)
		for j := 0; j < writers; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				cl, err := client.Dial(addr, client.WithPoolSize(1))
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				for i := 0; i < perWriter; i++ {
					key := []byte(fmt.Sprintf("race%d:w%d-%04d", iter, j, i))
					if err := cl.Set(key, []byte("v")); err != nil {
						errs <- fmt.Errorf("writer %d: %w", j, err)
						return
					}
				}
			}(j)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		const total = writers * perWriter
		streams := make([][]client.WatchEvent, watchers)
		for i, w := range ws {
			evs := collectEvents(w, total, 150*time.Millisecond)
			if len(evs) != total {
				t.Fatalf("iter %d: watcher %d saw %d events, want exactly %d", iter, i, len(evs), total)
			}
			seen := make(map[string]int, total)
			var lastSeq uint64
			for _, ev := range evs {
				seen[ev.Key]++
				if ev.Seq <= lastSeq {
					t.Fatalf("iter %d: watcher %d: seq %d not increasing past %d", iter, i, ev.Seq, lastSeq)
				}
				lastSeq = ev.Seq
			}
			for k, n := range seen {
				if n != 1 {
					t.Fatalf("iter %d: watcher %d saw %q %d times", iter, i, k, n)
				}
			}
			streams[i] = evs
		}
		// Every watcher saw the same commits with the same seq numbers —
		// per key, since cross-key order across shards isn't total.
		ref := make(map[string]uint64, total)
		for _, ev := range streams[0] {
			ref[ev.Key] = ev.Seq
		}
		for i := 1; i < watchers; i++ {
			for _, ev := range streams[i] {
				if ref[ev.Key] != ev.Seq {
					t.Fatalf("iter %d: watcher %d saw %q at seq %d, watcher 0 at %d", iter, i, ev.Key, ev.Seq, ref[ev.Key])
				}
			}
		}
		for _, w := range ws {
			w.Close()
		}
	}
}

// TestWatchOverflowCutsSession: a watcher that cannot keep up loses its
// session — EVENT-LOST with the dropped count, never a blocked commit.
func TestWatchOverflowCutsSession(t *testing.T) {
	_, addr := startReplServer(t, Config{Shards: 1, WatchBuffer: 8, TTLReapEvery: -1}, nil, nil)
	cl, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// A raw session that never reads: the server's push stalls into the
	// socket buffer and the session buffer (8) overflows. Event frames
	// carry the key, so fat keys fill the kernel buffers in dozens of
	// events rather than hundreds of thousands.
	rc := dialRaw(t, addr)
	req, err := wire.AppendRequestFrame(nil, &wire.Request{Op: wire.OpWatch, Sem: wire.SemDefault, Key: []byte("ov:"), Prefix: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rc.c.Write(req); err != nil {
		t.Fatal(err)
	}
	if resp := rc.readResp(wire.OpWatch); resp.Err() != nil {
		t.Fatalf("watch handshake: %v", resp.Err())
	}

	// Write until the server reports lost events; every Set must keep
	// succeeding (a slow watcher never blocks a commit).
	val := []byte("v")
	pad := strings.Repeat("k", 16<<10)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; ; i++ {
		if err := cl.Set([]byte(fmt.Sprintf("ov:%06d:%s", i, pad)), val); err != nil {
			t.Fatalf("set %d during overflow: %v", i, err)
		}
		if i%50 == 0 {
			st, err := cl.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if st["events_lost"] > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("no overflow after %d sets (events_pushed=%d)", i, st["events_pushed"])
			}
		}
	}

	// Now drain: buffered EVENTs, then EVENT-LOST, then EOF.
	rc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var f wire.SessFrame
	sawLost := false
	nread := 0
	for {
		raw, err := wire.ReadFrame(rc.br, 0)
		if err != nil {
			if !sawLost {
				t.Fatalf("session ended without EVENT-LOST after %d frames: %v", nread, err)
			}
			break
		}
		nread++
		if err := wire.DecodeSessFrame(&f, raw); err != nil {
			t.Fatalf("session frame: %v", err)
		}
		if f.Kind == wire.SessEventLost {
			if f.Dropped == 0 {
				t.Fatal("EVENT-LOST with dropped=0")
			}
			sawLost = true
		}
	}
	waitCond(t, 2*time.Second, "session gauge to drop", func() bool {
		st, err := cl.Stats()
		return err == nil && st["watch_sessions"] == 0
	})
}

// ttlCrashChildEnv marks the re-executed binary as the TTL crash
// victim; its value is the WAL directory.
const ttlCrashChildEnv = "POLYSERVE_TTL_CRASH_DIR"

// ttlCrashChild runs a durable, fsync-always server with a fast reaper
// and SETEXes short-lived keys, printing "ACK i" only once stats show
// keys_expired >= i — the client writes sequentially, so at that moment
// every key it has written is reaped and the reap deletes are on
// stable storage.
func ttlCrashChild(dir string) {
	srv := New(Config{Shards: 1, TTLReapEvery: 5 * time.Millisecond})
	if _, err := srv.Store().EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1}); err != nil {
		fmt.Printf("CHILD-ERR durability: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Printf("CHILD-ERR listen: %v\n", err)
		os.Exit(1)
	}
	go srv.Serve(ln)
	cl, err := client.Dial(ln.Addr().String())
	if err != nil {
		fmt.Printf("CHILD-ERR dial: %v\n", err)
		os.Exit(1)
	}
	for i := 1; ; i++ {
		key := []byte(fmt.Sprintf("boom-%06d", i))
		if err := cl.SetEx(key, []byte("x"), time.Millisecond); err != nil {
			fmt.Printf("CHILD-ERR setex %d: %v\n", i, err)
			os.Exit(1)
		}
		for {
			st, err := cl.Stats()
			if err != nil {
				fmt.Printf("CHILD-ERR stats: %v\n", err)
				os.Exit(1)
			}
			if st["keys_expired"] >= uint64(i) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		fmt.Printf("ACK %d\n", i)
	}
}

// TestTTLCrashRecoveryKill9: SIGKILL a server mid-expiry-storm, recover
// its WAL, and verify no expired-and-reaped key is resurrected — the
// reaper's deletes are ordinary durable WAL records, so the recovered
// keyspace agrees with everything the child acknowledged.
func TestTTLCrashRecoveryKill9(t *testing.T) {
	if dir := os.Getenv(ttlCrashChildEnv); dir != "" {
		ttlCrashChild(dir) // never returns
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestTTLCrashRecoveryKill9$", "-test.v")
	cmd.Env = append(os.Environ(), ttlCrashChildEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	const killAfter = 25
	lastAck := 0
	sc := bufio.NewScanner(stdout)
	deadline := time.AfterFunc(60*time.Second, func() { cmd.Process.Kill() })
	defer deadline.Stop()
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "CHILD-ERR") {
			t.Fatalf("ttl crash child failed: %s", line)
		}
		n, ok := strings.CutPrefix(line, "ACK ")
		if !ok {
			continue
		}
		v, err := strconv.Atoi(n)
		if err != nil {
			continue
		}
		lastAck = v
		if v == killAfter {
			cmd.Process.Kill()
		}
	}
	cmd.Wait()
	if lastAck < killAfter {
		t.Fatalf("child died after only %d acks (wanted >= %d)", lastAck, killAfter)
	}

	st := NewStore(core.NewDefault())
	res, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st.CloseDurability()
	t.Logf("recovery after ACK %d: %s", lastAck, res)

	got := scanAll(t, st)
	for i := 1; i <= lastAck; i++ {
		k := fmt.Sprintf("boom-%06d", i)
		if v, ok := got[k]; ok {
			t.Fatalf("reaped key %s resurrected by recovery (value %q)", k, v)
		}
	}
}

// TestFollowerPostExpiryEquivalence: expiry decided on the primary
// reaches followers as ordinary replicated deletes, so a promoted
// follower and a WAL-recovered primary serve the SAME post-expiry
// keyspace — no follower ever re-decides a deadline.
func TestFollowerPostExpiryEquivalence(t *testing.T) {
	pdir := t.TempDir()
	psrv, paddr := startReplServer(t, Config{StoreShards: 2, TTLReapEvery: -1},
		&Durability{Dir: pdir, Fsync: wal.ModeAlways, CheckpointEvery: -1},
		&ReplConfig{})
	fsrv, faddr := startReplServer(t, Config{StoreShards: 2, TTLReapEvery: -1},
		nil, &ReplConfig{Follow: paddr})

	pcl, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()

	for i := 0; i < 5; i++ {
		if err := pcl.Set([]byte(fmt.Sprintf("keep-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
		if err := pcl.SetEx([]byte(fmt.Sprintf("gone-%d", i)), []byte("v"), 20*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, 2*time.Second, "deadlines to pass", func() bool {
		_, ok, err := pcl.Get([]byte("gone-0"))
		return err == nil && !ok
	})
	// Drive expiry to completion on the primary (batches are bounded).
	waitCond(t, 5*time.Second, "reap to finish", func() bool {
		if _, err := psrv.Store().ReapExpired(t.Context()); err != nil {
			t.Fatalf("reap: %v", err)
		}
		st, err := pcl.Stats()
		return err == nil && st["keys_expired"] == 5 && st["ttl_armed"] == 0
	})

	want := scanPairs(t, pcl)
	if len(want) != 5 {
		t.Fatalf("primary keyspace %v, want the 5 keep keys", want)
	}

	// The follower converges on the same post-expiry keyspace.
	fcl, err := client.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fcl.Close()
	waitCond(t, 5*time.Second, "follower convergence", func() bool {
		got := scanPairs(t, fcl)
		return fmt.Sprint(got) == fmt.Sprint(want)
	})

	// Fail over: the promoted follower serves that keyspace as primary.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	psrv.Shutdown(ctx)
	cancel()
	if _, err := fsrv.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	got := scanPairs(t, fcl)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("promoted follower keyspace %v, want %v", got, want)
	}

	// And a fresh recovery of the primary's WAL agrees too.
	rst := NewShardedStore([]*core.TM{core.NewDefault(), core.NewDefault()})
	if _, err := rst.EnableDurability(Durability{Dir: pdir, Fsync: wal.ModeAlways, CheckpointEvery: -1}); err != nil {
		t.Fatalf("recover primary WAL: %v", err)
	}
	defer rst.CloseDurability()
	rec := scanAll(t, rst)
	if fmt.Sprint(rec) != fmt.Sprint(want) {
		t.Fatalf("recovered primary keyspace %v, want %v", rec, want)
	}
}
