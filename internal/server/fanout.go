package server

import (
	"context"
	"sync"

	"polytm/internal/core"
	"polytm/internal/wire"
)

// Read fan-out: MGET and SCAN on a sharded store run one transaction
// per participating shard, concurrently, and merge the results.
//
// The consistency contract is per-shard, not global: each shard's
// slice of the answer is internally consistent under the request's
// semantics (a snapshot MGET never sees a torn single-shard TXN; an
// elastic SCAN's traversal invariants hold within each shard), but the
// shards' snapshots are taken independently, so a reader racing a
// cross-shard TXN may see its effects on one shard and not yet on
// another. That is the documented trade the sharded store makes —
// single-key operations and single-shard batches keep full opacity,
// and readers that need a globally atomic view of specific keys can
// put those keys in a TXN of GETs (which commits through the
// cross-shard protocol and serializes against writers).

// mget answers a batch of point reads. Single shard (or a sharded
// store whose keys all hash to one shard): one transaction, the
// historical path. Otherwise: group keys by shard, pre-create one
// sub-response slot per key so the per-shard transactions write
// disjoint slots, and fan out.
func (s *Store) mget(ctx context.Context, keys [][]byte, sem core.Semantics, resp *wire.Response) {
	tab := s.tab()
	var only *shard
	if len(tab.shards) > 1 && len(keys) > 0 {
		only = tab.shardFor(hashKey(keys[0]))
		for _, k := range keys[1:] {
			if tab.shardFor(hashKey(k)) != only {
				only = nil
				break
			}
		}
	}
	if len(tab.shards) == 1 || len(keys) == 0 {
		only = tab.shards[0]
	}
	if only != nil {
		only.routed.Add(uint64(len(keys)))
		err := only.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
			resp.Batch = resp.Batch[:0]
			for _, key := range keys {
				v, ok, err := only.m.GetTx(tx, lookupKey(key))
				if err != nil {
					return err
				}
				sub := appendSub(resp)
				if ok && !only.expiredNow(key) {
					sub.Status = wire.StatusOK
					sub.Val = append(sub.Val, v...)
				} else {
					sub.Status = wire.StatusNotFound
				}
			}
			return nil
		})
		if err != nil {
			errInto(resp, err)
			return
		}
		resp.Status = wire.StatusOK
		return
	}

	resp.Batch = resp.Batch[:0]
	for range keys {
		appendSub(resp)
	}
	groups := make([][]int, len(tab.shards))
	for i, k := range keys {
		si := tab.pos(hashKey(k))
		groups[si] = append(groups[si], i)
	}
	errs := make([]error, len(tab.shards))
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		sh := tab.shards[si]
		sh.routed.Add(uint64(len(idxs)))
		wg.Add(1)
		go func(si int, sh *shard, idxs []int) {
			defer wg.Done()
			errs[si] = sh.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
				for _, j := range idxs {
					v, ok, err := sh.m.GetTx(tx, lookupKey(keys[j]))
					if err != nil {
						return err
					}
					// Distinct slots per goroutine; a retried body rewrites
					// only its own. Scrub the slot again here: the first
					// attempt may have half-filled it.
					sub := &resp.Batch[j]
					sub.Val = sub.Val[:0]
					if ok && !sh.expiredNow(keys[j]) {
						sub.Status = wire.StatusOK
						sub.Val = append(sub.Val, v...)
					} else {
						sub.Status = wire.StatusNotFound
					}
				}
				return nil
			})
		}(si, sh, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			resp.Batch = resp.Batch[:0]
			errInto(resp, err)
			return
		}
	}
	resp.Status = wire.StatusOK
}

// kvPair is one shard-local scan result awaiting the merge.
type kvPair struct {
	k, v string
}

// scanFanout runs the range on every shard concurrently — each shard
// scans up to the full limit, since in the worst case one shard owns
// every key of the range — then k-way-merges the per-shard ordered
// slices into resp.Pairs, stopping at limit. Shard count is small (a
// handful, bounded by cores), so the linear min-pick per emitted pair
// beats a heap on real sizes.
func (s *Store) scanFanout(ctx context.Context, tab *routingTable, from, to []byte, limit uint64, sem core.Semantics, resp *wire.Response) {
	n := len(tab.shards)
	results := make([][]kvPair, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i, sh := range tab.shards {
		sh.routed.Add(1)
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sl := tab.slices[i]
			var local []kvPair
			errs[i] = sh.tm.AtomicAsCtx(ctx, sem, func(tx *core.Tx) error {
				local = local[:0] // a retried body restarts its slice
				rangeLimit := int(limit)
				if sh.ttl.Len() > 0 || tab.epoch > 0 {
					// Expired entries are filtered and must not consume the
					// limit (see Store.scan). Post-reshard, so are keys the
					// shard no longer owns: a split leaves the moved half on
					// the source until lazy cleanup catches up, and the new
					// owner scans those same keys — filtering by the routing
					// slice keeps the merge duplicate-free.
					rangeLimit = 0
				}
				return sh.m.RangeTx(tx, lookupKey(from), lookupKey(to), rangeLimit, func(k, v string) bool {
					if sh.expiredNowStr(k) {
						return true
					}
					if tab.epoch > 0 && hashKeyStr(k)%sl.mod != sl.res {
						return true
					}
					local = append(local, kvPair{k, v})
					return limit == 0 || uint64(len(local)) < limit
				})
			})
			results[i] = local
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			errInto(resp, err)
			return
		}
	}
	resp.Pairs = resp.Pairs[:0]
	heads := make([]int, n)
	for limit == 0 || uint64(len(resp.Pairs)) < limit {
		best := -1
		for i := 0; i < n; i++ {
			if heads[i] >= len(results[i]) {
				continue
			}
			if best < 0 || results[i][heads[i]].k < results[best][heads[best]].k {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := &results[best][heads[best]]
		appendPair(resp, p.k, p.v)
		heads[best]++
	}
	resp.Status = wire.StatusOK
}
