package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"polytm/internal/core"
	"polytm/internal/repl"
	"polytm/internal/server/client"
	"polytm/internal/wal"
	"polytm/internal/wire"
)

// startReplServer builds, wires, and serves one server, returning it
// with its address. Cleanup shuts it down.
func startReplServer(t *testing.T, cfg Config, dur *Durability, rc *ReplConfig) (*Server, string) {
	t.Helper()
	srv := New(cfg)
	if dur != nil {
		if _, err := srv.Store().EnableDurability(*dur); err != nil {
			t.Fatalf("durability: %v", err)
		}
	}
	if rc != nil {
		if err := srv.EnableReplication(*rc); err != nil {
			t.Fatalf("replication: %v", err)
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		srv.Store().CloseDurability()
	})
	return srv, ln.Addr().String()
}

func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// scanPairs fetches the full keyspace through a client as a map.
func scanPairs(t *testing.T, cl *client.Client) map[string]string {
	t.Helper()
	pairs, err := cl.Scan(nil, nil, 0)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	m := make(map[string]string, len(pairs))
	for _, kv := range pairs {
		m[string(kv.Key)] = string(kv.Val)
	}
	return m
}

// TestReplicationCatchUpUnderChurn is the tentpole acceptance test: a
// cold follower attaches to a primary mid-write-storm (so the snapshot
// races live WAL traffic), and once the lag drains, GET, MGET, and
// SCAN served by the follower return exactly what the primary returns.
func TestReplicationCatchUpUnderChurn(t *testing.T) {
	_, paddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{SyncAck: true})
	pcl, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("churn-%04d", i)) }
	for i := 0; i < 300; i++ {
		if err := pcl.Set(key(i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("preload set %d: %v", i, err)
		}
	}

	// Writer churn racing the follower's catch-up: overwrites, inserts,
	// deletes, and a few cross-shard TXNs.
	stop := make(chan struct{})
	var churnErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ccl, err := client.Dial(paddr)
		if err != nil {
			churnErr = err
			return
		}
		defer ccl.Close()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 5 {
			case 0, 1, 2:
				if err := ccl.Set(key(i%400), []byte(fmt.Sprintf("w%d", i))); err != nil {
					churnErr = fmt.Errorf("churn set: %w", err)
					return
				}
			case 3:
				if _, err := ccl.Del(key((i * 7) % 400)); err != nil {
					churnErr = fmt.Errorf("churn del: %w", err)
					return
				}
			case 4:
				if _, err := ccl.Txn(
					wire.Request{Op: wire.OpSet, Key: key(i % 400), Val: []byte("txn")},
					wire.Request{Op: wire.OpSet, Key: key((i + 200) % 400), Val: []byte("txn")},
				); err != nil {
					churnErr = fmt.Errorf("churn txn: %w", err)
					return
				}
			}
		}
	}()

	// The follower comes up durable in its own right (applied records
	// re-log through its own WAL) while the storm is in progress.
	fsrv, faddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{Follow: paddr, Backoff: repl.Backoff{Min: 10 * time.Millisecond}})
	waitCond(t, 10*time.Second, "follower streaming", func() bool {
		fl := fsrv.Follower()
		return fl != nil && fl.State() == repl.StateStreaming
	})

	close(stop)
	wg.Wait()
	if churnErr != nil {
		t.Fatal(churnErr)
	}

	fcl, err := client.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fcl.Close()

	// Converge: the follower's full scan must reach the primary's.
	want := scanPairs(t, pcl)
	waitCond(t, 10*time.Second, "follower to converge", func() bool {
		got := scanPairs(t, fcl)
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	})

	// GET and MGET through the follower match the primary key-by-key.
	i := 0
	var mkeys [][]byte
	for k := range want {
		pv, pok, err := pcl.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		fv, fok, err := fcl.Get([]byte(k))
		if err != nil {
			t.Fatal(err)
		}
		if pok != fok || string(pv) != string(fv) {
			t.Fatalf("GET %q: primary (%q,%v) vs follower (%q,%v)", k, pv, pok, fv, fok)
		}
		mkeys = append(mkeys, []byte(k))
		if i++; i >= 50 {
			break
		}
	}
	pvals, pfound, err := pcl.MGet(mkeys...)
	if err != nil {
		t.Fatal(err)
	}
	fvals, ffound, err := fcl.MGet(mkeys...)
	if err != nil {
		t.Fatal(err)
	}
	for j := range mkeys {
		if pfound[j] != ffound[j] || string(pvals[j]) != string(fvals[j]) {
			t.Fatalf("MGET %q: primary (%q,%v) vs follower (%q,%v)",
				mkeys[j], pvals[j], pfound[j], fvals[j], ffound[j])
		}
	}
}

// TestFollowerRejectsWrites: every mutating opcode on a follower store
// gets exactly one clean StatusErr carrying the primary address, with
// ZERO engine transactions started and no state change; reads and
// PING still serve.
func TestFollowerRejectsWrites(t *testing.T) {
	st := NewStore(core.NewDefault())
	if resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("pre"), Val: []byte("1")}); resp.Status != wire.StatusOK {
		t.Fatalf("pre-follower set: %v", resp.Status)
	}
	st.BecomeFollower("10.0.0.1:7535")

	starts := st.Stats().Starts
	muts := []*wire.Request{
		{Op: wire.OpSet, Sem: wire.SemDefault, Key: []byte("k"), Val: []byte("v")},
		{Op: wire.OpCAS, Sem: wire.SemDefault, Key: []byte("k"), Old: []byte("a"), Val: []byte("b")},
		{Op: wire.OpDel, Sem: wire.SemDefault, Key: []byte("pre")},
		{Op: wire.OpTxn, Sem: wire.SemDefault, Batch: []wire.Request{{Op: wire.OpSet, Key: []byte("k"), Val: []byte("v")}}},
		{Op: wire.OpFlush, Sem: wire.SemDefault},
		{Op: wire.OpRebuild, Sem: wire.SemDefault},
	}
	for _, req := range muts {
		resp := st.Execute(req)
		if resp.Status != wire.StatusErr {
			t.Fatalf("%v on follower: status %v, want StatusErr", req.Op, resp.Status)
		}
		np, ok := wire.ParseNotPrimary(resp.Msg)
		if !ok {
			t.Fatalf("%v rejection not a NotPrimaryError: %q", req.Op, resp.Msg)
		}
		if np.Primary != "10.0.0.1:7535" {
			t.Fatalf("%v redirect = %q", req.Op, np.Primary)
		}
		if !errors.Is(np, wire.ErrNotPrimary) {
			t.Fatalf("%v rejection does not match ErrNotPrimary", req.Op)
		}
	}
	if got := st.Stats().Starts; got != starts {
		t.Fatalf("rejections started %d engine transactions, want 0", got-starts)
	}

	// No write became visible, and reads/PING still serve.
	if resp := st.Execute(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("k")}); resp.Status != wire.StatusNotFound {
		t.Fatalf("rejected SET visible: %v", resp.Status)
	}
	if resp := st.Execute(&wire.Request{Op: wire.OpGet, Sem: wire.SemDefault, Key: []byte("pre")}); resp.Status != wire.StatusOK || string(resp.Val) != "1" {
		t.Fatalf("pre-existing key unreadable on follower: %v %q", resp.Status, resp.Val)
	}
	if resp := st.Execute(&wire.Request{Op: wire.OpPing, Sem: wire.SemDefault}); resp.Status != wire.StatusOK {
		t.Fatalf("PING on follower: %v", resp.Status)
	}
	if resp := st.Execute(&wire.Request{Op: wire.OpScan, Sem: wire.SemDefault}); resp.Status != wire.StatusOK || len(resp.Pairs) != 1 {
		t.Fatalf("SCAN on follower: %v (%d pairs)", resp.Status, len(resp.Pairs))
	}

	// Promotion restores writes and counts the failover.
	st.BecomePrimary()
	if resp := st.Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("k"), Val: []byte("v")}); resp.Status != wire.StatusOK {
		t.Fatalf("post-promotion set: %v", resp.Status)
	}
	if st.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers())
	}
}

// TestReplicationStatsRows: the primary's STATS shows its role, the
// follower count and per-follower offsets; the follower's shows its
// role and link counters.
func TestReplicationStatsRows(t *testing.T) {
	_, paddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{})
	fsrv, faddr := startReplServer(t, Config{StoreShards: 2}, nil,
		&ReplConfig{Follow: paddr, Backoff: repl.Backoff{Min: 10 * time.Millisecond}})
	waitCond(t, 10*time.Second, "follower streaming", func() bool {
		fl := fsrv.Follower()
		return fl != nil && fl.State() == repl.StateStreaming
	})

	pcl, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()
	if err := pcl.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	ps, err := pcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ps["repl_role"] != uint64(RolePrimary) {
		t.Fatalf("primary repl_role = %d", ps["repl_role"])
	}
	if ps["repl_followers"] != 1 {
		t.Fatalf("repl_followers = %d, want 1", ps["repl_followers"])
	}
	if _, ok := ps["follower0.acked_records"]; !ok {
		t.Fatalf("no follower0.acked_records row: %v", ps)
	}
	if _, ok := ps["follower0.lag_bytes"]; !ok {
		t.Fatalf("no follower0.lag_bytes row: %v", ps)
	}

	fcl, err := client.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fcl.Close()
	fs, err := fcl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if fs["repl_role"] != uint64(RoleFollower) {
		t.Fatalf("follower repl_role = %d", fs["repl_role"])
	}
	if _, ok := fs["repl_applied_records"]; !ok {
		t.Fatalf("no repl_applied_records row: %v", fs)
	}
	if fs["repl_state"] != uint64(repl.StateStreaming) {
		t.Fatalf("repl_state = %d, want streaming", fs["repl_state"])
	}
}

// TestClientFailover: a ReplicaSet keeps writing through a primary
// loss — writes redirect off the dead primary onto the promoted
// follower — and replica reads serve throughout.
func TestClientFailover(t *testing.T) {
	psrv, paddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{SyncAck: true})
	fsrv, faddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{Follow: paddr, Backoff: repl.Backoff{Min: 10 * time.Millisecond}})
	waitCond(t, 10*time.Second, "follower streaming", func() bool {
		fl := fsrv.Follower()
		return fl != nil && fl.State() == repl.StateStreaming
	})

	rs, err := client.DialReplicaSet(paddr, []string{faddr}, client.ReplicaSetConfig{
		RetryMin: 10 * time.Millisecond, RetryMax: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()

	// Writes land on the primary; sync-ack means the follower has each
	// one by the time the write returns, so replica reads see it.
	if err := rs.Set([]byte("before"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := rs.Get([]byte("before"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("replica read: %q %v %v", v, ok, err)
	}

	// A write sent straight at the follower comes back as the typed
	// redirect.
	fcl, err := client.Dial(faddr)
	if err != nil {
		t.Fatal(err)
	}
	defer fcl.Close()
	err = fcl.Set([]byte("direct"), []byte("x"))
	var np *wire.NotPrimaryError
	if !errors.As(err, &np) {
		t.Fatalf("follower write error = %v, want NotPrimaryError", err)
	}
	if np.Primary != paddr {
		t.Fatalf("redirect = %q, want %q", np.Primary, paddr)
	}

	// Primary loss + promotion: the set's next write must fail over.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	psrv.Shutdown(ctx)
	cancel()
	if _, err := fsrv.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	if err := rs.SetCtx(wctx, []byte("after"), []byte("2")); err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if rs.PrimaryAddr() != faddr {
		t.Fatalf("client primary = %q, want %q", rs.PrimaryAddr(), faddr)
	}
	if rs.Failovers() == 0 {
		t.Fatal("client observed no failover")
	}
	v, ok, err = rs.Get([]byte("after"))
	if err != nil || !ok || string(v) != "2" {
		t.Fatalf("post-failover read: %q %v %v", v, ok, err)
	}
	// The pre-failover acked write survived the switch.
	v, ok, err = rs.Get([]byte("before"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("pre-failover key after switch: %q %v %v", v, ok, err)
	}
}

// TestPromotedFollowerServesFeeds: a promoted durable follower starts
// its own hub, so a new follower can chain off it.
func TestPromotedFollowerServesFeeds(t *testing.T) {
	psrv, paddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{})
	fsrv, faddr := startReplServer(t, Config{StoreShards: 2},
		&Durability{Dir: t.TempDir(), Fsync: wal.ModeOff, CheckpointEvery: -1},
		&ReplConfig{Follow: paddr, Backoff: repl.Backoff{Min: 10 * time.Millisecond}})
	waitCond(t, 10*time.Second, "follower streaming", func() bool {
		fl := fsrv.Follower()
		return fl != nil && fl.State() == repl.StateStreaming
	})

	pcl, err := client.Dial(paddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pcl.Close()
	if err := pcl.Set([]byte("handed-down"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	psrv.Shutdown(ctx)
	cancel()
	if _, err := fsrv.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if fsrv.Hub() == nil {
		t.Fatal("promoted durable follower has no hub")
	}

	// Chain a fresh follower off the promoted primary.
	gsrv, gaddr := startReplServer(t, Config{StoreShards: 2}, nil,
		&ReplConfig{Follow: faddr, Backoff: repl.Backoff{Min: 10 * time.Millisecond}})
	waitCond(t, 10*time.Second, "grand-follower streaming", func() bool {
		fl := gsrv.Follower()
		return fl != nil && fl.State() == repl.StateStreaming
	})
	gcl, err := client.Dial(gaddr)
	if err != nil {
		t.Fatal(err)
	}
	defer gcl.Close()
	waitCond(t, 10*time.Second, "chained key to arrive", func() bool {
		v, ok, err := gcl.Get([]byte("handed-down"))
		return err == nil && ok && string(v) == "v"
	})
}

// TestApplyShardOpsDurable: a durable follower re-logs what it
// applies — restart the follower store over its own WAL directory and
// the applied keys recover.
func TestApplyShardOpsDurable(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(core.NewDefault())
	if _, err := st.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	st.BecomeFollower("x:1")
	if err := st.ApplyShardOps(0, []wal.Op{
		{Kind: wal.OpSet, Key: "r1", Val: "a"},
		{Kind: wal.OpSet, Key: "r2", Val: "b"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.ApplyShardOps(0, []wal.Op{{Kind: wal.OpDel, Key: "r1"}}); err != nil {
		t.Fatal(err)
	}
	if err := st.CloseDurability(); err != nil {
		t.Fatal(err)
	}

	st2 := NewStore(core.NewDefault())
	if _, err := st2.EnableDurability(Durability{Dir: dir, Fsync: wal.ModeAlways, CheckpointEvery: -1}); err != nil {
		t.Fatal(err)
	}
	defer st2.CloseDurability()
	got := scanAll(t, st2)
	if len(got) != 1 || got["r2"] != "b" {
		t.Fatalf("recovered follower state = %v, want {r2:b}", got)
	}
}

// TestClientDialsWithDeadPrimary pins the cold-start-after-failover
// path: a replica set configured with a dead primary address must still
// come up when replicas are listed — reads route to the replicas and
// the first write probes the ring for whoever leads now.
func TestClientDialsWithDeadPrimary(t *testing.T) {
	srv, addr := startReplServer(t, Config{StoreShards: 2}, nil, nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	if resp := srv.Store().Execute(&wire.Request{Op: wire.OpSet, Sem: wire.SemDefault,
		Key: []byte("pre"), Val: []byte("1")}); resp.Status != wire.StatusOK {
		t.Fatalf("seed write: %v %s", resp.Status, resp.Msg)
	}

	// 127.0.0.1:1 refuses immediately: the configured primary is dead.
	rs, err := client.DialReplicaSet("127.0.0.1:1", []string{addr}, client.ReplicaSetConfig{
		DialTimeout: time.Second,
		RetryMin:    10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dial with dead primary: %v", err)
	}
	defer rs.Close()

	if v, ok, err := rs.Get([]byte("pre")); err != nil || !ok || string(v) != "1" {
		t.Fatalf("read via replica: %q %v %v", v, ok, err)
	}
	if err := rs.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("write should rotate to the live endpoint: %v", err)
	}
	if got := rs.PrimaryAddr(); got != addr {
		t.Fatalf("primary addr = %s, want %s", got, addr)
	}

	// A set with ONLY the dead primary still fails the dial eagerly.
	if _, err := client.DialReplicaSet("127.0.0.1:1", nil, client.ReplicaSetConfig{
		DialTimeout: time.Second,
	}); err == nil {
		t.Fatal("single-endpoint dead set should fail to dial")
	}
}
