package server

import (
	"bufio"
	"net"
	"time"

	"polytm/internal/repl"
	"polytm/internal/session"
	"polytm/internal/wire"
)

// serveWatch converts a connection into a watch session. The WATCH
// request's OK response (carrying the first watch id) is the last frame
// written by the request pipeline; after it, the connection is duplex:
//
//   - a writer goroutine owns bw and pushes session frames — EVENT in
//     commit order, control acknowledgements (WATCH-OK, PONG), PING on
//     an idle push half, and the terminal EVENT-LOST/ERR;
//   - this goroutine becomes the reader, decoding client session frames
//     (WATCH, UNWATCH, PING, PONG) and feeding the session's control
//     queue. It never writes, so reader and writer never race on bw.
//
// Liveness is symmetric and uses the repl timeout taxonomy: the writer
// PINGs every Idle, and the reader cuts the session when
// Idle + 2×Reply passes without any client frame (a live client echoes
// PONG, so a healthy link always has traffic inside the budget).
func (s *Server) serveWatch(c net.Conn, br *bufio.Reader, bw *bufio.Writer, req *wire.Request) {
	tv := s.cfg.SessionTimeouts.WithDefaults()
	sess := s.store.Sessions().NewSession(s.cfg.WatchBuffer)
	defer sess.Close()

	// Register the first watch BEFORE the OK is written: the id must be
	// known for the response, and any commit from here on is buffered
	// behind it — the client can't see an event before its ack because
	// the writer goroutine doesn't exist yet.
	first := sess.Watch(string(req.Key), req.Prefix)
	resp := wire.Response{Status: wire.StatusOK, N: first}
	out, err := wire.AppendResponseFrame(nil, wire.OpWatch, &resp)
	if err != nil {
		return
	}
	if _, err := bw.Write(out); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	done := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.sessionWriter(c, bw, sess, tv, done)
	}()
	s.sessionReader(c, br, sess, tv)
	close(done)
	<-writerDone
}

// sessionWriter owns the session connection's write half: it parks on
// the session's wake channel and drains queued output. It exits when
// the session is cut (overflow → EVENT-LOST, protocol error → ERR),
// when a write fails, or when the reader ends (done) — after one final
// drain so a terminal ERR the reader queued still reaches the client.
// It closes the connection on exit, which unblocks the reader.
func (s *Server) sessionWriter(c net.Conn, bw *bufio.Writer, sess *session.Session, tv repl.Timeouts, done <-chan struct{}) {
	defer c.Close()
	ping := time.NewTicker(tv.Idle)
	defer ping.Stop()
	var (
		out    []byte
		keybuf []byte
		evs    []session.Event
		ctrls  []session.Ctrl
	)
	writeFrame := func(f *wire.SessFrame) bool {
		var err error
		out, err = wire.AppendSessFrame(out[:0], f)
		if err != nil {
			return false
		}
		c.SetWriteDeadline(time.Now().Add(tv.Reply))
		_, err = bw.Write(out)
		return err == nil
	}
	// drain sends everything the session has queued: control frames
	// first (a WATCH-OK must precede the watch's first event — the
	// session buffers them in that order and Take preserves it), then
	// events, then the terminal EVENT-LOST if the session overflowed.
	// Returns false when the writer must exit.
	drain := func() bool {
		var dropped uint64
		var cut bool
		evs, ctrls, dropped, cut = sess.Take(evs, ctrls)
		for i := range ctrls {
			ct := &ctrls[i]
			f := wire.SessFrame{Kind: ct.Kind, WatchID: ct.WatchID, Code: ct.Code}
			ok := writeFrame(&f)
			if ct.Kind == wire.SessErr {
				bw.Flush()
				return false
			}
			if !ok {
				return false
			}
		}
		for i := range evs {
			ev := &evs[i]
			keybuf = append(keybuf[:0], ev.Key...)
			f := wire.SessFrame{Kind: wire.SessEvent, WatchID: ev.WatchID, Seq: ev.Seq, Op: ev.Op, Key: keybuf}
			if !writeFrame(&f) {
				return false
			}
		}
		if cut {
			// Buffered events above were delivered; the client knows
			// exactly how many it lost and that the session is over.
			writeFrame(&wire.SessFrame{Kind: wire.SessEventLost, Dropped: dropped})
			bw.Flush()
			return false
		}
		return bw.Flush() == nil
	}
	for {
		select {
		case <-done:
			drain() // a terminal ERR queued by the reader still goes out
			return
		case <-sess.Wake():
			if !drain() {
				return
			}
		case <-ping.C:
			if !writeFrame(&wire.SessFrame{Kind: wire.SessPing}) || bw.Flush() != nil {
				return
			}
		}
	}
}

// sessionReader consumes the client half of a session connection. A
// protocol violation (undecodable frame, a kind only the server may
// send) queues a terminal ERR for the writer and returns; the writer's
// final drain delivers it.
func (s *Server) sessionReader(c net.Conn, br *bufio.Reader, sess *session.Session, tv repl.Timeouts) {
	budget := tv.Idle + 2*tv.Reply
	var (
		payload []byte
		f       wire.SessFrame
	)
	for {
		// Deadline first, shutdown check second: if Shutdown runs before
		// the check we exit here; if it runs after, its past deadline
		// overwrites this one and the read below wakes immediately.
		c.SetReadDeadline(time.Now().Add(budget))
		s.mu.Lock()
		down := s.shutdown
		s.mu.Unlock()
		if down {
			return
		}
		var err error
		payload, err = wire.ReadFrameBuf(br, payload, s.cfg.MaxFrame)
		if err != nil {
			if !isExpectedClose(err) {
				s.logf("polyserve: %v: session read: %v", c.RemoteAddr(), err)
			}
			return
		}
		if err := wire.DecodeSessFrame(&f, payload); err != nil {
			sess.EnqueueErr(wire.ProtoMalformed)
			return
		}
		switch f.Kind {
		case wire.SessWatch:
			// Registration and WATCH-OK under one lock: the ack always
			// precedes the new watch's first event.
			sess.WatchAck(string(f.Key), f.Prefix)
		case wire.SessUnwatch:
			sess.Unwatch(f.WatchID)
		case wire.SessPing:
			sess.EnqueueCtrl(wire.SessPong, 0)
		case wire.SessPong:
			// The read itself proved liveness; nothing to queue.
		default:
			// EVENT, EVENT-LOST, WATCH-OK, ERR are server→client only.
			sess.EnqueueErr(wire.ProtoBadSession)
			return
		}
	}
}
